#ifndef CORRMINE_CUBE_DATACUBE_H_
#define CORRMINE_CUBE_DATACUBE_H_

#include <cstdint>
#include <unordered_map>

#include "common/status_or.h"
#include "itemset/count_provider.h"
#include "itemset/itemset.h"
#include "itemset/transaction_database.h"

namespace corrmine {

/// A count datacube (Gray et al. [13]) over the item space: materializes
/// O(S) = |{baskets containing all of S}| for every itemset S up to a
/// dimension bound, in one pass over the database. The paper observes
/// (Sections 2.1 and 6) that the random-walk algorithm "has a natural
/// implementation in terms of a datacube of the count values for
/// contingency tables" — this module provides that backing store: any
/// contingency table over <= max_dimension items assembles from cube cells
/// with no further data passes.
class DataCube {
 public:
  /// Builds the cube. Cost is sum over baskets of C(|b|, <=d); keep
  /// max_dimension small (2 or 3) for dense baskets.
  static StatusOr<DataCube> Build(const TransactionDatabase& db,
                                  int max_dimension);

  int max_dimension() const { return max_dimension_; }
  uint64_t num_baskets() const { return num_baskets_; }

  /// O(S) for |S| <= max_dimension (0 when S never occurs). Errors if S is
  /// larger than the materialized dimension.
  StatusOr<uint64_t> Count(const Itemset& s) const;

  /// Number of materialized (non-zero) cells.
  size_t num_cells() const { return counts_.size(); }

 private:
  DataCube(int max_dimension, uint64_t num_baskets)
      : max_dimension_(max_dimension), num_baskets_(num_baskets) {}

  int max_dimension_;
  uint64_t num_baskets_;
  std::unordered_map<Itemset, uint64_t, ItemsetHasher> counts_;
};

/// CountProvider view over a datacube: answers small-set counts from the
/// cube and (optionally) falls back to scanning the database for sets larger
/// than the materialized dimension.
class CubeCountProvider : public CountProvider {
 public:
  /// `cube` must outlive the provider. `fallback_db` may be null; then
  /// queries beyond the cube's dimension abort.
  CubeCountProvider(const DataCube& cube, const TransactionDatabase* fallback_db)
      : cube_(cube), fallback_(fallback_db) {}

  uint64_t num_baskets() const override { return cube_.num_baskets(); }

 protected:
  uint64_t CountAllPresentImpl(const Itemset& s) const override;

 private:
  const DataCube& cube_;
  const TransactionDatabase* fallback_;
};

}  // namespace corrmine

#endif  // CORRMINE_CUBE_DATACUBE_H_
