#include "cube/datacube.h"

#include <vector>

#include "common/logging.h"

namespace corrmine {

StatusOr<DataCube> DataCube::Build(const TransactionDatabase& db,
                                   int max_dimension) {
  if (max_dimension < 1 || max_dimension > 4) {
    return Status::InvalidArgument(
        "datacube dimension must be in [1, 4]; larger cubes are "
        "combinatorially explosive on dense baskets");
  }
  DataCube cube(max_dimension, db.num_baskets());

  // Recursively enumerate subsets of each basket up to the dimension bound.
  std::vector<ItemId> scratch;
  for (size_t row = 0; row < db.num_baskets(); ++row) {
    const std::vector<ItemId>& basket = db.basket(row);
    // Iterative nested enumeration by dimension to avoid recursion overhead.
    for (size_t i = 0; i < basket.size(); ++i) {
      ++cube.counts_[Itemset{basket[i]}];
      if (max_dimension < 2) continue;
      for (size_t j = i + 1; j < basket.size(); ++j) {
        ++cube.counts_[Itemset{basket[i], basket[j]}];
        if (max_dimension < 3) continue;
        for (size_t k = j + 1; k < basket.size(); ++k) {
          ++cube.counts_[Itemset{basket[i], basket[j], basket[k]}];
          if (max_dimension < 4) continue;
          for (size_t l = k + 1; l < basket.size(); ++l) {
            ++cube.counts_[Itemset{basket[i], basket[j], basket[k],
                                   basket[l]}];
          }
        }
      }
    }
  }
  return cube;
}

StatusOr<uint64_t> DataCube::Count(const Itemset& s) const {
  if (s.empty()) return num_baskets_;
  if (static_cast<int>(s.size()) > max_dimension_) {
    return Status::OutOfRange("itemset exceeds materialized cube dimension");
  }
  auto it = counts_.find(s);
  return it == counts_.end() ? 0 : it->second;
}

uint64_t CubeCountProvider::CountAllPresentImpl(const Itemset& s) const {
  if (static_cast<int>(s.size()) <= cube_.max_dimension()) {
    auto count = cube_.Count(s);
    CORRMINE_CHECK(count.ok()) << count.status().ToString();
    return *count;
  }
  CORRMINE_CHECK(fallback_ != nullptr)
      << "cube query beyond materialized dimension with no fallback "
         "database";
  uint64_t count = 0;
  for (size_t row = 0; row < fallback_->num_baskets(); ++row) {
    if (fallback_->BasketContainsAll(row, s)) ++count;
  }
  return count;
}

}  // namespace corrmine
