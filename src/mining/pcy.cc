#include "mining/pcy.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "itemset/bitmap.h"

namespace corrmine {

namespace {

// Pair hash matching the PCY paper's role: any fixed function of the pair.
size_t PairBucket(ItemId a, ItemId b, size_t num_buckets) {
  uint64_t key = (static_cast<uint64_t>(a) << 32) | b;
  key ^= key >> 33;
  key *= 0xff51afd7ed558ccdULL;
  key ^= key >> 33;
  return static_cast<size_t>(key % num_buckets);
}

}  // namespace

StatusOr<std::vector<FrequentItemset>> MineFrequentItemsetsPcy(
    const TransactionDatabase& db, const PcyOptions& options,
    PcyStats* stats) {
  if (db.num_baskets() == 0) {
    return Status::FailedPrecondition("mining an empty database");
  }
  if (!(options.min_support_fraction > 0.0 &&
        options.min_support_fraction <= 1.0)) {
    return Status::InvalidArgument("min_support_fraction must be in (0,1]");
  }
  if (options.num_hash_buckets == 0) {
    return Status::InvalidArgument("num_hash_buckets must be positive");
  }
  uint64_t n = db.num_baskets();
  uint64_t min_count = static_cast<uint64_t>(std::ceil(
      options.min_support_fraction * static_cast<double>(n) - 1e-9));
  if (min_count == 0) min_count = 1;

  // Pass 1: item counts come from the database; hash pair occurrences.
  std::vector<uint64_t> buckets(options.num_hash_buckets, 0);
  for (size_t row = 0; row < n; ++row) {
    const std::vector<ItemId>& basket = db.basket(row);
    for (size_t i = 0; i < basket.size(); ++i) {
      for (size_t j = i + 1; j < basket.size(); ++j) {
        ++buckets[PairBucket(basket[i], basket[j],
                             options.num_hash_buckets)];
      }
    }
  }
  Bitmap frequent_bucket(options.num_hash_buckets);
  uint64_t frequent_buckets = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] >= min_count) {
      frequent_bucket.Set(b);
      ++frequent_buckets;
    }
  }
  buckets.clear();
  buckets.shrink_to_fit();

  std::vector<FrequentItemset> result;
  std::vector<ItemId> frequent_items;
  std::vector<bool> is_frequent_item(db.num_items(), false);
  for (ItemId i = 0; i < db.num_items(); ++i) {
    if (db.ItemCount(i) >= min_count) {
      result.push_back(FrequentItemset{Itemset{i}, db.ItemCount(i)});
      frequent_items.push_back(i);
      is_frequent_item[i] = true;
    }
  }

  if (stats != nullptr) {
    stats->frequent_buckets = frequent_buckets;
    uint64_t f = frequent_items.size();
    stats->pair_candidates_item_filter = f * (f - 1) / 2;
    stats->pair_candidates_after_bucket = 0;
  }

  // Pass 2: count pairs that pass both filters.
  std::unordered_map<uint64_t, uint64_t> pair_counts;
  for (size_t row = 0; row < n; ++row) {
    const std::vector<ItemId>& basket = db.basket(row);
    for (size_t i = 0; i < basket.size(); ++i) {
      if (!is_frequent_item[basket[i]]) continue;
      for (size_t j = i + 1; j < basket.size(); ++j) {
        if (!is_frequent_item[basket[j]]) continue;
        if (!frequent_bucket.Test(PairBucket(basket[i], basket[j],
                                             options.num_hash_buckets))) {
          continue;
        }
        uint64_t key = (static_cast<uint64_t>(basket[i]) << 32) | basket[j];
        ++pair_counts[key];
      }
    }
  }
  if (stats != nullptr) {
    stats->pair_candidates_after_bucket = pair_counts.size();
  }

  std::vector<Itemset> frequent_level;
  for (const auto& [key, count] : pair_counts) {
    if (count >= min_count) {
      Itemset pair{static_cast<ItemId>(key >> 32),
                   static_cast<ItemId>(key & 0xffffffffU)};
      result.push_back(FrequentItemset{pair, count});
      frequent_level.push_back(std::move(pair));
    }
  }

  // Levels >= 3: apriori-gen candidates, counted by enumerating basket
  // subsets against a candidate hash set.
  int level = 3;
  while (!frequent_level.empty() &&
         (options.max_level == 0 || level <= options.max_level)) {
    std::unordered_set<Itemset, ItemsetHasher> frequent_set(
        frequent_level.begin(), frequent_level.end());
    std::sort(frequent_level.begin(), frequent_level.end());
    std::vector<Itemset> candidates;
    for (size_t i = 0; i < frequent_level.size(); ++i) {
      for (size_t j = i + 1; j < frequent_level.size(); ++j) {
        const Itemset& a = frequent_level[i];
        const Itemset& b = frequent_level[j];
        bool shared = true;
        for (size_t t = 0; t + 1 < a.size(); ++t) {
          if (a.item(t) != b.item(t)) {
            shared = false;
            break;
          }
        }
        if (!shared) break;
        Itemset joined = a.Union(b);
        if (joined.size() != a.size() + 1) continue;
        bool ok = true;
        for (const Itemset& subset : joined.SubsetsMissingOne()) {
          if (!frequent_set.count(subset)) {
            ok = false;
            break;
          }
        }
        if (ok) candidates.push_back(std::move(joined));
      }
    }
    if (candidates.empty()) break;

    std::unordered_map<Itemset, uint64_t, ItemsetHasher> counts;
    counts.reserve(candidates.size());
    for (const Itemset& c : candidates) counts.emplace(c, 0);
    for (size_t row = 0; row < n; ++row) {
      for (auto& [candidate, count] : counts) {
        if (db.BasketContainsAll(row, candidate)) ++count;
      }
    }

    frequent_level.clear();
    for (const Itemset& c : candidates) {
      uint64_t count = counts[c];
      if (count >= min_count) {
        result.push_back(FrequentItemset{c, count});
        frequent_level.push_back(c);
      }
    }
    ++level;
  }

  return result;
}

}  // namespace corrmine
