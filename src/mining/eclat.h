#ifndef CORRMINE_MINING_ECLAT_H_
#define CORRMINE_MINING_ECLAT_H_

#include "common/status_or.h"
#include "itemset/sharded_database.h"
#include "itemset/transaction_database.h"
#include "mining/apriori.h"

namespace corrmine {

class ThreadPool;

struct EclatOptions {
  double min_support_fraction = 0.01;
  /// Stop after this itemset size; 0 = unbounded.
  int max_level = 0;
  /// Threads for the depth-first search (1 = sequential, 0 = hardware
  /// concurrency). Each frequent singleton's subtree is mined into its own
  /// buffer and the buffers concatenated in item order, so the output is
  /// identical for any setting (the final (size, lex) sort seals it).
  int num_threads = 1;
  /// Optional borrowed pool (e.g. a MiningSession's); when null the miner
  /// creates its own for the duration of the call.
  ThreadPool* pool = nullptr;
};

/// Eclat (Zaki et al., 1997 — contemporaneous with the paper): depth-first
/// frequent-itemset mining over the *vertical* layout. Each itemset carries
/// the bitmap of baskets containing it; extending an itemset is one
/// bitmap AND, and support is a popcount. Produces exactly Apriori's
/// output, typically faster on dense data because no candidate
/// generation/scan cycle exists.
///
/// Results ordered by (size, lexicographic), matching the other miners.
StatusOr<std::vector<FrequentItemset>> MineFrequentItemsetsEclat(
    const TransactionDatabase& db, const EclatOptions& options = {});

/// Shard-native Eclat over a horizontally partitioned database: every
/// itemset carries one basket bitmap *per shard*, an extension is K
/// short ANDs instead of one long one, and support is the exact sum of
/// per-shard popcounts — the K-invariance contract of DESIGN.md §7, so the
/// output is identical to the monolithic overload for any K. The
/// "eclat.intersections" counter records one logical intersection per
/// (prefix, tail item) pair regardless of K, keeping the cost accounting
/// shard-invariant too.
StatusOr<std::vector<FrequentItemset>> MineFrequentItemsetsEclat(
    const ShardedTransactionDatabase& db, const EclatOptions& options = {});

}  // namespace corrmine

#endif  // CORRMINE_MINING_ECLAT_H_
