#include "mining/association_rules.h"

#include <unordered_map>

namespace corrmine {

StatusOr<std::vector<AssociationRule>> GenerateAssociationRules(
    const std::vector<FrequentItemset>& frequent, uint64_t num_baskets,
    const RuleOptions& options) {
  if (num_baskets == 0) {
    return Status::InvalidArgument("num_baskets must be positive");
  }
  if (!(options.min_confidence >= 0.0 && options.min_confidence <= 1.0)) {
    return Status::InvalidArgument("min_confidence must be in [0,1]");
  }
  std::unordered_map<Itemset, uint64_t, ItemsetHasher> counts;
  counts.reserve(frequent.size());
  for (const FrequentItemset& f : frequent) {
    counts.emplace(f.itemset, f.count);
  }

  std::vector<AssociationRule> rules;
  for (const FrequentItemset& f : frequent) {
    const Itemset& s = f.itemset;
    if (s.size() < 2 || s.size() > 20) continue;
    double support = static_cast<double>(f.count) /
                     static_cast<double>(num_baskets);
    // Every non-empty proper subset as antecedent.
    uint32_t full = (uint32_t{1} << s.size()) - 1;
    for (uint32_t mask = 1; mask < full; ++mask) {
      std::vector<ItemId> ante_items;
      std::vector<ItemId> cons_items;
      for (size_t j = 0; j < s.size(); ++j) {
        if ((mask >> j) & 1) {
          ante_items.push_back(s.item(j));
        } else {
          cons_items.push_back(s.item(j));
        }
      }
      Itemset antecedent(std::move(ante_items));
      auto it = counts.find(antecedent);
      if (it == counts.end() || it->second == 0) {
        return Status::FailedPrecondition(
            "antecedent count missing; input is not downward closed: " +
            antecedent.ToString());
      }
      double confidence = static_cast<double>(f.count) /
                          static_cast<double>(it->second);
      if (confidence >= options.min_confidence) {
        rules.push_back(AssociationRule{std::move(antecedent),
                                        Itemset(std::move(cons_items)),
                                        support, confidence});
      }
    }
  }
  return rules;
}

StatusOr<PairwiseSupportConfidence> AnalyzePair(
    const ContingencyTable& table) {
  if (table.num_items() != 2) {
    return Status::InvalidArgument("AnalyzePair requires a 2-item table");
  }
  double n = static_cast<double>(table.n());
  // Mask bit 0 = first item (a) present, bit 1 = second item (b) present.
  double o_ab = static_cast<double>(table.Observed(0b11));
  double o_anb = static_cast<double>(table.Observed(0b01));
  double o_nab = static_cast<double>(table.Observed(0b10));
  double o_nanb = static_cast<double>(table.Observed(0b00));

  PairwiseSupportConfidence out;
  out.s_ab = o_ab / n;
  out.s_anb = o_anb / n;
  out.s_nab = o_nab / n;
  out.s_nanb = o_nanb / n;

  double o_a = o_ab + o_anb;
  double o_na = o_nab + o_nanb;
  double o_b = o_ab + o_nab;
  double o_nb = o_anb + o_nanb;

  auto ratio = [](double num, double den) {
    return den > 0.0 ? num / den : 0.0;
  };
  out.a_to_b = ratio(o_ab, o_a);
  out.a_to_nb = ratio(o_anb, o_a);
  out.na_to_b = ratio(o_nab, o_na);
  out.na_to_nb = ratio(o_nanb, o_na);
  out.b_to_a = ratio(o_ab, o_b);
  out.b_to_na = ratio(o_nab, o_b);
  out.nb_to_a = ratio(o_anb, o_nb);
  out.nb_to_na = ratio(o_nanb, o_nb);
  return out;
}

}  // namespace corrmine
