#include "mining/rule_measures.h"

#include <cmath>
#include <limits>

namespace corrmine {

StatusOr<RuleMeasures> ComputeRuleMeasures(const ContingencyTable& table) {
  if (table.num_items() != 2) {
    return Status::InvalidArgument(
        "rule measures require a 2-item contingency table");
  }
  double n = static_cast<double>(table.n());
  double o_ab = static_cast<double>(table.Observed(0b11));
  double o_anb = static_cast<double>(table.Observed(0b01));
  double o_nab = static_cast<double>(table.Observed(0b10));

  double o_a = o_ab + o_anb;
  double o_b = o_ab + o_nab;
  if (o_a == 0.0 || o_a == n || o_b == 0.0 || o_b == n) {
    return Status::FailedPrecondition(
        "degenerate margin: an item is present in no or all baskets");
  }

  double p_ab = o_ab / n;
  double p_a = o_a / n;
  double p_b = o_b / n;

  RuleMeasures m;
  m.support = p_ab;
  m.confidence = o_ab / o_a;
  m.lift = p_ab / (p_a * p_b);
  m.leverage = p_ab - p_a * p_b;
  double p_a_nb = o_anb / n;
  m.conviction = p_a_nb > 0.0
                     ? (p_a * (1.0 - p_b)) / p_a_nb
                     : std::numeric_limits<double>::infinity();
  m.phi = (p_ab - p_a * p_b) /
          std::sqrt(p_a * (1.0 - p_a) * p_b * (1.0 - p_b));
  double union_count = o_a + o_b - o_ab;
  m.jaccard = union_count > 0.0 ? o_ab / union_count : 0.0;
  return m;
}

}  // namespace corrmine
