#ifndef CORRMINE_MINING_PCY_H_
#define CORRMINE_MINING_PCY_H_

#include <vector>

#include "common/status_or.h"
#include "itemset/transaction_database.h"
#include "mining/apriori.h"

namespace corrmine {

struct PcyOptions {
  double min_support_fraction = 0.01;
  /// Buckets for the pass-1 pair-hashing filter. More buckets, fewer false
  /// candidates.
  size_t num_hash_buckets = size_t{1} << 16;
  /// Stop after this itemset size; 0 = unbounded.
  int max_level = 0;
};

/// Statistics exposing how much the hash filter pruned (for the ablation
/// bench comparing against plain Apriori).
struct PcyStats {
  uint64_t pair_candidates_item_filter = 0;  ///< Pairs of frequent items.
  uint64_t pair_candidates_after_bucket = 0; ///< ... surviving bucket filter.
  uint64_t frequent_buckets = 0;
};

/// The hash-based frequent-itemset algorithm of Park, Chen and Yu [24],
/// which the paper compares its candidate construction against (Section 4):
/// pass 1 counts items and hashes every basket pair into a bucket counter;
/// pass 2 counts only pairs whose items are frequent *and* whose bucket is
/// frequent. Collisions in the bucket array cost extra candidates but never
/// wrong results. Levels above 2 fall back to apriori-gen candidates counted
/// by basket-subset enumeration.
StatusOr<std::vector<FrequentItemset>> MineFrequentItemsetsPcy(
    const TransactionDatabase& db, const PcyOptions& options = {},
    PcyStats* stats = nullptr);

}  // namespace corrmine

#endif  // CORRMINE_MINING_PCY_H_
