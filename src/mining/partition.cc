#include "mining/partition.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/profiler.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/border_repair.h"
#include "io/column_store.h"
#include "io/stream_reader.h"
#include "itemset/count_provider.h"
#include "itemset/counting_column.h"

namespace corrmine {

StatusOr<std::vector<FrequentItemset>> MineFrequentItemsetsPartition(
    const TransactionDatabase& db, const PartitionOptions& options,
    PartitionStats* stats) {
  if (db.num_baskets() == 0) {
    return Status::FailedPrecondition("mining an empty database");
  }
  if (!(options.min_support_fraction > 0.0 &&
        options.min_support_fraction <= 1.0)) {
    return Status::InvalidArgument("min_support_fraction must be in (0,1]");
  }
  if (options.num_partitions < 1) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  size_t n = db.num_baskets();
  size_t num_partitions =
      std::min<size_t>(static_cast<size_t>(options.num_partitions), n);

  // Phase 1: mine each horizontal chunk at the same fractional threshold.
  std::unordered_set<Itemset, ItemsetHasher> candidate_set;
  size_t chunk = (n + num_partitions - 1) / num_partitions;
  for (size_t p = 0; p < num_partitions; ++p) {
    size_t begin = p * chunk;
    size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    TransactionDatabase part(db.num_items());
    for (size_t row = begin; row < end; ++row) {
      CORRMINE_RETURN_NOT_OK(part.AddBasket(db.basket(row)));
    }
    BitmapCountProvider part_provider(part);
    AprioriOptions local;
    local.min_support_fraction = options.min_support_fraction;
    local.max_level = options.max_level;
    CORRMINE_ASSIGN_OR_RETURN(
        std::vector<FrequentItemset> local_frequent,
        MineFrequentItemsets(part_provider, db.num_items(), local));
    for (FrequentItemset& f : local_frequent) {
      candidate_set.insert(std::move(f.itemset));
    }
  }

  // Phase 2: one global pass over the union of local winners.
  uint64_t min_count = static_cast<uint64_t>(std::ceil(
      options.min_support_fraction * static_cast<double>(n) - 1e-9));
  if (min_count == 0) min_count = 1;
  BitmapCountProvider provider(db);
  std::vector<FrequentItemset> result;
  uint64_t false_candidates = 0;
  for (const Itemset& candidate : candidate_set) {
    uint64_t count = provider.CountAllPresent(candidate);
    if (count >= min_count) {
      result.push_back(FrequentItemset{candidate, count});
    } else {
      ++false_candidates;
    }
  }
  if (stats != nullptr) {
    stats->global_candidates = candidate_set.size();
    stats->false_candidates = false_candidates;
  }
  std::sort(result.begin(), result.end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              if (a.itemset.size() != b.itemset.size()) {
                return a.itemset.size() < b.itemset.size();
              }
              return a.itemset < b.itemset;
            });
  return result;
}

namespace {

/// Decorator for the pass-1 partition mines: records every count query the
/// level-wise walk issues (the candidate border union) while delegating to
/// the partition's provider. Uses the uncounted inner entry points so the
/// count_provider.* counters reflect the miner's own call pattern, not the
/// decoration.
class RecordingCountProvider : public CountProvider {
 public:
  /// `cap` bounds the recorded set: once reached, further queries are
  /// simply not recorded (they become memo misses, answered exactly by the
  /// final walk's streaming fallback) so the warm-up structures cannot
  /// outgrow the memory budget on candidate-explosion workloads.
  RecordingCountProvider(const CountProvider& inner,
                         std::unordered_set<Itemset, ItemsetHasher>* recorded,
                         size_t cap)
      : inner_(inner), recorded_(recorded), cap_(cap) {}

  uint64_t num_baskets() const override { return inner_.num_baskets(); }

 protected:
  uint64_t CountAllPresentImpl(const Itemset& s) const override {
    if (recorded_->size() < cap_) recorded_->insert(s);
    uint64_t count = 0;
    inner_.CountAllPresentBatchUncounted(std::span<const Itemset>(&s, 1),
                                         std::span<uint64_t>(&count, 1),
                                         nullptr);
    return count;
  }

  void CountAllPresentBatchImpl(std::span<const Itemset> queries,
                                std::span<uint64_t> counts,
                                ThreadPool* pool) const override {
    for (const Itemset& q : queries) {
      if (recorded_->size() >= cap_) break;
      recorded_->insert(q);
    }
    inner_.CountAllPresentBatchUncounted(queries, counts, pool);
  }

 private:
  const CountProvider& inner_;
  std::unordered_set<Itemset, ItemsetHasher>* recorded_;
  const size_t cap_;
};

/// Exact global counts by streaming the CCS1 partition files: each batch
/// maps one partition at a time, counts against it with the compressed
/// provider, and unmaps before the next — resident cost stays near one
/// partition. This is the MemoCountProvider fallback in the final walk, so
/// even queries the pass-1 warm-up never saw are answered exactly (at the
/// price of one extra streaming sweep per missed batch).
class PartitionStreamCountProvider : public CountProvider {
 public:
  PartitionStreamCountProvider(const std::vector<std::string>* paths,
                               uint64_t num_baskets)
      : paths_(paths), num_baskets_(num_baskets) {}

  uint64_t num_baskets() const override { return num_baskets_; }

 protected:
  uint64_t CountAllPresentImpl(const Itemset& s) const override {
    uint64_t count = 0;
    CountAllPresentBatchImpl(std::span<const Itemset>(&s, 1),
                             std::span<uint64_t>(&count, 1), nullptr);
    return count;
  }

  void CountAllPresentBatchImpl(std::span<const Itemset> queries,
                                std::span<uint64_t> counts,
                                ThreadPool* pool) const override {
    std::fill(counts.begin(), counts.end(), uint64_t{0});
    std::vector<uint64_t> partial(queries.size());
    for (const std::string& path : *paths_) {
      StatusOr<std::unique_ptr<io::MappedColumnShard>> shard =
          io::MappedColumnShard::Open(path);
      CORRMINE_CHECK(shard.ok())
          << "out-of-core spill file vanished mid-mine: "
          << shard.status().message();
      CompressedCountProvider provider(
          std::vector<const ColumnSource*>{shard.value().get()});
      provider.CountAllPresentBatchUncounted(queries, partial, pool);
      for (size_t i = 0; i < counts.size(); ++i) counts[i] += partial[i];
    }
  }

 private:
  const std::vector<std::string>* paths_;
  uint64_t num_baskets_;
};

}  // namespace

StatusOr<MiningResult> MineCorrelationsOutOfCore(
    const std::string& path, const OutOfCoreMinerOptions& options,
    OutOfCoreStats* stats) {
  if (options.memory_budget_bytes == 0) {
    return Status::InvalidArgument("memory budget must be positive");
  }
  // getrusage peak RSS is process-monotone; snapshot it so the budget
  // warning below only fires when THIS mine raised the peak (an earlier,
  // bigger run in the same process would otherwise trip it forever).
  const uint64_t peak_on_entry = PeakRssBytes();
  const std::string spill_dir =
      options.spill_dir.empty() ? path + ".spill" : options.spill_dir;
  std::error_code ec;
  std::filesystem::create_directories(spill_dir, ec);
  if (ec) {
    return Status::IOError("cannot create spill dir " + spill_dir + ": " +
                           ec.message());
  }

  MetricsRegistry& registry = options.miner.metrics != nullptr
                                  ? *options.miner.metrics
                                  : MetricsRegistry::Global();
  registry.GetGauge("mem.memory_budget_bytes")
      ->Set(static_cast<int64_t>(options.memory_budget_bytes));

  // Size partitions so the close-time transient stays inside the budget:
  // closing a partition briefly holds the row vectors (~R bytes of
  // uint32), the built columns (<= R payload), and the serialized file
  // string (~payload) at once — about 3x the accumulated row bytes — and
  // the budget must also cover the base process. budget/6 per partition
  // leaves half the budget for everything else.
  const uint64_t partition_row_bytes =
      std::max<uint64_t>(options.memory_budget_bytes / 6, uint64_t{1} << 20);

  // --- Spill: one streaming pass over the input -> CCS1 partition files.
  std::vector<std::string> part_paths;
  std::vector<uint64_t> part_rows;
  std::vector<std::vector<uint32_t>> rows_by_item;
  uint64_t local_rows = 0;
  uint64_t local_bytes = 0;
  uint64_t total_rows = 0;
  uint64_t spilled_payload = 0;

  const auto close_partition = [&]() -> Status {
    if (local_rows == 0) return Status::OK();
    TraceScope span("outofcore.spill_partition", -1,
                    static_cast<int>(part_paths.size()),
                    static_cast<int>(local_rows));
    CompressedVerticalIndex index(local_rows, std::move(rows_by_item));
    rows_by_item = {};
    std::string part_path =
        spill_dir + "/part-" + std::to_string(part_paths.size()) + ".ccs";
    CORRMINE_RETURN_NOT_OK(io::WriteColumnShardFile(index, part_path));
    spilled_payload += ComputeColumnStorageStats(index).payload_bytes;
    part_paths.push_back(std::move(part_path));
    part_rows.push_back(local_rows);
    local_rows = 0;
    local_bytes = 0;
    return Status::OK();
  };

  ItemId num_items = 0;
  {
    ProfileScope spill_profile("partition.spill");
    CORRMINE_RETURN_NOT_OK(io::StreamTransactionFile(
        path, &num_items, [&](std::vector<ItemId> basket) -> Status {
          for (const ItemId item : basket) {
            if (item >= rows_by_item.size()) {
              rows_by_item.resize(static_cast<size_t>(item) + 1);
            }
            rows_by_item[item].push_back(static_cast<uint32_t>(local_rows));
          }
          local_bytes += basket.size() * sizeof(uint32_t);
          ++local_rows;
          ++total_rows;
          return local_bytes >= partition_row_bytes ? close_partition()
                                                    : Status::OK();
        }));
    CORRMINE_RETURN_NOT_OK(close_partition());
  }
  // Pass-boundary peak-RSS samples (here and after each pass below): the
  // budget gate in bench_outofcore cares *when* the high-water mark
  // happened, not just its final value.
  registry.GetGauge("mem.peak_rss_spill_bytes")
      ->Set(static_cast<int64_t>(PeakRssBytes()));
  if (total_rows == 0) {
    return Status::FailedPrecondition("mining an empty database");
  }

  // Thread plumbing mirrors MineCorrelations: one pool spans all passes so
  // thread-count semantics (0 = hardware) resolve exactly once.
  const int threads = ThreadPool::ResolveThreadCount(options.miner.num_threads);
  std::unique_ptr<ThreadPool> owned_pool;
  ThreadPool* pool = options.miner.pool;
  if (pool == nullptr && threads > 1) {
    owned_pool = std::make_unique<ThreadPool>(threads - 1);
    pool = owned_pool.get();
  }
  MinerOptions base = options.miner;
  base.num_threads = threads;
  base.pool = pool;

  // --- Pass 1: mine each mapped partition at proportionally scaled
  // support, recording the union of count queries. The scaled threshold is
  // a pure warm-up heuristic — the final walk is exact either way.
  // A recorded query costs ~300 bytes across the warm-up structures (set
  // node, sorted candidate copy, count slots, memo node); cap the union so
  // they stay a bounded fraction of the budget. Queries past the cap fall
  // back to exact streaming counts in the final walk.
  const size_t query_cap = std::max<uint64_t>(
      4096, options.memory_budget_bytes / 512);
  std::unordered_set<Itemset, ItemsetHasher> recorded;
  {
    ProfileScope pass1_profile("partition.pass1");
    for (size_t p = 0; p < part_paths.size(); ++p) {
      TraceScope span("outofcore.mine_partition", -1, static_cast<int>(p),
                      static_cast<int>(part_rows[p]));
      CORRMINE_ASSIGN_OR_RETURN(std::unique_ptr<io::MappedColumnShard> shard,
                                io::MappedColumnShard::Open(part_paths[p]));
      CompressedCountProvider provider(
          std::vector<const ColumnSource*>{shard.get()});
      RecordingCountProvider recording(provider, &recorded, query_cap);
      MinerOptions local = base;
      local.keep_frontier = false;
      local.progress = nullptr;
      local.support.min_count = std::max<uint64_t>(
          1, static_cast<uint64_t>(std::floor(
                 static_cast<double>(base.support.min_count) *
                 static_cast<double>(part_rows[p]) /
                 static_cast<double>(total_rows))));
      CORRMINE_RETURN_NOT_OK(
          MineCorrelations(recording, num_items, local).status());
    }
  }
  registry.GetGauge("mem.peak_rss_pass1_bytes")
      ->Set(static_cast<int64_t>(PeakRssBytes()));

  // --- Pass 2: stream the partitions once, answering the whole candidate
  // union with exact global counts into the memo. Sorted order makes the
  // pass deterministic (and the memo content independent of hash order).
  std::vector<Itemset> candidates(recorded.begin(), recorded.end());
  std::sort(candidates.begin(), candidates.end(),
            [](const Itemset& a, const Itemset& b) {
              if (a.size() != b.size()) return a.size() < b.size();
              return a < b;
            });
  std::vector<uint64_t> totals(candidates.size(), 0);
  std::vector<uint64_t> partial(candidates.size());
  {
    ProfileScope pass2_profile("partition.pass2");
    for (size_t p = 0; p < part_paths.size(); ++p) {
      TraceScope span("outofcore.count_partition", -1, static_cast<int>(p),
                      static_cast<int>(candidates.size()));
      CORRMINE_ASSIGN_OR_RETURN(std::unique_ptr<io::MappedColumnShard> shard,
                                io::MappedColumnShard::Open(part_paths[p]));
      CompressedCountProvider provider(
          std::vector<const ColumnSource*>{shard.get()});
      provider.CountAllPresentBatchUncounted(candidates, partial, pool);
      for (size_t i = 0; i < totals.size(); ++i) totals[i] += partial[i];
    }
  }
  registry.GetGauge("mem.peak_rss_pass2_bytes")
      ->Set(static_cast<int64_t>(PeakRssBytes()));
  std::unordered_map<Itemset, uint64_t, ItemsetHasher> memo;
  memo.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    memo.emplace(candidates[i], totals[i]);
  }

  // --- Final: the real walk, over memoized exact counts with a streaming
  // fallback, under the caller's unmodified mining options.
  PartitionStreamCountProvider fallback(&part_paths, total_rows);
  MemoCountProvider memo_provider(&memo, fallback);
  StatusOr<MiningResult> result = MineCorrelations(memo_provider, num_items,
                                                   base);

  registry.GetCounter("outofcore.partitions")->Add(part_paths.size());
  registry.GetCounter("outofcore.candidate_queries")->Add(candidates.size());
  registry.GetCounter("outofcore.memo_misses")
      ->Add(memo_provider.memo_misses());
  registry.GetGauge("mem.spilled_payload_bytes")
      ->Set(static_cast<int64_t>(spilled_payload));
  if (stats != nullptr) {
    stats->num_baskets = total_rows;
    stats->num_items = num_items;
    stats->partitions = part_paths.size();
    stats->spilled_payload_bytes = spilled_payload;
    stats->candidate_queries = candidates.size();
    stats->memo_hits = memo_provider.memo_hits();
    stats->memo_misses = memo_provider.memo_misses();
  }

  if (!options.keep_spill) {
    for (const std::string& part_path : part_paths) {
      std::filesystem::remove(part_path, ec);
    }
    std::filesystem::remove(spill_dir, ec);  // only succeeds when empty
  }

  const uint64_t peak = PeakRssBytes();
  if (result.ok() && peak > peak_on_entry &&
      peak > options.memory_budget_bytes +
                 options.memory_budget_bytes / 10) {
    CORRMINE_LOG(kWarning) << "out-of-core peak RSS " << peak
                           << " exceeded memory budget "
                           << options.memory_budget_bytes << " by more than 10%";
  }
  return result;
}

}  // namespace corrmine
