#include "mining/partition.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "itemset/count_provider.h"

namespace corrmine {

StatusOr<std::vector<FrequentItemset>> MineFrequentItemsetsPartition(
    const TransactionDatabase& db, const PartitionOptions& options,
    PartitionStats* stats) {
  if (db.num_baskets() == 0) {
    return Status::FailedPrecondition("mining an empty database");
  }
  if (!(options.min_support_fraction > 0.0 &&
        options.min_support_fraction <= 1.0)) {
    return Status::InvalidArgument("min_support_fraction must be in (0,1]");
  }
  if (options.num_partitions < 1) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  size_t n = db.num_baskets();
  size_t num_partitions =
      std::min<size_t>(static_cast<size_t>(options.num_partitions), n);

  // Phase 1: mine each horizontal chunk at the same fractional threshold.
  std::unordered_set<Itemset, ItemsetHasher> candidate_set;
  size_t chunk = (n + num_partitions - 1) / num_partitions;
  for (size_t p = 0; p < num_partitions; ++p) {
    size_t begin = p * chunk;
    size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    TransactionDatabase part(db.num_items());
    for (size_t row = begin; row < end; ++row) {
      CORRMINE_RETURN_NOT_OK(part.AddBasket(db.basket(row)));
    }
    BitmapCountProvider part_provider(part);
    AprioriOptions local;
    local.min_support_fraction = options.min_support_fraction;
    local.max_level = options.max_level;
    CORRMINE_ASSIGN_OR_RETURN(
        std::vector<FrequentItemset> local_frequent,
        MineFrequentItemsets(part_provider, db.num_items(), local));
    for (FrequentItemset& f : local_frequent) {
      candidate_set.insert(std::move(f.itemset));
    }
  }

  // Phase 2: one global pass over the union of local winners.
  uint64_t min_count = static_cast<uint64_t>(std::ceil(
      options.min_support_fraction * static_cast<double>(n) - 1e-9));
  if (min_count == 0) min_count = 1;
  BitmapCountProvider provider(db);
  std::vector<FrequentItemset> result;
  uint64_t false_candidates = 0;
  for (const Itemset& candidate : candidate_set) {
    uint64_t count = provider.CountAllPresent(candidate);
    if (count >= min_count) {
      result.push_back(FrequentItemset{candidate, count});
    } else {
      ++false_candidates;
    }
  }
  if (stats != nullptr) {
    stats->global_candidates = candidate_set.size();
    stats->false_candidates = false_candidates;
  }
  std::sort(result.begin(), result.end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              if (a.itemset.size() != b.itemset.size()) {
                return a.itemset.size() < b.itemset.size();
              }
              return a.itemset < b.itemset;
            });
  return result;
}

}  // namespace corrmine
