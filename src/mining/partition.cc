#include "mining/partition.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/profiler.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/border_repair.h"
#include "io/column_store.h"
#include "io/stream_reader.h"
#include "itemset/count_provider.h"
#include "itemset/counting_column.h"

namespace corrmine {

StatusOr<std::vector<FrequentItemset>> MineFrequentItemsetsPartition(
    const TransactionDatabase& db, const PartitionOptions& options,
    PartitionStats* stats) {
  if (db.num_baskets() == 0) {
    return Status::FailedPrecondition("mining an empty database");
  }
  if (!(options.min_support_fraction > 0.0 &&
        options.min_support_fraction <= 1.0)) {
    return Status::InvalidArgument("min_support_fraction must be in (0,1]");
  }
  if (options.num_partitions < 1) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  size_t n = db.num_baskets();
  size_t num_partitions =
      std::min<size_t>(static_cast<size_t>(options.num_partitions), n);

  // Phase 1: mine each horizontal chunk at the same fractional threshold.
  std::unordered_set<Itemset, ItemsetHasher> candidate_set;
  size_t chunk = (n + num_partitions - 1) / num_partitions;
  for (size_t p = 0; p < num_partitions; ++p) {
    size_t begin = p * chunk;
    size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    TransactionDatabase part(db.num_items());
    for (size_t row = begin; row < end; ++row) {
      CORRMINE_RETURN_NOT_OK(part.AddBasket(db.basket(row)));
    }
    BitmapCountProvider part_provider(part);
    AprioriOptions local;
    local.min_support_fraction = options.min_support_fraction;
    local.max_level = options.max_level;
    CORRMINE_ASSIGN_OR_RETURN(
        std::vector<FrequentItemset> local_frequent,
        MineFrequentItemsets(part_provider, db.num_items(), local));
    for (FrequentItemset& f : local_frequent) {
      candidate_set.insert(std::move(f.itemset));
    }
  }

  // Phase 2: one global pass over the union of local winners.
  uint64_t min_count = static_cast<uint64_t>(std::ceil(
      options.min_support_fraction * static_cast<double>(n) - 1e-9));
  if (min_count == 0) min_count = 1;
  BitmapCountProvider provider(db);
  std::vector<FrequentItemset> result;
  uint64_t false_candidates = 0;
  for (const Itemset& candidate : candidate_set) {
    uint64_t count = provider.CountAllPresent(candidate);
    if (count >= min_count) {
      result.push_back(FrequentItemset{candidate, count});
    } else {
      ++false_candidates;
    }
  }
  if (stats != nullptr) {
    stats->global_candidates = candidate_set.size();
    stats->false_candidates = false_candidates;
  }
  std::sort(result.begin(), result.end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              if (a.itemset.size() != b.itemset.size()) {
                return a.itemset.size() < b.itemset.size();
              }
              return a.itemset < b.itemset;
            });
  return result;
}

namespace {

/// Decorator for the pass-1 partition mines: records every count query the
/// level-wise walk issues, deduplicated, in first-issue order. The order
/// matters: partition mines run concurrently under the admission
/// controller and the caller merges each partition's recording in
/// partition order under a global cap, so replaying first-issue order
/// makes the merged candidate union identical for any thread count or
/// admission width. Uses the uncounted inner entry points so the
/// count_provider.* counters reflect the miner's own call pattern, not
/// the decoration.
class RecordingCountProvider : public CountProvider {
 public:
  /// `cap` bounds the recorded set: once reached, further queries are
  /// simply not recorded (they become memo misses, answered exactly by the
  /// final walk's streaming fallback) so the warm-up structures cannot
  /// outgrow the memory budget on candidate-explosion workloads.
  RecordingCountProvider(const CountProvider& inner, size_t cap)
      : inner_(inner), cap_(cap) {}

  uint64_t num_baskets() const override { return inner_.num_baskets(); }

  /// The recording in first-issue order, surrendered to the merger.
  std::vector<Itemset> TakeRecorded() { return std::move(ordered_); }

 protected:
  uint64_t CountAllPresentImpl(const Itemset& s) const override {
    Record(s);
    uint64_t count = 0;
    inner_.CountAllPresentBatchUncounted(std::span<const Itemset>(&s, 1),
                                         std::span<uint64_t>(&count, 1),
                                         nullptr);
    return count;
  }

  void CountAllPresentBatchImpl(std::span<const Itemset> queries,
                                std::span<uint64_t> counts,
                                ThreadPool* pool) const override {
    for (const Itemset& q : queries) {
      if (seen_.size() >= cap_) break;
      Record(q);
    }
    inner_.CountAllPresentBatchUncounted(queries, counts, pool);
  }

 private:
  void Record(const Itemset& q) const {
    if (seen_.size() >= cap_) return;
    if (seen_.insert(q).second) ordered_.push_back(q);
  }

  const CountProvider& inner_;
  const size_t cap_;
  // The miner issues queries from the walking thread only; inner
  // parallelism lives below the provider boundary, so plain containers
  // suffice. mutable: the recording is bookkeeping under const counting.
  mutable std::unordered_set<Itemset, ItemsetHasher> seen_;
  mutable std::vector<Itemset> ordered_;
};

/// Exact global counts by streaming the CCS1 partition files: each batch
/// maps one partition at a time, counts against it with the compressed
/// provider, and unmaps before the next — resident cost stays near one
/// partition. This is the MemoCountProvider fallback in the final walk, so
/// even queries the pass-1 warm-up never saw are answered exactly (at the
/// price of one extra streaming sweep per missed batch).
class PartitionStreamCountProvider : public CountProvider {
 public:
  PartitionStreamCountProvider(const std::vector<std::string>* paths,
                               uint64_t num_baskets)
      : paths_(paths), num_baskets_(num_baskets) {}

  uint64_t num_baskets() const override { return num_baskets_; }

 protected:
  uint64_t CountAllPresentImpl(const Itemset& s) const override {
    uint64_t count = 0;
    CountAllPresentBatchImpl(std::span<const Itemset>(&s, 1),
                             std::span<uint64_t>(&count, 1), nullptr);
    return count;
  }

  void CountAllPresentBatchImpl(std::span<const Itemset> queries,
                                std::span<uint64_t> counts,
                                ThreadPool* pool) const override {
    std::fill(counts.begin(), counts.end(), uint64_t{0});
    std::vector<uint64_t> partial(queries.size());
    for (const std::string& path : *paths_) {
      StatusOr<std::unique_ptr<io::MappedColumnShard>> shard =
          io::MappedColumnShard::Open(path);
      CORRMINE_CHECK(shard.ok())
          << "out-of-core spill file vanished mid-mine: "
          << shard.status().message();
      CompressedCountProvider provider(
          std::vector<const ColumnSource*>{shard.value().get()});
      provider.CountAllPresentBatchUncounted(queries, partial, pool);
      for (size_t i = 0; i < counts.size(); ++i) counts[i] += partial[i];
    }
  }

 private:
  const std::vector<std::string>* paths_;
  uint64_t num_baskets_;
};

}  // namespace

StatusOr<MiningResult> MineCorrelationsOutOfCore(
    const std::string& path, const OutOfCoreMinerOptions& options,
    OutOfCoreStats* stats) {
  if (options.memory_budget_bytes == 0) {
    return Status::InvalidArgument("memory budget must be positive");
  }
  if (options.partition_budget_bytes > options.memory_budget_bytes) {
    return Status::InvalidArgument(
        "partition budget exceeds the memory budget");
  }
  // getrusage peak RSS is process-monotone; snapshot it so the budget
  // warning below only fires when THIS mine raised the peak (an earlier,
  // bigger run in the same process would otherwise trip it forever).
  const uint64_t peak_on_entry = PeakRssBytes();
  const std::string spill_dir =
      options.spill_dir.empty() ? path + ".spill" : options.spill_dir;
  std::error_code ec;
  std::filesystem::create_directories(spill_dir, ec);
  if (ec) {
    return Status::IOError("cannot create spill dir " + spill_dir + ": " +
                           ec.message());
  }

  MetricsRegistry& registry = options.miner.metrics != nullptr
                                  ? *options.miner.metrics
                                  : MetricsRegistry::Global();
  registry.GetGauge("mem.memory_budget_bytes")
      ->Set(static_cast<int64_t>(options.memory_budget_bytes));

  // Partition sizing: closing a partition briefly holds the row vectors
  // (~R bytes of uint32), the built columns (<= R payload), and the
  // serialized file string (~payload) at once — about 3x the accumulated
  // row bytes — and the budget must also cover the base process. The
  // budget/6 default leaves half the budget for everything else; explicit
  // --partition-budget values are taken verbatim (validated above).
  const uint64_t partition_row_bytes =
      options.partition_budget_bytes != 0
          ? options.partition_budget_bytes
          : std::max<uint64_t>(options.memory_budget_bytes / 6,
                               uint64_t{1} << 20);

  // Thread plumbing mirrors MineCorrelations: one pool spans all passes so
  // thread-count semantics (0 = hardware) resolve exactly once. Resolved
  // before the spill because pass-1 mines pipeline into it.
  const int threads = ThreadPool::ResolveThreadCount(options.miner.num_threads);
  std::unique_ptr<ThreadPool> owned_pool;
  ThreadPool* pool = options.miner.pool;
  if (pool == nullptr && threads > 1) {
    owned_pool = std::make_unique<ThreadPool>(threads - 1);
    pool = owned_pool.get();
  }
  MinerOptions base = options.miner;
  base.num_threads = threads;
  base.pool = pool;

  // Admission controller: cap concurrent partitions so admitted x
  // per-partition budget stays inside half the memory budget (the other
  // half covers the spill accumulator and the warm-up structures). At the
  // default partition budget this admits min(threads, 3); a partition
  // budget equal to the memory budget forces admitted = 1 — exactly the
  // serial map-count-unmap behavior this path degrades to without a pool.
  const size_t admitted =
      pool == nullptr
          ? size_t{1}
          : static_cast<size_t>(std::clamp<uint64_t>(
                options.memory_budget_bytes / (2 * partition_row_bytes), 1,
                static_cast<uint64_t>(threads)));
  registry.GetGauge("outofcore.admitted_partitions")
      ->Set(static_cast<int64_t>(admitted));

  // Spill files are removed on EVERY exit path (including mid-pass error
  // returns) unless the caller asked to keep them; paths register before
  // the write so partial files from failed writes are removed too.
  struct SpillGuard {
    std::vector<std::string> paths;
    std::string dir;
    bool keep = false;
    ~SpillGuard() {
      if (keep) return;
      std::error_code guard_ec;
      for (const std::string& p : paths) {
        std::filesystem::remove(p, guard_ec);
      }
      std::filesystem::remove(dir, guard_ec);  // only succeeds when empty
    }
  } guard;
  guard.dir = spill_dir;
  guard.keep = options.keep_spill;

  // --- Spill + pass 1, pipelined: one streaming pass over the input
  // builds CCS v2 partition files, and each file's partition mine is
  // submitted as a scheduler task the moment it closes, so pass-1 counting
  // overlaps spill I/O. The caller merges finished recordings strictly in
  // partition order (blocking admission until the merge frontier frees a
  // slot), which makes the merged candidate union — and therefore every
  // downstream deterministic stat — independent of thread count and
  // admission width.
  //
  // A recorded query costs ~300 bytes across the warm-up structures (set
  // node, sorted candidate copy, count slots, memo node); cap the union so
  // they stay a bounded fraction of the budget. Queries past the cap fall
  // back to exact streaming counts in the final walk.
  const size_t query_cap = std::max<uint64_t>(
      4096, options.memory_budget_bytes / 512);

  struct PartitionTask {
    size_t index = 0;
    std::string path;
    uint64_t rows = 0;
    uint64_t min_count = 1;
    ItemId num_items = 0;
    Status status;
    std::vector<Itemset> recorded;  // first-issue order, capped
    bool done = false;
  };

  std::deque<PartitionTask> tasks;  // deque: stable element addresses
  std::mutex mu;
  std::condition_variable cv;
  size_t in_flight = 0;   // submitted, not yet merged
  size_t next_merge = 0;  // merge frontier (partition order)
  Status pass1_error;     // first failure in partition order
  std::unordered_set<Itemset, ItemsetHasher> recorded_union;

  // One partition's pass-1 mine: map the shard, mine at the task's scaled
  // support, keep the capped query recording. Runs on a worker under
  // admission, or inline on the caller at admitted = 1.
  const auto mine_partition = [&base, query_cap](PartitionTask* t) {
    ProfileScope pass1_profile("partition.pass1");
    TraceScope span("outofcore.mine_partition", -1,
                    static_cast<int>(t->index), static_cast<int>(t->rows));
    if (t->num_items == 0) return;  // all-empty baskets: nothing to record
    StatusOr<std::unique_ptr<io::MappedColumnShard>> shard =
        io::MappedColumnShard::Open(t->path);
    if (!shard.ok()) {
      t->status = shard.status();
      return;
    }
    CompressedCountProvider provider(
        std::vector<const ColumnSource*>{shard.value().get()});
    RecordingCountProvider recording(provider, query_cap);
    MinerOptions local = base;
    local.keep_frontier = false;
    local.progress = nullptr;
    local.support.min_count = t->min_count;
    const StatusOr<MiningResult> mined =
        MineCorrelations(recording, t->num_items, local);
    if (!mined.ok()) {
      t->status = mined.status();
      return;
    }
    t->recorded = recording.TakeRecorded();
  };

  // Folds every finished task at the merge frontier into the global union
  // (capped) and frees its admission slot. Caller thread only; mu held.
  const auto merge_ready = [&]() {
    while (next_merge < tasks.size() && tasks[next_merge].done) {
      PartitionTask& t = tasks[next_merge];
      if (pass1_error.ok() && !t.status.ok()) pass1_error = t.status;
      for (Itemset& q : t.recorded) {
        if (recorded_union.size() >= query_cap) break;
        recorded_union.insert(std::move(q));
      }
      t.recorded = {};
      ++next_merge;
      --in_flight;
    }
  };

  // Blocks the caller (helping with queued work, never parking idle while
  // tasks exist) until all submitted partition mines are merged.
  const auto drain_pass1 = [&]() {
    if (pool == nullptr) {
      std::unique_lock<std::mutex> lock(mu);
      merge_ready();
      return;
    }
    pool->HelpUntil(mu, cv, [&]() {
      merge_ready();
      return next_merge == tasks.size();
    });
  };

  std::vector<std::string> part_paths;
  std::vector<uint64_t> part_rows;
  std::vector<std::vector<uint32_t>> rows_by_item;
  uint64_t local_rows = 0;
  uint64_t local_bytes = 0;
  uint64_t total_rows = 0;
  uint64_t spilled_raw = 0;
  uint64_t spilled_encoded = 0;
  uint64_t bytes_consumed = 0;
  uint64_t input_file_bytes = 0;
  {
    std::error_code size_ec;
    const auto file_size = std::filesystem::file_size(path, size_ec);
    if (!size_ec) input_file_bytes = static_cast<uint64_t>(file_size);
  }

  const auto close_partition = [&]() -> Status {
    if (local_rows == 0) return Status::OK();
    const size_t index = part_paths.size();
    const ItemId part_items = static_cast<ItemId>(rows_by_item.size());
    TraceScope span("outofcore.spill_partition", -1, static_cast<int>(index),
                    static_cast<int>(local_rows));
    CompressedVerticalIndex vindex(local_rows, std::move(rows_by_item));
    rows_by_item = {};
    std::string part_path =
        spill_dir + "/part-" + std::to_string(index) + ".ccs";
    guard.paths.push_back(part_path);
    io::ColumnShardWriteStats wstats;
    CORRMINE_RETURN_NOT_OK(
        io::WriteColumnShardFile(vindex, part_path, {}, &wstats));
    spilled_raw += wstats.raw_payload_bytes;
    spilled_encoded += wstats.payload_bytes;
    part_paths.push_back(part_path);
    part_rows.push_back(local_rows);

    // Scaled pass-1 support without knowing the final row count yet: a
    // total estimated from the byte fraction consumed so far. It is a
    // pure function of the input prefix and file size — deterministic
    // across thread counts — and only a warm-up heuristic: the final walk
    // is exact whatever threshold the partition mines used.
    uint64_t est_total_rows = total_rows;
    if (input_file_bytes > bytes_consumed && bytes_consumed > 0) {
      est_total_rows = std::max<uint64_t>(
          total_rows,
          static_cast<uint64_t>(static_cast<double>(total_rows) *
                                static_cast<double>(input_file_bytes) /
                                static_cast<double>(bytes_consumed)));
    }

    tasks.emplace_back();
    PartitionTask* task = &tasks.back();
    task->index = index;
    task->path = part_path;
    task->rows = local_rows;
    task->num_items = part_items;
    task->min_count = std::max<uint64_t>(
        1, static_cast<uint64_t>(std::floor(
               static_cast<double>(base.support.min_count) *
               static_cast<double>(local_rows) /
               static_cast<double>(est_total_rows))));
    local_rows = 0;
    local_bytes = 0;

    if (pool == nullptr || admitted == 1) {
      // Degraded/serial admission: mine at close on this thread — still
      // one shard mapped at a time, exactly the pre-pipeline residency.
      std::unique_lock<std::mutex> lock(mu);
      ++in_flight;
      merge_ready();
      if (pass1_error.ok()) {
        lock.unlock();
        mine_partition(task);
        lock.lock();
      }
      task->done = true;
      merge_ready();
      return pass1_error;
    }

    {
      std::unique_lock<std::mutex> lock(mu);
      merge_ready();
      if (pass1_error.ok() && in_flight >= admitted) {
        lock.unlock();
        pool->HelpUntil(mu, cv, [&]() {
          merge_ready();
          return !pass1_error.ok() || in_flight < admitted;
        });
        lock.lock();
      }
      if (!pass1_error.ok()) {
        // A merged partition failed: drain what is still running, then
        // abort the stream (the guard removes the spill files).
        lock.unlock();
        pool->HelpUntil(mu, cv, [&]() {
          merge_ready();
          return next_merge + 1 == tasks.size();
        });
        {
          std::unique_lock<std::mutex> drain_lock(mu);
          ++in_flight;               // balance the merge-time decrement
          tasks.back().done = true;  // never submitted; merge it empty
          merge_ready();
        }
        return pass1_error;
      }
      ++in_flight;
    }
    pool->Submit([task, &mine_partition, &mu, &cv]() {
      mine_partition(task);
      // Notify while holding the lock: the waiter must reacquire `mu` to
      // observe `done` and return, which keeps `cv` alive until this
      // notify_all has completed (it is destroyed at function exit).
      std::lock_guard<std::mutex> lock(mu);
      task->done = true;
      cv.notify_all();
    });
    return Status::OK();
  };

  const auto spill_pass1_start = std::chrono::steady_clock::now();
  ItemId num_items = 0;
  Status spill_status;
  {
    ProfileScope spill_profile("partition.spill");
    spill_status = io::StreamTransactionFile(
        path, &num_items,
        [&](std::vector<ItemId> basket) -> Status {
          for (const ItemId item : basket) {
            if (item >= rows_by_item.size()) {
              rows_by_item.resize(static_cast<size_t>(item) + 1);
            }
            rows_by_item[item].push_back(static_cast<uint32_t>(local_rows));
          }
          local_bytes += basket.size() * sizeof(uint32_t);
          ++local_rows;
          ++total_rows;
          return local_bytes >= partition_row_bytes ? close_partition()
                                                    : Status::OK();
        },
        &bytes_consumed);
    if (spill_status.ok()) spill_status = close_partition();
  }
  // Pass-boundary peak-RSS samples (here and after each pass below): the
  // budget gate in bench_outofcore cares *when* the high-water mark
  // happened, not just its final value. Under the pipeline the spill
  // sample is taken when the stream ends (pass-1 tasks may still run).
  registry.GetGauge("mem.peak_rss_spill_bytes")
      ->Set(static_cast<int64_t>(PeakRssBytes()));

  // Every in-flight mine references the locals above, so drain BEFORE any
  // error return — a corrupt stream tail or failed shard write must not
  // leave workers running over destroyed state (the guard then removes
  // whatever was spilled).
  drain_pass1();
  if (!spill_status.ok()) return spill_status;
  if (total_rows == 0) {
    return Status::FailedPrecondition("mining an empty database");
  }
  if (!pass1_error.ok()) return pass1_error;
  const double spill_pass1_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    spill_pass1_start)
          .count();
  registry.GetGauge("mem.peak_rss_pass1_bytes")
      ->Set(static_cast<int64_t>(PeakRssBytes()));

  // --- Pass 2: count the whole candidate union against every partition
  // with exact global counts into the memo. Partitions count concurrently
  // (admitted-many chunks, one shard mapped per running chunk); each slot
  // accumulates into its own partial array and the slot arrays reduce in
  // slot order afterwards — exact uint64 sums, so the totals are
  // identical for any schedule. Sorted candidate order makes the memo
  // content independent of hash order.
  std::vector<Itemset> candidates(recorded_union.begin(),
                                  recorded_union.end());
  recorded_union = {};
  std::sort(candidates.begin(), candidates.end(),
            [](const Itemset& a, const Itemset& b) {
              if (a.size() != b.size()) return a.size() < b.size();
              return a < b;
            });
  std::vector<uint64_t> totals(candidates.size(), 0);
  const auto pass2_start = std::chrono::steady_clock::now();
  {
    ProfileScope pass2_profile("partition.pass2");
    const size_t num_parts = part_paths.size();
    const size_t grain = (num_parts + admitted - 1) / admitted;
    const size_t slot_bound = ParallelForSlotBound(pool, num_parts, grain);
    std::vector<std::vector<uint64_t>> slot_totals(
        slot_bound, std::vector<uint64_t>(candidates.size(), 0));
    std::vector<std::vector<uint64_t>> slot_partial(
        slot_bound, std::vector<uint64_t>(candidates.size(), 0));
    CORRMINE_RETURN_NOT_OK(ParallelForSlots(
        pool, num_parts, grain,
        [&](size_t slot, size_t begin, size_t end) -> Status {
          ProfileScope slot_profile("partition.pass2");
          for (size_t p = begin; p < end; ++p) {
            TraceScope span("outofcore.count_partition", -1,
                            static_cast<int>(p),
                            static_cast<int>(candidates.size()));
            CORRMINE_ASSIGN_OR_RETURN(
                std::unique_ptr<io::MappedColumnShard> shard,
                io::MappedColumnShard::Open(part_paths[p]));
            CompressedCountProvider provider(
                std::vector<const ColumnSource*>{shard.get()});
            provider.CountAllPresentBatchUncounted(candidates,
                                                   slot_partial[slot], pool);
            std::vector<uint64_t>& acc = slot_totals[slot];
            for (size_t i = 0; i < acc.size(); ++i) {
              acc[i] += slot_partial[slot][i];
            }
          }
          return Status::OK();
        }));
    for (const std::vector<uint64_t>& acc : slot_totals) {
      for (size_t i = 0; i < totals.size(); ++i) totals[i] += acc[i];
    }
  }
  const double pass2_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    pass2_start)
          .count();
  registry.GetGauge("mem.peak_rss_pass2_bytes")
      ->Set(static_cast<int64_t>(PeakRssBytes()));
  std::unordered_map<Itemset, uint64_t, ItemsetHasher> memo;
  memo.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    memo.emplace(candidates[i], totals[i]);
  }

  // --- Final: the real walk, over memoized exact counts with a streaming
  // fallback, under the caller's unmodified mining options.
  PartitionStreamCountProvider fallback(&part_paths, total_rows);
  MemoCountProvider memo_provider(&memo, fallback);
  StatusOr<MiningResult> result = MineCorrelations(memo_provider, num_items,
                                                   base);

  registry.GetCounter("outofcore.partitions")->Add(part_paths.size());
  registry.GetCounter("outofcore.candidate_queries")->Add(candidates.size());
  registry.GetCounter("outofcore.memo_misses")
      ->Add(memo_provider.memo_misses());
  registry.GetGauge("mem.spilled_payload_bytes")
      ->Set(static_cast<int64_t>(spilled_raw));
  registry.GetGauge("column.spill_bytes")
      ->Set(static_cast<int64_t>(spilled_encoded));
  registry.GetGauge("column.spill_raw_bytes")
      ->Set(static_cast<int64_t>(spilled_raw));
  registry.GetGauge("column.spill_ratio_x1000")
      ->Set(spilled_raw == 0
                ? int64_t{1000}
                : static_cast<int64_t>(spilled_encoded * 1000 /
                                       spilled_raw));
  if (stats != nullptr) {
    stats->num_baskets = total_rows;
    stats->num_items = num_items;
    stats->partitions = part_paths.size();
    stats->spilled_payload_bytes = spilled_raw;
    stats->spilled_encoded_bytes = spilled_encoded;
    stats->admitted = static_cast<int>(admitted);
    stats->spill_pass1_seconds = spill_pass1_seconds;
    stats->pass2_seconds = pass2_seconds;
    stats->candidate_queries = candidates.size();
    stats->memo_hits = memo_provider.memo_hits();
    stats->memo_misses = memo_provider.memo_misses();
  }

  const uint64_t peak = PeakRssBytes();
  if (result.ok() && peak > peak_on_entry &&
      peak > options.memory_budget_bytes +
                 options.memory_budget_bytes / 10) {
    CORRMINE_LOG(kWarning) << "out-of-core peak RSS " << peak
                           << " exceeded memory budget "
                           << options.memory_budget_bytes << " by more than 10%";
  }
  return result;
}

}  // namespace corrmine
