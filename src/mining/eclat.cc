#include "mining/eclat.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <memory>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "itemset/bitmap.h"

namespace corrmine {

namespace {

struct EclatState {
  uint64_t min_count;
  int max_level;  // 0 = unbounded.
  std::vector<FrequentItemset>* out;
  /// Tidset intersections performed in this branch (private per branch so
  /// the hot loop stays atomic-free; summed into the registry at the end).
  uint64_t* intersections;
};

/// Depth-first extension: `prefix` is frequent with basket set
/// `prefix_rows`; `tail` holds the frequent items greater than prefix's
/// last item, each with its own basket bitmap.
void Extend(const Itemset& prefix, const Bitmap& prefix_rows,
            const std::vector<std::pair<ItemId, const Bitmap*>>& tail,
            const EclatState& state) {
  if (state.max_level != 0 &&
      static_cast<int>(prefix.size()) >= state.max_level) {
    return;
  }
  // Intersect the prefix's rows with each tail item; survivors recurse.
  // The fused AndCountInto kernel materializes the joined tidset and
  // counts it in one pass, and the count is kept so the emit below never
  // re-popcounts the bitmap.
  std::vector<std::pair<ItemId, Bitmap>> extensions;
  std::vector<uint64_t> extension_counts;
  for (const auto& [item, rows] : tail) {
    ++*state.intersections;
    Bitmap joined;
    const uint64_t count = Bitmap::AndCountInto(prefix_rows, *rows, &joined);
    if (count >= state.min_count) {
      extensions.emplace_back(item, std::move(joined));
      extension_counts.push_back(count);
    }
  }
  for (size_t i = 0; i < extensions.size(); ++i) {
    Itemset extended = prefix.WithItem(extensions[i].first);
    state.out->push_back(FrequentItemset{extended, extension_counts[i]});
    std::vector<std::pair<ItemId, const Bitmap*>> next_tail;
    for (size_t j = i + 1; j < extensions.size(); ++j) {
      next_tail.emplace_back(extensions[j].first, &extensions[j].second);
    }
    if (!next_tail.empty()) {
      Extend(extended, extensions[i].second, next_tail, state);
    }
  }
}

/// Per-shard basket set of an itemset: one bitmap per database shard.
/// Support is the sum of per-shard popcounts, exact by construction.
struct ShardedRows {
  std::vector<Bitmap> rows;

  uint64_t Count() const {
    uint64_t total = 0;
    for (const Bitmap& b : rows) total += b.Count();
    return total;
  }
};

/// Sharded analog of Extend: one *logical* intersection per tail item (K
/// short per-shard ANDs), counted once so "eclat.intersections" is
/// K-invariant.
void ExtendSharded(const Itemset& prefix, const ShardedRows& prefix_rows,
                   const std::vector<std::pair<ItemId, const ShardedRows*>>& tail,
                   const EclatState& state) {
  if (state.max_level != 0 &&
      static_cast<int>(prefix.size()) >= state.max_level) {
    return;
  }
  std::vector<std::pair<ItemId, ShardedRows>> extensions;
  std::vector<uint64_t> extension_counts;
  for (const auto& [item, rows] : tail) {
    ++*state.intersections;
    ShardedRows joined;
    joined.rows.reserve(prefix_rows.rows.size());
    uint64_t count = 0;
    for (size_t s = 0; s < prefix_rows.rows.size(); ++s) {
      Bitmap b;
      count += Bitmap::AndCountInto(prefix_rows.rows[s], rows->rows[s], &b);
      joined.rows.push_back(std::move(b));
    }
    if (count >= state.min_count) {
      extensions.emplace_back(item, std::move(joined));
      extension_counts.push_back(count);
    }
  }
  for (size_t i = 0; i < extensions.size(); ++i) {
    Itemset extended = prefix.WithItem(extensions[i].first);
    state.out->push_back(FrequentItemset{extended, extension_counts[i]});
    std::vector<std::pair<ItemId, const ShardedRows*>> next_tail;
    for (size_t j = i + 1; j < extensions.size(); ++j) {
      next_tail.emplace_back(extensions[j].first, &extensions[j].second);
    }
    if (!next_tail.empty()) {
      ExtendSharded(extended, extensions[i].second, next_tail, state);
    }
  }
}

Status ValidateEclatOptions(uint64_t num_baskets,
                            const EclatOptions& options) {
  if (num_baskets == 0) {
    return Status::FailedPrecondition("mining an empty database");
  }
  if (!(options.min_support_fraction > 0.0 &&
        options.min_support_fraction <= 1.0)) {
    return Status::InvalidArgument("min_support_fraction must be in (0,1]");
  }
  if (options.num_threads < 0) {
    return Status::InvalidArgument("num_threads must be >= 0");
  }
  return Status::OK();
}

uint64_t EclatMinCount(uint64_t n, double min_support_fraction) {
  uint64_t min_count = static_cast<uint64_t>(
      std::ceil(min_support_fraction * static_cast<double>(n) - 1e-9));
  return min_count == 0 ? 1 : min_count;
}

/// (size, lex) order shared by all miners.
void SortFrequent(std::vector<FrequentItemset>* result) {
  std::sort(result->begin(), result->end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              if (a.itemset.size() != b.itemset.size()) {
                return a.itemset.size() < b.itemset.size();
              }
              return a.itemset < b.itemset;
            });
}

}  // namespace

StatusOr<std::vector<FrequentItemset>> MineFrequentItemsetsEclat(
    const TransactionDatabase& db, const EclatOptions& options) {
  CORRMINE_RETURN_NOT_OK(ValidateEclatOptions(db.num_baskets(), options));
  uint64_t min_count =
      EclatMinCount(db.num_baskets(), options.min_support_fraction);

  VerticalIndex index(db);

  // Frequent singletons seed the depth-first search.
  std::vector<std::pair<ItemId, const Bitmap*>> frequent_items;
  for (ItemId i = 0; i < db.num_items(); ++i) {
    if (db.ItemCount(i) >= min_count) {
      frequent_items.emplace_back(i, &index.item_bitmap(i));
    }
  }

  // Each singleton's subtree is independent: mine it into a private buffer
  // (parallel across subtrees), then concatenate in item order. The final
  // (size, lex) sort makes the order question moot, but keeping the merge
  // deterministic means the pre-sort vector is reproducible too.
  const int threads = ThreadPool::ResolveThreadCount(options.num_threads);
  std::unique_ptr<ThreadPool> owned_pool;
  ThreadPool* pool = options.pool;
  if (pool == nullptr && threads > 1) {
    owned_pool = std::make_unique<ThreadPool>(threads - 1);
    pool = owned_pool.get();
  }
  MetricsRegistry& registry = MetricsRegistry::Global();
  PhaseTimer timer(&registry, "eclat.mine");
  std::vector<std::vector<FrequentItemset>> branch_results(
      frequent_items.size());
  std::vector<uint64_t> branch_intersections(frequent_items.size(), 0);
  CORRMINE_RETURN_NOT_OK(ParallelFor(
      pool, frequent_items.size(), /*grain=*/1,
      [&](size_t begin, size_t end) -> Status {
        for (size_t i = begin; i < end; ++i) {
          EclatState state{min_count, options.max_level, &branch_results[i],
                           &branch_intersections[i]};
          Itemset single{frequent_items[i].first};
          branch_results[i].push_back(
              FrequentItemset{single, frequent_items[i].second->Count()});
          std::vector<std::pair<ItemId, const Bitmap*>> tail(
              frequent_items.begin() + i + 1, frequent_items.end());
          if (!tail.empty()) {
            Extend(single, *frequent_items[i].second, tail, state);
          }
        }
        return Status::OK();
      }));

  std::vector<FrequentItemset> result;
  for (std::vector<FrequentItemset>& branch : branch_results) {
    result.insert(result.end(), std::make_move_iterator(branch.begin()),
                  std::make_move_iterator(branch.end()));
  }
  uint64_t total_intersections = 0;
  for (uint64_t c : branch_intersections) total_intersections += c;
  registry.GetCounter("eclat.intersections")->Add(total_intersections);
  registry.GetCounter("eclat.frequent")->Add(result.size());

  SortFrequent(&result);
  return result;
}

StatusOr<std::vector<FrequentItemset>> MineFrequentItemsetsEclat(
    const ShardedTransactionDatabase& db, const EclatOptions& options) {
  CORRMINE_RETURN_NOT_OK(ValidateEclatOptions(db.num_baskets(), options));
  uint64_t min_count =
      EclatMinCount(db.num_baskets(), options.min_support_fraction);

  // One vertical index per shard; a singleton's basket set is its
  // per-shard bitmap vector. Marginals come from the database's exact
  // per-shard sums, so the frequent-singleton set matches the monolithic
  // overload bit for bit.
  const size_t num_shards = db.num_shards();
  std::vector<VerticalIndex> indexes;
  indexes.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) indexes.emplace_back(db.shard(s));

  std::vector<ItemId> frequent_ids;
  std::vector<ShardedRows> frequent_rows;
  for (ItemId i = 0; i < db.num_items(); ++i) {
    if (db.ItemCount(i) < min_count) continue;
    frequent_ids.push_back(i);
    ShardedRows rows;
    rows.rows.reserve(num_shards);
    for (size_t s = 0; s < num_shards; ++s) {
      rows.rows.push_back(indexes[s].item_bitmap(i));
    }
    frequent_rows.push_back(std::move(rows));
  }

  const int threads = ThreadPool::ResolveThreadCount(options.num_threads);
  std::unique_ptr<ThreadPool> owned_pool;
  ThreadPool* pool = options.pool;
  if (pool == nullptr && threads > 1) {
    owned_pool = std::make_unique<ThreadPool>(threads - 1);
    pool = owned_pool.get();
  }
  MetricsRegistry& registry = MetricsRegistry::Global();
  PhaseTimer timer(&registry, "eclat.mine");
  std::vector<std::vector<FrequentItemset>> branch_results(
      frequent_ids.size());
  std::vector<uint64_t> branch_intersections(frequent_ids.size(), 0);
  CORRMINE_RETURN_NOT_OK(ParallelFor(
      pool, frequent_ids.size(), /*grain=*/1,
      [&](size_t begin, size_t end) -> Status {
        for (size_t i = begin; i < end; ++i) {
          EclatState state{min_count, options.max_level, &branch_results[i],
                           &branch_intersections[i]};
          Itemset single{frequent_ids[i]};
          branch_results[i].push_back(
              FrequentItemset{single, frequent_rows[i].Count()});
          std::vector<std::pair<ItemId, const ShardedRows*>> tail;
          tail.reserve(frequent_ids.size() - i - 1);
          for (size_t j = i + 1; j < frequent_ids.size(); ++j) {
            tail.emplace_back(frequent_ids[j], &frequent_rows[j]);
          }
          if (!tail.empty()) {
            ExtendSharded(single, frequent_rows[i], tail, state);
          }
        }
        return Status::OK();
      }));

  std::vector<FrequentItemset> result;
  for (std::vector<FrequentItemset>& branch : branch_results) {
    result.insert(result.end(), std::make_move_iterator(branch.begin()),
                  std::make_move_iterator(branch.end()));
  }
  uint64_t total_intersections = 0;
  for (uint64_t c : branch_intersections) total_intersections += c;
  registry.GetCounter("eclat.intersections")->Add(total_intersections);
  registry.GetCounter("eclat.frequent")->Add(result.size());

  SortFrequent(&result);
  return result;
}

}  // namespace corrmine
