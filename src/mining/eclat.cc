#include "mining/eclat.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <memory>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "itemset/bitmap.h"

namespace corrmine {

namespace {

struct EclatState {
  uint64_t min_count;
  int max_level;  // 0 = unbounded.
  std::vector<FrequentItemset>* out;
  /// Tidset intersections performed in this branch (private per branch so
  /// the hot loop stays atomic-free; summed into the registry at the end).
  uint64_t* intersections;
};

/// Depth-first extension: `prefix` is frequent with basket set
/// `prefix_rows`; `tail` holds the frequent items greater than prefix's
/// last item, each with its own basket bitmap.
void Extend(const Itemset& prefix, const Bitmap& prefix_rows,
            const std::vector<std::pair<ItemId, const Bitmap*>>& tail,
            const EclatState& state) {
  if (state.max_level != 0 &&
      static_cast<int>(prefix.size()) >= state.max_level) {
    return;
  }
  // Intersect the prefix's rows with each tail item; survivors recurse.
  std::vector<std::pair<ItemId, Bitmap>> extensions;
  for (const auto& [item, rows] : tail) {
    ++*state.intersections;
    Bitmap joined = prefix_rows;
    joined.AndWith(*rows);
    if (joined.Count() >= state.min_count) {
      extensions.emplace_back(item, std::move(joined));
    }
  }
  for (size_t i = 0; i < extensions.size(); ++i) {
    Itemset extended = prefix.WithItem(extensions[i].first);
    state.out->push_back(
        FrequentItemset{extended, extensions[i].second.Count()});
    std::vector<std::pair<ItemId, const Bitmap*>> next_tail;
    for (size_t j = i + 1; j < extensions.size(); ++j) {
      next_tail.emplace_back(extensions[j].first, &extensions[j].second);
    }
    if (!next_tail.empty()) {
      Extend(extended, extensions[i].second, next_tail, state);
    }
  }
}

}  // namespace

StatusOr<std::vector<FrequentItemset>> MineFrequentItemsetsEclat(
    const TransactionDatabase& db, const EclatOptions& options) {
  if (db.num_baskets() == 0) {
    return Status::FailedPrecondition("mining an empty database");
  }
  if (!(options.min_support_fraction > 0.0 &&
        options.min_support_fraction <= 1.0)) {
    return Status::InvalidArgument("min_support_fraction must be in (0,1]");
  }
  if (options.num_threads < 0) {
    return Status::InvalidArgument("num_threads must be >= 0");
  }
  uint64_t n = db.num_baskets();
  uint64_t min_count = static_cast<uint64_t>(std::ceil(
      options.min_support_fraction * static_cast<double>(n) - 1e-9));
  if (min_count == 0) min_count = 1;

  VerticalIndex index(db);

  // Frequent singletons seed the depth-first search.
  std::vector<std::pair<ItemId, const Bitmap*>> frequent_items;
  for (ItemId i = 0; i < db.num_items(); ++i) {
    if (db.ItemCount(i) >= min_count) {
      frequent_items.emplace_back(i, &index.item_bitmap(i));
    }
  }

  // Each singleton's subtree is independent: mine it into a private buffer
  // (parallel across subtrees), then concatenate in item order. The final
  // (size, lex) sort makes the order question moot, but keeping the merge
  // deterministic means the pre-sort vector is reproducible too.
  const int threads = ThreadPool::ResolveThreadCount(options.num_threads);
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads - 1);
  MetricsRegistry& registry = MetricsRegistry::Global();
  PhaseTimer timer(&registry, "eclat.mine");
  std::vector<std::vector<FrequentItemset>> branch_results(
      frequent_items.size());
  std::vector<uint64_t> branch_intersections(frequent_items.size(), 0);
  CORRMINE_RETURN_NOT_OK(ParallelFor(
      pool.get(), frequent_items.size(), /*grain=*/1,
      [&](size_t begin, size_t end) -> Status {
        for (size_t i = begin; i < end; ++i) {
          EclatState state{min_count, options.max_level, &branch_results[i],
                           &branch_intersections[i]};
          Itemset single{frequent_items[i].first};
          branch_results[i].push_back(
              FrequentItemset{single, frequent_items[i].second->Count()});
          std::vector<std::pair<ItemId, const Bitmap*>> tail(
              frequent_items.begin() + i + 1, frequent_items.end());
          if (!tail.empty()) {
            Extend(single, *frequent_items[i].second, tail, state);
          }
        }
        return Status::OK();
      }));

  std::vector<FrequentItemset> result;
  for (std::vector<FrequentItemset>& branch : branch_results) {
    result.insert(result.end(), std::make_move_iterator(branch.begin()),
                  std::make_move_iterator(branch.end()));
  }
  uint64_t total_intersections = 0;
  for (uint64_t c : branch_intersections) total_intersections += c;
  registry.GetCounter("eclat.intersections")->Add(total_intersections);
  registry.GetCounter("eclat.frequent")->Add(result.size());

  std::sort(result.begin(), result.end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              if (a.itemset.size() != b.itemset.size()) {
                return a.itemset.size() < b.itemset.size();
              }
              return a.itemset < b.itemset;
            });
  return result;
}

}  // namespace corrmine
