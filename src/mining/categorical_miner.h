#ifndef CORRMINE_MINING_CATEGORICAL_MINER_H_
#define CORRMINE_MINING_CATEGORICAL_MINER_H_

#include <vector>

#include "common/status_or.h"
#include "itemset/categorical_database.h"
#include "stats/categorical_table.h"

namespace corrmine {

/// A dependency found between two multi-valued attributes: the full r x c
/// chi-squared test at the conventional (r-1)(c-1) degrees of freedom plus
/// the dominant cell (the pair of categories with the largest chi-squared
/// contribution) and its interest. This realizes the paper's Section 5.1
/// remark that a non-collapsed table "could find finer-grained dependency"
/// than the binary item encoding.
struct CategoricalDependency {
  int attribute_a = 0;
  int attribute_b = 0;
  double chi_squared = 0.0;
  int dof = 1;
  double p_value = 1.0;
  double cramers_v = 0.0;
  /// Category pair with the largest (O-E)^2/E contribution.
  int dominant_category_a = 0;
  int dominant_category_b = 0;
  double dominant_interest = 1.0;
};

struct CategoricalMinerOptions {
  /// Confidence level for dependency significance (per-test; no
  /// multiple-comparison correction, matching the paper's usage).
  double confidence_level = 0.95;
  /// Cells with expected value below this are excluded from the statistic
  /// (the Section 3.3 workaround; more prone to fire here because arity
  /// multiplies the cell count).
  double min_expected_cell = 0.0;
};

/// Tests every attribute pair and returns the significant dependencies,
/// strongest (by Cramer's V) first.
StatusOr<std::vector<CategoricalDependency>> MineCategoricalDependencies(
    const CategoricalDatabase& db,
    const CategoricalMinerOptions& options = {});

/// Builds the r x c contingency table for one attribute pair.
StatusOr<stats::CategoricalTable> BuildCategoricalTable(
    const CategoricalDatabase& db, int attribute_a, int attribute_b);

}  // namespace corrmine

#endif  // CORRMINE_MINING_CATEGORICAL_MINER_H_
