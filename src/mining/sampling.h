#ifndef CORRMINE_MINING_SAMPLING_H_
#define CORRMINE_MINING_SAMPLING_H_

#include <cstdint>

#include "common/status_or.h"
#include "itemset/transaction_database.h"
#include "mining/apriori.h"

namespace corrmine {

struct SamplingOptions {
  /// Global minimum support as a fraction of baskets.
  double min_support_fraction = 0.01;
  /// Fraction of baskets drawn (with replacement) into the sample.
  double sample_fraction = 0.1;
  /// The sample is mined at a *lowered* threshold,
  /// min_support_fraction * lowering_factor, to make misses unlikely.
  double lowering_factor = 0.8;
  /// Stop after this itemset size; 0 = unbounded.
  int max_level = 0;
  uint64_t seed = 0x5a3317e5ULL;
};

struct SamplingStats {
  /// Itemsets counted against the full database (sample-frequent sets plus
  /// the negative border).
  uint64_t candidates_counted = 0;
  /// Negative-border sets that turned out globally frequent — each one is
  /// a potential miss that forced candidate expansion.
  uint64_t border_failures = 0;
  /// Extra full-database passes beyond the first (0 when the single-pass
  /// happy path sufficed).
  int extra_passes = 0;
};

/// Toivonen's sampling algorithm (VLDB'96, the paper's reference [29]):
/// mine a random sample at a lowered threshold, then verify the
/// sample-frequent sets *and their negative border* (minimal sets not
/// frequent in the sample) against the full database in one pass. If a
/// negative-border set proves globally frequent the single pass was
/// insufficient; this implementation then expands candidates level-wise
/// from the newly-frequent sets and re-counts until closed, guaranteeing
/// the exact Apriori answer regardless of sampling luck.
StatusOr<std::vector<FrequentItemset>> MineFrequentItemsetsSampling(
    const TransactionDatabase& db, const SamplingOptions& options = {},
    SamplingStats* stats = nullptr);

}  // namespace corrmine

#endif  // CORRMINE_MINING_SAMPLING_H_
