#include "mining/sampling.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "datagen/rng.h"
#include "itemset/count_provider.h"

namespace corrmine {

namespace {

Status Validate(const SamplingOptions& o) {
  if (!(o.min_support_fraction > 0.0 && o.min_support_fraction <= 1.0)) {
    return Status::InvalidArgument("min_support_fraction must be in (0,1]");
  }
  if (!(o.sample_fraction > 0.0 && o.sample_fraction <= 1.0)) {
    return Status::InvalidArgument("sample_fraction must be in (0,1]");
  }
  if (!(o.lowering_factor > 0.0 && o.lowering_factor <= 1.0)) {
    return Status::InvalidArgument("lowering_factor must be in (0,1]");
  }
  return Status::OK();
}

/// The negative border of a downward-closed family: sets not in the family
/// whose every immediate subset is. Generated apriori-gen style from the
/// family itself plus the infrequent singletons.
std::vector<Itemset> NegativeBorder(
    const std::vector<FrequentItemset>& family, ItemId num_items) {
  std::unordered_set<Itemset, ItemsetHasher> in_family;
  std::vector<Itemset> sorted_sets;
  for (const FrequentItemset& f : family) {
    in_family.insert(f.itemset);
    sorted_sets.push_back(f.itemset);
  }
  std::vector<Itemset> border;
  // Level 1: singletons outside the family.
  for (ItemId i = 0; i < num_items; ++i) {
    if (!in_family.count(Itemset{i})) border.push_back(Itemset{i});
  }
  // Level k+1: joins of family k-sets whose subsets are all in the family
  // but which are not themselves in it.
  std::sort(sorted_sets.begin(), sorted_sets.end(),
            [](const Itemset& a, const Itemset& b) {
              if (a.size() != b.size()) return a.size() < b.size();
              return a < b;
            });
  for (size_t i = 0; i < sorted_sets.size(); ++i) {
    for (size_t j = i + 1; j < sorted_sets.size(); ++j) {
      const Itemset& a = sorted_sets[i];
      const Itemset& b = sorted_sets[j];
      if (a.size() != b.size()) break;
      bool shared_prefix = true;
      for (size_t t = 0; t + 1 < a.size(); ++t) {
        if (a.item(t) != b.item(t)) {
          shared_prefix = false;
          break;
        }
      }
      if (!shared_prefix) continue;
      Itemset joined = a.Union(b);
      if (joined.size() != a.size() + 1) continue;
      if (in_family.count(joined)) continue;
      bool all_subsets_in = true;
      for (const Itemset& subset : joined.SubsetsMissingOne()) {
        if (!in_family.count(subset)) {
          all_subsets_in = false;
          break;
        }
      }
      if (all_subsets_in) border.push_back(joined);
    }
  }
  std::sort(border.begin(), border.end());
  border.erase(std::unique(border.begin(), border.end()), border.end());
  return border;
}

}  // namespace

StatusOr<std::vector<FrequentItemset>> MineFrequentItemsetsSampling(
    const TransactionDatabase& db, const SamplingOptions& options,
    SamplingStats* stats) {
  CORRMINE_RETURN_NOT_OK(Validate(options));
  if (db.num_baskets() == 0) {
    return Status::FailedPrecondition("mining an empty database");
  }
  uint64_t n = db.num_baskets();
  uint64_t min_count = static_cast<uint64_t>(std::ceil(
      options.min_support_fraction * static_cast<double>(n) - 1e-9));
  if (min_count == 0) min_count = 1;

  // Draw the sample (with replacement, as in the original analysis).
  datagen::Rng rng(options.seed);
  size_t sample_size = std::max<size_t>(
      1, static_cast<size_t>(options.sample_fraction *
                             static_cast<double>(n)));
  TransactionDatabase sample(db.num_items());
  for (size_t i = 0; i < sample_size; ++i) {
    size_t row = rng.NextBelow(n);
    CORRMINE_RETURN_NOT_OK(sample.AddBasket(db.basket(row)));
  }

  // Mine the sample at the lowered threshold.
  BitmapCountProvider sample_provider(sample);
  AprioriOptions sample_options;
  sample_options.min_support_fraction =
      std::max(1.0 / static_cast<double>(sample_size),
               options.min_support_fraction * options.lowering_factor);
  sample_options.max_level = options.max_level;
  CORRMINE_ASSIGN_OR_RETURN(
      std::vector<FrequentItemset> sample_frequent,
      MineFrequentItemsets(sample_provider, db.num_items(), sample_options));

  // Verification pass: count sample-frequent sets and their negative
  // border against the full database.
  BitmapCountProvider provider(db);
  std::unordered_map<Itemset, uint64_t, ItemsetHasher> counted;
  auto count_all = [&](const std::vector<Itemset>& sets) {
    for (const Itemset& s : sets) {
      if (!counted.count(s)) {
        counted.emplace(s, provider.CountAllPresent(s));
      }
    }
  };
  std::vector<Itemset> to_count;
  for (const FrequentItemset& f : sample_frequent) {
    to_count.push_back(f.itemset);
  }
  std::vector<Itemset> border =
      NegativeBorder(sample_frequent, db.num_items());
  to_count.insert(to_count.end(), border.begin(), border.end());
  count_all(to_count);
  if (stats != nullptr) {
    stats->candidates_counted = counted.size();
    stats->border_failures = 0;
    stats->extra_passes = 0;
  }

  // Collect globally frequent sets; any frequent negative-border set means
  // the sample missed something — expand level-wise until closed.
  auto collect_frequent = [&]() {
    std::vector<FrequentItemset> result;
    for (const auto& [itemset, count] : counted) {
      if (count >= min_count &&
          (options.max_level == 0 ||
           itemset.size() <= static_cast<size_t>(options.max_level))) {
        result.push_back(FrequentItemset{itemset, count});
      }
    }
    std::sort(result.begin(), result.end(),
              [](const FrequentItemset& a, const FrequentItemset& b) {
                if (a.itemset.size() != b.itemset.size()) {
                  return a.itemset.size() < b.itemset.size();
                }
                return a.itemset < b.itemset;
              });
    return result;
  };

  for (int pass = 0; pass < 64; ++pass) {
    std::vector<FrequentItemset> frequent = collect_frequent();
    std::vector<Itemset> expansion;
    for (const Itemset& s : NegativeBorder(frequent, db.num_items())) {
      if (!counted.count(s)) expansion.push_back(s);
    }
    if (expansion.empty()) {
      // Check whether any counted border set is frequent but already
      // covered: closure reached.
      if (stats != nullptr) {
        for (const Itemset& s : border) {
          auto it = counted.find(s);
          if (it != counted.end() && it->second >= min_count) {
            ++stats->border_failures;
          }
        }
      }
      return frequent;
    }
    count_all(expansion);
    if (stats != nullptr) {
      ++stats->extra_passes;
      stats->candidates_counted = counted.size();
    }
  }
  return Status::Internal("sampling expansion failed to converge");
}

}  // namespace corrmine
