#include "mining/rare_pairs.h"

#include <algorithm>

#include "stats/fisher_exact.h"

namespace corrmine {

StatusOr<std::vector<RarePairResult>> MineRarePairs(
    const CountProvider& provider, ItemId num_items,
    const RarePairOptions& options) {
  uint64_t n = provider.num_baskets();
  if (n == 0) {
    return Status::FailedPrecondition("mining an empty database");
  }
  if (!(options.max_item_fraction > 0.0 &&
        options.max_item_fraction <= 1.0)) {
    return Status::InvalidArgument("max_item_fraction must be in (0,1]");
  }
  if (!(options.max_p_value > 0.0 && options.max_p_value <= 1.0)) {
    return Status::InvalidArgument("max_p_value must be in (0,1]");
  }

  uint64_t max_count = static_cast<uint64_t>(
      options.max_item_fraction * static_cast<double>(n));

  // Anti-support filter: collect the rare-but-present items.
  std::vector<ItemId> rare;
  std::vector<uint64_t> counts(num_items);
  for (ItemId i = 0; i < num_items; ++i) {
    counts[i] = provider.CountAllPresent(Itemset{i});
    if (counts[i] >= options.min_item_count && counts[i] <= max_count) {
      rare.push_back(i);
    }
  }

  std::vector<RarePairResult> results;
  for (size_t x = 0; x < rare.size(); ++x) {
    for (size_t y = x + 1; y < rare.size(); ++y) {
      ItemId a = rare[x];
      ItemId b = rare[y];
      uint64_t both = provider.CountAllPresent(Itemset{a, b});
      stats::TwoByTwoCounts table;
      table.a = both;
      table.b = counts[a] - both;
      table.c = counts[b] - both;
      table.d = n - counts[a] - counts[b] + both;
      CORRMINE_ASSIGN_OR_RETURN(double p,
                                stats::FisherExactTwoSided(table));
      if (p >= options.max_p_value) continue;
      RarePairResult result;
      result.pair = Itemset{a, b};
      result.p_value = p;
      double expected = static_cast<double>(counts[a]) *
                        static_cast<double>(counts[b]) /
                        static_cast<double>(n);
      result.joint_interest =
          expected > 0.0 ? static_cast<double>(both) / expected : 1.0;
      result.count_a = counts[a];
      result.count_b = counts[b];
      result.count_both = both;
      results.push_back(std::move(result));
    }
  }
  std::sort(results.begin(), results.end(),
            [](const RarePairResult& u, const RarePairResult& v) {
              return u.p_value < v.p_value;
            });
  return results;
}

}  // namespace corrmine
