#include "mining/fp_growth.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <unordered_map>

#include "common/metrics.h"

namespace corrmine {

namespace {

/// FP-tree node. Children keyed by item; header chains thread all nodes of
/// one item together for bottom-up traversal.
struct FpNode {
  ItemId item = 0;
  uint64_t count = 0;
  FpNode* parent = nullptr;
  FpNode* next_same_item = nullptr;
  std::map<ItemId, std::unique_ptr<FpNode>> children;
};

struct FpTree {
  FpNode root;
  /// Per-item chain heads plus total counts, in the tree's item order.
  std::unordered_map<ItemId, FpNode*> header;
  std::unordered_map<ItemId, uint64_t> item_counts;
  /// Items sorted by ascending total count (the mining order).
  std::vector<ItemId> items_ascending;
};

/// Inserts one (ordered) transaction with a multiplicity.
void Insert(FpTree* tree, const std::vector<ItemId>& ordered_items,
            uint64_t count) {
  FpNode* node = &tree->root;
  for (ItemId item : ordered_items) {
    auto it = node->children.find(item);
    if (it == node->children.end()) {
      auto child = std::make_unique<FpNode>();
      child->item = item;
      child->parent = node;
      child->next_same_item = tree->header[item];
      tree->header[item] = child.get();
      it = node->children.emplace(item, std::move(child)).first;
    }
    it->second->count += count;
    node = it->second.get();
  }
}

void FinalizeOrder(FpTree* tree) {
  tree->items_ascending.clear();
  for (const auto& [item, count] : tree->item_counts) {
    tree->items_ascending.push_back(item);
  }
  std::sort(tree->items_ascending.begin(), tree->items_ascending.end(),
            [&](ItemId a, ItemId b) {
              uint64_t ca = tree->item_counts[a];
              uint64_t cb = tree->item_counts[b];
              if (ca != cb) return ca < cb;
              return a > b;  // Ascending count, descending id tiebreak.
            });
}

/// Recursive FP-growth over `tree`, emitting suffix-extended itemsets.
/// `conditional_trees` tallies projections built (mining is single-threaded,
/// so a plain counter suffices).
void Mine(const FpTree& tree, const Itemset& suffix, uint64_t min_count,
          int max_level, std::vector<FrequentItemset>* out,
          uint64_t* conditional_trees) {
  for (ItemId item : tree.items_ascending) {
    uint64_t item_count = tree.item_counts.at(item);
    if (item_count < min_count) continue;
    Itemset extended = suffix.WithItem(item);
    out->push_back(FrequentItemset{extended, item_count});
    if (max_level != 0 &&
        static_cast<int>(extended.size()) >= max_level) {
      continue;
    }

    // Conditional pattern base: prefix path of every node of `item`.
    FpTree conditional;
    auto chain_it = tree.header.find(item);
    for (FpNode* node = chain_it == tree.header.end() ? nullptr
                                                      : chain_it->second;
         node != nullptr; node = node->next_same_item) {
      std::vector<ItemId> path;
      for (FpNode* up = node->parent; up != nullptr && up->parent != nullptr;
           up = up->parent) {
        path.push_back(up->item);
      }
      if (path.empty()) continue;
      std::reverse(path.begin(), path.end());
      for (ItemId path_item : path) {
        conditional.item_counts[path_item] += node->count;
      }
      Insert(&conditional, path, node->count);
    }
    // Drop infrequent items from the conditional counts (their nodes stay
    // in the conditional tree but are never used as extension anchors, and
    // they cannot appear in paths above frequent anchors in a way that
    // changes counts — FP-growth prunes them logically here).
    for (auto it = conditional.item_counts.begin();
         it != conditional.item_counts.end();) {
      if (it->second < min_count) {
        it = conditional.item_counts.erase(it);
      } else {
        ++it;
      }
    }
    if (!conditional.item_counts.empty()) {
      ++*conditional_trees;
      FinalizeOrder(&conditional);
      Mine(conditional, extended, min_count, max_level, out,
           conditional_trees);
    }
  }
}

}  // namespace

StatusOr<std::vector<FrequentItemset>> MineFrequentItemsetsFpGrowth(
    const TransactionDatabase& db, const FpGrowthOptions& options) {
  if (db.num_baskets() == 0) {
    return Status::FailedPrecondition("mining an empty database");
  }
  if (!(options.min_support_fraction > 0.0 &&
        options.min_support_fraction <= 1.0)) {
    return Status::InvalidArgument("min_support_fraction must be in (0,1]");
  }
  uint64_t n = db.num_baskets();
  uint64_t min_count = static_cast<uint64_t>(std::ceil(
      options.min_support_fraction * static_cast<double>(n) - 1e-9));
  if (min_count == 0) min_count = 1;

  // Global frequency order (descending count for tree compression).
  std::vector<ItemId> order;
  for (ItemId i = 0; i < db.num_items(); ++i) {
    if (db.ItemCount(i) >= min_count) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [&](ItemId a, ItemId b) {
    if (db.ItemCount(a) != db.ItemCount(b)) {
      return db.ItemCount(a) > db.ItemCount(b);
    }
    return a < b;
  });
  std::unordered_map<ItemId, uint32_t> rank;
  for (uint32_t r = 0; r < order.size(); ++r) rank.emplace(order[r], r);

  FpTree tree;
  for (ItemId item : order) tree.item_counts[item] = db.ItemCount(item);
  FinalizeOrder(&tree);
  for (size_t row = 0; row < db.num_baskets(); ++row) {
    std::vector<ItemId> filtered;
    for (ItemId item : db.basket(row)) {
      if (rank.count(item)) filtered.push_back(item);
    }
    std::sort(filtered.begin(), filtered.end(), [&](ItemId a, ItemId b) {
      return rank[a] < rank[b];
    });
    if (!filtered.empty()) Insert(&tree, filtered, 1);
  }

  MetricsRegistry& registry = MetricsRegistry::Global();
  PhaseTimer timer(&registry, "fp_growth.mine");
  std::vector<FrequentItemset> result;
  uint64_t conditional_trees = 0;
  Mine(tree, Itemset{}, min_count, options.max_level, &result,
       &conditional_trees);
  registry.GetCounter("fp_growth.conditional_trees")->Add(conditional_trees);
  registry.GetCounter("fp_growth.frequent")->Add(result.size());
  std::sort(result.begin(), result.end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              if (a.itemset.size() != b.itemset.size()) {
                return a.itemset.size() < b.itemset.size();
              }
              return a.itemset < b.itemset;
            });
  return result;
}

}  // namespace corrmine
