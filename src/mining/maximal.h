#ifndef CORRMINE_MINING_MAXIMAL_H_
#define CORRMINE_MINING_MAXIMAL_H_

#include <vector>

#include "mining/apriori.h"

namespace corrmine {

/// Extracts the maximal frequent itemsets — those with no frequent proper
/// superset in the input. This is the *positive border* of the frequent
/// family: the downward-closed dual of the paper's correlation border, and
/// a compact lossless summary of which itemsets are frequent (any set is
/// frequent iff it is a subset of some maximal set).
///
/// Input must be a downward-closed frequent family (e.g. any of this
/// library's frequent-itemset miners); output is sorted (size, lex).
std::vector<FrequentItemset> MaximalFrequentItemsets(
    const std::vector<FrequentItemset>& frequent);

/// Closed frequent itemsets: sets with no superset of *equal count* in the
/// input. Every maximal set is closed; closed sets additionally preserve
/// all counts (any set's count equals the max count over its closed
/// supersets). Output sorted (size, lex).
std::vector<FrequentItemset> ClosedFrequentItemsets(
    const std::vector<FrequentItemset>& frequent);

}  // namespace corrmine

#endif  // CORRMINE_MINING_MAXIMAL_H_
