#include "mining/apriori.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_set>

#include "common/metrics.h"
#include "common/thread_pool.h"

namespace corrmine {

namespace {

/// Apriori-gen: join frequent k-sets sharing a (k-1)-prefix, then prune
/// joins with an infrequent subset. `frequent` must be sorted.
std::vector<Itemset> AprioriGen(
    const std::vector<Itemset>& frequent,
    const std::unordered_set<Itemset, ItemsetHasher>& frequent_set) {
  std::vector<Itemset> candidates;
  for (size_t i = 0; i < frequent.size(); ++i) {
    for (size_t j = i + 1; j < frequent.size(); ++j) {
      const Itemset& a = frequent[i];
      const Itemset& b = frequent[j];
      bool shared_prefix = true;
      for (size_t t = 0; t + 1 < a.size(); ++t) {
        if (a.item(t) != b.item(t)) {
          shared_prefix = false;
          break;
        }
      }
      if (!shared_prefix) break;
      Itemset joined = a.Union(b);
      if (joined.size() != a.size() + 1) continue;
      bool all_frequent = true;
      for (const Itemset& subset : joined.SubsetsMissingOne()) {
        if (!frequent_set.count(subset)) {
          all_frequent = false;
          break;
        }
      }
      if (all_frequent) candidates.push_back(std::move(joined));
    }
  }
  return candidates;
}

}  // namespace

StatusOr<std::vector<FrequentItemset>> MineFrequentItemsets(
    const CountProvider& provider, ItemId num_items,
    const AprioriOptions& options) {
  if (provider.num_baskets() == 0) {
    return Status::FailedPrecondition("mining an empty database");
  }
  if (!(options.min_support_fraction > 0.0 &&
        options.min_support_fraction <= 1.0)) {
    return Status::InvalidArgument("min_support_fraction must be in (0,1]");
  }
  if (options.num_threads < 0) {
    return Status::InvalidArgument("num_threads must be >= 0");
  }
  uint64_t n = provider.num_baskets();
  uint64_t min_count = static_cast<uint64_t>(
      std::ceil(options.min_support_fraction * static_cast<double>(n) -
                1e-9));
  if (min_count == 0) min_count = 1;

  MetricsRegistry& registry = MetricsRegistry::Global();
  PhaseTimer timer(&registry, "apriori.mine");
  Counter* candidates_counted = registry.GetCounter("apriori.candidates");
  Counter* frequent_found = registry.GetCounter("apriori.frequent");

  const int threads = ThreadPool::ResolveThreadCount(options.num_threads);
  std::unique_ptr<ThreadPool> owned_pool;
  ThreadPool* pool = options.pool;
  if (pool == nullptr && threads > 1) {
    owned_pool = std::make_unique<ThreadPool>(threads - 1);
    pool = owned_pool.get();
  }

  // One CountAllPresentBatch per level: the provider answers the whole
  // candidate frontier at once (bitmap providers parallelize over the
  // query axis, sharded providers over their shards). Counts land in
  // index-addressed slots, so the sequential filter below sees the same
  // counts in the same order regardless of thread or shard count.
  auto count_all = [&](const std::vector<Itemset>& candidates,
                       std::vector<uint64_t>* counts) -> Status {
    candidates_counted->Add(candidates.size());
    counts->assign(candidates.size(), 0);
    provider.CountAllPresentBatch(candidates, *counts, pool);
    return Status::OK();
  };

  std::vector<FrequentItemset> result;

  // L1.
  std::vector<Itemset> singletons;
  singletons.reserve(num_items);
  for (ItemId i = 0; i < num_items; ++i) singletons.push_back(Itemset{i});
  std::vector<uint64_t> counts;
  CORRMINE_RETURN_NOT_OK(count_all(singletons, &counts));
  std::vector<Itemset> frequent;
  for (ItemId i = 0; i < num_items; ++i) {
    if (counts[i] >= min_count) {
      result.push_back(FrequentItemset{singletons[i], counts[i]});
      frequent.push_back(std::move(singletons[i]));
    }
  }

  int level = 2;
  while (!frequent.empty() &&
         (options.max_level == 0 || level <= options.max_level)) {
    std::unordered_set<Itemset, ItemsetHasher> frequent_set(frequent.begin(),
                                                            frequent.end());
    std::sort(frequent.begin(), frequent.end());
    std::vector<Itemset> candidates = AprioriGen(frequent, frequent_set);
    frequent.clear();
    CORRMINE_RETURN_NOT_OK(count_all(candidates, &counts));
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (counts[i] >= min_count) {
        frequent.push_back(candidates[i]);
        result.push_back(FrequentItemset{std::move(candidates[i]), counts[i]});
      }
    }
    ++level;
  }
  frequent_found->Add(result.size());
  return result;
}

}  // namespace corrmine
