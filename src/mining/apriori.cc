#include "mining/apriori.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace corrmine {

namespace {

/// Apriori-gen: join frequent k-sets sharing a (k-1)-prefix, then prune
/// joins with an infrequent subset. `frequent` must be sorted.
std::vector<Itemset> AprioriGen(
    const std::vector<Itemset>& frequent,
    const std::unordered_set<Itemset, ItemsetHasher>& frequent_set) {
  std::vector<Itemset> candidates;
  for (size_t i = 0; i < frequent.size(); ++i) {
    for (size_t j = i + 1; j < frequent.size(); ++j) {
      const Itemset& a = frequent[i];
      const Itemset& b = frequent[j];
      bool shared_prefix = true;
      for (size_t t = 0; t + 1 < a.size(); ++t) {
        if (a.item(t) != b.item(t)) {
          shared_prefix = false;
          break;
        }
      }
      if (!shared_prefix) break;
      Itemset joined = a.Union(b);
      if (joined.size() != a.size() + 1) continue;
      bool all_frequent = true;
      for (const Itemset& subset : joined.SubsetsMissingOne()) {
        if (!frequent_set.count(subset)) {
          all_frequent = false;
          break;
        }
      }
      if (all_frequent) candidates.push_back(std::move(joined));
    }
  }
  return candidates;
}

}  // namespace

StatusOr<std::vector<FrequentItemset>> MineFrequentItemsets(
    const CountProvider& provider, ItemId num_items,
    const AprioriOptions& options) {
  if (provider.num_baskets() == 0) {
    return Status::FailedPrecondition("mining an empty database");
  }
  if (!(options.min_support_fraction > 0.0 &&
        options.min_support_fraction <= 1.0)) {
    return Status::InvalidArgument("min_support_fraction must be in (0,1]");
  }
  uint64_t n = provider.num_baskets();
  uint64_t min_count = static_cast<uint64_t>(
      std::ceil(options.min_support_fraction * static_cast<double>(n) -
                1e-9));
  if (min_count == 0) min_count = 1;

  std::vector<FrequentItemset> result;

  // L1.
  std::vector<Itemset> frequent;
  for (ItemId i = 0; i < num_items; ++i) {
    uint64_t count = provider.CountAllPresent(Itemset{i});
    if (count >= min_count) {
      result.push_back(FrequentItemset{Itemset{i}, count});
      frequent.push_back(Itemset{i});
    }
  }

  int level = 2;
  while (!frequent.empty() &&
         (options.max_level == 0 || level <= options.max_level)) {
    std::unordered_set<Itemset, ItemsetHasher> frequent_set(frequent.begin(),
                                                            frequent.end());
    std::sort(frequent.begin(), frequent.end());
    std::vector<Itemset> candidates = AprioriGen(frequent, frequent_set);
    frequent.clear();
    for (Itemset& candidate : candidates) {
      uint64_t count = provider.CountAllPresent(candidate);
      if (count >= min_count) {
        frequent.push_back(candidate);
        result.push_back(FrequentItemset{std::move(candidate), count});
      }
    }
    ++level;
  }
  return result;
}

}  // namespace corrmine
