#ifndef CORRMINE_MINING_PARTITION_H_
#define CORRMINE_MINING_PARTITION_H_

#include <cstdint>
#include <string>

#include "common/status_or.h"
#include "core/chi_squared_miner.h"
#include "itemset/transaction_database.h"
#include "mining/apriori.h"

namespace corrmine {

struct PartitionOptions {
  double min_support_fraction = 0.01;
  /// Number of horizontal partitions (the original tunes this so one
  /// partition fits in memory).
  int num_partitions = 4;
  /// Stop after this itemset size; 0 = unbounded.
  int max_level = 0;
};

struct PartitionStats {
  /// Union of locally frequent itemsets = global candidates.
  uint64_t global_candidates = 0;
  /// Candidates that failed the global count (locally frequent somewhere,
  /// globally infrequent — the algorithm's only source of wasted work).
  uint64_t false_candidates = 0;
};

/// The Partition algorithm of Savasere, Omiecinski and Navathe (VLDB'95,
/// the paper's reference [27]): split the database into `num_partitions`
/// chunks, mine each chunk independently at the same *fractional*
/// threshold, and union the locally frequent itemsets. Any globally
/// frequent itemset is frequent in at least one partition (pigeonhole on
/// fractions), so the union is a superset of the answer; a second full
/// pass counts the union exactly. Two database passes total.
StatusOr<std::vector<FrequentItemset>> MineFrequentItemsetsPartition(
    const TransactionDatabase& db, const PartitionOptions& options = {},
    PartitionStats* stats = nullptr);

/// Options of the out-of-core correlation miner (DESIGN.md §12).
struct OutOfCoreMinerOptions {
  /// The mining configuration the final walk runs under — the result is
  /// byte-identical to MineCorrelations(in-memory provider, miner) on any
  /// size where both run.
  MinerOptions miner;

  /// Target resident-set budget. Partitions are sized so the spill pass,
  /// the per-partition mines, and the streaming count pass each stay well
  /// inside it; enforced observationally against mem.peak_rss_bytes
  /// (benchgate: peak <= 1.1x budget).
  uint64_t memory_budget_bytes = uint64_t{256} << 20;

  /// Bytes of basket rows buffered before a partition closes (--partition
  /// -budget). 0 derives memory_budget_bytes / 6 floored at 1 MiB — the
  /// close-time transient briefly holds row vectors, built columns and the
  /// serialized file (~3x the row bytes), and the admission controller
  /// needs headroom to overlap partitions. Explicit values are taken
  /// verbatim (no floor, so tests can force many tiny partitions) but must
  /// not exceed memory_budget_bytes; setting it equal to the memory budget
  /// forces admitted = 1, i.e. serial partition mining.
  uint64_t partition_budget_bytes = 0;

  /// Directory for the CCS partition shard files (created if missing).
  /// Empty derives "<input>.spill" next to the input file.
  std::string spill_dir;

  /// Leave the partition files on disk for inspection.
  bool keep_spill = false;
};

/// Accounting of one out-of-core run (also published as "outofcore.*"
/// counters and the mem.memory_budget_bytes gauge).
struct OutOfCoreStats {
  uint64_t num_baskets = 0;
  ItemId num_items = 0;
  /// RAM-sized CCS partitions spilled (and mined) in pass one.
  uint64_t partitions = 0;
  /// Raw (encoding-0 equivalent) payload bytes across partitions — what a
  /// v1 spill of the same columns would cost.
  uint64_t spilled_payload_bytes = 0;
  /// Encoded payload bytes actually written (v2 min-byte rule); the
  /// column.spill_ratio_x1000 gauge is encoded/raw.
  uint64_t spilled_encoded_bytes = 0;
  /// Concurrent partitions the admission controller allowed in pass 1/2
  /// (1 = serial, the degraded mode).
  int admitted = 1;
  /// Wall seconds of the overlapped spill+pass-1 window and of pass 2.
  double spill_pass1_seconds = 0.0;
  double pass2_seconds = 0.0;
  /// Distinct count queries the partition mines touched (the memo
  /// warm-up verified in the streaming pass).
  uint64_t candidate_queries = 0;
  /// Memo traffic of the final walk: misses are the queries that cost an
  /// extra streaming pass batch.
  uint64_t memo_hits = 0;
  uint64_t memo_misses = 0;
};

/// Two-pass partition correlation mining over a dataset that need not fit
/// in memory (SON-style, composed with the border machinery):
///
///   spill   — stream `path` once, building hybrid counting columns for
///             RAM-sized horizontal partitions and writing each as an
///             mmap-backed CCS v2 shard file;
///   pass 1  — pipelined with the spill: as each shard file closes, its
///             partition mine (at proportionally scaled support,
///             recording every count query the level-wise walk issues) is
///             submitted to the scheduler, overlapping mining with spill
///             I/O. An admission controller caps concurrent partitions so
///             admitted x partition budget stays inside the memory
///             budget; recordings merge in partition order, so the
///             candidate union is identical for any thread count;
///   pass 2  — count the partitions (admitted-many concurrently, per-slot
///             partial arrays reduced deterministically), answering the
///             whole candidate union with exact global counts into a
///             memo;
///   final   — re-walk MineCorrelations over a MemoCountProvider whose
///             fallback batch-counts against the mapped partitions, so
///             even queries the warm-up missed are answered exactly.
///
/// The final walk sees exact counts for every query, so rules, level
/// stats and the frontier are byte-identical to the in-memory miner by
/// construction. At admitted = 1 partitions are mapped, counted and
/// unmapped strictly one at a time — the high-water mark stays near base
/// + one partition; wider admission trades bounded extra residency for
/// pass-1/pass-2 parallelism. On error, spill files are removed unless
/// keep_spill is set — failed runs leave the spill dir empty.
StatusOr<MiningResult> MineCorrelationsOutOfCore(
    const std::string& path, const OutOfCoreMinerOptions& options,
    OutOfCoreStats* stats = nullptr);

}  // namespace corrmine

#endif  // CORRMINE_MINING_PARTITION_H_
