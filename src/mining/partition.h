#ifndef CORRMINE_MINING_PARTITION_H_
#define CORRMINE_MINING_PARTITION_H_

#include <cstdint>
#include <string>

#include "common/status_or.h"
#include "core/chi_squared_miner.h"
#include "itemset/transaction_database.h"
#include "mining/apriori.h"

namespace corrmine {

struct PartitionOptions {
  double min_support_fraction = 0.01;
  /// Number of horizontal partitions (the original tunes this so one
  /// partition fits in memory).
  int num_partitions = 4;
  /// Stop after this itemset size; 0 = unbounded.
  int max_level = 0;
};

struct PartitionStats {
  /// Union of locally frequent itemsets = global candidates.
  uint64_t global_candidates = 0;
  /// Candidates that failed the global count (locally frequent somewhere,
  /// globally infrequent — the algorithm's only source of wasted work).
  uint64_t false_candidates = 0;
};

/// The Partition algorithm of Savasere, Omiecinski and Navathe (VLDB'95,
/// the paper's reference [27]): split the database into `num_partitions`
/// chunks, mine each chunk independently at the same *fractional*
/// threshold, and union the locally frequent itemsets. Any globally
/// frequent itemset is frequent in at least one partition (pigeonhole on
/// fractions), so the union is a superset of the answer; a second full
/// pass counts the union exactly. Two database passes total.
StatusOr<std::vector<FrequentItemset>> MineFrequentItemsetsPartition(
    const TransactionDatabase& db, const PartitionOptions& options = {},
    PartitionStats* stats = nullptr);

/// Options of the out-of-core correlation miner (DESIGN.md §12).
struct OutOfCoreMinerOptions {
  /// The mining configuration the final walk runs under — the result is
  /// byte-identical to MineCorrelations(in-memory provider, miner) on any
  /// size where both run.
  MinerOptions miner;

  /// Target resident-set budget. Partitions are sized so the spill pass,
  /// the per-partition mines, and the streaming count pass each stay well
  /// inside it; enforced observationally against mem.peak_rss_bytes
  /// (benchgate: peak <= 1.1x budget).
  uint64_t memory_budget_bytes = uint64_t{256} << 20;

  /// Directory for the CCS1 partition shard files (created if missing).
  /// Empty derives "<input>.spill" next to the input file.
  std::string spill_dir;

  /// Leave the partition files on disk for inspection.
  bool keep_spill = false;
};

/// Accounting of one out-of-core run (also published as "outofcore.*"
/// counters and the mem.memory_budget_bytes gauge).
struct OutOfCoreStats {
  uint64_t num_baskets = 0;
  ItemId num_items = 0;
  /// RAM-sized CCS1 partitions spilled (and mined) in pass one.
  uint64_t partitions = 0;
  /// Total CCS1 payload bytes written across partitions.
  uint64_t spilled_payload_bytes = 0;
  /// Distinct count queries the partition mines touched (the memo
  /// warm-up verified in the streaming pass).
  uint64_t candidate_queries = 0;
  /// Memo traffic of the final walk: misses are the queries that cost an
  /// extra streaming pass batch.
  uint64_t memo_hits = 0;
  uint64_t memo_misses = 0;
};

/// Two-pass partition correlation mining over a dataset that need not fit
/// in memory (SON-style, composed with the border machinery):
///
///   spill   — stream `path` once, building hybrid counting columns for
///             RAM-sized horizontal partitions and writing each as an
///             mmap-backed CCS1 shard file;
///   pass 1  — mine each mapped partition at proportionally scaled
///             support, recording every count query the level-wise walk
///             issues (the candidate border union);
///   pass 2  — stream the partitions once more, answering the whole
///             candidate union with exact global counts into a memo;
///   final   — re-walk MineCorrelations over a MemoCountProvider whose
///             fallback batch-counts against the mapped partitions, so
///             even queries the warm-up missed are answered exactly.
///
/// The final walk sees exact counts for every query, so rules, level
/// stats and the frontier are byte-identical to the in-memory miner by
/// construction. Partitions are mapped, counted and unmapped strictly one
/// at a time — the high-water mark stays near base + one partition.
StatusOr<MiningResult> MineCorrelationsOutOfCore(
    const std::string& path, const OutOfCoreMinerOptions& options,
    OutOfCoreStats* stats = nullptr);

}  // namespace corrmine

#endif  // CORRMINE_MINING_PARTITION_H_
