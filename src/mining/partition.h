#ifndef CORRMINE_MINING_PARTITION_H_
#define CORRMINE_MINING_PARTITION_H_

#include <cstdint>

#include "common/status_or.h"
#include "itemset/transaction_database.h"
#include "mining/apriori.h"

namespace corrmine {

struct PartitionOptions {
  double min_support_fraction = 0.01;
  /// Number of horizontal partitions (the original tunes this so one
  /// partition fits in memory).
  int num_partitions = 4;
  /// Stop after this itemset size; 0 = unbounded.
  int max_level = 0;
};

struct PartitionStats {
  /// Union of locally frequent itemsets = global candidates.
  uint64_t global_candidates = 0;
  /// Candidates that failed the global count (locally frequent somewhere,
  /// globally infrequent — the algorithm's only source of wasted work).
  uint64_t false_candidates = 0;
};

/// The Partition algorithm of Savasere, Omiecinski and Navathe (VLDB'95,
/// the paper's reference [27]): split the database into `num_partitions`
/// chunks, mine each chunk independently at the same *fractional*
/// threshold, and union the locally frequent itemsets. Any globally
/// frequent itemset is frequent in at least one partition (pigeonhole on
/// fractions), so the union is a superset of the answer; a second full
/// pass counts the union exactly. Two database passes total.
StatusOr<std::vector<FrequentItemset>> MineFrequentItemsetsPartition(
    const TransactionDatabase& db, const PartitionOptions& options = {},
    PartitionStats* stats = nullptr);

}  // namespace corrmine

#endif  // CORRMINE_MINING_PARTITION_H_
