#include "mining/maximal.h"

#include <algorithm>

namespace corrmine {

namespace {

std::vector<FrequentItemset> SortBySizeLex(
    std::vector<FrequentItemset> sets) {
  std::sort(sets.begin(), sets.end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              if (a.itemset.size() != b.itemset.size()) {
                return a.itemset.size() < b.itemset.size();
              }
              return a.itemset < b.itemset;
            });
  return sets;
}

}  // namespace

std::vector<FrequentItemset> MaximalFrequentItemsets(
    const std::vector<FrequentItemset>& frequent) {
  // Largest first so each set only needs testing against already-kept
  // (equal-or-larger) sets.
  std::vector<const FrequentItemset*> by_size_desc;
  by_size_desc.reserve(frequent.size());
  for (const FrequentItemset& f : frequent) by_size_desc.push_back(&f);
  std::sort(by_size_desc.begin(), by_size_desc.end(),
            [](const FrequentItemset* a, const FrequentItemset* b) {
              return a->itemset.size() > b->itemset.size();
            });
  std::vector<FrequentItemset> maximal;
  for (const FrequentItemset* f : by_size_desc) {
    bool covered = false;
    for (const FrequentItemset& kept : maximal) {
      if (kept.itemset.ContainsAll(f->itemset)) {
        covered = true;
        break;
      }
    }
    if (!covered) maximal.push_back(*f);
  }
  return SortBySizeLex(std::move(maximal));
}

std::vector<FrequentItemset> ClosedFrequentItemsets(
    const std::vector<FrequentItemset>& frequent) {
  std::vector<FrequentItemset> closed;
  for (const FrequentItemset& f : frequent) {
    bool has_equal_superset = false;
    for (const FrequentItemset& other : frequent) {
      if (other.itemset.size() <= f.itemset.size()) continue;
      if (other.count == f.count && other.itemset.ContainsAll(f.itemset)) {
        has_equal_superset = true;
        break;
      }
    }
    if (!has_equal_superset) closed.push_back(f);
  }
  return SortBySizeLex(std::move(closed));
}

}  // namespace corrmine
