#ifndef CORRMINE_MINING_APRIORI_H_
#define CORRMINE_MINING_APRIORI_H_

#include <cstdint>
#include <vector>

#include "common/status_or.h"
#include "itemset/count_provider.h"
#include "itemset/itemset.h"

namespace corrmine {

class ThreadPool;

/// A frequent itemset with its occurrence count.
struct FrequentItemset {
  Itemset itemset;
  uint64_t count = 0;

  double SupportFraction(uint64_t n) const {
    return static_cast<double>(count) / static_cast<double>(n);
  }
};

struct AprioriOptions {
  /// Minimum support as a fraction of baskets (the classical s%).
  double min_support_fraction = 0.01;
  /// Stop after this itemset size; 0 = unbounded.
  int max_level = 0;
  /// Threads for candidate counting (1 = sequential, 0 = hardware
  /// concurrency). Counts land in index-addressed slots, so output is
  /// identical for any setting.
  int num_threads = 1;
  /// Optional borrowed pool (e.g. a MiningSession's); when null the miner
  /// creates its own for the duration of the call.
  ThreadPool* pool = nullptr;
};

/// The Agrawal–Srikant Apriori algorithm: level-wise frequent-itemset
/// mining exploiting the downward closure of support. This is the
/// support–confidence baseline the paper contrasts correlation rules
/// against. Counting is delegated to the CountProvider (use bitmaps for
/// anything sizable).
///
/// Returns all frequent itemsets of size >= 1 ordered by (size, lex).
StatusOr<std::vector<FrequentItemset>> MineFrequentItemsets(
    const CountProvider& provider, ItemId num_items,
    const AprioriOptions& options = {});

}  // namespace corrmine

#endif  // CORRMINE_MINING_APRIORI_H_
