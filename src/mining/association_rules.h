#ifndef CORRMINE_MINING_ASSOCIATION_RULES_H_
#define CORRMINE_MINING_ASSOCIATION_RULES_H_

#include <vector>

#include "common/status_or.h"
#include "core/contingency_table.h"
#include "mining/apriori.h"

namespace corrmine {

/// An association rule antecedent => consequent in the support-confidence
/// framework (Section 1.1): `support` is the fraction of baskets containing
/// antecedent ∪ consequent, `confidence` the fraction of antecedent baskets
/// that also contain the consequent.
struct AssociationRule {
  Itemset antecedent;
  Itemset consequent;
  double support = 0.0;
  double confidence = 0.0;
};

struct RuleOptions {
  double min_confidence = 0.5;
};

/// Generates all rules I => J with I, J a disjoint non-empty partition of a
/// frequent itemset, keeping those meeting the confidence threshold. Counts
/// for sub-itemsets are taken from `frequent` (downward closure guarantees
/// they are present when Apriori produced the input).
StatusOr<std::vector<AssociationRule>> GenerateAssociationRules(
    const std::vector<FrequentItemset>& frequent, uint64_t num_baskets,
    const RuleOptions& options = {});

/// The full pairwise support-confidence analysis of the paper's Table 3:
/// for a pair (a, b), the supports of all four presence/absence cells and
/// the confidences of the eight directed rules over a, b and their
/// negations.
struct PairwiseSupportConfidence {
  /// Supports (fractions of n) of ab, (not-a)b, a(not-b), neither.
  double s_ab = 0, s_nab = 0, s_anb = 0, s_nanb = 0;
  /// Confidences: conf[x][y] with x in {a present, a absent} and direction
  /// a=>b vs b=>a spelled out for readability.
  double a_to_b = 0, na_to_b = 0, a_to_nb = 0, na_to_nb = 0;
  double b_to_a = 0, nb_to_a = 0, b_to_na = 0, nb_to_na = 0;
};

/// Computes the pairwise analysis from a 2-item contingency table (item a
/// is the table's first item, b its second).
StatusOr<PairwiseSupportConfidence> AnalyzePair(const ContingencyTable& table);

}  // namespace corrmine

#endif  // CORRMINE_MINING_ASSOCIATION_RULES_H_
