#ifndef CORRMINE_MINING_RARE_PAIRS_H_
#define CORRMINE_MINING_RARE_PAIRS_H_

#include <vector>

#include "common/status_or.h"
#include "itemset/count_provider.h"
#include "itemset/itemset.h"

namespace corrmine {

/// A rare-item dependency found with Fisher's exact test.
struct RarePairResult {
  Itemset pair;
  /// Two-sided exact p-value of independence.
  double p_value = 1.0;
  /// Interest of the joint cell, O(ab)/E(ab); above 1 means the rare items
  /// attract each other, below 1 (or 0) that they repel.
  double joint_interest = 1.0;
  uint64_t count_a = 0;
  uint64_t count_b = 0;
  uint64_t count_both = 0;
};

struct RarePairOptions {
  /// Anti-support ceiling: only items occurring in at most this fraction
  /// of baskets participate (Section 4's "only rarely occurring
  /// combinations of items are interesting", as in the fire-code example).
  double max_item_fraction = 0.05;
  /// Items must still occur at least this many times, or nothing can be
  /// said about them.
  uint64_t min_item_count = 2;
  /// Exact-test significance: keep pairs with p-value below this.
  double max_p_value = 0.05;
};

/// Mines dependencies among *rare* items, the regime the paper excludes
/// from the chi-squared framework (Section 4: "anti-support cannot be used
/// with the chi-squared test at this time, however, since the chi-squared
/// statistic is not accurate for very rare events"). Fisher's exact test
/// has no such restriction, so anti-support pruning plus the exact test
/// realizes the fire-code use case: pair enumeration is restricted to the
/// (few) rare items, and each surviving 2x2 table is tested exactly.
///
/// Results are sorted by ascending p-value.
StatusOr<std::vector<RarePairResult>> MineRarePairs(
    const CountProvider& provider, ItemId num_items,
    const RarePairOptions& options = {});

}  // namespace corrmine

#endif  // CORRMINE_MINING_RARE_PAIRS_H_
