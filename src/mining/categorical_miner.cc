#include "mining/categorical_miner.h"

#include <algorithm>
#include <cmath>

#include "stats/chi_squared_distribution.h"

namespace corrmine {

StatusOr<stats::CategoricalTable> BuildCategoricalTable(
    const CategoricalDatabase& db, int attribute_a, int attribute_b) {
  if (attribute_a == attribute_b || attribute_a < 0 || attribute_b < 0 ||
      attribute_a >= db.num_attributes() ||
      attribute_b >= db.num_attributes()) {
    return Status::InvalidArgument("invalid attribute pair");
  }
  CORRMINE_ASSIGN_OR_RETURN(
      stats::CategoricalTable table,
      stats::CategoricalTable::Create(db.attribute(attribute_a).arity(),
                                      db.attribute(attribute_b).arity()));
  for (size_t row = 0; row < db.num_rows(); ++row) {
    table.Increment(db.value(row, attribute_a), db.value(row, attribute_b));
  }
  return table;
}

namespace {

/// Chi-squared over the table with optional low-expectation masking;
/// returns (statistic, considered-cell count).
std::pair<double, int> MaskedChiSquared(const stats::CategoricalTable& table,
                                        double min_expected) {
  double chi2 = 0.0;
  int considered = 0;
  for (int r = 0; r < table.rows(); ++r) {
    for (int c = 0; c < table.cols(); ++c) {
      double e = table.Expected(r, c);
      if (e <= 0.0 || e < min_expected) continue;
      double diff = static_cast<double>(table.count(r, c)) - e;
      chi2 += diff * diff / e;
      ++considered;
    }
  }
  return {chi2, considered};
}

}  // namespace

StatusOr<std::vector<CategoricalDependency>> MineCategoricalDependencies(
    const CategoricalDatabase& db, const CategoricalMinerOptions& options) {
  if (db.num_rows() == 0) {
    return Status::FailedPrecondition("mining an empty database");
  }
  if (!(options.confidence_level > 0.0 && options.confidence_level < 1.0)) {
    return Status::InvalidArgument("confidence_level must be in (0,1)");
  }

  std::vector<CategoricalDependency> dependencies;
  for (int a = 0; a < db.num_attributes(); ++a) {
    for (int b = a + 1; b < db.num_attributes(); ++b) {
      CORRMINE_ASSIGN_OR_RETURN(stats::CategoricalTable table,
                                BuildCategoricalTable(db, a, b));
      // Skip degenerate tables (an attribute stuck at one category).
      bool degenerate = false;
      for (int r = 0; r < table.rows(); ++r) {
        if (table.RowTotal(r) == db.num_rows()) degenerate = true;
      }
      for (int c = 0; c < table.cols(); ++c) {
        if (table.ColTotal(c) == db.num_rows()) degenerate = true;
      }
      if (degenerate) continue;

      auto [chi2, considered] =
          MaskedChiSquared(table, options.min_expected_cell);
      if (considered < 2) continue;

      CategoricalDependency dep;
      dep.attribute_a = a;
      dep.attribute_b = b;
      dep.chi_squared = chi2;
      dep.dof = table.DegreesOfFreedom();
      dep.p_value = stats::ChiSquaredPValue(chi2, dep.dof);
      if (dep.p_value >= 1.0 - options.confidence_level) continue;

      double n = static_cast<double>(table.GrandTotal());
      int min_dim = std::min(table.rows(), table.cols()) - 1;
      dep.cramers_v = std::sqrt(chi2 / (n * static_cast<double>(min_dim)));

      double best_contribution = -1.0;
      for (int r = 0; r < table.rows(); ++r) {
        for (int c = 0; c < table.cols(); ++c) {
          double e = table.Expected(r, c);
          if (e <= 0.0 || e < options.min_expected_cell) continue;
          double diff = static_cast<double>(table.count(r, c)) - e;
          double contribution = diff * diff / e;
          if (contribution > best_contribution) {
            best_contribution = contribution;
            dep.dominant_category_a = r;
            dep.dominant_category_b = c;
            dep.dominant_interest = table.Interest(r, c);
          }
        }
      }
      dependencies.push_back(dep);
    }
  }
  std::sort(dependencies.begin(), dependencies.end(),
            [](const CategoricalDependency& x, const CategoricalDependency& y) {
              return x.cramers_v > y.cramers_v;
            });
  return dependencies;
}

}  // namespace corrmine
