#ifndef CORRMINE_MINING_FP_GROWTH_H_
#define CORRMINE_MINING_FP_GROWTH_H_

#include "common/status_or.h"
#include "itemset/transaction_database.h"
#include "mining/apriori.h"

namespace corrmine {

struct FpGrowthOptions {
  double min_support_fraction = 0.01;
  /// Stop after this itemset size; 0 = unbounded.
  int max_level = 0;
};

/// FP-growth (Han, Pei & Yin, 2000): compresses the database into a
/// frequency-ordered prefix tree (FP-tree) and mines it recursively via
/// conditional pattern bases, with no candidate generation at all.
///
/// Note on provenance: this postdates the reproduced paper by three years;
/// it is included as the now-standard frequent-itemset baseline a modern
/// release of this library would be expected to ship, not as part of the
/// reproduction. Output is exactly Apriori's (property-tested).
StatusOr<std::vector<FrequentItemset>> MineFrequentItemsetsFpGrowth(
    const TransactionDatabase& db, const FpGrowthOptions& options = {});

}  // namespace corrmine

#endif  // CORRMINE_MINING_FP_GROWTH_H_
