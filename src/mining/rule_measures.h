#ifndef CORRMINE_MINING_RULE_MEASURES_H_
#define CORRMINE_MINING_RULE_MEASURES_H_

#include "common/status_or.h"
#include "core/contingency_table.h"

namespace corrmine {

/// A panel of rule-quality measures for a directed pair rule a => b,
/// computed from a 2-item contingency table. The paper's interest (= lift)
/// started a long line of such measures; this module collects the
/// standard panel so rules can be compared under all of them at once.
struct RuleMeasures {
  /// P(ab): the classical support of the rule.
  double support = 0.0;
  /// P(b|a): the classical confidence.
  double confidence = 0.0;
  /// P(ab) / (P(a) P(b)) — the paper's interest I(ab); 1 = independent.
  double lift = 1.0;
  /// P(ab) - P(a) P(b): additive deviation from independence.
  double leverage = 0.0;
  /// P(a) P(!b) / P(a !b): how much more often the rule would have to be
  /// wrong if a and b were independent; +inf for exceptionless rules.
  double conviction = 1.0;
  /// phi coefficient: the signed, normalized correlation in [-1, 1];
  /// chi-squared = n * phi^2 for 2x2 tables.
  double phi = 0.0;
  /// |ab| / |a union b|: set overlap ignoring absences.
  double jaccard = 0.0;
};

/// Computes the panel for rule "first item => second item" of a 2-item
/// table. Errors if the table is not over exactly 2 items or a margin is
/// degenerate (an item present in no or all baskets).
StatusOr<RuleMeasures> ComputeRuleMeasures(const ContingencyTable& table);

}  // namespace corrmine

#endif  // CORRMINE_MINING_RULE_MEASURES_H_
