#ifndef CORRMINE_COMMON_STRING_UTIL_H_
#define CORRMINE_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status_or.h"

namespace corrmine {

/// Splits `input` on any of the characters in `delims`, discarding empty
/// pieces (so runs of delimiters collapse).
std::vector<std::string_view> SplitString(std::string_view input,
                                          std::string_view delims = " \t");

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimString(std::string_view input);

/// Parses a non-negative decimal integer; rejects trailing garbage.
StatusOr<uint64_t> ParseUint64(std::string_view token);

/// Parses a floating point value; rejects trailing garbage.
StatusOr<double> ParseDouble(std::string_view token);

/// Lower-cases ASCII characters.
std::string ToLowerAscii(std::string_view input);

/// Joins pieces with a separator.
std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep);

}  // namespace corrmine

#endif  // CORRMINE_COMMON_STRING_UTIL_H_
