#include "common/flags.h"

#include "common/string_util.h"

namespace corrmine {

StatusOr<FlagParser> FlagParser::Parse(int argc, const char* const* argv) {
  FlagParser parser;
  bool flags_done = false;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (flags_done || arg.size() < 2 || arg.compare(0, 2, "--") != 0) {
      if (arg == "--" && !flags_done) {
        flags_done = true;
        continue;
      }
      parser.positional_.push_back(std::move(arg));
      continue;
    }
    if (arg == "--") {
      flags_done = true;
      continue;
    }
    std::string body = arg.substr(2);
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      std::string name = body.substr(0, eq);
      if (name.empty()) {
        return Status::InvalidArgument("malformed flag: " + arg);
      }
      parser.flags_[name] = body.substr(eq + 1);
      continue;
    }
    // "--key value" when the next token is not itself a flag; otherwise a
    // bare boolean flag.
    if (i + 1 < argc) {
      std::string next = argv[i + 1];
      if (next.size() < 2 || next.compare(0, 2, "--") != 0) {
        parser.flags_[body] = next;
        ++i;
        continue;
      }
    }
    parser.flags_[body] = "";
  }
  return parser;
}

bool FlagParser::HasFlag(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& fallback) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

StatusOr<uint64_t> FlagParser::GetUint64(const std::string& name,
                                         uint64_t fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  CORRMINE_ASSIGN_OR_RETURN(uint64_t value, ParseUint64(it->second));
  return value;
}

StatusOr<double> FlagParser::GetDouble(const std::string& name,
                                       double fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  CORRMINE_ASSIGN_OR_RETURN(double value, ParseDouble(it->second));
  return value;
}

bool FlagParser::GetBool(const std::string& name, bool fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  if (it->second.empty()) return true;
  std::string lower = ToLowerAscii(it->second);
  return lower == "1" || lower == "true" || lower == "yes" || lower == "on";
}

std::vector<std::string> FlagParser::FlagNames() const {
  std::vector<std::string> names;
  names.reserve(flags_.size());
  for (const auto& [name, value] : flags_) names.push_back(name);
  return names;
}

}  // namespace corrmine
