#ifndef CORRMINE_COMMON_PMU_H_
#define CORRMINE_COMMON_PMU_H_

#include <array>
#include <cstdint>
#include <string>

#include "common/metrics.h"

namespace corrmine {

/// Hardware performance-counter access (DESIGN.md §13), the PMU half of the
/// profiling subsystem. A PmuGroup opens one perf_event_open group — cycles
/// (leader), instructions, LLC loads/misses, branch misses, and the
/// task-clock software counter — bound to the calling thread, and reads all
/// of them atomically with one PERF_FORMAT_GROUP read. ProfileScope
/// (common/profiler.h) reads a group at phase entry/exit and attributes the
/// delta to the phase.
///
/// Degradation contract: perf_event_open is routinely denied in containers
/// (EACCES under perf_event_paranoid, EPERM/ENOSYS under seccomp) and
/// hardware events are often absent in VMs (ENOENT). Availability is probed
/// once per process; when the probe fails every PmuGroup is invalid, every
/// Read() returns zeros with valid=false, and ProbePmu().reason says why —
/// callers work unperturbed and the stats-JSON "profile" section reports
/// `pmu.available: false` instead of erroring.

/// One atomic reading (or a delta of two) of the counter group. Counts are
/// scaled for multiplexing (value * time_enabled / time_running) when the
/// kernel had to rotate the group; `valid` is false when the group could
/// not be read at all.
struct PmuCounts {
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t llc_loads = 0;
  uint64_t llc_misses = 0;
  uint64_t branch_misses = 0;
  uint64_t task_clock_ns = 0;
  bool valid = false;

  /// Per-field saturating difference (counters are monotone per thread, so
  /// a negative delta only means the field was absent on one side).
  PmuCounts operator-(const PmuCounts& other) const;
  PmuCounts& operator+=(const PmuCounts& other);
};

/// Result of the one-time per-process availability probe. `reason` is empty
/// when available, otherwise a human-readable explanation (errno text plus
/// a hint for the common perf_event_paranoid case).
struct PmuProbe {
  bool available = false;
  std::string reason;
};

/// Probes perf_event_open once (first call) and caches the verdict. Safe to
/// call from any thread, never throws, never logs.
const PmuProbe& ProbePmu();

#ifdef CORRMINE_METRICS_DISABLED

/// No-op shell: zero state, zero syscalls, same call-site shape. The
/// metrics-off build must not even open file descriptors.
class PmuGroup {
 public:
  PmuGroup() {}
  bool valid() const { return false; }
  PmuCounts Read() const { return PmuCounts{}; }
};

#else  // PMU layer compiled in

/// One per-thread perf_event group. Construction opens the counters for the
/// calling thread (invalid when the probe failed — construction still never
/// errors); Read() must be called from the owning thread. Counters free-run
/// from construction, so callers measure windows as Read()-deltas.
class PmuGroup {
 public:
  static constexpr size_t kEvents = 6;

  PmuGroup();
  ~PmuGroup();
  PmuGroup(const PmuGroup&) = delete;
  PmuGroup& operator=(const PmuGroup&) = delete;

  /// True when the group leader (cycles) opened. Individual member events
  /// may still be absent (e.g. no LLC events on this CPU) — their fields
  /// read as 0.
  bool valid() const { return fds_[0] >= 0; }

  /// One group read: all opened counters sampled at the same instant.
  PmuCounts Read() const;

 private:
  std::array<int, kEvents> fds_;       // -1 = event not opened
  std::array<uint64_t, kEvents> ids_;  // PERF_FORMAT_ID per opened slot
};

#endif  // CORRMINE_METRICS_DISABLED

}  // namespace corrmine

#endif  // CORRMINE_COMMON_PMU_H_
