#include "common/metrics.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <new>
#include <sstream>

namespace corrmine {

namespace {

uint64_t SteadyNowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Index of the log2 bucket covering `value` (0 for values 0 and 1).
size_t BucketIndex(uint64_t value) {
  if (value <= 1) return 0;
  size_t bits = 64 - static_cast<size_t>(__builtin_clzll(value));
  return std::min(bits - 1, Histogram::kBuckets - 1);
}

/// Minimal JSON string escaping: the metric names are identifiers, but the
/// writer must never emit malformed output whatever the caller passes.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AtomicMin(std::atomic<uint64_t>* target, uint64_t value) {
  uint64_t current = target->load(std::memory_order_relaxed);
  while (value < current &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<uint64_t>* target, uint64_t value) {
  uint64_t current = target->load(std::memory_order_relaxed);
  while (value > current &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace

size_t Counter::ShardIndex() {
  static std::atomic<size_t> next{0};
  thread_local size_t sticky =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return sticky;
}

void Histogram::Observe(uint64_t value) {
  if constexpr (!kMetricsEnabled) {
    (void)value;
    return;
  }
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
}

Histogram::Data Histogram::Value() const {
  Data data;
  data.count = count_.load(std::memory_order_relaxed);
  data.sum = sum_.load(std::memory_order_relaxed);
  data.min = data.count == 0 ? 0 : min_.load(std::memory_order_relaxed);
  data.max = max_.load(std::memory_order_relaxed);
  for (size_t b = 0; b < kBuckets; ++b) {
    data.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  return data;
}

MetricsRegistry::MetricsRegistry() {
  if constexpr (kMetricsEnabled) epoch_ns_ = SteadyNowNanos();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* global = new MetricsRegistry();
  return *global;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

void MetricsRegistry::RecordSpan(const std::string& name, uint64_t start_ns,
                                 uint64_t duration_ns) {
  if constexpr (!kMetricsEnabled) {
    (void)name;
    (void)start_ns;
    (void)duration_ns;
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= kMaxTraceSpans) {
    ++spans_dropped_;
    return;
  }
  spans_.push_back(TraceSpan{name, start_ns, duration_ns});
}

uint64_t MetricsRegistry::NowNanos() const {
  if constexpr (!kMetricsEnabled) return 0;
  return SteadyNowNanos() - epoch_ns_;
}

MetricsRegistry::Snapshot MetricsRegistry::Snap() const {
  Snapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms[name] = histogram->Value();
  }
  snapshot.spans = spans_;
  snapshot.spans_dropped = spans_dropped_;
  return snapshot;
}

std::string MetricsRegistry::ToJson() const {
  Snapshot snapshot = Snap();
  std::ostringstream out;
  out << "{\"metrics_compiled\":" << (kMetricsEnabled ? "true" : "false");
  out << ",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out << ',';
    first = false;
    out << '"' << JsonEscape(name) << "\":" << value;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out << ',';
    first = false;
    out << '"' << JsonEscape(name) << "\":" << value;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, data] : snapshot.histograms) {
    if (!first) out << ',';
    first = false;
    out << '"' << JsonEscape(name) << "\":{\"count\":" << data.count
        << ",\"sum\":" << data.sum << ",\"min\":" << data.min
        << ",\"max\":" << data.max << '}';
  }
  out << "},\"spans\":[";
  for (size_t i = 0; i < snapshot.spans.size(); ++i) {
    if (i > 0) out << ',';
    out << "{\"name\":\"" << JsonEscape(snapshot.spans[i].name)
        << "\",\"start_ns\":" << snapshot.spans[i].start_ns
        << ",\"duration_ns\":" << snapshot.spans[i].duration_ns << '}';
  }
  out << "],\"spans_dropped\":" << snapshot.spans_dropped << '}';
  return out.str();
}

std::string MetricsRegistry::DumpMetrics() const {
  Snapshot snapshot = Snap();
  std::ostringstream out;
  out << "== metrics ==" << (kMetricsEnabled ? "" : " (compiled out)")
      << "\n";
  for (const auto& [name, value] : snapshot.counters) {
    out << "counter   " << name << " = " << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    out << "gauge     " << name << " = " << value << "\n";
  }
  for (const auto& [name, data] : snapshot.histograms) {
    out << "histogram " << name << ": count " << data.count << ", sum "
        << data.sum << ", min " << data.min << ", max " << data.max;
    if (data.count > 0) out << ", mean " << data.sum / data.count;
    out << "\n";
  }
  if (!snapshot.spans.empty()) {
    out << "-- trace spans (" << snapshot.spans.size() << " kept, "
        << snapshot.spans_dropped << " dropped) --\n";
    for (const TraceSpan& span : snapshot.spans) {
      out << "  " << span.name << " @" << span.start_ns << "ns +"
          << span.duration_ns << "ns\n";
    }
  }
  return out.str();
}

void MetricsRegistry::Reset() {
  // Swapping in fresh objects would invalidate handed-out handles, so each
  // metric is rebuilt in place (the atomics make them non-assignable).
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& entry : counters_) {
    entry.second->~Counter();
    new (entry.second.get()) Counter();
  }
  for (auto& entry : gauges_) {
    entry.second->~Gauge();
    new (entry.second.get()) Gauge();
  }
  for (auto& entry : histograms_) {
    entry.second->~Histogram();
    new (entry.second.get()) Histogram();
  }
  spans_.clear();
  spans_dropped_ = 0;
}

PhaseTimer::PhaseTimer(MetricsRegistry* registry, std::string name)
    : registry_(registry), name_(std::move(name)) {
  if constexpr (kMetricsEnabled) start_ns_ = registry_->NowNanos();
}

void PhaseTimer::Stop() {
  if constexpr (!kMetricsEnabled) return;
  if (stopped_) return;
  stopped_ = true;
  uint64_t duration = registry_->NowNanos() - start_ns_;
  registry_->GetHistogram(name_ + ".ns")->Observe(duration);
  registry_->GetCounter(name_ + ".calls")->Add();
  registry_->RecordSpan(name_, start_ns_, duration);
}

}  // namespace corrmine
