#ifndef CORRMINE_COMMON_FLAGS_H_
#define CORRMINE_COMMON_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "common/status_or.h"

namespace corrmine {

/// Minimal command-line parser for the repository's tools: recognizes
/// "--key=value", "--key value" and bare "--key" (boolean) flags; anything
/// else is a positional argument. No registration step — callers query by
/// name with typed accessors and defaults.
class FlagParser {
 public:
  /// Parses argv (excluding argv[0]). "--" ends flag parsing; the rest is
  /// positional. Rejects malformed flags like "--=x".
  static StatusOr<FlagParser> Parse(int argc, const char* const* argv);

  bool HasFlag(const std::string& name) const;

  /// String flag (last occurrence wins); `fallback` if absent.
  std::string GetString(const std::string& name,
                        const std::string& fallback) const;

  /// Typed accessors; parse errors surface as statuses.
  StatusOr<uint64_t> GetUint64(const std::string& name,
                               uint64_t fallback) const;
  StatusOr<double> GetDouble(const std::string& name, double fallback) const;

  /// True when the flag appears bare or with a truthy value
  /// (1/true/yes/on).
  bool GetBool(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Names of all flags seen (for unknown-flag validation by callers).
  std::vector<std::string> FlagNames() const;

 private:
  std::map<std::string, std::string> flags_;  // "" means bare flag.
  std::vector<std::string> positional_;
};

}  // namespace corrmine

#endif  // CORRMINE_COMMON_FLAGS_H_
