#ifndef CORRMINE_COMMON_TRACE_H_
#define CORRMINE_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"

namespace corrmine {

/// Execution tracing substrate (DESIGN.md §8), layered on the same
/// compile-out switch as common/metrics.h: per-thread lock-free ring
/// buffers of span begin/end and instant events, exported in the Chrome
/// Trace Event Format so a `--trace-out` file loads directly in Perfetto
/// or chrome://tracing.
///
/// Collection is opt-in at runtime: an inactive tracer costs one relaxed
/// atomic load per call site and reads no clocks, so instrumented hot
/// paths stay cheap in the (default) untraced configuration. Under
/// -DCORRMINE_METRICS=OFF every entry point below compiles to an inline
/// no-op, exactly like the metrics layer — call sites build identically in
/// both modes.

/// Chrome trace phases the exporter understands. Spans are recorded as
/// separate begin/end events (not complete "X" events) so a scope's
/// children land between its endpoints in the ring.
enum class TraceEventPhase : uint8_t { kBegin, kEnd, kInstant };

/// One recorded event. `name` must be a string with static storage
/// duration (the ring stores the pointer, never a copy); the int64 args
/// use -1 for "absent" and are exported into the Chrome event's "args"
/// object as level / shard / value.
struct TraceEvent {
  const char* name = nullptr;
  uint64_t ts_ns = 0;
  TraceEventPhase phase = TraceEventPhase::kInstant;
  int64_t level = -1;
  int64_t shard = -1;
  int64_t value = -1;
};

/// Fixed-capacity single-writer ring of trace events. The owning thread
/// appends; the exporter reads while the owner is quiescent. Capacity is a
/// power of two; once full, each append overwrites the oldest event (the
/// drop is counted, never undefined behavior — the cursor is the single
/// point of coordination and the slot write happens-before its release).
class TraceRing {
 public:
  /// `capacity` is rounded up to a power of two, minimum 8.
  explicit TraceRing(size_t capacity);

  /// Owner thread only. Overwrites the oldest event when full.
  void Append(const TraceEvent& event);

  /// Events still buffered, oldest first, plus how many were overwritten.
  /// Safe to call concurrently with Append only in the sense that it never
  /// crashes; for a consistent snapshot the owner must be quiescent (see
  /// Tracer::WriteChromeJson).
  struct Contents {
    std::vector<TraceEvent> events;
    uint64_t dropped = 0;
  };
  Contents Snapshot() const;

  size_t capacity() const { return slots_.size(); }
  uint64_t total_appended() const {
    return cursor_.load(std::memory_order_acquire);
  }

  /// Events overwritten so far (total appended minus capacity, floored at
  /// zero). Same value Snapshot() reports, without copying the events.
  uint64_t Dropped() const {
    const uint64_t end = cursor_.load(std::memory_order_acquire);
    return end > slots_.size() ? end - slots_.size() : 0;
  }

 private:
  std::vector<TraceEvent> slots_;
  size_t mask_;
  /// Total events ever appended; slot for event i is slots_[i & mask_].
  /// Release on write / acquire on read orders the slot payload.
  std::atomic<uint64_t> cursor_{0};
};

/// Process-wide trace collector. Threads register lazily on their first
/// traced event and keep a sticky ring for the session; Start()/Stop()
/// bound a collection session. Start, Stop and WriteChromeJson must not
/// race with active tracing regions (the CLI starts tracing before the
/// mining run and exports after it returns — by then the session's pool
/// workers are idle and every prior append happens-before the fan-in that
/// completed the run).
class Tracer {
 public:
  /// Default ring capacity per thread. Sized so the long-lived run/level
  /// spans survive the flood of per-block counting events on seconds-scale
  /// mines (~3 MB/thread of buffer while a session is active — tracing is
  /// opt-in, so this only costs when --trace-out is set).
  static constexpr size_t kDefaultEventsPerThread = 1u << 16;

  static Tracer& Global();

  /// Begins a collection session: resets the time base, drops buffers from
  /// any previous session, and sizes each thread's ring at
  /// `events_per_thread` (rounded up to a power of two). No-op when the
  /// metrics layer is compiled out.
  void Start(size_t events_per_thread = kDefaultEventsPerThread);

  /// Ends the session. Buffered events stay readable until the next Start.
  void Stop();

  bool active() const { return active_.load(std::memory_order_relaxed); }

  /// Nanoseconds since Start (steady clock).
  uint64_t NowNanos() const;

  /// The calling thread's ring for the current session (registering the
  /// thread on first use). Only meaningful while active.
  TraceRing* ThreadRing();

  /// Async-signal-safe variant for the sampling profiler's SIGPROF
  /// handler: returns the calling thread's ring only if this thread
  /// already registered it for the current session, else nullptr. Never
  /// locks, allocates, or registers — just thread-local and atomic reads.
  TraceRing* ThreadRingIfCached();

  /// Total events overwritten across all rings of the current session.
  /// Surfaces in stats-JSON as trace.dropped_events and as a stderr
  /// warning at export (the cue to re-run with a larger ring).
  uint64_t DroppedEvents() const;

  /// Everything collected, one entry per registered thread in registration
  /// order; tid 0 is the first thread that traced (normally the main
  /// thread).
  struct ThreadTrace {
    uint32_t tid = 0;
    std::vector<TraceEvent> events;
    uint64_t dropped = 0;
  };
  std::vector<ThreadTrace> Collect() const;

  /// Chrome Trace Event Format document: {"traceEvents":[...],...}. Spans
  /// are re-balanced per thread — an end whose begin was overwritten is
  /// dropped, an unclosed begin gets a synthesized end — so the export
  /// always validates (statsdiff --validate-trace). Timestamps are
  /// microseconds with nanosecond fractions, monotonic per thread.
  std::string ToChromeJson() const;

  /// Writes ToChromeJson() to `path` (overwriting). Works — producing an
  /// empty but valid document — even when the metrics layer is compiled
  /// out or the tracer never started.
  Status WriteChromeJson(const std::string& path) const;

 private:
  Tracer() = default;

  std::atomic<bool> active_{false};
  /// Bumped by Start; thread-local ring pointers are revalidated against it
  /// so a stale pointer from a previous session is never reused.
  std::atomic<uint64_t> session_{0};
  uint64_t epoch_ns_ = 0;
  size_t events_per_thread_ = kDefaultEventsPerThread;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<TraceRing>> rings_;
};

#ifdef CORRMINE_METRICS_DISABLED

/// No-op shells: same call-site shape, zero code and zero clock reads.
class TraceScope {
 public:
  explicit TraceScope(const char* /*name*/, int64_t /*level*/ = -1,
                      int64_t /*shard*/ = -1, int64_t /*value*/ = -1) {}
};

inline void TraceInstant(const char* /*name*/, int64_t /*level*/ = -1,
                         int64_t /*shard*/ = -1, int64_t /*value*/ = -1) {}

#else  // tracing compiled in

/// RAII span: begin event at construction, end event at destruction, both
/// into the calling thread's ring. When the tracer is inactive the
/// constructor is one relaxed load and no clock is read.
class TraceScope {
 public:
  explicit TraceScope(const char* name, int64_t level = -1,
                      int64_t shard = -1, int64_t value = -1) {
    Tracer& tracer = Tracer::Global();
    if (!tracer.active()) return;
    ring_ = tracer.ThreadRing();
    name_ = name;
    ring_->Append(TraceEvent{name, tracer.NowNanos(),
                             TraceEventPhase::kBegin, level, shard, value});
  }

  ~TraceScope() {
    if (ring_ == nullptr) return;
    ring_->Append(TraceEvent{name_, Tracer::Global().NowNanos(),
                             TraceEventPhase::kEnd, -1, -1, -1});
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceRing* ring_ = nullptr;
  const char* name_ = nullptr;
};

/// Zero-duration marker event (Chrome phase "i", thread scope).
inline void TraceInstant(const char* name, int64_t level = -1,
                         int64_t shard = -1, int64_t value = -1) {
  Tracer& tracer = Tracer::Global();
  if (!tracer.active()) return;
  tracer.ThreadRing()->Append(TraceEvent{name, tracer.NowNanos(),
                                         TraceEventPhase::kInstant, level,
                                         shard, value});
}

#endif  // CORRMINE_METRICS_DISABLED

/// Peak resident set size of this process in bytes (getrusage), 0 where
/// unsupported. Not gated on the metrics switch — callers feed it into a
/// Gauge, which no-ops when compiled out.
uint64_t PeakRssBytes();

}  // namespace corrmine

#endif  // CORRMINE_COMMON_TRACE_H_
