#ifndef CORRMINE_COMMON_STATUS_OR_H_
#define CORRMINE_COMMON_STATUS_OR_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace corrmine {

/// Holds either a value of type T or a non-OK Status explaining why the value
/// is absent. Accessing the value of an errored StatusOr is a programming
/// error (asserted in debug builds).
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value (success) or a status (failure), so
  /// that `return value;` and `return Status::...;` both work.
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK status w/o value");
  }

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) noexcept = default;
  StatusOr& operator=(StatusOr&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value, or `fallback` if this holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : fallback; }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Evaluates an expression yielding StatusOr<T>; on error propagates the
/// status, otherwise assigns the value to `lhs`.
#define CORRMINE_ASSIGN_OR_RETURN(lhs, expr)       \
  CORRMINE_ASSIGN_OR_RETURN_IMPL(                  \
      CORRMINE_CONCAT_(_status_or_, __LINE__), lhs, expr)

#define CORRMINE_CONCAT_IMPL_(a, b) a##b
#define CORRMINE_CONCAT_(a, b) CORRMINE_CONCAT_IMPL_(a, b)
#define CORRMINE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value();

}  // namespace corrmine

#endif  // CORRMINE_COMMON_STATUS_OR_H_
