#ifndef CORRMINE_COMMON_PROFILER_H_
#define CORRMINE_COMMON_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/pmu.h"
#include "common/status.h"

namespace corrmine {

/// Phase-attributed profiling subsystem (DESIGN.md §13), two coordinated
/// collectors behind one Start/Stop session:
///
///  * PMU attribution — each instrumented phase (ProfileScope) reads a
///    per-thread perf_event group at entry and exit and charges the delta
///    (cycles, instructions, LLC loads/misses, branch misses, task-clock)
///    to the phase name, so stats-JSON's "profile" section answers *why* a
///    phase is slow (IPC, miss rates) rather than just how long it took.
///
///  * Sampling profiler — an ITIMER_PROF/SIGPROF-driven, async-signal-safe
///    frame-pointer backtrace capture into one shared lock-free ring,
///    exported as flamegraph.pl-compatible collapsed stacks
///    (--profile-out) and folded into the Chrome trace as instant events.
///
/// Both collectors are pure observers: the deterministic stats section is
/// byte-identical with profiling on or off (pinned by statsdiff in
/// verify.sh), everything compiles to no-ops under -DCORRMINE_METRICS=OFF,
/// and PMU denial (seccomp/paranoid containers) degrades to
/// `pmu.available:false` + reason with every caller unperturbed.

struct ProfilerOptions {
  /// Open per-thread perf_event groups and attribute counters to phases.
  /// Silently degrades when perf_event_open is unavailable (see ProbePmu).
  bool pmu = false;
  /// Install the SIGPROF sampling profiler.
  bool sampling = false;
  /// CPU-time between samples. Prime by default so sampling does not
  /// phase-lock with periodic work.
  uint64_t sample_interval_usec = 997;
};

/// Aggregated PMU attribution for one phase name.
struct PhaseProfile {
  uint64_t scopes = 0;  ///< ProfileScope entries recorded into this phase.
  PmuCounts counts;
};

/// Process-wide profiler singleton. Start/Stop bound a session, mirroring
/// Tracer; like Tracer, they must not race with active ProfileScopes (the
/// CLI starts before the run and stops after it returns). In the
/// metrics-off build the full API remains callable — Start/Stop no-op,
/// snapshots are empty, and RenderProfileJson still produces a valid
/// section reporting everything disabled — so stats_json and the CLI
/// compile identically in both modes.
class Profiler {
 public:
  /// Shared sample ring capacity (samples across all threads). At the
  /// default ~1 kHz that is many minutes of capture; overflow drops the
  /// newest samples and reports the count.
  static constexpr size_t kSampleRingCapacity = 1u << 16;
  /// Deepest captured backtrace; frames beyond this are truncated.
  static constexpr int kMaxFrames = 24;

  static Profiler& Global();

  void Start(const ProfilerOptions& options);
  void Stop();

  bool pmu_active() const {
    return pmu_active_.load(std::memory_order_relaxed);
  }
  bool sampling_active() const {
    return sampling_active_.load(std::memory_order_acquire);
  }

  /// Merges one phase-scoped counter delta (ProfileScope destructor).
  void RecordPhase(const char* phase, const PmuCounts& delta);

  /// The calling thread's counter group for the current session, opened
  /// lazily; nullptr when the PMU collector is off or unavailable.
  PmuGroup* ThreadGroup();

  /// Called from the SIGPROF handler. Async-signal-safe: frame-pointer
  /// walk plus atomics into the pre-allocated sample ring; never locks or
  /// allocates.
  void HandleSampleSignal();

  uint64_t samples_recorded() const;
  uint64_t samples_dropped() const;

  std::map<std::string, PhaseProfile> PhaseSnapshot() const;

  /// One-line JSON object for stats-JSON's "profile" section:
  /// {"pmu":{...},"phases":{...},"sampling":{...}}. Valid in every
  /// configuration, including metrics-off and never-started.
  std::string RenderProfileJson() const;

  /// Collapsed-stack document ("frame;frame;... count" lines, root
  /// first), symbolized via dladdr at export time — the hot path never
  /// touches symbols. Empty when no samples were captured.
  std::string RenderCollapsedStacks() const;

  /// Writes RenderCollapsedStacks() to `path` (overwriting).
  Status WriteCollapsedStacks(const std::string& path) const;

 private:
  Profiler() = default;

  /// One captured backtrace. `seq` is 0 while a writer owns the slot and
  /// claim+1 once the payload is complete, so the exporter can discard
  /// torn slots without ever blocking the signal handler.
  struct SampleSlot {
    std::atomic<uint64_t> seq{0};
    int depth = 0;
    uintptr_t pcs[kMaxFrames];
  };

  std::atomic<bool> pmu_active_{false};
  std::atomic<bool> sampling_active_{false};
  std::atomic<uint64_t> session_{0};
  bool pmu_requested_ = false;
  uint64_t sample_interval_usec_ = 997;

  /// Sample ring storage: allocated once on the first sampling Start and
  /// never freed, so a straggler signal delivered around Stop can never
  /// touch freed memory. Raw pointer + mask cached for the handler.
  std::vector<SampleSlot>* sample_storage_ = nullptr;
  SampleSlot* sample_slots_ = nullptr;
  uint64_t sample_mask_ = 0;
  std::atomic<uint64_t> sample_cursor_{0};
  std::atomic<uint64_t> unresolved_samples_{0};

  mutable std::mutex mu_;
  std::map<std::string, PhaseProfile> phases_;
  std::vector<std::unique_ptr<PmuGroup>> groups_;
};

#ifdef CORRMINE_METRICS_DISABLED

/// No-op shell: sizeof == 1, no clocks, no syscalls (pinned by
/// profiler_off_test).
class ProfileScope {
 public:
  explicit ProfileScope(const char* /*phase*/) {}
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;
};

#else  // profiling compiled in

/// RAII phase attribution: reads the calling thread's PMU group at
/// construction and destruction and charges the delta to `phase` (which
/// must have static storage duration). When the PMU collector is inactive
/// the constructor is one relaxed load.
class ProfileScope {
 public:
  explicit ProfileScope(const char* phase) {
    Profiler& profiler = Profiler::Global();
    if (!profiler.pmu_active()) return;
    PmuGroup* group = profiler.ThreadGroup();
    if (group == nullptr) return;
    group_ = group;
    phase_ = phase;
    entry_ = group->Read();
  }

  ~ProfileScope() {
    if (group_ == nullptr) return;
    Profiler::Global().RecordPhase(phase_, group_->Read() - entry_);
  }

  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  PmuGroup* group_ = nullptr;
  const char* phase_ = nullptr;
  PmuCounts entry_;
};

#endif  // CORRMINE_METRICS_DISABLED

}  // namespace corrmine

#endif  // CORRMINE_COMMON_PROFILER_H_
