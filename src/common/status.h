#ifndef CORRMINE_COMMON_STATUS_H_
#define CORRMINE_COMMON_STATUS_H_

#include <string>
#include <string_view>

namespace corrmine {

/// Error categories used across the library. Mirrors the coarse-grained
/// code sets of storage-engine style status objects: the code is for
/// programmatic dispatch, the message is for humans.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kIOError = 8,
  kCorruption = 9,
};

/// Returns a short stable name for a status code ("OK", "InvalidArgument", …).
std::string_view StatusCodeToString(StatusCode code);

/// Lightweight success/error result used instead of exceptions at library API
/// boundaries. A default-constructed Status is OK and carries no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers; each produces a status with the matching code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string_view msg) {
    return Status(StatusCode::kInvalidArgument, msg);
  }
  static Status NotFound(std::string_view msg) {
    return Status(StatusCode::kNotFound, msg);
  }
  static Status AlreadyExists(std::string_view msg) {
    return Status(StatusCode::kAlreadyExists, msg);
  }
  static Status OutOfRange(std::string_view msg) {
    return Status(StatusCode::kOutOfRange, msg);
  }
  static Status FailedPrecondition(std::string_view msg) {
    return Status(StatusCode::kFailedPrecondition, msg);
  }
  static Status Unimplemented(std::string_view msg) {
    return Status(StatusCode::kUnimplemented, msg);
  }
  static Status Internal(std::string_view msg) {
    return Status(StatusCode::kInternal, msg);
  }
  static Status IOError(std::string_view msg) {
    return Status(StatusCode::kIOError, msg);
  }
  static Status Corruption(std::string_view msg) {
    return Status(StatusCode::kCorruption, msg);
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  Status(StatusCode code, std::string_view msg)
      : code_(code), message_(msg) {}

  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK status to the caller. Usable only in functions that
/// return Status.
#define CORRMINE_RETURN_NOT_OK(expr)            \
  do {                                          \
    ::corrmine::Status _st = (expr);            \
    if (!_st.ok()) return _st;                  \
  } while (false)

}  // namespace corrmine

#endif  // CORRMINE_COMMON_STATUS_H_
