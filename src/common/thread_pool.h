#ifndef CORRMINE_COMMON_THREAD_POOL_H_
#define CORRMINE_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace corrmine {

class Counter;
class Gauge;
class Histogram;

/// Work-stealing worker pool for the mining engines (DESIGN.md §10).
/// Tasks are opaque `void()` closures; completion tracking, result routing
/// and error propagation are layered on top by ParallelFor/OrderedPipeline.
///
/// Scheduling model: every worker owns a deque. Submit from a worker thread
/// pushes to that worker's own deque (never blocks, never spawns — nested
/// regions are safe by construction); Submit from outside lands in a shared
/// injector queue. A worker pops its own deque LIFO, then drains the
/// injector FIFO, then steals half of the fullest victim's deque. Threads
/// joining a region via HelpUntil run queued tasks instead of blocking, so
/// a ParallelFor issued from inside another ParallelFor's body completes
/// even when every worker is occupied by the outer region.
///
/// Ownership contract: whoever constructs the pool joins it (the destructor
/// drains queued tasks, then joins all workers). The miner creates one pool
/// per MineCorrelations call and reuses it across levels; long-lived servers
/// can keep a process-wide pool and pass it down instead.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers. `num_threads` must be >= 1.
  explicit ThreadPool(int num_threads);

  /// Drains the queues and joins the workers. Tasks submitted but not yet
  /// started still run before destruction completes.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task. Thread-safe; callable from worker threads (the task
  /// goes to the calling worker's own deque and is executed inline-or-stolen,
  /// never blocked on).
  void Submit(std::function<void()> task);

  /// Claims and runs one queued task on the calling thread, if any task is
  /// claimable (own deque, injector, or stolen). Returns false when nothing
  /// was claimable at scan time.
  bool RunOneTask();

  /// Help-first join: runs claimable tasks until `done()` holds, parking on
  /// `cv` (guarded by `mu`) only when no task is claimable anywhere. `done`
  /// is evaluated under `mu`. Safe from worker threads and external threads
  /// alike — this is what makes nested parallel regions deadlock-free.
  void HelpUntil(std::mutex& mu, std::condition_variable& cv,
                 const std::function<bool()>& done);

  /// Index of the calling thread within this pool, or -1 if the caller is
  /// not one of this pool's workers.
  int CurrentWorkerIndex() const;

  /// The number of concurrent workers to use for `requested` threads:
  /// 0 means "ask the hardware" (never less than 1); negative is treated
  /// as 1.
  static int ResolveThreadCount(int requested);

  /// CPUs actually usable by this process: hardware_concurrency() clamped
  /// by the scheduler affinity mask (cpuset) and the cgroup v1/v2 CPU quota,
  /// so containers don't oversubscribe. Never less than 1.
  static int UsableHardwareConcurrency();

 private:
  // One mutex-protected deque. Owners push/pop at the back (LIFO keeps the
  // working set hot); the injector and thieves take from the front (FIFO
  // preserves rough submission order for stolen work).
  struct TaskDeque {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(int index);
  bool ClaimTask(std::function<void()>* task);
  void RunTask(std::function<void()> task);
  void NotifyWorkArrived();

  std::vector<std::unique_ptr<TaskDeque>> deques_;  // one per worker
  TaskDeque injector_;                              // external submits

  // Sleep coordination: a worker reads `work_epoch_`, rescans every queue,
  // and sleeps only if the epoch is unchanged — every Submit bumps the
  // epoch, so a task pushed after the rescan forces another scan instead of
  // a lost wakeup.
  std::mutex sleep_mu_;
  std::condition_variable work_available_;
  uint64_t work_epoch_ = 0;
  bool shutting_down_ = false;

  std::atomic<int64_t> pending_{0};  // queued, not yet claimed
  std::vector<std::thread> workers_;

  // Pool observability (MetricsRegistry::Global(), "pool.*"): submissions,
  // completions, steals (count and tasks moved), per-task run time, the ns
  // workers spent parked (total and per-wait histogram), and the queue
  // depth after the latest submit/claim. Resolved once at construction; no
  // registry lookups on the task path.
  Counter* tasks_submitted_;
  Counter* tasks_executed_;
  Counter* steal_count_;
  Counter* steal_tasks_;
  Counter* idle_ns_;
  Histogram* wait_ns_;
  Histogram* morsel_ns_;
  Gauge* queue_depth_;
};

/// Runs `body(begin, end)` over [0, n) split into work-stealing chunks of
/// `grain` indices, spread across the pool's workers plus the calling
/// thread. Returns the first non-OK Status in chunk order (lowest starting
/// index wins, matching what a sequential loop would have returned); once
/// any chunk fails, remaining chunks are skipped. Exceptions escaping
/// `body` are captured and surfaced as Status::Internal — they never cross
/// the pool boundary.
///
/// With `pool == nullptr` the loop runs inline on the calling thread, so
/// callers can treat "no pool" and "one thread" identically. Nested calls
/// (ParallelFor from inside a body running on a pool worker) are safe: the
/// inner region's tasks run inline-or-stolen via HelpUntil.
///
/// `body` must be safe to invoke concurrently on disjoint ranges. For
/// deterministic results, write output to index-addressed slots rather than
/// shared accumulators.
Status ParallelFor(ThreadPool* pool, size_t n, size_t grain,
                   const std::function<Status(size_t begin, size_t end)>& body);

/// ParallelFor with per-participant scratch slots: `body(slot, begin, end)`
/// receives a slot index in [0, ParallelForSlotBound(pool, n, grain)) that
/// no concurrently-running body invocation shares — use it to index
/// pre-allocated scratch arenas instead of `thread_local` buffers (arenas
/// are sized once, reused across chunks, and visible for deterministic
/// post-region merging). A participant holds one slot for its whole run of
/// chunks, so slot acquisition is once per thread per region, not per chunk.
Status ParallelForSlots(
    ThreadPool* pool, size_t n, size_t grain,
    const std::function<Status(size_t slot, size_t begin, size_t end)>& body);

/// Upper bound (exact capacity) on slot indices ParallelForSlots can hand
/// out for this (pool, n, grain) combination. Use it to size per-slot
/// scratch before entering the region. Always >= 1.
size_t ParallelForSlotBound(ThreadPool* pool, size_t n, size_t grain);

/// Parallel stage + strictly ordered serial consumer, overlapped: `stage`
/// runs over chunks of [0, n) concurrently (slot-addressed scratch exactly
/// as in ParallelForSlots), while `consume` is invoked on the calling
/// thread for every chunk in increasing index order as soon as that chunk's
/// stage completes — the consumer chases the stage instead of waiting for a
/// full barrier. Sequential semantics are preserved: the result equals
/// running `stage(c); consume(c)` for c = 0,1,2,... inline, including which
/// error is returned (earliest in that interleaved order). Because `stage`
/// may run speculatively ahead of a consumer error, it must confine its
/// side effects to its slot scratch and chunk-addressed outputs.
Status OrderedPipeline(
    ThreadPool* pool, size_t n, size_t grain,
    const std::function<Status(size_t slot, size_t begin, size_t end)>& stage,
    const std::function<Status(size_t begin, size_t end)>& consume);

/// Exact slot capacity OrderedPipeline uses for this (pool, n, grain)
/// combination — size per-slot stage scratch with it. Always >= 1.
size_t OrderedPipelineSlotBound(ThreadPool* pool, size_t n, size_t grain);

}  // namespace corrmine

#endif  // CORRMINE_COMMON_THREAD_POOL_H_
