#ifndef CORRMINE_COMMON_THREAD_POOL_H_
#define CORRMINE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace corrmine {

class Counter;
class Gauge;
class Histogram;

/// Fixed-size worker pool for the mining engines. Tasks are opaque
/// `void()` closures; completion tracking, result routing and error
/// propagation are layered on top by ParallelFor. The pool is intentionally
/// small: no futures, no task priorities — the mining workloads are flat
/// fan-out/fan-in regions where that machinery is pure overhead.
///
/// Ownership contract: whoever constructs the pool joins it (the destructor
/// drains queued tasks, then joins all workers). The miner creates one pool
/// per MineCorrelations call and reuses it across levels; long-lived servers
/// can keep a process-wide pool and pass it down instead.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers. `num_threads` must be >= 1.
  explicit ThreadPool(int num_threads);

  /// Drains the queue and joins the workers. Tasks submitted but not yet
  /// started still run before destruction completes.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task for execution on some worker. Thread-safe.
  void Submit(std::function<void()> task);

  /// The number of concurrent workers to use for `requested` threads:
  /// 0 means "ask the hardware" (never less than 1); negative is treated
  /// as 1.
  static int ResolveThreadCount(int requested);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::deque<std::function<void()>> queue_;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;

  // Pool observability (MetricsRegistry::Global(), "pool.*"): submissions,
  // completions, the ns workers spent blocked waiting for work (total and
  // per-wait histogram), and the queue depth after the latest submit/pop.
  // Resolved once at construction; no registry lookups on the task path.
  Counter* tasks_submitted_;
  Counter* tasks_executed_;
  Counter* idle_ns_;
  Histogram* wait_ns_;
  Gauge* queue_depth_;
};

/// Runs `body(begin, end)` over [0, n) split into work-stealing chunks of
/// `grain` indices, spread across the pool's workers plus the calling
/// thread. Returns the first non-OK Status in chunk order (lowest starting
/// index wins, matching what a sequential loop would have returned); once
/// any chunk fails, remaining chunks are skipped. Exceptions escaping
/// `body` are captured and surfaced as Status::Internal — they never cross
/// the pool boundary.
///
/// With `pool == nullptr` the loop runs inline on the calling thread, so
/// callers can treat "no pool" and "one thread" identically.
///
/// `body` must be safe to invoke concurrently on disjoint ranges. For
/// deterministic results, write output to index-addressed slots rather than
/// shared accumulators.
Status ParallelFor(ThreadPool* pool, size_t n, size_t grain,
                   const std::function<Status(size_t begin, size_t end)>& body);

}  // namespace corrmine

#endif  // CORRMINE_COMMON_THREAD_POOL_H_
