#ifndef CORRMINE_COMMON_METRICS_H_
#define CORRMINE_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace corrmine {

/// Observability substrate for the mining pipeline (see DESIGN.md §6):
/// named counters, gauges and histograms registered in a MetricsRegistry,
/// plus scoped PhaseTimer trace spans. The hot-path operations (Counter::Add,
/// Histogram::Observe) are a single relaxed atomic on a thread-striped shard,
/// so instrumented inner loops stay contention-free.
///
/// Compile-out: configuring with -DCORRMINE_METRICS=OFF defines
/// CORRMINE_METRICS_DISABLED, which turns every mutation and every clock
/// read into an inline no-op — the registry API keeps existing so call
/// sites compile identically, but snapshots report zeros and
/// `kMetricsEnabled` lets tests skip counter assertions.
#ifdef CORRMINE_METRICS_DISABLED
inline constexpr bool kMetricsEnabled = false;
#else
inline constexpr bool kMetricsEnabled = true;
#endif

/// Monotonic counter sharded across cache lines: concurrent workers land on
/// different shards (thread-striped), reads sum them. Totals are exact; only
/// Value() pays the sum.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    if constexpr (kMetricsEnabled) {
      shards_[ShardIndex()].value.fetch_add(delta,
                                            std::memory_order_relaxed);
    } else {
      (void)delta;
    }
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  static constexpr size_t kShards = 16;
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };

  /// Thread-striped shard pick: each thread gets a sticky index, so a
  /// worker never bounces between shards within one parallel region.
  static size_t ShardIndex();

  std::array<Shard, kShards> shards_{};
};

/// Last-write-wins signed value (cache sizes, configuration echoes).
class Gauge {
 public:
  void Set(int64_t value) {
    if constexpr (kMetricsEnabled) {
      value_.store(value, std::memory_order_relaxed);
    } else {
      (void)value;
    }
  }

  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Log2-bucketed histogram of uint64 samples (durations in ns, batch
/// sizes). Bucket b counts samples in [2^(b-1), 2^b); bucket 0 counts
/// zeros and ones. Sum/min/max are tracked exactly.
class Histogram {
 public:
  static constexpr size_t kBuckets = 64;

  void Observe(uint64_t value);

  struct Data {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0;
    uint64_t max = 0;
    std::array<uint64_t, kBuckets> buckets{};
  };
  Data Value() const;

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
};

/// One completed PhaseTimer scope, for the trace-span tail kept by the
/// registry. Times are ns since the registry's construction.
struct TraceSpan {
  std::string name;
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
};

/// Owns the named metrics of one process (or one test). Library code
/// instruments against Global(); tests that need isolation construct their
/// own and pass it down (MinerOptions::metrics). Handles returned by the
/// Get* methods stay valid for the registry's lifetime — Reset() zeroes
/// values in place, it never invalidates pointers.
class MetricsRegistry {
 public:
  MetricsRegistry();

  /// The process-wide default registry.
  static MetricsRegistry& Global();

  /// Finds or creates the named metric. Thread-safe; cache the pointer
  /// outside hot loops (lookup takes the registry mutex).
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Appends a completed trace span; the buffer keeps the first
  /// kMaxTraceSpans spans and counts the overflow. No-op when disabled.
  void RecordSpan(const std::string& name, uint64_t start_ns,
                  uint64_t duration_ns);

  /// Nanoseconds since this registry was constructed (steady clock);
  /// 0 when metrics are compiled out.
  uint64_t NowNanos() const;

  struct Snapshot {
    std::map<std::string, uint64_t> counters;
    std::map<std::string, int64_t> gauges;
    std::map<std::string, Histogram::Data> histograms;
    std::vector<TraceSpan> spans;
    uint64_t spans_dropped = 0;
  };
  Snapshot Snap() const;

  /// Compact single-line JSON of the snapshot (schema in DESIGN.md §6).
  std::string ToJson() const;

  /// Human-readable multi-line report of every metric and phase.
  std::string DumpMetrics() const;

  /// Zeroes every counter/gauge/histogram and drops the trace buffer.
  /// Existing handles stay valid. Intended for tests and between
  /// independent runs in one process.
  void Reset();

  static constexpr size_t kMaxTraceSpans = 4096;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::vector<TraceSpan> spans_;
  uint64_t spans_dropped_ = 0;
  uint64_t epoch_ns_ = 0;  // steady_clock at construction.
};

/// Scoped wall-clock span: on destruction (or Stop()) records the elapsed
/// time into histogram "<name>.ns" and counter "<name>.calls" of the
/// registry, and appends a TraceSpan. Compiles to nothing when metrics are
/// disabled — no clock reads.
class PhaseTimer {
 public:
  PhaseTimer(MetricsRegistry* registry, std::string name);
  ~PhaseTimer() { Stop(); }

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

  /// Records now instead of at scope exit; later calls are no-ops.
  void Stop();

 private:
  MetricsRegistry* registry_;
  std::string name_;
  uint64_t start_ns_ = 0;
  bool stopped_ = false;
};

}  // namespace corrmine

#endif  // CORRMINE_COMMON_METRICS_H_
