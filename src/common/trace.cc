#include "common/trace.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace corrmine {

namespace {

uint64_t SteadyNowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

size_t RoundUpPow2(size_t n) {
  size_t p = 8;
  while (p < n) p <<= 1;
  return p;
}

/// Chrome wants microsecond timestamps; keep the nanosecond precision as a
/// fractional part so per-thread ordering survives the unit change.
void AppendMicros(std::ostringstream* out, uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03" PRIu64, ns / 1000,
                ns % 1000);
  *out << buf;
}

void AppendArgs(std::ostringstream* out, const TraceEvent& event) {
  *out << ",\"args\":{";
  bool first = true;
  auto field = [&](const char* key, int64_t v) {
    if (v < 0) return;
    if (!first) *out << ',';
    first = false;
    *out << '"' << key << "\":" << v;
  };
  field("level", event.level);
  field("shard", event.shard);
  field("value", event.value);
  *out << '}';
}

void AppendEvent(std::ostringstream* out, uint32_t tid,
                 const TraceEvent& event, bool* first_out) {
  if (!*first_out) *out << ",\n";
  *first_out = false;
  const char* ph = event.phase == TraceEventPhase::kBegin ? "B"
                   : event.phase == TraceEventPhase::kEnd ? "E"
                                                          : "i";
  *out << "{\"name\":\"" << (event.name != nullptr ? event.name : "")
       << "\",\"ph\":\"" << ph << "\",\"ts\":";
  AppendMicros(out, event.ts_ns);
  *out << ",\"pid\":0,\"tid\":" << tid;
  if (event.phase == TraceEventPhase::kInstant) *out << ",\"s\":\"t\"";
  AppendArgs(out, event);
  *out << '}';
}

}  // namespace

TraceRing::TraceRing(size_t capacity)
    : slots_(RoundUpPow2(capacity)), mask_(slots_.size() - 1) {}

void TraceRing::Append(const TraceEvent& event) {
  const uint64_t c = cursor_.load(std::memory_order_relaxed);
  slots_[c & mask_] = event;
  cursor_.store(c + 1, std::memory_order_release);
}

TraceRing::Contents TraceRing::Snapshot() const {
  Contents out;
  const uint64_t end = cursor_.load(std::memory_order_acquire);
  const uint64_t capacity = slots_.size();
  const uint64_t begin = end > capacity ? end - capacity : 0;
  out.dropped = begin;
  out.events.reserve(end - begin);
  for (uint64_t i = begin; i < end; ++i) {
    out.events.push_back(slots_[i & mask_]);
  }
  return out;
}

Tracer& Tracer::Global() {
  static Tracer* global = new Tracer();
  return *global;
}

void Tracer::Start(size_t events_per_thread) {
  if constexpr (!kMetricsEnabled) {
    (void)events_per_thread;
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  rings_.clear();
  events_per_thread_ = events_per_thread;
  epoch_ns_ = SteadyNowNanos();
  session_.fetch_add(1, std::memory_order_relaxed);
  active_.store(true, std::memory_order_release);
}

void Tracer::Stop() { active_.store(false, std::memory_order_release); }

uint64_t Tracer::NowNanos() const {
  if constexpr (!kMetricsEnabled) return 0;
  return SteadyNowNanos() - epoch_ns_;
}

namespace {

/// Shared between ThreadRing() (registers, may lock/allocate) and
/// ThreadRingIfCached() (async-signal-safe read-only lookup). File-scope so
/// both members see the same thread-local slot. Rings live until the next
/// Start(), so a cached pointer validated against the session is never
/// dangling.
struct CachedThreadRing {
  TraceRing* ring = nullptr;
  uint64_t session = 0;
};
thread_local CachedThreadRing t_cached_ring;

}  // namespace

TraceRing* Tracer::ThreadRing() {
  const uint64_t session = session_.load(std::memory_order_relaxed);
  if (t_cached_ring.ring != nullptr && t_cached_ring.session == session) {
    return t_cached_ring.ring;
  }
  std::lock_guard<std::mutex> lock(mu_);
  rings_.push_back(std::make_unique<TraceRing>(events_per_thread_));
  t_cached_ring.ring = rings_.back().get();
  t_cached_ring.session = session;
  return t_cached_ring.ring;
}

TraceRing* Tracer::ThreadRingIfCached() {
  if (!active_.load(std::memory_order_acquire)) return nullptr;
  const uint64_t session = session_.load(std::memory_order_relaxed);
  if (t_cached_ring.ring == nullptr || t_cached_ring.session != session) {
    return nullptr;
  }
  return t_cached_ring.ring;
}

uint64_t Tracer::DroppedEvents() const {
  if constexpr (!kMetricsEnabled) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t dropped = 0;
  for (const std::unique_ptr<TraceRing>& ring : rings_) {
    dropped += ring->Dropped();
  }
  return dropped;
}

std::vector<Tracer::ThreadTrace> Tracer::Collect() const {
  std::vector<ThreadTrace> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(rings_.size());
  for (size_t tid = 0; tid < rings_.size(); ++tid) {
    TraceRing::Contents contents = rings_[tid]->Snapshot();
    ThreadTrace trace;
    trace.tid = static_cast<uint32_t>(tid);
    trace.events = std::move(contents.events);
    trace.dropped = contents.dropped;
    out.push_back(std::move(trace));
  }
  return out;
}

std::string Tracer::ToChromeJson() const {
  std::vector<ThreadTrace> threads = Collect();
  std::ostringstream out;
  out << "{\"traceEvents\":[\n";
  bool first = true;
  uint64_t dropped_total = 0;
  for (const ThreadTrace& thread : threads) {
    dropped_total += thread.dropped;
    // Re-balance this thread's window of the event stream. Spans nest
    // strictly per thread (TraceScope is stack-scoped), so an end either
    // matches the innermost open begin or its begin was overwritten before
    // the window — in which case every enclosing begin was too, the stack
    // is empty, and the end is dropped.
    std::vector<size_t> open;
    std::vector<bool> keep(thread.events.size(), true);
    uint64_t last_ts = 0;
    for (size_t i = 0; i < thread.events.size(); ++i) {
      const TraceEvent& event = thread.events[i];
      last_ts = event.ts_ns;
      if (event.phase == TraceEventPhase::kBegin) {
        open.push_back(i);
      } else if (event.phase == TraceEventPhase::kEnd) {
        if (!open.empty() && thread.events[open.back()].name == event.name) {
          open.pop_back();
        } else {
          keep[i] = false;  // Begin fell off the ring.
        }
      }
    }
    for (size_t i = 0; i < thread.events.size(); ++i) {
      if (keep[i]) AppendEvent(&out, thread.tid, thread.events[i], &first);
    }
    // Synthesize ends for spans still open at export (outermost last so
    // the emitted stream stays properly nested).
    for (size_t j = open.size(); j > 0; --j) {
      TraceEvent end;
      end.name = thread.events[open[j - 1]].name;
      end.ts_ns = last_ts;
      end.phase = TraceEventPhase::kEnd;
      AppendEvent(&out, thread.tid, end, &first);
    }
  }
  out << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{"
      << "\"tool\":\"corrmine\",\"dropped_events\":" << dropped_total
      << "}}";
  return out.str();
}

Status Tracer::WriteChromeJson(const std::string& path) const {
  const uint64_t dropped = DroppedEvents();
  if (dropped > 0) {
    std::fprintf(stderr,
                 "[trace] warning: %" PRIu64
                 " events overwritten (ring full); oldest spans are missing "
                 "from %s — re-run with a larger ring if they matter\n",
                 dropped, path.c_str());
  }
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out) {
    return Status::Internal("cannot open trace file for writing: " + path);
  }
  out << ToChromeJson() << "\n";
  out.flush();
  if (!out) return Status::Internal("failed writing trace file: " + path);
  return Status::OK();
}

uint64_t PeakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<uint64_t>(usage.ru_maxrss);  // Already bytes.
#else
  return static_cast<uint64_t>(usage.ru_maxrss) * 1024;  // Kilobytes.
#endif
#else
  return 0;
#endif
}

}  // namespace corrmine
