#include "common/profiler.h"

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <unordered_map>

#if defined(__unix__) || defined(__APPLE__)
#include <signal.h>
#include <sys/time.h>
#define CORRMINE_PROFILER_HAVE_SIGPROF 1
#endif

#if defined(__GLIBC__) || defined(__APPLE__)
#include <cxxabi.h>
#include <dlfcn.h>
#define CORRMINE_PROFILER_HAVE_DLADDR 1
#endif

#include "common/trace.h"

namespace corrmine {

namespace {

#ifdef CORRMINE_PROFILER_HAVE_SIGPROF
struct sigaction g_old_sigprof;
bool g_handler_installed = false;

/// SIGPROF entry point. Everything it reaches must be async-signal-safe:
/// errno save/restore here, atomics and pre-allocated memory inside.
void SigprofHandler(int /*signo*/, siginfo_t* /*info*/, void* /*ctx*/) {
  const int saved_errno = errno;
  Profiler::Global().HandleSampleSignal();
  errno = saved_errno;
}
#endif

/// Maximum plausible distance from the current stack pointer to the stack
/// base; frame pointers outside [sp, sp + kMaxStackBytes) terminate the
/// walk. Matches common 8 MB default stacks.
constexpr uintptr_t kMaxStackBytes = 8u << 20;

void AppendJsonEscaped(std::ostringstream* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      *out << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *out << buf;
    } else {
      *out << c;
    }
  }
}

void AppendRate(std::ostringstream* out, const char* key, uint64_t num,
                uint64_t den) {
  *out << "\"" << key << "\":";
  if (den == 0) {
    *out << "0";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g",
                static_cast<double>(num) / static_cast<double>(den));
  *out << buf;
}

/// Symbolizes one return address for the collapsed-stack export. Spaces
/// and semicolons are structural in the collapsed format, so they are
/// rewritten; unresolvable addresses keep their hex form (still useful
/// with an external symbolizer).
std::string SymbolizePc(uintptr_t pc) {
  std::string name;
#ifdef CORRMINE_PROFILER_HAVE_DLADDR
  Dl_info info;
  // The stored pc is a return address: subtract one byte so calls at the
  // very end of a function do not resolve to the function that follows.
  if (dladdr(reinterpret_cast<void*>(pc - 1), &info) != 0 &&
      info.dli_sname != nullptr) {
    int status = 0;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    if (status == 0 && demangled != nullptr) {
      name = demangled;
    } else {
      name = info.dli_sname;
    }
    std::free(demangled);
  }
#endif
  if (name.empty()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%" PRIxPTR, pc);
    return buf;
  }
  for (char& c : name) {
    if (c == ' ') c = '_';
    if (c == ';') c = ':';
  }
  return name;
}

}  // namespace

Profiler& Profiler::Global() {
  static Profiler* global = new Profiler();
  return *global;
}

void Profiler::Start(const ProfilerOptions& options) {
  if constexpr (!kMetricsEnabled) {
    (void)options;
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    phases_.clear();
    groups_.clear();
    session_.fetch_add(1, std::memory_order_relaxed);
    pmu_requested_ = options.pmu;
    sample_interval_usec_ =
        std::max<uint64_t>(100, options.sample_interval_usec);
    pmu_active_.store(options.pmu && ProbePmu().available,
                      std::memory_order_relaxed);
    // Every session starts with clean sample state, even when sampling is
    // off — stale counts from a prior session must never leak into this
    // one's stats.
    if (sample_storage_ != nullptr) {
      for (SampleSlot& slot : *sample_storage_) {
        slot.seq.store(0, std::memory_order_relaxed);
      }
    }
    sample_cursor_.store(0, std::memory_order_relaxed);
    unresolved_samples_.store(0, std::memory_order_relaxed);
  }
  if (!options.sampling) return;
#ifdef CORRMINE_PROFILER_HAVE_SIGPROF
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (sample_storage_ == nullptr) {
      // Leaked intentionally: a straggler SIGPROF delivered after Stop
      // must never touch freed memory.
      sample_storage_ = new std::vector<SampleSlot>(kSampleRingCapacity);
      sample_slots_ = sample_storage_->data();
      sample_mask_ = kSampleRingCapacity - 1;
    }
  }
  // The handler reaches both singletons through function-local statics;
  // first-call initialization is not async-signal-safe, so force it here,
  // before any signal can fire.
  Tracer::Global();
  Profiler::Global();
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_sigaction = &SigprofHandler;
  action.sa_flags = SA_RESTART | SA_SIGINFO;
  sigemptyset(&action.sa_mask);
  if (sigaction(SIGPROF, &action, &g_old_sigprof) != 0) return;
  g_handler_installed = true;
  sampling_active_.store(true, std::memory_order_release);
  struct itimerval timer;
  timer.it_interval.tv_sec =
      static_cast<time_t>(sample_interval_usec_ / 1000000);
  timer.it_interval.tv_usec =
      static_cast<suseconds_t>(sample_interval_usec_ % 1000000);
  timer.it_value = timer.it_interval;
  setitimer(ITIMER_PROF, &timer, nullptr);
#endif
}

void Profiler::Stop() {
  if constexpr (!kMetricsEnabled) return;
#ifdef CORRMINE_PROFILER_HAVE_SIGPROF
  if (sampling_active_.load(std::memory_order_acquire)) {
    struct itimerval off;
    std::memset(&off, 0, sizeof(off));
    setitimer(ITIMER_PROF, &off, nullptr);
    sampling_active_.store(false, std::memory_order_release);
    if (g_handler_installed) {
      sigaction(SIGPROF, &g_old_sigprof, nullptr);
      g_handler_installed = false;
    }
  }
#endif
  pmu_active_.store(false, std::memory_order_relaxed);
}

void Profiler::RecordPhase(const char* phase, const PmuCounts& delta) {
  if constexpr (!kMetricsEnabled) return;
  std::lock_guard<std::mutex> lock(mu_);
  PhaseProfile& profile = phases_[phase];
  profile.scopes += 1;
  profile.counts += delta;
}

PmuGroup* Profiler::ThreadGroup() {
  if constexpr (!kMetricsEnabled) return nullptr;
  struct Cached {
    PmuGroup* group = nullptr;
    uint64_t session = 0;
  };
  thread_local Cached cached;
  if (!pmu_active_.load(std::memory_order_relaxed)) return nullptr;
  const uint64_t session = session_.load(std::memory_order_relaxed);
  if (cached.group != nullptr && cached.session == session) {
    return cached.group;
  }
  auto group = std::make_unique<PmuGroup>();
  if (!group->valid()) {
    // Opening can fail per-thread (fd limits) even when the probe passed;
    // cache the failure for this session so we do not retry per scope.
    cached.group = nullptr;
    cached.session = session;
    return nullptr;
  }
  std::lock_guard<std::mutex> lock(mu_);
  groups_.push_back(std::move(group));
  cached.group = groups_.back().get();
  cached.session = session;
  return cached.group;
}

void Profiler::HandleSampleSignal() {
  if (!sampling_active_.load(std::memory_order_acquire)) return;
  SampleSlot* slots = sample_slots_;
  if (slots == nullptr) return;

  // Bounds-checked frame-pointer walk. Requires -fno-omit-frame-pointer
  // (set by CMake when CORRMINE_METRICS is ON); with omitted frame
  // pointers the checks fail fast and the sample counts as unresolved.
  uintptr_t pcs[kMaxFrames];
  int depth = 0;
  uintptr_t fp = reinterpret_cast<uintptr_t>(__builtin_frame_address(0));
  const uintptr_t sp = fp;
  while (depth < kMaxFrames) {
    if (fp < sp || fp >= sp + kMaxStackBytes) break;
    if ((fp & (sizeof(uintptr_t) - 1)) != 0) break;
    const uintptr_t* frame = reinterpret_cast<const uintptr_t*>(fp);
    const uintptr_t ret = frame[1];
    const uintptr_t next_fp = frame[0];
    if (ret == 0) break;
    pcs[depth++] = ret;
    if (next_fp <= fp) break;  // Must strictly grow toward the stack base.
    fp = next_fp;
  }

  const uint64_t claim =
      sample_cursor_.fetch_add(1, std::memory_order_relaxed);
  if (claim < kSampleRingCapacity) {
    SampleSlot& slot = slots[claim & sample_mask_];
    slot.depth = depth;
    for (int i = 0; i < depth; ++i) slot.pcs[i] = pcs[i];
    // Publish: exporters only trust slots whose seq matches claim + 1.
    slot.seq.store(claim + 1, std::memory_order_release);
  }
  if (depth == 0) {
    unresolved_samples_.fetch_add(1, std::memory_order_relaxed);
  }

  // Fold the sample into the Chrome trace when this thread already has a
  // ring for the active trace session (read-only thread-local lookup —
  // never registers). TraceRing::Append is owner-thread-only, and SIGPROF
  // interrupts the owner, so this is the owner writing.
  TraceRing* ring = Tracer::Global().ThreadRingIfCached();
  if (ring != nullptr) {
    ring->Append(TraceEvent{"profiler.sample", Tracer::Global().NowNanos(),
                            TraceEventPhase::kInstant, -1, -1,
                            static_cast<int64_t>(depth)});
  }
}

uint64_t Profiler::samples_recorded() const {
  const uint64_t total = sample_cursor_.load(std::memory_order_relaxed);
  return std::min<uint64_t>(total, kSampleRingCapacity);
}

uint64_t Profiler::samples_dropped() const {
  const uint64_t total = sample_cursor_.load(std::memory_order_relaxed);
  return total > kSampleRingCapacity ? total - kSampleRingCapacity : 0;
}

std::map<std::string, PhaseProfile> Profiler::PhaseSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return phases_;
}

std::string Profiler::RenderProfileJson() const {
  std::ostringstream out;
  const PmuProbe& probe = ProbePmu();
  bool pmu_requested = false;
  uint64_t interval = 0;
  std::map<std::string, PhaseProfile> phases;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pmu_requested = pmu_requested_;
    interval = sample_interval_usec_;
    phases = phases_;
  }
  out << "{\"pmu\":{\"available\":" << (probe.available ? "true" : "false")
      << ",\"requested\":" << (pmu_requested ? "true" : "false")
      << ",\"reason\":\"";
  AppendJsonEscaped(&out, probe.reason);
  out << "\"},\"phases\":{";
  bool first = true;
  for (const auto& [name, profile] : phases) {
    if (!first) out << ',';
    first = false;
    const PmuCounts& c = profile.counts;
    out << '"';
    AppendJsonEscaped(&out, name);
    out << "\":{\"scopes\":" << profile.scopes
        << ",\"cycles\":" << c.cycles
        << ",\"instructions\":" << c.instructions << ",";
    AppendRate(&out, "ipc", c.instructions, c.cycles);
    out << ",\"llc_loads\":" << c.llc_loads
        << ",\"llc_misses\":" << c.llc_misses << ",";
    AppendRate(&out, "llc_miss_rate", c.llc_misses, c.llc_loads);
    out << ",\"branch_misses\":" << c.branch_misses << ",";
    AppendRate(&out, "branch_miss_rate", c.branch_misses, c.instructions);
    out << ",\"task_clock_ns\":" << c.task_clock_ns << '}';
  }
  const bool sampling = sampling_active_.load(std::memory_order_acquire);
  out << "},\"sampling\":{\"enabled\":" << (sampling ? "true" : "false")
      << ",\"samples\":" << samples_recorded()
      << ",\"dropped\":" << samples_dropped()
      << ",\"unresolved\":"
      << unresolved_samples_.load(std::memory_order_relaxed)
      << ",\"interval_usec\":" << interval << "}}";
  return out.str();
}

std::string Profiler::RenderCollapsedStacks() const {
  if (sample_slots_ == nullptr) return std::string();
  const uint64_t total = sample_cursor_.load(std::memory_order_acquire);
  const uint64_t end = std::min<uint64_t>(total, kSampleRingCapacity);
  std::unordered_map<uintptr_t, std::string> symbol_cache;
  std::map<std::string, uint64_t> folded;
  for (uint64_t i = 0; i < end; ++i) {
    const SampleSlot& slot = sample_slots_[i & sample_mask_];
    // Only slots whose publish sequence matches the claim survived intact;
    // a torn slot (signal landed mid-write at Stop) is skipped.
    if (slot.seq.load(std::memory_order_acquire) != i + 1) continue;
    std::string line;
    if (slot.depth == 0) {
      line = "[unresolved]";
    } else {
      // Walk order is leaf-first; collapsed format is root-first.
      for (int f = slot.depth - 1; f >= 0; --f) {
        const uintptr_t pc = slot.pcs[f];
        auto it = symbol_cache.find(pc);
        if (it == symbol_cache.end()) {
          it = symbol_cache.emplace(pc, SymbolizePc(pc)).first;
        }
        if (!line.empty()) line += ';';
        line += it->second;
      }
    }
    folded[line] += 1;
  }
  std::ostringstream out;
  for (const auto& [stack, count] : folded) {
    out << stack << ' ' << count << '\n';
  }
  return out.str();
}

Status Profiler::WriteCollapsedStacks(const std::string& path) const {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out) {
    return Status::Internal("cannot open profile file for writing: " + path);
  }
  out << RenderCollapsedStacks();
  out.flush();
  if (!out) return Status::Internal("failed writing profile file: " + path);
  return Status::OK();
}

}  // namespace corrmine
