#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace corrmine {

std::vector<std::string_view> SplitString(std::string_view input,
                                          std::string_view delims) {
  std::vector<std::string_view> pieces;
  size_t start = 0;
  while (start < input.size()) {
    size_t end = input.find_first_of(delims, start);
    if (end == std::string_view::npos) end = input.size();
    if (end > start) pieces.push_back(input.substr(start, end - start));
    start = end + 1;
  }
  return pieces;
}

std::string_view TrimString(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

StatusOr<uint64_t> ParseUint64(std::string_view token) {
  if (token.empty()) return Status::InvalidArgument("empty integer token");
  uint64_t value = 0;
  for (char c : token) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("invalid integer token: " +
                                     std::string(token));
    }
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      return Status::OutOfRange("integer overflow: " + std::string(token));
    }
    value = value * 10 + digit;
  }
  return value;
}

StatusOr<double> ParseDouble(std::string_view token) {
  if (token.empty()) return Status::InvalidArgument("empty double token");
  std::string buf(token);
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("invalid double token: " + buf);
  }
  if (errno == ERANGE) {
    return Status::OutOfRange("double out of range: " + buf);
  }
  return value;
}

std::string ToLowerAscii(std::string_view input) {
  std::string out(input);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

}  // namespace corrmine
