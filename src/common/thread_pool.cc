#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <memory>
#include <string>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace corrmine {

ThreadPool::ThreadPool(int num_threads)
    : tasks_submitted_(
          MetricsRegistry::Global().GetCounter("pool.tasks_submitted")),
      tasks_executed_(
          MetricsRegistry::Global().GetCounter("pool.tasks_executed")),
      idle_ns_(MetricsRegistry::Global().GetCounter("pool.idle_ns")),
      wait_ns_(MetricsRegistry::Global().GetHistogram("pool.wait_ns")),
      queue_depth_(MetricsRegistry::Global().GetGauge("pool.queue_depth")) {
  CORRMINE_CHECK(num_threads >= 1) << "thread pool needs at least one worker";
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  tasks_submitted_->Add();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    queue_depth_->Set(static_cast<int64_t>(queue_.size()));
  }
  work_available_.notify_one();
}

int ThreadPool::ResolveThreadCount(int requested) {
  if (requested > 0) return requested;
  if (requested < 0) return 1;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if constexpr (kMetricsEnabled) {
        if (!shutting_down_ && queue_.empty()) {
          // Only a blocking wait pays for the clock reads; the fast path
          // (work already queued) stays clock-free.
          auto idle_start = std::chrono::steady_clock::now();
          work_available_.wait(
              lock, [this] { return shutting_down_ || !queue_.empty(); });
          const uint64_t waited = static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - idle_start)
                  .count());
          idle_ns_->Add(waited);
          wait_ns_->Observe(waited);
          TraceInstant("pool.wait", -1, -1,
                       static_cast<int64_t>(waited));
        }
      } else {
        work_available_.wait(
            lock, [this] { return shutting_down_ || !queue_.empty(); });
      }
      if (queue_.empty()) return;  // Shutting down and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_->Set(static_cast<int64_t>(queue_.size()));
    }
    {
      TraceScope task_span("pool.task");
      task();
    }
    tasks_executed_->Add();
  }
}

namespace {

/// Shared coordination for one ParallelFor region: a work-stealing chunk
/// cursor plus first-failure bookkeeping. Failures are recorded with the
/// chunk's starting index so the *earliest* error wins regardless of which
/// worker hit it first — the sequential loop's error, reproduced.
struct ParallelForState {
  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex error_mu;
  size_t first_error_index = 0;
  bool has_error = false;
  Status first_error;

  // Completion latch. Lives here (not on the caller's stack) because the
  // last helper touches it after the waiter may already have woken.
  std::atomic<size_t> outstanding{0};
  std::mutex done_mu;
  std::condition_variable done_cv;
};

void RecordFailure(ParallelForState* state, size_t chunk_begin,
                   Status status) {
  std::lock_guard<std::mutex> lock(state->error_mu);
  if (!state->has_error || chunk_begin < state->first_error_index) {
    state->has_error = true;
    state->first_error_index = chunk_begin;
    state->first_error = std::move(status);
  }
  state->failed.store(true, std::memory_order_release);
}

void RunChunks(ParallelForState* state, size_t n, size_t grain,
               const std::function<Status(size_t, size_t)>& body) {
  for (;;) {
    if (state->failed.load(std::memory_order_acquire)) return;
    size_t begin = state->next.fetch_add(grain, std::memory_order_relaxed);
    if (begin >= n) return;
    size_t end = std::min(begin + grain, n);
    Status status;
    try {
      status = body(begin, end);
    } catch (const std::exception& e) {
      status = Status::Internal(std::string("uncaught exception in parallel "
                                            "region: ") +
                                e.what());
    } catch (...) {
      status = Status::Internal("uncaught non-std exception in parallel region");
    }
    if (!status.ok()) {
      RecordFailure(state, begin, std::move(status));
      return;
    }
  }
}

}  // namespace

Status ParallelFor(ThreadPool* pool, size_t n, size_t grain,
                   const std::function<Status(size_t begin, size_t end)>& body) {
  if (n == 0) return Status::OK();
  CORRMINE_CHECK(grain > 0) << "ParallelFor grain must be positive";
  if (pool == nullptr || pool->num_threads() == 0 || n <= grain) {
    // Inline fallback: run sequentially in chunk order so error semantics
    // match the parallel path exactly.
    for (size_t begin = 0; begin < n; begin += grain) {
      Status status;
      try {
        status = body(begin, std::min(begin + grain, n));
      } catch (const std::exception& e) {
        status = Status::Internal(
            std::string("uncaught exception in parallel region: ") + e.what());
      } catch (...) {
        status =
            Status::Internal("uncaught non-std exception in parallel region");
      }
      CORRMINE_RETURN_NOT_OK(status);
    }
    return Status::OK();
  }

  auto state = std::make_shared<ParallelForState>();
  // Helpers beyond what the chunk count can occupy just wake up and exit.
  size_t num_chunks = (n + grain - 1) / grain;
  size_t helpers = std::min(static_cast<size_t>(pool->num_threads()),
                            num_chunks > 0 ? num_chunks - 1 : 0);
  state->outstanding.store(helpers, std::memory_order_relaxed);

  // `body` is only touched inside RunChunks, which every helper finishes
  // before decrementing the latch — so capturing it by reference is safe:
  // the caller cannot return (and invalidate it) while any helper still
  // counts as outstanding.
  for (size_t h = 0; h < helpers; ++h) {
    pool->Submit([state, n, grain, &body] {
      RunChunks(state.get(), n, grain, body);
      if (state->outstanding.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(state->done_mu);
        state->done_cv.notify_one();
      }
    });
  }

  // The caller participates too: with a busy or small pool the loop still
  // makes progress on this thread.
  RunChunks(state.get(), n, grain, body);

  {
    std::unique_lock<std::mutex> lock(state->done_mu);
    state->done_cv.wait(lock, [&state] {
      return state->outstanding.load(std::memory_order_acquire) == 0;
    });
  }

  std::lock_guard<std::mutex> lock(state->error_mu);
  if (state->has_error) return state->first_error;
  return Status::OK();
}

}  // namespace corrmine
