#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <memory>
#include <string>

#if defined(__linux__)
#include <sched.h>
#endif

#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace corrmine {

namespace {

// Identity of the current thread within some pool. A plain thread_local
// (not per-pool) so CurrentWorkerIndex stays a two-load check; the pool
// pointer disambiguates when several pools coexist.
struct WorkerIdentity {
  const ThreadPool* pool = nullptr;
  int index = -1;
};
thread_local WorkerIdentity tls_worker;

#if defined(__linux__)
// Reads a small proc/sys file into `buf`. Returns false when unreadable.
bool ReadSmallFile(const char* path, char* buf, size_t cap) {
  std::FILE* f = std::fopen(path, "re");
  if (f == nullptr) return false;
  size_t n = std::fread(buf, 1, cap - 1, f);
  std::fclose(f);
  if (n == 0) return false;
  buf[n] = '\0';
  return true;
}

// CPU quota in whole CPUs from cgroup v2 (`cpu.max`: "<quota> <period>" or
// "max <period>") or cgroup v1 (cfs_quota_us / cfs_period_us). Returns 0
// when no quota applies.
int CgroupCpuQuota() {
  char buf[64];
  if (ReadSmallFile("/sys/fs/cgroup/cpu.max", buf, sizeof(buf))) {
    long long quota = 0, period = 0;
    if (std::sscanf(buf, "%lld %lld", &quota, &period) == 2 && quota > 0 &&
        period > 0) {
      return static_cast<int>((quota + period - 1) / period);
    }
    return 0;  // "max <period>" or unlimited.
  }
  const char* quota_paths[] = {"/sys/fs/cgroup/cpu/cpu.cfs_quota_us",
                               "/sys/fs/cgroup/cpu,cpuacct/cpu.cfs_quota_us"};
  const char* period_paths[] = {"/sys/fs/cgroup/cpu/cpu.cfs_period_us",
                                "/sys/fs/cgroup/cpu,cpuacct/cpu.cfs_period_us"};
  for (int i = 0; i < 2; ++i) {
    char qbuf[64], pbuf[64];
    if (!ReadSmallFile(quota_paths[i], qbuf, sizeof(qbuf))) continue;
    long long quota = std::atoll(qbuf);
    if (quota <= 0) return 0;  // -1 = unlimited.
    long long period = 100000;
    if (ReadSmallFile(period_paths[i], pbuf, sizeof(pbuf))) {
      long long p = std::atoll(pbuf);
      if (p > 0) period = p;
    }
    return static_cast<int>((quota + period - 1) / period);
  }
  return 0;
}
#endif  // __linux__

}  // namespace

int ThreadPool::UsableHardwareConcurrency() {
  unsigned hw = std::thread::hardware_concurrency();
  int usable = hw == 0 ? 1 : static_cast<int>(hw);
#if defined(__linux__)
  cpu_set_t mask;
  CPU_ZERO(&mask);
  if (sched_getaffinity(0, sizeof(mask), &mask) == 0) {
    int affinity = CPU_COUNT(&mask);
    if (affinity > 0) usable = std::min(usable, affinity);
  }
  int quota = CgroupCpuQuota();
  if (quota > 0) usable = std::min(usable, quota);
#endif
  return std::max(1, usable);
}

int ThreadPool::ResolveThreadCount(int requested) {
  if (requested > 0) return requested;
  if (requested < 0) return 1;
  return UsableHardwareConcurrency();
}

ThreadPool::ThreadPool(int num_threads)
    : tasks_submitted_(
          MetricsRegistry::Global().GetCounter("pool.tasks_submitted")),
      tasks_executed_(
          MetricsRegistry::Global().GetCounter("pool.tasks_executed")),
      steal_count_(MetricsRegistry::Global().GetCounter("pool.steal_count")),
      steal_tasks_(MetricsRegistry::Global().GetCounter("pool.steal_tasks")),
      idle_ns_(MetricsRegistry::Global().GetCounter("pool.idle_ns")),
      wait_ns_(MetricsRegistry::Global().GetHistogram("pool.wait_ns")),
      morsel_ns_(MetricsRegistry::Global().GetHistogram("pool.morsel_ns")),
      queue_depth_(MetricsRegistry::Global().GetGauge("pool.queue_depth")) {
  CORRMINE_CHECK(num_threads >= 1) << "thread pool needs at least one worker";
  deques_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    deques_.push_back(std::make_unique<TaskDeque>());
  }
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
    shutting_down_ = true;
    ++work_epoch_;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

int ThreadPool::CurrentWorkerIndex() const {
  return tls_worker.pool == this ? tls_worker.index : -1;
}

void ThreadPool::NotifyWorkArrived() {
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
    ++work_epoch_;
  }
  work_available_.notify_one();
}

void ThreadPool::Submit(std::function<void()> task) {
  tasks_submitted_->Add();
  int self = CurrentWorkerIndex();
  TaskDeque* q = self >= 0 ? deques_[static_cast<size_t>(self)].get()
                           : &injector_;
  {
    std::lock_guard<std::mutex> lock(q->mu);
    q->tasks.push_back(std::move(task));
  }
  queue_depth_->Set(pending_.fetch_add(1, std::memory_order_relaxed) + 1);
  NotifyWorkArrived();
}

bool ThreadPool::ClaimTask(std::function<void()>* task) {
  const int self = CurrentWorkerIndex();
  const size_t n = deques_.size();
  // 1. Own deque, newest first: the task most likely to have warm state.
  if (self >= 0) {
    TaskDeque& own = *deques_[static_cast<size_t>(self)];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      *task = std::move(own.tasks.back());
      own.tasks.pop_back();
      return true;
    }
  }
  // 2. Injector, oldest first.
  {
    std::lock_guard<std::mutex> lock(injector_.mu);
    if (!injector_.tasks.empty()) {
      *task = std::move(injector_.tasks.front());
      injector_.tasks.pop_front();
      return true;
    }
  }
  // 3. Steal. Workers take half of the victim's deque (front = oldest) and
  // keep the surplus on their own deque; external helpers take one task.
  // The scan starts after the caller's own slot so victims rotate.
  const size_t start = self >= 0 ? static_cast<size_t>(self) + 1 : 0;
  for (size_t off = 0; off < n; ++off) {
    const size_t victim = (start + off) % n;
    if (self >= 0 && victim == static_cast<size_t>(self)) continue;
    std::deque<std::function<void()>> loot;
    {
      TaskDeque& v = *deques_[victim];
      std::lock_guard<std::mutex> lock(v.mu);
      if (v.tasks.empty()) continue;
      size_t take = self >= 0 ? (v.tasks.size() + 1) / 2 : 1;
      for (size_t i = 0; i < take; ++i) {
        loot.push_back(std::move(v.tasks.front()));
        v.tasks.pop_front();
      }
    }
    steal_count_->Add();
    steal_tasks_->Add(loot.size());
    *task = std::move(loot.front());
    loot.pop_front();
    if (!loot.empty()) {
      // Surplus goes to our own deque; other thieves can re-steal it.
      TaskDeque& own = *deques_[static_cast<size_t>(self)];
      {
        std::lock_guard<std::mutex> lock(own.mu);
        for (auto& t : loot) own.tasks.push_back(std::move(t));
      }
      NotifyWorkArrived();
    }
    return true;
  }
  return false;
}

void ThreadPool::RunTask(std::function<void()> task) {
  queue_depth_->Set(pending_.fetch_sub(1, std::memory_order_relaxed) - 1);
  {
    TraceScope task_span("pool.task");
    if constexpr (kMetricsEnabled) {
      auto start = std::chrono::steady_clock::now();
      task();
      morsel_ns_->Observe(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start)
              .count()));
    } else {
      task();
    }
  }
  tasks_executed_->Add();
}

bool ThreadPool::RunOneTask() {
  std::function<void()> task;
  if (!ClaimTask(&task)) return false;
  RunTask(std::move(task));
  return true;
}

void ThreadPool::HelpUntil(std::mutex& mu, std::condition_variable& cv,
                           const std::function<bool()>& done) {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (done()) return;
    }
    if (RunOneTask()) continue;
    // Nothing claimable: park on the region's condition variable. The short
    // timeout re-runs the claim scan, so work submitted between our scan
    // and the wait (whose notify we may have missed) cannot strand us.
    std::unique_lock<std::mutex> lock(mu);
    if constexpr (kMetricsEnabled) {
      auto idle_start = std::chrono::steady_clock::now();
      cv.wait_for(lock, std::chrono::milliseconds(1), done);
      const uint64_t waited = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - idle_start)
              .count());
      idle_ns_->Add(waited);
      wait_ns_->Observe(waited);
    } else {
      cv.wait_for(lock, std::chrono::milliseconds(1), done);
    }
    if (done()) return;
  }
}

void ThreadPool::WorkerLoop(int index) {
  tls_worker.pool = this;
  tls_worker.index = index;
  for (;;) {
    if (RunOneTask()) continue;
    uint64_t epoch;
    {
      std::lock_guard<std::mutex> lock(sleep_mu_);
      if (shutting_down_) break;
      epoch = work_epoch_;
    }
    // A task submitted after the epoch read bumps the epoch, so the wait
    // below can't sleep through it; a task submitted before is caught by
    // this rescan.
    if (RunOneTask()) continue;
    std::unique_lock<std::mutex> lock(sleep_mu_);
    if (shutting_down_) break;
    if (work_epoch_ != epoch) continue;
    if constexpr (kMetricsEnabled) {
      auto idle_start = std::chrono::steady_clock::now();
      work_available_.wait(lock, [this, epoch] {
        return shutting_down_ || work_epoch_ != epoch;
      });
      const uint64_t waited = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - idle_start)
              .count());
      idle_ns_->Add(waited);
      wait_ns_->Observe(waited);
      TraceInstant("pool.wait", -1, -1, static_cast<int64_t>(waited));
    } else {
      work_available_.wait(lock, [this, epoch] {
        return shutting_down_ || work_epoch_ != epoch;
      });
    }
  }
  // Shutdown drain: anything claimable still runs. A failed scan here
  // happens after shutting_down_ was published, so every pre-shutdown
  // Submit is visible to it; tasks submitted by still-running tasks are
  // drained by whichever worker runs them.
  while (RunOneTask()) {
  }
  tls_worker.pool = nullptr;
  tls_worker.index = -1;
}

namespace {

/// Region-scoped free list of scratch-slot indices. Participants take a
/// slot for their whole run of chunks; capacity equals the number of
/// helper tasks + 1 (the caller), so Acquire can never fail.
class SlotPool {
 public:
  explicit SlotPool(size_t capacity) {
    free_.reserve(capacity);
    for (size_t i = capacity; i > 0; --i) free_.push_back(i - 1);
  }
  size_t Acquire() {
    std::lock_guard<std::mutex> lock(mu_);
    CORRMINE_CHECK(!free_.empty()) << "slot pool exhausted";
    size_t s = free_.back();
    free_.pop_back();
    return s;
  }
  void Release(size_t slot) {
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(slot);
  }

 private:
  std::mutex mu_;
  std::vector<size_t> free_;
};

Status InvokeGuarded(const std::function<Status(size_t, size_t, size_t)>& body,
                     size_t slot, size_t begin, size_t end) {
  try {
    return body(slot, begin, end);
  } catch (const std::exception& e) {
    return Status::Internal(
        std::string("uncaught exception in parallel region: ") + e.what());
  } catch (...) {
    return Status::Internal("uncaught non-std exception in parallel region");
  }
}

/// Shared coordination for one ParallelFor region: a work-stealing chunk
/// cursor plus first-failure bookkeeping. Failures are recorded with the
/// chunk's starting index so the *earliest* error wins regardless of which
/// worker hit it first — the sequential loop's error, reproduced.
struct ParallelForState {
  explicit ParallelForState(size_t slot_capacity) : slots(slot_capacity) {}

  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex error_mu;
  size_t first_error_index = 0;
  bool has_error = false;
  Status first_error;
  SlotPool slots;

  // Completion latch. Lives here (not on the caller's stack) because the
  // last helper touches it after the waiter may already have woken.
  std::atomic<size_t> outstanding{0};
  std::mutex done_mu;
  std::condition_variable done_cv;
};

void RecordFailure(ParallelForState* state, size_t chunk_begin,
                   Status status) {
  std::lock_guard<std::mutex> lock(state->error_mu);
  if (!state->has_error || chunk_begin < state->first_error_index) {
    state->has_error = true;
    state->first_error_index = chunk_begin;
    state->first_error = std::move(status);
  }
  state->failed.store(true, std::memory_order_release);
}

void RunChunks(ParallelForState* state, size_t n, size_t grain,
               const std::function<Status(size_t, size_t, size_t)>& body) {
  // Claim the scratch slot lazily: helpers woken after the region drained
  // shouldn't churn the free list.
  if (state->failed.load(std::memory_order_acquire)) return;
  if (state->next.load(std::memory_order_relaxed) >= n) return;
  const size_t slot = state->slots.Acquire();
  for (;;) {
    if (state->failed.load(std::memory_order_acquire)) break;
    size_t begin = state->next.fetch_add(grain, std::memory_order_relaxed);
    if (begin >= n) break;
    size_t end = std::min(begin + grain, n);
    Status status = InvokeGuarded(body, slot, begin, end);
    if (!status.ok()) {
      RecordFailure(state, begin, std::move(status));
      break;
    }
  }
  state->slots.Release(slot);
}

Status ParallelForSlotsImpl(
    ThreadPool* pool, size_t n, size_t grain,
    const std::function<Status(size_t slot, size_t begin, size_t end)>& body) {
  if (n == 0) return Status::OK();
  CORRMINE_CHECK(grain > 0) << "ParallelFor grain must be positive";
  if (pool == nullptr || pool->num_threads() == 0 || n <= grain) {
    // Inline fallback: run sequentially in chunk order so error semantics
    // match the parallel path exactly. Slot 0 is the only slot.
    for (size_t begin = 0; begin < n; begin += grain) {
      CORRMINE_RETURN_NOT_OK(
          InvokeGuarded(body, 0, begin, std::min(begin + grain, n)));
    }
    return Status::OK();
  }

  // Helpers beyond what the chunk count can occupy just wake up and exit.
  size_t num_chunks = (n + grain - 1) / grain;
  size_t helpers = std::min(static_cast<size_t>(pool->num_threads()),
                            num_chunks > 0 ? num_chunks - 1 : 0);
  auto state = std::make_shared<ParallelForState>(helpers + 1);
  state->outstanding.store(helpers, std::memory_order_relaxed);

  // `body` is only touched inside RunChunks, which every helper finishes
  // before decrementing the latch — so capturing it by reference is safe:
  // the caller cannot return (and invalidate it) while any helper still
  // counts as outstanding.
  for (size_t h = 0; h < helpers; ++h) {
    pool->Submit([state, n, grain, &body] {
      RunChunks(state.get(), n, grain, body);
      if (state->outstanding.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(state->done_mu);
        state->done_cv.notify_all();
      }
    });
  }

  // The caller participates too: with a busy or small pool the loop still
  // makes progress on this thread.
  RunChunks(state.get(), n, grain, body);

  // Help-first join: run other queued tasks (including this region's own
  // helpers if they were stolen or never started) instead of blocking —
  // this is what makes nested ParallelFor calls from worker threads safe.
  pool->HelpUntil(state->done_mu, state->done_cv, [&state] {
    return state->outstanding.load(std::memory_order_acquire) == 0;
  });

  std::lock_guard<std::mutex> lock(state->error_mu);
  if (state->has_error) return state->first_error;
  return Status::OK();
}

}  // namespace

size_t ParallelForSlotBound(ThreadPool* pool, size_t n, size_t grain) {
  if (n == 0) return 1;
  CORRMINE_CHECK(grain > 0) << "ParallelFor grain must be positive";
  if (pool == nullptr || pool->num_threads() == 0 || n <= grain) return 1;
  size_t num_chunks = (n + grain - 1) / grain;
  size_t helpers = std::min(static_cast<size_t>(pool->num_threads()),
                            num_chunks > 0 ? num_chunks - 1 : 0);
  return helpers + 1;
}

Status ParallelFor(ThreadPool* pool, size_t n, size_t grain,
                   const std::function<Status(size_t begin, size_t end)>& body) {
  return ParallelForSlotsImpl(
      pool, n, grain,
      [&body](size_t, size_t begin, size_t end) { return body(begin, end); });
}

Status ParallelForSlots(
    ThreadPool* pool, size_t n, size_t grain,
    const std::function<Status(size_t slot, size_t begin, size_t end)>& body) {
  return ParallelForSlotsImpl(pool, n, grain, body);
}

namespace {

/// Shared coordination for one OrderedPipeline region. Stage completion is
/// tracked per chunk (`done[c]`); the consumer waits on exactly the chunk
/// it needs next. Errors carry their *sequence position* — stage(c) is
/// position 2c, consume(c) is 2c+1 — so the reported error is the one the
/// inline loop would have hit first.
struct PipelineState {
  PipelineState(size_t chunks, size_t slot_capacity)
      : done(std::make_unique<std::atomic<uint8_t>[]>(chunks)),
        slots(slot_capacity) {
    for (size_t i = 0; i < chunks; ++i) {
      done[i].store(0, std::memory_order_relaxed);
    }
  }

  std::atomic<size_t> next{0};
  std::unique_ptr<std::atomic<uint8_t>[]> done;
  std::atomic<bool> failed{false};
  SlotPool slots;

  std::mutex error_mu;
  bool has_error = false;
  size_t first_error_pos = 0;
  Status first_error;

  std::atomic<size_t> outstanding{0};
  std::mutex mu;  // guards cv waits (chunk-done and final join)
  std::condition_variable cv;
};

void RecordPipelineFailure(PipelineState* state, size_t pos, Status status) {
  std::lock_guard<std::mutex> lock(state->error_mu);
  if (!state->has_error || pos < state->first_error_pos) {
    state->has_error = true;
    state->first_error_pos = pos;
    state->first_error = std::move(status);
  }
  state->failed.store(true, std::memory_order_release);
}

/// Claims and runs one stage chunk; returns false when the cursor is
/// drained. After a failure, remaining chunks are still claimed and marked
/// done (without running) so the ordered consumer can never wait forever
/// on a chunk that nobody will execute.
bool RunOneStageChunk(PipelineState* state, size_t n, size_t grain,
                      size_t num_chunks, size_t slot,
                      const std::function<Status(size_t, size_t, size_t)>& stage) {
  size_t begin = state->next.fetch_add(grain, std::memory_order_relaxed);
  if (begin >= n) return false;
  const size_t chunk = begin / grain;
  (void)num_chunks;
  if (!state->failed.load(std::memory_order_acquire)) {
    Status status = InvokeGuarded(stage, slot, begin, std::min(begin + grain, n));
    if (!status.ok()) {
      RecordPipelineFailure(state, 2 * chunk, std::move(status));
    }
  }
  state->done[chunk].store(1, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(state->mu);
  }
  state->cv.notify_all();
  return true;
}

void RunStageChunks(PipelineState* state, size_t n, size_t grain,
                    size_t num_chunks,
                    const std::function<Status(size_t, size_t, size_t)>& stage) {
  if (state->next.load(std::memory_order_relaxed) >= n) return;
  const size_t slot = state->slots.Acquire();
  while (RunOneStageChunk(state, n, grain, num_chunks, slot, stage)) {
  }
  state->slots.Release(slot);
}

}  // namespace

size_t OrderedPipelineSlotBound(ThreadPool* pool, size_t n, size_t grain) {
  if (n == 0) return 1;
  CORRMINE_CHECK(grain > 0) << "OrderedPipeline grain must be positive";
  const size_t num_chunks = (n + grain - 1) / grain;
  if (pool == nullptr || pool->num_threads() == 0 || num_chunks == 1) return 1;
  return std::min(static_cast<size_t>(pool->num_threads()), num_chunks) + 1;
}

Status OrderedPipeline(
    ThreadPool* pool, size_t n, size_t grain,
    const std::function<Status(size_t slot, size_t begin, size_t end)>& stage,
    const std::function<Status(size_t begin, size_t end)>& consume) {
  if (n == 0) return Status::OK();
  CORRMINE_CHECK(grain > 0) << "OrderedPipeline grain must be positive";
  const size_t num_chunks = (n + grain - 1) / grain;
  if (pool == nullptr || pool->num_threads() == 0 || num_chunks == 1) {
    for (size_t begin = 0; begin < n; begin += grain) {
      size_t end = std::min(begin + grain, n);
      CORRMINE_RETURN_NOT_OK(InvokeGuarded(stage, 0, begin, end));
      Status status;
      try {
        status = consume(begin, end);
      } catch (const std::exception& e) {
        status = Status::Internal(
            std::string("uncaught exception in parallel region: ") + e.what());
      } catch (...) {
        status =
            Status::Internal("uncaught non-std exception in parallel region");
      }
      CORRMINE_RETURN_NOT_OK(status);
    }
    return Status::OK();
  }

  // Unlike ParallelFor, helpers may take every chunk: the caller's job is
  // consuming, and it only runs stage chunks when it would otherwise wait.
  const size_t helpers =
      std::min(static_cast<size_t>(pool->num_threads()), num_chunks);
  auto state = std::make_shared<PipelineState>(num_chunks, helpers + 1);
  state->outstanding.store(helpers, std::memory_order_relaxed);

  for (size_t h = 0; h < helpers; ++h) {
    pool->Submit([state, n, grain, num_chunks, &stage] {
      RunStageChunks(state.get(), n, grain, num_chunks, stage);
      if (state->outstanding.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(state->mu);
        state->cv.notify_all();
      }
    });
  }

  // Ordered consumption, overlapped with the stage. The caller claims a
  // stage chunk itself whenever the chunk it needs next isn't done and the
  // cursor still has work — so a busy pool never stalls the pipeline.
  size_t consumer_slot = static_cast<size_t>(-1);
  for (size_t c = 0; c < num_chunks; ++c) {
    while (state->done[c].load(std::memory_order_acquire) == 0) {
      bool claimed;
      {
        if (consumer_slot == static_cast<size_t>(-1)) {
          consumer_slot = state->slots.Acquire();
        }
        claimed = RunOneStageChunk(state.get(), n, grain, num_chunks,
                                   consumer_slot, stage);
      }
      if (!claimed) {
        pool->HelpUntil(state->mu, state->cv, [&state, c] {
          return state->done[c].load(std::memory_order_acquire) != 0;
        });
      }
    }
    // Stage errors at chunks <= c are recorded before done[c] is set, so
    // this read is complete for everything the inline loop would have hit
    // by now. Stop at the first failure, in order.
    {
      std::lock_guard<std::mutex> lock(state->error_mu);
      if (state->has_error && state->first_error_pos <= 2 * c) break;
    }
    const size_t begin = c * grain;
    const size_t end = std::min(begin + grain, n);
    Status status;
    try {
      status = consume(begin, end);
    } catch (const std::exception& e) {
      status = Status::Internal(
          std::string("uncaught exception in parallel region: ") + e.what());
    } catch (...) {
      status =
          Status::Internal("uncaught non-std exception in parallel region");
    }
    if (!status.ok()) {
      RecordPipelineFailure(state.get(), 2 * c + 1, std::move(status));
      break;
    }
  }
  if (consumer_slot != static_cast<size_t>(-1)) {
    state->slots.Release(consumer_slot);
  }

  pool->HelpUntil(state->mu, state->cv, [&state] {
    return state->outstanding.load(std::memory_order_acquire) == 0;
  });

  std::lock_guard<std::mutex> lock(state->error_mu);
  if (state->has_error) return state->first_error;
  return Status::OK();
}

}  // namespace corrmine
