#include "common/pmu.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#ifdef __linux__
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace corrmine {

namespace {

uint64_t SaturatingSub(uint64_t a, uint64_t b) { return a > b ? a - b : 0; }

}  // namespace

PmuCounts PmuCounts::operator-(const PmuCounts& other) const {
  PmuCounts d;
  d.cycles = SaturatingSub(cycles, other.cycles);
  d.instructions = SaturatingSub(instructions, other.instructions);
  d.llc_loads = SaturatingSub(llc_loads, other.llc_loads);
  d.llc_misses = SaturatingSub(llc_misses, other.llc_misses);
  d.branch_misses = SaturatingSub(branch_misses, other.branch_misses);
  d.task_clock_ns = SaturatingSub(task_clock_ns, other.task_clock_ns);
  d.valid = valid && other.valid;
  return d;
}

PmuCounts& PmuCounts::operator+=(const PmuCounts& other) {
  cycles += other.cycles;
  instructions += other.instructions;
  llc_loads += other.llc_loads;
  llc_misses += other.llc_misses;
  branch_misses += other.branch_misses;
  task_clock_ns += other.task_clock_ns;
  valid = valid || other.valid;
  return *this;
}

#if defined(CORRMINE_METRICS_DISABLED)

const PmuProbe& ProbePmu() {
  static const PmuProbe probe{false,
                              "metrics compiled out (CORRMINE_METRICS=OFF)"};
  return probe;
}

#elif !defined(__linux__)

const PmuProbe& ProbePmu() {
  static const PmuProbe probe{false, "perf_event_open requires Linux"};
  return probe;
}

#else  // Linux, metrics on

namespace {

// Event slots, leader first. Order is load-bearing: PmuGroup::Read maps
// PERF_FORMAT_ID values back to these indices, and multiplex scaling skips
// the software task-clock slot.
enum EventSlot {
  kCycles = 0,
  kInstructions = 1,
  kLlcLoads = 2,
  kLlcMisses = 3,
  kBranchMisses = 4,
  kTaskClock = 5,
};

void FillAttr(perf_event_attr* attr, uint32_t type, uint64_t config) {
  std::memset(attr, 0, sizeof(*attr));
  attr->size = sizeof(*attr);
  attr->type = type;
  attr->config = config;
  attr->disabled = 0;
  // Counting user-space only keeps the group usable at
  // perf_event_paranoid=2, the default on most distributions.
  attr->exclude_kernel = 1;
  attr->exclude_hv = 1;
  attr->read_format = PERF_FORMAT_GROUP | PERF_FORMAT_ID |
                      PERF_FORMAT_TOTAL_TIME_ENABLED |
                      PERF_FORMAT_TOTAL_TIME_RUNNING;
}

int OpenEvent(uint32_t type, uint64_t config, int group_fd) {
  perf_event_attr attr;
  FillAttr(&attr, type, config);
  return static_cast<int>(syscall(SYS_perf_event_open, &attr, /*pid=*/0,
                                  /*cpu=*/-1, group_fd, /*flags=*/0UL));
}

int ReadParanoidLevel() {
  FILE* f = std::fopen("/proc/sys/kernel/perf_event_paranoid", "r");
  if (f == nullptr) return -100;
  int level = -100;
  if (std::fscanf(f, "%d", &level) != 1) level = -100;
  std::fclose(f);
  return level;
}

PmuProbe RunProbe() {
  PmuProbe probe;
  const int fd = OpenEvent(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, -1);
  if (fd >= 0) {
    close(fd);
    probe.available = true;
    return probe;
  }
  const int err = errno;
  std::string reason = "perf_event_open(cycles) failed: ";
  reason += std::strerror(err);
  if (err == EACCES || err == EPERM) {
    const int paranoid = ReadParanoidLevel();
    if (paranoid > -100) {
      reason += " (perf_event_paranoid=";
      reason += std::to_string(paranoid);
      reason += "; likely denied by sysctl or seccomp)";
    } else {
      reason += " (likely denied by seccomp)";
    }
  } else if (err == ENOSYS) {
    reason += " (syscall blocked, likely seccomp)";
  } else if (err == ENOENT) {
    reason += " (hardware cycle counter unavailable, likely a VM)";
  }
  probe.reason = std::move(reason);
  return probe;
}

const uint64_t kHwCacheLlRead = PERF_COUNT_HW_CACHE_LL |
                                (PERF_COUNT_HW_CACHE_OP_READ << 8);

}  // namespace

const PmuProbe& ProbePmu() {
  static const PmuProbe probe = RunProbe();
  return probe;
}

PmuGroup::PmuGroup() {
  fds_.fill(-1);
  ids_.fill(0);
  if (!ProbePmu().available) return;
  fds_[kCycles] =
      OpenEvent(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, -1);
  if (fds_[kCycles] < 0) return;
  const int leader = fds_[kCycles];
  fds_[kInstructions] =
      OpenEvent(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS, leader);
  fds_[kLlcLoads] = OpenEvent(
      PERF_TYPE_HW_CACHE,
      kHwCacheLlRead | (PERF_COUNT_HW_CACHE_RESULT_ACCESS << 16), leader);
  fds_[kLlcMisses] = OpenEvent(
      PERF_TYPE_HW_CACHE,
      kHwCacheLlRead | (PERF_COUNT_HW_CACHE_RESULT_MISS << 16), leader);
  fds_[kBranchMisses] =
      OpenEvent(PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES, leader);
  fds_[kTaskClock] =
      OpenEvent(PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK, leader);
  for (size_t i = 0; i < kEvents; ++i) {
    if (fds_[i] >= 0) {
      ioctl(fds_[i], PERF_EVENT_IOC_ID, &ids_[i]);
    }
  }
}

PmuGroup::~PmuGroup() {
  for (int fd : fds_) {
    if (fd >= 0) close(fd);
  }
}

PmuCounts PmuGroup::Read() const {
  PmuCounts counts;
  if (!valid()) return counts;
  // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running,
  // then {value, id} per group member.
  struct {
    uint64_t nr;
    uint64_t time_enabled;
    uint64_t time_running;
    struct {
      uint64_t value;
      uint64_t id;
    } values[kEvents];
  } data;
  const ssize_t n = read(fds_[kCycles], &data, sizeof(data));
  if (n < static_cast<ssize_t>(3 * sizeof(uint64_t))) return counts;
  if (data.nr > kEvents) return counts;
  // Multiplex scaling: when the kernel rotated the group off the PMU,
  // extrapolate hardware counts by enabled/running. The software
  // task-clock always runs and must stay raw.
  const double scale =
      (data.time_running > 0 && data.time_running < data.time_enabled)
          ? static_cast<double>(data.time_enabled) /
                static_cast<double>(data.time_running)
          : 1.0;
  for (uint64_t i = 0; i < data.nr; ++i) {
    const uint64_t id = data.values[i].id;
    const uint64_t raw = data.values[i].value;
    const uint64_t scaled =
        static_cast<uint64_t>(static_cast<double>(raw) * scale);
    if (id == ids_[kCycles] && fds_[kCycles] >= 0) {
      counts.cycles = scaled;
    } else if (id == ids_[kInstructions] && fds_[kInstructions] >= 0) {
      counts.instructions = scaled;
    } else if (id == ids_[kLlcLoads] && fds_[kLlcLoads] >= 0) {
      counts.llc_loads = scaled;
    } else if (id == ids_[kLlcMisses] && fds_[kLlcMisses] >= 0) {
      counts.llc_misses = scaled;
    } else if (id == ids_[kBranchMisses] && fds_[kBranchMisses] >= 0) {
      counts.branch_misses = scaled;
    } else if (id == ids_[kTaskClock] && fds_[kTaskClock] >= 0) {
      counts.task_clock_ns = raw;
    }
  }
  counts.valid = true;
  return counts;
}

#endif  // platform/config dispatch

}  // namespace corrmine
