#ifndef CORRMINE_COMMON_LOGGING_H_
#define CORRMINE_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace corrmine {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum severity; messages below it are discarded.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal_logging {

/// Stream-style log sink that emits on destruction. `fatal` aborts the
/// process after emitting (used by CORRMINE_CHECK).
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  bool fatal_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

#define CORRMINE_LOG(level)                                              \
  ::corrmine::internal_logging::LogMessage(::corrmine::LogLevel::level, \
                                           __FILE__, __LINE__)

/// Invariant check that is active in all build modes. Prefer this over
/// assert() for conditions guarding memory safety or data integrity.
#define CORRMINE_CHECK(cond)                                          \
  if (cond) {                                                         \
  } else                                                              \
    ::corrmine::internal_logging::LogMessage(                         \
        ::corrmine::LogLevel::kError, __FILE__, __LINE__,             \
        /*fatal=*/true)                                               \
        << "Check failed: " #cond " "

}  // namespace corrmine

#endif  // CORRMINE_COMMON_LOGGING_H_
