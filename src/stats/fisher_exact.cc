#include "stats/fisher_exact.h"

#include <algorithm>
#include <cmath>

#include "stats/gamma.h"

namespace corrmine::stats {

namespace {

// log P(a | margins) under the hypergeometric distribution.
double LogTableProbability(uint64_t a, uint64_t row1, uint64_t row2,
                           uint64_t col1, uint64_t n) {
  uint64_t b = row1 - a;
  uint64_t c = col1 - a;
  uint64_t d = row2 - c;
  return LogFactorial(static_cast<unsigned>(row1)) +
         LogFactorial(static_cast<unsigned>(row2)) +
         LogFactorial(static_cast<unsigned>(col1)) +
         LogFactorial(static_cast<unsigned>(n - col1)) -
         LogFactorial(static_cast<unsigned>(n)) -
         LogFactorial(static_cast<unsigned>(a)) -
         LogFactorial(static_cast<unsigned>(b)) -
         LogFactorial(static_cast<unsigned>(c)) -
         LogFactorial(static_cast<unsigned>(d));
}

Status ValidateCounts(const TwoByTwoCounts& t) {
  if (t.total() == 0) {
    return Status::InvalidArgument("Fisher exact test on an empty table");
  }
  if (t.total() > 1000000) {
    // LogFactorial takes `unsigned`; also the full enumeration would be slow.
    return Status::OutOfRange(
        "Fisher exact test limited to tables with n <= 1e6");
  }
  return Status::OK();
}

}  // namespace

double HypergeometricTableProbability(const TwoByTwoCounts& t) {
  uint64_t row1 = t.a + t.b;
  uint64_t row2 = t.c + t.d;
  uint64_t col1 = t.a + t.c;
  return std::exp(LogTableProbability(t.a, row1, row2, col1, t.total()));
}

StatusOr<double> FisherExactTwoSided(const TwoByTwoCounts& t) {
  CORRMINE_RETURN_NOT_OK(ValidateCounts(t));
  uint64_t row1 = t.a + t.b;
  uint64_t row2 = t.c + t.d;
  uint64_t col1 = t.a + t.c;
  uint64_t n = t.total();

  uint64_t a_min = col1 > row2 ? col1 - row2 : 0;
  uint64_t a_max = std::min(row1, col1);
  double log_obs = LogTableProbability(t.a, row1, row2, col1, n);

  double p = 0.0;
  for (uint64_t a = a_min; a <= a_max; ++a) {
    double lp = LogTableProbability(a, row1, row2, col1, n);
    // Tolerance absorbs floating-point noise so the observed table always
    // counts itself.
    if (lp <= log_obs + 1e-7) p += std::exp(lp);
  }
  return std::min(p, 1.0);
}

StatusOr<double> FisherExactGreater(const TwoByTwoCounts& t) {
  CORRMINE_RETURN_NOT_OK(ValidateCounts(t));
  uint64_t row1 = t.a + t.b;
  uint64_t row2 = t.c + t.d;
  uint64_t col1 = t.a + t.c;
  uint64_t n = t.total();
  uint64_t a_max = std::min(row1, col1);

  double p = 0.0;
  for (uint64_t a = t.a; a <= a_max; ++a) {
    p += std::exp(LogTableProbability(a, row1, row2, col1, n));
  }
  return std::min(p, 1.0);
}

}  // namespace corrmine::stats
