#include "stats/multiple_testing.h"

#include <algorithm>
#include <numeric>

namespace corrmine::stats {

namespace {

Status ValidatePValues(const std::vector<double>& p_values) {
  if (p_values.empty()) {
    return Status::InvalidArgument("empty p-value batch");
  }
  for (double p : p_values) {
    if (!(p >= 0.0 && p <= 1.0)) {
      return Status::InvalidArgument("p-value outside [0,1]");
    }
  }
  return Status::OK();
}

}  // namespace

double BonferroniThreshold(double alpha, size_t num_tests) {
  if (num_tests == 0) return alpha;
  return alpha / static_cast<double>(num_tests);
}

StatusOr<std::vector<bool>> BenjaminiHochberg(
    const std::vector<double>& p_values, double q) {
  CORRMINE_RETURN_NOT_OK(ValidatePValues(p_values));
  if (!(q > 0.0 && q < 1.0)) {
    return Status::InvalidArgument("FDR level q must be in (0,1)");
  }
  const size_t m = p_values.size();
  std::vector<size_t> order(m);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return p_values[a] < p_values[b]; });

  // Largest k with p_(k) <= (k/m) q; reject the k smallest.
  size_t cutoff_rank = 0;  // 0 = reject nothing.
  for (size_t rank = 1; rank <= m; ++rank) {
    double threshold =
        q * static_cast<double>(rank) / static_cast<double>(m);
    if (p_values[order[rank - 1]] <= threshold) cutoff_rank = rank;
  }
  std::vector<bool> rejected(m, false);
  for (size_t rank = 1; rank <= cutoff_rank; ++rank) {
    rejected[order[rank - 1]] = true;
  }
  return rejected;
}

StatusOr<std::vector<double>> BenjaminiHochbergAdjusted(
    const std::vector<double>& p_values) {
  CORRMINE_RETURN_NOT_OK(ValidatePValues(p_values));
  const size_t m = p_values.size();
  std::vector<size_t> order(m);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return p_values[a] < p_values[b]; });

  // adjusted_(k) = min_{j >= k} ( m/j * p_(j) ), clipped to 1.
  std::vector<double> adjusted(m);
  double running_min = 1.0;
  for (size_t rank = m; rank >= 1; --rank) {
    double scaled = p_values[order[rank - 1]] * static_cast<double>(m) /
                    static_cast<double>(rank);
    running_min = std::min(running_min, scaled);
    adjusted[order[rank - 1]] = running_min;
  }
  return adjusted;
}

}  // namespace corrmine::stats
