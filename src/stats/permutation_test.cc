#include "stats/permutation_test.h"

#include <numeric>
#include <vector>

#include "core/chi_squared_test.h"
#include "core/contingency_table.h"
#include "datagen/rng.h"
#include "stats/chi_squared_distribution.h"

namespace corrmine::stats {

namespace {

/// Chi-squared statistic from per-basket presence masks (one k-bit mask per
/// basket) against the independence model. Masks are recomputed per round,
/// so this avoids rebuilding SparseContingencyTable machinery.
double StatisticFromMasks(const std::vector<uint32_t>& masks,
                          const IndependenceModel& model) {
  const uint32_t num_cells = uint32_t{1} << model.num_items();
  std::vector<uint64_t> observed(num_cells, 0);
  for (uint32_t mask : masks) ++observed[mask];
  double chi2 = 0.0;
  for (uint32_t cell = 0; cell < num_cells; ++cell) {
    double e = model.Expected(cell);
    if (e <= 0.0) continue;
    double diff = static_cast<double>(observed[cell]) - e;
    chi2 += diff * diff / e;
  }
  return chi2;
}

}  // namespace

StatusOr<PermutationTestResult> PermutationIndependenceTest(
    const TransactionDatabase& db, const Itemset& s,
    const PermutationTestOptions& options) {
  if (db.num_baskets() == 0) {
    return Status::FailedPrecondition("permutation test on empty database");
  }
  if (s.size() < 2 || static_cast<int>(s.size()) > 16) {
    return Status::InvalidArgument(
        "permutation test supports itemsets of size 2..16");
  }
  if (options.rounds < 1) {
    return Status::InvalidArgument("rounds must be positive");
  }

  const size_t n = db.num_baskets();
  const int k = static_cast<int>(s.size());

  // Presence columns: column[j][row] = 1 iff basket row contains item j.
  std::vector<std::vector<uint8_t>> columns(k,
                                            std::vector<uint8_t>(n, 0));
  std::vector<uint64_t> item_counts(k, 0);
  for (size_t row = 0; row < n; ++row) {
    for (int j = 0; j < k; ++j) {
      if (db.BasketContainsAll(row, Itemset{s.item(j)})) {
        columns[j][row] = 1;
        ++item_counts[j];
      }
    }
  }
  IndependenceModel model(n, item_counts);

  std::vector<uint32_t> masks(n, 0);
  for (size_t row = 0; row < n; ++row) {
    uint32_t mask = 0;
    for (int j = 0; j < k; ++j) {
      mask |= static_cast<uint32_t>(columns[j][row]) << j;
    }
    masks[row] = mask;
  }
  PermutationTestResult result;
  result.observed_statistic = StatisticFromMasks(masks, model);
  result.chi_squared_p_value =
      ChiSquaredPValue(result.observed_statistic, 1);

  datagen::Rng rng(options.seed);
  int at_least_as_large = 0;
  for (int round = 0; round < options.rounds; ++round) {
    // Fisher-Yates each column independently: marginals preserved, joint
    // structure destroyed.
    for (int j = 0; j < k; ++j) {
      std::vector<uint8_t>& column = columns[j];
      for (size_t i = n - 1; i > 0; --i) {
        size_t pick = rng.NextBelow(i + 1);
        std::swap(column[i], column[pick]);
      }
    }
    for (size_t row = 0; row < n; ++row) {
      uint32_t mask = 0;
      for (int j = 0; j < k; ++j) {
        mask |= static_cast<uint32_t>(columns[j][row]) << j;
      }
      masks[row] = mask;
    }
    if (StatisticFromMasks(masks, model) >=
        result.observed_statistic - 1e-12) {
      ++at_least_as_large;
    }
  }
  result.p_value = (1.0 + at_least_as_large) /
                   (1.0 + static_cast<double>(options.rounds));
  return result;
}

}  // namespace corrmine::stats
