#ifndef CORRMINE_STATS_BIVARIATE_NORMAL_H_
#define CORRMINE_STATS_BIVARIATE_NORMAL_H_

namespace corrmine::stats {

/// Upper-orthant probability of the standard bivariate normal,
///   P(X > h, Y > k) with corr(X, Y) = rho,
/// computed with Genz's adaptation of the Drezner–Wesolowsky method
/// (Gauss–Legendre quadrature; absolute error < 5e-16). rho in [-1, 1].
double BivariateNormalUpper(double h, double k, double rho);

/// CDF form: P(X <= h, Y <= k) with corr(X, Y) = rho.
double BivariateNormalCdf(double h, double k, double rho);

}  // namespace corrmine::stats

#endif  // CORRMINE_STATS_BIVARIATE_NORMAL_H_
