#ifndef CORRMINE_STATS_PERMUTATION_TEST_H_
#define CORRMINE_STATS_PERMUTATION_TEST_H_

#include <cstdint>

#include "common/status_or.h"
#include "itemset/itemset.h"
#include "itemset/transaction_database.h"

namespace corrmine::stats {

struct PermutationTestOptions {
  /// Number of Monte Carlo resamples; the p-value resolution is ~1/rounds.
  int rounds = 1000;
  uint64_t seed = 0x9e215e5ULL;
};

struct PermutationTestResult {
  /// Chi-squared statistic of the observed (unpermuted) data.
  double observed_statistic = 0.0;
  /// Monte Carlo p-value with the add-one correction:
  ///   (1 + #{resamples with statistic >= observed}) / (1 + rounds).
  double p_value = 1.0;
  /// The chi-squared approximation's p-value, for comparison.
  double chi_squared_p_value = 1.0;
};

/// Monte Carlo exact test of k-way independence for the items of `s`:
/// each round independently permutes every item's presence column across
/// baskets (which preserves all marginals while destroying any joint
/// structure — the null hypothesis made mechanical) and recomputes the
/// chi-squared statistic; the p-value is the fraction of resampled
/// statistics at least as large as the observed one.
///
/// This addresses the paper's Section 3.3 limitation head-on: "the
/// solution to this problem is to use an exact calculation for the
/// probability, rather than the chi-squared approximation" — the Monte
/// Carlo estimate stays valid when expected cell counts are tiny, where
/// the asymptotic chi-squared p-value is unreliable.
///
/// Cost is rounds * O(n * |s|); intended for vetting individual findings,
/// not as the miner's inner loop.
StatusOr<PermutationTestResult> PermutationIndependenceTest(
    const TransactionDatabase& db, const Itemset& s,
    const PermutationTestOptions& options = {});

}  // namespace corrmine::stats

#endif  // CORRMINE_STATS_PERMUTATION_TEST_H_
