#include "stats/tetrachoric.h"

#include <algorithm>
#include <cmath>

#include "stats/bivariate_normal.h"
#include "stats/normal.h"

namespace corrmine::stats {

double ThresholdedJointProbability(double p_a, double p_b, double rho) {
  double z_a = NormalQuantile(1.0 - p_a);
  double z_b = NormalQuantile(1.0 - p_b);
  return BivariateNormalUpper(z_a, z_b, rho);
}

StatusOr<double> TetrachoricCorrelation(double p_a, double p_b, double p_ab,
                                        double max_abs_rho) {
  if (!(p_a > 0.0 && p_a < 1.0) || !(p_b > 0.0 && p_b < 1.0)) {
    return Status::InvalidArgument(
        "tetrachoric marginals must lie strictly in (0,1)");
  }
  if (p_ab < 0.0 || p_ab > std::min(p_a, p_b) + 1e-12) {
    return Status::InvalidArgument(
        "joint probability outside [0, min(p_a, p_b)]");
  }
  if (!(max_abs_rho > 0.0 && max_abs_rho < 1.0)) {
    return Status::InvalidArgument("max_abs_rho must be in (0,1)");
  }

  double lo = -max_abs_rho;
  double hi = max_abs_rho;
  double f_lo = ThresholdedJointProbability(p_a, p_b, lo);
  double f_hi = ThresholdedJointProbability(p_a, p_b, hi);
  // Targets outside the attainable range (Frechet-bound cells, e.g.
  // structural zeros) clamp to the nearest representable correlation.
  if (p_ab <= f_lo) return lo;
  if (p_ab >= f_hi) return hi;

  for (int i = 0; i < 200; ++i) {
    double mid = 0.5 * (lo + hi);
    double f_mid = ThresholdedJointProbability(p_a, p_b, mid);
    if (f_mid < p_ab) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12) break;
  }
  return 0.5 * (lo + hi);
}

}  // namespace corrmine::stats
