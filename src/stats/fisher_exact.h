#ifndef CORRMINE_STATS_FISHER_EXACT_H_
#define CORRMINE_STATS_FISHER_EXACT_H_

#include <cstdint>

#include "common/status_or.h"

namespace corrmine::stats {

/// A 2x2 table of observed counts:
///
///            B      not-B
///   A        a        b
///   not-A    c        d
struct TwoByTwoCounts {
  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t c = 0;
  uint64_t d = 0;

  uint64_t total() const { return a + b + c + d; }
};

/// Fisher's exact test for independence in a 2x2 table. This is the "exact
/// calculation for the probability" that Brin et al. (Section 3.3) note the
/// chi-squared statistic approximates; it stays valid when expected cell
/// counts are small. Returns the two-sided p-value: the sum of all
/// hypergeometric table probabilities (with margins fixed) that do not
/// exceed the probability of the observed table.
StatusOr<double> FisherExactTwoSided(const TwoByTwoCounts& counts);

/// One-sided p-value for positive association: P(table at least as extreme
/// toward large `a`).
StatusOr<double> FisherExactGreater(const TwoByTwoCounts& counts);

/// Hypergeometric point probability of the table given fixed margins.
double HypergeometricTableProbability(const TwoByTwoCounts& counts);

}  // namespace corrmine::stats

#endif  // CORRMINE_STATS_FISHER_EXACT_H_
