#ifndef CORRMINE_STATS_MULTIPLE_TESTING_H_
#define CORRMINE_STATS_MULTIPLE_TESTING_H_

#include <vector>

#include "common/status_or.h"

namespace corrmine::stats {

/// Corrections for simultaneous hypothesis testing. The paper tests all 45
/// census pairs (and hundreds of thousands of word pairs) at a per-test
/// 95% level without adjustment — standard practice in 1997 data mining,
/// but a family of m tests at level alpha expects m*(1-alpha) false
/// positives. These helpers let users of the library control either the
/// family-wise error rate or the false discovery rate of a batch of
/// findings.

/// Bonferroni: reject p_i iff p_i <= alpha / m. Controls the probability
/// of *any* false positive at alpha. Returns the per-test threshold.
double BonferroniThreshold(double alpha, size_t num_tests);

/// Benjamini–Hochberg step-up procedure: given the batch of p-values,
/// returns for each input (in input order) whether it is rejected with
/// false discovery rate controlled at level q. Requires p-values in
/// [0, 1] and q in (0, 1).
StatusOr<std::vector<bool>> BenjaminiHochberg(
    const std::vector<double>& p_values, double q);

/// BH-adjusted p-values ("q-values", in input order): the smallest FDR
/// level at which each test would be rejected. Monotonicity-enforced.
StatusOr<std::vector<double>> BenjaminiHochbergAdjusted(
    const std::vector<double>& p_values);

}  // namespace corrmine::stats

#endif  // CORRMINE_STATS_MULTIPLE_TESTING_H_
