#ifndef CORRMINE_STATS_NORMAL_H_
#define CORRMINE_STATS_NORMAL_H_

namespace corrmine::stats {

/// Standard normal density phi(x).
double NormalPdf(double x);

/// Standard normal CDF Phi(x), via erfc for accuracy in both tails.
double NormalCdf(double x);

/// Inverse standard normal CDF (Acklam's rational approximation refined by
/// one Halley step); accurate to ~1e-15 over (0, 1).
double NormalQuantile(double p);

}  // namespace corrmine::stats

#endif  // CORRMINE_STATS_NORMAL_H_
