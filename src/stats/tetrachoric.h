#ifndef CORRMINE_STATS_TETRACHORIC_H_
#define CORRMINE_STATS_TETRACHORIC_H_

#include "common/status_or.h"

namespace corrmine::stats {

/// Solves the tetrachoric calibration problem: given binary marginal
/// probabilities `p_a = P(A)` and `p_b = P(B)` and a target joint
/// `p_ab = P(A and B)`, find the latent bivariate-normal correlation rho
/// such that thresholded standard normals with those marginals reproduce the
/// joint:  P(X > z_a, Y > z_b) = p_ab with z_a = Phi^{-1}(1 - p_a).
///
/// The joint is monotone increasing in rho, so a bisection over [-1, 1]
/// converges; the result is clamped to [-max_abs_rho, max_abs_rho] when the
/// target is at (or past) the Frechet bounds, which happens for structural
/// zeros such as the paper's "male and 3-plus children" cell.
///
/// Requires p_a, p_b strictly inside (0, 1); p_ab inside [0, min(p_a, p_b)].
StatusOr<double> TetrachoricCorrelation(double p_a, double p_b, double p_ab,
                                        double max_abs_rho = 0.999);

/// Forward map used by the solver (exposed for tests): joint success
/// probability of thresholded correlated normals.
double ThresholdedJointProbability(double p_a, double p_b, double rho);

}  // namespace corrmine::stats

#endif  // CORRMINE_STATS_TETRACHORIC_H_
