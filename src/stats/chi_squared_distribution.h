#ifndef CORRMINE_STATS_CHI_SQUARED_DISTRIBUTION_H_
#define CORRMINE_STATS_CHI_SQUARED_DISTRIBUTION_H_

namespace corrmine::stats {

/// The chi-squared distribution with `dof` degrees of freedom, built on the
/// regularized incomplete gamma function: if X ~ chi2(k) then
/// P(X <= x) = P(k/2, x/2).
class ChiSquaredDistribution {
 public:
  /// `dof` must be a positive integer count of degrees of freedom.
  explicit ChiSquaredDistribution(int dof);

  int dof() const { return dof_; }

  /// Cumulative distribution function P(X <= x).
  double Cdf(double x) const;

  /// Survival function P(X > x) = 1 - Cdf(x); this is the p-value of an
  /// observed chi-squared statistic `x`.
  double Survival(double x) const;

  /// Inverse CDF: smallest x with Cdf(x) >= p, for p in (0, 1). This is the
  /// critical value at significance level p (e.g. Quantile(0.95) = 3.841 for
  /// one degree of freedom). Computed by bisection refined from the
  /// Wilson–Hilferty normal approximation; accurate to ~1e-10.
  double Quantile(double p) const;

 private:
  int dof_;
};

/// Convenience: the upper critical value chi2_{alpha, dof}, i.e. the cutoff
/// such that under independence the statistic exceeds it with probability
/// (1 - alpha). alpha is the significance level in (0, 1), e.g. 0.95.
double ChiSquaredCriticalValue(double alpha, int dof);

/// Convenience: p-value of an observed statistic.
double ChiSquaredPValue(double statistic, int dof);

}  // namespace corrmine::stats

#endif  // CORRMINE_STATS_CHI_SQUARED_DISTRIBUTION_H_
