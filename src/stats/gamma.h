#ifndef CORRMINE_STATS_GAMMA_H_
#define CORRMINE_STATS_GAMMA_H_

namespace corrmine::stats {

/// Natural log of the gamma function, Lanczos approximation (g = 7, n = 9).
/// Valid for x > 0; accurate to ~1e-13 relative error.
double LogGamma(double x);

/// Regularized lower incomplete gamma function
///   P(a, x) = gamma(a, x) / Gamma(a),  a > 0, x >= 0.
/// Uses the series expansion for x < a + 1 and the continued fraction
/// otherwise (Numerical-Recipes-style gammp/gammq split).
double RegularizedGammaP(double a, double x);

/// Regularized upper incomplete gamma function Q(a, x) = 1 - P(a, x).
double RegularizedGammaQ(double a, double x);

/// Natural log of the factorial, ln(n!).
double LogFactorial(unsigned n);

/// Natural log of the binomial coefficient, ln(C(n, k)); requires k <= n.
double LogBinomial(unsigned n, unsigned k);

}  // namespace corrmine::stats

#endif  // CORRMINE_STATS_GAMMA_H_
