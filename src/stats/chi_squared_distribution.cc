#include "stats/chi_squared_distribution.h"

#include <cmath>

#include "common/logging.h"
#include "stats/gamma.h"

namespace corrmine::stats {

ChiSquaredDistribution::ChiSquaredDistribution(int dof) : dof_(dof) {
  CORRMINE_CHECK(dof > 0) << "chi-squared dof must be positive, got " << dof;
}

double ChiSquaredDistribution::Cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return RegularizedGammaP(0.5 * dof_, 0.5 * x);
}

double ChiSquaredDistribution::Survival(double x) const {
  if (x <= 0.0) return 1.0;
  return RegularizedGammaQ(0.5 * dof_, 0.5 * x);
}

double ChiSquaredDistribution::Quantile(double p) const {
  CORRMINE_CHECK(p > 0.0 && p < 1.0)
      << "quantile requires p in (0,1), got " << p;
  // Wilson–Hilferty: chi2(k) quantile ~ k * (1 - 2/(9k) + z * sqrt(2/(9k)))^3
  // with z the standard normal quantile. We only need a rough bracket, so a
  // crude rational approximation for z suffices before bisection.
  double k = static_cast<double>(dof_);
  // Beasley–Springer–Moro style crude normal quantile (sufficient to seed).
  double t = std::sqrt(-2.0 * std::log(p < 0.5 ? p : 1.0 - p));
  double z = t - (2.30753 + 0.27061 * t) / (1.0 + 0.99229 * t +
                                            0.04481 * t * t);
  if (p < 0.5) z = -z;
  double c = 2.0 / (9.0 * k);
  double guess = k * std::pow(1.0 - c + z * std::sqrt(c), 3.0);
  if (!(guess > 0.0)) guess = k;

  // Expand a bracket [lo, hi] around the guess.
  double lo = guess;
  double hi = guess;
  while (lo > 0.0 && Cdf(lo) > p) lo *= 0.5;
  if (Cdf(lo) > p) lo = 0.0;
  int guard = 0;
  while (Cdf(hi) < p && guard++ < 200) hi = hi * 2.0 + 1.0;

  // Bisection.
  for (int i = 0; i < 200; ++i) {
    double mid = 0.5 * (lo + hi);
    if (Cdf(mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12 * (1.0 + hi)) break;
  }
  return 0.5 * (lo + hi);
}

double ChiSquaredCriticalValue(double alpha, int dof) {
  return ChiSquaredDistribution(dof).Quantile(alpha);
}

double ChiSquaredPValue(double statistic, int dof) {
  return ChiSquaredDistribution(dof).Survival(statistic);
}

}  // namespace corrmine::stats
