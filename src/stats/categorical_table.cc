#include "stats/categorical_table.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/chi_squared_distribution.h"

namespace corrmine::stats {

StatusOr<CategoricalTable> CategoricalTable::Create(int rows, int cols) {
  if (rows < 2 || cols < 2) {
    return Status::InvalidArgument(
        "categorical table needs at least 2 rows and 2 columns");
  }
  return CategoricalTable(rows, cols);
}

uint64_t CategoricalTable::RowTotal(int r) const {
  uint64_t total = 0;
  for (int c = 0; c < cols_; ++c) total += count(r, c);
  return total;
}

uint64_t CategoricalTable::ColTotal(int c) const {
  uint64_t total = 0;
  for (int r = 0; r < rows_; ++r) total += count(r, c);
  return total;
}

uint64_t CategoricalTable::GrandTotal() const {
  uint64_t total = 0;
  for (uint64_t v : counts_) total += v;
  return total;
}

double CategoricalTable::Expected(int r, int c) const {
  uint64_t n = GrandTotal();
  if (n == 0) return 0.0;
  return static_cast<double>(RowTotal(r)) * static_cast<double>(ColTotal(c)) /
         static_cast<double>(n);
}

StatusOr<double> CategoricalTable::ChiSquared() const {
  uint64_t n = GrandTotal();
  if (n == 0) return Status::FailedPrecondition("empty contingency table");
  for (int r = 0; r < rows_; ++r) {
    if (RowTotal(r) == 0) {
      return Status::FailedPrecondition("zero row margin in table");
    }
  }
  for (int c = 0; c < cols_; ++c) {
    if (ColTotal(c) == 0) {
      return Status::FailedPrecondition("zero column margin in table");
    }
  }
  double chi2 = 0.0;
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      double e = Expected(r, c);
      double diff = static_cast<double>(count(r, c)) - e;
      chi2 += diff * diff / e;
    }
  }
  return chi2;
}

StatusOr<double> CategoricalTable::PValue() const {
  CORRMINE_ASSIGN_OR_RETURN(double chi2, ChiSquared());
  return ChiSquaredPValue(chi2, DegreesOfFreedom());
}

StatusOr<double> CategoricalTable::CramersV() const {
  CORRMINE_ASSIGN_OR_RETURN(double chi2, ChiSquared());
  double n = static_cast<double>(GrandTotal());
  int min_dim = std::min(rows_, cols_) - 1;
  return std::sqrt(chi2 / (n * static_cast<double>(min_dim)));
}

double CategoricalTable::Interest(int r, int c) const {
  double e = Expected(r, c);
  if (e == 0.0) {
    return count(r, c) == 0 ? 1.0 : std::numeric_limits<double>::infinity();
  }
  return static_cast<double>(count(r, c)) / e;
}

}  // namespace corrmine::stats
