#include "stats/bivariate_normal.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "stats/normal.h"

namespace corrmine::stats {

namespace {

constexpr double kTwoPi = 6.283185307179586477;

// Gauss–Legendre abscissae/weights for the three accuracy regimes used by
// Genz's BVND (6-, 12- and 20-point rules, symmetric halves stored).
constexpr double kW1[3] = {0.1713244923791705, 0.3607615730481384,
                           0.4679139345726904};
constexpr double kX1[3] = {0.9324695142031522, 0.6612093864662647,
                           0.2386191860831970};
constexpr double kW2[6] = {0.04717533638651177, 0.1069393259953183,
                           0.1600783285433464,  0.2031674267230659,
                           0.2334925365383547,  0.2491470458134029};
constexpr double kX2[6] = {0.9815606342467191, 0.9041172563704750,
                           0.7699026741943050, 0.5873179542866171,
                           0.3678314989981802, 0.1252334085114692};
constexpr double kW3[10] = {0.01761400713915212, 0.04060142980038694,
                            0.06267204833410906, 0.08327674157670475,
                            0.1019301198172404,  0.1181945319615184,
                            0.1316886384491766,  0.1420961093183821,
                            0.1491729864726037,  0.1527533871307259};
constexpr double kX3[10] = {0.9931285991850949, 0.9639719272779138,
                            0.9122344282513259, 0.8391169718222188,
                            0.7463319064601508, 0.6360536807265150,
                            0.5108670019508271, 0.3737060887154196,
                            0.2277858511416451, 0.0765265211334973};

}  // namespace

double BivariateNormalUpper(double dh, double dk, double r) {
  CORRMINE_CHECK(r >= -1.0 && r <= 1.0) << "rho out of [-1,1]: " << r;

  const double* w;
  const double* x;
  int ng;
  double ar = std::fabs(r);
  if (ar < 0.3) {
    ng = 3;
    w = kW1;
    x = kX1;
  } else if (ar < 0.75) {
    ng = 6;
    w = kW2;
    x = kX2;
  } else {
    ng = 10;
    w = kW3;
    x = kX3;
  }

  double h = dh;
  double k = dk;
  double hk = h * k;
  double bvn = 0.0;

  if (ar < 0.925) {
    double hs = 0.5 * (h * h + k * k);
    double asr = std::asin(r);
    for (int i = 0; i < ng; ++i) {
      for (int sign = -1; sign <= 1; sign += 2) {
        double sn = std::sin(asr * (sign * x[i] + 1.0) * 0.5);
        bvn += w[i] * std::exp((sn * hk - hs) / (1.0 - sn * sn));
      }
    }
    bvn = bvn * asr / (2.0 * kTwoPi) + NormalCdf(-h) * NormalCdf(-k);
    return bvn;
  }

  // |r| >= 0.925: Drezner–Wesolowsky tail expansion plus quadrature.
  if (r < 0.0) {
    k = -k;
    hk = -hk;
  }
  if (ar < 1.0) {
    double as = (1.0 - r) * (1.0 + r);
    double a = std::sqrt(as);
    double bs = (h - k) * (h - k);
    double c = (4.0 - hk) / 8.0;
    double d = (12.0 - hk) / 16.0;
    double asr = -(bs / as + hk) / 2.0;
    if (asr > -100.0) {
      bvn = a * std::exp(asr) *
            (1.0 - c * (bs - as) * (1.0 - d * bs / 5.0) / 3.0 +
             c * d * as * as / 5.0);
    }
    if (-hk < 100.0) {
      double b = std::sqrt(bs);
      double sp = std::sqrt(kTwoPi) * NormalCdf(-b / a);
      bvn -= std::exp(-hk / 2.0) * sp * b *
             (1.0 - c * bs * (1.0 - d * bs / 5.0) / 3.0);
    }
    a /= 2.0;
    for (int i = 0; i < ng; ++i) {
      for (int sign = -1; sign <= 1; sign += 2) {
        double xs = a * (sign * x[i] + 1.0);
        xs = xs * xs;
        double rs = std::sqrt(1.0 - xs);
        double asr1 = -(bs / xs + hk) / 2.0;
        if (asr1 > -100.0) {
          double sp = 1.0 + c * xs * (1.0 + d * xs);
          double ep =
              std::exp(-hk * (1.0 - rs) / (2.0 * (1.0 + rs))) / rs;
          bvn += a * w[i] * std::exp(asr1) * (ep - sp);
        }
      }
    }
    bvn = -bvn / kTwoPi;
  }
  if (r > 0.0) {
    bvn += NormalCdf(-std::max(h, k));
  } else {
    bvn = -bvn;
    if (k > h) bvn += NormalCdf(k) - NormalCdf(h);
  }
  return std::clamp(bvn, 0.0, 1.0);
}

double BivariateNormalCdf(double h, double k, double rho) {
  return BivariateNormalUpper(-h, -k, rho);
}

}  // namespace corrmine::stats
