#include "stats/gamma.h"

#include <cmath>
#include <limits>

#include "common/logging.h"

namespace corrmine::stats {

namespace {

// Lanczos coefficients for g = 7, n = 9 (Godfrey's table).
constexpr double kLanczosG = 7.0;
constexpr double kLanczos[9] = {
    0.99999999999980993,  676.5203681218851,   -1259.1392167224028,
    771.32342877765313,   -176.61502916214059, 12.507343278686905,
    -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};

constexpr double kLogSqrtTwoPi = 0.91893853320467274178;

// Series representation of P(a, x); converges quickly for x < a + 1.
double GammaPSeries(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int i = 0; i < 500; ++i) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * 1e-16) break;
  }
  return sum * std::exp(-x + a * std::log(x) - LogGamma(a));
}

// Continued fraction representation of Q(a, x); converges for x >= a + 1.
// Modified Lentz's method.
double GammaQContinuedFraction(double a, double x) {
  constexpr double kFpMin = std::numeric_limits<double>::min() / 1e-30;
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-16) break;
  }
  return std::exp(-x + a * std::log(x) - LogGamma(a)) * h;
}

}  // namespace

double LogGamma(double x) {
  CORRMINE_CHECK(x > 0.0) << "LogGamma requires x > 0, got " << x;
  if (x < 0.5) {
    // Reflection formula keeps the Lanczos argument >= 0.5.
    return std::log(M_PI / std::sin(M_PI * x)) - LogGamma(1.0 - x);
  }
  double z = x - 1.0;
  double sum = kLanczos[0];
  for (int i = 1; i < 9; ++i) {
    sum += kLanczos[i] / (z + static_cast<double>(i));
  }
  double t = z + kLanczosG + 0.5;
  return kLogSqrtTwoPi + (z + 0.5) * std::log(t) - t + std::log(sum);
}

double RegularizedGammaP(double a, double x) {
  CORRMINE_CHECK(a > 0.0 && x >= 0.0)
      << "RegularizedGammaP requires a > 0, x >= 0; got a=" << a
      << " x=" << x;
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double RegularizedGammaQ(double a, double x) {
  CORRMINE_CHECK(a > 0.0 && x >= 0.0)
      << "RegularizedGammaQ requires a > 0, x >= 0; got a=" << a
      << " x=" << x;
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - GammaPSeries(a, x);
  return GammaQContinuedFraction(a, x);
}

double LogFactorial(unsigned n) {
  return LogGamma(static_cast<double>(n) + 1.0);
}

double LogBinomial(unsigned n, unsigned k) {
  CORRMINE_CHECK(k <= n) << "LogBinomial requires k <= n";
  return LogFactorial(n) - LogFactorial(k) - LogFactorial(n - k);
}

}  // namespace corrmine::stats
