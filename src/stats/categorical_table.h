#ifndef CORRMINE_STATS_CATEGORICAL_TABLE_H_
#define CORRMINE_STATS_CATEGORICAL_TABLE_H_

#include <cstdint>
#include <vector>

#include "common/status_or.h"

namespace corrmine::stats {

/// An r x c contingency table over two categorical (multi-valued) attributes.
/// This is the "non-collapsed" table the paper points to in Section 5.1 for
/// finding finer-grained dependency than binary items allow: the chi-squared
/// test extends with (r-1)(c-1) degrees of freedom.
class CategoricalTable {
 public:
  /// Creates an r x c table of zero counts. Both dimensions must be >= 2.
  static StatusOr<CategoricalTable> Create(int rows, int cols);

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  uint64_t count(int r, int c) const { return counts_[Index(r, c)]; }
  void set_count(int r, int c, uint64_t value) {
    counts_[Index(r, c)] = value;
  }
  void Increment(int r, int c) { ++counts_[Index(r, c)]; }

  uint64_t RowTotal(int r) const;
  uint64_t ColTotal(int c) const;
  uint64_t GrandTotal() const;

  /// Expected count of cell (r, c) under row/column independence.
  double Expected(int r, int c) const;

  /// Pearson chi-squared statistic; errors if the grand total is zero or any
  /// margin is entirely zero (the statistic is undefined there).
  StatusOr<double> ChiSquared() const;

  /// Degrees of freedom (rows-1)*(cols-1).
  int DegreesOfFreedom() const { return (rows_ - 1) * (cols_ - 1); }

  /// p-value of the chi-squared test at the conventional dof.
  StatusOr<double> PValue() const;

  /// Cramer's V effect size in [0, 1]: sqrt(chi2 / (n * (min(r,c)-1))).
  StatusOr<double> CramersV() const;

  /// Interest (observed/expected) of one cell; +inf when expected is 0.
  double Interest(int r, int c) const;

 private:
  CategoricalTable(int rows, int cols)
      : rows_(rows), cols_(cols), counts_(static_cast<size_t>(rows) * cols) {}

  size_t Index(int r, int c) const {
    return static_cast<size_t>(r) * cols_ + c;
  }

  int rows_;
  int cols_;
  std::vector<uint64_t> counts_;
};

}  // namespace corrmine::stats

#endif  // CORRMINE_STATS_CATEGORICAL_TABLE_H_
