#include "hash/itemset_set.h"

namespace corrmine::hash {

bool ItemsetPerfectSet::Insert(const Itemset& s) {
  uint64_t key = s.Hash();
  std::optional<uint64_t> hit = table_.Find(key);
  if (!hit.has_value()) {
    itemsets_.push_back(s);
    table_.Insert(key, itemsets_.size() - 1);
    return true;
  }
  if (itemsets_[*hit] == s) return false;
  for (size_t idx : overflow_) {
    if (itemsets_[idx] == s) return false;
  }
  itemsets_.push_back(s);
  overflow_.push_back(itemsets_.size() - 1);
  return true;
}

bool ItemsetPerfectSet::Contains(const Itemset& s) const {
  std::optional<uint64_t> hit = table_.Find(s.Hash());
  if (!hit.has_value()) return false;
  if (itemsets_[*hit] == s) return true;
  for (size_t idx : overflow_) {
    if (itemsets_[idx] == s) return true;
  }
  return false;
}

void ItemsetPerfectSet::Clear() {
  table_ = DynamicPerfectHash();
  itemsets_.clear();
  overflow_.clear();
}

}  // namespace corrmine::hash
