#ifndef CORRMINE_HASH_DYNAMIC_PERFECT_HASH_H_
#define CORRMINE_HASH_DYNAMIC_PERFECT_HASH_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "hash/universal_hash.h"

namespace corrmine::hash {

/// Dynamic perfect hashing in the style of Dietzfelbinger et al. [7] (the
/// paper's reference for storing NOTSIG and CAND): a two-level scheme where
/// lookups are collision-free (worst-case O(1), two probes) and inserts are
/// expected amortized O(1) via bucket-local rebuilds and occasional global
/// rebuilds.
///
/// Maps uint64 keys to uint64 values. Inserting an existing key overwrites
/// its value.
class DynamicPerfectHash {
 public:
  explicit DynamicPerfectHash(uint64_t seed = 0xd1ce5eedULL);

  /// Inserts or overwrites. Returns true if the key was newly inserted.
  bool Insert(uint64_t key, uint64_t value);

  /// Removes a key; returns true if it was present.
  bool Erase(uint64_t key);

  /// Worst-case two-probe lookup.
  std::optional<uint64_t> Find(uint64_t key) const;

  bool Contains(uint64_t key) const { return Find(key).has_value(); }

  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// All live key/value pairs (unordered); used for iteration by callers
  /// that track the set contents.
  std::vector<std::pair<uint64_t, uint64_t>> Entries() const;

  /// Diagnostics: number of global rebuilds performed so far.
  size_t global_rebuilds() const { return global_rebuilds_; }

 private:
  struct Slot {
    uint64_t key = 0;
    uint64_t value = 0;
    bool occupied = false;
  };

  struct Bucket {
    UniversalHashFunction hash;
    std::vector<Slot> slots;  // Size is ~2 * live^2; empty until first use.
    size_t live = 0;
  };

  void GlobalRebuild(size_t new_capacity);
  void RebuildBucket(Bucket* bucket, uint64_t new_key, uint64_t new_value);
  static size_t SubtableSize(size_t live_count);

  mutable SplitMix64 rng_;
  UniversalHashFunction top_hash_;
  std::vector<Bucket> buckets_;
  size_t count_ = 0;
  size_t capacity_ = 0;  // Global rebuild threshold.
  size_t global_rebuilds_ = 0;
};

}  // namespace corrmine::hash

#endif  // CORRMINE_HASH_DYNAMIC_PERFECT_HASH_H_
