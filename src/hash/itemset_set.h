#ifndef CORRMINE_HASH_ITEMSET_SET_H_
#define CORRMINE_HASH_ITEMSET_SET_H_

#include <cstdint>
#include <vector>

#include "hash/dynamic_perfect_hash.h"
#include "itemset/itemset.h"

namespace corrmine::hash {

/// A set of itemsets with worst-case O(1) membership tests, backed by the
/// dynamic perfect hash over each itemset's 64-bit content hash. Full
/// itemsets are stored for verification, so distinct itemsets colliding on
/// the 64-bit hash (vanishingly rare but possible) fall back to a small
/// overflow list and never produce wrong answers.
///
/// This is the container Figure 1's Step 8 uses for NOTSIG and CAND:
/// candidate generation tests all i-subsets of a potential (i+1)-candidate
/// for membership in constant time each.
class ItemsetPerfectSet {
 public:
  explicit ItemsetPerfectSet(uint64_t seed = 0x17e85e7ULL) : table_(seed) {}

  /// Inserts `s`; returns true if newly added.
  bool Insert(const Itemset& s);

  bool Contains(const Itemset& s) const;

  size_t size() const { return itemsets_.size(); }
  bool empty() const { return itemsets_.empty(); }

  /// Stored itemsets in insertion order.
  const std::vector<Itemset>& itemsets() const { return itemsets_; }

  void Clear();

 private:
  DynamicPerfectHash table_;  // itemset hash -> index into itemsets_.
  std::vector<Itemset> itemsets_;
  /// Indices of itemsets whose hash collided with a different stored
  /// itemset; consulted only after a hash hit with mismatched contents.
  std::vector<size_t> overflow_;
};

}  // namespace corrmine::hash

#endif  // CORRMINE_HASH_ITEMSET_SET_H_
