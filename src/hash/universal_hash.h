#ifndef CORRMINE_HASH_UNIVERSAL_HASH_H_
#define CORRMINE_HASH_UNIVERSAL_HASH_H_

#include <cstdint>

namespace corrmine::hash {

/// A function from the classic universal family
///   h_{a,b}(x) = ((a*x + b) mod p) mod m,   p = 2^61 - 1,
/// the collision-probability guarantee perfect hashing (FKS and its dynamic
/// variant) builds on. `a` must be nonzero mod p.
class UniversalHashFunction {
 public:
  static constexpr uint64_t kPrime = (uint64_t{1} << 61) - 1;

  UniversalHashFunction() : a_(1), b_(0) {}
  UniversalHashFunction(uint64_t a, uint64_t b)
      : a_(a % kPrime), b_(b % kPrime) {
    if (a_ == 0) a_ = 1;
  }

  /// Hash of `key` into the range [0, range); range must be positive.
  uint64_t operator()(uint64_t key, uint64_t range) const;

  uint64_t a() const { return a_; }
  uint64_t b() const { return b_; }

 private:
  uint64_t a_;
  uint64_t b_;
};

/// Deterministic pseudo-random stream used to draw hash functions (and by
/// other components needing cheap seeded randomness): splitmix64.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next();

  /// Uniform in [0, bound) for bound > 0 (modulo bias is irrelevant for the
  /// hashing use).
  uint64_t NextBelow(uint64_t bound) { return Next() % bound; }

  UniversalHashFunction NextHashFunction() {
    return UniversalHashFunction(Next(), Next());
  }

 private:
  uint64_t state_;
};

}  // namespace corrmine::hash

#endif  // CORRMINE_HASH_UNIVERSAL_HASH_H_
