#ifndef CORRMINE_HASH_FKS_PERFECT_HASH_H_
#define CORRMINE_HASH_FKS_PERFECT_HASH_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/status_or.h"
#include "hash/universal_hash.h"

namespace corrmine::hash {

/// Static two-level perfect hash table of Fredman, Komlos and Szemeredi [10]
/// — the structure the paper proposes for the CAND and NOTSIG itemset lists:
/// collision-free lookups in O(1) worst case, linear space.
///
/// Level one hashes n distinct keys into n buckets; each bucket of size b
/// gets a private collision-free table of size b^2 (re-drawing its hash
/// function until injective, expected O(1) retries). Expected total space is
/// O(n).
///
/// Maps each key to its index in the construction vector; callers keep
/// satellite data in a parallel array.
class FksPerfectHash {
 public:
  /// Builds over distinct keys. Fails on duplicates.
  static StatusOr<FksPerfectHash> Build(const std::vector<uint64_t>& keys,
                                        uint64_t seed = 0x5eedf00dULL);

  /// Index of `key` in the build vector, or nullopt if absent. Two probes.
  std::optional<size_t> Find(uint64_t key) const;

  bool Contains(uint64_t key) const { return Find(key).has_value(); }

  size_t size() const { return num_keys_; }

  /// Total slots allocated across second-level tables (space diagnostics).
  size_t slot_count() const { return slots_.size(); }

 private:
  struct Bucket {
    UniversalHashFunction hash;
    size_t offset = 0;  // First slot in slots_.
    size_t size = 0;    // Number of slots (square of bucket key count).
  };

  static constexpr size_t kEmpty = SIZE_MAX;

  FksPerfectHash() = default;

  size_t num_keys_ = 0;
  UniversalHashFunction top_hash_;
  std::vector<Bucket> buckets_;
  std::vector<uint64_t> slot_keys_;  // Key stored at each slot.
  std::vector<size_t> slots_;        // Value (input index) or kEmpty.
};

}  // namespace corrmine::hash

#endif  // CORRMINE_HASH_FKS_PERFECT_HASH_H_
