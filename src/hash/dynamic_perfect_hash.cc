#include "hash/dynamic_perfect_hash.h"

#include "common/logging.h"

namespace corrmine::hash {

namespace {
constexpr size_t kInitialBuckets = 8;
}  // namespace

DynamicPerfectHash::DynamicPerfectHash(uint64_t seed) : rng_(seed) {
  top_hash_ = rng_.NextHashFunction();
  buckets_.resize(kInitialBuckets);
  capacity_ = 2 * kInitialBuckets;
}

size_t DynamicPerfectHash::SubtableSize(size_t live_count) {
  if (live_count == 0) return 0;
  size_t sz = 2 * live_count * live_count;
  return sz < 4 ? 4 : sz;
}

std::optional<uint64_t> DynamicPerfectHash::Find(uint64_t key) const {
  const Bucket& bucket = buckets_[top_hash_(key, buckets_.size())];
  if (bucket.slots.empty()) return std::nullopt;
  const Slot& slot = bucket.slots[bucket.hash(key, bucket.slots.size())];
  if (slot.occupied && slot.key == key) return slot.value;
  return std::nullopt;
}

bool DynamicPerfectHash::Insert(uint64_t key, uint64_t value) {
  Bucket& bucket = buckets_[top_hash_(key, buckets_.size())];
  if (!bucket.slots.empty()) {
    Slot& slot = bucket.slots[bucket.hash(key, bucket.slots.size())];
    if (slot.occupied && slot.key == key) {
      slot.value = value;  // Overwrite.
      return false;
    }
    if (!slot.occupied) {
      slot = Slot{key, value, true};
      ++bucket.live;
      ++count_;
      if (count_ > capacity_) GlobalRebuild(2 * count_);
      return true;
    }
  }
  // Collision (or bucket not yet allocated): bucket-local rebuild.
  RebuildBucket(&bucket, key, value);
  ++count_;
  if (count_ > capacity_) GlobalRebuild(2 * count_);
  return true;
}

bool DynamicPerfectHash::Erase(uint64_t key) {
  Bucket& bucket = buckets_[top_hash_(key, buckets_.size())];
  if (bucket.slots.empty()) return false;
  Slot& slot = bucket.slots[bucket.hash(key, bucket.slots.size())];
  if (!slot.occupied || slot.key != key) return false;
  slot.occupied = false;
  --bucket.live;
  --count_;
  return true;
}

std::vector<std::pair<uint64_t, uint64_t>> DynamicPerfectHash::Entries()
    const {
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  entries.reserve(count_);
  for (const Bucket& bucket : buckets_) {
    for (const Slot& slot : bucket.slots) {
      if (slot.occupied) entries.emplace_back(slot.key, slot.value);
    }
  }
  return entries;
}

void DynamicPerfectHash::RebuildBucket(Bucket* bucket, uint64_t new_key,
                                       uint64_t new_value) {
  std::vector<Slot> live;
  live.reserve(bucket->live + 1);
  for (const Slot& slot : bucket->slots) {
    if (slot.occupied) live.push_back(slot);
  }
  live.push_back(Slot{new_key, new_value, true});

  size_t sz = SubtableSize(live.size());
  for (int attempt = 0;; ++attempt) {
    CORRMINE_CHECK(attempt < 1000)
        << "dynamic perfect hash: bucket rebuild failed to find an "
           "injective function";
    UniversalHashFunction h = rng_.NextHashFunction();
    std::vector<Slot> slots(sz);
    bool ok = true;
    for (const Slot& entry : live) {
      Slot& target = slots[h(entry.key, sz)];
      if (target.occupied) {
        ok = false;
        break;
      }
      target = entry;
    }
    if (ok) {
      bucket->hash = h;
      bucket->slots = std::move(slots);
      bucket->live = live.size();
      return;
    }
  }
}

void DynamicPerfectHash::GlobalRebuild(size_t new_capacity) {
  ++global_rebuilds_;
  std::vector<std::pair<uint64_t, uint64_t>> entries = Entries();
  size_t num_buckets = new_capacity < kInitialBuckets ? kInitialBuckets
                                                      : new_capacity;
  buckets_.assign(num_buckets, Bucket{});
  top_hash_ = rng_.NextHashFunction();
  capacity_ = 2 * num_buckets;
  count_ = 0;
  for (const auto& [key, value] : entries) {
    Insert(key, value);
  }
}

}  // namespace corrmine::hash
