#include "hash/fks_perfect_hash.h"

#include <algorithm>

namespace corrmine::hash {

StatusOr<FksPerfectHash> FksPerfectHash::Build(
    const std::vector<uint64_t>& keys, uint64_t seed) {
  FksPerfectHash table;
  table.num_keys_ = keys.size();
  if (keys.empty()) return table;

  {
    std::vector<uint64_t> sorted = keys;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      return Status::InvalidArgument("FKS build requires distinct keys");
    }
  }

  SplitMix64 rng(seed);
  const size_t n = keys.size();

  // Draw top-level functions until total second-level space is O(n):
  // sum of bucket-size squares <= 4n succeeds with probability >= 1/2.
  std::vector<std::vector<size_t>> bucket_members;
  for (int attempt = 0; attempt < 64; ++attempt) {
    table.top_hash_ = rng.NextHashFunction();
    bucket_members.assign(n, {});
    for (size_t i = 0; i < n; ++i) {
      bucket_members[table.top_hash_(keys[i], n)].push_back(i);
    }
    size_t space = 0;
    for (const auto& members : bucket_members) {
      space += members.size() * members.size();
    }
    if (space <= 4 * n) break;
    if (attempt == 63) {
      return Status::Internal("FKS top-level hashing failed to balance");
    }
  }

  table.buckets_.resize(n);
  size_t total_slots = 0;
  for (size_t b = 0; b < n; ++b) {
    size_t count = bucket_members[b].size();
    table.buckets_[b].offset = total_slots;
    table.buckets_[b].size = count * count;
    total_slots += count * count;
  }
  table.slots_.assign(total_slots, kEmpty);
  table.slot_keys_.assign(total_slots, 0);

  // Per-bucket: redraw until injective over the bucket's keys.
  for (size_t b = 0; b < n; ++b) {
    const std::vector<size_t>& members = bucket_members[b];
    if (members.empty()) continue;
    Bucket& bucket = table.buckets_[b];
    for (int attempt = 0;; ++attempt) {
      if (attempt >= 1000) {
        return Status::Internal("FKS bucket hashing failed to be injective");
      }
      bucket.hash = rng.NextHashFunction();
      bool ok = true;
      std::fill(table.slots_.begin() + bucket.offset,
                table.slots_.begin() + bucket.offset + bucket.size, kEmpty);
      for (size_t idx : members) {
        size_t slot = bucket.offset + bucket.hash(keys[idx], bucket.size);
        if (table.slots_[slot] != kEmpty) {
          ok = false;
          break;
        }
        table.slots_[slot] = idx;
        table.slot_keys_[slot] = keys[idx];
      }
      if (ok) break;
    }
  }
  return table;
}

std::optional<size_t> FksPerfectHash::Find(uint64_t key) const {
  if (num_keys_ == 0) return std::nullopt;
  const Bucket& bucket = buckets_[top_hash_(key, buckets_.size())];
  if (bucket.size == 0) return std::nullopt;
  size_t slot = bucket.offset + bucket.hash(key, bucket.size);
  if (slots_[slot] == kEmpty || slot_keys_[slot] != key) return std::nullopt;
  return slots_[slot];
}

}  // namespace corrmine::hash
