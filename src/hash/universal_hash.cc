#include "hash/universal_hash.h"

#include "common/logging.h"

namespace corrmine::hash {

namespace {

// (x * y) mod (2^61 - 1) via 128-bit intermediate.
uint64_t MulModPrime(uint64_t x, uint64_t y) {
  constexpr uint64_t p = UniversalHashFunction::kPrime;
  unsigned __int128 prod = static_cast<unsigned __int128>(x) * y;
  // Fold the high bits: 2^61 ≡ 1 (mod p).
  uint64_t lo = static_cast<uint64_t>(prod & p);
  uint64_t hi = static_cast<uint64_t>(prod >> 61);
  uint64_t sum = lo + hi;
  if (sum >= p) sum -= p;
  return sum;
}

}  // namespace

uint64_t UniversalHashFunction::operator()(uint64_t key,
                                           uint64_t range) const {
  CORRMINE_CHECK(range > 0) << "hash range must be positive";
  uint64_t reduced = key % kPrime;
  uint64_t h = MulModPrime(a_, reduced) + b_;
  if (h >= kPrime) h -= kPrime;
  return h % range;
}

uint64_t SplitMix64::Next() {
  state_ += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace corrmine::hash
