#ifndef CORRMINE_IO_COLUMN_STORE_H_
#define CORRMINE_IO_COLUMN_STORE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status_or.h"
#include "itemset/counting_column.h"

namespace corrmine::io {

/// CCS — the column-shard file format (DESIGN.md §12): one ColumnSource
/// (per-item hybrid counting columns over one row space) serialized
/// container-at-a-time for mmap-backed lazy loading. The fourth magic
/// byte is the format version; both are readable by MappedColumnShard:
///
///   "CCS1" / "CCS2"              4-byte magic (version in last byte)
///   payload_base                 8-byte LE file offset (4096-aligned)
///   varint num_rows
///   varint num_columns
///   per column:  varint num_containers
///     per container (v1): varint key · 1-byte kind · varint count
///                    · varint rel_offset (from payload_base, 8-aligned)
///                    · varint payload_bytes
///     per container (v2): varint key · 1-byte kind · 1-byte encoding
///                    · varint count · varint rel_offset · varint bytes
///   zero padding to payload_base
///   payload section              container payloads
///
/// v2 adds a per-container payload encoding, picked by min-byte rule at
/// write time:
///
///   0  raw           u16 LE array offsets / run pairs, u64 dense words
///   1  delta-varint  EncodeU16DeltaVarint of the u16 payload (arrays:
///                    first offset + gap varints; runs: start deltas +
///                    length varints). Never used for dense words.
///
/// The directory is tiny and parsed eagerly at open; raw payloads are
/// only ever touched through the container views handed to
/// CountingColumn, so the kernel faults pages in at access granularity.
/// Delta-varint payloads decode lazily: the first column(item) access
/// materializes that column's compressed containers (thread-safe via
/// std::once_flag — pass-2 morsels hit one shard from many threads), so
/// an unqueried column still costs nothing beyond its directory entry.
/// payload_base is fixed-width (not varint) so the directory can be
/// sized before the base is known. Offsets are 8-byte aligned: every raw
/// payload type (uint16 arrays/runs, uint64 dense words) reads aligned.
inline constexpr char kColumnShardMagic[4] = {'C', 'C', 'S', '1'};
inline constexpr char kColumnShardMagicV2[4] = {'C', 'C', 'S', '2'};

/// Payload-section alignment (one page), and per-payload alignment.
inline constexpr size_t kColumnShardPageAlign = 4096;
inline constexpr size_t kColumnShardPayloadAlign = 8;

/// Per-container payload encodings (v2 directory byte).
inline constexpr uint8_t kColumnShardEncodingRaw = 0;
inline constexpr uint8_t kColumnShardEncodingDeltaVarint = 1;

struct ColumnShardWriteOptions {
  /// 1 writes the legacy always-raw format; 2 (default) picks the
  /// min-byte encoding per container.
  int format_version = 2;
};

/// Byte accounting of one shard write (feeds column.spill_* gauges).
struct ColumnShardWriteStats {
  uint64_t file_bytes = 0;     // whole file, header + padding + payloads
  uint64_t payload_bytes = 0;  // encoded payload bytes actually written
  uint64_t raw_payload_bytes = 0;  // what encoding-0 payloads would cost
};

/// Serializes every column of `source` to `path` (whole-file write;
/// callers must treat a failed write as leaving a partial file behind).
/// Columns are written in item order, containers in key order.
Status WriteColumnShardFile(const ColumnSource& source,
                            const std::string& path,
                            const ColumnShardWriteOptions& options = {},
                            ColumnShardWriteStats* stats = nullptr);

/// A CCS file (v1 or v2) mapped read-only; implements ColumnSource over
/// view-backed columns whose raw payloads live in the mapping and whose
/// delta-varint payloads decode on first access. The mapping (and
/// therefore every column handed out) lives until destruction; resident
/// cost is whatever pages counting actually touched, and munmap returns
/// them — the out-of-core miner's map → count → unmap cycle keeps its
/// high-water mark near one partition.
class MappedColumnShard : public ColumnSource {
 public:
  static StatusOr<std::unique_ptr<MappedColumnShard>> Open(
      const std::string& path);

  ~MappedColumnShard() override;

  MappedColumnShard(const MappedColumnShard&) = delete;
  MappedColumnShard& operator=(const MappedColumnShard&) = delete;

  size_t num_rows() const override { return num_rows_; }
  ItemId num_columns() const override {
    return static_cast<ItemId>(columns_.size());
  }
  const CountingColumn& column(ItemId item) const override;

  size_t file_bytes() const { return map_len_; }
  int format_version() const { return format_version_; }

 private:
  /// One directory record plus its payload location in the mapping.
  struct ContainerEntry {
    uint32_t key = 0;
    CountingColumn::ContainerKind kind = CountingColumn::ContainerKind::kArray;
    uint8_t encoding = kColumnShardEncodingRaw;
    uint32_t count = 0;
    const uint8_t* payload = nullptr;
    size_t payload_bytes = 0;
  };

  /// One column, materialized at most once. unique_ptr because
  /// std::once_flag is immovable. `decoded` owns the u16 buffers for
  /// delta-varint containers; raw containers view the mapping directly.
  struct LazyColumn {
    std::vector<ContainerEntry> entries;
    std::once_flag once;
    std::vector<std::vector<uint16_t>> decoded;
    CountingColumn column;
  };

  MappedColumnShard() = default;

  void* map_ = nullptr;
  size_t map_len_ = 0;
  size_t num_rows_ = 0;
  int format_version_ = 1;
  std::vector<std::unique_ptr<LazyColumn>> columns_;
  CountingColumn empty_;  // items past the stored range
};

}  // namespace corrmine::io

#endif  // CORRMINE_IO_COLUMN_STORE_H_
