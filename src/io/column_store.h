#ifndef CORRMINE_IO_COLUMN_STORE_H_
#define CORRMINE_IO_COLUMN_STORE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status_or.h"
#include "itemset/counting_column.h"

namespace corrmine::io {

/// CCS1 — the column-shard file format (DESIGN.md §12): one ColumnSource
/// (per-item hybrid counting columns over one row space) serialized
/// container-at-a-time for mmap-backed lazy loading.
///
///   "CCS1"                       4-byte magic
///   payload_base                 8-byte LE file offset (4096-aligned)
///   varint num_rows
///   varint num_columns
///   per column:  varint num_containers
///     per container: varint key · 1-byte kind · varint count
///                    · varint rel_offset (from payload_base, 8-aligned)
///                    · varint payload_bytes
///   zero padding to payload_base
///   payload section              raw container payloads
///
/// The directory is tiny and parsed eagerly at open; payloads are only
/// ever touched through the container views handed to CountingColumn, so
/// the kernel faults pages in at access granularity — a mapped shard
/// costs directory-size resident bytes until it is actually counted
/// against. payload_base is fixed-width (not varint) so the directory can
/// be sized before the base is known. Offsets are 8-byte aligned: every
/// payload type (uint16 arrays/runs, uint64 dense words) reads aligned.
inline constexpr char kColumnShardMagic[4] = {'C', 'C', 'S', '1'};

/// Payload-section alignment (one page), and per-payload alignment.
inline constexpr size_t kColumnShardPageAlign = 4096;
inline constexpr size_t kColumnShardPayloadAlign = 8;

/// Serializes every column of `source` to `path` (atomic whole-file
/// write). Columns are written in item order, containers in key order.
Status WriteColumnShardFile(const ColumnSource& source,
                            const std::string& path);

/// A CCS1 file mapped read-only; implements ColumnSource over view-backed
/// columns whose payloads live in the mapping. The mapping (and therefore
/// every column handed out) lives until destruction; resident cost is
/// whatever pages counting actually touched, and munmap returns them —
/// the out-of-core miner's map → count → unmap cycle keeps its high-water
/// mark near one partition.
class MappedColumnShard : public ColumnSource {
 public:
  static StatusOr<std::unique_ptr<MappedColumnShard>> Open(
      const std::string& path);

  ~MappedColumnShard() override;

  MappedColumnShard(const MappedColumnShard&) = delete;
  MappedColumnShard& operator=(const MappedColumnShard&) = delete;

  size_t num_rows() const override { return num_rows_; }
  ItemId num_columns() const override {
    return static_cast<ItemId>(columns_.size());
  }
  const CountingColumn& column(ItemId item) const override;

  size_t file_bytes() const { return map_len_; }

 private:
  MappedColumnShard() = default;

  void* map_ = nullptr;
  size_t map_len_ = 0;
  size_t num_rows_ = 0;
  std::vector<CountingColumn> columns_;  // view-backed into map_
  CountingColumn empty_;                 // items past the stored range
};

}  // namespace corrmine::io

#endif  // CORRMINE_IO_COLUMN_STORE_H_
