#ifndef CORRMINE_IO_STATS_JSON_H_
#define CORRMINE_IO_STATS_JSON_H_

#include <string>

#include "common/status.h"
#include "core/chi_squared_miner.h"
#include "itemset/count_provider.h"

namespace corrmine {

class MetricsRegistry;

/// Machine-readable run statistics ("corrmine-stats-v1", DESIGN.md §6).
///
/// The report is split into two sections with different reproducibility
/// guarantees:
///
///  - "deterministic": derived purely from the mining result and the
///    count-provider cache accounting. Byte-identical for the same input,
///    options, and cache configuration, *regardless of thread count* —
///    compare these lines directly in tests and CI.
///  - "runtime": a MetricsRegistry snapshot (timings, pool activity,
///    per-process counter totals). Informative, never stable across runs.
///
/// A small top-level "kernel" object ({"name","requested"}) records which
/// counting kernel (DESIGN.md §9) served the run. It is machine-dependent
/// and therefore deliberately outside "deterministic"; statsdiff treats it
/// as report-only and rejects documents where kernel info appears inside
/// the deterministic section.
///
/// Two more non-deterministic top-level sections follow the same contract
/// (present in every document, report-only for statsdiff, rejected inside
/// "deterministic"):
///  - "profile": the profiler's PMU availability + per-phase counter
///    attribution + sampling accounting (DESIGN.md §13), structurally
///    checked by `statsdiff --validate-profile`.
///  - "trace": {"dropped_events": N} — trace-ring overwrite count, the
///    signal that a Chrome trace export is missing its oldest spans.
///
/// The deterministic object is rendered onto a single line so a script (or
/// a CMake test) can `grep '"deterministic"'` two reports and compare with
/// string equality.

/// Renders the deterministic section as one compact JSON object line:
///   {"schema":"corrmine-stats-v1","rules":R,"levels":[{"level":2,
///    "possible":P,"cand":C,"discards":D,"chi2_tests":T,"masked_cells":M,
///    "sig":S,"notsig":N},...],"cache":{...}|null}
/// `cache` is null when mining ran without a CachedCountProvider. The cache
/// counters are deterministic while `overflow_builds` is 0 (see
/// CachedCountProvider::CacheStats).
std::string RenderDeterministicStats(
    const MiningResult& result,
    const CachedCountProvider::CacheStats* cache_stats);

/// Renders the full stats document (multi-line, human-skimmable):
///   {
///     "schema": "corrmine-stats-v1",
///     "deterministic": {...one line...},
///     "kernel": {...},
///     "profile": {...one line, profiler snapshot...},
///     "trace": {"dropped_events": N},
///     "runtime": {...one line, registry snapshot...}
///   }
/// When metrics are compiled out (CORRMINE_METRICS=OFF) the runtime section
/// reports zeros; the deterministic section is unaffected.
std::string RenderStatsJson(const MiningResult& result,
                            const CachedCountProvider::CacheStats* cache_stats,
                            const MetricsRegistry& registry);

/// Writes `json` to `path` (overwriting), with a trailing newline.
Status WriteStatsJson(const std::string& path, const std::string& json);

}  // namespace corrmine

#endif  // CORRMINE_IO_STATS_JSON_H_
