#include "io/csv.h"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "common/string_util.h"

namespace corrmine::io {

namespace {

std::vector<std::string> SplitCsvLine(std::string_view line) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (start <= line.size()) {
    size_t comma = line.find(',', start);
    if (comma == std::string_view::npos) comma = line.size();
    fields.emplace_back(TrimString(line.substr(start, comma - start)));
    start = comma + 1;
  }
  return fields;
}

}  // namespace

StatusOr<CategoricalDatabase> ParseCategoricalCsv(const std::string& text) {
  std::istringstream stream(text);
  std::string line;

  // Header.
  std::vector<std::string> header;
  while (std::getline(stream, line)) {
    std::string_view trimmed = TrimString(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    header = SplitCsvLine(trimmed);
    break;
  }
  if (header.empty()) {
    return Status::InvalidArgument("CSV has no header line");
  }
  for (const std::string& name : header) {
    if (name.empty()) {
      return Status::Corruption("empty attribute name in CSV header");
    }
  }

  // Rows: collect raw labels first, building per-column category maps.
  const size_t num_attrs = header.size();
  std::vector<std::unordered_map<std::string, uint8_t>> label_maps(
      num_attrs);
  std::vector<std::vector<std::string>> label_lists(num_attrs);
  std::vector<std::vector<uint8_t>> rows;
  size_t line_no = 1;
  while (std::getline(stream, line)) {
    ++line_no;
    std::string_view trimmed = TrimString(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    std::vector<std::string> fields = SplitCsvLine(trimmed);
    if (fields.size() != num_attrs) {
      return Status::Corruption("line " + std::to_string(line_no) + ": " +
                                std::to_string(fields.size()) +
                                " fields, header has " +
                                std::to_string(num_attrs));
    }
    std::vector<uint8_t> row(num_attrs);
    for (size_t a = 0; a < num_attrs; ++a) {
      if (fields[a].empty()) {
        return Status::Corruption("line " + std::to_string(line_no) +
                                  ": empty field for attribute '" +
                                  header[a] + "'");
      }
      auto [it, inserted] = label_maps[a].emplace(
          fields[a], static_cast<uint8_t>(label_lists[a].size()));
      if (inserted) {
        if (label_lists[a].size() >= 255) {
          return Status::OutOfRange("attribute '" + header[a] +
                                    "' exceeds 255 categories");
        }
        label_lists[a].push_back(fields[a]);
      }
      row[a] = it->second;
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) {
    return Status::InvalidArgument("CSV has no data rows");
  }

  std::vector<CategoricalAttribute> attributes;
  attributes.reserve(num_attrs);
  for (size_t a = 0; a < num_attrs; ++a) {
    if (label_lists[a].size() < 2) {
      return Status::FailedPrecondition(
          "attribute '" + header[a] +
          "' has a single category; nothing to test");
    }
    attributes.push_back(
        CategoricalAttribute{header[a], std::move(label_lists[a])});
  }
  CORRMINE_ASSIGN_OR_RETURN(CategoricalDatabase db,
                            CategoricalDatabase::Create(std::move(attributes)));
  for (auto& row : rows) {
    CORRMINE_RETURN_NOT_OK(db.AddRow(std::move(row)));
  }
  return db;
}

StatusOr<CategoricalDatabase> ReadCategoricalCsv(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::IOError("cannot open " + path);
  }
  std::ostringstream content;
  content << file.rdbuf();
  if (file.bad()) {
    return Status::IOError("error reading " + path);
  }
  return ParseCategoricalCsv(content.str());
}

Status WriteCategoricalCsv(const CategoricalDatabase& db,
                           const std::string& path) {
  std::ofstream file(path);
  if (!file) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  for (int a = 0; a < db.num_attributes(); ++a) {
    if (a > 0) file << ',';
    file << db.attribute(a).name;
  }
  file << '\n';
  for (size_t row = 0; row < db.num_rows(); ++row) {
    for (int a = 0; a < db.num_attributes(); ++a) {
      if (a > 0) file << ',';
      file << db.attribute(a).categories[db.value(row, a)];
    }
    file << '\n';
  }
  file.flush();
  if (!file) {
    return Status::IOError("error writing " + path);
  }
  return Status::OK();
}

}  // namespace corrmine::io
