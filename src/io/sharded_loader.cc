#include "io/sharded_loader.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "io/binary_io.h"
#include "io/chunked_io.h"
#include "io/format_detect.h"
#include "io/transaction_io.h"

namespace corrmine::io {

namespace {

/// Global item space of a (possibly multi-segment) binary file: the max of
/// the per-segment headers, floored to 1 so an empty file still yields a
/// valid database.
ItemId ChunkedItemSpace(const std::vector<TransactionChunkInfo>& chunks) {
  ItemId num_items = 1;
  for (const TransactionChunkInfo& chunk : chunks) {
    num_items = std::max(num_items, chunk.num_items);
  }
  return num_items;
}

StatusOr<ShardedTransactionDatabase> LoadBinarySharded(
    const std::string& path, size_t num_shards) {
  CORRMINE_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  // The segment headers carry the item spaces, so one cheap header walk
  // fixes the global space and records then stream straight into their
  // shards — no intermediate database. Multi-segment files (delta chunks
  // appended by `ingest`) load as the concatenation of their segments.
  CORRMINE_ASSIGN_OR_RETURN(std::vector<TransactionChunkInfo> chunks,
                            ListTransactionChunks(bytes));
  ShardedTransactionDatabase db(ChunkedItemSpace(chunks), num_shards);
  ItemId num_items = 0;
  CORRMINE_RETURN_NOT_OK(DecodeChunkedTransactionsInto(
      bytes, &num_items, nullptr,
      [&](std::vector<ItemId> basket) -> Status {
        return db.AddBasket(std::move(basket));
      }));
  return db;
}

StatusOr<TransactionDatabase> LoadBinaryMonolithic(const std::string& path) {
  CORRMINE_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  CORRMINE_ASSIGN_OR_RETURN(std::vector<TransactionChunkInfo> chunks,
                            ListTransactionChunks(bytes));
  TransactionDatabase db(ChunkedItemSpace(chunks));
  ItemId num_items = 0;
  CORRMINE_RETURN_NOT_OK(DecodeChunkedTransactionsInto(
      bytes, &num_items, nullptr,
      [&](std::vector<ItemId> basket) -> Status {
        return db.AddBasket(std::move(basket));
      }));
  return db;
}

StatusOr<ShardedTransactionDatabase> LoadTextSharded(
    const std::string& path, size_t num_shards, ItemId num_items_hint) {
  std::ifstream file(path);
  if (!file) {
    return Status::IOError("cannot open " + path);
  }
  // The text format reveals its item space only at EOF, so the raw id
  // vectors are buffered once (the same storage the shards will own) and
  // handed over after the maximum id is known.
  std::vector<std::vector<ItemId>> baskets;
  ItemId max_item = 0;
  bool any_item = false;
  std::string line;
  size_t line_no = 0;
  while (std::getline(file, line)) {
    ++line_no;
    CORRMINE_ASSIGN_OR_RETURN(std::optional<std::vector<ItemId>> basket,
                              ParseTransactionLine(line, line_no));
    if (!basket.has_value()) continue;
    for (ItemId id : *basket) {
      max_item = std::max(max_item, id);
      any_item = true;
    }
    baskets.push_back(std::move(*basket));
  }
  if (file.bad()) {
    return Status::IOError("error reading " + path);
  }
  ItemId num_items = num_items_hint;
  if (any_item && max_item + 1 > num_items) num_items = max_item + 1;
  if (num_items == 0) num_items = 1;
  ShardedTransactionDatabase db(num_items, num_shards);
  for (std::vector<ItemId>& basket : baskets) {
    CORRMINE_RETURN_NOT_OK(db.AddBasket(std::move(basket)));
  }
  return db;
}

}  // namespace

StatusOr<TransactionDatabase> LoadTransactionFile(const std::string& path,
                                                  ItemId num_items_hint) {
  CORRMINE_ASSIGN_OR_RETURN(TransactionFileFormat format,
                            DetectTransactionFileFormat(path));
  if (format == TransactionFileFormat::kBinary) {
    return LoadBinaryMonolithic(path);
  }
  return ReadTransactionFile(path, num_items_hint);
}

StatusOr<ShardedTransactionDatabase> LoadTransactionFileSharded(
    const std::string& path, size_t num_shards, ItemId num_items_hint) {
  num_shards = std::max<size_t>(num_shards, 1);
  CORRMINE_ASSIGN_OR_RETURN(TransactionFileFormat format,
                            DetectTransactionFileFormat(path));
  if (format == TransactionFileFormat::kBinary) {
    return LoadBinarySharded(path, num_shards);
  }
  return LoadTextSharded(path, num_shards, num_items_hint);
}

}  // namespace corrmine::io
