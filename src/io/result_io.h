#ifndef CORRMINE_IO_RESULT_IO_H_
#define CORRMINE_IO_RESULT_IO_H_

#include <string>

#include "common/status_or.h"
#include "core/chi_squared_miner.h"

namespace corrmine::io {

/// Serializes a mining result to a line-oriented text format so downstream
/// tooling (and the CLI's --out flag) can consume it without this library:
///
///   # corrmine result v1
///   level <level> <possible> <candidates> <discards> <sig> <notsig>
///   rule <chi2> <p_value> <dof> <major_mask> <major_interest> <items...>
///
/// Lines starting with '#' are comments; fields are space-separated.
std::string SerializeMiningResult(const MiningResult& result);

/// Writes SerializeMiningResult's output to a file.
Status WriteMiningResult(const MiningResult& result, const std::string& path);

/// Parses the format back. Only the fields present in the format are
/// recovered (cell observed/expected details of the major-dependence cell
/// are not round-tripped; statistic, p-value, masks and itemsets are).
StatusOr<MiningResult> ParseMiningResult(const std::string& text);

/// Reads and parses a result file.
StatusOr<MiningResult> ReadMiningResult(const std::string& path);

}  // namespace corrmine::io

#endif  // CORRMINE_IO_RESULT_IO_H_
