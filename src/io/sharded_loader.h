#ifndef CORRMINE_IO_SHARDED_LOADER_H_
#define CORRMINE_IO_SHARDED_LOADER_H_

#include <string>

#include "common/status_or.h"
#include "itemset/sharded_database.h"
#include "itemset/transaction_database.h"

namespace corrmine::io {

/// Unified load path: auto-detects the on-disk format (CMB1 binary vs.
/// text, io/format_detect.h) and reads `path` into a monolithic database.
/// `num_items_hint` floors the item space for the text format; the binary
/// header is authoritative for its own item space.
StatusOr<TransactionDatabase> LoadTransactionFile(const std::string& path,
                                                  ItemId num_items_hint = 0);

/// Chunked reader: auto-detects the format and streams `path` directly into
/// a K-shard database, round-robin by record order, without materializing
/// the monolithic row store in between. Binary files stream record-by-record
/// (the header fixes the item space upfront); text files buffer raw id
/// vectors until the maximum id is known, then distribute — either way
/// exactly one copy of the basket data is ever alive. `num_shards` follows
/// the ResolveShardCount convention (0 = one per hardware thread).
StatusOr<ShardedTransactionDatabase> LoadTransactionFileSharded(
    const std::string& path, size_t num_shards, ItemId num_items_hint = 0);

}  // namespace corrmine::io

#endif  // CORRMINE_IO_SHARDED_LOADER_H_
