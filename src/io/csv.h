#ifndef CORRMINE_IO_CSV_H_
#define CORRMINE_IO_CSV_H_

#include <string>

#include "common/status_or.h"
#include "itemset/categorical_database.h"

namespace corrmine::io {

/// Reads categorical data from a simple CSV dialect: first line is the
/// header (attribute names), subsequent lines are rows of category labels.
/// Fields are comma-separated; surrounding whitespace is trimmed; no
/// quoting (labels must not contain commas). Each attribute's category set
/// is the distinct labels seen in its column, in first-appearance order.
/// Empty fields and ragged rows are errors; attributes with a single
/// distinct value are rejected (no dependency is testable on them).
StatusOr<CategoricalDatabase> ParseCategoricalCsv(const std::string& text);

/// File variant of ParseCategoricalCsv.
StatusOr<CategoricalDatabase> ReadCategoricalCsv(const std::string& path);

/// Writes a categorical database back out in the same dialect.
Status WriteCategoricalCsv(const CategoricalDatabase& db,
                           const std::string& path);

}  // namespace corrmine::io

#endif  // CORRMINE_IO_CSV_H_
