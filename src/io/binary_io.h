#ifndef CORRMINE_IO_BINARY_IO_H_
#define CORRMINE_IO_BINARY_IO_H_

#include <functional>
#include <string>

#include "common/status_or.h"
#include "itemset/transaction_database.h"

namespace corrmine::io {

/// Compact binary basket format ("CMB1"): a fixed header followed by one
/// varint-encoded record per basket. Within a basket, item ids are
/// delta-encoded (baskets are sorted, so deltas are small) and LEB128
/// varint packed — typically 1–2 bytes per (basket, item) pair versus 4–8
/// in the text format. Integrity is guarded by the header magic, explicit
/// counts, and strict bounds checks on read.
///
/// Layout (all varints are unsigned LEB128):
///   magic "CMB1" (4 bytes)
///   varint num_items
///   varint num_baskets
///   per basket: varint size, then `size` varint deltas
///     (first delta = first id, subsequent = id - previous id, so every
///      delta after the first is >= 1).
Status WriteBinaryTransactionFile(const TransactionDatabase& db,
                                  const std::string& path);

StatusOr<TransactionDatabase> ReadBinaryTransactionFile(
    const std::string& path);

/// In-memory codec (exposed for tests and tooling).
std::string EncodeBinaryTransactions(const TransactionDatabase& db);
StatusOr<TransactionDatabase> DecodeBinaryTransactions(
    const std::string& bytes);

/// Streaming decode: validates the header, stores the item-space size into
/// `*num_items`, then invokes `sink` once per basket in file order — the
/// primitive behind both DecodeBinaryTransactions and the sharded loader,
/// which routes records into shards without a monolithic intermediate.
/// `*num_items` is set before the first sink call. The first non-OK status
/// from `sink` aborts the decode.
Status DecodeBinaryTransactionsInto(
    const std::string& bytes, ItemId* num_items,
    const std::function<Status(std::vector<ItemId>)>& sink);

/// Decodes one CMB1 segment starting at `*pos` (magic included), invoking
/// `sink` per basket, and leaves `*pos` on the first byte after the segment
/// — the primitive the chunked append format (io/chunked_io.h) iterates.
/// Unlike DecodeBinaryTransactionsInto it does NOT reject trailing bytes;
/// the caller decides whether more segments follow. `sink` may be null to
/// skip over a segment (header validation and bounds checks still run).
Status DecodeBinaryTransactionSegment(
    const std::string& bytes, size_t* pos, ItemId* num_items,
    uint64_t* num_baskets,
    const std::function<Status(std::vector<ItemId>)>& sink);

/// Whole-file byte helpers shared by the binary codecs.
StatusOr<std::string> ReadFileToString(const std::string& path);
Status WriteStringToFile(const std::string& bytes, const std::string& path);

/// LEB128 varint primitives, shared with the other binary codecs (chunked
/// transaction files, border-state snapshots).
void AppendVarint(std::string* out, uint64_t value);
/// Reads one varint at `*pos`, advancing it. Errors on truncation or
/// values wider than 64 bits.
StatusOr<uint64_t> ReadVarint(const std::string& bytes, size_t* pos);

/// True when `path` starts with the binary magic. Thin wrapper over
/// DetectTransactionFileFormat (io/format_detect.h), kept for callers that
/// only care about this one format.
bool LooksLikeBinaryTransactionFile(const std::string& path);

}  // namespace corrmine::io

#endif  // CORRMINE_IO_BINARY_IO_H_
