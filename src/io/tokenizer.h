#ifndef CORRMINE_IO_TOKENIZER_H_
#define CORRMINE_IO_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status_or.h"
#include "itemset/transaction_database.h"

namespace corrmine::io {

/// Splits raw text into words using the paper's Section 5.2 definition: "a
/// word was defined to be any consecutive sequence of alphabetic
/// characters" — so a possessive "s" is its own word and numbers are
/// ignored. Words are lower-cased.
std::vector<std::string> TokenizeWords(std::string_view text);

struct CorpusOptions {
  /// Documents with fewer word tokens are dropped (the paper filtered
  /// posts under 200 words to keep only real articles).
  size_t min_words_per_document = 0;
  /// Words occurring in fewer than this fraction of (kept) documents are
  /// pruned from the vocabulary — the paper's 10% document-frequency cut.
  double min_doc_frequency = 0.0;
};

/// Builds basket data from raw documents: each kept document becomes one
/// basket whose items are its distinct surviving words; the database's
/// dictionary maps ids back to words. Reproduces the paper's text
/// preprocessing pipeline end to end.
StatusOr<TransactionDatabase> BuildCorpus(
    const std::vector<std::string>& documents,
    const CorpusOptions& options = {});

}  // namespace corrmine::io

#endif  // CORRMINE_IO_TOKENIZER_H_
