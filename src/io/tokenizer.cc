#include "io/tokenizer.h"

#include <algorithm>
#include <cctype>
#include <unordered_map>

namespace corrmine::io {

std::vector<std::string> TokenizeWords(std::string_view text) {
  std::vector<std::string> words;
  std::string current;
  for (char c : text) {
    if (std::isalpha(static_cast<unsigned char>(c))) {
      current += static_cast<char>(
          std::tolower(static_cast<unsigned char>(c)));
    } else if (!current.empty()) {
      words.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) words.push_back(std::move(current));
  return words;
}

StatusOr<TransactionDatabase> BuildCorpus(
    const std::vector<std::string>& documents,
    const CorpusOptions& options) {
  if (!(options.min_doc_frequency >= 0.0 &&
        options.min_doc_frequency <= 1.0)) {
    return Status::InvalidArgument("min_doc_frequency must be in [0,1]");
  }

  // Pass 1: tokenize, filter short documents, accumulate document
  // frequency over distinct words per document.
  std::vector<std::vector<std::string>> kept_docs;
  std::unordered_map<std::string, uint32_t> doc_freq;
  for (const std::string& doc : documents) {
    std::vector<std::string> words = TokenizeWords(doc);
    if (words.size() < options.min_words_per_document) continue;
    std::vector<std::string> distinct = words;
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()),
                   distinct.end());
    for (const std::string& word : distinct) ++doc_freq[word];
    kept_docs.push_back(std::move(distinct));
  }
  if (kept_docs.empty()) {
    return Status::FailedPrecondition(
        "no documents survive the length filter");
  }

  // Pass 2: prune by document frequency, intern survivors.
  double min_docs =
      options.min_doc_frequency * static_cast<double>(kept_docs.size());
  ItemDictionary dict;
  for (const auto& doc : kept_docs) {
    for (const std::string& word : doc) {
      if (static_cast<double>(doc_freq[word]) >= min_docs) {
        dict.GetOrAdd(word);
      }
    }
  }
  if (dict.size() == 0) {
    return Status::FailedPrecondition(
        "document-frequency pruning removed the whole vocabulary");
  }

  TransactionDatabase db(static_cast<ItemId>(dict.size()));
  db.dictionary() = std::move(dict);
  for (const auto& doc : kept_docs) {
    std::vector<ItemId> basket;
    for (const std::string& word : doc) {
      auto id = db.dictionary().Get(word);
      if (id.ok()) basket.push_back(*id);
    }
    CORRMINE_RETURN_NOT_OK(db.AddBasket(std::move(basket)));
  }
  return db;
}

}  // namespace corrmine::io
