#ifndef CORRMINE_IO_STREAM_READER_H_
#define CORRMINE_IO_STREAM_READER_H_

#include <functional>
#include <string>

#include "common/status_or.h"
#include "itemset/transaction_database.h"

namespace corrmine::io {

/// Streams a transaction file basket-by-basket without ever materializing
/// the database — the entry point the out-of-core spill pass reads
/// through, so resident memory stays O(one basket + read buffer) no
/// matter the file size. Formats are sniffed like every other loader
/// (io/format_detect.h): text files are parsed line-by-line; CMB1 binary
/// files — including chunked multi-segment tails from `ingest --append` —
/// are decoded through a bounded rolling window.
///
/// `num_items` receives the item-space size on success: the maximum of
/// the per-segment header values for binary files (authoritative — it may
/// exceed the largest id actually present, and the in-memory loaders
/// honor it the same way), or max-id+1 for text. `sink` is invoked once
/// per basket in file order; a non-OK sink status aborts the stream.
Status StreamTransactionFile(
    const std::string& path, ItemId* num_items,
    const std::function<Status(std::vector<ItemId>)>& sink);

}  // namespace corrmine::io

#endif  // CORRMINE_IO_STREAM_READER_H_
