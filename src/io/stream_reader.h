#ifndef CORRMINE_IO_STREAM_READER_H_
#define CORRMINE_IO_STREAM_READER_H_

#include <functional>
#include <string>

#include "common/status_or.h"
#include "itemset/transaction_database.h"

namespace corrmine::io {

/// Streams a transaction file basket-by-basket without ever materializing
/// the database — the entry point the out-of-core spill pass reads
/// through, so resident memory stays O(one basket + read buffer) no
/// matter the file size. Formats are sniffed like every other loader
/// (io/format_detect.h): text files are parsed line-by-line; CMB1 binary
/// files — including chunked multi-segment tails from `ingest --append` —
/// are decoded through a bounded rolling window.
///
/// `num_items` receives the item-space size on success: the maximum of
/// the per-segment header values for binary files (authoritative — it may
/// exceed the largest id actually present, and the in-memory loaders
/// honor it the same way), or max-id+1 for text. `sink` is invoked once
/// per basket in file order; a non-OK sink status aborts the stream.
///
/// `bytes_consumed` (optional) is kept current before every sink call:
/// input bytes decoded so far, within one read-buffer refill for binary
/// files and exact for text. Paired with the file size it gives the
/// pipelined out-of-core spill pass a deterministic progress fraction —
/// a pure function of the input prefix, never of wall-clock or threads.
Status StreamTransactionFile(
    const std::string& path, ItemId* num_items,
    const std::function<Status(std::vector<ItemId>)>& sink,
    uint64_t* bytes_consumed = nullptr);

}  // namespace corrmine::io

#endif  // CORRMINE_IO_STREAM_READER_H_
