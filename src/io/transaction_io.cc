#include "io/transaction_io.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "common/string_util.h"

namespace corrmine::io {

namespace {

struct ParsedLines {
  std::vector<std::vector<ItemId>> baskets;
  ItemId max_item = 0;
  bool any_item = false;
};

StatusOr<ParsedLines> ParseIdLines(const std::string& text) {
  ParsedLines parsed;
  std::istringstream stream(text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    CORRMINE_ASSIGN_OR_RETURN(std::optional<std::vector<ItemId>> basket,
                              ParseTransactionLine(line, line_no));
    if (!basket.has_value()) continue;
    for (ItemId id : *basket) {
      parsed.max_item = std::max(parsed.max_item, id);
      parsed.any_item = true;
    }
    parsed.baskets.push_back(std::move(*basket));
  }
  return parsed;
}

StatusOr<TransactionDatabase> BuildDatabase(ParsedLines parsed,
                                            ItemId num_items_hint) {
  ItemId num_items = num_items_hint;
  if (parsed.any_item && parsed.max_item + 1 > num_items) {
    num_items = parsed.max_item + 1;
  }
  if (num_items == 0) num_items = 1;
  TransactionDatabase db(num_items);
  for (auto& basket : parsed.baskets) {
    CORRMINE_RETURN_NOT_OK(db.AddBasket(std::move(basket)));
  }
  return db;
}

}  // namespace

StatusOr<std::optional<std::vector<ItemId>>> ParseTransactionLine(
    std::string_view line, size_t line_no) {
  std::string_view trimmed = TrimString(line);
  if (!trimmed.empty() && trimmed.front() == '#') {
    return std::optional<std::vector<ItemId>>();
  }
  std::vector<ItemId> basket;
  for (std::string_view token : SplitString(trimmed)) {
    auto value = ParseUint64(token);
    if (!value.ok()) {
      return Status::Corruption("line " + std::to_string(line_no) + ": " +
                                value.status().message());
    }
    if (*value > UINT32_MAX) {
      return Status::OutOfRange("line " + std::to_string(line_no) +
                                ": item id too large");
    }
    basket.push_back(static_cast<ItemId>(*value));
  }
  return std::optional<std::vector<ItemId>>(std::move(basket));
}

StatusOr<TransactionDatabase> ParseTransactions(const std::string& text,
                                                ItemId num_items_hint) {
  CORRMINE_ASSIGN_OR_RETURN(ParsedLines parsed, ParseIdLines(text));
  return BuildDatabase(std::move(parsed), num_items_hint);
}

StatusOr<TransactionDatabase> ReadTransactionFile(const std::string& path,
                                                  ItemId num_items_hint) {
  std::ifstream file(path);
  if (!file) {
    return Status::IOError("cannot open " + path);
  }
  std::ostringstream content;
  content << file.rdbuf();
  if (file.bad()) {
    return Status::IOError("error reading " + path);
  }
  return ParseTransactions(content.str(), num_items_hint);
}

Status WriteTransactionFile(const TransactionDatabase& db,
                            const std::string& path) {
  std::ofstream file(path);
  if (!file) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  for (size_t row = 0; row < db.num_baskets(); ++row) {
    const std::vector<ItemId>& basket = db.basket(row);
    for (size_t i = 0; i < basket.size(); ++i) {
      if (i > 0) file << ' ';
      file << basket[i];
    }
    file << '\n';
  }
  file.flush();
  if (!file) {
    return Status::IOError("error writing " + path);
  }
  return Status::OK();
}

StatusOr<TransactionDatabase> ParseNamedTransactions(const std::string& text) {
  // Two passes: intern the vocabulary, then build the database with the
  // final item-space size.
  ItemDictionary dict;
  std::vector<std::vector<ItemId>> baskets;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    std::string_view trimmed = TrimString(line);
    if (!trimmed.empty() && trimmed.front() == '#') continue;
    std::vector<ItemId> basket;
    for (std::string_view token : SplitString(trimmed)) {
      basket.push_back(dict.GetOrAdd(std::string(token)));
    }
    baskets.push_back(std::move(basket));
  }
  TransactionDatabase db(
      static_cast<ItemId>(dict.size() == 0 ? 1 : dict.size()));
  db.dictionary() = std::move(dict);
  for (auto& basket : baskets) {
    CORRMINE_RETURN_NOT_OK(db.AddBasket(std::move(basket)));
  }
  return db;
}

}  // namespace corrmine::io
