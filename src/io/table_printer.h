#ifndef CORRMINE_IO_TABLE_PRINTER_H_
#define CORRMINE_IO_TABLE_PRINTER_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace corrmine::io {

/// Column-aligned ASCII table renderer for the benchmark harnesses that
/// regenerate the paper's tables. Cells are strings; numeric formatting is
/// the caller's concern (see FormatDouble helpers below).
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds a row; it must have as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Renders with single-space padding, a header underline, and right
  /// alignment for cells that parse as numbers.
  std::string Render() const;

  /// Convenience: render straight to a stream.
  void Print(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision rendering ("3.142" for precision 3).
std::string FormatDouble(double value, int precision);

/// Percent rendering of a fraction ("16.6" for 0.166, precision 1).
std::string FormatPercent(double fraction, int precision = 1);

}  // namespace corrmine::io

#endif  // CORRMINE_IO_TABLE_PRINTER_H_
