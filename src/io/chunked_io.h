#ifndef CORRMINE_IO_CHUNKED_IO_H_
#define CORRMINE_IO_CHUNKED_IO_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status_or.h"
#include "itemset/transaction_database.h"

namespace corrmine::io {

/// Chunked transaction files: one or more CMB1 segments concatenated
/// back-to-back. The format is what delta ingestion appends to — each
/// `ingest --append` adds one segment holding that batch's baskets, and
/// sliding-window retirement drops whole segments off the front by byte
/// range (no re-encode of the surviving chunks). A plain single-segment
/// CMB1 file is a valid chunked file, and the format sniffer
/// (io/format_detect.h) classifies both identically because the first four
/// bytes are the same magic.
///
/// The logical dataset is the concatenation of every segment's baskets in
/// file order, over the item space max(segment item spaces) — so a file
/// loads byte-identically to having written one monolithic CMB1 file with
/// the same rows (modulo the per-segment headers).

/// One CMB1 segment inside a chunked transaction file.
struct TransactionChunkInfo {
  size_t offset = 0;        ///< Byte offset of the segment's magic.
  size_t size = 0;          ///< Encoded byte length of the segment.
  ItemId num_items = 0;     ///< The segment's own item-space size.
  uint64_t num_baskets = 0; ///< Baskets in this segment.
};

/// Parses segment headers (with full bounds validation — every record is
/// walked, none decoded into memory) and returns one entry per segment in
/// file order. Errors on any corruption, including zero segments.
StatusOr<std::vector<TransactionChunkInfo>> ListTransactionChunks(
    const std::string& bytes);

/// Streaming decode over every segment: `*num_items` receives the max of
/// the segment item spaces, `chunk_begin` (nullable) fires at each segment
/// header before its baskets, `sink` gets every basket in file order.
/// `*num_items` is only valid after the decode returns OK — callers that
/// need it before the first basket should ListTransactionChunks first.
Status DecodeChunkedTransactionsInto(
    const std::string& bytes, ItemId* num_items,
    const std::function<Status(size_t chunk_index, ItemId chunk_items,
                               uint64_t chunk_baskets)>& chunk_begin,
    const std::function<Status(std::vector<ItemId>)>& sink);

/// Appends `chunk` as a new segment at the end of `path`, creating the
/// file when absent. An existing file must already be (chunked) binary —
/// text bases must be converted first (the CLI `ingest` verb does this).
Status AppendBinaryTransactionChunk(const TransactionDatabase& chunk,
                                    const std::string& path);

/// Rewrites `path` without its oldest `drop` segments — sliding-window
/// retirement. The surviving segments are copied verbatim by byte range.
/// Errors if `drop >= segment count` (a transaction file may not become
/// empty; re-mine from a fresh base instead).
Status RetireOldestTransactionChunks(const std::string& path, size_t drop);

}  // namespace corrmine::io

#endif  // CORRMINE_IO_CHUNKED_IO_H_
