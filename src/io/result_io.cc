#include "io/result_io.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace corrmine::io {

std::string SerializeMiningResult(const MiningResult& result) {
  std::string out = "# corrmine result v1\n";
  char buf[256];
  for (const LevelStats& level : result.levels) {
    std::snprintf(buf, sizeof(buf),
                  "level %d %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64
                  " %" PRIu64 "\n",
                  level.level, level.possible_itemsets, level.candidates,
                  level.discards, level.significant, level.not_significant);
    out += buf;
  }
  for (const CorrelationRule& rule : result.significant) {
    std::snprintf(buf, sizeof(buf), "rule %.17g %.17g %" PRId64 " %u %.17g",
                  rule.chi2.statistic, rule.chi2.p_value, rule.chi2.dof,
                  rule.major_dependence.mask,
                  rule.major_dependence.interest);
    out += buf;
    for (ItemId item : rule.itemset) {
      out += ' ';
      out += std::to_string(item);
    }
    out += '\n';
  }
  return out;
}

Status WriteMiningResult(const MiningResult& result,
                         const std::string& path) {
  std::ofstream file(path);
  if (!file) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  file << SerializeMiningResult(result);
  file.flush();
  if (!file) {
    return Status::IOError("error writing " + path);
  }
  return Status::OK();
}

StatusOr<MiningResult> ParseMiningResult(const std::string& text) {
  MiningResult result;
  std::istringstream stream(text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    std::string_view trimmed = TrimString(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    std::vector<std::string_view> fields = SplitString(trimmed);
    auto fail = [&](const std::string& why) {
      return Status::Corruption("line " + std::to_string(line_no) + ": " +
                                why);
    };
    if (fields[0] == "level") {
      if (fields.size() != 7) return fail("level row needs 6 fields");
      LevelStats level;
      CORRMINE_ASSIGN_OR_RETURN(uint64_t lvl, ParseUint64(fields[1]));
      level.level = static_cast<int>(lvl);
      CORRMINE_ASSIGN_OR_RETURN(level.possible_itemsets,
                                ParseUint64(fields[2]));
      CORRMINE_ASSIGN_OR_RETURN(level.candidates, ParseUint64(fields[3]));
      CORRMINE_ASSIGN_OR_RETURN(level.discards, ParseUint64(fields[4]));
      CORRMINE_ASSIGN_OR_RETURN(level.significant, ParseUint64(fields[5]));
      CORRMINE_ASSIGN_OR_RETURN(level.not_significant,
                                ParseUint64(fields[6]));
      result.levels.push_back(level);
    } else if (fields[0] == "rule") {
      if (fields.size() < 8) return fail("rule row needs >= 7 fields");
      CorrelationRule rule;
      CORRMINE_ASSIGN_OR_RETURN(rule.chi2.statistic,
                                ParseDouble(fields[1]));
      CORRMINE_ASSIGN_OR_RETURN(rule.chi2.p_value, ParseDouble(fields[2]));
      CORRMINE_ASSIGN_OR_RETURN(uint64_t dof, ParseUint64(fields[3]));
      rule.chi2.dof = static_cast<int64_t>(dof);
      CORRMINE_ASSIGN_OR_RETURN(uint64_t mask, ParseUint64(fields[4]));
      if (mask > UINT32_MAX) return fail("mask out of range");
      rule.major_dependence.mask = static_cast<uint32_t>(mask);
      CORRMINE_ASSIGN_OR_RETURN(rule.major_dependence.interest,
                                ParseDouble(fields[5]));
      std::vector<ItemId> items;
      for (size_t f = 6; f < fields.size(); ++f) {
        CORRMINE_ASSIGN_OR_RETURN(uint64_t id, ParseUint64(fields[f]));
        if (id > UINT32_MAX) return fail("item id out of range");
        items.push_back(static_cast<ItemId>(id));
      }
      rule.itemset = Itemset(std::move(items));
      result.significant.push_back(std::move(rule));
    } else {
      return fail("unknown record type '" + std::string(fields[0]) + "'");
    }
  }
  return result;
}

StatusOr<MiningResult> ReadMiningResult(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::IOError("cannot open " + path);
  }
  std::ostringstream content;
  content << file.rdbuf();
  if (file.bad()) {
    return Status::IOError("error reading " + path);
  }
  return ParseMiningResult(content.str());
}

}  // namespace corrmine::io
