#include "io/chunked_io.h"

#include <algorithm>
#include <fstream>
#include <utility>

#include "io/binary_io.h"
#include "io/format_detect.h"

namespace corrmine::io {

StatusOr<std::vector<TransactionChunkInfo>> ListTransactionChunks(
    const std::string& bytes) {
  std::vector<TransactionChunkInfo> chunks;
  size_t pos = 0;
  while (pos < bytes.size()) {
    TransactionChunkInfo info;
    info.offset = pos;
    CORRMINE_RETURN_NOT_OK(DecodeBinaryTransactionSegment(
        bytes, &pos, &info.num_items, &info.num_baskets, nullptr));
    info.size = pos - info.offset;
    chunks.push_back(info);
  }
  if (chunks.empty()) {
    return Status::Corruption("missing CMB1 magic");
  }
  return chunks;
}

Status DecodeChunkedTransactionsInto(
    const std::string& bytes, ItemId* num_items,
    const std::function<Status(size_t chunk_index, ItemId chunk_items,
                               uint64_t chunk_baskets)>& chunk_begin,
    const std::function<Status(std::vector<ItemId>)>& sink) {
  ItemId max_items = 0;
  size_t pos = 0;
  size_t chunk_index = 0;
  bool any = false;
  while (pos < bytes.size()) {
    // Two passes per segment: a validating skip to learn the header before
    // any basket reaches the sink, then the decode proper. Segment parsing
    // is varint walking, far cheaper than the basket materialization.
    size_t peek = pos;
    ItemId chunk_items = 0;
    uint64_t chunk_baskets = 0;
    CORRMINE_RETURN_NOT_OK(DecodeBinaryTransactionSegment(
        bytes, &peek, &chunk_items, &chunk_baskets, nullptr));
    if (chunk_begin != nullptr) {
      CORRMINE_RETURN_NOT_OK(
          chunk_begin(chunk_index, chunk_items, chunk_baskets));
    }
    CORRMINE_RETURN_NOT_OK(DecodeBinaryTransactionSegment(
        bytes, &pos, &chunk_items, &chunk_baskets, sink));
    max_items = std::max(max_items, chunk_items);
    ++chunk_index;
    any = true;
  }
  if (!any) {
    return Status::Corruption("missing CMB1 magic");
  }
  *num_items = max_items;
  return Status::OK();
}

Status AppendBinaryTransactionChunk(const TransactionDatabase& chunk,
                                    const std::string& path) {
  {
    // An existing file must be binary: appending a segment to a text file
    // would corrupt it, and the sniffing rule (CMB1 prefix) would then
    // misclassify the result.
    std::ifstream probe(path, std::ios::binary);
    if (probe) {
      auto format = DetectTransactionFileFormat(path);
      CORRMINE_RETURN_NOT_OK(format.status());
      if (*format != TransactionFileFormat::kBinary) {
        return Status::InvalidArgument(
            "cannot append a binary chunk to non-binary file " + path);
      }
    }
  }
  std::ofstream file(path, std::ios::binary | std::ios::app);
  if (!file) {
    return Status::IOError("cannot open " + path + " for appending");
  }
  std::string bytes = EncodeBinaryTransactions(chunk);
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  file.flush();
  if (!file) {
    return Status::IOError("error appending to " + path);
  }
  return Status::OK();
}

Status RetireOldestTransactionChunks(const std::string& path, size_t drop) {
  CORRMINE_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  CORRMINE_ASSIGN_OR_RETURN(std::vector<TransactionChunkInfo> chunks,
                            ListTransactionChunks(bytes));
  if (drop >= chunks.size()) {
    return Status::InvalidArgument(
        "cannot retire " + std::to_string(drop) + " of " +
        std::to_string(chunks.size()) +
        " chunks: a transaction file may not become empty");
  }
  if (drop == 0) return Status::OK();
  return WriteStringToFile(bytes.substr(chunks[drop].offset), path);
}

}  // namespace corrmine::io
