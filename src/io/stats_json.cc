#include "io/stats_json.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/metrics.h"
#include "common/profiler.h"
#include "common/trace.h"
#include "itemset/kernels.h"

namespace corrmine {

std::string RenderDeterministicStats(
    const MiningResult& result,
    const CachedCountProvider::CacheStats* cache_stats) {
  std::ostringstream out;
  out << "{\"schema\":\"corrmine-stats-v1\"";
  out << ",\"rules\":" << result.significant.size();
  out << ",\"levels\":[";
  for (size_t i = 0; i < result.levels.size(); ++i) {
    const LevelStats& s = result.levels[i];
    if (i > 0) out << ",";
    out << "{\"level\":" << s.level
        << ",\"possible\":" << s.possible_itemsets
        << ",\"cand\":" << s.candidates
        << ",\"discards\":" << s.discards
        << ",\"chi2_tests\":" << s.chi2_tests
        << ",\"masked_cells\":" << s.masked_cells
        << ",\"sig\":" << s.significant
        << ",\"notsig\":" << s.not_significant << "}";
  }
  out << "]";
  if (cache_stats != nullptr) {
    out << ",\"cache\":{\"queries\":" << cache_stats->queries
        << ",\"hits\":" << cache_stats->hits
        << ",\"misses\":" << cache_stats->misses
        << ",\"overflow_builds\":" << cache_stats->overflow_builds
        << ",\"and_word_ops\":" << cache_stats->and_word_ops
        << ",\"uncached_and_word_ops\":" << cache_stats->uncached_and_word_ops
        << "}";
  } else {
    out << ",\"cache\":null";
  }
  out << "}";
  return out.str();
}

std::string RenderStatsJson(const MiningResult& result,
                            const CachedCountProvider::CacheStats* cache_stats,
                            const MetricsRegistry& registry) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema\": \"corrmine-stats-v1\",\n";
  out << "  \"deterministic\": "
      << RenderDeterministicStats(result, cache_stats) << ",\n";
  // Which counting kernel served the run, and what was requested ("auto"
  // unless forced via --kernel / CORRMINE_KERNEL). Machine-dependent by
  // nature, so it lives OUTSIDE the deterministic section — statsdiff
  // rejects any document where kernel info leaks into it.
  out << "  \"kernel\": {\"name\": \"" << ActiveKernelName()
      << "\", \"requested\": \"" << RequestedKernelName() << "\"},\n";
  // Profiling attribution (DESIGN.md §13): hardware-counter phase
  // breakdown + sampling-profiler accounting. Machine- and run-dependent
  // like "kernel", so also outside "deterministic" and report-only for
  // statsdiff (structural checks via --validate-profile).
  out << "  \"profile\": " << Profiler::Global().RenderProfileJson()
      << ",\n";
  // Trace-ring health: events overwritten because a per-thread ring
  // filled. Non-zero means the Chrome trace is missing its oldest spans.
  out << "  \"trace\": {\"dropped_events\": "
      << Tracer::Global().DroppedEvents() << "},\n";
  out << "  \"runtime\": " << registry.ToJson() << "\n";
  out << "}";
  return out.str();
}

Status WriteStatsJson(const std::string& path, const std::string& json) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out) {
    return Status::Internal("cannot open stats file for writing: " + path);
  }
  out << json << "\n";
  out.flush();
  if (!out) {
    return Status::Internal("failed writing stats file: " + path);
  }
  return Status::OK();
}

}  // namespace corrmine
