#ifndef CORRMINE_IO_TRANSACTION_IO_H_
#define CORRMINE_IO_TRANSACTION_IO_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status_or.h"
#include "itemset/transaction_database.h"

namespace corrmine::io {

/// Parses one line of the text transaction format: whitespace-separated
/// non-negative integer item ids. Returns nullopt for comment lines
/// (leading '#'); otherwise the basket, which is empty for blank lines.
/// `line_no` is used in error messages only. Shared by the whole-file
/// readers below and the streaming sharded loader (io/sharded_loader.h).
StatusOr<std::optional<std::vector<ItemId>>> ParseTransactionLine(
    std::string_view line, size_t line_no);

/// Reads basket data in the conventional transaction-file format: one basket
/// per line, whitespace-separated non-negative integer item ids. Blank lines
/// are empty baskets; lines starting with '#' are comments. The item space
/// is sized to the largest id seen (or `num_items_hint` if larger).
StatusOr<TransactionDatabase> ReadTransactionFile(const std::string& path,
                                                  ItemId num_items_hint = 0);

/// Same format, parsed from an in-memory string (used by tests).
StatusOr<TransactionDatabase> ParseTransactions(const std::string& text,
                                                ItemId num_items_hint = 0);

/// Writes a database in the transaction-file format.
Status WriteTransactionFile(const TransactionDatabase& db,
                            const std::string& path);

/// Reads named basket data: one basket per line, whitespace-separated word
/// tokens interned through the database's dictionary.
StatusOr<TransactionDatabase> ParseNamedTransactions(const std::string& text);

}  // namespace corrmine::io

#endif  // CORRMINE_IO_TRANSACTION_IO_H_
