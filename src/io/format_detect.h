#ifndef CORRMINE_IO_FORMAT_DETECT_H_
#define CORRMINE_IO_FORMAT_DETECT_H_

#include <string>
#include <string_view>

#include "common/status_or.h"

namespace corrmine::io {

/// Magic prefix of the compact binary basket format (binary_io.h). The text
/// format cannot collide with it: text lines hold digits, whitespace and '#'
/// comments only.
inline constexpr char kBinaryTransactionMagic[4] = {'C', 'M', 'B', '1'};

/// On-disk transaction-file flavors the loaders understand.
enum class TransactionFileFormat {
  kBinary,  // CMB1 varint records (io/binary_io.h)
  kText,    // one basket per line, whitespace-separated ids
};

/// Classifies a file from its leading bytes: the CMB1 magic means binary,
/// anything else (including fewer than 4 bytes) is treated as text. This is
/// the single format-sniffing rule shared by every reader — text files and
/// the binary codec are mutually unambiguous by construction.
TransactionFileFormat DetectTransactionFormat(std::string_view head);

/// File-based variant: reads up to 4 bytes of `path` and classifies them.
/// Errors only if the file cannot be opened.
StatusOr<TransactionFileFormat> DetectTransactionFileFormat(
    const std::string& path);

/// Human-readable format name ("binary" / "text") for logs and stats.
const char* TransactionFileFormatName(TransactionFileFormat format);

}  // namespace corrmine::io

#endif  // CORRMINE_IO_FORMAT_DETECT_H_
