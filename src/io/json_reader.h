#ifndef CORRMINE_IO_JSON_READER_H_
#define CORRMINE_IO_JSON_READER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status_or.h"

namespace corrmine {
namespace io {

/// Minimal JSON document model for the tooling that reads our own emitted
/// JSON back (statsdiff comparing corrmine-stats-v1 files, trace
/// validation, BENCH_METRICS/BENCH_JSON lines). Standards-conformant for
/// the subset we emit: objects, arrays, strings with escapes, numbers,
/// true/false/null. Not a general-purpose parser — no streaming, the whole
/// document lives in memory.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  /// Numbers keep both the parsed double and the raw literal: comparisons
  /// that must be exact (statsdiff's deterministic section) compare the
  /// literal text, so 64-bit counters never lose precision through double.
  double number_value = 0.0;
  std::string literal;
  std::string string_value;
  std::vector<JsonValue> array;
  /// Insertion order preserved (our writers emit stable key order).
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
};

/// Parses `text` as one JSON document (trailing whitespace allowed,
/// anything else after the value is an error).
StatusOr<JsonValue> ParseJson(std::string_view text);

}  // namespace io
}  // namespace corrmine

#endif  // CORRMINE_IO_JSON_READER_H_
