#include "io/binary_io.h"

#include <fstream>
#include <sstream>

namespace corrmine::io {

namespace {

constexpr char kMagic[4] = {'C', 'M', 'B', '1'};

void AppendVarint(std::string* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

/// Reads one LEB128 varint; advances *pos. Errors on truncation or values
/// wider than 64 bits.
StatusOr<uint64_t> ReadVarint(const std::string& bytes, size_t* pos) {
  uint64_t value = 0;
  int shift = 0;
  while (true) {
    if (*pos >= bytes.size()) {
      return Status::Corruption("truncated varint");
    }
    uint8_t byte = static_cast<uint8_t>(bytes[(*pos)++]);
    if (shift >= 63 && (byte & 0x7f) > 1) {
      return Status::Corruption("varint overflow");
    }
    value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
}

}  // namespace

std::string EncodeBinaryTransactions(const TransactionDatabase& db) {
  std::string out(kMagic, sizeof(kMagic));
  AppendVarint(&out, db.num_items());
  AppendVarint(&out, db.num_baskets());
  for (size_t row = 0; row < db.num_baskets(); ++row) {
    const std::vector<ItemId>& basket = db.basket(row);
    AppendVarint(&out, basket.size());
    ItemId previous = 0;
    for (size_t i = 0; i < basket.size(); ++i) {
      uint64_t delta = i == 0 ? basket[i] : basket[i] - previous;
      AppendVarint(&out, delta);
      previous = basket[i];
    }
  }
  return out;
}

StatusOr<TransactionDatabase> DecodeBinaryTransactions(
    const std::string& bytes) {
  if (bytes.size() < sizeof(kMagic) ||
      bytes.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("missing CMB1 magic");
  }
  size_t pos = sizeof(kMagic);
  CORRMINE_ASSIGN_OR_RETURN(uint64_t num_items, ReadVarint(bytes, &pos));
  CORRMINE_ASSIGN_OR_RETURN(uint64_t num_baskets, ReadVarint(bytes, &pos));
  if (num_items == 0 || num_items > UINT32_MAX) {
    return Status::Corruption("invalid item-space size");
  }

  TransactionDatabase db(static_cast<ItemId>(num_items));
  for (uint64_t b = 0; b < num_baskets; ++b) {
    CORRMINE_ASSIGN_OR_RETURN(uint64_t size, ReadVarint(bytes, &pos));
    if (size > num_items) {
      return Status::Corruption("basket size exceeds item space");
    }
    std::vector<ItemId> basket;
    basket.reserve(size);
    uint64_t current = 0;
    for (uint64_t i = 0; i < size; ++i) {
      CORRMINE_ASSIGN_OR_RETURN(uint64_t delta, ReadVarint(bytes, &pos));
      if (i > 0 && delta == 0) {
        return Status::Corruption("non-increasing item delta");
      }
      current = i == 0 ? delta : current + delta;
      if (current >= num_items) {
        return Status::Corruption("item id out of range");
      }
      basket.push_back(static_cast<ItemId>(current));
    }
    CORRMINE_RETURN_NOT_OK(db.AddBasket(std::move(basket)));
  }
  if (pos != bytes.size()) {
    return Status::Corruption("trailing bytes after final basket");
  }
  return db;
}

Status WriteBinaryTransactionFile(const TransactionDatabase& db,
                                  const std::string& path) {
  std::ofstream file(path, std::ios::binary);
  if (!file) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  std::string bytes = EncodeBinaryTransactions(db);
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  file.flush();
  if (!file) {
    return Status::IOError("error writing " + path);
  }
  return Status::OK();
}

StatusOr<TransactionDatabase> ReadBinaryTransactionFile(
    const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Status::IOError("cannot open " + path);
  }
  std::ostringstream content;
  content << file.rdbuf();
  if (file.bad()) {
    return Status::IOError("error reading " + path);
  }
  return DecodeBinaryTransactions(content.str());
}

bool LooksLikeBinaryTransactionFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return false;
  char magic[4] = {0, 0, 0, 0};
  file.read(magic, 4);
  return file.gcount() == 4 &&
         std::string(magic, 4) == std::string(kMagic, 4);
}

}  // namespace corrmine::io
