#include "io/binary_io.h"

#include <fstream>
#include <memory>
#include <sstream>
#include <utility>

#include "io/format_detect.h"

namespace corrmine::io {

namespace {

// The shared sniffing helper owns the magic; keep a local alias so the
// encoder reads naturally.
constexpr const char* kMagic = kBinaryTransactionMagic;
constexpr size_t kMagicSize = sizeof(kBinaryTransactionMagic);

}  // namespace

void AppendVarint(std::string* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

StatusOr<uint64_t> ReadVarint(const std::string& bytes, size_t* pos) {
  uint64_t value = 0;
  int shift = 0;
  while (true) {
    if (*pos >= bytes.size()) {
      return Status::Corruption("truncated varint");
    }
    uint8_t byte = static_cast<uint8_t>(bytes[(*pos)++]);
    if (shift >= 63 && (byte & 0x7f) > 1) {
      return Status::Corruption("varint overflow");
    }
    value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
}

std::string EncodeBinaryTransactions(const TransactionDatabase& db) {
  std::string out(kMagic, kMagicSize);
  AppendVarint(&out, db.num_items());
  AppendVarint(&out, db.num_baskets());
  for (size_t row = 0; row < db.num_baskets(); ++row) {
    const std::vector<ItemId>& basket = db.basket(row);
    AppendVarint(&out, basket.size());
    ItemId previous = 0;
    for (size_t i = 0; i < basket.size(); ++i) {
      uint64_t delta = i == 0 ? basket[i] : basket[i] - previous;
      AppendVarint(&out, delta);
      previous = basket[i];
    }
  }
  return out;
}

Status DecodeBinaryTransactionSegment(
    const std::string& bytes, size_t* pos, ItemId* num_items,
    uint64_t* num_baskets,
    const std::function<Status(std::vector<ItemId>)>& sink) {
  if (bytes.size() < *pos + kMagicSize ||
      bytes.compare(*pos, kMagicSize, kMagic, kMagicSize) != 0) {
    return Status::Corruption("missing CMB1 magic");
  }
  *pos += kMagicSize;
  CORRMINE_ASSIGN_OR_RETURN(uint64_t item_space, ReadVarint(bytes, pos));
  CORRMINE_ASSIGN_OR_RETURN(uint64_t baskets, ReadVarint(bytes, pos));
  if (item_space == 0 || item_space > UINT32_MAX) {
    return Status::Corruption("invalid item-space size");
  }
  *num_items = static_cast<ItemId>(item_space);
  *num_baskets = baskets;

  for (uint64_t b = 0; b < baskets; ++b) {
    CORRMINE_ASSIGN_OR_RETURN(uint64_t size, ReadVarint(bytes, pos));
    if (size > item_space) {
      return Status::Corruption("basket size exceeds item space");
    }
    std::vector<ItemId> basket;
    if (sink != nullptr) basket.reserve(size);
    uint64_t current = 0;
    for (uint64_t i = 0; i < size; ++i) {
      CORRMINE_ASSIGN_OR_RETURN(uint64_t delta, ReadVarint(bytes, pos));
      if (i > 0 && delta == 0) {
        return Status::Corruption("non-increasing item delta");
      }
      current = i == 0 ? delta : current + delta;
      if (current >= item_space) {
        return Status::Corruption("item id out of range");
      }
      if (sink != nullptr) basket.push_back(static_cast<ItemId>(current));
    }
    if (sink != nullptr) {
      CORRMINE_RETURN_NOT_OK(sink(std::move(basket)));
    }
  }
  return Status::OK();
}

Status DecodeBinaryTransactionsInto(
    const std::string& bytes, ItemId* num_items,
    const std::function<Status(std::vector<ItemId>)>& sink) {
  size_t pos = 0;
  uint64_t num_baskets = 0;
  CORRMINE_RETURN_NOT_OK(DecodeBinaryTransactionSegment(
      bytes, &pos, num_items, &num_baskets, sink));
  if (pos != bytes.size()) {
    return Status::Corruption("trailing bytes after final basket");
  }
  return Status::OK();
}

StatusOr<TransactionDatabase> DecodeBinaryTransactions(
    const std::string& bytes) {
  // The database is created lazily inside the sink because the item-space
  // size only becomes known once the header has been validated.
  std::unique_ptr<TransactionDatabase> db;
  ItemId num_items = 0;
  CORRMINE_RETURN_NOT_OK(DecodeBinaryTransactionsInto(
      bytes, &num_items, [&](std::vector<ItemId> basket) -> Status {
        if (!db) db = std::make_unique<TransactionDatabase>(num_items);
        return db->AddBasket(std::move(basket));
      }));
  if (!db) db = std::make_unique<TransactionDatabase>(num_items);
  return std::move(*db);
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Status::IOError("cannot open " + path);
  }
  std::ostringstream content;
  content << file.rdbuf();
  if (file.bad()) {
    return Status::IOError("error reading " + path);
  }
  return content.str();
}

Status WriteStringToFile(const std::string& bytes, const std::string& path) {
  std::ofstream file(path, std::ios::binary);
  if (!file) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  file.flush();
  if (!file) {
    return Status::IOError("error writing " + path);
  }
  return Status::OK();
}

Status WriteBinaryTransactionFile(const TransactionDatabase& db,
                                  const std::string& path) {
  return WriteStringToFile(EncodeBinaryTransactions(db), path);
}

StatusOr<TransactionDatabase> ReadBinaryTransactionFile(
    const std::string& path) {
  CORRMINE_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  return DecodeBinaryTransactions(bytes);
}

bool LooksLikeBinaryTransactionFile(const std::string& path) {
  auto format = DetectTransactionFileFormat(path);
  return format.ok() && *format == TransactionFileFormat::kBinary;
}

}  // namespace corrmine::io
