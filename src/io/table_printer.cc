#include "io/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/logging.h"

namespace corrmine::io {

namespace {

bool LooksNumeric(const std::string& cell) {
  if (cell.empty()) return false;
  char* end = nullptr;
  std::strtod(cell.c_str(), &end);
  return end == cell.c_str() + cell.size();
}

}  // namespace

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  CORRMINE_CHECK(!headers_.empty()) << "table needs at least one column";
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  CORRMINE_CHECK(cells.size() == headers_.size())
      << "row has " << cells.size() << " cells, expected "
      << headers_.size();
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += "  ";
      size_t pad = widths[c] - row[c].size();
      if (LooksNumeric(row[c])) {
        out.append(pad, ' ');
        out += row[c];
      } else {
        out += row[c];
        out.append(pad, ' ');
      }
    }
    // Trim trailing spaces.
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };

  emit_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c > 0 ? 2 : 0);
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row);
  return out;
}

void TablePrinter::Print(std::ostream& os) const { os << Render(); }

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FormatPercent(double fraction, int precision) {
  return FormatDouble(fraction * 100.0, precision);
}

}  // namespace corrmine::io
