#include "io/json_reader.h"

#include <cctype>
#include <cstdlib>

namespace corrmine {
namespace io {

namespace {

/// Recursive-descent parser over a string_view with a position cursor.
/// Depth is bounded to keep hostile inputs from overflowing the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    CORRMINE_ASSIGN_OR_RETURN(JsonValue value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& message) const {
    return Status::InvalidArgument("json parse error at offset " +
                                   std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool Consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  StatusOr<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"':
        return ParseString();
      case 't':
      case 'f':
        return ParseBool();
      case 'n':
        return ParseNull();
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
        return Error(std::string("unexpected character '") + c + "'");
    }
  }

  StatusOr<JsonValue> ParseObject(int depth) {
    ++pos_;  // '{'
    JsonValue value;
    value.type = JsonValue::Type::kObject;
    SkipWhitespace();
    if (Consume('}')) return value;
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      CORRMINE_ASSIGN_OR_RETURN(JsonValue key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      CORRMINE_ASSIGN_OR_RETURN(JsonValue member, ParseValue(depth + 1));
      value.object.emplace_back(std::move(key.string_value),
                                std::move(member));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return value;
      return Error("expected ',' or '}' in object");
    }
  }

  StatusOr<JsonValue> ParseArray(int depth) {
    ++pos_;  // '['
    JsonValue value;
    value.type = JsonValue::Type::kArray;
    SkipWhitespace();
    if (Consume(']')) return value;
    for (;;) {
      CORRMINE_ASSIGN_OR_RETURN(JsonValue element, ParseValue(depth + 1));
      value.array.push_back(std::move(element));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return value;
      return Error("expected ',' or ']' in array");
    }
  }

  StatusOr<JsonValue> ParseString() {
    ++pos_;  // opening quote
    JsonValue value;
    value.type = JsonValue::Type::kString;
    std::string& out = value.string_value;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return value;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out += esc;
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // emitted by any of our writers; pass them through raw).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Error("unknown escape sequence");
      }
    }
    return Error("unterminated string");
  }

  StatusOr<JsonValue> ParseBool() {
    JsonValue value;
    value.type = JsonValue::Type::kBool;
    if (text_.substr(pos_, 4) == "true") {
      value.bool_value = true;
      pos_ += 4;
      return value;
    }
    if (text_.substr(pos_, 5) == "false") {
      value.bool_value = false;
      pos_ += 5;
      return value;
    }
    return Error("expected 'true' or 'false'");
  }

  StatusOr<JsonValue> ParseNull() {
    if (text_.substr(pos_, 4) == "null") {
      pos_ += 4;
      return JsonValue{};
    }
    return Error("expected 'null'");
  }

  StatusOr<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() && std::isdigit(
                                      static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (Consume('.')) {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    JsonValue value;
    value.type = JsonValue::Type::kNumber;
    value.literal = std::string(text_.substr(start, pos_ - start));
    if (value.literal.empty() || value.literal == "-") {
      return Error("malformed number");
    }
    value.number_value = std::strtod(value.literal.c_str(), nullptr);
    return value;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

StatusOr<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace io
}  // namespace corrmine
