#include "io/format_detect.h"

#include <fstream>

namespace corrmine::io {

TransactionFileFormat DetectTransactionFormat(std::string_view head) {
  if (head.size() >= sizeof(kBinaryTransactionMagic) &&
      head.compare(0, sizeof(kBinaryTransactionMagic),
                   kBinaryTransactionMagic,
                   sizeof(kBinaryTransactionMagic)) == 0) {
    return TransactionFileFormat::kBinary;
  }
  return TransactionFileFormat::kText;
}

StatusOr<TransactionFileFormat> DetectTransactionFileFormat(
    const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Status::IOError("cannot open " + path);
  }
  char head[sizeof(kBinaryTransactionMagic)] = {0};
  file.read(head, sizeof(head));
  return DetectTransactionFormat(
      std::string_view(head, static_cast<size_t>(file.gcount())));
}

const char* TransactionFileFormatName(TransactionFileFormat format) {
  switch (format) {
    case TransactionFileFormat::kBinary:
      return "binary";
    case TransactionFileFormat::kText:
      return "text";
  }
  return "unknown";
}

}  // namespace corrmine::io
