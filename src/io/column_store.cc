#include "io/column_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "io/binary_io.h"

namespace corrmine::io {

namespace {

size_t AlignUp(size_t value, size_t align) {
  return (value + align - 1) / align * align;
}

/// Varint reader over the mapped bytes (ReadVarint wants a std::string).
StatusOr<uint64_t> ReadVarintMem(const uint8_t* data, size_t len,
                                 size_t* pos) {
  uint64_t value = 0;
  int shift = 0;
  while (*pos < len && shift < 64) {
    const uint8_t byte = data[*pos];
    ++*pos;
    value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
  return Status::Corruption("CCS: truncated varint in directory");
}

size_t RawPayloadBytes(const CountingColumn::ContainerView& view) {
  return view.kind == CountingColumn::ContainerKind::kDense
             ? CountingColumn::kWordsPerDense * sizeof(uint64_t)
             : view.u16.size() * sizeof(uint16_t);
}

}  // namespace

Status WriteColumnShardFile(const ColumnSource& source,
                            const std::string& path,
                            const ColumnShardWriteOptions& options,
                            ColumnShardWriteStats* stats) {
  if (options.format_version != 1 && options.format_version != 2) {
    return Status::InvalidArgument("unsupported column shard version");
  }
  const bool v2 = options.format_version == 2;

  // Pass 1: pick the min-byte encoding per container (v2) and assign
  // 8-aligned payload offsets (relative to payload_base, so they are known
  // before the directory — whose size sets the base — is built).
  struct Entry {
    CountingColumn::ContainerView view;
    uint8_t encoding = kColumnShardEncodingRaw;
    uint64_t rel_offset = 0;
    uint64_t bytes = 0;       // encoded payload bytes
    size_t varint_index = 0;  // into `varint_payloads` when encoding == 1
  };
  std::vector<std::vector<Entry>> columns(source.num_columns());
  std::vector<std::string> varint_payloads;
  uint64_t payload_bytes = 0;
  uint64_t raw_bytes_total = 0;
  uint64_t encoded_bytes_total = 0;
  std::string scratch;
  for (ItemId item = 0; item < source.num_columns(); ++item) {
    const CountingColumn& col = source.column(item);
    columns[item].reserve(col.num_containers());
    for (size_t i = 0; i < col.num_containers(); ++i) {
      Entry entry;
      entry.view = col.container_view(i);
      const size_t raw_bytes = RawPayloadBytes(entry.view);
      entry.bytes = raw_bytes;
      raw_bytes_total += raw_bytes;
      if (v2 && entry.view.kind != CountingColumn::ContainerKind::kDense) {
        scratch.clear();
        EncodeU16DeltaVarint(entry.view.kind, entry.view.u16, &scratch);
        if (scratch.size() < raw_bytes) {
          entry.encoding = kColumnShardEncodingDeltaVarint;
          entry.bytes = scratch.size();
          entry.varint_index = varint_payloads.size();
          varint_payloads.push_back(scratch);
        }
      }
      encoded_bytes_total += entry.bytes;
      payload_bytes = AlignUp(payload_bytes, kColumnShardPayloadAlign);
      entry.rel_offset = payload_bytes;
      payload_bytes += entry.bytes;
      columns[item].push_back(std::move(entry));
    }
  }

  std::string directory;
  AppendVarint(&directory, source.num_rows());
  AppendVarint(&directory, source.num_columns());
  for (const std::vector<Entry>& column : columns) {
    AppendVarint(&directory, column.size());
    for (const Entry& entry : column) {
      AppendVarint(&directory, entry.view.key);
      directory.push_back(static_cast<char>(entry.view.kind));
      if (v2) directory.push_back(static_cast<char>(entry.encoding));
      AppendVarint(&directory, entry.view.count);
      AppendVarint(&directory, entry.rel_offset);
      AppendVarint(&directory, entry.bytes);
    }
  }

  const size_t header_bytes = sizeof(kColumnShardMagic) + sizeof(uint64_t) +
                              directory.size();
  const uint64_t payload_base = AlignUp(header_bytes, kColumnShardPageAlign);

  std::string bytes;
  bytes.reserve(payload_base + payload_bytes);
  bytes.append(v2 ? kColumnShardMagicV2 : kColumnShardMagic,
               sizeof(kColumnShardMagic));
  for (int i = 0; i < 8; ++i) {
    bytes.push_back(static_cast<char>((payload_base >> (8 * i)) & 0xff));
  }
  bytes += directory;
  bytes.resize(payload_base, '\0');
  for (const std::vector<Entry>& column : columns) {
    for (const Entry& entry : column) {
      bytes.resize(payload_base + entry.rel_offset, '\0');
      if (entry.encoding == kColumnShardEncodingDeltaVarint) {
        bytes += varint_payloads[entry.varint_index];
      } else if (entry.view.kind == CountingColumn::ContainerKind::kDense) {
        bytes.append(reinterpret_cast<const char*>(entry.view.words.data()),
                     entry.view.words.size() * sizeof(uint64_t));
      } else {
        bytes.append(reinterpret_cast<const char*>(entry.view.u16.data()),
                     entry.view.u16.size() * sizeof(uint16_t));
      }
    }
  }
  if (stats != nullptr) {
    stats->file_bytes = bytes.size();
    stats->payload_bytes = encoded_bytes_total;
    stats->raw_payload_bytes = raw_bytes_total;
  }
  return WriteStringToFile(bytes, path);
}

StatusOr<std::unique_ptr<MappedColumnShard>> MappedColumnShard::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("cannot open column shard: " + path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    ::close(fd);
    return Status::IOError("cannot stat column shard: " + path);
  }
  const size_t len = static_cast<size_t>(st.st_size);
  void* map = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (map == MAP_FAILED) {
    return Status::IOError("mmap failed for column shard: " + path);
  }
  std::unique_ptr<MappedColumnShard> shard(new MappedColumnShard());
  shard->map_ = map;
  shard->map_len_ = len;

  const uint8_t* data = static_cast<const uint8_t*>(map);
  if (len < sizeof(kColumnShardMagic) + sizeof(uint64_t) ||
      std::memcmp(data, kColumnShardMagic, 3) != 0 ||
      (data[3] != '1' && data[3] != '2')) {
    return Status::Corruption("not a CCS column shard: " + path);
  }
  const bool v2 = data[3] == '2';
  shard->format_version_ = v2 ? 2 : 1;
  size_t pos = sizeof(kColumnShardMagic);
  uint64_t payload_base = 0;
  for (int i = 0; i < 8; ++i) {
    payload_base |= static_cast<uint64_t>(data[pos + i]) << (8 * i);
  }
  pos += 8;
  if (payload_base > len) {
    return Status::Corruption("CCS: payload base past end of file");
  }
  CORRMINE_ASSIGN_OR_RETURN(const uint64_t num_rows,
                            ReadVarintMem(data, payload_base, &pos));
  CORRMINE_ASSIGN_OR_RETURN(const uint64_t num_columns,
                            ReadVarintMem(data, payload_base, &pos));
  shard->num_rows_ = num_rows;
  shard->columns_.reserve(num_columns);
  for (uint64_t item = 0; item < num_columns; ++item) {
    CORRMINE_ASSIGN_OR_RETURN(const uint64_t num_containers,
                              ReadVarintMem(data, payload_base, &pos));
    auto lazy = std::make_unique<LazyColumn>();
    lazy->entries.reserve(num_containers);
    for (uint64_t c = 0; c < num_containers; ++c) {
      CORRMINE_ASSIGN_OR_RETURN(const uint64_t key,
                                ReadVarintMem(data, payload_base, &pos));
      if (pos >= payload_base) {
        return Status::Corruption("CCS: truncated container record");
      }
      const uint8_t kind_byte = data[pos++];
      if (kind_byte > 2) {
        return Status::Corruption("CCS: unknown container kind");
      }
      uint8_t encoding = kColumnShardEncodingRaw;
      if (v2) {
        if (pos >= payload_base) {
          return Status::Corruption("CCS: truncated container record");
        }
        encoding = data[pos++];
        if (encoding > kColumnShardEncodingDeltaVarint) {
          return Status::Corruption("CCS: unknown payload encoding");
        }
      }
      CORRMINE_ASSIGN_OR_RETURN(const uint64_t count,
                                ReadVarintMem(data, payload_base, &pos));
      CORRMINE_ASSIGN_OR_RETURN(const uint64_t rel_offset,
                                ReadVarintMem(data, payload_base, &pos));
      CORRMINE_ASSIGN_OR_RETURN(const uint64_t bytes,
                                ReadVarintMem(data, payload_base, &pos));
      if (rel_offset % kColumnShardPayloadAlign != 0 ||
          payload_base + rel_offset + bytes > len) {
        return Status::Corruption("CCS: payload out of bounds");
      }
      ContainerEntry entry;
      entry.key = static_cast<uint32_t>(key);
      entry.kind = static_cast<CountingColumn::ContainerKind>(kind_byte);
      entry.encoding = encoding;
      entry.count = static_cast<uint32_t>(count);
      entry.payload = data + payload_base + rel_offset;
      entry.payload_bytes = bytes;
      if (entry.kind == CountingColumn::ContainerKind::kDense) {
        if (encoding != kColumnShardEncodingRaw) {
          return Status::Corruption("CCS: dense payload must be raw");
        }
        if (bytes != CountingColumn::kWordsPerDense * sizeof(uint64_t)) {
          return Status::Corruption("CCS: dense payload size mismatch");
        }
      } else if (encoding == kColumnShardEncodingRaw) {
        if (bytes % sizeof(uint16_t) != 0) {
          return Status::Corruption("CCS: odd u16 payload size");
        }
        if (entry.kind == CountingColumn::ContainerKind::kArray &&
            bytes != count * sizeof(uint16_t)) {
          return Status::Corruption("CCS: array payload size mismatch");
        }
      }
      lazy->entries.push_back(entry);
    }
    shard->columns_.push_back(std::move(lazy));
  }
  shard->empty_ = CountingColumn(num_rows, {});
  return shard;
}

MappedColumnShard::~MappedColumnShard() {
  if (map_ != nullptr) {
    ::munmap(map_, map_len_);
  }
}

const CountingColumn& MappedColumnShard::column(ItemId item) const {
  if (static_cast<size_t>(item) >= columns_.size()) return empty_;
  LazyColumn& lazy = *columns_[item];
  std::call_once(lazy.once, [this, &lazy]() {
    std::vector<CountingColumn::ContainerView> views;
    views.reserve(lazy.entries.size());
    // Reserve so pushes never reallocate: earlier views alias `decoded`
    // buffers and must stay anchored until FromContainerViews copies them.
    lazy.decoded.reserve(lazy.entries.size());
    for (const ContainerEntry& entry : lazy.entries) {
      CountingColumn::ContainerView view;
      view.key = entry.key;
      view.kind = entry.kind;
      view.count = entry.count;
      if (entry.kind == CountingColumn::ContainerKind::kDense) {
        view.words = std::span<const uint64_t>(
            reinterpret_cast<const uint64_t*>(entry.payload),
            CountingColumn::kWordsPerDense);
      } else if (entry.encoding == kColumnShardEncodingRaw) {
        view.u16 = std::span<const uint16_t>(
            reinterpret_cast<const uint16_t*>(entry.payload),
            entry.payload_bytes / sizeof(uint16_t));
      } else {
        // Bounds were validated at open; a decode failure here means the
        // payload bytes themselves are corrupt — fail fast rather than
        // count against garbage.
        std::vector<uint16_t> buf;
        const Status st =
            DecodeU16DeltaVarint(entry.kind, entry.payload,
                                 entry.payload_bytes, entry.count, &buf);
        CORRMINE_CHECK(st.ok())
            << "column shard payload decode failed: " << st.ToString();
        lazy.decoded.push_back(std::move(buf));
        view.u16 = std::span<const uint16_t>(lazy.decoded.back());
      }
      views.push_back(view);
    }
    lazy.column = CountingColumn::FromContainerViews(num_rows_, views);
  });
  return lazy.column;
}

}  // namespace corrmine::io
