#include "io/column_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "io/binary_io.h"

namespace corrmine::io {

namespace {

size_t AlignUp(size_t value, size_t align) {
  return (value + align - 1) / align * align;
}

/// Varint reader over the mapped bytes (ReadVarint wants a std::string).
StatusOr<uint64_t> ReadVarintMem(const uint8_t* data, size_t len,
                                 size_t* pos) {
  uint64_t value = 0;
  int shift = 0;
  while (*pos < len && shift < 64) {
    const uint8_t byte = data[*pos];
    ++*pos;
    value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
  return Status::Corruption("CCS1: truncated varint in directory");
}

size_t ContainerPayloadBytes(const CountingColumn::ContainerView& view) {
  return view.kind == CountingColumn::ContainerKind::kDense
             ? CountingColumn::kWordsPerDense * sizeof(uint64_t)
             : view.u16.size() * sizeof(uint16_t);
}

}  // namespace

Status WriteColumnShardFile(const ColumnSource& source,
                            const std::string& path) {
  // Pass 1: assign 8-aligned payload offsets (relative to payload_base, so
  // they are known before the directory — whose size sets the base — is
  // built).
  struct Entry {
    CountingColumn::ContainerView view;
    uint64_t rel_offset = 0;
  };
  std::vector<std::vector<Entry>> columns(source.num_columns());
  uint64_t payload_bytes = 0;
  for (ItemId item = 0; item < source.num_columns(); ++item) {
    const CountingColumn& col = source.column(item);
    columns[item].reserve(col.num_containers());
    for (size_t i = 0; i < col.num_containers(); ++i) {
      Entry entry;
      entry.view = col.container_view(i);
      payload_bytes = AlignUp(payload_bytes, kColumnShardPayloadAlign);
      entry.rel_offset = payload_bytes;
      payload_bytes += ContainerPayloadBytes(entry.view);
      columns[item].push_back(entry);
    }
  }

  std::string directory;
  AppendVarint(&directory, source.num_rows());
  AppendVarint(&directory, source.num_columns());
  for (const std::vector<Entry>& column : columns) {
    AppendVarint(&directory, column.size());
    for (const Entry& entry : column) {
      AppendVarint(&directory, entry.view.key);
      directory.push_back(static_cast<char>(entry.view.kind));
      AppendVarint(&directory, entry.view.count);
      AppendVarint(&directory, entry.rel_offset);
      AppendVarint(&directory, ContainerPayloadBytes(entry.view));
    }
  }

  const size_t header_bytes =
      sizeof(kColumnShardMagic) + sizeof(uint64_t) + directory.size();
  const uint64_t payload_base = AlignUp(header_bytes, kColumnShardPageAlign);

  std::string bytes;
  bytes.reserve(payload_base + payload_bytes);
  bytes.append(kColumnShardMagic, sizeof(kColumnShardMagic));
  for (int i = 0; i < 8; ++i) {
    bytes.push_back(static_cast<char>((payload_base >> (8 * i)) & 0xff));
  }
  bytes += directory;
  bytes.resize(payload_base, '\0');
  for (const std::vector<Entry>& column : columns) {
    for (const Entry& entry : column) {
      bytes.resize(payload_base + entry.rel_offset, '\0');
      if (entry.view.kind == CountingColumn::ContainerKind::kDense) {
        bytes.append(reinterpret_cast<const char*>(entry.view.words.data()),
                     entry.view.words.size() * sizeof(uint64_t));
      } else {
        bytes.append(reinterpret_cast<const char*>(entry.view.u16.data()),
                     entry.view.u16.size() * sizeof(uint16_t));
      }
    }
  }
  return WriteStringToFile(bytes, path);
}

StatusOr<std::unique_ptr<MappedColumnShard>> MappedColumnShard::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("cannot open column shard: " + path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    ::close(fd);
    return Status::IOError("cannot stat column shard: " + path);
  }
  const size_t len = static_cast<size_t>(st.st_size);
  void* map = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (map == MAP_FAILED) {
    return Status::IOError("mmap failed for column shard: " + path);
  }
  std::unique_ptr<MappedColumnShard> shard(new MappedColumnShard());
  shard->map_ = map;
  shard->map_len_ = len;

  const uint8_t* data = static_cast<const uint8_t*>(map);
  if (len < sizeof(kColumnShardMagic) + sizeof(uint64_t) ||
      std::memcmp(data, kColumnShardMagic, sizeof(kColumnShardMagic)) != 0) {
    return Status::Corruption("not a CCS1 column shard: " + path);
  }
  size_t pos = sizeof(kColumnShardMagic);
  uint64_t payload_base = 0;
  for (int i = 0; i < 8; ++i) {
    payload_base |= static_cast<uint64_t>(data[pos + i]) << (8 * i);
  }
  pos += 8;
  if (payload_base > len) {
    return Status::Corruption("CCS1: payload base past end of file");
  }
  CORRMINE_ASSIGN_OR_RETURN(const uint64_t num_rows,
                            ReadVarintMem(data, payload_base, &pos));
  CORRMINE_ASSIGN_OR_RETURN(const uint64_t num_columns,
                            ReadVarintMem(data, payload_base, &pos));
  shard->num_rows_ = num_rows;
  shard->columns_.reserve(num_columns);
  std::vector<CountingColumn::ContainerView> views;
  for (uint64_t item = 0; item < num_columns; ++item) {
    CORRMINE_ASSIGN_OR_RETURN(const uint64_t num_containers,
                              ReadVarintMem(data, payload_base, &pos));
    views.clear();
    views.reserve(num_containers);
    for (uint64_t c = 0; c < num_containers; ++c) {
      CORRMINE_ASSIGN_OR_RETURN(const uint64_t key,
                                ReadVarintMem(data, payload_base, &pos));
      if (pos >= payload_base) {
        return Status::Corruption("CCS1: truncated container record");
      }
      const uint8_t kind_byte = data[pos++];
      if (kind_byte > 2) {
        return Status::Corruption("CCS1: unknown container kind");
      }
      CORRMINE_ASSIGN_OR_RETURN(const uint64_t count,
                                ReadVarintMem(data, payload_base, &pos));
      CORRMINE_ASSIGN_OR_RETURN(const uint64_t rel_offset,
                                ReadVarintMem(data, payload_base, &pos));
      CORRMINE_ASSIGN_OR_RETURN(const uint64_t bytes,
                                ReadVarintMem(data, payload_base, &pos));
      if (rel_offset % kColumnShardPayloadAlign != 0 ||
          payload_base + rel_offset + bytes > len) {
        return Status::Corruption("CCS1: payload out of bounds");
      }
      CountingColumn::ContainerView view;
      view.key = static_cast<uint32_t>(key);
      view.kind = static_cast<CountingColumn::ContainerKind>(kind_byte);
      view.count = static_cast<uint32_t>(count);
      const uint8_t* payload = data + payload_base + rel_offset;
      if (view.kind == CountingColumn::ContainerKind::kDense) {
        if (bytes != CountingColumn::kWordsPerDense * sizeof(uint64_t)) {
          return Status::Corruption("CCS1: dense payload size mismatch");
        }
        view.words = std::span<const uint64_t>(
            reinterpret_cast<const uint64_t*>(payload),
            CountingColumn::kWordsPerDense);
      } else {
        if (bytes % sizeof(uint16_t) != 0) {
          return Status::Corruption("CCS1: odd u16 payload size");
        }
        if (view.kind == CountingColumn::ContainerKind::kArray &&
            bytes != count * sizeof(uint16_t)) {
          return Status::Corruption("CCS1: array payload size mismatch");
        }
        view.u16 = std::span<const uint16_t>(
            reinterpret_cast<const uint16_t*>(payload),
            bytes / sizeof(uint16_t));
      }
      views.push_back(view);
    }
    shard->columns_.push_back(
        CountingColumn::FromContainerViews(num_rows, views));
  }
  shard->empty_ = CountingColumn(num_rows, {});
  return shard;
}

MappedColumnShard::~MappedColumnShard() {
  if (map_ != nullptr) {
    ::munmap(map_, map_len_);
  }
}

const CountingColumn& MappedColumnShard::column(ItemId item) const {
  if (static_cast<size_t>(item) < columns_.size()) return columns_[item];
  return empty_;
}

}  // namespace corrmine::io
