#include "io/stream_reader.h"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "io/format_detect.h"
#include "io/transaction_io.h"

namespace corrmine::io {

namespace {

/// Rolling read window over an ifstream: the binary decoder below pulls
/// bytes one at a time and the window refills in 64 KiB chunks, so decode
/// state never depends on segment boundaries landing inside the buffer.
class BufferedReader {
 public:
  explicit BufferedReader(std::ifstream* in) : in_(in) {}

  /// True and *out set, or false at clean EOF.
  bool TryNext(uint8_t* out) {
    if (pos_ == len_ && !Refill()) return false;
    *out = static_cast<uint8_t>(buf_[pos_++]);
    return true;
  }

  StatusOr<uint64_t> ReadVarint() {
    uint64_t value = 0;
    int shift = 0;
    uint8_t byte = 0;
    while (shift < 64) {
      if (!TryNext(&byte)) {
        return Status::Corruption("truncated varint in binary stream");
      }
      value |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return value;
      shift += 7;
    }
    return Status::Corruption("varint overflow in binary stream");
  }

  /// Input bytes decoded so far (refilled minus the unread buffer tail).
  uint64_t consumed() const { return refilled_ - (len_ - pos_); }

 private:
  bool Refill() {
    buf_.resize(64 * 1024);
    in_->read(buf_.data(), static_cast<std::streamsize>(buf_.size()));
    len_ = static_cast<size_t>(in_->gcount());
    refilled_ += len_;
    pos_ = 0;
    return len_ > 0;
  }

  std::ifstream* in_;
  std::string buf_;
  size_t pos_ = 0;
  size_t len_ = 0;
  uint64_t refilled_ = 0;
};

Status StreamBinary(std::ifstream* in, ItemId* num_items,
                    const std::function<Status(std::vector<ItemId>)>& sink,
                    uint64_t* bytes_consumed) {
  BufferedReader reader(in);
  uint64_t item_space_max = 0;
  bool any_segment = false;
  while (true) {
    // Each chunk of an appended file is its own CMB1 segment; clean EOF
    // between segments ends the stream.
    uint8_t byte = 0;
    if (!reader.TryNext(&byte)) break;
    const char magic[4] = {'C', 'M', 'B', '1'};
    if (static_cast<char>(byte) != magic[0]) {
      return Status::Corruption("missing CMB1 magic in segment");
    }
    for (int i = 1; i < 4; ++i) {
      if (!reader.TryNext(&byte) || static_cast<char>(byte) != magic[i]) {
        return Status::Corruption("missing CMB1 magic in segment");
      }
    }
    CORRMINE_ASSIGN_OR_RETURN(const uint64_t item_space, reader.ReadVarint());
    CORRMINE_ASSIGN_OR_RETURN(const uint64_t baskets, reader.ReadVarint());
    if (item_space == 0 || item_space > UINT32_MAX) {
      return Status::Corruption("invalid item-space size");
    }
    any_segment = true;
    item_space_max = std::max(item_space_max, item_space);
    for (uint64_t b = 0; b < baskets; ++b) {
      CORRMINE_ASSIGN_OR_RETURN(const uint64_t size, reader.ReadVarint());
      if (size > item_space) {
        return Status::Corruption("basket size exceeds item space");
      }
      std::vector<ItemId> basket;
      basket.reserve(size);
      uint64_t current = 0;
      for (uint64_t i = 0; i < size; ++i) {
        CORRMINE_ASSIGN_OR_RETURN(const uint64_t delta, reader.ReadVarint());
        if (i > 0 && delta == 0) {
          return Status::Corruption("non-increasing item delta");
        }
        current = i == 0 ? delta : current + delta;
        if (current >= item_space) {
          return Status::Corruption("item id out of range");
        }
        basket.push_back(static_cast<ItemId>(current));
      }
      if (bytes_consumed != nullptr) *bytes_consumed = reader.consumed();
      CORRMINE_RETURN_NOT_OK(sink(std::move(basket)));
    }
  }
  if (!any_segment) {
    return Status::Corruption("binary stream holds no CMB1 segment");
  }
  *num_items = static_cast<ItemId>(item_space_max);
  return Status::OK();
}

Status StreamText(std::ifstream* in, ItemId* num_items,
                  const std::function<Status(std::vector<ItemId>)>& sink,
                  uint64_t* bytes_consumed) {
  std::string line;
  size_t line_no = 0;
  ItemId max_item_plus_1 = 0;
  uint64_t consumed = 0;
  while (std::getline(*in, line)) {
    ++line_no;
    consumed += line.size() + 1;
    CORRMINE_ASSIGN_OR_RETURN(auto basket,
                              ParseTransactionLine(line, line_no));
    if (!basket.has_value()) continue;  // comment line
    for (const ItemId item : *basket) {
      max_item_plus_1 = std::max(max_item_plus_1, item + 1);
    }
    if (bytes_consumed != nullptr) *bytes_consumed = consumed;
    CORRMINE_RETURN_NOT_OK(sink(std::move(*basket)));
  }
  *num_items = max_item_plus_1;
  return Status::OK();
}

}  // namespace

Status StreamTransactionFile(
    const std::string& path, ItemId* num_items,
    const std::function<Status(std::vector<ItemId>)>& sink,
    uint64_t* bytes_consumed) {
  CORRMINE_ASSIGN_OR_RETURN(const TransactionFileFormat format,
                            DetectTransactionFileFormat(path));
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open " + path);
  }
  return format == TransactionFileFormat::kBinary
             ? StreamBinary(&in, num_items, sink, bytes_consumed)
             : StreamText(&in, num_items, sink, bytes_consumed);
}

}  // namespace corrmine::io
