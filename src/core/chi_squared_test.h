#ifndef CORRMINE_CORE_CHI_SQUARED_TEST_H_
#define CORRMINE_CORE_CHI_SQUARED_TEST_H_

#include <cstdint>

#include "core/contingency_table.h"

namespace corrmine {

/// How many degrees of freedom to attribute to the k-way binary test.
enum class DofPolicy {
  /// The paper's convention (Appendix A): one degree of freedom regardless
  /// of k, giving the 3.84 cutoff at the 95% level. Required for the upward
  /// closure theorem the mining algorithm relies on.
  kPaperSingle,
  /// The conventional count for a saturated 2^k table with k fitted
  /// marginals: 2^k - 1 - k (equals 1 when k = 2). Only supported for
  /// k <= 30.
  kIndependenceModel,
};

/// Which goodness-of-fit statistic to compute. Both are asymptotically
/// chi-squared distributed and both are upward closed in the itemset
/// lattice (Pearson by the paper's Theorem 1; the likelihood-ratio G by
/// the log-sum inequality), so either can drive the miner.
enum class IndependenceStatistic {
  /// Pearson's chi-squared: sum (O-E)^2 / E — the paper's choice.
  kPearsonChiSquared,
  /// Likelihood-ratio G = 2 * sum O * ln(O/E). Unoccupied cells contribute
  /// exactly 0, so the sparse representation computes it with no closed-
  /// form correction at all.
  kLikelihoodRatioG,
};

struct ChiSquaredOptions {
  IndependenceStatistic statistic =
      IndependenceStatistic::kPearsonChiSquared;

  /// Cells with expected value below this are excluded from the statistic —
  /// the paper's Section 3.3 workaround for the normal-approximation
  /// breakdown on rare cells. 0 disables masking.
  ///
  /// On the sparse representation only *occupied* cells are maskable; the
  /// aggregate contribution of unoccupied cells (each equal to its expected
  /// value) is always included. Those contributions are individually below
  /// the threshold, so the discrepancy vs. the dense path is bounded by the
  /// total expectation mass of unoccupied low-expectation cells.
  double min_expected_cell = 0.0;

  /// Yates' continuity correction: replace (O-E)^2 with
  /// (max(0, |O-E| - 0.5))^2 in the Pearson statistic. The standard
  /// textbook remedy for the same small-count bias Section 3.3 worries
  /// about; conventionally applied to 2x2 tables only, but available for
  /// any size here. Always *reduces* the statistic, so a corrected
  /// significance verdict is the conservative one. Ignored for the G
  /// statistic. On the sparse representation the correction applies to
  /// occupied cells only (the closed-form aggregate for unoccupied cells
  /// stays uncorrected). Note the corrected statistic is no longer
  /// guaranteed upward closed, so the miner should not combine it with
  /// deep-lattice searches.
  bool yates_correction = false;

  DofPolicy dof_policy = DofPolicy::kPaperSingle;
};

/// Diagnostics for the chi-squared approximation quality (Moore's rule of
/// thumb quoted in Section 3.3).
struct ChiSquaredValidity {
  /// True when every (unmasked) cell has expected value > 1.
  bool all_expected_above_one = true;
  /// Fraction of (unmasked) cells with expected value > 5.
  double fraction_expected_above_five = 0.0;
  /// Cells excluded by ChiSquaredOptions::min_expected_cell.
  uint64_t masked_cells = 0;
  /// False when the diagnostics only cover occupied cells (sparse path).
  bool exact = true;

  /// Moore's textbook conditions: all expectations > 1 and at least 80% > 5.
  bool RuleOfThumbSatisfied() const {
    return all_expected_above_one && fraction_expected_above_five >= 0.8;
  }
};

struct ChiSquaredResult {
  double statistic = 0.0;
  int64_t dof = 1;
  /// Upper-tail p-value of `statistic` at `dof`.
  double p_value = 1.0;
  ChiSquaredValidity validity;

  /// True when the statistic exceeds the chi-squared cutoff at the given
  /// confidence level (paper usage: SignificantAt(0.95) checks against 3.84
  /// under the single-dof policy).
  bool SignificantAt(double confidence_level) const {
    return p_value < 1.0 - confidence_level;
  }
};

/// Pearson chi-squared over a dense table: sum (O-E)^2 / E across cells.
ChiSquaredResult ComputeChiSquared(const ContingencyTable& table,
                                   const ChiSquaredOptions& options = {});

/// Chi-squared over the sparse table using the paper's massaged formula
/// (Section 4): contributions of unoccupied cells collapse into a closed
/// form, so only occupied cells are touched:
///   chi2 = sum_occupied O^2/E - n            (no masking)
ChiSquaredResult ComputeChiSquared(const SparseContingencyTable& table,
                                   const ChiSquaredOptions& options = {});

}  // namespace corrmine

#endif  // CORRMINE_CORE_CHI_SQUARED_TEST_H_
