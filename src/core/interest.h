#ifndef CORRMINE_CORE_INTEREST_H_
#define CORRMINE_CORE_INTEREST_H_

#include <string>
#include <vector>

#include "core/contingency_table.h"

namespace corrmine {

/// Per-cell dependence diagnostics (Section 3.1): the interest
/// I(r) = O(r)/E[r] measures how far a cell deviates from independence
/// (values above 1 are positive dependence, below 1 negative), and the
/// cell's chi-squared contribution (O-E)^2/E identifies the *major
/// dependence* driving a correlation.
struct CellInterest {
  uint32_t mask = 0;        ///< Presence pattern (bit j = j-th item present).
  uint64_t observed = 0;    ///< O(r).
  double expected = 0.0;    ///< E[r].
  double interest = 1.0;    ///< O(r)/E[r]; +inf if E[r] = 0 and O(r) > 0.
  double contribution = 0;  ///< (O(r)-E[r])^2 / E[r].
};

/// Interest and contribution for every cell of a dense table, in mask order.
std::vector<CellInterest> ComputeCellInterests(const ContingencyTable& table);

/// The cell with the largest chi-squared contribution — the paper's "major
/// dependence" (used in Tables 2 and 4 and Example 4).
CellInterest MajorDependenceCell(const ContingencyTable& table);

/// The cell whose interest is farthest from 1 (the paper notes this is
/// typically the same cell as MajorDependenceCell).
CellInterest MostExtremeInterestCell(const ContingencyTable& table);

/// Renders a cell pattern like "{i2, !i7}": items present are listed by
/// name (from `dict`, falling back to "i<id>"), absent ones prefixed with
/// '!'.
std::string FormatCellPattern(const Itemset& s, uint32_t mask,
                              const ItemDictionary* dict = nullptr);

}  // namespace corrmine

#endif  // CORRMINE_CORE_INTEREST_H_
