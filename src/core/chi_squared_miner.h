#ifndef CORRMINE_CORE_CHI_SQUARED_MINER_H_
#define CORRMINE_CORE_CHI_SQUARED_MINER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status_or.h"
#include "core/cell_support.h"
#include "core/chi_squared_test.h"
#include "core/interest.h"
#include "itemset/count_provider.h"

namespace corrmine {

class MetricsRegistry;
class ThreadPool;

/// One heartbeat of a long-running mine, delivered to
/// MinerOptions::progress after each lattice level completes.
struct MinerProgress {
  int level = 0;
  /// Candidates examined at this level.
  uint64_t candidates = 0;
  /// NOTSIG survivors feeding the next level (0 when the search stops).
  uint64_t frontier = 0;
  /// Minimal correlated sets found so far, all levels.
  uint64_t significant_total = 0;
  /// Wall-clock seconds since MineCorrelations started.
  double elapsed_seconds = 0.0;
};

/// Options for the chi-squared/support mining algorithm (Figure 1 of the
/// paper).
struct MinerOptions {
  /// Significance level alpha for the chi-squared cutoff; 0.95 gives the
  /// paper's 3.84 cutoff under the single-dof policy.
  double confidence_level = 0.95;

  /// The generalized support pruning parameters (s and p).
  CellSupportPolicy support;

  /// How pairs are pre-pruned before level 2 (Figure 1 step 3).
  LevelOnePruning level_one = LevelOnePruning::kFigure1Strict;

  /// Statistic options (expected-value masking, dof policy).
  ChiSquaredOptions chi2;

  /// Stop after this level even if candidates remain; 0 = no limit (the
  /// dense contingency-table cap still applies).
  int max_level = 0;

  /// When true, the search additionally returns the *frontier*: the
  /// supported-but-uncorrelated itemsets (NOTSIG) of the final level
  /// processed. Together with the minimal correlated sets this bounds the
  /// correlation border from both sides — useful for analysis and for
  /// seeding random walks. Costs the memory of keeping the last NOTSIG
  /// alive.
  bool keep_frontier = false;

  /// Worker threads for candidate evaluation (contingency-table builds and
  /// chi-squared tests, the §4 dominant cost). 1 = sequential; 0 = one per
  /// hardware thread; N = exactly N. Results are byte-identical across all
  /// settings: candidates are evaluated in index-addressed slots and merged
  /// back in stream order (see DESIGN.md, "Threading architecture").
  int num_threads = 1;

  /// Optional borrowed pool (e.g. a MiningSession's); when null the miner
  /// creates its own for the duration of the call, sized num_threads - 1 so
  /// the calling thread's participation yields num_threads evaluators. A
  /// borrowed pool overrides num_threads for parallel regions; determinism
  /// holds either way.
  ThreadPool* pool = nullptr;

  /// Registry the run's counters and phase spans are recorded into;
  /// nullptr means MetricsRegistry::Global(). The per-level numbers also
  /// land in MiningResult::levels, which is what the deterministic
  /// stats-json section reports (DESIGN.md §6).
  MetricsRegistry* metrics = nullptr;

  /// Optional heartbeat, invoked from the coordinating thread after every
  /// completed level (the CLI's --progress wires a stderr printer here).
  /// Purely observational: it sees per-level totals and wall-clock elapsed,
  /// and must not mutate mining state. Unset costs nothing.
  std::function<void(const MinerProgress&)> progress;
};

/// A mined rule: a supported, minimally correlated itemset together with
/// its test result and the cell that drives the correlation.
struct CorrelationRule {
  Itemset itemset;
  ChiSquaredResult chi2;
  CellInterest major_dependence;
};

/// Per-level bookkeeping — exactly the columns of the paper's Table 5.
struct LevelStats {
  int level = 0;
  /// C(|I|, level): itemsets that would be examined with no pruning.
  uint64_t possible_itemsets = 0;
  /// |CAND|: itemsets actually examined.
  uint64_t candidates = 0;
  /// Candidates discarded by the support test.
  uint64_t discards = 0;
  /// |SIG|: supported and correlated (output) itemsets at this level.
  uint64_t significant = 0;
  /// |NOTSIG|: supported but uncorrelated itemsets at this level.
  uint64_t not_significant = 0;
  /// Chi-squared statistics actually computed (candidates that survived the
  /// support test; equals candidates - discards).
  uint64_t chi2_tests = 0;
  /// Contingency cells excluded by ChiSquaredOptions::min_expected_cell
  /// across this level's tests — the §3.3 validity workaround's footprint.
  uint64_t masked_cells = 0;
};

struct MiningResult {
  /// The border: minimal correlated, supported itemsets, in discovery
  /// order (level by level).
  std::vector<CorrelationRule> significant;
  std::vector<LevelStats> levels;
  /// Supported, uncorrelated itemsets of the last processed level (only
  /// populated when MinerOptions::keep_frontier is set), sorted
  /// lexicographically.
  std::vector<Itemset> frontier;
};

/// Runs Algorithm x2-support (Figure 1): level-wise search over the itemset
/// lattice, keeping supported-but-uncorrelated sets (NOTSIG) as the frontier
/// and emitting supported, minimally correlated sets (SIG).
///
/// `provider` answers subset counts over the same database the marginals
/// come from; pass a BitmapCountProvider for large inputs. The search uses
/// dense contingency tables, so it stops at itemsets of
/// ContingencyTable::kMaxItems items.
StatusOr<MiningResult> MineCorrelations(const CountProvider& provider,
                                        ItemId num_items,
                                        const MinerOptions& options = {});

/// C(n, k) saturated at UINT64_MAX (used for LevelStats::possible_itemsets).
uint64_t BinomialCount(uint64_t n, uint64_t k);

}  // namespace corrmine

#endif  // CORRMINE_CORE_CHI_SQUARED_MINER_H_
