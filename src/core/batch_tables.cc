#include "core/batch_tables.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"

namespace corrmine {

namespace {

using PatternCounts = std::vector<std::unordered_map<uint32_t, uint64_t>>;

/// Projects every basket of [row_begin, row_end) onto every candidate,
/// accumulating presence-pattern counts into `counts` (one map per
/// candidate, indexed like `candidates`).
void CountBasketRange(const TransactionDatabase& db,
                      const std::vector<Itemset>& candidates,
                      size_t row_begin, size_t row_end,
                      PatternCounts* counts) {
  for (size_t row = row_begin; row < row_end; ++row) {
    const std::vector<ItemId>& basket = db.basket(row);
    for (size_t c = 0; c < candidates.size(); ++c) {
      const Itemset& s = candidates[c];
      uint32_t mask = 0;
      size_t bi = 0;
      for (size_t j = 0; j < s.size(); ++j) {
        ItemId target = s.item(j);
        while (bi < basket.size() && basket[bi] < target) ++bi;
        if (bi < basket.size() && basket[bi] == target) {
          mask |= uint32_t{1} << j;
          ++bi;
        }
      }
      // The merge cursor cannot be reused across candidates (different
      // targets), so reset per candidate.
      ++(*counts)[c][mask];
    }
  }
}

Status ValidateBatchArgs(const std::vector<Itemset>& candidates,
                         uint64_t num_baskets, ItemId num_items,
                         int num_threads) {
  if (num_baskets == 0) {
    return Status::FailedPrecondition("batch build over empty database");
  }
  if (num_threads < 0) {
    return Status::InvalidArgument("num_threads must be >= 0");
  }
  for (const Itemset& s : candidates) {
    if (s.empty() ||
        static_cast<int>(s.size()) > SparseContingencyTable::kMaxItems) {
      return Status::InvalidArgument("invalid candidate itemset size");
    }
    if (s.items().back() >= num_items) {
      return Status::OutOfRange("candidate item out of range");
    }
  }
  return Status::OK();
}

/// Merges the per-shard pattern maps in shard order and assembles one
/// sparse table per candidate. `item_count` answers the global marginal
/// O(i) — exact per-shard sums for the sharded overload.
StatusOr<std::vector<SparseContingencyTable>> AssembleTables(
    const std::vector<Itemset>& candidates,
    const std::vector<PatternCounts>& shard_counts, uint64_t num_baskets,
    const std::function<uint64_t(ItemId)>& item_count) {
  std::vector<SparseContingencyTable> tables;
  tables.reserve(candidates.size());
  for (size_t c = 0; c < candidates.size(); ++c) {
    const Itemset& s = candidates[c];
    std::unordered_map<uint32_t, uint64_t> merged;
    for (const PatternCounts& counts : shard_counts) {
      for (const auto& [mask, count] : counts[c]) merged[mask] += count;
    }
    std::vector<uint64_t> item_counts(s.size());
    for (size_t j = 0; j < s.size(); ++j) {
      item_counts[j] = item_count(s.item(j));
    }
    std::vector<SparseContingencyTable::Cell> cells;
    cells.reserve(merged.size());
    for (const auto& [mask, count] : merged) {
      cells.push_back(SparseContingencyTable::Cell{mask, count});
    }
    // Mask order makes the cell list independent of hash-map iteration
    // order — and therefore of the shard split.
    std::sort(cells.begin(), cells.end(),
              [](const SparseContingencyTable::Cell& a,
                 const SparseContingencyTable::Cell& b) {
                return a.mask < b.mask;
              });
    CORRMINE_ASSIGN_OR_RETURN(
        SparseContingencyTable table,
        SparseContingencyTable::FromCells(
            s, IndependenceModel(num_baskets, std::move(item_counts)),
            std::move(cells)));
    tables.push_back(std::move(table));
  }
  return tables;
}

}  // namespace

StatusOr<std::vector<SparseContingencyTable>> BuildSparseTablesBatch(
    const TransactionDatabase& db, const std::vector<Itemset>& candidates,
    int num_threads) {
  CORRMINE_RETURN_NOT_OK(ValidateBatchArgs(candidates, db.num_baskets(),
                                           db.num_items(), num_threads));
  MetricsRegistry& registry = MetricsRegistry::Global();
  PhaseTimer timer(&registry, "batch_tables.build");
  registry.GetCounter("batch_tables.candidates")->Add(candidates.size());
  registry.GetCounter("batch_tables.baskets")->Add(db.num_baskets());

  const int threads = ThreadPool::ResolveThreadCount(num_threads);
  // Morsel the basket axis: fixed-size row chunks give the pool's stealing
  // something to balance (one coarse range per thread used to leave the
  // whole tail on the slowest worker). Each scheduler slot owns a private
  // pattern-map arena; the reduction below sums the arenas in slot order
  // (addition is commutative, so any fixed order gives the sequential
  // counts).
  constexpr size_t kBasketMorsel = 2048;
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads - 1);
  const size_t num_slots =
      ParallelForSlotBound(pool.get(), db.num_baskets(), kBasketMorsel);
  std::vector<PatternCounts> slot_counts(num_slots);
  for (PatternCounts& counts : slot_counts) {
    counts.resize(candidates.size());
  }

  CORRMINE_RETURN_NOT_OK(ParallelForSlots(
      pool.get(), db.num_baskets(), kBasketMorsel,
      [&](size_t slot, size_t begin, size_t end) -> Status {
        CountBasketRange(db, candidates, begin, end, &slot_counts[slot]);
        return Status::OK();
      }));

  return AssembleTables(candidates, slot_counts, db.num_baskets(),
                        [&db](ItemId item) { return db.ItemCount(item); });
}

StatusOr<std::vector<SparseContingencyTable>> BuildSparseTablesBatch(
    const ShardedTransactionDatabase& db,
    const std::vector<Itemset>& candidates, int num_threads) {
  CORRMINE_RETURN_NOT_OK(ValidateBatchArgs(candidates, db.num_baskets(),
                                           db.num_items(), num_threads));
  MetricsRegistry& registry = MetricsRegistry::Global();
  PhaseTimer timer(&registry, "batch_tables.build");
  registry.GetCounter("batch_tables.candidates")->Add(candidates.size());
  registry.GetCounter("batch_tables.baskets")->Add(db.num_baskets());

  // The database shards are the parallel unit; each task projects one
  // shard's baskets onto every candidate into private maps.
  const size_t num_shards = db.num_shards();
  std::vector<PatternCounts> shard_counts(num_shards);
  for (PatternCounts& counts : shard_counts) {
    counts.resize(candidates.size());
  }

  const int threads = ThreadPool::ResolveThreadCount(num_threads);
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads - 1);
  CORRMINE_RETURN_NOT_OK(ParallelFor(
      pool.get(), num_shards, /*grain=*/1,
      [&](size_t begin, size_t end) -> Status {
        for (size_t shard = begin; shard < end; ++shard) {
          const TransactionDatabase& part = db.shard(shard);
          CountBasketRange(part, candidates, 0, part.num_baskets(),
                           &shard_counts[shard]);
        }
        return Status::OK();
      }));

  return AssembleTables(candidates, shard_counts, db.num_baskets(),
                        [&db](ItemId item) { return db.ItemCount(item); });
}

}  // namespace corrmine
