#include "core/batch_tables.h"

#include <unordered_map>

namespace corrmine {

StatusOr<std::vector<SparseContingencyTable>> BuildSparseTablesBatch(
    const TransactionDatabase& db, const std::vector<Itemset>& candidates) {
  if (db.num_baskets() == 0) {
    return Status::FailedPrecondition("batch build over empty database");
  }
  for (const Itemset& s : candidates) {
    if (s.empty() ||
        static_cast<int>(s.size()) > SparseContingencyTable::kMaxItems) {
      return Status::InvalidArgument("invalid candidate itemset size");
    }
    if (s.items().back() >= db.num_items()) {
      return Status::OutOfRange("candidate item out of range");
    }
  }

  // One pattern-count map per candidate, all filled in a single scan.
  std::vector<std::unordered_map<uint32_t, uint64_t>> pattern_counts(
      candidates.size());
  for (size_t row = 0; row < db.num_baskets(); ++row) {
    const std::vector<ItemId>& basket = db.basket(row);
    for (size_t c = 0; c < candidates.size(); ++c) {
      const Itemset& s = candidates[c];
      uint32_t mask = 0;
      size_t bi = 0;
      for (size_t j = 0; j < s.size(); ++j) {
        ItemId target = s.item(j);
        while (bi < basket.size() && basket[bi] < target) ++bi;
        if (bi < basket.size() && basket[bi] == target) {
          mask |= uint32_t{1} << j;
          ++bi;
        }
      }
      // The merge cursor cannot be reused across candidates (different
      // targets), so reset per candidate.
      ++pattern_counts[c][mask];
    }
  }

  std::vector<SparseContingencyTable> tables;
  tables.reserve(candidates.size());
  for (size_t c = 0; c < candidates.size(); ++c) {
    const Itemset& s = candidates[c];
    std::vector<uint64_t> item_counts(s.size());
    for (size_t j = 0; j < s.size(); ++j) {
      item_counts[j] = db.ItemCount(s.item(j));
    }
    std::vector<SparseContingencyTable::Cell> cells;
    cells.reserve(pattern_counts[c].size());
    for (const auto& [mask, count] : pattern_counts[c]) {
      cells.push_back(SparseContingencyTable::Cell{mask, count});
    }
    CORRMINE_ASSIGN_OR_RETURN(
        SparseContingencyTable table,
        SparseContingencyTable::FromCells(
            s, IndependenceModel(db.num_baskets(), std::move(item_counts)),
            std::move(cells)));
    tables.push_back(std::move(table));
  }
  return tables;
}

}  // namespace corrmine
