#ifndef CORRMINE_CORE_BATCH_TABLES_H_
#define CORRMINE_CORE_BATCH_TABLES_H_

#include <vector>

#include "common/status_or.h"
#include "core/contingency_table.h"
#include "itemset/sharded_database.h"
#include "itemset/transaction_database.h"

namespace corrmine {

/// Builds the sparse contingency tables of many candidate itemsets in a
/// single pass over the database — the alternative counting strategy the
/// paper analyzes in Section 4 ("make one pass over the database at each
/// level, constructing all the necessary contingency tables at once",
/// O(n * |CAND|) time, O(k^i) space in the worst case).
///
/// Each basket is projected onto every candidate (a merge over the sorted
/// basket) and the resulting presence pattern counted. Returns one sparse
/// table per candidate, in input order, each table's occupied cells sorted
/// by mask. Candidates must be non-empty, of size <=
/// SparseContingencyTable::kMaxItems, with in-range items.
///
/// `num_threads` shards the basket scan: each worker accumulates private
/// per-candidate pattern counts over its basket range and a sequential
/// reduction sums them in shard order, so the result is identical for any
/// thread count (1 = sequential, 0 = hardware concurrency).
StatusOr<std::vector<SparseContingencyTable>> BuildSparseTablesBatch(
    const TransactionDatabase& db, const std::vector<Itemset>& candidates,
    int num_threads = 1);

/// Shard-native overload: each database shard is counted by one task into
/// private pattern maps, merged in shard order. The shard partition is the
/// parallel unit (no re-splitting of the basket axis), and per the
/// K-invariance contract (DESIGN.md §7) the summed tables are identical to
/// the monolithic build for any K and any thread count.
StatusOr<std::vector<SparseContingencyTable>> BuildSparseTablesBatch(
    const ShardedTransactionDatabase& db,
    const std::vector<Itemset>& candidates, int num_threads = 1);

}  // namespace corrmine

#endif  // CORRMINE_CORE_BATCH_TABLES_H_
