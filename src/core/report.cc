#include "core/report.h"

#include <algorithm>
#include <vector>

#include "core/interest.h"
#include "io/table_printer.h"
#include "stats/multiple_testing.h"

namespace corrmine {

namespace {

std::string NameOf(ItemId item, const ItemDictionary* dict) {
  if (dict != nullptr) {
    auto name = dict->Name(item);
    if (name.ok()) return *name;
  }
  return "i" + std::to_string(item);
}

std::string ItemsetNames(const Itemset& s, const ItemDictionary* dict) {
  std::string out;
  for (ItemId item : s) {
    if (!out.empty()) out += " + ";
    out += NameOf(item, dict);
  }
  return out;
}

/// True when the rule's major-dependence cell has every item present (the
/// all-present corner), which is where "joint interest" reads naturally.
bool AllPresentCell(const CorrelationRule& rule) {
  uint32_t full = (uint32_t{1} << rule.itemset.size()) - 1;
  return rule.major_dependence.mask == full;
}

}  // namespace

std::string RenderReport(const MiningResult& result,
                         const ItemDictionary* dict,
                         const ReportOptions& options) {
  std::string out;

  out += "== Search statistics ==\n";
  {
    io::TablePrinter levels({"level", "candidates", "discards",
                             "significant", "kept uncorrelated"});
    for (const LevelStats& level : result.levels) {
      levels.AddRow({std::to_string(level.level),
                     std::to_string(level.candidates),
                     std::to_string(level.discards),
                     std::to_string(level.significant),
                     std::to_string(level.not_significant)});
    }
    out += levels.Render();
  }

  // Optional FDR filter over the findings.
  std::vector<const CorrelationRule*> rules;
  for (const CorrelationRule& rule : result.significant) {
    rules.push_back(&rule);
  }
  size_t fdr_removed = 0;
  if (options.fdr_level > 0.0 && !rules.empty()) {
    std::vector<double> p_values;
    p_values.reserve(rules.size());
    for (const CorrelationRule* rule : rules) {
      p_values.push_back(rule->chi2.p_value);
    }
    auto keep = stats::BenjaminiHochberg(p_values, options.fdr_level);
    if (keep.ok()) {
      std::vector<const CorrelationRule*> filtered;
      for (size_t i = 0; i < rules.size(); ++i) {
        if ((*keep)[i]) {
          filtered.push_back(rules[i]);
        } else {
          ++fdr_removed;
        }
      }
      rules = std::move(filtered);
    }
  }

  std::sort(rules.begin(), rules.end(),
            [](const CorrelationRule* a, const CorrelationRule* b) {
              return a->chi2.statistic > b->chi2.statistic;
            });

  out += "\n== Strongest correlations ==\n";
  {
    io::TablePrinter strongest({"itemset", "chi2", "p-value",
                                "driving cell", "interest"});
    for (size_t i = 0; i < rules.size() && i < options.max_rules; ++i) {
      const CorrelationRule& rule = *rules[i];
      strongest.AddRow(
          {ItemsetNames(rule.itemset, dict),
           io::FormatDouble(rule.chi2.statistic, 2),
           io::FormatDouble(rule.chi2.p_value, 6),
           FormatCellPattern(rule.itemset, rule.major_dependence.mask,
                             dict),
           io::FormatDouble(rule.major_dependence.interest, 3)});
    }
    out += strongest.Render();
  }

  out += "\n== Negative dependencies (items that avoid each other) ==\n";
  {
    io::TablePrinter negatives({"itemset", "chi2", "joint interest"});
    size_t shown = 0;
    for (const CorrelationRule* rule : rules) {
      // Negative dependence: the all-present corner is the major cell with
      // interest below the cutoff, or any major cell with interest < 1
      // that includes every item.
      if (AllPresentCell(*rule) &&
          rule->major_dependence.interest <
              options.negative_interest_cutoff) {
        negatives.AddRow({ItemsetNames(rule->itemset, dict),
                          io::FormatDouble(rule->chi2.statistic, 2),
                          io::FormatDouble(rule->major_dependence.interest,
                                           3)});
        if (++shown >= options.max_rules) break;
      }
    }
    if (shown == 0) {
      out += "(none below interest " +
             io::FormatDouble(options.negative_interest_cutoff, 2) + ")\n";
    } else {
      out += negatives.Render();
    }
  }

  out += "\n" + std::to_string(rules.size()) + " findings";
  if (options.fdr_level > 0.0) {
    out += " after FDR " + io::FormatDouble(options.fdr_level, 2) +
           " filtering (" + std::to_string(fdr_removed) + " removed)";
  }
  if (!result.frontier.empty()) {
    out += "; frontier of " + std::to_string(result.frontier.size()) +
           " supported uncorrelated sets";
  }
  out += ".\n";
  return out;
}

}  // namespace corrmine
