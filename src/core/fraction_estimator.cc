#include "core/fraction_estimator.h"

#include <cmath>

#include "datagen/rng.h"

namespace corrmine {

StatusOr<FractionEstimate> EstimateCorrelatedFraction(
    const CountProvider& provider, ItemId num_items, int level,
    const FractionEstimateOptions& options) {
  if (provider.num_baskets() == 0) {
    return Status::FailedPrecondition("estimating over an empty database");
  }
  if (level < 2 || level > ContingencyTable::kMaxItems) {
    return Status::InvalidArgument("level must be in [2, dense-table cap]");
  }
  if (num_items < static_cast<ItemId>(level)) {
    return Status::InvalidArgument("fewer items than the itemset size");
  }
  if (options.samples < 1) {
    return Status::InvalidArgument("samples must be positive");
  }

  datagen::Rng rng(options.seed);
  int correlated = 0;
  for (int sample = 0; sample < options.samples; ++sample) {
    // Uniform size-`level` subset via partial Fisher-Yates over item ids
    // (rejection-free: sample distinct ids directly).
    std::vector<ItemId> items;
    while (static_cast<int>(items.size()) < level) {
      ItemId candidate = static_cast<ItemId>(rng.NextBelow(num_items));
      bool duplicate = false;
      for (ItemId existing : items) {
        if (existing == candidate) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) items.push_back(candidate);
    }
    CORRMINE_ASSIGN_OR_RETURN(
        ContingencyTable table,
        ContingencyTable::Build(provider, Itemset(std::move(items))));
    if (ComputeChiSquared(table, options.chi2)
            .SignificantAt(options.confidence_level)) {
      ++correlated;
    }
  }

  FractionEstimate estimate;
  estimate.samples = options.samples;
  estimate.fraction = static_cast<double>(correlated) /
                      static_cast<double>(options.samples);
  estimate.std_error = std::sqrt(
      estimate.fraction * (1.0 - estimate.fraction) /
      static_cast<double>(options.samples));
  return estimate;
}

}  // namespace corrmine
