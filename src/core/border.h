#ifndef CORRMINE_CORE_BORDER_H_
#define CORRMINE_CORE_BORDER_H_

#include <vector>

#include "itemset/itemset.h"

namespace corrmine {

/// The border of correlation (Section 2.2): because chi-squared significance
/// is upward closed, the minimal correlated itemsets partition the lattice —
/// everything above (a superset of) a border element is correlated,
/// everything else visited by the search was not. The border therefore
/// "encodes all the useful information about the interesting itemsets".
class CorrelationBorder {
 public:
  CorrelationBorder() = default;

  /// Builds from a set of correlated itemsets, keeping only the minimal
  /// ones (those with no proper subset also in the input).
  explicit CorrelationBorder(std::vector<Itemset> correlated_sets);

  /// The minimal correlated itemsets, lexicographically sorted.
  const std::vector<Itemset>& minimal_sets() const { return minimal_; }

  size_t size() const { return minimal_.size(); }
  bool empty() const { return minimal_.empty(); }

  /// True iff `s` is a superset of (or equal to) some border element — by
  /// upward closure, exactly the itemsets known to be correlated.
  bool IsAboveBorder(const Itemset& s) const;

  /// True iff `s` is itself one of the minimal sets.
  bool IsOnBorder(const Itemset& s) const;

 private:
  std::vector<Itemset> minimal_;
};

}  // namespace corrmine

#endif  // CORRMINE_CORE_BORDER_H_
