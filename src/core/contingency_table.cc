#include "core/contingency_table.h"

#include <cmath>
#include <unordered_map>

#include "common/logging.h"

namespace corrmine {

IndependenceModel::IndependenceModel(uint64_t n,
                                     std::vector<uint64_t> item_counts)
    : n_(n), item_counts_(std::move(item_counts)) {
  CORRMINE_CHECK(n_ > 0) << "independence model over an empty database";
  probs_.reserve(item_counts_.size());
  for (uint64_t c : item_counts_) {
    probs_.push_back(static_cast<double>(c) / static_cast<double>(n_));
  }
}

double IndependenceModel::Expected(uint32_t mask) const {
  double e = static_cast<double>(n_);
  for (size_t j = 0; j < probs_.size(); ++j) {
    e *= (mask >> j) & 1 ? probs_[j] : 1.0 - probs_[j];
  }
  return e;
}

namespace {

Status ValidateItemset(const Itemset& s, ItemId limit, int max_items) {
  if (s.empty()) {
    return Status::InvalidArgument("contingency table over empty itemset");
  }
  if (static_cast<int>(s.size()) > max_items) {
    return Status::OutOfRange("itemset too large for this representation: " +
                              std::to_string(s.size()));
  }
  if (s.items().back() >= limit) {
    return Status::OutOfRange("itemset contains out-of-range item " +
                              std::to_string(s.items().back()));
  }
  return Status::OK();
}

}  // namespace

StatusOr<ContingencyTable> ContingencyTable::Build(
    const CountProvider& provider, const Itemset& s) {
  CORRMINE_RETURN_NOT_OK(ValidateItemset(
      s, static_cast<ItemId>(UINT32_MAX), kMaxItems));
  uint64_t n = provider.num_baskets();
  if (n == 0) {
    return Status::FailedPrecondition("contingency table over empty database");
  }
  const int k = static_cast<int>(s.size());
  const uint32_t num_cells = uint32_t{1} << k;

  // superset_count[m] = number of baskets containing every item of mask m.
  std::vector<uint64_t> counts(num_cells);
  counts[0] = n;
  for (uint32_t m = 1; m < num_cells; ++m) {
    std::vector<ItemId> items;
    for (int j = 0; j < k; ++j) {
      if ((m >> j) & 1) items.push_back(s.item(j));
    }
    counts[m] = provider.CountAllPresent(Itemset(std::move(items)));
  }
  return FromAllPresentCounts(s, counts);
}

StatusOr<ContingencyTable> ContingencyTable::FromAllPresentCounts(
    const Itemset& s, std::span<const uint64_t> all_present) {
  CORRMINE_RETURN_NOT_OK(ValidateItemset(
      s, static_cast<ItemId>(UINT32_MAX), kMaxItems));
  const int k = static_cast<int>(s.size());
  const uint32_t num_cells = uint32_t{1} << k;
  if (all_present.size() != num_cells) {
    return Status::InvalidArgument(
        "superset-count vector size does not match 2^|s|");
  }
  const uint64_t n = all_present[0];
  if (n == 0) {
    return Status::FailedPrecondition("contingency table over empty database");
  }

  std::vector<uint64_t> item_counts(k);
  for (int j = 0; j < k; ++j) item_counts[j] = all_present[uint32_t{1} << j];

  // Mobius inversion over the superset lattice turns "at least the items in
  // m" counts into exact cell counts: for each bit j, subtract the count of
  // the mask with j forced present from every mask lacking j.
  // We compute into signed space, then check non-negativity.
  std::vector<int64_t> exact(all_present.begin(), all_present.end());
  for (int j = 0; j < k; ++j) {
    const uint32_t bit = uint32_t{1} << j;
    for (uint32_t m = 0; m < num_cells; ++m) {
      if (!(m & bit)) exact[m] -= exact[m | bit];
    }
  }
  std::vector<uint64_t> observed(num_cells);
  for (uint32_t m = 0; m < num_cells; ++m) {
    if (exact[m] < 0) {
      return Status::Corruption(
          "inconsistent counts from provider (negative cell)");
    }
    observed[m] = static_cast<uint64_t>(exact[m]);
  }

  return ContingencyTable(s, IndependenceModel(n, std::move(item_counts)),
                          std::move(observed));
}

size_t ContingencyTable::CellsWithCountAtLeast(uint64_t threshold) const {
  size_t count = 0;
  for (uint64_t o : observed_) {
    if (o >= threshold) ++count;
  }
  return count;
}

StatusOr<SparseContingencyTable> SparseContingencyTable::Build(
    const TransactionDatabase& db, const Itemset& s) {
  CORRMINE_RETURN_NOT_OK(ValidateItemset(s, db.num_items(), kMaxItems));
  if (db.num_baskets() == 0) {
    return Status::FailedPrecondition("contingency table over empty database");
  }
  const int k = static_cast<int>(s.size());

  std::unordered_map<uint32_t, uint64_t> pattern_counts;
  for (size_t row = 0; row < db.num_baskets(); ++row) {
    // Merge the sorted basket against the sorted itemset to form the mask.
    const std::vector<ItemId>& basket = db.basket(row);
    uint32_t mask = 0;
    size_t bi = 0;
    for (int j = 0; j < k; ++j) {
      ItemId target = s.item(j);
      while (bi < basket.size() && basket[bi] < target) ++bi;
      if (bi < basket.size() && basket[bi] == target) {
        mask |= uint32_t{1} << j;
        ++bi;
      }
    }
    ++pattern_counts[mask];
  }

  std::vector<uint64_t> item_counts(k);
  for (int j = 0; j < k; ++j) item_counts[j] = db.ItemCount(s.item(j));

  std::vector<Cell> cells;
  cells.reserve(pattern_counts.size());
  for (const auto& [mask, count] : pattern_counts) {
    cells.push_back(Cell{mask, count});
  }

  return SparseContingencyTable(
      s, IndependenceModel(db.num_baskets(), std::move(item_counts)),
      std::move(cells));
}

StatusOr<SparseContingencyTable> SparseContingencyTable::FromCells(
    Itemset s, IndependenceModel model, std::vector<Cell> cells) {
  if (s.empty() || static_cast<int>(s.size()) > kMaxItems ||
      static_cast<int>(s.size()) != model.num_items()) {
    return Status::InvalidArgument(
        "itemset/model mismatch when assembling sparse table");
  }
  const uint32_t width = static_cast<uint32_t>(s.size());
  uint64_t total = 0;
  std::unordered_map<uint32_t, bool> seen;
  for (const Cell& cell : cells) {
    if (cell.observed == 0) {
      return Status::InvalidArgument("sparse cells must have count > 0");
    }
    if (width < 32 && (cell.mask >> width) != 0) {
      return Status::OutOfRange("cell mask exceeds itemset width");
    }
    if (!seen.emplace(cell.mask, true).second) {
      return Status::InvalidArgument("duplicate cell mask");
    }
    total += cell.observed;
  }
  if (total != model.n()) {
    return Status::Corruption("sparse cell counts do not sum to n");
  }
  return SparseContingencyTable(std::move(s), std::move(model),
                                std::move(cells));
}

double SparseContingencyTable::TotalCellCount() const {
  return std::ldexp(1.0, num_items());
}

size_t SparseContingencyTable::CellsWithCountAtLeast(
    uint64_t threshold) const {
  if (threshold == 0) return static_cast<size_t>(TotalCellCount());
  size_t count = 0;
  for (const Cell& cell : cells_) {
    if (cell.observed >= threshold) ++count;
  }
  return count;
}

}  // namespace corrmine
