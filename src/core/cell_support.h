#ifndef CORRMINE_CORE_CELL_SUPPORT_H_
#define CORRMINE_CORE_CELL_SUPPORT_H_

#include <cstdint>

#include "core/contingency_table.h"

namespace corrmine {

/// The paper's generalization of support (Section 4): "a set of items S has
/// support s at the p% level if at least p% of the cells in the contingency
/// table for S have value s". Unlike support-confidence support, this looks
/// at *all* cells (absence included), which is what makes negative
/// dependence minable; expressing p as a fraction of cells is what makes it
/// downward closed.
struct CellSupportPolicy {
  /// s: minimum observed count a cell needs to count as supported.
  uint64_t min_count = 1;
  /// p: required fraction of supported cells, in (0, 1]. The special
  /// level-1 pruning is only sound for p > 0.25.
  double cell_fraction = 0.25 + 1e-9;
};

/// Number of cells required for a table with `num_cells` cells to pass the
/// policy: ceil(p * num_cells), at least 1.
uint64_t RequiredSupportedCells(const CellSupportPolicy& policy,
                                double num_cells);

/// Whether the dense table passes the support test.
bool HasCellSupport(const ContingencyTable& table,
                    const CellSupportPolicy& policy);

/// Whether the sparse table passes the support test (unoccupied cells can
/// never reach min_count >= 1).
bool HasCellSupport(const SparseContingencyTable& table,
                    const CellSupportPolicy& policy);

/// Level-1 pruning strategies for candidate pairs (Section 4 / Figure 1).
enum class LevelOnePruning {
  /// Figure 1, step 3 verbatim: keep {a, b} only when O(a) > s and
  /// O(b) > s. This is what the paper's Table 5 candidate counts imply.
  kFigure1Strict,
  /// The prose justification made exact: bound each of the four cells by
  /// its margins and keep the pair iff enough cells could possibly reach s.
  /// Strictly weaker pruning than kFigure1Strict but never discards a pair
  /// that could pass the support test.
  kFeasibilityBound,
  /// No level-1 pruning; every pair becomes a candidate.
  kNone,
};

/// Applies the selected level-1 strategy to the pair {a, b} given the item
/// occurrence counts and database size n. Returns true when the pair should
/// be kept as a candidate.
bool PairPassesLevelOne(uint64_t count_a, uint64_t count_b, uint64_t n,
                        const CellSupportPolicy& policy,
                        LevelOnePruning mode);

}  // namespace corrmine

#endif  // CORRMINE_CORE_CELL_SUPPORT_H_
