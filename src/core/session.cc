#include "core/session.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "common/metrics.h"
#include "common/profiler.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "io/sharded_loader.h"
#include "io/transaction_io.h"

namespace corrmine {

namespace {

Status ValidateSessionOptions(const SessionOptions& options,
                              size_t resolved_shards) {
  if (options.num_threads < 0) {
    return Status::InvalidArgument("num_threads must be >= 0");
  }
  if (options.num_shards < 0) {
    return Status::InvalidArgument("num_shards must be >= 0");
  }
  if (options.prefix_cache && resolved_shards != 1) {
    return Status::InvalidArgument(
        "prefix_cache requires num_shards == 1 (the cache decorates a "
        "single whole-database index)");
  }
  if (options.prefix_cache &&
      options.provider != SessionProvider::kBitmap) {
    return Status::InvalidArgument(
        "prefix_cache requires the bitmap provider (the cache memoizes "
        "whole-database prefix bitmaps)");
  }
  return Status::OK();
}

}  // namespace

MiningSession::MiningSession(MiningSession&&) noexcept = default;
MiningSession& MiningSession::operator=(MiningSession&&) noexcept = default;
MiningSession::~MiningSession() = default;

MiningSession::MiningSession(ShardedTransactionDatabase db,
                             const SessionOptions& options)
    : db_(std::move(db)),
      provider_kind_(options.provider),
      threads_(ThreadPool::ResolveThreadCount(options.num_threads)),
      metrics_(options.metrics) {
  TraceScope span("session.open", -1,
                  static_cast<int64_t>(db_.num_shards()),
                  static_cast<int64_t>(db_.num_baskets()));
  ProfileScope profile("io.load");
  switch (provider_kind_) {
    case SessionProvider::kBitmap:
      sharded_provider_ = std::make_unique<ShardedCountProvider>(db_);
      active_provider_ = sharded_provider_.get();
      break;
    case SessionProvider::kCompressed:
      compressed_provider_ = std::make_unique<CompressedCountProvider>(db_);
      active_provider_ = compressed_provider_.get();
      break;
    case SessionProvider::kScan:
      scan_provider_ = std::make_unique<ShardedScanCountProvider>(db_);
      active_provider_ = scan_provider_.get();
      break;
  }
  if (options.prefix_cache) {
    // Validated by the factories: the bitmap strategy with exactly one
    // shard, whose vertical index therefore covers the whole database.
    cached_ =
        std::make_unique<CachedCountProvider>(sharded_provider_->shard_index(0));
    active_provider_ = cached_.get();
  }
  if (threads_ > 1) pool_ = std::make_unique<ThreadPool>(threads_ - 1);
  metrics().GetGauge("mem.peak_rss_bytes")
      ->Set(static_cast<int64_t>(PeakRssBytes()));
}

StatusOr<MiningSession> MiningSession::Open(const std::string& path,
                                            const SessionOptions& options) {
  const size_t shards =
      ShardedTransactionDatabase::ResolveShardCount(options.num_shards);
  CORRMINE_RETURN_NOT_OK(ValidateSessionOptions(options, shards));
  if (options.named_items) {
    std::ifstream file(path);
    if (!file) return Status::IOError("cannot open " + path);
    std::ostringstream content;
    content << file.rdbuf();
    if (file.bad()) return Status::IOError("error reading " + path);
    CORRMINE_ASSIGN_OR_RETURN(TransactionDatabase db,
                              io::ParseNamedTransactions(content.str()));
    return MiningSession(ShardedTransactionDatabase::Partition(db, shards),
                         options);
  }
  CORRMINE_ASSIGN_OR_RETURN(
      ShardedTransactionDatabase db,
      io::LoadTransactionFileSharded(path, shards, options.num_items_hint));
  return MiningSession(std::move(db), options);
}

StatusOr<MiningSession> MiningSession::FromDatabase(
    const TransactionDatabase& db, const SessionOptions& options) {
  const size_t shards =
      ShardedTransactionDatabase::ResolveShardCount(options.num_shards);
  CORRMINE_RETURN_NOT_OK(ValidateSessionOptions(options, shards));
  return MiningSession(ShardedTransactionDatabase::Partition(db, shards),
                       options);
}

StatusOr<MiningSession> MiningSession::FromShardedDatabase(
    ShardedTransactionDatabase db, const SessionOptions& options) {
  CORRMINE_RETURN_NOT_OK(ValidateSessionOptions(options, db.num_shards()));
  return MiningSession(std::move(db), options);
}

MetricsRegistry& MiningSession::metrics() const {
  return metrics_ != nullptr ? *metrics_ : MetricsRegistry::Global();
}

// Memory bookkeeping shared by every Mine* entry point: refreshed after each
// run so a stats dump taken at any point reflects the high-water marks.
void MiningSession::PublishMemoryGauges() const {
  MetricsRegistry& registry = metrics();
  registry.GetGauge("mem.peak_rss_bytes")
      ->Set(static_cast<int64_t>(PeakRssBytes()));
  if (sharded_provider_ != nullptr) {
    registry.GetGauge("mem.shard_index_bytes")
        ->Set(static_cast<int64_t>(sharded_provider_->IndexMemoryBytes()));
  }
  if (compressed_provider_ != nullptr) {
    registry.GetGauge("mem.shard_index_bytes")
        ->Set(static_cast<int64_t>(compressed_provider_->IndexMemoryBytes()));
    const ColumnStorageStats storage = compressed_provider_->StorageStats();
    registry.GetGauge("column.array_containers")
        ->Set(static_cast<int64_t>(storage.array_containers));
    registry.GetGauge("column.dense_containers")
        ->Set(static_cast<int64_t>(storage.dense_containers));
    registry.GetGauge("column.run_containers")
        ->Set(static_cast<int64_t>(storage.run_containers));
    registry.GetGauge("column.payload_bytes")
        ->Set(static_cast<int64_t>(storage.payload_bytes));
  }
  if (cached_ != nullptr) {
    registry.GetGauge("mem.cache_bytes")
        ->Set(static_cast<int64_t>(cached_->MemoryBytes()));
  }
}

Status MiningSession::AppendBatch(const TransactionDatabase& chunk) {
  TraceScope span("session.append", -1,
                  static_cast<int64_t>(chunk.num_baskets()),
                  static_cast<int64_t>(chunk.num_items()));
  if (chunk.num_items() > db_.num_items()) {
    CORRMINE_RETURN_NOT_OK(db_.GrowItemSpace(chunk.num_items()));
  }
  for (size_t row = 0; row < chunk.num_baskets(); ++row) {
    CORRMINE_RETURN_NOT_OK(db_.AddBasket(chunk.basket(row)));
  }
  if (sharded_provider_ != nullptr) sharded_provider_->AppendFrom(db_);
  if (compressed_provider_ != nullptr) compressed_provider_->AppendFrom(db_);
  // The scan provider reads db_ live — nothing to catch up.
  if (cached_ != nullptr) cached_->AdvanceEpoch();
  PublishMemoryGauges();
  return Status::OK();
}

StatusOr<MiningResult> MiningSession::Mine(MinerOptions options) const {
  TraceScope span("session.mine", -1, static_cast<int64_t>(db_.num_shards()),
                  static_cast<int64_t>(threads_));
  options.num_threads = threads_;
  options.pool = pool_.get();
  if (options.metrics == nullptr) options.metrics = metrics_;
  auto result = MineCorrelations(provider(), db_.num_items(), options);
  PublishMemoryGauges();
  return result;
}

StatusOr<MiningResult> MiningSession::MineRandomWalk(
    RandomWalkOptions options) const {
  TraceScope span("session.mine_random_walk", -1,
                  static_cast<int64_t>(db_.num_shards()),
                  static_cast<int64_t>(threads_));
  options.miner.num_threads = threads_;
  options.miner.pool = pool_.get();
  if (options.miner.metrics == nullptr) options.miner.metrics = metrics_;
  auto result = MineCorrelationsRandomWalk(provider(), db_.num_items(), options);
  PublishMemoryGauges();
  return result;
}

StatusOr<std::vector<FrequentItemset>> MiningSession::MineFrequent(
    AprioriOptions options) const {
  TraceScope span("session.mine_frequent", -1,
                  static_cast<int64_t>(db_.num_shards()),
                  static_cast<int64_t>(threads_));
  options.num_threads = threads_;
  options.pool = pool_.get();
  auto result = MineFrequentItemsets(provider(), db_.num_items(), options);
  PublishMemoryGauges();
  return result;
}

StatusOr<std::vector<FrequentItemset>> MiningSession::MineFrequentEclat(
    EclatOptions options) const {
  TraceScope span("session.mine_frequent_eclat", -1,
                  static_cast<int64_t>(db_.num_shards()),
                  static_cast<int64_t>(threads_));
  options.num_threads = threads_;
  options.pool = pool_.get();
  auto result = MineFrequentItemsetsEclat(db_, options);
  PublishMemoryGauges();
  return result;
}

}  // namespace corrmine
