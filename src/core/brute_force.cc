#include "core/brute_force.h"

#include <algorithm>
#include <functional>
#include <map>
#include <vector>

namespace corrmine {

namespace {

/// Enumerates all size-k subsets of {0..num_items-1} in lexicographic order.
void ForEachItemset(ItemId num_items, int k,
                    const std::function<void(const Itemset&)>& fn) {
  std::vector<ItemId> combo(k);
  for (int i = 0; i < k; ++i) combo[i] = static_cast<ItemId>(i);
  if (k > static_cast<int>(num_items)) return;
  while (true) {
    fn(Itemset(std::vector<ItemId>(combo)));
    int pos = k - 1;
    while (pos >= 0 &&
           combo[pos] == num_items - static_cast<ItemId>(k - pos)) {
      --pos;
    }
    if (pos < 0) break;
    ++combo[pos];
    for (int j = pos + 1; j < k; ++j) combo[j] = combo[j - 1] + 1;
  }
}

}  // namespace

StatusOr<MiningResult> MineCorrelationsBruteForce(
    const CountProvider& provider, ItemId num_items,
    const MinerOptions& options, int max_level) {
  if (provider.num_baskets() == 0) {
    return Status::FailedPrecondition("mining an empty database");
  }
  MiningResult result;
  uint64_t n = provider.num_baskets();

  std::vector<uint64_t> item_counts(num_items);
  for (ItemId i = 0; i < num_items; ++i) {
    item_counts[i] = provider.CountAllPresent(Itemset{i});
  }

  max_level = std::min(max_level, ContingencyTable::kMaxItems);
  std::map<Itemset, bool> not_sig_prev;  // NOTSIG at the previous level.
  Status failure = Status::OK();

  for (int level = 2; level <= max_level; ++level) {
    LevelStats stats;
    stats.level = level;
    stats.possible_itemsets = BinomialCount(num_items, level);
    std::map<Itemset, bool> not_sig_here;

    ForEachItemset(num_items, level, [&](const Itemset& s) {
      if (!failure.ok()) return;
      // Candidate?
      if (level == 2) {
        if (!PairPassesLevelOne(item_counts[s.item(0)],
                                item_counts[s.item(1)], n, options.support,
                                options.level_one)) {
          return;
        }
      } else {
        for (const Itemset& subset : s.SubsetsMissingOne()) {
          if (!not_sig_prev.count(subset)) return;
        }
      }
      ++stats.candidates;
      auto table_or = ContingencyTable::Build(provider, s);
      if (!table_or.ok()) {
        failure = table_or.status();
        return;
      }
      const ContingencyTable& table = *table_or;
      if (!HasCellSupport(table, options.support)) {
        ++stats.discards;
        return;
      }
      ChiSquaredResult chi2 = ComputeChiSquared(table, options.chi2);
      ++stats.chi2_tests;
      stats.masked_cells += chi2.validity.masked_cells;
      if (chi2.SignificantAt(options.confidence_level)) {
        ++stats.significant;
        result.significant.push_back(
            CorrelationRule{s, chi2, MajorDependenceCell(table)});
      } else {
        ++stats.not_significant;
        not_sig_here.emplace(s, true);
      }
    });
    if (!failure.ok()) return failure;

    result.levels.push_back(stats);
    if (not_sig_here.empty() && stats.candidates == 0) break;
    not_sig_prev = std::move(not_sig_here);
  }
  // Trim trailing all-zero levels so the shape matches the level-wise miner,
  // which stops as soon as CAND is empty.
  while (!result.levels.empty() && result.levels.back().candidates == 0) {
    result.levels.pop_back();
  }
  return result;
}

}  // namespace corrmine
