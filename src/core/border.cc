#include "core/border.h"

#include <algorithm>

#include "common/metrics.h"

namespace corrmine {

CorrelationBorder::CorrelationBorder(std::vector<Itemset> correlated_sets) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  PhaseTimer timer(&registry, "border.build");
  registry.GetCounter("border.input_sets")->Add(correlated_sets.size());
  // Sort by size so any proper subset precedes its supersets; keep a set
  // only if no already-kept set is contained in it.
  std::sort(correlated_sets.begin(), correlated_sets.end(),
            [](const Itemset& a, const Itemset& b) {
              if (a.size() != b.size()) return a.size() < b.size();
              return a < b;
            });
  correlated_sets.erase(
      std::unique(correlated_sets.begin(), correlated_sets.end()),
      correlated_sets.end());
  for (const Itemset& s : correlated_sets) {
    bool minimal = true;
    for (const Itemset& kept : minimal_) {
      if (s.ContainsAll(kept)) {
        minimal = false;
        break;
      }
    }
    if (minimal) minimal_.push_back(s);
  }
  std::sort(minimal_.begin(), minimal_.end());
  registry.GetCounter("border.minimal_sets")->Add(minimal_.size());
}

bool CorrelationBorder::IsAboveBorder(const Itemset& s) const {
  for (const Itemset& kept : minimal_) {
    if (s.ContainsAll(kept)) return true;
  }
  return false;
}

bool CorrelationBorder::IsOnBorder(const Itemset& s) const {
  return std::binary_search(minimal_.begin(), minimal_.end(), s);
}

}  // namespace corrmine
