#include "core/chi_squared_test.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "stats/chi_squared_distribution.h"

namespace corrmine {

namespace {

int64_t ResolveDof(DofPolicy policy, int k) {
  switch (policy) {
    case DofPolicy::kPaperSingle:
      return 1;
    case DofPolicy::kIndependenceModel:
      CORRMINE_CHECK(k <= 30)
          << "kIndependenceModel dof overflows for k > 30";
      return (int64_t{1} << k) - 1 - k;
  }
  return 1;
}

double PValue(double statistic, int64_t dof) {
  return stats::ChiSquaredPValue(statistic, static_cast<int>(dof));
}

/// Per-cell term of the selected statistic; `observed` may be zero.
double CellTerm(const ChiSquaredOptions& options, double observed,
                double expected) {
  switch (options.statistic) {
    case IndependenceStatistic::kPearsonChiSquared: {
      double diff = std::fabs(observed - expected);
      if (options.yates_correction) diff = std::max(0.0, diff - 0.5);
      return diff * diff / expected;
    }
    case IndependenceStatistic::kLikelihoodRatioG:
      if (observed <= 0.0) return 0.0;
      return 2.0 * observed * std::log(observed / expected);
  }
  return 0.0;
}

}  // namespace

ChiSquaredResult ComputeChiSquared(const ContingencyTable& table,
                                   const ChiSquaredOptions& options) {
  ChiSquaredResult result;
  result.dof = ResolveDof(options.dof_policy, table.num_items());

  double statistic = 0.0;
  uint64_t considered = 0;
  uint64_t above_five = 0;
  for (uint32_t mask = 0; mask < table.num_cells(); ++mask) {
    double e = table.Expected(mask);
    if (e < options.min_expected_cell || e <= 0.0) {
      ++result.validity.masked_cells;
      continue;
    }
    ++considered;
    if (e <= 1.0) result.validity.all_expected_above_one = false;
    if (e > 5.0) ++above_five;
    statistic += CellTerm(options,
                          static_cast<double>(table.Observed(mask)), e);
  }
  result.validity.fraction_expected_above_five =
      considered == 0 ? 0.0
                      : static_cast<double>(above_five) /
                            static_cast<double>(considered);
  result.validity.exact = true;
  result.statistic = statistic;
  result.p_value = PValue(statistic, result.dof);
  return result;
}

ChiSquaredResult ComputeChiSquared(const SparseContingencyTable& table,
                                   const ChiSquaredOptions& options) {
  ChiSquaredResult result;
  result.dof = ResolveDof(options.dof_policy, table.num_items());

  // Pearson: an unoccupied cell contributes (0 - E)^2 / E = E, and the
  // expected values over all 2^k cells sum to n, so unoccupied cells
  // contribute n - sum_{occupied} E in aggregate — the paper's Section 4
  // rewrite. The G statistic's unoccupied cells contribute exactly 0, so
  // no aggregate term is needed there. Masked occupied cells are dropped
  // entirely; see ChiSquaredOptions for the masking semantics.
  double statistic = 0.0;
  double occupied_expected_total = 0.0;
  uint64_t considered = 0;
  uint64_t above_five = 0;
  for (const SparseContingencyTable::Cell& cell : table.occupied_cells()) {
    double e = table.Expected(cell.mask);
    occupied_expected_total += e;
    if (e < options.min_expected_cell || e <= 0.0) {
      ++result.validity.masked_cells;
      continue;
    }
    ++considered;
    if (e <= 1.0) result.validity.all_expected_above_one = false;
    if (e > 5.0) ++above_five;
    statistic += CellTerm(options,
                          static_cast<double>(cell.observed), e);
  }
  if (options.statistic == IndependenceStatistic::kPearsonChiSquared) {
    double n = static_cast<double>(table.n());
    statistic += std::max(0.0, n - occupied_expected_total);
  }

  result.validity.fraction_expected_above_five =
      considered == 0 ? 0.0
                      : static_cast<double>(above_five) /
                            static_cast<double>(considered);
  result.validity.exact = false;  // Unoccupied cells were not inspected.
  result.statistic = statistic;
  result.p_value = PValue(statistic, result.dof);
  return result;
}

}  // namespace corrmine
