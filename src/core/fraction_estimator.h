#ifndef CORRMINE_CORE_FRACTION_ESTIMATOR_H_
#define CORRMINE_CORE_FRACTION_ESTIMATOR_H_

#include <cstdint>

#include "common/status_or.h"
#include "core/chi_squared_test.h"
#include "itemset/count_provider.h"

namespace corrmine {

struct FractionEstimateOptions {
  /// Number of itemsets sampled uniformly from the C(k, level) candidates.
  int samples = 2000;
  /// Statistic options (masking etc.) used per sampled set.
  ChiSquaredOptions chi2;
  double confidence_level = 0.95;
  uint64_t seed = 0xf4ac7ULL;
};

struct FractionEstimate {
  /// Point estimate of the fraction of size-`level` itemsets that are
  /// correlated at the requested significance.
  double fraction = 0.0;
  /// Normal-approximation standard error of the estimate.
  double std_error = 0.0;
  int samples = 0;
};

/// Estimates the fraction of all size-`level` itemsets that test as
/// correlated, by uniform sampling without enumeration. This is how claims
/// like the paper's "of the 86320 word pairings there were 8329 correlated
/// pairs" and "more than 10% of all triples of words are correlated"
/// (Section 5.2) can be checked at sizes where enumeration is infeasible.
///
/// Requires level >= 2, at most ContingencyTable::kMaxItems, and at least
/// `level` items.
StatusOr<FractionEstimate> EstimateCorrelatedFraction(
    const CountProvider& provider, ItemId num_items, int level,
    const FractionEstimateOptions& options = {});

}  // namespace corrmine

#endif  // CORRMINE_CORE_FRACTION_ESTIMATOR_H_
