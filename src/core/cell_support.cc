#include "core/cell_support.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace corrmine {

uint64_t RequiredSupportedCells(const CellSupportPolicy& policy,
                                double num_cells) {
  CORRMINE_CHECK(policy.cell_fraction > 0.0 && policy.cell_fraction <= 1.0)
      << "cell_fraction must be in (0,1], got " << policy.cell_fraction;
  double required = std::ceil(policy.cell_fraction * num_cells - 1e-9);
  return std::max<uint64_t>(1, static_cast<uint64_t>(required));
}

bool HasCellSupport(const ContingencyTable& table,
                    const CellSupportPolicy& policy) {
  uint64_t required = RequiredSupportedCells(
      policy, static_cast<double>(table.num_cells()));
  return table.CellsWithCountAtLeast(policy.min_count) >= required;
}

bool HasCellSupport(const SparseContingencyTable& table,
                    const CellSupportPolicy& policy) {
  uint64_t required = RequiredSupportedCells(policy, table.TotalCellCount());
  return table.CellsWithCountAtLeast(policy.min_count) >= required;
}

bool PairPassesLevelOne(uint64_t count_a, uint64_t count_b, uint64_t n,
                        const CellSupportPolicy& policy,
                        LevelOnePruning mode) {
  switch (mode) {
    case LevelOnePruning::kNone:
      return true;
    case LevelOnePruning::kFigure1Strict:
      return count_a > policy.min_count && count_b > policy.min_count;
    case LevelOnePruning::kFeasibilityBound: {
      // Upper-bound each cell of the 2x2 table by its margins; a cell can
      // only reach min_count if its bound does.
      uint64_t s = policy.min_count;
      uint64_t not_a = n - count_a;
      uint64_t not_b = n - count_b;
      uint64_t feasible = 0;
      if (std::min(count_a, count_b) >= s) ++feasible;  // ab
      if (std::min(count_a, not_b) >= s) ++feasible;    // a, not-b
      if (std::min(not_a, count_b) >= s) ++feasible;    // not-a, b
      if (std::min(not_a, not_b) >= s) ++feasible;      // neither
      return feasible >= RequiredSupportedCells(policy, 4.0);
    }
  }
  return true;
}

}  // namespace corrmine
