#ifndef CORRMINE_CORE_BORDER_STATE_H_
#define CORRMINE_CORE_BORDER_STATE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status_or.h"
#include "core/chi_squared_miner.h"
#include "itemset/itemset.h"

namespace corrmine {

/// The deterministic subset of MinerOptions — everything that shapes the
/// mined answer, none of the runtime plumbing (threads, pool, metrics,
/// progress). A snapshot stores this echo so a later repair re-tests the
/// border under exactly the configuration that produced it; resuming with
/// different flags would silently compare incomparable borders.
struct BorderMinerConfig {
  double confidence_level = 0.95;
  CellSupportPolicy support;
  LevelOnePruning level_one = LevelOnePruning::kFigure1Strict;
  ChiSquaredOptions chi2;
  int max_level = 0;
  bool keep_frontier = false;

  static BorderMinerConfig FromMinerOptions(const MinerOptions& options);
  /// The stored configuration as MinerOptions, runtime fields defaulted —
  /// the caller (RepairBorder) fills in threads/pool/metrics.
  MinerOptions ToMinerOptions() const;
};

/// Persistent border snapshot ("CBS1"): everything incremental mining needs
/// to pick a dataset back up without the original run's memory — the mined
/// border and per-level stats, the dictionary echo, the miner
/// configuration, and the count memo: the exact O(S) of every subset count
/// the producing run issued. The memo is the repair accelerator — delta
/// batches update it in O(|delta|) per entry (count the chunk, add or
/// subtract), so a repair re-mine only touches the full database for
/// queries the lattice walk never issued before (DESIGN.md §11).
struct BorderState {
  /// Item space and row count of the database the snapshot describes; a
  /// repair validates these against the live session before trusting the
  /// memo.
  ItemId num_items = 0;
  uint64_t num_baskets = 0;
  BorderMinerConfig config;
  /// Dictionary echo (empty when the dataset used raw ids). Loading
  /// against a session whose dictionary disagrees is an error.
  std::vector<std::string> item_names;
  /// The border: rules, per-level stats, and (when configured) the NOTSIG
  /// frontier, exactly as MineCorrelations returned them.
  MiningResult result;
  /// Count memo: query -> exact O(S) over the snapshot's num_baskets rows.
  std::unordered_map<Itemset, uint64_t, ItemsetHasher> counts;
};

/// Binary codec. Encoding is deterministic (memo entries are emitted in
/// lexicographic itemset order; doubles as raw bit patterns), so
/// save -> load -> save is byte-identical. Decode returns
/// Status::Corruption on truncation, bad magic/version, or malformed
/// records — never crashes on hostile bytes.
std::string EncodeBorderState(const BorderState& state);
StatusOr<BorderState> DecodeBorderState(const std::string& bytes);

Status SaveBorderState(const BorderState& state, const std::string& path);
StatusOr<BorderState> LoadBorderState(const std::string& path);

}  // namespace corrmine

#endif  // CORRMINE_CORE_BORDER_STATE_H_
