#ifndef CORRMINE_CORE_BORDER_REPAIR_H_
#define CORRMINE_CORE_BORDER_REPAIR_H_

#include <deque>
#include <optional>
#include <unordered_map>

#include "common/status_or.h"
#include "core/border_state.h"
#include "core/session.h"
#include "itemset/count_provider.h"

namespace corrmine {

/// Count provider backed by a BorderState's memo with a real provider as
/// fallback — the engine of border repair. Batch queries split into memo
/// hits (answered in O(1), no database touch) and misses, which fall
/// through to the fallback's *uncounted* batch entry point in one call and
/// are memoized for the next repair. The public wrapper counters
/// ("count_provider.*") therefore tick exactly as they would on a
/// from-scratch mine with the same query stream — the statsdiff contract.
///
/// Exactness: the memo must hold counts over the same rows as `fallback`
/// (RepairBorder validates num_baskets before constructing one); under
/// that precondition every answer is byte-identical to the fallback's.
///
/// Not thread-safe: the miner issues one batch per level from its
/// coordinating thread, and only the fallback parallelizes internally.
class MemoCountProvider : public CountProvider {
 public:
  /// Both pointers/references are borrowed; `memo` is mutated (misses are
  /// inserted) and must outlive the provider.
  MemoCountProvider(std::unordered_map<Itemset, uint64_t, ItemsetHasher>* memo,
                    const CountProvider& fallback);

  uint64_t num_baskets() const override { return fallback_.num_baskets(); }

  /// Memo traffic of this provider's lifetime (also published as the
  /// "repair.memo_hits"/"repair.memo_misses" counters): misses are the
  /// queries that actually cost a database pass.
  uint64_t memo_hits() const { return hits_; }
  uint64_t memo_misses() const { return misses_; }

 protected:
  uint64_t CountAllPresentImpl(const Itemset& s) const override;
  void CountAllPresentBatchImpl(std::span<const Itemset> queries,
                                std::span<uint64_t> counts,
                                ThreadPool* pool) const override;

 private:
  std::unordered_map<Itemset, uint64_t, ItemsetHasher>* memo_;
  const CountProvider& fallback_;
  mutable uint64_t hits_ = 0;
  mutable uint64_t misses_ = 0;
};

/// Folds an appended delta chunk into the snapshot: every memoized count
/// gains that query's count over the chunk alone (one small vertical index
/// over |delta| rows answers them all), num_baskets grows by the chunk's
/// rows, and the item space widens if the chunk introduced new items.
/// O(memo size x chunk words) — independent of the base dataset size.
Status ApplyAppendedChunk(BorderState* state,
                          const TransactionDatabase& chunk);

/// Reverse of ApplyAppendedChunk for sliding-window retirement: subtracts
/// the retired chunk's per-query counts and shrinks num_baskets. The item
/// space stays monotone (ids are never re-compacted). Errors if a count or
/// the basket total would underflow — the symptom of retiring a chunk that
/// was never part of the snapshot.
Status ApplyRetiredChunk(BorderState* state, const TransactionDatabase& chunk);

/// Border repair: re-establishes `state` as the exact mining result for
/// the session's current database. The lattice walk re-runs under the
/// snapshot's stored configuration, but through a MemoCountProvider — so
/// counting touches the database only for queries whose verdicts-changed
/// neighborhoods the previous walks never explored, and the answer is
/// byte-identical to MineCorrelations from scratch (rules, level stats,
/// frontier — the differential-suite contract). On success the snapshot's
/// border, stats, and memo are updated in place, and the result is also
/// returned. The first call on a fresh (empty-memo) state doubles as the
/// initial full mine.
///
/// Preconditions (validated, returning Status on mismatch): the session's
/// num_baskets and num_items equal the snapshot's — i.e. every delta was
/// applied to both sides — and the dictionaries agree.
StatusOr<MiningResult> RepairBorder(const MiningSession& session,
                                    BorderState* state);

/// Owns the full incremental-mining loop: a window of chunks (chunk 0 is
/// the base dataset), the live MiningSession over their concatenation, and
/// the BorderState being repaired. Append pushes a tail chunk into the
/// session's bitmaps in place; RetireOldest pops the head chunk and
/// rebuilds the session over the surviving window (the round-robin layout
/// changes, but the K-invariance contract makes that unobservable).
/// Repair() after any sequence of the two returns the exact mining result
/// for the current window.
class IncrementalMiner {
 public:
  static StatusOr<IncrementalMiner> Create(TransactionDatabase base,
                                           const SessionOptions& session_options,
                                           const MinerOptions& miner_options);

  /// Appends a delta chunk (sliding-window tail). The chunk's item space
  /// may exceed the current one — the window grows to cover it.
  Status Append(const TransactionDatabase& chunk);

  /// Retires the oldest chunk. Errors when only one chunk remains (an
  /// empty window has no marginals to mine).
  Status RetireOldest();

  /// Repairs the border against the current window; see RepairBorder.
  StatusOr<MiningResult> Repair();

  const MiningSession& session() const { return *session_; }
  const BorderState& state() const { return state_; }
  BorderState* mutable_state() { return &state_; }
  size_t num_chunks() const { return chunks_.size(); }

 private:
  IncrementalMiner(const SessionOptions& session_options,
                   const BorderMinerConfig& config)
      : session_options_(session_options) {
    state_.config = config;
  }

  std::deque<TransactionDatabase> chunks_;
  SessionOptions session_options_;
  std::optional<MiningSession> session_;
  BorderState state_;
};

}  // namespace corrmine

#endif  // CORRMINE_CORE_BORDER_REPAIR_H_
