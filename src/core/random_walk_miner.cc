#include "core/random_walk_miner.h"

#include <algorithm>
#include <set>

#include "hash/universal_hash.h"

namespace corrmine {

namespace {

struct Evaluation {
  bool supported = false;
  bool correlated = false;
  ChiSquaredResult chi2;
  CellInterest major;
};

StatusOr<Evaluation> Evaluate(const CountProvider& provider, const Itemset& s,
                              const MinerOptions& options) {
  Evaluation eval;
  CORRMINE_ASSIGN_OR_RETURN(ContingencyTable table,
                            ContingencyTable::Build(provider, s));
  eval.supported = HasCellSupport(table, options.support);
  eval.chi2 = ComputeChiSquared(table, options.chi2);
  eval.correlated = eval.chi2.SignificantAt(options.confidence_level);
  eval.major = MajorDependenceCell(table);
  return eval;
}

}  // namespace

StatusOr<MiningResult> MineCorrelationsRandomWalk(
    const CountProvider& provider, ItemId num_items,
    const RandomWalkOptions& options) {
  if (provider.num_baskets() == 0) {
    return Status::FailedPrecondition("mining an empty database");
  }
  if (num_items < 2) {
    return Status::InvalidArgument("random walk needs at least two items");
  }
  MiningResult result;
  hash::SplitMix64 rng(options.seed);
  const MinerOptions& miner = options.miner;
  uint64_t n = provider.num_baskets();

  std::vector<uint64_t> item_counts(num_items);
  for (ItemId i = 0; i < num_items; ++i) {
    item_counts[i] = provider.CountAllPresent(Itemset{i});
  }

  int max_size = std::min(options.max_itemset_size,
                          ContingencyTable::kMaxItems);
  std::set<Itemset> found;

  for (int walk = 0; walk < options.num_walks; ++walk) {
    // Random start pair, subject to the same level-1 pruning as the
    // level-wise search; a handful of rejection-sampling tries per walk.
    ItemId a = 0;
    ItemId b = 0;
    bool have_pair = false;
    for (int tries = 0; tries < 64 && !have_pair; ++tries) {
      a = static_cast<ItemId>(rng.NextBelow(num_items));
      b = static_cast<ItemId>(rng.NextBelow(num_items));
      have_pair = a != b &&
                  PairPassesLevelOne(item_counts[a], item_counts[b], n,
                                     miner.support, miner.level_one);
    }
    if (!have_pair) continue;

    Itemset current{a, b};
    while (true) {
      CORRMINE_ASSIGN_OR_RETURN(Evaluation eval,
                                Evaluate(provider, current, miner));
      if (!eval.supported) break;  // Left the supported region; abandon.
      if (eval.correlated) {
        // Crossed the border: minimize by greedy removal while a supported,
        // correlated immediate subset exists (upward closure makes the
        // result minimal among supported sets).
        Itemset minimal = current;
        ChiSquaredResult chi2 = eval.chi2;
        CellInterest major = eval.major;
        bool shrunk = true;
        while (shrunk && minimal.size() > 2) {
          shrunk = false;
          for (const Itemset& subset : minimal.SubsetsMissingOne()) {
            CORRMINE_ASSIGN_OR_RETURN(Evaluation sub_eval,
                                      Evaluate(provider, subset, miner));
            if (sub_eval.supported && sub_eval.correlated) {
              minimal = subset;
              chi2 = sub_eval.chi2;
              major = sub_eval.major;
              shrunk = true;
              break;
            }
          }
        }
        // Optional high-chi2 pruning: overwhelming correlations are
        // "probably so obvious as to be uninteresting" (Section 4).
        bool interesting = options.max_chi_squared <= 0.0 ||
                           chi2.statistic <= options.max_chi_squared;
        if (interesting && found.insert(minimal).second) {
          result.significant.push_back(CorrelationRule{minimal, chi2, major});
        }
        break;
      }
      if (static_cast<int>(current.size()) >= max_size) break;
      // Step up the lattice: add a random absent item.
      ItemId next = static_cast<ItemId>(rng.NextBelow(num_items));
      int tries = 0;
      while (current.Contains(next) && tries++ < 64) {
        next = static_cast<ItemId>(rng.NextBelow(num_items));
      }
      if (current.Contains(next)) break;
      current = current.WithItem(next);
    }
  }

  return result;
}

}  // namespace corrmine
