#include "core/border_repair.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/profiler.h"
#include "common/trace.h"

namespace corrmine {

namespace {

/// True when every item of `s` fits the chunk's (possibly narrower) item
/// space. Queries about items the chunk never saw have count 0 over it.
bool WithinItemSpace(const Itemset& s, ItemId num_items) {
  return s.item(s.size() - 1) < num_items;
}

Status ValidateStateAgainstSession(const BorderState& state,
                                   const MiningSession& session) {
  if (state.num_baskets != session.num_baskets()) {
    return Status::FailedPrecondition(
        "border state covers " + std::to_string(state.num_baskets) +
        " baskets but the session has " +
        std::to_string(session.num_baskets()) +
        " — apply the delta to both sides before repairing");
  }
  if (state.num_items != session.num_items()) {
    return Status::FailedPrecondition(
        "border state item space " + std::to_string(state.num_items) +
        " != session item space " + std::to_string(session.num_items()));
  }
  if (state.item_names != session.dictionary().names()) {
    return Status::InvalidArgument(
        "border state dictionary does not match the session's (" +
        std::to_string(state.item_names.size()) + " vs " +
        std::to_string(session.dictionary().names().size()) +
        " names) — the snapshot belongs to a different dataset");
  }
  return Status::OK();
}

}  // namespace

MemoCountProvider::MemoCountProvider(
    std::unordered_map<Itemset, uint64_t, ItemsetHasher>* memo,
    const CountProvider& fallback)
    : memo_(memo), fallback_(fallback) {}

uint64_t MemoCountProvider::CountAllPresentImpl(const Itemset& s) const {
  auto it = memo_->find(s);
  if (it != memo_->end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  uint64_t count = 0;
  fallback_.CountAllPresentBatchUncounted({&s, 1}, {&count, 1});
  memo_->emplace(s, count);
  return count;
}

void MemoCountProvider::CountAllPresentBatchImpl(
    std::span<const Itemset> queries, std::span<uint64_t> counts,
    ThreadPool* pool) const {
  // Split the level's batch into memo hits and misses; only the misses —
  // queries from lattice regions no previous walk explored — reach the
  // fallback, in a single uncounted batch so its blocked executor still
  // sees the whole stream at once.
  std::vector<size_t> miss_index;
  std::vector<Itemset> miss_queries;
  for (size_t i = 0; i < queries.size(); ++i) {
    auto it = memo_->find(queries[i]);
    if (it != memo_->end()) {
      counts[i] = it->second;
    } else {
      miss_index.push_back(i);
      miss_queries.push_back(queries[i]);
    }
  }
  hits_ += queries.size() - miss_queries.size();
  misses_ += miss_queries.size();
  if (!miss_queries.empty()) {
    std::vector<uint64_t> miss_counts(miss_queries.size(), 0);
    fallback_.CountAllPresentBatchUncounted(miss_queries, miss_counts, pool);
    for (size_t j = 0; j < miss_queries.size(); ++j) {
      counts[miss_index[j]] = miss_counts[j];
      memo_->emplace(std::move(miss_queries[j]), miss_counts[j]);
    }
  }
}

Status ApplyAppendedChunk(BorderState* state,
                          const TransactionDatabase& chunk) {
  TraceScope span("repair.apply_append", -1,
                  static_cast<int64_t>(chunk.num_baskets()),
                  static_cast<int64_t>(state->counts.size()));
  // One small vertical index over just the delta rows answers every
  // memoized query; counts are exact integers, so adding the per-chunk
  // count is exactly re-counting over base+delta.
  VerticalIndex delta(chunk);
  for (auto& [query, count] : state->counts) {
    if (WithinItemSpace(query, chunk.num_items())) {
      count += delta.CountAllPresent(query);
    }
  }
  state->num_baskets += chunk.num_baskets();
  state->num_items = std::max(state->num_items, chunk.num_items());
  MetricsRegistry::Global()
      .GetCounter("repair.delta_rows")
      ->Add(chunk.num_baskets());
  return Status::OK();
}

Status ApplyRetiredChunk(BorderState* state,
                         const TransactionDatabase& chunk) {
  TraceScope span("repair.apply_retire", -1,
                  static_cast<int64_t>(chunk.num_baskets()),
                  static_cast<int64_t>(state->counts.size()));
  if (chunk.num_baskets() > state->num_baskets) {
    return Status::InvalidArgument(
        "retired chunk has more baskets than the snapshot covers");
  }
  VerticalIndex delta(chunk);
  for (auto& [query, count] : state->counts) {
    if (!WithinItemSpace(query, chunk.num_items())) continue;
    const uint64_t removed = delta.CountAllPresent(query);
    if (removed > count) {
      return Status::InvalidArgument(
          "retired chunk was never part of the snapshot: count underflow "
          "for " +
          query.ToString());
    }
    count -= removed;
  }
  state->num_baskets -= chunk.num_baskets();
  MetricsRegistry::Global()
      .GetCounter("repair.delta_rows")
      ->Add(chunk.num_baskets());
  return Status::OK();
}

StatusOr<MiningResult> RepairBorder(const MiningSession& session,
                                    BorderState* state) {
  CORRMINE_RETURN_NOT_OK(ValidateStateAgainstSession(*state, session));
  TraceScope span("repair.mine", -1,
                  static_cast<int64_t>(state->num_baskets),
                  static_cast<int64_t>(state->counts.size()));
  ProfileScope profile("repair.mine");
  MinerOptions options = state->config.ToMinerOptions();
  options.num_threads = session.num_threads();
  options.pool = session.pool();
  options.metrics = &session.metrics();
  MemoCountProvider memo_provider(&state->counts, session.provider());
  CORRMINE_ASSIGN_OR_RETURN(
      MiningResult result,
      MineCorrelations(memo_provider, session.num_items(), options));
  MetricsRegistry::Global()
      .GetCounter("repair.memo_hits")
      ->Add(memo_provider.memo_hits());
  MetricsRegistry::Global()
      .GetCounter("repair.memo_misses")
      ->Add(memo_provider.memo_misses());
  state->result = result;
  return result;
}

StatusOr<IncrementalMiner> IncrementalMiner::Create(
    TransactionDatabase base, const SessionOptions& session_options,
    const MinerOptions& miner_options) {
  IncrementalMiner miner(session_options,
                         BorderMinerConfig::FromMinerOptions(miner_options));
  CORRMINE_ASSIGN_OR_RETURN(
      MiningSession session,
      MiningSession::FromDatabase(base, session_options));
  miner.state_.num_items = session.num_items();
  miner.state_.num_baskets = session.num_baskets();
  miner.state_.item_names = session.dictionary().names();
  miner.session_.emplace(std::move(session));
  miner.chunks_.push_back(std::move(base));
  return miner;
}

Status IncrementalMiner::Append(const TransactionDatabase& chunk) {
  CORRMINE_RETURN_NOT_OK(session_->AppendBatch(chunk));
  CORRMINE_RETURN_NOT_OK(ApplyAppendedChunk(&state_, chunk));
  chunks_.push_back(chunk);
  return Status::OK();
}

Status IncrementalMiner::RetireOldest() {
  if (chunks_.size() <= 1) {
    return Status::InvalidArgument(
        "cannot retire the last chunk: an empty window has nothing to mine");
  }
  TransactionDatabase retired = std::move(chunks_.front());
  chunks_.pop_front();
  CORRMINE_RETURN_NOT_OK(ApplyRetiredChunk(&state_, retired));
  // Rebuild the session over the surviving window. The item space stays
  // monotone (state_.num_items), so memo entries and snapshots never dangle;
  // the round-robin layout re-deals, which the K-invariance contract
  // (DESIGN.md §7) makes unobservable in every mined answer.
  ShardedTransactionDatabase db(state_.num_items, session_->num_shards());
  db.dictionary() = session_->dictionary();
  for (const TransactionDatabase& chunk : chunks_) {
    for (size_t row = 0; row < chunk.num_baskets(); ++row) {
      CORRMINE_RETURN_NOT_OK(db.AddBasket(chunk.basket(row)));
    }
  }
  CORRMINE_ASSIGN_OR_RETURN(
      MiningSession fresh,
      MiningSession::FromShardedDatabase(std::move(db), session_options_));
  session_.emplace(std::move(fresh));
  return Status::OK();
}

StatusOr<MiningResult> IncrementalMiner::Repair() {
  return RepairBorder(*session_, &state_);
}

}  // namespace corrmine
