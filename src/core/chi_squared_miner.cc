#include "core/chi_squared_miner.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/profiler.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "hash/itemset_set.h"
#include "itemset/kernels.h"

namespace corrmine {

uint64_t BinomialCount(uint64_t n, uint64_t k) {
  if (k > n) return 0;
  if (k > n - k) k = n - k;
  unsigned __int128 result = 1;
  for (uint64_t i = 1; i <= k; ++i) {
    result = result * (n - k + i) / i;
    if (result > UINT64_MAX) return UINT64_MAX;
  }
  return static_cast<uint64_t>(result);
}

namespace {

Status ValidateOptions(const MinerOptions& options) {
  if (!(options.confidence_level > 0.0 && options.confidence_level < 1.0)) {
    return Status::InvalidArgument("confidence_level must be in (0,1)");
  }
  if (!(options.support.cell_fraction > 0.0 &&
        options.support.cell_fraction <= 1.0)) {
    return Status::InvalidArgument("support cell_fraction must be in (0,1]");
  }
  if (options.num_threads < 0) {
    return Status::InvalidArgument("num_threads must be >= 0");
  }
  return Status::OK();
}

/// Candidate generation for level k+1 (Figure 1, Step 8) is split so it can
/// overlap the level-k evaluation pipeline instead of running as a serial
/// phase at the start of the next level:
///
///   1. *Raw joins per NOTSIG run.* The NOTSIG list is lexicographically
///      sorted by construction (candidates arrive in lex order and the
///      fan-in appends in order), so join partners sharing a (k-1)-prefix
///      form contiguous runs. The moment the ordered fan-in closes a run
///      (the next NOTSIG's prefix differs), the run's pairwise joins are
///      enumerated — as a pool morsel while later candidates are still
///      being evaluated. Within a run every union has size k+1 (same
///      prefix, distinct last items), exactly the pairs the sequential
///      join loop would emit.
///   2. *Deferred subset filter.* The Step-8 prune (every k-subset must be
///      NOTSIG) needs the level's complete NOTSIG set, so it runs after the
///      pipeline drains: parallel over runs, order-preserving within each.
///
/// Concatenating the filtered runs in run order reproduces the sequential
/// candidate stream byte for byte.
void EnumerateRunJoins(const Itemset* members, size_t count,
                       std::vector<Itemset>* out) {
  for (size_t i = 0; i < count; ++i) {
    for (size_t j = i + 1; j < count; ++j) {
      out->push_back(members[i].Union(members[j]));
    }
  }
}

bool AllSubsetsNotSig(const Itemset& joined,
                      const hash::ItemsetPerfectSet& not_sig_set) {
  for (const Itemset& subset : joined.SubsetsMissingOne()) {
    if (!not_sig_set.Contains(subset)) return false;
  }
  return true;
}

/// Tracks the NOTSIG prefix runs of one level and farms each closed run's
/// raw-join enumeration out to the pool. `frontier` must never reallocate
/// while jobs are in flight (the caller reserves it to the candidate
/// count), and `joins` likewise holds a stable slot per run.
struct RunJoiner {
  const std::vector<Itemset>* frontier = nullptr;
  size_t prefix_len = 0;
  size_t run_start = 0;
  std::vector<std::vector<Itemset>> joins;

  std::atomic<size_t> outstanding{0};
  std::mutex mu;
  std::condition_variable cv;

  /// Closes the run [run_start, end_index) and starts the next one. Call
  /// with end_index == frontier->size() after the fan-in to flush the tail.
  void CloseRun(ThreadPool* pool, size_t end_index) {
    const size_t begin = run_start;
    run_start = end_index;
    if (end_index - begin < 2) return;  // No pairs to join.
    joins.emplace_back();
    std::vector<Itemset>* out = &joins.back();
    const Itemset* members = frontier->data() + begin;
    const size_t count = end_index - begin;
    if (pool == nullptr) {
      EnumerateRunJoins(members, count, out);
      return;
    }
    outstanding.fetch_add(1, std::memory_order_relaxed);
    pool->Submit([this, members, count, out] {
      EnumerateRunJoins(members, count, out);
      if (outstanding.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    });
  }

  /// True when `frontier[index]` starts a new run (its (k-1)-prefix differs
  /// from the previous member's).
  bool StartsNewRun(size_t index) const {
    if (index == 0) return false;
    const Itemset& prev = (*frontier)[index - 1];
    const Itemset& cur = (*frontier)[index];
    for (size_t t = 0; t < prefix_len; ++t) {
      if (prev.item(t) != cur.item(t)) return true;
    }
    return false;
  }

  void Drain(ThreadPool* pool) {
    if (pool == nullptr) return;
    pool->HelpUntil(mu, cv, [this] {
      return outstanding.load(std::memory_order_acquire) == 0;
    });
  }
};

/// One evaluated candidate, parked in an index-addressed slot so batches
/// evaluated out of order merge back deterministically.
struct EvalSlot {
  enum class Kind : uint8_t { kDiscard, kSig, kNotSig };
  Kind kind = Kind::kDiscard;
  ChiSquaredResult chi2;      // kSig only.
  CellInterest major;         // kSig only.
  /// §3.3 low-expectation cells excluded from this candidate's statistic
  /// (recorded for kSig and kNotSig; discards never reach the test).
  uint64_t masked_cells = 0;
};

/// Counter handles for one mining run, resolved once so the per-level
/// fan-in pays a handful of sharded adds, not registry lookups.
struct MinerCounters {
  explicit MinerCounters(MetricsRegistry* registry)
      : candidates(registry->GetCounter("miner.candidates")),
        discards(registry->GetCounter("miner.discards_cell_support")),
        chi2_tests(registry->GetCounter("miner.chi2_tests")),
        masked_cells(registry->GetCounter("miner.masked_cells")),
        sig(registry->GetCounter("miner.sig")),
        notsig(registry->GetCounter("miner.notsig")),
        levels(registry->GetCounter("miner.levels")) {}

  void AddLevel(const LevelStats& stats) const {
    candidates->Add(stats.candidates);
    discards->Add(stats.discards);
    chi2_tests->Add(stats.chi2_tests);
    masked_cells->Add(stats.masked_cells);
    sig->Add(stats.significant);
    notsig->Add(stats.not_significant);
    levels->Add();
  }

  Counter* candidates;
  Counter* discards;
  Counter* chi2_tests;
  Counter* masked_cells;
  Counter* sig;
  Counter* notsig;
  Counter* levels;
};

/// Chunk granularity for work stealing across candidate evaluation. Each
/// candidate is a 2^k-cell table assembly plus a chi-squared test, so even
/// small chunks are meaty.
constexpr size_t kEvalGrain = 16;

/// The deduplicated all-items-present queries of one level, plus the
/// per-candidate index table that maps every nonzero submask of every
/// candidate to its slot in the batch answer. Sibling candidates share
/// almost all of their proper subsets (the join emits runs with a common
/// (k-1)-prefix, and every (k-1)-subset is itself a NOTSIG member), so the
/// deduplicated batch is typically several times smaller than the naive
/// per-candidate query stream — that, not just parallel fan-out, is where
/// the batch API's throughput comes from (DESIGN.md §7).
/// Dedup sharding parameters. 64 shards = 6 bits of the subset hash; the
/// shard axis is the stage-2 parallel unit, so shard count bounds dedup
/// parallelism while staying cheap to bucket into.
constexpr size_t kDedupShards = 64;
/// Candidates per stage-1 bucketing chunk.
constexpr size_t kDedupChunkCands = 256;
/// Flat entries per stage-3 id-remap chunk.
constexpr size_t kRemapGrain = size_t{1} << 14;

/// Mixed FNV-1a over a subset's items. The top bits pick the dedup shard
/// and the low bits the open-addressing probe, so the final mix keeps them
/// independent. Internal to the plan build — nothing persists it.
uint64_t HashSubset(const ItemId* items, size_t k) {
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < k; ++i) {
    h ^= items[i];
    h *= 1099511628211ull;
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  return h;
}

struct LevelQueryPlan {
  std::vector<Itemset> queries;
  /// cand_query_index[ci * num_cells + m] answers submask m of candidate
  /// ci; entry 0 of each row is unused (the empty mask is n).
  std::vector<uint32_t> cand_query_index;
  uint32_t num_cells = 0;

  /// Builds the plan for a level of uniform-size candidates.
  ///
  /// Deduplication is hash-sharded so it parallelizes and — equally
  /// important on small machines — never allocates per probe: stage 1
  /// buckets every (candidate, submask) reference by subset hash into
  /// (chunk, shard) buckets; stage 2 dedups each shard independently with
  /// a flat open-addressing table, walking its buckets in chunk order and
  /// materializing an Itemset only on first touch; stage 3 turns
  /// (shard, local id) into global ids by prefix-summed shard bases. Every
  /// stage is a pure function of the candidate stream, so the plan is
  /// identical for any thread count — only the query *order* differs from
  /// the old serial first-touch walk, which nothing downstream observes
  /// (grouping, counts and counters all come out the same).
  static LevelQueryPlan Build(const std::vector<Itemset>& cand, int level,
                              ThreadPool* pool) {
    LevelQueryPlan plan;
    const int k = level;
    plan.num_cells = uint32_t{1} << k;
    plan.cand_query_index.assign(cand.size() * plan.num_cells, 0);

    // Stage 1: bucket subset references by shard. An entry is the subset's
    // hash plus its (candidate, mask) coordinates; the subset itself is
    // rebuilt from those coordinates when needed, so buckets stay POD.
    struct Entry {
      uint64_t hash;
      uint64_t cand_mask;  // ci << 32 | m
    };
    const size_t num_chunks =
        (cand.size() + kDedupChunkCands - 1) / kDedupChunkCands;
    std::vector<std::vector<Entry>> buckets(num_chunks * kDedupShards);
    Status status = ParallelFor(
        pool, num_chunks, 1, [&](size_t c_begin, size_t c_end) -> Status {
          ItemId items[ContingencyTable::kMaxItems];
          for (size_t chunk = c_begin; chunk < c_end; ++chunk) {
            std::vector<Entry>* out = &buckets[chunk * kDedupShards];
            const size_t ci_begin = chunk * kDedupChunkCands;
            const size_t ci_end =
                std::min(ci_begin + kDedupChunkCands, cand.size());
            for (size_t ci = ci_begin; ci < ci_end; ++ci) {
              const Itemset& s = cand[ci];
              for (uint32_t m = 1; m < plan.num_cells; ++m) {
                size_t kk = 0;
                for (int j = 0; j < k; ++j) {
                  if ((m >> j) & 1) items[kk++] = s.item(j);
                }
                const uint64_t h = HashSubset(items, kk);
                out[h >> 58].push_back(
                    Entry{h, (static_cast<uint64_t>(ci) << 32) | m});
              }
            }
          }
          return Status::OK();
        });
    CORRMINE_CHECK(status.ok()) << status.ToString();

    // Stage 2: dedup each shard with a flat open-addressing table, chunks
    // in order (first touch within a shard is schedule-independent).
    // cand_query_index temporarily holds (shard << 26 | local id) + 1.
    struct Shard {
      std::vector<Itemset> queries;
      std::vector<uint64_t> hashes;
    };
    std::vector<Shard> shards(kDedupShards);
    status = ParallelFor(
        pool, kDedupShards, 1, [&](size_t s_begin, size_t s_end) -> Status {
          ItemId items[ContingencyTable::kMaxItems];
          for (size_t s = s_begin; s < s_end; ++s) {
            size_t entries = 0;
            for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
              entries += buckets[chunk * kDedupShards + s].size();
            }
            if (entries == 0) continue;
            size_t cap = 16;
            while (cap < 2 * entries) cap <<= 1;
            const size_t probe_mask = cap - 1;
            std::vector<uint32_t> table(cap, 0);  // local id + 1
            Shard& shard = shards[s];
            for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
              for (const Entry& e : buckets[chunk * kDedupShards + s]) {
                const size_t ci = static_cast<size_t>(e.cand_mask >> 32);
                const uint32_t m = static_cast<uint32_t>(e.cand_mask);
                const Itemset& sc = cand[ci];
                size_t kk = 0;
                for (int j = 0; j < k; ++j) {
                  if ((m >> j) & 1) items[kk++] = sc.item(j);
                }
                size_t idx = e.hash & probe_mask;
                uint32_t local;
                for (;;) {
                  const uint32_t v = table[idx];
                  if (v == 0) {
                    local = static_cast<uint32_t>(shard.queries.size());
                    // Strict bound: the +1 temp encoding below must not wrap
                    // at (shard 63, local 2^26-1).
                    CORRMINE_CHECK(local + 1 < (uint32_t{1} << 26))
                        << "dedup shard overflow";
                    table[idx] = local + 1;
                    shard.queries.emplace_back(
                        std::vector<ItemId>(items, items + kk));
                    shard.hashes.push_back(e.hash);
                    break;
                  }
                  const uint32_t cand_local = v - 1;
                  if (shard.hashes[cand_local] == e.hash) {
                    const Itemset& q = shard.queries[cand_local];
                    if (q.size() == kk &&
                        std::equal(items, items + kk, q.begin())) {
                      local = cand_local;
                      break;
                    }
                  }
                  idx = (idx + 1) & probe_mask;
                }
                plan.cand_query_index[ci * plan.num_cells + m] =
                    ((static_cast<uint32_t>(s) << 26) | local) + 1;
              }
            }
          }
          return Status::OK();
        });
    CORRMINE_CHECK(status.ok()) << status.ToString();

    // Stage 3: shard-base prefix sums, then rewrite every reference to its
    // global id and splice the shard query lists in shard order.
    size_t bases[kDedupShards];
    size_t total = 0;
    for (size_t s = 0; s < kDedupShards; ++s) {
      bases[s] = total;
      total += shards[s].queries.size();
    }
    plan.queries.resize(total);
    status = ParallelFor(
        pool, kDedupShards, 1, [&](size_t s_begin, size_t s_end) -> Status {
          for (size_t s = s_begin; s < s_end; ++s) {
            std::move(shards[s].queries.begin(), shards[s].queries.end(),
                      plan.queries.begin() + static_cast<ptrdiff_t>(bases[s]));
          }
          return Status::OK();
        });
    CORRMINE_CHECK(status.ok()) << status.ToString();
    status = ParallelFor(
        pool, plan.cand_query_index.size(), kRemapGrain,
        [&](size_t begin, size_t end) -> Status {
          for (size_t i = begin; i < end; ++i) {
            const uint32_t enc = plan.cand_query_index[i];
            if (enc == 0) continue;  // Mask-0 slots stay unused.
            const uint32_t packed = enc - 1;
            plan.cand_query_index[i] = static_cast<uint32_t>(
                bases[packed >> 26] + (packed & ((uint32_t{1} << 26) - 1)));
          }
          return Status::OK();
        });
    CORRMINE_CHECK(status.ok()) << status.ToString();
    return plan;
  }
};

}  // namespace

StatusOr<MiningResult> MineCorrelations(const CountProvider& provider,
                                        ItemId num_items,
                                        const MinerOptions& options) {
  CORRMINE_RETURN_NOT_OK(ValidateOptions(options));
  if (provider.num_baskets() == 0) {
    return Status::FailedPrecondition("mining an empty database");
  }
  MiningResult result;

  MetricsRegistry& registry =
      options.metrics ? *options.metrics : MetricsRegistry::Global();
  registry.GetCounter("miner.runs")->Add();
  MinerCounters counters(&registry);
  PhaseTimer run_timer(&registry, "miner.mine");
  TraceScope run_span("miner.mine", -1, -1,
                      static_cast<int64_t>(num_items));
  ProfileScope run_profile("miner.mine");
  // Which counting kernel served this run, as a trace marker (value =
  // KernelIsa). Deliberately kept out of the deterministic stats — the
  // kernel is machine-dependent while the counts it produces are not.
  TraceInstant("kernel.selected", -1, -1,
               static_cast<int64_t>(ActiveKernels().isa));
  // The progress heartbeat needs wall clock even when the metrics layer is
  // compiled out, so it reads std::chrono directly — but only when a
  // callback is installed.
  const auto run_start = options.progress
                             ? std::chrono::steady_clock::now()
                             : std::chrono::steady_clock::time_point{};

  // Pool ownership: one pool per mining run, reused across levels — unless
  // the caller (typically a MiningSession) lends one, in which case it is
  // borrowed for the duration of the call. The calling thread participates
  // in every parallel region, so an owned pool of (threads - 1) workers
  // yields `threads` concurrent evaluators.
  const int threads = ThreadPool::ResolveThreadCount(options.num_threads);
  std::unique_ptr<ThreadPool> owned_pool;
  ThreadPool* pool = options.pool;
  if (pool == nullptr && threads > 1) {
    owned_pool = std::make_unique<ThreadPool>(threads - 1);
    pool = owned_pool.get();
  }

  // Step 1: count O(i) for every item — one batch over the singletons.
  uint64_t n = provider.num_baskets();
  std::vector<Itemset> singletons;
  singletons.reserve(num_items);
  for (ItemId i = 0; i < num_items; ++i) singletons.push_back(Itemset{i});
  std::vector<uint64_t> item_counts(num_items);
  provider.CountAllPresentBatch(singletons, item_counts, pool);

  const int max_level = options.max_level > 0
                            ? std::min(options.max_level,
                                       ContingencyTable::kMaxItems)
                            : ContingencyTable::kMaxItems;

  // Step 3: level-2 candidates via level-1 pruning, morsel-parallel over
  // the first-item axis (the inner loop shrinks as `a` grows, so small
  // chunks let stealing even out the triangle). Per-chunk outputs are
  // concatenated in chunk order — the sequential (a, b) enumeration,
  // reproduced.
  std::vector<Itemset> cand;
  {
    constexpr size_t kPairGenGrain = 16;
    const size_t num_rows = num_items;
    const size_t num_gen_chunks =
        num_rows == 0 ? 0 : (num_rows + kPairGenGrain - 1) / kPairGenGrain;
    std::vector<std::vector<Itemset>> gen_chunks(num_gen_chunks);
    CORRMINE_RETURN_NOT_OK(ParallelFor(
        pool, num_rows, kPairGenGrain,
        [&](size_t begin, size_t end) -> Status {
          std::vector<Itemset>& out = gen_chunks[begin / kPairGenGrain];
          for (size_t a = begin; a < end; ++a) {
            for (ItemId b = static_cast<ItemId>(a) + 1; b < num_items; ++b) {
              if (PairPassesLevelOne(item_counts[a], item_counts[b], n,
                                     options.support, options.level_one)) {
                out.push_back(Itemset{static_cast<ItemId>(a), b});
              }
            }
          }
          return Status::OK();
        }));
    size_t total = 0;
    for (const std::vector<Itemset>& chunk : gen_chunks) total += chunk.size();
    cand.reserve(total);
    for (std::vector<Itemset>& chunk : gen_chunks) {
      std::move(chunk.begin(), chunk.end(), std::back_inserter(cand));
    }
  }

  // The NOTSIG frontier of the last processed level (kept for the frontier
  // output and the continue-mining condition); SIG is appended to the
  // output as discovered.
  std::vector<Itemset> not_sig;

  for (int level = 2; level <= max_level; ++level) {
    PhaseTimer level_timer(&registry, "miner.level");
    TraceScope level_span("miner.level", level, -1,
                          static_cast<int64_t>(cand.size()));
    ProfileScope level_profile("miner.level");
    LevelStats stats;
    stats.level = level;
    stats.possible_itemsets = BinomialCount(num_items, level);

    std::vector<Itemset> next_not_sig;
    hash::ItemsetPerfectSet next_not_sig_set;
    // Skip NOTSIG bookkeeping when this is the last level we will visit —
    // nothing consumes it, and on dense data it is the memory high-water
    // mark — unless the caller asked for the frontier.
    const bool keep_not_sig = level < max_level || options.keep_frontier;
    // Whether another level can follow: only then are next-level joins
    // enumerated (overlapped with this level's evaluation).
    const bool gen_next = level < max_level;
    std::vector<Itemset> next_cand;

    // Steps 6-7, batched per level: CAND is materialized whole, its
    // deduplicated submask queries are answered by ONE CountAllPresentBatch
    // call against the provider, and candidates are then streamed through
    // an ordered evaluation pipeline (support test, then chi-squared, into
    // index-addressed slots) whose single-threaded consumer commits
    // verdicts *in stream order* while later chunks are still evaluating —
    // so the output is byte-identical whatever the thread or shard count,
    // including the inline single-threaded path.
    //
    // Materializing CAND trades the old 32-MB streaming discipline for the
    // single-batch contract that sharded/remote providers need (issuing one
    // round trip per level instead of one per candidate); CAND at level k
    // is bounded by the NOTSIG join, which pruning keeps far below the
    // raw C(|I|, k) lattice width.
    if (!cand.empty()) {
      TraceInstant("miner.candidates", level, -1,
                   static_cast<int64_t>(cand.size()));
      LevelQueryPlan plan = [&] {
        PhaseTimer plan_timer(&registry, "miner.plan");
        TraceScope plan_span("miner.plan", level, -1,
                             static_cast<int64_t>(cand.size()));
        ProfileScope plan_profile("miner.plan");
        return LevelQueryPlan::Build(cand, level, pool);
      }();
      std::vector<uint64_t> query_counts(plan.queries.size());
      {
        PhaseTimer count_timer(&registry, "miner.count_batch");
        TraceScope count_span("miner.count_batch", level, -1,
                              static_cast<int64_t>(plan.queries.size()));
        ProfileScope count_profile("miner.count_batch");
        provider.CountAllPresentBatch(plan.queries, query_counts, pool);
      }

      std::vector<EvalSlot> slots(cand.size());
      TraceScope eval_span("miner.evaluate", level, -1,
                           static_cast<int64_t>(cand.size()));
      ProfileScope eval_profile("miner.evaluate");
      // The fan-in appends NOTSIG members in candidate order; runs of a
      // shared (k-1)-prefix close as soon as the next member's prefix
      // differs, and each closed run's raw joins are enumerated as pool
      // morsels *while later candidates are still being evaluated*. The
      // frontier is reserved up front so in-flight join morsels read
      // stable storage.
      RunJoiner joiner;
      joiner.frontier = &next_not_sig;
      joiner.prefix_len = static_cast<size_t>(level) - 1;
      if (keep_not_sig) next_not_sig.reserve(cand.size());
      if (gen_next) joiner.joins.reserve(cand.size());

      // Per-slot evaluation scratch: the 2^k all-present vector each chunk
      // assembles tables from, sized once per level and reused across every
      // chunk that slot runs.
      const size_t eval_slots =
          OrderedPipelineSlotBound(pool, cand.size(), kEvalGrain);
      std::vector<std::vector<uint64_t>> eval_scratch(eval_slots);
      Status eval_status = OrderedPipeline(
          pool, cand.size(), kEvalGrain,
          [&](size_t slot, size_t begin, size_t end) -> Status {
            std::vector<uint64_t>& all_present = eval_scratch[slot];
            if (all_present.size() < plan.num_cells) {
              all_present.resize(plan.num_cells);
            }
            for (size_t i = begin; i < end; ++i) {
              all_present[0] = n;
              const uint32_t* row = &plan.cand_query_index[i * plan.num_cells];
              for (uint32_t m = 1; m < plan.num_cells; ++m) {
                all_present[m] = query_counts[row[m]];
              }
              CORRMINE_ASSIGN_OR_RETURN(
                  ContingencyTable table,
                  ContingencyTable::FromAllPresentCounts(cand[i],
                                                         all_present));
              if (!HasCellSupport(table, options.support)) {
                slots[i].kind = EvalSlot::Kind::kDiscard;
                continue;
              }
              ChiSquaredResult chi2 = ComputeChiSquared(table, options.chi2);
              slots[i].masked_cells = chi2.validity.masked_cells;
              if (chi2.SignificantAt(options.confidence_level)) {
                slots[i].kind = EvalSlot::Kind::kSig;
                slots[i].chi2 = chi2;
                slots[i].major = MajorDependenceCell(table);
              } else {
                slots[i].kind = EvalSlot::Kind::kNotSig;
              }
            }
            return Status::OK();
          },
          // Deterministic fan-in: the ordered consumer walks the slots in
          // candidate order, so SIG/NOTSIG/stat updates match the
          // sequential history exactly.
          [&](size_t begin, size_t end) -> Status {
            for (size_t i = begin; i < end; ++i) {
              ++stats.candidates;
              switch (slots[i].kind) {
                case EvalSlot::Kind::kDiscard:
                  ++stats.discards;
                  break;
                case EvalSlot::Kind::kSig:
                  ++stats.significant;
                  ++stats.chi2_tests;
                  stats.masked_cells += slots[i].masked_cells;
                  result.significant.push_back(CorrelationRule{
                      std::move(cand[i]), slots[i].chi2, slots[i].major});
                  break;
                case EvalSlot::Kind::kNotSig:
                  ++stats.not_significant;
                  ++stats.chi2_tests;
                  stats.masked_cells += slots[i].masked_cells;
                  if (keep_not_sig) {
                    next_not_sig_set.Insert(cand[i]);
                    next_not_sig.push_back(std::move(cand[i]));
                    const size_t t = next_not_sig.size() - 1;
                    if (gen_next && joiner.StartsNewRun(t)) {
                      joiner.CloseRun(pool, t);
                    }
                  }
                  break;
              }
            }
            return Status::OK();
          });
      // In-flight join morsels hold pointers into `next_not_sig` and
      // `joiner.joins` — drain them before any return, including the error
      // one, or the early exit would free storage under a live task.
      if (gen_next) joiner.Drain(pool);
      CORRMINE_RETURN_NOT_OK(eval_status);

      // Step 8, finished off: flush the tail run, drain in-flight join
      // morsels, then apply the subset prune (which needs the *complete*
      // NOTSIG set) in parallel over runs. Filtered runs concatenate in
      // run order — the sequential candidate stream, byte for byte.
      if (gen_next) {
        joiner.CloseRun(pool, next_not_sig.size());
        joiner.Drain(pool);
        PhaseTimer gen_timer(&registry, "miner.generate");
        ProfileScope gen_profile("miner.generate");
        CORRMINE_RETURN_NOT_OK(ParallelFor(
            pool, joiner.joins.size(), 1,
            [&](size_t begin, size_t end) -> Status {
              for (size_t r = begin; r < end; ++r) {
                std::vector<Itemset>& run = joiner.joins[r];
                run.erase(std::remove_if(run.begin(), run.end(),
                                         [&](const Itemset& joined) {
                                           return !AllSubsetsNotSig(
                                               joined, next_not_sig_set);
                                         }),
                          run.end());
              }
              return Status::OK();
            }));
        size_t total = 0;
        for (const std::vector<Itemset>& run : joiner.joins) {
          total += run.size();
        }
        next_cand.reserve(total);
        for (std::vector<Itemset>& run : joiner.joins) {
          std::move(run.begin(), run.end(), std::back_inserter(next_cand));
        }
      }
    }

    bool exhausted = stats.candidates == 0;
    if (!exhausted) {
      result.levels.push_back(stats);
      counters.AddLevel(stats);
    }
    // Level-boundary peak-RSS sample: the gauge is last-write-wins and
    // ru_maxrss is monotone, so this tracks *when* the peak grew (visible
    // per level in --trace-out via the dump, not just at session end).
    registry.GetGauge("mem.peak_rss_bytes")
        ->Set(static_cast<int64_t>(PeakRssBytes()));

    if (options.progress && !exhausted) {
      MinerProgress heartbeat;
      heartbeat.level = level;
      heartbeat.candidates = stats.candidates;
      heartbeat.frontier = next_not_sig.size();
      heartbeat.significant_total = result.significant.size();
      heartbeat.elapsed_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        run_start)
              .count();
      options.progress(heartbeat);
    }
    if (exhausted) break;
    not_sig = std::move(next_not_sig);
    cand = std::move(next_cand);
    if (not_sig.size() < 2 || level == max_level) break;
  }

  if (options.keep_frontier) {
    result.frontier = std::move(not_sig);
  }
  return result;
}

}  // namespace corrmine
