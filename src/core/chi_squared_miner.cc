#include "core/chi_squared_miner.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "hash/itemset_set.h"
#include "itemset/kernels.h"

namespace corrmine {

uint64_t BinomialCount(uint64_t n, uint64_t k) {
  if (k > n) return 0;
  if (k > n - k) k = n - k;
  unsigned __int128 result = 1;
  for (uint64_t i = 1; i <= k; ++i) {
    result = result * (n - k + i) / i;
    if (result > UINT64_MAX) return UINT64_MAX;
  }
  return static_cast<uint64_t>(result);
}

namespace {

Status ValidateOptions(const MinerOptions& options) {
  if (!(options.confidence_level > 0.0 && options.confidence_level < 1.0)) {
    return Status::InvalidArgument("confidence_level must be in (0,1)");
  }
  if (!(options.support.cell_fraction > 0.0 &&
        options.support.cell_fraction <= 1.0)) {
    return Status::InvalidArgument("support cell_fraction must be in (0,1]");
  }
  if (options.num_threads < 0) {
    return Status::InvalidArgument("num_threads must be >= 0");
  }
  return Status::OK();
}

/// Streams the candidates of the next level without materializing CAND
/// (the full candidate set at level 3 of a dense dataset can dwarf memory;
/// the original implementation ran in 32 MB). Joins sorted NOTSIG sets
/// sharing all but their last item, verifies every |S|-1 subset against
/// the perfect-hash set (Figure 1, Step 8), and hands each surviving
/// candidate to `visit`. `visit` returns a Status; the first failure stops
/// the stream.
Status StreamCandidates(const std::vector<Itemset>& not_sig,
                        const hash::ItemsetPerfectSet& not_sig_set,
                        const std::function<Status(Itemset)>& visit) {
  for (size_t i = 0; i < not_sig.size(); ++i) {
    for (size_t j = i + 1; j < not_sig.size(); ++j) {
      const Itemset& a = not_sig[i];
      const Itemset& b = not_sig[j];
      // Sorted order means join partners with a common (k-1)-prefix are
      // adjacent; once prefixes diverge, no later b matches a.
      bool shared_prefix = true;
      for (size_t t = 0; t + 1 < a.size(); ++t) {
        if (a.item(t) != b.item(t)) {
          shared_prefix = false;
          break;
        }
      }
      if (!shared_prefix) break;
      Itemset joined = a.Union(b);
      if (joined.size() != a.size() + 1) continue;
      bool all_subsets_present = true;
      for (const Itemset& subset : joined.SubsetsMissingOne()) {
        if (!not_sig_set.Contains(subset)) {
          all_subsets_present = false;
          break;
        }
      }
      if (all_subsets_present) {
        CORRMINE_RETURN_NOT_OK(visit(std::move(joined)));
      }
    }
  }
  return Status::OK();
}

/// One evaluated candidate, parked in an index-addressed slot so batches
/// evaluated out of order merge back deterministically.
struct EvalSlot {
  enum class Kind : uint8_t { kDiscard, kSig, kNotSig };
  Kind kind = Kind::kDiscard;
  ChiSquaredResult chi2;      // kSig only.
  CellInterest major;         // kSig only.
  /// §3.3 low-expectation cells excluded from this candidate's statistic
  /// (recorded for kSig and kNotSig; discards never reach the test).
  uint64_t masked_cells = 0;
};

/// Counter handles for one mining run, resolved once so the per-level
/// fan-in pays a handful of sharded adds, not registry lookups.
struct MinerCounters {
  explicit MinerCounters(MetricsRegistry* registry)
      : candidates(registry->GetCounter("miner.candidates")),
        discards(registry->GetCounter("miner.discards_cell_support")),
        chi2_tests(registry->GetCounter("miner.chi2_tests")),
        masked_cells(registry->GetCounter("miner.masked_cells")),
        sig(registry->GetCounter("miner.sig")),
        notsig(registry->GetCounter("miner.notsig")),
        levels(registry->GetCounter("miner.levels")) {}

  void AddLevel(const LevelStats& stats) const {
    candidates->Add(stats.candidates);
    discards->Add(stats.discards);
    chi2_tests->Add(stats.chi2_tests);
    masked_cells->Add(stats.masked_cells);
    sig->Add(stats.significant);
    notsig->Add(stats.not_significant);
    levels->Add();
  }

  Counter* candidates;
  Counter* discards;
  Counter* chi2_tests;
  Counter* masked_cells;
  Counter* sig;
  Counter* notsig;
  Counter* levels;
};

/// Chunk granularity for work stealing across candidate evaluation. Each
/// candidate is a 2^k-cell table assembly plus a chi-squared test, so even
/// small chunks are meaty.
constexpr size_t kEvalGrain = 16;

/// The deduplicated all-items-present queries of one level, plus the
/// per-candidate index table that maps every nonzero submask of every
/// candidate to its slot in the batch answer. Sibling candidates share
/// almost all of their proper subsets (the join emits runs with a common
/// (k-1)-prefix, and every (k-1)-subset is itself a NOTSIG member), so the
/// deduplicated batch is typically several times smaller than the naive
/// per-candidate query stream — that, not just parallel fan-out, is where
/// the batch API's throughput comes from (DESIGN.md §7).
struct LevelQueryPlan {
  std::vector<Itemset> queries;
  /// cand_query_index[ci * num_cells + m] answers submask m of candidate
  /// ci; entry 0 of each row is unused (the empty mask is n).
  std::vector<uint32_t> cand_query_index;
  uint32_t num_cells = 0;

  /// Builds the plan for a level of uniform-size candidates.
  static LevelQueryPlan Build(const std::vector<Itemset>& cand, int level) {
    LevelQueryPlan plan;
    const int k = level;
    plan.num_cells = uint32_t{1} << k;
    plan.cand_query_index.assign(cand.size() * plan.num_cells, 0);
    std::unordered_map<Itemset, uint32_t, ItemsetHasher> ids;
    std::vector<ItemId> items;
    for (size_t ci = 0; ci < cand.size(); ++ci) {
      const Itemset& s = cand[ci];
      for (uint32_t m = 1; m < plan.num_cells; ++m) {
        items.clear();
        for (int j = 0; j < k; ++j) {
          if ((m >> j) & 1) items.push_back(s.item(j));
        }
        Itemset sub(items);
        auto [it, inserted] =
            ids.emplace(sub, static_cast<uint32_t>(plan.queries.size()));
        if (inserted) plan.queries.push_back(std::move(sub));
        plan.cand_query_index[ci * plan.num_cells + m] = it->second;
      }
    }
    return plan;
  }
};

}  // namespace

StatusOr<MiningResult> MineCorrelations(const CountProvider& provider,
                                        ItemId num_items,
                                        const MinerOptions& options) {
  CORRMINE_RETURN_NOT_OK(ValidateOptions(options));
  if (provider.num_baskets() == 0) {
    return Status::FailedPrecondition("mining an empty database");
  }
  MiningResult result;

  MetricsRegistry& registry =
      options.metrics ? *options.metrics : MetricsRegistry::Global();
  registry.GetCounter("miner.runs")->Add();
  MinerCounters counters(&registry);
  PhaseTimer run_timer(&registry, "miner.mine");
  TraceScope run_span("miner.mine", -1, -1,
                      static_cast<int64_t>(num_items));
  // Which counting kernel served this run, as a trace marker (value =
  // KernelIsa). Deliberately kept out of the deterministic stats — the
  // kernel is machine-dependent while the counts it produces are not.
  TraceInstant("kernel.selected", -1, -1,
               static_cast<int64_t>(ActiveKernels().isa));
  // The progress heartbeat needs wall clock even when the metrics layer is
  // compiled out, so it reads std::chrono directly — but only when a
  // callback is installed.
  const auto run_start = options.progress
                             ? std::chrono::steady_clock::now()
                             : std::chrono::steady_clock::time_point{};

  // Pool ownership: one pool per mining run, reused across levels — unless
  // the caller (typically a MiningSession) lends one, in which case it is
  // borrowed for the duration of the call. The calling thread participates
  // in every parallel region, so an owned pool of (threads - 1) workers
  // yields `threads` concurrent evaluators.
  const int threads = ThreadPool::ResolveThreadCount(options.num_threads);
  std::unique_ptr<ThreadPool> owned_pool;
  ThreadPool* pool = options.pool;
  if (pool == nullptr && threads > 1) {
    owned_pool = std::make_unique<ThreadPool>(threads - 1);
    pool = owned_pool.get();
  }

  // Step 1: count O(i) for every item — one batch over the singletons.
  uint64_t n = provider.num_baskets();
  std::vector<Itemset> singletons;
  singletons.reserve(num_items);
  for (ItemId i = 0; i < num_items; ++i) singletons.push_back(Itemset{i});
  std::vector<uint64_t> item_counts(num_items);
  provider.CountAllPresentBatch(singletons, item_counts, pool);

  const int max_level = options.max_level > 0
                            ? std::min(options.max_level,
                                       ContingencyTable::kMaxItems)
                            : ContingencyTable::kMaxItems;

  // NOTSIG of the level being processed feeds the next level's candidate
  // stream; SIG is appended to the output as discovered.
  std::vector<Itemset> not_sig;
  hash::ItemsetPerfectSet not_sig_set;

  for (int level = 2; level <= max_level; ++level) {
    PhaseTimer level_timer(&registry, "miner.level");
    TraceScope level_span("miner.level", level, -1,
                          static_cast<int64_t>(not_sig.size()));
    LevelStats stats;
    stats.level = level;
    stats.possible_itemsets = BinomialCount(num_items, level);

    std::vector<Itemset> next_not_sig;
    hash::ItemsetPerfectSet next_not_sig_set;
    // Skip NOTSIG bookkeeping when this is the last level we will visit —
    // nothing consumes it, and on dense data it is the memory high-water
    // mark — unless the caller asked for the frontier.
    const bool keep_not_sig = level < max_level || options.keep_frontier;

    // Steps 6-7, batched per level: CAND is materialized whole, its
    // deduplicated submask queries are answered by ONE CountAllPresentBatch
    // call against the provider, and candidates are then evaluated in
    // parallel into index-addressed slots (support test, then chi-squared).
    // The fan-in below routes them into SIG or (if another level follows)
    // NOTSIG *in stream order* — so the output is byte-identical whatever
    // the thread or shard count, including the inline single-threaded path.
    //
    // Materializing CAND trades the old 32-MB streaming discipline for the
    // single-batch contract that sharded/remote providers need (issuing one
    // round trip per level instead of one per candidate); CAND at level k
    // is bounded by the NOTSIG join, which pruning keeps far below the
    // raw C(|I|, k) lattice width.
    std::vector<Itemset> cand;
    if (level == 2) {
      // Step 3: level-2 candidates via level-1 pruning.
      for (ItemId a = 0; a < num_items; ++a) {
        for (ItemId b = a + 1; b < num_items; ++b) {
          if (PairPassesLevelOne(item_counts[a], item_counts[b], n,
                                 options.support, options.level_one)) {
            cand.push_back(Itemset{a, b});
          }
        }
      }
    } else {
      CORRMINE_RETURN_NOT_OK(
          StreamCandidates(not_sig, not_sig_set, [&](Itemset s) -> Status {
            cand.push_back(std::move(s));
            return Status::OK();
          }));
    }

    std::vector<EvalSlot> slots;
    if (!cand.empty()) {
      TraceInstant("miner.candidates", level, -1,
                   static_cast<int64_t>(cand.size()));
      LevelQueryPlan plan = LevelQueryPlan::Build(cand, level);
      std::vector<uint64_t> query_counts(plan.queries.size());
      {
        PhaseTimer count_timer(&registry, "miner.count_batch");
        TraceScope count_span("miner.count_batch", level, -1,
                              static_cast<int64_t>(plan.queries.size()));
        provider.CountAllPresentBatch(plan.queries, query_counts, pool);
      }

      slots.assign(cand.size(), EvalSlot{});
      TraceScope eval_span("miner.evaluate", level, -1,
                           static_cast<int64_t>(cand.size()));
      CORRMINE_RETURN_NOT_OK(ParallelFor(
          pool, cand.size(), kEvalGrain,
          [&](size_t begin, size_t end) -> Status {
            std::vector<uint64_t> all_present(plan.num_cells);
            for (size_t i = begin; i < end; ++i) {
              all_present[0] = n;
              const uint32_t* row = &plan.cand_query_index[i * plan.num_cells];
              for (uint32_t m = 1; m < plan.num_cells; ++m) {
                all_present[m] = query_counts[row[m]];
              }
              CORRMINE_ASSIGN_OR_RETURN(
                  ContingencyTable table,
                  ContingencyTable::FromAllPresentCounts(cand[i],
                                                         all_present));
              if (!HasCellSupport(table, options.support)) {
                slots[i].kind = EvalSlot::Kind::kDiscard;
                continue;
              }
              ChiSquaredResult chi2 = ComputeChiSquared(table, options.chi2);
              slots[i].masked_cells = chi2.validity.masked_cells;
              if (chi2.SignificantAt(options.confidence_level)) {
                slots[i].kind = EvalSlot::Kind::kSig;
                slots[i].chi2 = chi2;
                slots[i].major = MajorDependenceCell(table);
              } else {
                slots[i].kind = EvalSlot::Kind::kNotSig;
              }
            }
            return Status::OK();
          }));
      // Deterministic fan-in: a single thread walks the slots in candidate
      // order, so SIG/NOTSIG/stat updates match the sequential history.
      for (size_t i = 0; i < cand.size(); ++i) {
        ++stats.candidates;
        switch (slots[i].kind) {
          case EvalSlot::Kind::kDiscard:
            ++stats.discards;
            break;
          case EvalSlot::Kind::kSig:
            ++stats.significant;
            ++stats.chi2_tests;
            stats.masked_cells += slots[i].masked_cells;
            result.significant.push_back(CorrelationRule{
                std::move(cand[i]), slots[i].chi2, slots[i].major});
            break;
          case EvalSlot::Kind::kNotSig:
            ++stats.not_significant;
            ++stats.chi2_tests;
            stats.masked_cells += slots[i].masked_cells;
            if (keep_not_sig) {
              next_not_sig_set.Insert(cand[i]);
              next_not_sig.push_back(std::move(cand[i]));
            }
            break;
        }
      }
    }

    bool exhausted = stats.candidates == 0;
    if (!exhausted) {
      result.levels.push_back(stats);
      counters.AddLevel(stats);
    }

    // Step 8: the surviving NOTSIG list seeds the next level.
    std::sort(next_not_sig.begin(), next_not_sig.end());
    if (options.progress && !exhausted) {
      MinerProgress heartbeat;
      heartbeat.level = level;
      heartbeat.candidates = stats.candidates;
      heartbeat.frontier = next_not_sig.size();
      heartbeat.significant_total = result.significant.size();
      heartbeat.elapsed_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        run_start)
              .count();
      options.progress(heartbeat);
    }
    if (exhausted) break;
    not_sig = std::move(next_not_sig);
    not_sig_set = std::move(next_not_sig_set);
    if (not_sig.size() < 2 || level == max_level) break;
  }

  if (options.keep_frontier) {
    result.frontier = std::move(not_sig);
  }
  return result;
}

}  // namespace corrmine
