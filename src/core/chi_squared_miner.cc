#include "core/chi_squared_miner.h"

#include <algorithm>
#include <functional>
#include <memory>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "hash/itemset_set.h"

namespace corrmine {

uint64_t BinomialCount(uint64_t n, uint64_t k) {
  if (k > n) return 0;
  if (k > n - k) k = n - k;
  unsigned __int128 result = 1;
  for (uint64_t i = 1; i <= k; ++i) {
    result = result * (n - k + i) / i;
    if (result > UINT64_MAX) return UINT64_MAX;
  }
  return static_cast<uint64_t>(result);
}

namespace {

Status ValidateOptions(const MinerOptions& options) {
  if (!(options.confidence_level > 0.0 && options.confidence_level < 1.0)) {
    return Status::InvalidArgument("confidence_level must be in (0,1)");
  }
  if (!(options.support.cell_fraction > 0.0 &&
        options.support.cell_fraction <= 1.0)) {
    return Status::InvalidArgument("support cell_fraction must be in (0,1]");
  }
  if (options.num_threads < 0) {
    return Status::InvalidArgument("num_threads must be >= 0");
  }
  return Status::OK();
}

/// Streams the candidates of the next level without materializing CAND
/// (the full candidate set at level 3 of a dense dataset can dwarf memory;
/// the original implementation ran in 32 MB). Joins sorted NOTSIG sets
/// sharing all but their last item, verifies every |S|-1 subset against
/// the perfect-hash set (Figure 1, Step 8), and hands each surviving
/// candidate to `visit`. `visit` returns a Status; the first failure stops
/// the stream.
Status StreamCandidates(const std::vector<Itemset>& not_sig,
                        const hash::ItemsetPerfectSet& not_sig_set,
                        const std::function<Status(Itemset)>& visit) {
  for (size_t i = 0; i < not_sig.size(); ++i) {
    for (size_t j = i + 1; j < not_sig.size(); ++j) {
      const Itemset& a = not_sig[i];
      const Itemset& b = not_sig[j];
      // Sorted order means join partners with a common (k-1)-prefix are
      // adjacent; once prefixes diverge, no later b matches a.
      bool shared_prefix = true;
      for (size_t t = 0; t + 1 < a.size(); ++t) {
        if (a.item(t) != b.item(t)) {
          shared_prefix = false;
          break;
        }
      }
      if (!shared_prefix) break;
      Itemset joined = a.Union(b);
      if (joined.size() != a.size() + 1) continue;
      bool all_subsets_present = true;
      for (const Itemset& subset : joined.SubsetsMissingOne()) {
        if (!not_sig_set.Contains(subset)) {
          all_subsets_present = false;
          break;
        }
      }
      if (all_subsets_present) {
        CORRMINE_RETURN_NOT_OK(visit(std::move(joined)));
      }
    }
  }
  return Status::OK();
}

/// One evaluated candidate, parked in an index-addressed slot so batches
/// evaluated out of order merge back deterministically.
struct EvalSlot {
  enum class Kind : uint8_t { kDiscard, kSig, kNotSig };
  Kind kind = Kind::kDiscard;
  ChiSquaredResult chi2;      // kSig only.
  CellInterest major;         // kSig only.
  /// §3.3 low-expectation cells excluded from this candidate's statistic
  /// (recorded for kSig and kNotSig; discards never reach the test).
  uint64_t masked_cells = 0;
};

/// Counter handles for one mining run, resolved once so the per-level
/// fan-in pays a handful of sharded adds, not registry lookups.
struct MinerCounters {
  explicit MinerCounters(MetricsRegistry* registry)
      : candidates(registry->GetCounter("miner.candidates")),
        discards(registry->GetCounter("miner.discards_cell_support")),
        chi2_tests(registry->GetCounter("miner.chi2_tests")),
        masked_cells(registry->GetCounter("miner.masked_cells")),
        sig(registry->GetCounter("miner.sig")),
        notsig(registry->GetCounter("miner.notsig")),
        levels(registry->GetCounter("miner.levels")) {}

  void AddLevel(const LevelStats& stats) const {
    candidates->Add(stats.candidates);
    discards->Add(stats.discards);
    chi2_tests->Add(stats.chi2_tests);
    masked_cells->Add(stats.masked_cells);
    sig->Add(stats.significant);
    notsig->Add(stats.not_significant);
    levels->Add();
  }

  Counter* candidates;
  Counter* discards;
  Counter* chi2_tests;
  Counter* masked_cells;
  Counter* sig;
  Counter* notsig;
  Counter* levels;
};

/// Candidates buffered per parallel flush. Large enough that a flush
/// amortizes pool wake-ups, small enough that CAND at a dense level never
/// has to be materialized whole (the original streaming rationale).
constexpr size_t kEvalBatchSize = 4096;

/// Chunk granularity for work stealing inside one flush. Each candidate is
/// a 2^k-count table build, so even small chunks are meaty.
constexpr size_t kEvalGrain = 16;

}  // namespace

StatusOr<MiningResult> MineCorrelations(const CountProvider& provider,
                                        ItemId num_items,
                                        const MinerOptions& options) {
  CORRMINE_RETURN_NOT_OK(ValidateOptions(options));
  if (provider.num_baskets() == 0) {
    return Status::FailedPrecondition("mining an empty database");
  }
  MiningResult result;

  MetricsRegistry& registry =
      options.metrics ? *options.metrics : MetricsRegistry::Global();
  registry.GetCounter("miner.runs")->Add();
  MinerCounters counters(&registry);
  PhaseTimer run_timer(&registry, "miner.mine");

  // Pool ownership: one pool per mining run, reused across levels. The
  // calling thread participates in every parallel region, so a pool of
  // (threads - 1) workers yields `threads` concurrent evaluators.
  const int threads = ThreadPool::ResolveThreadCount(options.num_threads);
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads - 1);

  // Step 1: count O(i) for every item.
  uint64_t n = provider.num_baskets();
  std::vector<uint64_t> item_counts(num_items);
  for (ItemId i = 0; i < num_items; ++i) {
    item_counts[i] = provider.CountAllPresent(Itemset{i});
  }

  const int max_level = options.max_level > 0
                            ? std::min(options.max_level,
                                       ContingencyTable::kMaxItems)
                            : ContingencyTable::kMaxItems;

  // NOTSIG of the level being processed feeds the next level's candidate
  // stream; SIG is appended to the output as discovered.
  std::vector<Itemset> not_sig;
  hash::ItemsetPerfectSet not_sig_set;

  for (int level = 2; level <= max_level; ++level) {
    PhaseTimer level_timer(&registry, "miner.level");
    LevelStats stats;
    stats.level = level;
    stats.possible_itemsets = BinomialCount(num_items, level);

    std::vector<Itemset> next_not_sig;
    hash::ItemsetPerfectSet next_not_sig_set;
    // Skip NOTSIG bookkeeping when this is the last level we will visit —
    // nothing consumes it, and on dense data it is the memory high-water
    // mark — unless the caller asked for the frontier.
    const bool keep_not_sig = level < max_level || options.keep_frontier;

    // Steps 6-7, batched: candidates accumulate into `batch`, each flush
    // evaluates the batch in parallel into index-addressed slots (support
    // test, then chi-squared), and the merge below routes them into SIG or
    // (if another level follows) NOTSIG *in stream order* — so the output
    // is byte-identical whatever the thread count, including 1, which runs
    // the very same code inline.
    std::vector<Itemset> batch;
    batch.reserve(kEvalBatchSize);
    std::vector<EvalSlot> slots;

    auto flush = [&]() -> Status {
      if (batch.empty()) return Status::OK();
      slots.assign(batch.size(), EvalSlot{});
      CORRMINE_RETURN_NOT_OK(ParallelFor(
          pool.get(), batch.size(), kEvalGrain,
          [&](size_t begin, size_t end) -> Status {
            for (size_t i = begin; i < end; ++i) {
              CORRMINE_ASSIGN_OR_RETURN(
                  ContingencyTable table,
                  ContingencyTable::Build(provider, batch[i]));
              if (!HasCellSupport(table, options.support)) {
                slots[i].kind = EvalSlot::Kind::kDiscard;
                continue;
              }
              ChiSquaredResult chi2 = ComputeChiSquared(table, options.chi2);
              slots[i].masked_cells = chi2.validity.masked_cells;
              if (chi2.SignificantAt(options.confidence_level)) {
                slots[i].kind = EvalSlot::Kind::kSig;
                slots[i].chi2 = chi2;
                slots[i].major = MajorDependenceCell(table);
              } else {
                slots[i].kind = EvalSlot::Kind::kNotSig;
              }
            }
            return Status::OK();
          }));
      // Deterministic fan-in: a single thread walks the slots in candidate
      // order, so SIG/NOTSIG/stat updates match the sequential history.
      for (size_t i = 0; i < batch.size(); ++i) {
        ++stats.candidates;
        switch (slots[i].kind) {
          case EvalSlot::Kind::kDiscard:
            ++stats.discards;
            break;
          case EvalSlot::Kind::kSig:
            ++stats.significant;
            ++stats.chi2_tests;
            stats.masked_cells += slots[i].masked_cells;
            result.significant.push_back(CorrelationRule{
                std::move(batch[i]), slots[i].chi2, slots[i].major});
            break;
          case EvalSlot::Kind::kNotSig:
            ++stats.not_significant;
            ++stats.chi2_tests;
            stats.masked_cells += slots[i].masked_cells;
            if (keep_not_sig) {
              next_not_sig_set.Insert(batch[i]);
              next_not_sig.push_back(std::move(batch[i]));
            }
            break;
        }
      }
      batch.clear();
      return Status::OK();
    };

    auto enqueue = [&](Itemset s) -> Status {
      batch.push_back(std::move(s));
      if (batch.size() >= kEvalBatchSize) return flush();
      return Status::OK();
    };

    if (level == 2) {
      // Step 3: level-2 candidates via level-1 pruning.
      for (ItemId a = 0; a < num_items; ++a) {
        for (ItemId b = a + 1; b < num_items; ++b) {
          if (PairPassesLevelOne(item_counts[a], item_counts[b], n,
                                 options.support, options.level_one)) {
            CORRMINE_RETURN_NOT_OK(enqueue(Itemset{a, b}));
          }
        }
      }
    } else {
      CORRMINE_RETURN_NOT_OK(StreamCandidates(not_sig, not_sig_set, enqueue));
    }
    CORRMINE_RETURN_NOT_OK(flush());

    bool exhausted = stats.candidates == 0;
    if (!exhausted) {
      result.levels.push_back(stats);
      counters.AddLevel(stats);
    }

    // Step 8: the surviving NOTSIG list seeds the next level.
    std::sort(next_not_sig.begin(), next_not_sig.end());
    if (exhausted) break;
    not_sig = std::move(next_not_sig);
    not_sig_set = std::move(next_not_sig_set);
    if (not_sig.size() < 2 || level == max_level) break;
  }

  if (options.keep_frontier) {
    result.frontier = std::move(not_sig);
  }
  return result;
}

}  // namespace corrmine
