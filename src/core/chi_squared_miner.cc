#include "core/chi_squared_miner.h"

#include <algorithm>
#include <functional>

#include "common/logging.h"
#include "hash/itemset_set.h"

namespace corrmine {

uint64_t BinomialCount(uint64_t n, uint64_t k) {
  if (k > n) return 0;
  if (k > n - k) k = n - k;
  unsigned __int128 result = 1;
  for (uint64_t i = 1; i <= k; ++i) {
    result = result * (n - k + i) / i;
    if (result > UINT64_MAX) return UINT64_MAX;
  }
  return static_cast<uint64_t>(result);
}

namespace {

Status ValidateOptions(const MinerOptions& options) {
  if (!(options.confidence_level > 0.0 && options.confidence_level < 1.0)) {
    return Status::InvalidArgument("confidence_level must be in (0,1)");
  }
  if (!(options.support.cell_fraction > 0.0 &&
        options.support.cell_fraction <= 1.0)) {
    return Status::InvalidArgument("support cell_fraction must be in (0,1]");
  }
  return Status::OK();
}

/// Streams the candidates of the next level without materializing CAND
/// (the full candidate set at level 3 of a dense dataset can dwarf memory;
/// the original implementation ran in 32 MB). Joins sorted NOTSIG sets
/// sharing all but their last item, verifies every |S|-1 subset against
/// the perfect-hash set (Figure 1, Step 8), and hands each surviving
/// candidate to `visit`. `visit` returns a Status; the first failure stops
/// the stream.
Status StreamCandidates(const std::vector<Itemset>& not_sig,
                        const hash::ItemsetPerfectSet& not_sig_set,
                        const std::function<Status(Itemset)>& visit) {
  for (size_t i = 0; i < not_sig.size(); ++i) {
    for (size_t j = i + 1; j < not_sig.size(); ++j) {
      const Itemset& a = not_sig[i];
      const Itemset& b = not_sig[j];
      // Sorted order means join partners with a common (k-1)-prefix are
      // adjacent; once prefixes diverge, no later b matches a.
      bool shared_prefix = true;
      for (size_t t = 0; t + 1 < a.size(); ++t) {
        if (a.item(t) != b.item(t)) {
          shared_prefix = false;
          break;
        }
      }
      if (!shared_prefix) break;
      Itemset joined = a.Union(b);
      if (joined.size() != a.size() + 1) continue;
      bool all_subsets_present = true;
      for (const Itemset& subset : joined.SubsetsMissingOne()) {
        if (!not_sig_set.Contains(subset)) {
          all_subsets_present = false;
          break;
        }
      }
      if (all_subsets_present) {
        CORRMINE_RETURN_NOT_OK(visit(std::move(joined)));
      }
    }
  }
  return Status::OK();
}

}  // namespace

StatusOr<MiningResult> MineCorrelations(const CountProvider& provider,
                                        ItemId num_items,
                                        const MinerOptions& options) {
  CORRMINE_RETURN_NOT_OK(ValidateOptions(options));
  if (provider.num_baskets() == 0) {
    return Status::FailedPrecondition("mining an empty database");
  }
  MiningResult result;

  // Step 1: count O(i) for every item.
  uint64_t n = provider.num_baskets();
  std::vector<uint64_t> item_counts(num_items);
  for (ItemId i = 0; i < num_items; ++i) {
    item_counts[i] = provider.CountAllPresent(Itemset{i});
  }

  const int max_level = options.max_level > 0
                            ? std::min(options.max_level,
                                       ContingencyTable::kMaxItems)
                            : ContingencyTable::kMaxItems;

  // NOTSIG of the level being processed feeds the next level's candidate
  // stream; SIG is appended to the output as discovered.
  std::vector<Itemset> not_sig;
  hash::ItemsetPerfectSet not_sig_set;

  for (int level = 2; level <= max_level; ++level) {
    LevelStats stats;
    stats.level = level;
    stats.possible_itemsets = BinomialCount(num_items, level);

    std::vector<Itemset> next_not_sig;
    hash::ItemsetPerfectSet next_not_sig_set;
    // Skip NOTSIG bookkeeping when this is the last level we will visit —
    // nothing consumes it, and on dense data it is the memory high-water
    // mark — unless the caller asked for the frontier.
    const bool keep_not_sig = level < max_level || options.keep_frontier;

    // Steps 6-7 for one candidate: support test, then chi-squared routes
    // into SIG or (if another level follows) NOTSIG.
    auto evaluate = [&](Itemset s) -> Status {
      ++stats.candidates;
      CORRMINE_ASSIGN_OR_RETURN(ContingencyTable table,
                                ContingencyTable::Build(provider, s));
      if (!HasCellSupport(table, options.support)) {
        ++stats.discards;
        return Status::OK();
      }
      ChiSquaredResult chi2 = ComputeChiSquared(table, options.chi2);
      if (chi2.SignificantAt(options.confidence_level)) {
        ++stats.significant;
        result.significant.push_back(
            CorrelationRule{std::move(s), chi2, MajorDependenceCell(table)});
      } else {
        ++stats.not_significant;
        if (keep_not_sig) {
          next_not_sig_set.Insert(s);
          next_not_sig.push_back(std::move(s));
        }
      }
      return Status::OK();
    };

    if (level == 2) {
      // Step 3: level-2 candidates via level-1 pruning.
      for (ItemId a = 0; a < num_items; ++a) {
        for (ItemId b = a + 1; b < num_items; ++b) {
          if (PairPassesLevelOne(item_counts[a], item_counts[b], n,
                                 options.support, options.level_one)) {
            CORRMINE_RETURN_NOT_OK(evaluate(Itemset{a, b}));
          }
        }
      }
    } else {
      CORRMINE_RETURN_NOT_OK(
          StreamCandidates(not_sig, not_sig_set, evaluate));
    }

    bool exhausted = stats.candidates == 0;
    if (!exhausted) result.levels.push_back(stats);

    // Step 8: the surviving NOTSIG list seeds the next level.
    std::sort(next_not_sig.begin(), next_not_sig.end());
    if (exhausted) break;
    not_sig = std::move(next_not_sig);
    not_sig_set = std::move(next_not_sig_set);
    if (not_sig.size() < 2 || level == max_level) break;
  }

  if (options.keep_frontier) {
    result.frontier = std::move(not_sig);
  }
  return result;
}

}  // namespace corrmine
