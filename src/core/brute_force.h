#ifndef CORRMINE_CORE_BRUTE_FORCE_H_
#define CORRMINE_CORE_BRUTE_FORCE_H_

#include "core/chi_squared_miner.h"

namespace corrmine {

/// Exhaustive reference implementation of Algorithm x2-support's output
/// semantics, used to validate the level-wise and random-walk miners on
/// small inputs. Enumerates every itemset up to `max_level` and applies the
/// recursive definition directly:
///   candidate(S), |S| = 2:  the level-1 pruning admits the pair;
///   candidate(S), |S| > 2:  every (|S|-1)-subset is NOTSIG;
///   NOTSIG(S) = candidate(S) and supported(S) and not correlated(S);
///   SIG(S)    = candidate(S) and supported(S) and correlated(S).
///
/// Exponential in the number of items — test-sized inputs only.
StatusOr<MiningResult> MineCorrelationsBruteForce(
    const CountProvider& provider, ItemId num_items,
    const MinerOptions& options = {}, int max_level = 6);

}  // namespace corrmine

#endif  // CORRMINE_CORE_BRUTE_FORCE_H_
