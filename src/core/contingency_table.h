#ifndef CORRMINE_CORE_CONTINGENCY_TABLE_H_
#define CORRMINE_CORE_CONTINGENCY_TABLE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status_or.h"
#include "itemset/count_provider.h"
#include "itemset/itemset.h"

namespace corrmine {

/// Shared bookkeeping for a k-item presence/absence table: sample size n,
/// marginal counts O(i_j) of the itemset's items, and expected cell values
/// under the independence hypothesis (Section 3 of the paper):
///   E[r] = n * prod_j (p_j if item j present in r else 1 - p_j).
/// Cells are addressed by a k-bit mask; bit j set means the j-th (sorted)
/// item of S is present.
class IndependenceModel {
 public:
  IndependenceModel() = default;
  IndependenceModel(uint64_t n, std::vector<uint64_t> item_counts);

  uint64_t n() const { return n_; }
  int num_items() const { return static_cast<int>(item_counts_.size()); }
  uint64_t item_count(int j) const { return item_counts_[j]; }
  double item_probability(int j) const { return probs_[j]; }

  /// Expected count of cell `mask` under k-way independence.
  double Expected(uint32_t mask) const;

 private:
  uint64_t n_ = 0;
  std::vector<uint64_t> item_counts_;
  std::vector<double> probs_;
};

/// Dense 2^k contingency table for an itemset S. Observed counts of every
/// presence/absence pattern are materialized; suitable for the small k the
/// level-wise search visits (the size cap keeps memory bounded).
class ContingencyTable {
 public:
  /// Largest supported itemset (2^16 cells); larger sets should use the
  /// sparse representation.
  static constexpr int kMaxItems = 16;

  /// Builds the table by querying `provider` for the 2^k "all items of m
  /// present" counts and Mobius-inverting them into exact cell counts.
  /// Requires 1 <= |s| <= kMaxItems, items within range, and a non-empty
  /// database.
  static StatusOr<ContingencyTable> Build(const CountProvider& provider,
                                          const Itemset& s);

  /// Assembles the table from precomputed superset counts:
  /// `all_present[m]` = baskets containing every item of submask m of `s`
  /// (bit j = j-th sorted item), for all 2^|s| masks with
  /// `all_present[0] == n`. This is the path the batched level-wise miner
  /// uses — it answers a whole level's submask queries in one
  /// CountAllPresentBatch, then Mobius-inverts per candidate. Same
  /// validation and negativity checks as Build; identical tables for
  /// identical counts.
  static StatusOr<ContingencyTable> FromAllPresentCounts(
      const Itemset& s, std::span<const uint64_t> all_present);

  const Itemset& itemset() const { return itemset_; }
  int num_items() const { return model_.num_items(); }
  size_t num_cells() const { return observed_.size(); }
  uint64_t n() const { return model_.n(); }

  uint64_t Observed(uint32_t mask) const { return observed_[mask]; }
  double Expected(uint32_t mask) const { return model_.Expected(mask); }
  const IndependenceModel& model() const { return model_; }

  /// Number of cells whose observed count is >= `threshold` (the quantity
  /// the paper's generalized support definition is stated in terms of).
  size_t CellsWithCountAtLeast(uint64_t threshold) const;

 private:
  ContingencyTable(Itemset s, IndependenceModel model,
                   std::vector<uint64_t> observed)
      : itemset_(std::move(s)),
        model_(std::move(model)),
        observed_(std::move(observed)) {}

  Itemset itemset_;
  IndependenceModel model_;
  std::vector<uint64_t> observed_;
};

/// Sparse contingency table: only occupied cells (observed > 0) are stored,
/// of which there are at most min(n, 2^k). This is the representation behind
/// the paper's massaged chi-squared formula (Section 4) and scales to large
/// itemsets where 2^k is astronomical.
class SparseContingencyTable {
 public:
  struct Cell {
    uint32_t mask;      // presence pattern, bit j = j-th item of S present
    uint64_t observed;  // > 0 by construction
  };

  /// Supports up to 32 items (mask width); the cell count is bounded by n
  /// regardless of k.
  static constexpr int kMaxItems = 32;

  /// Builds by projecting every basket onto S and hashing the patterns —
  /// one database pass, O(n) cells worst case.
  static StatusOr<SparseContingencyTable> Build(const TransactionDatabase& db,
                                                const Itemset& s);

  /// Assembles from precomputed cells (used by the batch per-level builder,
  /// core/batch_tables.h). Cells must have distinct masks within the
  /// itemset's width, positive counts, and sum to the model's n.
  static StatusOr<SparseContingencyTable> FromCells(Itemset s,
                                                    IndependenceModel model,
                                                    std::vector<Cell> cells);

  const Itemset& itemset() const { return itemset_; }
  int num_items() const { return model_.num_items(); }
  uint64_t n() const { return model_.n(); }
  double Expected(uint32_t mask) const { return model_.Expected(mask); }
  const IndependenceModel& model() const { return model_; }

  const std::vector<Cell>& occupied_cells() const { return cells_; }

  /// Total number of cells, 2^k (occupied or not).
  double TotalCellCount() const;

  /// Number of cells with observed count >= threshold; for threshold >= 1
  /// only occupied cells qualify so this is a scan of the sparse list.
  size_t CellsWithCountAtLeast(uint64_t threshold) const;

 private:
  SparseContingencyTable(Itemset s, IndependenceModel model,
                         std::vector<Cell> cells)
      : itemset_(std::move(s)),
        model_(std::move(model)),
        cells_(std::move(cells)) {}

  Itemset itemset_;
  IndependenceModel model_;
  std::vector<Cell> cells_;
};

}  // namespace corrmine

#endif  // CORRMINE_CORE_CONTINGENCY_TABLE_H_
