#include "core/border_state.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "io/binary_io.h"

namespace corrmine {

namespace {

// Snapshot layout (version 1) — varints are unsigned LEB128, doubles are
// 8-byte little-endian bit patterns (exactness matters: the differential
// suite asserts byte-identity against from-scratch mining, so statistics
// must round-trip bit-for-bit, including infinities):
//   magic "CBS1", varint version
//   varint num_items, varint num_baskets
//   config: bits(confidence) | varint min_count | bits(cell_fraction)
//           varint level_one | varint statistic | bits(min_expected_cell)
//           u8 yates | varint dof_policy | varint max_level | u8 frontier
//   dictionary: varint count, per name varint length + bytes
//   levels: varint count, 8 varints per level
//   rules: varint count, per rule itemset + chi2 + major-dependence cell
//   frontier: varint count + itemsets
//   memo: varint count, per entry itemset + varint count, sorted
//         lexicographically (the determinism the round-trip test pins)
// Itemsets use the CMB1 delta trick: first varint is the first id, later
// ones are strictly positive gaps.
constexpr char kMagic[4] = {'C', 'B', 'S', '1'};
constexpr uint64_t kVersion = 1;

void AppendFixed64(std::string* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void AppendDouble(std::string* out, double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  AppendFixed64(out, bits);
}

StatusOr<uint64_t> ReadFixed64(const std::string& bytes, size_t* pos) {
  if (*pos + 8 > bytes.size()) {
    return Status::Corruption("truncated fixed64");
  }
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(static_cast<uint8_t>(bytes[*pos + i]))
             << (8 * i);
  }
  *pos += 8;
  return value;
}

StatusOr<double> ReadDouble(const std::string& bytes, size_t* pos) {
  CORRMINE_ASSIGN_OR_RETURN(uint64_t bits, ReadFixed64(bytes, pos));
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

StatusOr<uint8_t> ReadByte(const std::string& bytes, size_t* pos) {
  if (*pos >= bytes.size()) {
    return Status::Corruption("truncated byte");
  }
  return static_cast<uint8_t>(bytes[(*pos)++]);
}

void AppendItemset(std::string* out, const Itemset& s) {
  io::AppendVarint(out, s.size());
  ItemId previous = 0;
  for (size_t i = 0; i < s.size(); ++i) {
    io::AppendVarint(out, i == 0 ? s.item(i) : s.item(i) - previous);
    previous = s.item(i);
  }
}

StatusOr<Itemset> ReadItemset(const std::string& bytes, size_t* pos) {
  CORRMINE_ASSIGN_OR_RETURN(uint64_t size, io::ReadVarint(bytes, pos));
  if (size > UINT32_MAX) {
    return Status::Corruption("itemset size out of range");
  }
  std::vector<ItemId> items;
  items.reserve(size);
  uint64_t current = 0;
  for (uint64_t i = 0; i < size; ++i) {
    CORRMINE_ASSIGN_OR_RETURN(uint64_t delta, io::ReadVarint(bytes, pos));
    if (i > 0 && delta == 0) {
      return Status::Corruption("non-increasing itemset delta");
    }
    current = i == 0 ? delta : current + delta;
    if (current > UINT32_MAX) {
      return Status::Corruption("item id out of range");
    }
    items.push_back(static_cast<ItemId>(current));
  }
  return Itemset(std::move(items));
}

void AppendRule(std::string* out, const CorrelationRule& rule) {
  AppendItemset(out, rule.itemset);
  AppendDouble(out, rule.chi2.statistic);
  io::AppendVarint(out, static_cast<uint64_t>(rule.chi2.dof));
  AppendDouble(out, rule.chi2.p_value);
  out->push_back(rule.chi2.validity.all_expected_above_one ? 1 : 0);
  AppendDouble(out, rule.chi2.validity.fraction_expected_above_five);
  io::AppendVarint(out, rule.chi2.validity.masked_cells);
  out->push_back(rule.chi2.validity.exact ? 1 : 0);
  io::AppendVarint(out, rule.major_dependence.mask);
  io::AppendVarint(out, rule.major_dependence.observed);
  AppendDouble(out, rule.major_dependence.expected);
  AppendDouble(out, rule.major_dependence.interest);
  AppendDouble(out, rule.major_dependence.contribution);
}

StatusOr<CorrelationRule> ReadRule(const std::string& bytes, size_t* pos) {
  CorrelationRule rule;
  CORRMINE_ASSIGN_OR_RETURN(rule.itemset, ReadItemset(bytes, pos));
  CORRMINE_ASSIGN_OR_RETURN(rule.chi2.statistic, ReadDouble(bytes, pos));
  CORRMINE_ASSIGN_OR_RETURN(uint64_t dof, io::ReadVarint(bytes, pos));
  rule.chi2.dof = static_cast<int64_t>(dof);
  CORRMINE_ASSIGN_OR_RETURN(rule.chi2.p_value, ReadDouble(bytes, pos));
  CORRMINE_ASSIGN_OR_RETURN(uint8_t above_one, ReadByte(bytes, pos));
  rule.chi2.validity.all_expected_above_one = above_one != 0;
  CORRMINE_ASSIGN_OR_RETURN(rule.chi2.validity.fraction_expected_above_five,
                            ReadDouble(bytes, pos));
  CORRMINE_ASSIGN_OR_RETURN(rule.chi2.validity.masked_cells,
                            io::ReadVarint(bytes, pos));
  CORRMINE_ASSIGN_OR_RETURN(uint8_t exact, ReadByte(bytes, pos));
  rule.chi2.validity.exact = exact != 0;
  CORRMINE_ASSIGN_OR_RETURN(uint64_t mask, io::ReadVarint(bytes, pos));
  if (mask > UINT32_MAX) {
    return Status::Corruption("cell mask out of range");
  }
  rule.major_dependence.mask = static_cast<uint32_t>(mask);
  CORRMINE_ASSIGN_OR_RETURN(rule.major_dependence.observed,
                            io::ReadVarint(bytes, pos));
  CORRMINE_ASSIGN_OR_RETURN(rule.major_dependence.expected,
                            ReadDouble(bytes, pos));
  CORRMINE_ASSIGN_OR_RETURN(rule.major_dependence.interest,
                            ReadDouble(bytes, pos));
  CORRMINE_ASSIGN_OR_RETURN(rule.major_dependence.contribution,
                            ReadDouble(bytes, pos));
  return rule;
}

}  // namespace

BorderMinerConfig BorderMinerConfig::FromMinerOptions(
    const MinerOptions& options) {
  BorderMinerConfig config;
  config.confidence_level = options.confidence_level;
  config.support = options.support;
  config.level_one = options.level_one;
  config.chi2 = options.chi2;
  config.max_level = options.max_level;
  config.keep_frontier = options.keep_frontier;
  return config;
}

MinerOptions BorderMinerConfig::ToMinerOptions() const {
  MinerOptions options;
  options.confidence_level = confidence_level;
  options.support = support;
  options.level_one = level_one;
  options.chi2 = chi2;
  options.max_level = max_level;
  options.keep_frontier = keep_frontier;
  return options;
}

std::string EncodeBorderState(const BorderState& state) {
  std::string out(kMagic, sizeof(kMagic));
  io::AppendVarint(&out, kVersion);
  io::AppendVarint(&out, state.num_items);
  io::AppendVarint(&out, state.num_baskets);

  AppendDouble(&out, state.config.confidence_level);
  io::AppendVarint(&out, state.config.support.min_count);
  AppendDouble(&out, state.config.support.cell_fraction);
  io::AppendVarint(&out, static_cast<uint64_t>(state.config.level_one));
  io::AppendVarint(&out, static_cast<uint64_t>(state.config.chi2.statistic));
  AppendDouble(&out, state.config.chi2.min_expected_cell);
  out.push_back(state.config.chi2.yates_correction ? 1 : 0);
  io::AppendVarint(&out, static_cast<uint64_t>(state.config.chi2.dof_policy));
  io::AppendVarint(&out, static_cast<uint64_t>(state.config.max_level));
  out.push_back(state.config.keep_frontier ? 1 : 0);

  io::AppendVarint(&out, state.item_names.size());
  for (const std::string& name : state.item_names) {
    io::AppendVarint(&out, name.size());
    out.append(name);
  }

  io::AppendVarint(&out, state.result.levels.size());
  for (const LevelStats& level : state.result.levels) {
    io::AppendVarint(&out, static_cast<uint64_t>(level.level));
    io::AppendVarint(&out, level.possible_itemsets);
    io::AppendVarint(&out, level.candidates);
    io::AppendVarint(&out, level.discards);
    io::AppendVarint(&out, level.significant);
    io::AppendVarint(&out, level.not_significant);
    io::AppendVarint(&out, level.chi2_tests);
    io::AppendVarint(&out, level.masked_cells);
  }

  io::AppendVarint(&out, state.result.significant.size());
  for (const CorrelationRule& rule : state.result.significant) {
    AppendRule(&out, rule);
  }

  io::AppendVarint(&out, state.result.frontier.size());
  for (const Itemset& s : state.result.frontier) {
    AppendItemset(&out, s);
  }

  // The memo lives in an unordered map; emit it sorted so identical states
  // always encode to identical bytes (the save->load->save contract).
  std::vector<const Itemset*> keys;
  keys.reserve(state.counts.size());
  for (const auto& [query, count] : state.counts) keys.push_back(&query);
  std::sort(keys.begin(), keys.end(),
            [](const Itemset* a, const Itemset* b) { return *a < *b; });
  io::AppendVarint(&out, keys.size());
  for (const Itemset* query : keys) {
    AppendItemset(&out, *query);
    io::AppendVarint(&out, state.counts.at(*query));
  }
  return out;
}

StatusOr<BorderState> DecodeBorderState(const std::string& bytes) {
  if (bytes.size() < sizeof(kMagic) ||
      bytes.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("missing CBS1 magic");
  }
  size_t pos = sizeof(kMagic);
  CORRMINE_ASSIGN_OR_RETURN(uint64_t version, io::ReadVarint(bytes, &pos));
  if (version != kVersion) {
    return Status::Corruption("unsupported border-state version " +
                              std::to_string(version));
  }
  BorderState state;
  CORRMINE_ASSIGN_OR_RETURN(uint64_t num_items, io::ReadVarint(bytes, &pos));
  if (num_items == 0 || num_items > UINT32_MAX) {
    return Status::Corruption("invalid item-space size");
  }
  state.num_items = static_cast<ItemId>(num_items);
  CORRMINE_ASSIGN_OR_RETURN(state.num_baskets, io::ReadVarint(bytes, &pos));

  CORRMINE_ASSIGN_OR_RETURN(state.config.confidence_level,
                            ReadDouble(bytes, &pos));
  CORRMINE_ASSIGN_OR_RETURN(state.config.support.min_count,
                            io::ReadVarint(bytes, &pos));
  CORRMINE_ASSIGN_OR_RETURN(state.config.support.cell_fraction,
                            ReadDouble(bytes, &pos));
  CORRMINE_ASSIGN_OR_RETURN(uint64_t level_one, io::ReadVarint(bytes, &pos));
  if (level_one > static_cast<uint64_t>(LevelOnePruning::kNone)) {
    return Status::Corruption("invalid level-one pruning mode");
  }
  state.config.level_one = static_cast<LevelOnePruning>(level_one);
  CORRMINE_ASSIGN_OR_RETURN(uint64_t statistic, io::ReadVarint(bytes, &pos));
  if (statistic >
      static_cast<uint64_t>(IndependenceStatistic::kLikelihoodRatioG)) {
    return Status::Corruption("invalid independence statistic");
  }
  state.config.chi2.statistic = static_cast<IndependenceStatistic>(statistic);
  CORRMINE_ASSIGN_OR_RETURN(state.config.chi2.min_expected_cell,
                            ReadDouble(bytes, &pos));
  CORRMINE_ASSIGN_OR_RETURN(uint8_t yates, ReadByte(bytes, &pos));
  state.config.chi2.yates_correction = yates != 0;
  CORRMINE_ASSIGN_OR_RETURN(uint64_t dof_policy, io::ReadVarint(bytes, &pos));
  if (dof_policy > static_cast<uint64_t>(DofPolicy::kIndependenceModel)) {
    return Status::Corruption("invalid dof policy");
  }
  state.config.chi2.dof_policy = static_cast<DofPolicy>(dof_policy);
  CORRMINE_ASSIGN_OR_RETURN(uint64_t max_level, io::ReadVarint(bytes, &pos));
  if (max_level > INT32_MAX) {
    return Status::Corruption("max level out of range");
  }
  state.config.max_level = static_cast<int>(max_level);
  CORRMINE_ASSIGN_OR_RETURN(uint8_t frontier, ReadByte(bytes, &pos));
  state.config.keep_frontier = frontier != 0;

  CORRMINE_ASSIGN_OR_RETURN(uint64_t num_names, io::ReadVarint(bytes, &pos));
  if (num_names > num_items) {
    return Status::Corruption("dictionary larger than item space");
  }
  state.item_names.reserve(num_names);
  for (uint64_t i = 0; i < num_names; ++i) {
    CORRMINE_ASSIGN_OR_RETURN(uint64_t length, io::ReadVarint(bytes, &pos));
    if (pos + length > bytes.size()) {
      return Status::Corruption("truncated dictionary name");
    }
    state.item_names.push_back(bytes.substr(pos, length));
    pos += length;
  }

  CORRMINE_ASSIGN_OR_RETURN(uint64_t num_levels, io::ReadVarint(bytes, &pos));
  state.result.levels.reserve(num_levels);
  for (uint64_t i = 0; i < num_levels; ++i) {
    LevelStats level;
    CORRMINE_ASSIGN_OR_RETURN(uint64_t level_no, io::ReadVarint(bytes, &pos));
    if (level_no > INT32_MAX) {
      return Status::Corruption("level number out of range");
    }
    level.level = static_cast<int>(level_no);
    CORRMINE_ASSIGN_OR_RETURN(level.possible_itemsets,
                              io::ReadVarint(bytes, &pos));
    CORRMINE_ASSIGN_OR_RETURN(level.candidates, io::ReadVarint(bytes, &pos));
    CORRMINE_ASSIGN_OR_RETURN(level.discards, io::ReadVarint(bytes, &pos));
    CORRMINE_ASSIGN_OR_RETURN(level.significant, io::ReadVarint(bytes, &pos));
    CORRMINE_ASSIGN_OR_RETURN(level.not_significant,
                              io::ReadVarint(bytes, &pos));
    CORRMINE_ASSIGN_OR_RETURN(level.chi2_tests, io::ReadVarint(bytes, &pos));
    CORRMINE_ASSIGN_OR_RETURN(level.masked_cells, io::ReadVarint(bytes, &pos));
    state.result.levels.push_back(level);
  }

  CORRMINE_ASSIGN_OR_RETURN(uint64_t num_rules, io::ReadVarint(bytes, &pos));
  state.result.significant.reserve(num_rules);
  for (uint64_t i = 0; i < num_rules; ++i) {
    CORRMINE_ASSIGN_OR_RETURN(CorrelationRule rule, ReadRule(bytes, &pos));
    state.result.significant.push_back(std::move(rule));
  }

  CORRMINE_ASSIGN_OR_RETURN(uint64_t num_frontier,
                            io::ReadVarint(bytes, &pos));
  state.result.frontier.reserve(num_frontier);
  for (uint64_t i = 0; i < num_frontier; ++i) {
    CORRMINE_ASSIGN_OR_RETURN(Itemset s, ReadItemset(bytes, &pos));
    state.result.frontier.push_back(std::move(s));
  }

  CORRMINE_ASSIGN_OR_RETURN(uint64_t num_counts, io::ReadVarint(bytes, &pos));
  state.counts.reserve(num_counts);
  for (uint64_t i = 0; i < num_counts; ++i) {
    CORRMINE_ASSIGN_OR_RETURN(Itemset query, ReadItemset(bytes, &pos));
    CORRMINE_ASSIGN_OR_RETURN(uint64_t count, io::ReadVarint(bytes, &pos));
    if (count > state.num_baskets) {
      return Status::Corruption("memo count exceeds basket count");
    }
    if (!state.counts.emplace(std::move(query), count).second) {
      return Status::Corruption("duplicate memo entry");
    }
  }

  if (pos != bytes.size()) {
    return Status::Corruption("trailing bytes after border state");
  }
  return state;
}

Status SaveBorderState(const BorderState& state, const std::string& path) {
  return io::WriteStringToFile(EncodeBorderState(state), path);
}

StatusOr<BorderState> LoadBorderState(const std::string& path) {
  CORRMINE_ASSIGN_OR_RETURN(std::string bytes, io::ReadFileToString(path));
  return DecodeBorderState(bytes);
}

}  // namespace corrmine
