#include "core/interest.h"

#include <cmath>
#include <limits>

#include "common/logging.h"

namespace corrmine {

namespace {

CellInterest MakeCellInterest(const ContingencyTable& table, uint32_t mask) {
  CellInterest cell;
  cell.mask = mask;
  cell.observed = table.Observed(mask);
  cell.expected = table.Expected(mask);
  if (cell.expected > 0.0) {
    cell.interest = static_cast<double>(cell.observed) / cell.expected;
    double diff = static_cast<double>(cell.observed) - cell.expected;
    cell.contribution = diff * diff / cell.expected;
  } else {
    cell.interest = cell.observed == 0
                        ? 1.0
                        : std::numeric_limits<double>::infinity();
    cell.contribution =
        cell.observed == 0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  return cell;
}

}  // namespace

std::vector<CellInterest> ComputeCellInterests(const ContingencyTable& table) {
  std::vector<CellInterest> cells;
  cells.reserve(table.num_cells());
  for (uint32_t mask = 0; mask < table.num_cells(); ++mask) {
    cells.push_back(MakeCellInterest(table, mask));
  }
  return cells;
}

CellInterest MajorDependenceCell(const ContingencyTable& table) {
  CellInterest best = MakeCellInterest(table, 0);
  for (uint32_t mask = 1; mask < table.num_cells(); ++mask) {
    CellInterest cell = MakeCellInterest(table, mask);
    if (cell.contribution > best.contribution) best = cell;
  }
  return best;
}

CellInterest MostExtremeInterestCell(const ContingencyTable& table) {
  CellInterest best = MakeCellInterest(table, 0);
  double best_distance = std::fabs(best.interest - 1.0);
  for (uint32_t mask = 1; mask < table.num_cells(); ++mask) {
    CellInterest cell = MakeCellInterest(table, mask);
    double distance = std::fabs(cell.interest - 1.0);
    if (distance > best_distance) {
      best = cell;
      best_distance = distance;
    }
  }
  return best;
}

std::string FormatCellPattern(const Itemset& s, uint32_t mask,
                              const ItemDictionary* dict) {
  std::string out = "{";
  for (size_t j = 0; j < s.size(); ++j) {
    if (j > 0) out += ", ";
    if (!((mask >> j) & 1)) out += "!";
    std::string name = "i" + std::to_string(s.item(j));
    if (dict != nullptr) {
      auto named = dict->Name(s.item(j));
      if (named.ok()) name = *named;
    }
    out += name;
  }
  out += "}";
  return out;
}

}  // namespace corrmine
