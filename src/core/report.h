#ifndef CORRMINE_CORE_REPORT_H_
#define CORRMINE_CORE_REPORT_H_

#include <string>

#include "core/chi_squared_miner.h"
#include "itemset/transaction_database.h"

namespace corrmine {

struct ReportOptions {
  /// Maximum rules listed in each section.
  size_t max_rules = 20;
  /// Interest below which the joint cell counts as a negative dependence.
  double negative_interest_cutoff = 0.8;
  /// When set, apply a Benjamini-Hochberg FDR filter at this level to the
  /// rules before reporting (0 disables — the paper's unadjusted regime).
  double fdr_level = 0.0;
};

/// Renders a mining result as a human-readable analysis: per-level search
/// statistics, the strongest correlations (by chi-squared), the negative
/// dependencies (joint cell under expectation — what support-confidence
/// mining can never surface), and optional multiple-testing filtering.
/// `dict` may be null; items then print as "i<id>".
std::string RenderReport(const MiningResult& result,
                         const ItemDictionary* dict,
                         const ReportOptions& options = {});

}  // namespace corrmine

#endif  // CORRMINE_CORE_REPORT_H_
