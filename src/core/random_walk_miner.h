#ifndef CORRMINE_CORE_RANDOM_WALK_MINER_H_
#define CORRMINE_CORE_RANDOM_WALK_MINER_H_

#include <cstdint>

#include "core/chi_squared_miner.h"

namespace corrmine {

/// Options for the random-walk alternative to the level-wise search.
struct RandomWalkOptions {
  /// Shared mining parameters (support, significance, statistic options).
  MinerOptions miner;
  /// Number of independent walks up the lattice.
  int num_walks = 1000;
  /// Walks abandon after reaching this itemset size without crossing the
  /// border (also bounded by the dense contingency-table cap).
  int max_itemset_size = 8;
  /// Section 4's non-level-wise pruning idea: "prune itemsets with very
  /// high chi2 values, under the theory that these correlations are
  /// probably so obvious as to be uninteresting". Not downward closed, so
  /// the level-wise algorithm cannot use it — but a walk can simply drop
  /// crossings whose statistic exceeds the ceiling. 0 disables.
  double max_chi_squared = 0.0;
  uint64_t seed = 0x9a11ce5ULL;
};

/// The random-walk algorithm the paper sketches (Sections 2.1 and 6,
/// following Gunopulos et al. [14]): each walk starts from a random
/// supported pair and adds random items while the current set stays
/// supported and uncorrelated; the moment it crosses the correlation border
/// the walk stops and the crossing set is minimized (greedy item removal,
/// which by upward closure yields a truly minimal correlated set).
///
/// Produces a *subset* of the border per run — walks that repeatedly land on
/// the same minimal sets are deduplicated. With enough walks relative to the
/// border size, the full border is recovered with high probability.
StatusOr<MiningResult> MineCorrelationsRandomWalk(
    const CountProvider& provider, ItemId num_items,
    const RandomWalkOptions& options = {});

}  // namespace corrmine

#endif  // CORRMINE_CORE_RANDOM_WALK_MINER_H_
