#ifndef CORRMINE_CORE_SESSION_H_
#define CORRMINE_CORE_SESSION_H_

#include <memory>
#include <string>

#include "common/status_or.h"
#include "core/chi_squared_miner.h"
#include "core/random_walk_miner.h"
#include "itemset/count_provider.h"
#include "itemset/counting_column.h"
#include "itemset/sharded_database.h"
#include "mining/apriori.h"
#include "mining/eclat.h"

namespace corrmine {

class ThreadPool;

/// Counting strategy a MiningSession builds (CLI `--provider`). All three
/// satisfy the same CountProvider contract with batch overrides, so mined
/// answers are byte-identical across strategies; only cost, memory, and
/// which kernel counters tick differ.
enum class SessionProvider {
  /// Per-shard uncompressed bitmap indexes (ShardedCountProvider) — the
  /// default: fastest on dense row spaces, O(items x rows / 8) memory.
  kBitmap = 0,
  /// Per-shard hybrid counting columns (CompressedCountProvider) — adaptive
  /// array/dense/run containers, memory tracks occupancy instead of the
  /// rectangle, and the same storage the out-of-core shard files hold.
  kCompressed = 1,
  /// No index at all (ShardedScanCountProvider) — re-scans the row store
  /// per batch; the paper's full-pass baseline cost model.
  kScan = 2,
};

/// Knobs a MiningSession resolves once, up front, instead of every caller
/// re-deriving them per run.
struct SessionOptions {
  /// Worker threads for every parallel region (1 = sequential, 0 = one per
  /// hardware thread). The session owns one pool for its lifetime and lends
  /// it to each run, so repeated runs don't pay thread spawn/join.
  int num_threads = 1;

  /// Database shards K (1 = monolithic layout, 0 = one per hardware
  /// thread). Per the K-invariance contract (DESIGN.md §7) every mined
  /// answer is byte-identical for any K; only cost and memory locality
  /// change.
  int num_shards = 1;

  /// Memoize prefix-intersection bitmaps (CachedCountProvider) on top of
  /// the counting index. Only available with num_shards == 1 — the cache
  /// decorates a single whole-database vertical index, and its cost
  /// counters are pinned by golden tests to the unsharded AND-chain shape.
  bool prefix_cache = false;

  /// Counting strategy to build. prefix_cache additionally requires
  /// kBitmap (the cache decorates a whole-database bitmap index).
  SessionProvider provider = SessionProvider::kBitmap;

  /// Text inputs hold word tokens, not integer ids (Open only).
  bool named_items = false;

  /// Floors the item space when loading text files (Open only); the CMB1
  /// binary header is authoritative for its own item space.
  ItemId num_items_hint = 0;

  /// Registry for the runs' counters and phase timers; nullptr means
  /// MetricsRegistry::Global().
  MetricsRegistry* metrics = nullptr;
};

/// One place that owns everything a mining run needs — the sharded dataset,
/// the counting provider (with optional prefix cache), the thread pool, and
/// the metrics registry — so front ends (the CLI, tests, benchmarks) stop
/// hand-assembling provider/pool/option plumbing. Construction resolves the
/// 0-means-auto conventions once; every Mine* method lends the session's
/// pool to the run and wires the resolved thread count through, so results
/// are identical to standalone calls with the same settings.
class MiningSession {
 public:
  /// Loads `path` (auto-detected CMB1 binary or text, io/format_detect.h)
  /// straight into the session's K-shard layout. Named-item text inputs are
  /// parsed through the dictionary first, then partitioned.
  static StatusOr<MiningSession> Open(const std::string& path,
                                      const SessionOptions& options = {});

  /// Adopts an already-built database, partitioning it into K shards.
  static StatusOr<MiningSession> FromDatabase(const TransactionDatabase& db,
                                              const SessionOptions& options = {});

  /// Adopts an already-sharded database as-is (its K wins over
  /// options.num_shards).
  static StatusOr<MiningSession> FromShardedDatabase(
      ShardedTransactionDatabase db, const SessionOptions& options = {});

  // Out-of-line so unique_ptr<ThreadPool> can destroy a complete type.
  MiningSession(MiningSession&&) noexcept;
  MiningSession& operator=(MiningSession&&) noexcept;
  ~MiningSession();

  /// Level-wise chi-squared mining (Figure 1) over the session's provider.
  /// The session fills in num_threads/pool/metrics; all other fields of
  /// `options` are the caller's.
  StatusOr<MiningResult> Mine(MinerOptions options = {}) const;

  /// Delta ingestion: appends `chunk`'s baskets in order (round-robin
  /// placement continues where loading left off), growing the item space to
  /// cover chunk.num_items() when the delta introduces new items. The
  /// per-shard vertical indexes are caught up in place — no rebuild — and
  /// the prefix cache's epoch advances so no stale count survives. After
  /// the call every count is exactly what a fresh session over base+delta
  /// would produce. Must not race with Mine* calls.
  Status AppendBatch(const TransactionDatabase& chunk);

  /// The random-walk border sampler, same wiring as Mine.
  StatusOr<MiningResult> MineRandomWalk(RandomWalkOptions options = {}) const;

  /// Apriori frequent-itemset mining over the session's provider (one
  /// CountAllPresentBatch per level).
  StatusOr<std::vector<FrequentItemset>> MineFrequent(
      AprioriOptions options = {}) const;

  /// Shard-native Eclat over the session's database.
  StatusOr<std::vector<FrequentItemset>> MineFrequentEclat(
      EclatOptions options = {}) const;

  const ShardedTransactionDatabase& database() const { return db_; }
  /// The counting strategy every Mine* call uses (the prefix cache when
  /// enabled, else the selected provider).
  const CountProvider& provider() const { return *active_provider_; }
  /// The strategy this session was built with.
  SessionProvider provider_kind() const { return provider_kind_; }
  /// Non-null only when SessionOptions::prefix_cache was set.
  const CachedCountProvider* cache() const { return cached_.get(); }
  CachedCountProvider* cache() { return cached_.get(); }

  size_t num_shards() const { return db_.num_shards(); }
  /// Resolved thread count (the 0-means-auto convention already applied).
  int num_threads() const { return threads_; }
  /// The session's lending pool; nullptr when running sequentially.
  ThreadPool* pool() const { return pool_.get(); }
  MetricsRegistry& metrics() const;

  ItemId num_items() const { return db_.num_items(); }
  uint64_t num_baskets() const { return db_.num_baskets(); }
  const ItemDictionary& dictionary() const { return db_.dictionary(); }

  /// Monolithic copy in original basket order, for consumers that need a
  /// contiguous row store (e.g. the permutation independence test).
  TransactionDatabase Flatten() const { return db_.Flatten(); }

 private:
  MiningSession(ShardedTransactionDatabase db, const SessionOptions& options);

  /// Refreshes the "mem.*" gauges (peak RSS, shard-index bytes, cache bytes)
  /// in the session's registry; called after every Mine* run.
  void PublishMemoryGauges() const;

  ShardedTransactionDatabase db_;
  // Exactly one of the three strategy members is built (provider_kind_);
  // active_provider_ points at it, or at cached_ when the cache decorates
  // the bitmap strategy.
  std::unique_ptr<ShardedCountProvider> sharded_provider_;
  std::unique_ptr<CompressedCountProvider> compressed_provider_;
  std::unique_ptr<ShardedScanCountProvider> scan_provider_;
  std::unique_ptr<CachedCountProvider> cached_;
  const CountProvider* active_provider_ = nullptr;
  SessionProvider provider_kind_ = SessionProvider::kBitmap;
  std::unique_ptr<ThreadPool> pool_;
  int threads_ = 1;
  MetricsRegistry* metrics_ = nullptr;
};

}  // namespace corrmine

#endif  // CORRMINE_CORE_SESSION_H_
