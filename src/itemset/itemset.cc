#include "itemset/itemset.h"

#include <algorithm>

namespace corrmine {

Itemset::Itemset(std::vector<ItemId> items) : items_(std::move(items)) {
  std::sort(items_.begin(), items_.end());
  items_.erase(std::unique(items_.begin(), items_.end()), items_.end());
}

Itemset::Itemset(std::initializer_list<ItemId> items)
    : Itemset(std::vector<ItemId>(items)) {}

bool Itemset::Contains(ItemId item) const {
  return std::binary_search(items_.begin(), items_.end(), item);
}

bool Itemset::ContainsAll(const Itemset& other) const {
  return std::includes(items_.begin(), items_.end(), other.items_.begin(),
                       other.items_.end());
}

Itemset Itemset::Union(const Itemset& other) const {
  std::vector<ItemId> merged;
  merged.reserve(items_.size() + other.items_.size());
  std::set_union(items_.begin(), items_.end(), other.items_.begin(),
                 other.items_.end(), std::back_inserter(merged));
  Itemset result;
  result.items_ = std::move(merged);  // Already sorted and unique.
  return result;
}

Itemset Itemset::WithItem(ItemId item) const {
  if (Contains(item)) return *this;
  Itemset result = *this;
  result.items_.insert(
      std::lower_bound(result.items_.begin(), result.items_.end(), item),
      item);
  return result;
}

Itemset Itemset::WithoutItem(ItemId item) const {
  Itemset result = *this;
  auto it = std::lower_bound(result.items_.begin(), result.items_.end(), item);
  if (it != result.items_.end() && *it == item) result.items_.erase(it);
  return result;
}

std::vector<Itemset> Itemset::SubsetsMissingOne() const {
  std::vector<Itemset> subsets;
  subsets.reserve(items_.size());
  for (size_t i = 0; i < items_.size(); ++i) {
    Itemset subset;
    subset.items_.reserve(items_.size() - 1);
    for (size_t j = 0; j < items_.size(); ++j) {
      if (j != i) subset.items_.push_back(items_[j]);
    }
    subsets.push_back(std::move(subset));
  }
  return subsets;
}

uint64_t Itemset::Hash() const {
  uint64_t h = 1469598103934665603ULL;  // FNV offset basis.
  for (ItemId item : items_) {
    for (int b = 0; b < 4; ++b) {
      h ^= (item >> (8 * b)) & 0xffU;
      h *= 1099511628211ULL;  // FNV prime.
    }
  }
  return h;
}

std::string Itemset::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < items_.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(items_[i]);
  }
  out += "}";
  return out;
}

}  // namespace corrmine
