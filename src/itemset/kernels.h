#ifndef CORRMINE_ITEMSET_KERNELS_H_
#define CORRMINE_ITEMSET_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "itemset/itemset.h"

namespace corrmine {

class VerticalIndex;

/// SIMD-dispatched counting kernels (DESIGN.md §9).
///
/// Every chi-squared verdict bottoms out in AND+popcount chains over
/// vertical bitmaps, so the word loops behind Bitmap / CompressedBitmap /
/// the count providers are routed through one table of function pointers,
/// selected once per process: the best ISA the CPU supports (AVX-512 with
/// VPOPCNTDQ > AVX2 > NEON > portable std::popcount), overridable with the
/// CORRMINE_KERNEL environment variable or the CLI --kernel flag.
///
/// Contract: every kernel computes the exact same integers — a kernel
/// changes cost, never answers — so the deterministic stats section and all
/// mined output are byte-identical across kernels (enforced by
/// kernel_differential_test and the verify.sh scalar-vs-dispatch stage).
/// All word buffers are plain std::vector<uint64_t> storage; kernels use
/// unaligned loads and impose no alignment or padding requirements. Operand
/// arrays may alias only where a scalar in-place loop would be well defined
/// (and_inplace allows dst == src; and_count_into allows dst == a or b).

enum class KernelIsa : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2, kNeon = 3 };

/// One ISA's implementations. `name` has static storage duration.
struct CountingKernels {
  KernelIsa isa;
  const char* name;

  /// Popcount of words[0..n).
  uint64_t (*popcount)(const uint64_t* words, size_t n);
  /// Popcount of (a AND b) over n words, nothing materialized.
  uint64_t (*and_count)(const uint64_t* a, const uint64_t* b, size_t n);
  /// Popcount of (ops[0] AND ... AND ops[k-1]) over n words; requires
  /// k >= 1. Implementations may skip work once a chunk's accumulator is
  /// all-zero (callers order operands sparsest-first to exploit this).
  uint64_t (*multi_and_count)(const uint64_t* const* ops, size_t k,
                              size_t n);
  /// dst &= src over n words.
  void (*and_inplace)(uint64_t* dst, const uint64_t* src, size_t n);
  /// dst = a AND b over n words; returns popcount(dst) fused in one pass.
  uint64_t (*and_count_into)(uint64_t* dst, const uint64_t* a,
                             const uint64_t* b, size_t n);
  /// dst = ops[0] AND ... AND ops[k-1] over n words; requires k >= 2 and
  /// dst distinct from every operand.
  void (*and_block)(uint64_t* dst, const uint64_t* const* ops, size_t k,
                    size_t n);
  /// |a ∩ b| for two sorted uint16 offset arrays (sparse column
  /// containers): galloping merge — binary-search jumps when one side is
  /// much longer, linear merge otherwise. Either array may be empty.
  uint64_t (*array_intersect_count)(const uint16_t* a, size_t na,
                                    const uint16_t* b, size_t nb);
  /// Members of sorted offset array `a` whose bit is set in the 1024-word
  /// dense container `words` (one 2^16-row block).
  uint64_t (*array_dense_count)(const uint16_t* a, size_t na,
                                const uint64_t* words);
};

/// Per-ISA factories. Each lives in its own translation unit compiled with
/// exactly that ISA's flags (CMake set_source_files_properties — there is
/// no global -march); when the toolchain or target can't build the ISA the
/// factory returns nullptr. A non-null result only proves the code was
/// compiled; whether this CPU can run it is the dispatcher's check.
const CountingKernels* ScalarKernels();
const CountingKernels* Avx2Kernels();
const CountingKernels* Avx512Kernels();
const CountingKernels* NeonKernels();

/// The process-wide active kernel table. First use resolves
/// CORRMINE_KERNEL (unknown or unsupported values warn on stderr and fall
/// back to auto dispatch); afterwards this is one atomic load, cheap
/// enough for every Bitmap call site.
const CountingKernels& ActiveKernels();

/// Name of the active kernel ("scalar", "avx2", "avx512", "neon").
const char* ActiveKernelName();

/// What was asked for: "auto" unless a specific kernel was forced via
/// SetActiveKernel / CORRMINE_KERNEL. Reported in the stats JSON's
/// non-deterministic "kernel" section.
std::string RequestedKernelName();

/// Forces a kernel by name; "" or "auto" restores CPU dispatch. Errors on
/// names that are unknown, not compiled in, or unsupported by this CPU
/// (listing what is available). Not safe to call concurrently with
/// counting — set it up front (the CLI does so before opening a session).
Status SetActiveKernel(std::string_view name);

/// Kernels this process can actually run (compiled in and CPU-supported),
/// scalar first then ascending ISA capability. Never empty.
std::vector<const CountingKernels*> AvailableKernels();

/// Comma-joined names of AvailableKernels(), for errors and --help.
std::string AvailableKernelNames();

/// Words per tile of the prefix-blocked executor: 1024 words = 8 KiB, so a
/// materialized prefix block plus the extension column stripe it is ANDed
/// against stay L1-resident while the group streams each word range once.
inline constexpr size_t kKernelTileWords = 1024;

/// The prefix-blocked execution plan for one level batch. The level-wise
/// miner's deduplicated queries arrive as runs sharing a (k-1)-prefix
/// (sibling candidates differ in their last item only), so instead of
/// re-walking full bitmaps per query the executor groups queries by that
/// prefix, materializes the prefix intersection one tile at a time, and
/// streams every extension item's column against the hot tile.
struct BlockedCountPlan {
  struct Group {
    /// Shared prefix — the AND operands (size >= 1). A size-1 prefix
    /// aliases the item column directly; nothing is copied.
    Itemset prefix;
    /// Query slots answered by popcount(prefix) itself (duplicate queries
    /// each keep their own slot; one popcount serves them all).
    std::vector<uint32_t> self_queries;
    /// Last items of the size-(|prefix|+1) queries in this group, and the
    /// answer slot of each.
    std::vector<ItemId> ext_items;
    std::vector<uint32_t> ext_queries;
  };

  std::vector<Group> groups;
  size_t num_queries = 0;

  /// Groups `queries` by their (size-1)-prefix in first-touch order (so the
  /// plan — and everything downstream — is deterministic for a given query
  /// stream). Queries must be non-empty itemsets; duplicates are allowed
  /// and each slot still gets its answer.
  static BlockedCountPlan Build(std::span<const Itemset> queries);
};

/// Work accounting for one ExecuteBlockedGroups call, in *logical* 64-bit
/// words — identical for every kernel ISA, so the "kernel." counters these
/// feed diff clean across scalar vs dispatched runs.
struct BlockedExecStats {
  uint64_t groups = 0;
  uint64_t queries = 0;
  /// Words AND+popcounted against extension columns.
  uint64_t and_words = 0;
  /// Words ANDed while materializing prefix tiles ((p-1) per word).
  uint64_t block_and_words = 0;
  /// Words popcounted for self (prefix == query) answers.
  uint64_t popcount_words = 0;
};

/// Reusable working memory for ExecuteBlockedGroups: the L1-resident tile a
/// group's extension columns stream against, plus the per-group column and
/// accumulator arrays. Callers running blocked execution as pool morsels
/// keep one of these per scheduler slot (ParallelForSlots) so buffers are
/// sized once and reused across every morsel that slot executes — no
/// thread_local growth on transient pool threads.
struct BlockedExecScratch {
  std::vector<uint64_t> tile;
  std::vector<const uint64_t*> ext_cols;
  std::vector<uint64_t> ext_acc;
};

/// Executes plan.groups[group_begin..group_end) against `index`, writing
/// each answered query's count into `counts` (indexed by query position;
/// counts.size() == plan.num_queries). Tiles through kKernelTileWords-word
/// blocks using `scratch` (pass null to fall back to a thread-local
/// arena). Results are exact integers — identical for any kernel, tiling,
/// or group partition — so callers may parallelize over disjoint group
/// ranges freely. `stats` (optional) accumulates work done.
void ExecuteBlockedGroups(const BlockedCountPlan& plan, size_t group_begin,
                          size_t group_end, const VerticalIndex& index,
                          std::span<uint64_t> counts, BlockedExecStats* stats,
                          BlockedExecScratch* scratch = nullptr);

/// Adds one execution's accounting to the global "kernel.blocked_groups /
/// blocked_queries / and_words / block_and_words / popcount_words"
/// counters. Thread-safe; a no-op under CORRMINE_METRICS=OFF.
void BumpKernelCounters(const BlockedExecStats& stats);

/// Work accounting for hybrid-column intersections (CountingColumn), in
/// *logical* data units computed at the call sites from container shapes
/// only — never from what a kernel's inner loop happened to touch — so the
/// "kernel.column_*" counters these feed are identical for every ISA.
struct ColumnOpStats {
  /// Groups / queries answered by the column executor.
  uint64_t groups = 0;
  uint64_t queries = 0;
  /// 64-bit words ANDed in dense x dense container pairs.
  uint64_t dense_words = 0;
  /// Sorted-array elements fed to galloping array x array intersections.
  uint64_t array_elems = 0;
  /// Array elements probed against dense containers.
  uint64_t probe_elems = 0;
  /// Run-list entries walked (run x run / run x array / run x dense).
  uint64_t run_elems = 0;

  void Add(const ColumnOpStats& other) {
    groups += other.groups;
    queries += other.queries;
    dense_words += other.dense_words;
    array_elems += other.array_elems;
    probe_elems += other.probe_elems;
    run_elems += other.run_elems;
  }
};

/// Adds one execution's accounting to the global "kernel.column_groups /
/// column_queries / column_dense_words / column_array_elems /
/// column_probe_elems / column_run_elems" counters. Thread-safe; a no-op
/// under CORRMINE_METRICS=OFF.
void BumpColumnKernelCounters(const ColumnOpStats& stats);

}  // namespace corrmine

#endif  // CORRMINE_ITEMSET_KERNELS_H_
