// Portable counting kernels: std::popcount word loops, no ISA flags. This
// is both the universal fallback and the baseline the dispatched kernels
// are benchmarked (and differential-tested) against, so it deliberately
// stays the straightforward one-word-at-a-time formulation.

#include <bit>
#include <cstddef>
#include <cstdint>

#include "itemset/kernels.h"

namespace corrmine {

namespace {

#include "itemset/kernels_sparse_inl.h"

uint64_t ScalarPopcount(const uint64_t* words, size_t n) {
  uint64_t total = 0;
  for (size_t i = 0; i < n; ++i) total += std::popcount(words[i]);
  return total;
}

uint64_t ScalarAndCount(const uint64_t* a, const uint64_t* b, size_t n) {
  uint64_t total = 0;
  for (size_t i = 0; i < n; ++i) total += std::popcount(a[i] & b[i]);
  return total;
}

uint64_t ScalarMultiAndCount(const uint64_t* const* ops, size_t k,
                             size_t n) {
  uint64_t total = 0;
  for (size_t w = 0; w < n; ++w) {
    uint64_t acc = ops[0][w];
    for (size_t i = 1; i < k && acc != 0; ++i) acc &= ops[i][w];
    total += std::popcount(acc);
  }
  return total;
}

void ScalarAndInplace(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] &= src[i];
}

uint64_t ScalarAndCountInto(uint64_t* dst, const uint64_t* a,
                            const uint64_t* b, size_t n) {
  uint64_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t w = a[i] & b[i];
    dst[i] = w;
    total += std::popcount(w);
  }
  return total;
}

void ScalarAndBlock(uint64_t* dst, const uint64_t* const* ops, size_t k,
                    size_t n) {
  for (size_t w = 0; w < n; ++w) {
    uint64_t acc = ops[0][w] & ops[1][w];
    for (size_t i = 2; i < k; ++i) acc &= ops[i][w];
    dst[w] = acc;
  }
}

constexpr CountingKernels kScalarKernels = {
    KernelIsa::kScalar, "scalar",        ScalarPopcount,
    ScalarAndCount,     ScalarMultiAndCount, ScalarAndInplace,
    ScalarAndCountInto, ScalarAndBlock,
    SparseArrayIntersectCount, SparseArrayDenseCount,
};

}  // namespace

const CountingKernels* ScalarKernels() { return &kScalarKernels; }

}  // namespace corrmine
