#include "itemset/transaction_database.h"

#include <algorithm>

#include "common/logging.h"
#include "itemset/bitmap.h"

namespace corrmine {

ItemId ItemDictionary::GetOrAdd(const std::string& name) {
  auto [it, inserted] =
      ids_.emplace(name, static_cast<ItemId>(names_.size()));
  if (inserted) names_.push_back(name);
  return it->second;
}

StatusOr<ItemId> ItemDictionary::Get(const std::string& name) const {
  auto it = ids_.find(name);
  if (it == ids_.end()) {
    return Status::NotFound("unknown item name: " + name);
  }
  return it->second;
}

StatusOr<std::string> ItemDictionary::Name(ItemId id) const {
  if (id >= names_.size()) {
    return Status::OutOfRange("item id out of range: " + std::to_string(id));
  }
  return names_[id];
}

TransactionDatabase::TransactionDatabase(ItemId num_items)
    : num_items_(num_items), item_counts_(num_items, 0) {}

Status TransactionDatabase::AddBasket(std::vector<ItemId> items) {
  std::sort(items.begin(), items.end());
  items.erase(std::unique(items.begin(), items.end()), items.end());
  if (!items.empty() && items.back() >= num_items_) {
    return Status::OutOfRange("basket item id " +
                              std::to_string(items.back()) +
                              " >= num_items " + std::to_string(num_items_));
  }
  for (ItemId item : items) ++item_counts_[item];
  total_occurrences_ += items.size();
  baskets_.push_back(std::move(items));
  return Status::OK();
}

Status TransactionDatabase::GrowItemSpace(ItemId num_items) {
  if (num_items < num_items_) {
    return Status::InvalidArgument(
        "item space cannot shrink: " + std::to_string(num_items) + " < " +
        std::to_string(num_items_));
  }
  item_counts_.resize(num_items, 0);
  num_items_ = num_items;
  return Status::OK();
}

StatusOr<double> TransactionDatabase::ItemProbability(ItemId item) const {
  if (item >= num_items_) {
    return Status::OutOfRange("item id out of range");
  }
  if (baskets_.empty()) {
    return Status::FailedPrecondition("empty database has no marginals");
  }
  return static_cast<double>(item_counts_[item]) /
         static_cast<double>(baskets_.size());
}

bool TransactionDatabase::BasketContainsAll(size_t row,
                                            const Itemset& s) const {
  const std::vector<ItemId>& basket = baskets_[row];
  return std::includes(basket.begin(), basket.end(), s.begin(), s.end());
}

VerticalIndex::VerticalIndex(const TransactionDatabase& db)
    : num_baskets_(db.num_baskets()) {
  bitmaps_.reserve(db.num_items());
  for (ItemId i = 0; i < db.num_items(); ++i) {
    bitmaps_.emplace_back(num_baskets_);
  }
  for (size_t row = 0; row < db.num_baskets(); ++row) {
    for (ItemId item : db.basket(row)) {
      bitmaps_[item].Set(row);
    }
  }
}

void VerticalIndex::AppendFrom(const TransactionDatabase& db,
                               size_t from_row) {
  CORRMINE_CHECK(from_row == num_baskets_)
      << "AppendFrom row gap: index has " << num_baskets_
      << " baskets, caller resumes at " << from_row;
  CORRMINE_CHECK(db.num_baskets() >= from_row)
      << "database shrank under the index";
  num_baskets_ = db.num_baskets();
  for (Bitmap& bitmap : bitmaps_) bitmap.Resize(num_baskets_);
  for (ItemId i = static_cast<ItemId>(bitmaps_.size()); i < db.num_items();
       ++i) {
    bitmaps_.emplace_back(num_baskets_);
  }
  for (size_t row = from_row; row < num_baskets_; ++row) {
    for (ItemId item : db.basket(row)) {
      bitmaps_[item].Set(row);
    }
  }
}

const Bitmap& VerticalIndex::item_bitmap(ItemId item) const {
  CORRMINE_CHECK(item < bitmaps_.size()) << "item id out of range";
  return bitmaps_[item];
}

uint64_t VerticalIndex::CountAllPresent(const Itemset& s) const {
  CORRMINE_CHECK(!s.empty()) << "CountAllPresent requires a non-empty set";
  if (s.size() == 1) return bitmaps_[s.item(0)].Count();
  if (s.size() == 2) {
    return bitmaps_[s.item(0)].AndCount(bitmaps_[s.item(1)]);
  }
  std::vector<const Bitmap*> maps;
  maps.reserve(s.size());
  for (ItemId item : s) maps.push_back(&bitmaps_[item]);
  return MultiAndCount(maps);
}

}  // namespace corrmine
