// Sparse-container kernels shared by every ISA translation unit.
//
// Included *inside* each kernels_<isa>.cc anonymous namespace, so each copy
// is compiled under that TU's ISA flags and the compiler is free to
// auto-vectorize the probe loop with whatever the TU targets. The logic is
// identical in every TU — like all counting kernels these change cost,
// never answers.
//
// Not a public header: no include guard on purpose; including it twice in
// one TU is a bug.

/// |a ∩ b| of two sorted uint16 arrays. Linear merge while the sides are
/// comparable in length; gallops (doubling probe + binary search) once the
/// longer side is >= 16x the shorter remainder, which is the regime sparse
/// basket columns actually hit (a rare item against a common one).
inline uint64_t SparseArrayIntersectCount(const uint16_t* a, size_t na,
                                          const uint16_t* b, size_t nb) {
  uint64_t count = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < na && j < nb) {
    const size_t rem_a = na - i;
    const size_t rem_b = nb - j;
    if (rem_b >= 16 * rem_a || rem_a >= 16 * rem_b) {
      // Gallop the shorter remainder through the longer one.
      const uint16_t* hay = (rem_b > rem_a) ? b : a;
      size_t hay_pos = (rem_b > rem_a) ? j : i;
      const size_t hay_end = (rem_b > rem_a) ? nb : na;
      const uint16_t needle = (rem_b > rem_a) ? a[i] : b[j];
      size_t step = 1;
      size_t lo = hay_pos;
      while (lo + step < hay_end && hay[lo + step] < needle) {
        lo += step;
        step <<= 1;
      }
      size_t hi = (lo + step < hay_end) ? lo + step : hay_end;
      while (lo < hi) {  // first element >= needle in [lo, hi)
        const size_t mid = lo + (hi - lo) / 2;
        if (hay[mid] < needle) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      if (rem_b > rem_a) {
        j = lo;
        if (j < nb && b[j] == needle) {
          ++count;
          ++i;
          ++j;
        } else if (j < nb) {
          ++i;
        }
      } else {
        i = lo;
        if (i < na && a[i] == needle) {
          ++count;
          ++i;
          ++j;
        } else if (i < na) {
          ++j;
        }
      }
      continue;
    }
    const uint16_t va = a[i];
    const uint16_t vb = b[j];
    count += (va == vb);
    i += (va <= vb);
    j += (vb <= va);
  }
  return count;
}

/// Members of sorted array `a` set in the 1024-word dense block `words`.
inline uint64_t SparseArrayDenseCount(const uint16_t* a, size_t na,
                                      const uint64_t* words) {
  uint64_t count = 0;
  for (size_t i = 0; i < na; ++i) {
    const uint16_t off = a[i];
    count += (words[off >> 6] >> (off & 63)) & 1u;
  }
  return count;
}
