#ifndef CORRMINE_ITEMSET_TRANSACTION_DATABASE_H_
#define CORRMINE_ITEMSET_TRANSACTION_DATABASE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status_or.h"
#include "itemset/bitmap.h"
#include "itemset/itemset.h"

namespace corrmine {

/// Maps between external item names (words, attribute labels) and dense
/// ItemIds. Generators that already work in id space can skip it.
class ItemDictionary {
 public:
  ItemDictionary() = default;

  /// Returns the id of `name`, interning it on first sight.
  ItemId GetOrAdd(const std::string& name);

  /// Id lookup without interning.
  StatusOr<ItemId> Get(const std::string& name) const;

  /// Name of an id; errors if out of range.
  StatusOr<std::string> Name(ItemId id) const;

  size_t size() const { return names_.size(); }
  const std::vector<std::string>& names() const { return names_; }

 private:
  std::unordered_map<std::string, ItemId> ids_;
  std::vector<std::string> names_;
};

/// The paper's basket data B = {b_1 .. b_n}: a list of baskets, each a set of
/// items from I. Rows are stored as sorted id vectors; per-item occurrence
/// counts O(i) are maintained incrementally so that expected values under
/// independence are O(1) to form.
class TransactionDatabase {
 public:
  /// `num_items` fixes the item space I = {0 .. num_items-1}. Baskets may
  /// only contain ids below it.
  explicit TransactionDatabase(ItemId num_items);

  /// Appends a basket; items are sorted/deduplicated. Errors if any item id
  /// is out of range.
  Status AddBasket(std::vector<ItemId> items);

  /// Widens the item space to `num_items` (delta chunks may introduce ids
  /// the base dataset never saw). Existing baskets and counts are
  /// unchanged; errors if the space would shrink.
  Status GrowItemSpace(ItemId num_items);

  size_t num_baskets() const { return baskets_.size(); }
  ItemId num_items() const { return num_items_; }

  const std::vector<ItemId>& basket(size_t i) const { return baskets_[i]; }

  /// Occurrence count O(i): number of baskets containing item i.
  uint64_t ItemCount(ItemId item) const { return item_counts_[item]; }

  /// Empirical marginal p(i) = O(i)/n. Errors if the database is empty.
  StatusOr<double> ItemProbability(ItemId item) const;

  /// True if `basket(row)` contains all of `s` (merge test on sorted rows).
  bool BasketContainsAll(size_t row, const Itemset& s) const;

  /// Sum of basket sizes (number of (basket, item) pairs).
  uint64_t TotalItemOccurrences() const { return total_occurrences_; }

  /// Optional item dictionary; empty names() when generators used raw ids.
  ItemDictionary& dictionary() { return dictionary_; }
  const ItemDictionary& dictionary() const { return dictionary_; }

 private:
  ItemId num_items_;
  std::vector<std::vector<ItemId>> baskets_;
  std::vector<uint64_t> item_counts_;
  uint64_t total_occurrences_ = 0;
  ItemDictionary dictionary_;
};

/// Per-item vertical index: one Bitmap per item over the basket axis.
/// Construction is one pass over the database; afterwards any
/// all-items-present count is an AND/popcount. Appended database rows can
/// be folded in with AppendFrom — the index never needs a full rebuild on
/// delta ingestion.
class VerticalIndex {
 public:
  /// Builds bitmaps for all items of `db`. The database must not change
  /// afterwards (the index does not track it) except by appending rows,
  /// which AppendFrom catches the index up on.
  explicit VerticalIndex(const TransactionDatabase& db);

  /// Catches the index up with rows appended to `db` since it was built
  /// (or last caught up): `from_row` must equal num_baskets(). Existing
  /// bitmaps grow in place; items beyond the old space gain fresh bitmaps,
  /// so the result is byte-identical to rebuilding from scratch.
  void AppendFrom(const TransactionDatabase& db, size_t from_row);

  size_t num_baskets() const { return num_baskets_; }
  ItemId num_items() const { return static_cast<ItemId>(bitmaps_.size()); }
  const Bitmap& item_bitmap(ItemId item) const;

  /// Words per item bitmap — the unit the mining cost model counts AND
  /// operations in.
  size_t words_per_bitmap() const {
    return bitmaps_.empty() ? 0 : bitmaps_[0].words().size();
  }

  /// Number of baskets containing every item of `s`; s must be non-empty.
  uint64_t CountAllPresent(const Itemset& s) const;

 private:
  size_t num_baskets_;
  std::vector<Bitmap> bitmaps_;
};

}  // namespace corrmine

#endif  // CORRMINE_ITEMSET_TRANSACTION_DATABASE_H_
