#include "itemset/count_provider.h"

#include <chrono>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "itemset/kernels.h"

namespace corrmine {

namespace {

/// Query-axis chunk size for parallel batches: each query is a multi-word
/// AND/popcount chain, so modest chunks already amortize scheduling.
constexpr size_t kBatchQueryGrain = 16;

/// Basket-axis chunk size for the scan provider's shared pass.
constexpr size_t kScanBasketGrain = 1024;

/// Prefix-group chunk size for the blocked bitmap batch: each group is a
/// full streaming pass over its operand bitmaps, so small chunks keep the
/// pool fed without drowning it in tiny tasks (the singleton batch at the
/// start of a run produces one near-trivial group per item).
constexpr size_t kBlockedGroupGrain = 8;

}  // namespace

CountProvider::CountProvider()
    : scalar_calls_(
          MetricsRegistry::Global().GetCounter("count_provider.scalar_calls")),
      batch_calls_(
          MetricsRegistry::Global().GetCounter("count_provider.batch_calls")),
      batch_queries_(MetricsRegistry::Global().GetCounter(
          "count_provider.batch_queries")) {}

void CountProvider::BumpScalar() const { scalar_calls_->Add(); }

void CountProvider::BumpBatch(size_t num_queries) const {
  batch_calls_->Add();
  batch_queries_->Add(num_queries);
}

void CountProvider::CountAllPresentBatch(std::span<const Itemset> queries,
                                         std::span<uint64_t> counts,
                                         ThreadPool* pool) const {
  CORRMINE_CHECK(queries.size() == counts.size())
      << "batch spans disagree: " << queries.size() << " queries, "
      << counts.size() << " count slots";
  BumpBatch(queries.size());
  if (queries.empty()) return;
  CountAllPresentBatchImpl(queries, counts, pool);
}

void CountProvider::CountAllPresentBatchUncounted(
    std::span<const Itemset> queries, std::span<uint64_t> counts,
    ThreadPool* pool) const {
  CORRMINE_CHECK(queries.size() == counts.size())
      << "batch spans disagree: " << queries.size() << " queries, "
      << counts.size() << " count slots";
  if (queries.empty()) return;
  CountAllPresentBatchImpl(queries, counts, pool);
}

void CountProvider::CountAllPresentBatchImpl(std::span<const Itemset> queries,
                                             std::span<uint64_t> counts,
                                             ThreadPool* pool) const {
  (void)pool;  // The generic fallback has no parallel structure to exploit.
  for (size_t i = 0; i < queries.size(); ++i) {
    counts[i] = CountAllPresentImpl(queries[i]);
  }
}

uint64_t ScanCountProvider::CountAllPresentImpl(const Itemset& s) const {
  CORRMINE_CHECK(!s.empty()) << "CountAllPresent requires a non-empty set";
  uint64_t count = 0;
  for (size_t row = 0; row < db_.num_baskets(); ++row) {
    if (db_.BasketContainsAll(row, s)) ++count;
  }
  return count;
}

void ScanCountProvider::CountAllPresentBatchImpl(
    std::span<const Itemset> queries, std::span<uint64_t> counts,
    ThreadPool* pool) const {
  // Basket-major: one pass over the row store answers every query, keeping
  // each basket hot in cache across the whole query list instead of
  // re-reading the database per query. Chunks of the basket axis accumulate
  // into private partial sums, merged in chunk order (exact integer sums,
  // so the merge order only matters for determinism of the code path, not
  // the values).
  const size_t num_baskets = db_.num_baskets();
  const size_t num_chunks =
      num_baskets == 0 ? 0 : (num_baskets + kScanBasketGrain - 1) /
                                 kScanBasketGrain;
  for (size_t q = 0; q < queries.size(); ++q) counts[q] = 0;
  // One partial-count arena per scheduler slot (ParallelForSlots): each
  // basket-chunk morsel accumulates into its slot's arena with no locking,
  // and the arenas are folded into `counts` in slot order after the region.
  // Integer sums commute, so the result is identical for any schedule.
  const size_t num_slots = ParallelForSlotBound(pool, num_chunks, 1);
  std::vector<std::vector<uint64_t>> partials(num_slots);
  for (auto& p : partials) p.assign(queries.size(), 0);
  Status status = ParallelForSlots(
      pool, num_chunks, 1,
      [&](size_t slot, size_t begin, size_t end) -> Status {
        std::vector<uint64_t>& scratch = partials[slot];
        for (size_t chunk = begin; chunk < end; ++chunk) {
          const size_t row_begin = chunk * kScanBasketGrain;
          const size_t row_end =
              std::min(row_begin + kScanBasketGrain, num_baskets);
          for (size_t row = row_begin; row < row_end; ++row) {
            for (size_t q = 0; q < queries.size(); ++q) {
              if (db_.BasketContainsAll(row, queries[q])) ++scratch[q];
            }
          }
        }
        return Status::OK();
      });
  CORRMINE_CHECK(status.ok()) << status.ToString();
  for (const std::vector<uint64_t>& scratch : partials) {
    for (size_t q = 0; q < queries.size(); ++q) counts[q] += scratch[q];
  }
}

void BitmapCountProvider::CountAllPresentBatchImpl(
    std::span<const Itemset> queries, std::span<uint64_t> counts,
    ThreadPool* pool) const {
  // Prefix-blocked execution (DESIGN.md §9): group the level's queries by
  // shared (k-1)-prefix, materialize each prefix intersection tile by tile,
  // and stream every extension column against the hot tile — instead of
  // re-walking full bitmaps once per query. Parallel over groups; every
  // query writes its own slot, so any schedule is byte-identical.
  BlockedCountPlan plan = BlockedCountPlan::Build(queries);
  // Prefix groups are the morsel unit; each scheduler slot owns one
  // executor arena (tile + column/accumulator buffers), sized once and
  // reused across every morsel that slot runs.
  const size_t num_slots =
      ParallelForSlotBound(pool, plan.groups.size(), kBlockedGroupGrain);
  std::vector<BlockedExecScratch> scratch(num_slots);
  Status status = ParallelForSlots(
      pool, plan.groups.size(), kBlockedGroupGrain,
      [&](size_t slot, size_t begin, size_t end) -> Status {
        BlockedExecStats stats;
        ExecuteBlockedGroups(plan, begin, end, index_, counts, &stats,
                             &scratch[slot]);
        BumpKernelCounters(stats);
        return Status::OK();
      });
  CORRMINE_CHECK(status.ok()) << status.ToString();
}

CachedCountProvider::CachedCountProvider(const VerticalIndex& index,
                                         size_t max_entries)
    : index_(index),
      max_entries_(max_entries),
      hit_ns_(MetricsRegistry::Global().GetHistogram("cache.hit_ns")),
      miss_ns_(MetricsRegistry::Global().GetHistogram("cache.miss_ns")) {}

uint64_t CachedCountProvider::CountAllPresentImpl(const Itemset& s) const {
  CORRMINE_CHECK(!s.empty()) << "CountAllPresent requires a non-empty set";
  queries_.fetch_add(1, std::memory_order_relaxed);
  const size_t k = s.size();
  const uint64_t words = index_.words_per_bitmap();
  if (k >= 2) {
    uncached_and_word_ops_.fetch_add((k - 1) * words,
                                     std::memory_order_relaxed);
  }
  if (k == 1) return index_.item_bitmap(s.item(0)).Count();
  if (k == 2) {
    and_word_ops_.fetch_add(words, std::memory_order_relaxed);
    return index_.item_bitmap(s.item(0))
        .AndCount(index_.item_bitmap(s.item(1)));
  }
  const ItemId last = s.item(k - 1);
  Bitmap scratch;
  if constexpr (kMetricsEnabled) {
    // Latency split by cache outcome: a hit is one AND/popcount against a
    // ready bitmap (or a short wait on an in-flight build); a miss pays
    // the recursive materialization. The histograms never feed the
    // deterministic stats, so the clock reads cannot perturb results.
    const auto t0 = std::chrono::steady_clock::now();
    bool hit = false;
    const Bitmap* prefix =
        PrefixBitmapInto(s.WithoutItem(last), &scratch, &hit);
    and_word_ops_.fetch_add(words, std::memory_order_relaxed);
    const uint64_t count = prefix->AndCount(index_.item_bitmap(last));
    const uint64_t elapsed = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    (hit ? hit_ns_ : miss_ns_)->Observe(elapsed);
    return count;
  } else {
    const Bitmap* prefix = PrefixBitmapInto(s.WithoutItem(last), &scratch);
    and_word_ops_.fetch_add(words, std::memory_order_relaxed);
    return prefix->AndCount(index_.item_bitmap(last));
  }
}

void CachedCountProvider::CountAllPresentBatchImpl(
    std::span<const Itemset> queries, std::span<uint64_t> counts,
    ThreadPool* pool) const {
  // Parallel over the query axis; the build-once cache entry protocol keeps
  // the cost counters identical for any schedule (each distinct prefix is
  // still materialized exactly once).
  Status status = ParallelFor(
      pool, queries.size(), kBatchQueryGrain,
      [&](size_t begin, size_t end) -> Status {
        for (size_t i = begin; i < end; ++i) {
          counts[i] = CountAllPresentImpl(queries[i]);
        }
        return Status::OK();
      });
  CORRMINE_CHECK(status.ok()) << status.ToString();
}

const Bitmap* CachedCountProvider::PrefixBitmapInto(const Itemset& prefix,
                                                    Bitmap* scratch,
                                                    bool* top_level_hit) const {
  if (prefix.size() == 1) {
    if (top_level_hit != nullptr) *top_level_hit = true;
    return &index_.item_bitmap(prefix.item(0));
  }

  // Claim-or-find under the map lock. Exactly one arrival per prefix
  // becomes the builder; everyone else gets the (possibly in-flight) entry.
  std::shared_ptr<Entry> entry;
  bool builder = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(prefix);
    if (it != cache_.end() && it->second->epoch == epoch_) {
      entry = it->second;
    } else if (it != cache_.end()) {
      // Stale epoch: the index gained rows since this entry was built.
      // Replace it with a fresh claimed entry — build-once still holds per
      // epoch, because AdvanceEpoch may not race with queries, so no other
      // thread can hold the old entry here.
      entry = std::make_shared<Entry>();
      entry->epoch = epoch_;
      it->second = entry;
      builder = true;
    } else if (cache_.size() < max_entries_) {
      entry = std::make_shared<Entry>();
      entry->epoch = epoch_;
      cache_.emplace(prefix, entry);
      builder = true;
    }
  }
  if (top_level_hit != nullptr) *top_level_hit = entry && !builder;

  if (entry && !builder) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    std::unique_lock<std::mutex> lock(entry->mu);
    entry->ready_cv.wait(lock, [&entry] { return entry->ready; });
    // Entry bitmaps are never moved or erased while queries run, so the
    // pointer stays valid after the lock is released.
    return &entry->bits;
  }

  if (builder) {
    misses_.fetch_add(1, std::memory_order_relaxed);
  } else {
    // Cache full: compute transiently. Counts stay exact; only these
    // rebuilds make the cost counters schedule-dependent.
    overflow_builds_.fetch_add(1, std::memory_order_relaxed);
  }
  const ItemId last = prefix.item(prefix.size() - 1);
  Bitmap base_scratch;
  const Bitmap* base =
      PrefixBitmapInto(prefix.WithoutItem(last), &base_scratch);
  Bitmap built(*base);
  built.AndWith(index_.item_bitmap(last));
  and_word_ops_.fetch_add(index_.words_per_bitmap(),
                          std::memory_order_relaxed);

  if (!builder) {
    *scratch = std::move(built);
    return scratch;
  }
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    entry->bits = std::move(built);
    entry->ready = true;
  }
  entry->ready_cv.notify_all();
  return &entry->bits;
}

CachedCountProvider::CacheStats CachedCountProvider::stats() const {
  CacheStats out;
  out.queries = queries_.load(std::memory_order_relaxed);
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.overflow_builds = overflow_builds_.load(std::memory_order_relaxed);
  out.and_word_ops = and_word_ops_.load(std::memory_order_relaxed);
  out.uncached_and_word_ops =
      uncached_and_word_ops_.load(std::memory_order_relaxed);
  return out;
}

void CachedCountProvider::PublishMetrics(MetricsRegistry* registry) const {
  CacheStats snapshot = stats();
  registry->GetGauge("cache.queries")
      ->Set(static_cast<int64_t>(snapshot.queries));
  registry->GetGauge("cache.hits")->Set(static_cast<int64_t>(snapshot.hits));
  registry->GetGauge("cache.misses")
      ->Set(static_cast<int64_t>(snapshot.misses));
  registry->GetGauge("cache.overflow_builds")
      ->Set(static_cast<int64_t>(snapshot.overflow_builds));
  registry->GetGauge("cache.and_word_ops")
      ->Set(static_cast<int64_t>(snapshot.and_word_ops));
  registry->GetGauge("cache.uncached_and_word_ops")
      ->Set(static_cast<int64_t>(snapshot.uncached_and_word_ops));
  registry->GetGauge("cache.entries")
      ->Set(static_cast<int64_t>(cache_size()));
  registry->GetGauge("mem.cache_bytes")
      ->Set(static_cast<int64_t>(MemoryBytes()));
}

uint64_t CachedCountProvider::MemoryBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<uint64_t>(cache_.size()) * index_.words_per_bitmap() *
         sizeof(uint64_t);
}

void CachedCountProvider::ClearCache() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
}

void CachedCountProvider::AdvanceEpoch() {
  std::lock_guard<std::mutex> lock(mu_);
  ++epoch_;
}

uint64_t CachedCountProvider::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

size_t CachedCountProvider::cache_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

}  // namespace corrmine
