#include "itemset/count_provider.h"

#include <memory>
#include <mutex>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"

namespace corrmine {

uint64_t ScanCountProvider::CountAllPresent(const Itemset& s) const {
  CORRMINE_CHECK(!s.empty()) << "CountAllPresent requires a non-empty set";
  uint64_t count = 0;
  for (size_t row = 0; row < db_.num_baskets(); ++row) {
    if (db_.BasketContainsAll(row, s)) ++count;
  }
  return count;
}

uint64_t CachedCountProvider::CountAllPresent(const Itemset& s) const {
  CORRMINE_CHECK(!s.empty()) << "CountAllPresent requires a non-empty set";
  queries_.fetch_add(1, std::memory_order_relaxed);
  const size_t k = s.size();
  const uint64_t words = index_.words_per_bitmap();
  if (k >= 2) {
    uncached_and_word_ops_.fetch_add((k - 1) * words,
                                     std::memory_order_relaxed);
  }
  if (k == 1) return index_.item_bitmap(s.item(0)).Count();
  if (k == 2) {
    and_word_ops_.fetch_add(words, std::memory_order_relaxed);
    return index_.item_bitmap(s.item(0))
        .AndCount(index_.item_bitmap(s.item(1)));
  }
  const ItemId last = s.item(k - 1);
  Bitmap scratch;
  const Bitmap* prefix = PrefixBitmapInto(s.WithoutItem(last), &scratch);
  and_word_ops_.fetch_add(words, std::memory_order_relaxed);
  return prefix->AndCount(index_.item_bitmap(last));
}

const Bitmap* CachedCountProvider::PrefixBitmapInto(const Itemset& prefix,
                                                    Bitmap* scratch) const {
  if (prefix.size() == 1) return &index_.item_bitmap(prefix.item(0));

  // Claim-or-find under the map lock. Exactly one arrival per prefix
  // becomes the builder; everyone else gets the (possibly in-flight) entry.
  std::shared_ptr<Entry> entry;
  bool builder = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(prefix);
    if (it != cache_.end()) {
      entry = it->second;
    } else if (cache_.size() < max_entries_) {
      entry = std::make_shared<Entry>();
      cache_.emplace(prefix, entry);
      builder = true;
    }
  }

  if (entry && !builder) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    std::unique_lock<std::mutex> lock(entry->mu);
    entry->ready_cv.wait(lock, [&entry] { return entry->ready; });
    // Entry bitmaps are never moved or erased while queries run, so the
    // pointer stays valid after the lock is released.
    return &entry->bits;
  }

  if (builder) {
    misses_.fetch_add(1, std::memory_order_relaxed);
  } else {
    // Cache full: compute transiently. Counts stay exact; only these
    // rebuilds make the cost counters schedule-dependent.
    overflow_builds_.fetch_add(1, std::memory_order_relaxed);
  }
  const ItemId last = prefix.item(prefix.size() - 1);
  Bitmap base_scratch;
  const Bitmap* base =
      PrefixBitmapInto(prefix.WithoutItem(last), &base_scratch);
  Bitmap built(*base);
  built.AndWith(index_.item_bitmap(last));
  and_word_ops_.fetch_add(index_.words_per_bitmap(),
                          std::memory_order_relaxed);

  if (!builder) {
    *scratch = std::move(built);
    return scratch;
  }
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    entry->bits = std::move(built);
    entry->ready = true;
  }
  entry->ready_cv.notify_all();
  return &entry->bits;
}

CachedCountProvider::CacheStats CachedCountProvider::stats() const {
  CacheStats out;
  out.queries = queries_.load(std::memory_order_relaxed);
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.overflow_builds = overflow_builds_.load(std::memory_order_relaxed);
  out.and_word_ops = and_word_ops_.load(std::memory_order_relaxed);
  out.uncached_and_word_ops =
      uncached_and_word_ops_.load(std::memory_order_relaxed);
  return out;
}

void CachedCountProvider::PublishMetrics(MetricsRegistry* registry) const {
  CacheStats snapshot = stats();
  registry->GetGauge("cache.queries")
      ->Set(static_cast<int64_t>(snapshot.queries));
  registry->GetGauge("cache.hits")->Set(static_cast<int64_t>(snapshot.hits));
  registry->GetGauge("cache.misses")
      ->Set(static_cast<int64_t>(snapshot.misses));
  registry->GetGauge("cache.overflow_builds")
      ->Set(static_cast<int64_t>(snapshot.overflow_builds));
  registry->GetGauge("cache.and_word_ops")
      ->Set(static_cast<int64_t>(snapshot.and_word_ops));
  registry->GetGauge("cache.uncached_and_word_ops")
      ->Set(static_cast<int64_t>(snapshot.uncached_and_word_ops));
  registry->GetGauge("cache.entries")
      ->Set(static_cast<int64_t>(cache_size()));
}

void CachedCountProvider::ClearCache() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
}

size_t CachedCountProvider::cache_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

}  // namespace corrmine
