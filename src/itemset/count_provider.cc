#include "itemset/count_provider.h"

#include "common/logging.h"

namespace corrmine {

uint64_t ScanCountProvider::CountAllPresent(const Itemset& s) const {
  CORRMINE_CHECK(!s.empty()) << "CountAllPresent requires a non-empty set";
  uint64_t count = 0;
  for (size_t row = 0; row < db_.num_baskets(); ++row) {
    if (db_.BasketContainsAll(row, s)) ++count;
  }
  return count;
}

}  // namespace corrmine
