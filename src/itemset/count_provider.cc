#include "itemset/count_provider.h"

#include <memory>
#include <mutex>
#include <utility>

#include "common/logging.h"

namespace corrmine {

uint64_t ScanCountProvider::CountAllPresent(const Itemset& s) const {
  CORRMINE_CHECK(!s.empty()) << "CountAllPresent requires a non-empty set";
  uint64_t count = 0;
  for (size_t row = 0; row < db_.num_baskets(); ++row) {
    if (db_.BasketContainsAll(row, s)) ++count;
  }
  return count;
}

uint64_t CachedCountProvider::CountAllPresent(const Itemset& s) const {
  CORRMINE_CHECK(!s.empty()) << "CountAllPresent requires a non-empty set";
  queries_.fetch_add(1, std::memory_order_relaxed);
  const size_t k = s.size();
  const uint64_t words = index_.words_per_bitmap();
  if (k >= 2) {
    uncached_and_word_ops_.fetch_add((k - 1) * words,
                                     std::memory_order_relaxed);
  }
  if (k == 1) return index_.item_bitmap(s.item(0)).Count();
  if (k == 2) {
    and_word_ops_.fetch_add(words, std::memory_order_relaxed);
    return index_.item_bitmap(s.item(0))
        .AndCount(index_.item_bitmap(s.item(1)));
  }
  const ItemId last = s.item(k - 1);
  Bitmap scratch;
  const Bitmap* prefix = PrefixBitmapInto(s.WithoutItem(last), &scratch);
  and_word_ops_.fetch_add(words, std::memory_order_relaxed);
  return prefix->AndCount(index_.item_bitmap(last));
}

const Bitmap* CachedCountProvider::PrefixBitmapInto(const Itemset& prefix,
                                                    Bitmap* scratch) const {
  if (prefix.size() == 1) return &index_.item_bitmap(prefix.item(0));
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = cache_.find(prefix);
    if (it != cache_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      // Pointers into the map stay valid across rehashes (values are
      // heap-allocated) and nothing is erased while queries run.
      return it->second.get();
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  const ItemId last = prefix.item(prefix.size() - 1);
  Bitmap base_scratch;
  const Bitmap* base =
      PrefixBitmapInto(prefix.WithoutItem(last), &base_scratch);
  Bitmap built(*base);
  built.AndWith(index_.item_bitmap(last));
  and_word_ops_.fetch_add(index_.words_per_bitmap(),
                          std::memory_order_relaxed);
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto it = cache_.find(prefix);
    if (it != cache_.end()) {
      return it->second.get();  // Another thread built it first.
    }
    if (cache_.size() < max_entries_) {
      auto [inserted, unused] =
          cache_.emplace(prefix, std::make_unique<Bitmap>(std::move(built)));
      return inserted->second.get();
    }
  }
  // Cache full: hand the intersection back transiently; counts stay exact.
  *scratch = std::move(built);
  return scratch;
}

CachedCountProvider::CacheStats CachedCountProvider::stats() const {
  CacheStats out;
  out.queries = queries_.load(std::memory_order_relaxed);
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.and_word_ops = and_word_ops_.load(std::memory_order_relaxed);
  out.uncached_and_word_ops =
      uncached_and_word_ops_.load(std::memory_order_relaxed);
  return out;
}

void CachedCountProvider::ClearCache() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  cache_.clear();
}

size_t CachedCountProvider::cache_size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return cache_.size();
}

}  // namespace corrmine
