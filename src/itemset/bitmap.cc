#include "itemset/bitmap.h"

#include <bit>

#include "common/logging.h"

namespace corrmine {

uint64_t Bitmap::Count() const {
  uint64_t total = 0;
  for (uint64_t w : words_) total += std::popcount(w);
  return total;
}

uint64_t Bitmap::AndCount(const Bitmap& other) const {
  CORRMINE_CHECK(num_bits_ == other.num_bits_)
      << "AndCount on differently-sized bitmaps";
  uint64_t total = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    total += std::popcount(words_[i] & other.words_[i]);
  }
  return total;
}

void Bitmap::AndWith(const Bitmap& other) {
  CORRMINE_CHECK(num_bits_ == other.num_bits_)
      << "AndWith on differently-sized bitmaps";
  for (size_t i = 0; i < words_.size(); ++i) {
    words_[i] &= other.words_[i];
  }
}

uint64_t MultiAndCount(const std::vector<const Bitmap*>& bitmaps) {
  if (bitmaps.empty()) return 0;
  size_t num_words = bitmaps[0]->words().size();
  for (const Bitmap* b : bitmaps) {
    CORRMINE_CHECK(b->words().size() == num_words)
        << "MultiAndCount on differently-sized bitmaps";
  }
  uint64_t total = 0;
  for (size_t w = 0; w < num_words; ++w) {
    uint64_t acc = bitmaps[0]->words()[w];
    for (size_t i = 1; i < bitmaps.size() && acc != 0; ++i) {
      acc &= bitmaps[i]->words()[w];
    }
    total += std::popcount(acc);
  }
  return total;
}

}  // namespace corrmine
