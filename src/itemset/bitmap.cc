#include "itemset/bitmap.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "itemset/kernels.h"

namespace corrmine {

uint64_t Bitmap::Count() const {
  return ActiveKernels().popcount(words_.data(), words_.size());
}

uint64_t Bitmap::AndCount(const Bitmap& other) const {
  CORRMINE_CHECK(num_bits_ == other.num_bits_)
      << "AndCount on differently-sized bitmaps";
  return ActiveKernels().and_count(words_.data(), other.words_.data(),
                                   words_.size());
}

void Bitmap::AndWith(const Bitmap& other) {
  CORRMINE_CHECK(num_bits_ == other.num_bits_)
      << "AndWith on differently-sized bitmaps";
  ActiveKernels().and_inplace(words_.data(), other.words_.data(),
                              words_.size());
}

uint64_t Bitmap::AndCountInto(const Bitmap& a, const Bitmap& b, Bitmap* dst) {
  CORRMINE_CHECK(a.num_bits_ == b.num_bits_)
      << "AndCountInto on differently-sized bitmaps";
  if (dst->num_bits_ != a.num_bits_) *dst = Bitmap(a.num_bits_);
  return ActiveKernels().and_count_into(dst->words_.data(), a.words_.data(),
                                        b.words_.data(), a.words_.size());
}

uint64_t MultiAndCount(const std::vector<const Bitmap*>& bitmaps) {
  if (bitmaps.empty()) return 0;
  const size_t num_words = bitmaps[0]->words().size();
  for (const Bitmap* b : bitmaps) {
    CORRMINE_CHECK(b->words().size() == num_words)
        << "MultiAndCount on differently-sized bitmaps";
  }
  const CountingKernels& kernels = ActiveKernels();
  if (bitmaps.size() == 1) {
    return kernels.popcount(bitmaps[0]->words().data(), num_words);
  }
  // Lead with the sparsest operand: the kernels stop ANDing a word/chunk
  // once its accumulator is all-zero, and a sparse leader zeroes chunks
  // soonest. The ordering pass is one popcount per operand — cheap next to
  // the (k-1)-way AND stream it prunes — and a stable sort keeps the
  // operand order (hence the execution trace) deterministic on ties.
  std::vector<std::pair<uint64_t, const uint64_t*>> by_density;
  by_density.reserve(bitmaps.size());
  for (const Bitmap* b : bitmaps) {
    by_density.emplace_back(kernels.popcount(b->words().data(), num_words),
                            b->words().data());
  }
  std::stable_sort(by_density.begin(), by_density.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  std::vector<const uint64_t*> ops;
  ops.reserve(by_density.size());
  for (const auto& [count, words] : by_density) ops.push_back(words);
  return kernels.multi_and_count(ops.data(), ops.size(), num_words);
}

}  // namespace corrmine
