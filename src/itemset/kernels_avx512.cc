// AVX-512 counting kernels: 512-bit AND streams counted with the VPOPCNTDQ
// instruction (_mm512_popcnt_epi64 — one hardware popcount per 64-bit lane,
// no LUT dance). Compiled with -mavx512f -mavx512bw -mavx512vpopcntdq
// -mpopcnt via per-file CMake flags and gated at runtime on
// __builtin_cpu_supports("avx512f"/"avx512bw"/"avx512vpopcntdq").

#include <cstddef>
#include <cstdint>

#include "itemset/kernels.h"

#if defined(__AVX512F__) && defined(__AVX512BW__) && \
    defined(__AVX512VPOPCNTDQ__)

#include <immintrin.h>

#include <bit>

namespace corrmine {

namespace {

#include "itemset/kernels_sparse_inl.h"

constexpr size_t kLaneWords = 8;  // 512 bits.

uint64_t Avx512Popcount(const uint64_t* words, size_t n) {
  __m512i acc = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + kLaneWords <= n; i += kLaneWords) {
    const __m512i v = _mm512_loadu_si512(words + i);
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  uint64_t total = static_cast<uint64_t>(_mm512_reduce_add_epi64(acc));
  for (; i < n; ++i) total += std::popcount(words[i]);
  return total;
}

uint64_t Avx512AndCount(const uint64_t* a, const uint64_t* b, size_t n) {
  __m512i acc = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + kLaneWords <= n; i += kLaneWords) {
    const __m512i v = _mm512_and_si512(_mm512_loadu_si512(a + i),
                                       _mm512_loadu_si512(b + i));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  uint64_t total = static_cast<uint64_t>(_mm512_reduce_add_epi64(acc));
  for (; i < n; ++i) total += std::popcount(a[i] & b[i]);
  return total;
}

uint64_t Avx512MultiAndCount(const uint64_t* const* ops, size_t k,
                             size_t n) {
  __m512i acc = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + kLaneWords <= n; i += kLaneWords) {
    __m512i v = _mm512_loadu_si512(ops[0] + i);
    for (size_t j = 1; j < k; ++j) {
      if (_mm512_test_epi64_mask(v, v) == 0) break;  // Chunk already empty.
      v = _mm512_and_si512(v, _mm512_loadu_si512(ops[j] + i));
    }
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  uint64_t total = static_cast<uint64_t>(_mm512_reduce_add_epi64(acc));
  for (; i < n; ++i) {
    uint64_t w = ops[0][i];
    for (size_t j = 1; j < k && w != 0; ++j) w &= ops[j][i];
    total += std::popcount(w);
  }
  return total;
}

void Avx512AndInplace(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + kLaneWords <= n; i += kLaneWords) {
    const __m512i v = _mm512_and_si512(_mm512_loadu_si512(dst + i),
                                       _mm512_loadu_si512(src + i));
    _mm512_storeu_si512(dst + i, v);
  }
  for (; i < n; ++i) dst[i] &= src[i];
}

uint64_t Avx512AndCountInto(uint64_t* dst, const uint64_t* a,
                            const uint64_t* b, size_t n) {
  __m512i acc = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + kLaneWords <= n; i += kLaneWords) {
    const __m512i v = _mm512_and_si512(_mm512_loadu_si512(a + i),
                                       _mm512_loadu_si512(b + i));
    _mm512_storeu_si512(dst + i, v);
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  uint64_t total = static_cast<uint64_t>(_mm512_reduce_add_epi64(acc));
  for (; i < n; ++i) {
    const uint64_t w = a[i] & b[i];
    dst[i] = w;
    total += std::popcount(w);
  }
  return total;
}

void Avx512AndBlock(uint64_t* dst, const uint64_t* const* ops, size_t k,
                    size_t n) {
  size_t i = 0;
  for (; i + kLaneWords <= n; i += kLaneWords) {
    __m512i v = _mm512_and_si512(_mm512_loadu_si512(ops[0] + i),
                                 _mm512_loadu_si512(ops[1] + i));
    for (size_t j = 2; j < k; ++j) {
      v = _mm512_and_si512(v, _mm512_loadu_si512(ops[j] + i));
    }
    _mm512_storeu_si512(dst + i, v);
  }
  for (; i < n; ++i) {
    uint64_t w = ops[0][i] & ops[1][i];
    for (size_t j = 2; j < k; ++j) w &= ops[j][i];
    dst[i] = w;
  }
}

constexpr CountingKernels kAvx512Kernels = {
    KernelIsa::kAvx512, "avx512",            Avx512Popcount,
    Avx512AndCount,     Avx512MultiAndCount, Avx512AndInplace,
    Avx512AndCountInto, Avx512AndBlock,
    SparseArrayIntersectCount, SparseArrayDenseCount,
};

}  // namespace

const CountingKernels* Avx512Kernels() { return &kAvx512Kernels; }

}  // namespace corrmine

#else  // missing AVX-512 subset

namespace corrmine {

// TU built without the required AVX-512 feature flags: not compiled in.
const CountingKernels* Avx512Kernels() { return nullptr; }

}  // namespace corrmine

#endif  // AVX-512 subset
