#include "itemset/compressed_bitmap.h"

#include <algorithm>
#include <bit>

#include "common/logging.h"
#include "itemset/kernels.h"
#include "itemset/transaction_database.h"

namespace corrmine {

namespace {
constexpr uint32_t kBlockBits = 16;
constexpr uint32_t kBlockSize = uint32_t{1} << kBlockBits;
constexpr size_t kWordsPerDense = kBlockSize / 64;
}  // namespace

CompressedBitmap::CompressedBitmap(size_t num_rows,
                                   const std::vector<uint32_t>& rows)
    : num_rows_(num_rows), total_count_(rows.size()) {
  size_t i = 0;
  while (i < rows.size()) {
    uint32_t key = rows[i] >> kBlockBits;
    size_t end = i;
    while (end < rows.size() && (rows[end] >> kBlockBits) == key) {
      CORRMINE_CHECK(end == i || rows[end] > rows[end - 1])
          << "rows must be strictly increasing";
      CORRMINE_CHECK(rows[end] < num_rows) << "row id out of range";
      ++end;
    }
    Container container;
    container.key = key;
    container.count = static_cast<uint32_t>(end - i);
    if (container.count >= kDenseThreshold) {
      container.dense = true;
      container.words.assign(kWordsPerDense, 0);
      for (size_t j = i; j < end; ++j) {
        uint32_t offset = rows[j] & (kBlockSize - 1);
        container.words[offset >> 6] |= uint64_t{1} << (offset & 63);
      }
    } else {
      container.array.reserve(container.count);
      for (size_t j = i; j < end; ++j) {
        container.array.push_back(
            static_cast<uint16_t>(rows[j] & (kBlockSize - 1)));
      }
    }
    containers_.push_back(std::move(container));
    i = end;
  }
}

CompressedBitmap CompressedBitmap::FromBitmap(const Bitmap& bitmap) {
  std::vector<uint32_t> rows;
  for (size_t row = 0; row < bitmap.size(); ++row) {
    if (bitmap.Test(row)) rows.push_back(static_cast<uint32_t>(row));
  }
  return CompressedBitmap(bitmap.size(), rows);
}

bool CompressedBitmap::Test(uint32_t row) const {
  uint32_t key = row >> kBlockBits;
  auto it = std::lower_bound(
      containers_.begin(), containers_.end(), key,
      [](const Container& c, uint32_t k) { return c.key < k; });
  if (it == containers_.end() || it->key != key) return false;
  uint16_t offset = static_cast<uint16_t>(row & (kBlockSize - 1));
  if (it->dense) {
    return (it->words[offset >> 6] >> (offset & 63)) & 1;
  }
  return std::binary_search(it->array.begin(), it->array.end(), offset);
}

uint64_t CompressedBitmap::AndCountContainers(const Container& a,
                                              const Container& b) {
  if (a.dense && b.dense) {
    // 1024-word bitset blocks: exactly the shape the dispatched
    // AND+popcount kernels are built for. The sparse paths below stay
    // scalar — they are index merges, not word streams.
    return ActiveKernels().and_count(a.words.data(), b.words.data(),
                                     kWordsPerDense);
  }
  if (a.dense != b.dense) {
    const Container& dense = a.dense ? a : b;
    const Container& sparse = a.dense ? b : a;
    uint64_t total = 0;
    for (uint16_t offset : sparse.array) {
      total += (dense.words[offset >> 6] >> (offset & 63)) & 1;
    }
    return total;
  }
  // Both sparse: linear merge (galloping buys little at these sizes).
  uint64_t total = 0;
  size_t i = 0, j = 0;
  while (i < a.array.size() && j < b.array.size()) {
    if (a.array[i] < b.array[j]) {
      ++i;
    } else if (a.array[i] > b.array[j]) {
      ++j;
    } else {
      ++total;
      ++i;
      ++j;
    }
  }
  return total;
}

uint64_t CompressedBitmap::AndCount(const CompressedBitmap& other) const {
  CORRMINE_CHECK(num_rows_ == other.num_rows_)
      << "AndCount on differently-sized compressed bitmaps";
  uint64_t total = 0;
  size_t i = 0, j = 0;
  while (i < containers_.size() && j < other.containers_.size()) {
    uint32_t ka = containers_[i].key;
    uint32_t kb = other.containers_[j].key;
    if (ka < kb) {
      ++i;
    } else if (ka > kb) {
      ++j;
    } else {
      total += AndCountContainers(containers_[i], other.containers_[j]);
      ++i;
      ++j;
    }
  }
  return total;
}

std::vector<uint32_t> CompressedBitmap::ToRows() const {
  std::vector<uint32_t> rows;
  rows.reserve(total_count_);
  for (const Container& c : containers_) {
    uint32_t base = c.key << kBlockBits;
    if (c.dense) {
      for (size_t w = 0; w < kWordsPerDense; ++w) {
        uint64_t word = c.words[w];
        while (word != 0) {
          int bit = std::countr_zero(word);
          rows.push_back(base + static_cast<uint32_t>(w * 64 + bit));
          word &= word - 1;
        }
      }
    } else {
      for (uint16_t offset : c.array) {
        rows.push_back(base + offset);
      }
    }
  }
  return rows;
}

size_t CompressedBitmap::MemoryBytes() const {
  size_t bytes = containers_.size() * sizeof(Container);
  for (const Container& c : containers_) {
    bytes += c.array.size() * sizeof(uint16_t);
    bytes += c.words.size() * sizeof(uint64_t);
  }
  return bytes;
}

CompressedVerticalIndex::CompressedVerticalIndex(
    const TransactionDatabase& db)
    : num_baskets_(db.num_baskets()) {
  // Gather per-item sorted row lists in one pass.
  std::vector<std::vector<uint32_t>> rows(db.num_items());
  for (ItemId i = 0; i < db.num_items(); ++i) {
    rows[i].reserve(db.ItemCount(i));
  }
  for (size_t row = 0; row < db.num_baskets(); ++row) {
    for (ItemId item : db.basket(row)) {
      rows[item].push_back(static_cast<uint32_t>(row));
    }
  }
  columns_.reserve(db.num_items());
  for (ItemId i = 0; i < db.num_items(); ++i) {
    columns_.emplace_back(num_baskets_, rows[i]);
  }
}

uint64_t CompressedVerticalIndex::CountAllPresent(const Itemset& s) const {
  CORRMINE_CHECK(!s.empty()) << "CountAllPresent requires a non-empty set";
  if (s.size() == 1) return columns_[s.item(0)].Count();
  if (s.size() == 2) {
    return columns_[s.item(0)].AndCount(columns_[s.item(1)]);
  }
  // Multi-way: materialize the intersection of the two cheapest columns as
  // a row list, then filter through the remaining columns via Test().
  std::vector<ItemId> by_count(s.begin(), s.end());
  std::sort(by_count.begin(), by_count.end(), [&](ItemId a, ItemId b) {
    return columns_[a].Count() < columns_[b].Count();
  });
  // Walk the rows of the rarest column and test membership everywhere
  // else.
  uint64_t total = 0;
  for (uint32_t row : columns_[by_count[0]].ToRows()) {
    bool all = true;
    for (size_t j = 1; j < by_count.size(); ++j) {
      if (!columns_[by_count[j]].Test(row)) {
        all = false;
        break;
      }
    }
    if (all) ++total;
  }
  return total;
}

size_t CompressedVerticalIndex::MemoryBytes() const {
  size_t bytes = 0;
  for (const CompressedBitmap& column : columns_) {
    bytes += column.MemoryBytes();
  }
  return bytes;
}

}  // namespace corrmine
