// NEON counting kernels for AArch64: 128-bit AND streams counted with
// VCNT (per-byte popcount) folded up through pairwise widening adds. NEON
// is architecturally baseline on AArch64, so this TU needs no special
// compile flags there — the guard below simply excludes non-ARM targets,
// where the factory reports "not compiled in".

#include <cstddef>
#include <cstdint>

#include "itemset/kernels.h"

#if defined(__aarch64__) || defined(__ARM_NEON)

#include <arm_neon.h>

#include <bit>

namespace corrmine {

namespace {

#include "itemset/kernels_sparse_inl.h"

constexpr size_t kLaneWords = 2;  // 128 bits.

/// Per-64-bit-lane popcount: byte counts (VCNT) widened pairwise
/// u8 -> u16 -> u32 -> u64.
inline uint64x2_t Popcount128(uint64x2_t v) {
  const uint8x16_t bytes = vcntq_u8(vreinterpretq_u8_u64(v));
  return vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(bytes)));
}

inline uint64_t HorizontalSum(uint64x2_t acc) {
  return vgetq_lane_u64(acc, 0) + vgetq_lane_u64(acc, 1);
}

uint64_t NeonPopcount(const uint64_t* words, size_t n) {
  uint64x2_t acc = vdupq_n_u64(0);
  size_t i = 0;
  for (; i + kLaneWords <= n; i += kLaneWords) {
    acc = vaddq_u64(acc, Popcount128(vld1q_u64(words + i)));
  }
  uint64_t total = HorizontalSum(acc);
  for (; i < n; ++i) total += std::popcount(words[i]);
  return total;
}

uint64_t NeonAndCount(const uint64_t* a, const uint64_t* b, size_t n) {
  uint64x2_t acc = vdupq_n_u64(0);
  size_t i = 0;
  for (; i + kLaneWords <= n; i += kLaneWords) {
    const uint64x2_t v = vandq_u64(vld1q_u64(a + i), vld1q_u64(b + i));
    acc = vaddq_u64(acc, Popcount128(v));
  }
  uint64_t total = HorizontalSum(acc);
  for (; i < n; ++i) total += std::popcount(a[i] & b[i]);
  return total;
}

uint64_t NeonMultiAndCount(const uint64_t* const* ops, size_t k, size_t n) {
  uint64x2_t acc = vdupq_n_u64(0);
  size_t i = 0;
  for (; i + kLaneWords <= n; i += kLaneWords) {
    uint64x2_t v = vld1q_u64(ops[0] + i);
    for (size_t j = 1; j < k; ++j) {
      if ((vgetq_lane_u64(v, 0) | vgetq_lane_u64(v, 1)) == 0) break;
      v = vandq_u64(v, vld1q_u64(ops[j] + i));
    }
    acc = vaddq_u64(acc, Popcount128(v));
  }
  uint64_t total = HorizontalSum(acc);
  for (; i < n; ++i) {
    uint64_t w = ops[0][i];
    for (size_t j = 1; j < k && w != 0; ++j) w &= ops[j][i];
    total += std::popcount(w);
  }
  return total;
}

void NeonAndInplace(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + kLaneWords <= n; i += kLaneWords) {
    vst1q_u64(dst + i, vandq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
  }
  for (; i < n; ++i) dst[i] &= src[i];
}

uint64_t NeonAndCountInto(uint64_t* dst, const uint64_t* a,
                          const uint64_t* b, size_t n) {
  uint64x2_t acc = vdupq_n_u64(0);
  size_t i = 0;
  for (; i + kLaneWords <= n; i += kLaneWords) {
    const uint64x2_t v = vandq_u64(vld1q_u64(a + i), vld1q_u64(b + i));
    vst1q_u64(dst + i, v);
    acc = vaddq_u64(acc, Popcount128(v));
  }
  uint64_t total = HorizontalSum(acc);
  for (; i < n; ++i) {
    const uint64_t w = a[i] & b[i];
    dst[i] = w;
    total += std::popcount(w);
  }
  return total;
}

void NeonAndBlock(uint64_t* dst, const uint64_t* const* ops, size_t k,
                  size_t n) {
  size_t i = 0;
  for (; i + kLaneWords <= n; i += kLaneWords) {
    uint64x2_t v = vandq_u64(vld1q_u64(ops[0] + i), vld1q_u64(ops[1] + i));
    for (size_t j = 2; j < k; ++j) {
      v = vandq_u64(v, vld1q_u64(ops[j] + i));
    }
    vst1q_u64(dst + i, v);
  }
  for (; i < n; ++i) {
    uint64_t w = ops[0][i] & ops[1][i];
    for (size_t j = 2; j < k; ++j) w &= ops[j][i];
    dst[i] = w;
  }
}

constexpr CountingKernels kNeonKernels = {
    KernelIsa::kNeon, "neon",           NeonPopcount,
    NeonAndCount,     NeonMultiAndCount, NeonAndInplace,
    NeonAndCountInto, NeonAndBlock,
    SparseArrayIntersectCount, SparseArrayDenseCount,
};

}  // namespace

const CountingKernels* NeonKernels() { return &kNeonKernels; }

}  // namespace corrmine

#else  // not an ARM target

namespace corrmine {

const CountingKernels* NeonKernels() { return nullptr; }

}  // namespace corrmine

#endif  // ARM
