#ifndef CORRMINE_ITEMSET_COUNT_PROVIDER_H_
#define CORRMINE_ITEMSET_COUNT_PROVIDER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>

#include "itemset/itemset.h"
#include "itemset/transaction_database.h"

namespace corrmine {
class Counter;
class Histogram;
class MetricsRegistry;
class ThreadPool;
}  // namespace corrmine

namespace corrmine {

/// Answers "how many baskets contain every item of S" — the only primitive
/// contingency-table construction needs (cells with absent items follow by
/// inclusion–exclusion). Implementations trade preprocessing for lookup
/// speed; the miner is parameterized on this interface so the strategies can
/// be benchmarked against each other.
///
/// The interface comes in two grains. CountAllPresent answers one query;
/// CountAllPresentBatch answers a whole level's worth in one call, which is
/// what the level-wise miner issues (one batch per frontier — see DESIGN.md
/// §7). Providers override the batch hook when they can amortize work across
/// queries (shared scans, per-shard fan-out); the default loops over the
/// scalar hook, so every provider supports both grains.
///
/// Both entry points are non-virtual wrappers that tick the global
/// "count_provider.*" counters (scalar_calls, batch_calls, batch_queries) —
/// the instrumentation the batch-per-level acceptance tests assert on —
/// before dispatching to the protected *Impl virtuals.
class CountProvider {
 public:
  CountProvider();
  virtual ~CountProvider() = default;

  /// Total number of baskets n.
  virtual uint64_t num_baskets() const = 0;

  /// O(S): baskets containing all items of S. S must be non-empty and its
  /// items in range. O({i}) must equal the database's item count.
  uint64_t CountAllPresent(const Itemset& s) const {
    BumpScalar();
    return CountAllPresentImpl(s);
  }

  /// Answers `queries[i]` into `counts[i]` for every i. The spans must have
  /// equal length; every query obeys the CountAllPresent preconditions.
  /// `pool` (optional, borrowed for the call) lets the provider parallelize;
  /// results are identical — and deterministic — for any pool, including
  /// nullptr, which runs inline.
  void CountAllPresentBatch(std::span<const Itemset> queries,
                            std::span<uint64_t> counts,
                            ThreadPool* pool = nullptr) const;

  /// CountAllPresentBatch without the "count_provider.*" counter bumps —
  /// for decorators (the border-repair memo provider) that already ticked
  /// the counters for the enclosing batch and only fall through here for
  /// the subset of queries they cannot answer. Using the counted entry
  /// point would double-bump and break the schedule-independence contract
  /// those counters carry (DESIGN.md §7).
  void CountAllPresentBatchUncounted(std::span<const Itemset> queries,
                                     std::span<uint64_t> counts,
                                     ThreadPool* pool = nullptr) const;

 protected:
  /// Single-query strategy; called by the CountAllPresent wrapper and by
  /// the default batch loop.
  virtual uint64_t CountAllPresentImpl(const Itemset& s) const = 0;

  /// Batch strategy; the default answers each query via CountAllPresentImpl
  /// in order (ignoring `pool`). Overrides must write exactly the counts
  /// the scalar path would produce.
  virtual void CountAllPresentBatchImpl(std::span<const Itemset> queries,
                                        std::span<uint64_t> counts,
                                        ThreadPool* pool) const;

 private:
  void BumpScalar() const;
  void BumpBatch(size_t num_queries) const;

  // Resolved once at construction from MetricsRegistry::Global(); stable
  // pointers, so the wrappers pay one relaxed add, not a registry lookup.
  Counter* scalar_calls_;
  Counter* batch_calls_;
  Counter* batch_queries_;
};

/// Strategy A: re-scan the row store per query. No preprocessing, O(n)
/// per count; matches the paper's "make a pass over the entire database"
/// baseline cost model. Batches are answered basket-major (one scan
/// answers every query), chunked across the pool with per-chunk partial
/// sums merged in chunk order.
class ScanCountProvider : public CountProvider {
 public:
  /// `db` must outlive this provider.
  explicit ScanCountProvider(const TransactionDatabase& db) : db_(db) {}

  uint64_t num_baskets() const override { return db_.num_baskets(); }

 protected:
  uint64_t CountAllPresentImpl(const Itemset& s) const override;
  void CountAllPresentBatchImpl(std::span<const Itemset> queries,
                                std::span<uint64_t> counts,
                                ThreadPool* pool) const override;

 private:
  const TransactionDatabase& db_;
};

/// Strategy B: per-item bitmaps; each count is a multi-way AND/popcount.
/// One O(total occurrences) preprocessing pass. Batches parallelize over
/// the query axis (each query's count lands in its own slot, so any
/// schedule yields identical results).
class BitmapCountProvider : public CountProvider {
 public:
  /// Builds the vertical index eagerly; `db` may be discarded afterwards.
  explicit BitmapCountProvider(const TransactionDatabase& db) : index_(db) {}

  uint64_t num_baskets() const override { return index_.num_baskets(); }

  const VerticalIndex& index() const { return index_; }

 protected:
  uint64_t CountAllPresentImpl(const Itemset& s) const override {
    return index_.CountAllPresent(s);
  }
  void CountAllPresentBatchImpl(std::span<const Itemset> queries,
                                std::span<uint64_t> counts,
                                ThreadPool* pool) const override;

 private:
  VerticalIndex index_;
};

/// Strategy C: bitmap counting with Eclat-style prefix-intersection
/// caching. The level-wise miner's join produces runs of sibling
/// candidates sharing a (k-1)-prefix, and contingency-table construction
/// re-queries every subset of each candidate; the plain bitmap provider
/// rebuilds the same multi-way AND chain for each of those queries. This
/// decorator materializes the intersection bitmap of each queried prefix
/// once, so a size-k count is a single AND/popcount against the last
/// item's bitmap instead of a (k-1)-way chain.
///
/// Counts are exact and identical to BitmapCountProvider's — the cache
/// changes cost, never answers — so it can be swapped in anywhere,
/// including under the deterministic parallel miner.
///
/// Thread safety: CountAllPresent may be called concurrently. Each prefix
/// is materialized exactly once: the first arrival claims the cache entry
/// and builds it, later arrivals block until it is ready (the prefix chain
/// is acyclic, so waiting cannot deadlock). Build-once is what makes the
/// cost counters below *deterministic* across thread counts — no thread
/// ever duplicates another's AND chain, so hits/misses/and_word_ops depend
/// only on the query multiset, not the schedule (the stats-json determinism
/// contract in DESIGN.md §6 leans on this). Batches parallelize over the
/// query axis and go through the same build-once path, so the counters
/// stay schedule-independent. ClearCache must not race with queries.
class CachedCountProvider : public CountProvider {
 public:
  /// `index` must outlive this provider. `max_entries` bounds the cache;
  /// once full, further prefixes are computed transiently (counts stay
  /// exact, the speedup degrades gracefully).
  explicit CachedCountProvider(const VerticalIndex& index,
                               size_t max_entries = size_t{1} << 16);

  uint64_t num_baskets() const override { return index_.num_baskets(); }

  /// Cost counters, for benchmarking the cache against the plain bitmap
  /// strategy. `and_word_ops` is the number of 64-bit AND operations this
  /// provider actually performed; `uncached_and_word_ops` is what the
  /// plain multi-way chain would have cost for the same query stream
  /// ((k-1) * words per size-k query). A `miss` is a prefix materialized
  /// into the cache (each distinct prefix misses exactly once); a `hit` is
  /// any other arrival at a cached prefix, including arrivals that waited
  /// on an in-flight build. `overflow_builds` counts transient rebuilds
  /// once the cache is full — the only path on which the counters can
  /// depend on thread schedule. All counters are cumulative, thread-safe,
  /// and (while overflow_builds == 0) identical for any thread count.
  struct CacheStats {
    uint64_t queries = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t overflow_builds = 0;
    uint64_t and_word_ops = 0;
    uint64_t uncached_and_word_ops = 0;
  };
  CacheStats stats() const;

  /// Copies the current stats into `registry` as gauges under
  /// "cache.<field>" (plus "mem.cache_bytes" from MemoryBytes) — call before
  /// snapshotting/dumping the registry. The query path only touches its
  /// pre-resolved latency histograms, never the registry maps.
  void PublishMetrics(MetricsRegistry* registry) const;

  /// Approximate bytes held by memoized prefix bitmaps.
  uint64_t MemoryBytes() const;

  /// Drops every memoized prefix. Within one mining run retained entries
  /// keep paying off (contingency tables re-query every subset, so short
  /// prefixes recur across levels); call this between *independent* runs,
  /// or to release memory once mining finishes. Must not be called
  /// concurrently with CountAllPresent.
  void ClearCache();

  /// Lazy invalidation for append-aware callers: bumping the epoch marks
  /// every memoized prefix stale without sweeping the map. A stale entry is
  /// rebuilt (against the grown index) the first time the new epoch touches
  /// it — so after `index` gains rows, AdvanceEpoch() restores exactness at
  /// the cost of re-materializing only the prefixes actually re-queried.
  /// Without it, appends whose row count stays within the same bitmap word
  /// count would silently serve stale counts. Must not race with queries
  /// (same contract as ClearCache).
  void AdvanceEpoch();
  uint64_t epoch() const;

  size_t cache_size() const;

 protected:
  uint64_t CountAllPresentImpl(const Itemset& s) const override;
  void CountAllPresentBatchImpl(std::span<const Itemset> queries,
                                std::span<uint64_t> counts,
                                ThreadPool* pool) const override;

 private:
  /// One memoized prefix: claimed under the map lock by its builder, filled
  /// outside it, waited on by concurrent arrivals.
  struct Entry {
    std::mutex mu;
    std::condition_variable ready_cv;
    bool ready = false;
    Bitmap bits;
    /// Epoch this entry was built in; entries from older epochs are
    /// replaced on first touch (see AdvanceEpoch).
    uint64_t epoch = 0;
  };

  /// Intersection bitmap of `prefix`, memoized when the cache has room;
  /// otherwise computed into `*scratch`. The returned pointer is either a
  /// cache entry (stable until ClearCache), an item bitmap, or `scratch`.
  /// `top_level_hit` (optional) reports whether this arrival found the
  /// prefix already claimed — the hit/miss classification the latency
  /// histograms ("cache.hit_ns" / "cache.miss_ns") are keyed on.
  const Bitmap* PrefixBitmapInto(const Itemset& prefix, Bitmap* scratch,
                                 bool* top_level_hit = nullptr) const;

  const VerticalIndex& index_;
  const size_t max_entries_;
  /// Latency histograms for size>=3 queries, split by whether the queried
  /// prefix was already cached. Resolved from MetricsRegistry::Global() at
  /// construction; no-ops when metrics are compiled out.
  Histogram* hit_ns_;
  Histogram* miss_ns_;
  mutable std::mutex mu_;
  mutable std::unordered_map<Itemset, std::shared_ptr<Entry>, ItemsetHasher>
      cache_;
  uint64_t epoch_ = 0;  // Guarded by mu_.
  mutable std::atomic<uint64_t> queries_{0};
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  mutable std::atomic<uint64_t> overflow_builds_{0};
  mutable std::atomic<uint64_t> and_word_ops_{0};
  mutable std::atomic<uint64_t> uncached_and_word_ops_{0};
};

}  // namespace corrmine

#endif  // CORRMINE_ITEMSET_COUNT_PROVIDER_H_
