#ifndef CORRMINE_ITEMSET_COUNT_PROVIDER_H_
#define CORRMINE_ITEMSET_COUNT_PROVIDER_H_

#include <cstdint>
#include <memory>

#include "itemset/itemset.h"
#include "itemset/transaction_database.h"

namespace corrmine {

/// Answers "how many baskets contain every item of S" — the only primitive
/// contingency-table construction needs (cells with absent items follow by
/// inclusion–exclusion). Implementations trade preprocessing for lookup
/// speed; the miner is parameterized on this interface so the strategies can
/// be benchmarked against each other.
class CountProvider {
 public:
  virtual ~CountProvider() = default;

  /// Total number of baskets n.
  virtual uint64_t num_baskets() const = 0;

  /// O(S): baskets containing all items of S. S must be non-empty and its
  /// items in range. O({i}) must equal the database's item count.
  virtual uint64_t CountAllPresent(const Itemset& s) const = 0;
};

/// Strategy A: re-scan the row store per query. No preprocessing, O(n)
/// per count; matches the paper's "make a pass over the entire database"
/// baseline cost model.
class ScanCountProvider : public CountProvider {
 public:
  /// `db` must outlive this provider.
  explicit ScanCountProvider(const TransactionDatabase& db) : db_(db) {}

  uint64_t num_baskets() const override { return db_.num_baskets(); }
  uint64_t CountAllPresent(const Itemset& s) const override;

 private:
  const TransactionDatabase& db_;
};

/// Strategy B: per-item bitmaps; each count is a multi-way AND/popcount.
/// One O(total occurrences) preprocessing pass.
class BitmapCountProvider : public CountProvider {
 public:
  /// Builds the vertical index eagerly; `db` may be discarded afterwards.
  explicit BitmapCountProvider(const TransactionDatabase& db) : index_(db) {}

  uint64_t num_baskets() const override { return index_.num_baskets(); }
  uint64_t CountAllPresent(const Itemset& s) const override {
    return index_.CountAllPresent(s);
  }

  const VerticalIndex& index() const { return index_; }

 private:
  VerticalIndex index_;
};

}  // namespace corrmine

#endif  // CORRMINE_ITEMSET_COUNT_PROVIDER_H_
