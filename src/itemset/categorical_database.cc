#include "itemset/categorical_database.h"

namespace corrmine {

CategoricalDatabase::CategoricalDatabase(
    std::vector<CategoricalAttribute> attributes)
    : attributes_(std::move(attributes)) {
  category_counts_.reserve(attributes_.size());
  for (const CategoricalAttribute& attr : attributes_) {
    category_counts_.emplace_back(attr.categories.size(), 0);
  }
}

StatusOr<CategoricalDatabase> CategoricalDatabase::Create(
    std::vector<CategoricalAttribute> attributes) {
  if (attributes.empty()) {
    return Status::InvalidArgument("need at least one attribute");
  }
  for (const CategoricalAttribute& attr : attributes) {
    if (attr.arity() < 2) {
      return Status::InvalidArgument("attribute '" + attr.name +
                                     "' needs at least two categories");
    }
    if (attr.arity() > 255) {
      return Status::OutOfRange("attribute '" + attr.name +
                                "' exceeds 255 categories");
    }
  }
  return CategoricalDatabase(std::move(attributes));
}

Status CategoricalDatabase::AddRow(std::vector<uint8_t> values) {
  if (values.size() != attributes_.size()) {
    return Status::InvalidArgument(
        "row covers " + std::to_string(values.size()) + " attributes, want " +
        std::to_string(attributes_.size()));
  }
  for (size_t a = 0; a < values.size(); ++a) {
    if (values[a] >= attributes_[a].categories.size()) {
      return Status::OutOfRange("category index " +
                                std::to_string(values[a]) +
                                " out of range for attribute '" +
                                attributes_[a].name + "'");
    }
  }
  for (size_t a = 0; a < values.size(); ++a) {
    ++category_counts_[a][values[a]];
  }
  rows_.push_back(std::move(values));
  return Status::OK();
}

}  // namespace corrmine
