#include "itemset/counting_column.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"

namespace corrmine {

namespace {

/// Group-block granularity of the batch morsels: one (shard, block) task
/// covers up to this many plan groups, matching ShardedCountProvider.
constexpr size_t kColumnGroupBlock = 64;

/// Number of (start, length-1) runs in a sorted offset sequence.
size_t CountRuns(std::span<const uint16_t> offsets) {
  size_t runs = 0;
  for (size_t i = 0; i < offsets.size(); ++i) {
    runs += (i == 0 || offsets[i] != static_cast<uint16_t>(offsets[i - 1] + 1) ||
             offsets[i] == 0);
  }
  return runs;
}

/// Popcount of words[...] restricted to bit positions [first, last].
uint64_t CountDenseRange(const uint64_t* words, uint32_t first,
                         uint32_t last) {
  const uint32_t first_word = first >> 6;
  const uint32_t last_word = last >> 6;
  const uint64_t head_mask = ~uint64_t{0} << (first & 63);
  const uint64_t tail_mask = ~uint64_t{0} >> (63 - (last & 63));
  if (first_word == last_word) {
    return static_cast<uint64_t>(
        std::popcount(words[first_word] & head_mask & tail_mask));
  }
  uint64_t count = std::popcount(words[first_word] & head_mask);
  for (uint32_t w = first_word + 1; w < last_word; ++w) {
    count += std::popcount(words[w]);
  }
  count += std::popcount(words[last_word] & tail_mask);
  return count;
}

/// Words spanned by bit range [first, last] (ISA-invariant work unit).
uint64_t DenseRangeWords(uint32_t first, uint32_t last) {
  return (last >> 6) - (first >> 6) + 1;
}

}  // namespace

CountingColumn::Container CountingColumn::MakeContainer(
    uint32_t key, std::span<const uint16_t> offsets) {
  Container c;
  c.key = key;
  c.count = static_cast<uint32_t>(offsets.size());
  const size_t runs = CountRuns(offsets);
  const size_t array_bytes = 2 * offsets.size();
  const size_t run_bytes = 4 * runs;
  const size_t dense_bytes = kWordsPerDense * sizeof(uint64_t);
  if (run_bytes < array_bytes && run_bytes < dense_bytes) {
    c.kind = ContainerKind::kRun;
    c.owned_u16.reserve(2 * runs);
    size_t i = 0;
    while (i < offsets.size()) {
      size_t j = i + 1;
      while (j < offsets.size() &&
             offsets[j] == static_cast<uint16_t>(offsets[j - 1] + 1) &&
             offsets[j] != 0) {
        ++j;
      }
      c.owned_u16.push_back(offsets[i]);
      c.owned_u16.push_back(static_cast<uint16_t>(j - i - 1));
      i = j;
    }
  } else if (array_bytes <= dense_bytes) {
    c.kind = ContainerKind::kArray;
    c.owned_u16.assign(offsets.begin(), offsets.end());
  } else {
    c.kind = ContainerKind::kDense;
    c.owned_words.assign(kWordsPerDense, 0);
    for (uint16_t off : offsets) {
      c.owned_words[off >> 6] |= uint64_t{1} << (off & 63);
    }
  }
  return c;
}

void CountingColumn::ContainerOffsets(const Container& c,
                                      std::vector<uint16_t>* out) {
  out->clear();
  out->reserve(c.count);
  switch (c.kind) {
    case ContainerKind::kArray: {
      const auto u16 = c.u16();
      out->assign(u16.begin(), u16.end());
      break;
    }
    case ContainerKind::kDense: {
      const uint64_t* words = c.words();
      for (size_t w = 0; w < kWordsPerDense; ++w) {
        uint64_t bits = words[w];
        while (bits != 0) {
          const int b = std::countr_zero(bits);
          out->push_back(static_cast<uint16_t>(w * 64 + b));
          bits &= bits - 1;
        }
      }
      break;
    }
    case ContainerKind::kRun: {
      const auto runs = c.u16();
      for (size_t r = 0; r + 1 < runs.size(); r += 2) {
        const uint32_t start = runs[r];
        const uint32_t end = start + runs[r + 1];
        for (uint32_t off = start; off <= end; ++off) {
          out->push_back(static_cast<uint16_t>(off));
        }
      }
      break;
    }
  }
}

CountingColumn::CountingColumn(size_t num_rows,
                               const std::vector<uint32_t>& rows)
    : num_rows_(num_rows), total_count_(rows.size()) {
  std::vector<uint16_t> offsets;
  size_t i = 0;
  while (i < rows.size()) {
    const uint32_t key = rows[i] >> kBlockBits;
    offsets.clear();
    while (i < rows.size() && (rows[i] >> kBlockBits) == key) {
      CORRMINE_CHECK(rows[i] < num_rows)
          << "row " << rows[i] << " out of range " << num_rows;
      CORRMINE_CHECK(offsets.empty() ||
                     static_cast<uint16_t>(rows[i]) > offsets.back())
          << "rows must be strictly increasing";
      offsets.push_back(static_cast<uint16_t>(rows[i] & (kBlockSize - 1)));
      ++i;
    }
    containers_.push_back(MakeContainer(key, offsets));
  }
}

CountingColumn CountingColumn::FromBitmap(const Bitmap& bitmap) {
  std::vector<uint32_t> rows;
  const std::vector<uint64_t>& words = bitmap.words();
  for (size_t w = 0; w < words.size(); ++w) {
    uint64_t bits = words[w];
    while (bits != 0) {
      const int b = std::countr_zero(bits);
      rows.push_back(static_cast<uint32_t>(w * 64 + b));
      bits &= bits - 1;
    }
  }
  return CountingColumn(bitmap.size(), rows);
}

CountingColumn CountingColumn::FromContainerViews(
    size_t num_rows, std::span<const ContainerView> views) {
  CountingColumn col;
  col.num_rows_ = num_rows;
  col.containers_.reserve(views.size());
  for (const ContainerView& v : views) {
    Container c;
    c.key = v.key;
    c.kind = v.kind;
    c.count = v.count;
    if (v.kind == ContainerKind::kDense) {
      CORRMINE_CHECK(v.words.size() == kWordsPerDense)
          << "dense container payload must be " << kWordsPerDense << " words";
      c.view_words = v.words.data();
    } else {
      c.view_u16 = v.u16.data();
      c.view_u16_len = v.u16.size();
    }
    col.total_count_ += v.count;
    col.containers_.push_back(std::move(c));
  }
  return col;
}

bool CountingColumn::Test(uint32_t row) const {
  const uint32_t key = row >> kBlockBits;
  const auto it = std::lower_bound(
      containers_.begin(), containers_.end(), key,
      [](const Container& c, uint32_t k) { return c.key < k; });
  if (it == containers_.end() || it->key != key) return false;
  const uint16_t off = static_cast<uint16_t>(row & (kBlockSize - 1));
  switch (it->kind) {
    case ContainerKind::kArray: {
      const auto u16 = it->u16();
      return std::binary_search(u16.begin(), u16.end(), off);
    }
    case ContainerKind::kDense:
      return (it->words()[off >> 6] >> (off & 63)) & 1;
    case ContainerKind::kRun: {
      const auto runs = it->u16();
      // Last run whose start <= off.
      size_t lo = 0;
      size_t hi = runs.size() / 2;
      while (lo < hi) {
        const size_t mid = lo + (hi - lo) / 2;
        if (runs[2 * mid] <= off) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      if (lo == 0) return false;
      const uint32_t start = runs[2 * (lo - 1)];
      return off <= start + runs[2 * (lo - 1) + 1];
    }
  }
  return false;
}

uint64_t CountingColumn::AndCountContainers(const Container& a,
                                            const Container& b,
                                            ColumnOpStats* stats) {
  // Canonicalize so the pair dispatch below sees kind(x) <= kind(y) in the
  // order array < dense < run.
  const Container* x = &a;
  const Container* y = &b;
  if (static_cast<int>(x->kind) > static_cast<int>(y->kind)) std::swap(x, y);
  const CountingKernels& kernels = ActiveKernels();
  switch (x->kind) {
    case ContainerKind::kArray:
      switch (y->kind) {
        case ContainerKind::kArray: {
          const auto ax = x->u16();
          const auto ay = y->u16();
          if (stats != nullptr) stats->array_elems += ax.size() + ay.size();
          return kernels.array_intersect_count(ax.data(), ax.size(),
                                               ay.data(), ay.size());
        }
        case ContainerKind::kDense: {
          const auto ax = x->u16();
          if (stats != nullptr) stats->probe_elems += ax.size();
          return kernels.array_dense_count(ax.data(), ax.size(), y->words());
        }
        case ContainerKind::kRun: {
          const auto ax = x->u16();
          const auto runs = y->u16();
          if (stats != nullptr) {
            stats->array_elems += ax.size();
            stats->run_elems += runs.size() / 2;
          }
          uint64_t count = 0;
          size_t r = 0;
          for (const uint16_t v : ax) {
            while (r * 2 < runs.size() &&
                   static_cast<uint32_t>(runs[r * 2]) + runs[r * 2 + 1] < v) {
              ++r;
            }
            if (r * 2 < runs.size() && runs[r * 2] <= v) ++count;
          }
          return count;
        }
      }
      break;
    case ContainerKind::kDense:
      switch (y->kind) {
        case ContainerKind::kDense:
          if (stats != nullptr) stats->dense_words += kWordsPerDense;
          return kernels.and_count(x->words(), y->words(), kWordsPerDense);
        case ContainerKind::kRun: {
          const auto runs = y->u16();
          uint64_t count = 0;
          for (size_t r = 0; r + 1 < runs.size(); r += 2) {
            const uint32_t start = runs[r];
            const uint32_t end = start + runs[r + 1];
            count += CountDenseRange(x->words(), start, end);
            if (stats != nullptr) {
              stats->dense_words += DenseRangeWords(start, end);
            }
          }
          if (stats != nullptr) stats->run_elems += runs.size() / 2;
          return count;
        }
        default:
          break;
      }
      break;
    case ContainerKind::kRun: {
      // run x run: two-pointer overlap-length sum.
      const auto ra = x->u16();
      const auto rb = y->u16();
      if (stats != nullptr) stats->run_elems += ra.size() / 2 + rb.size() / 2;
      uint64_t count = 0;
      size_t i = 0;
      size_t j = 0;
      while (i * 2 < ra.size() && j * 2 < rb.size()) {
        const uint32_t sa = ra[2 * i];
        const uint32_t ea = sa + ra[2 * i + 1];
        const uint32_t sb = rb[2 * j];
        const uint32_t eb = sb + rb[2 * j + 1];
        const uint32_t lo = std::max(sa, sb);
        const uint32_t hi = std::min(ea, eb);
        if (lo <= hi) count += hi - lo + 1;
        if (ea < eb) {
          ++i;
        } else {
          ++j;
        }
      }
      return count;
    }
  }
  CORRMINE_CHECK(false) << "unreachable container pair";
  return 0;
}

CountingColumn::Container CountingColumn::AndContainers(const Container& a,
                                                        const Container& b,
                                                        ColumnOpStats* stats) {
  const Container* x = &a;
  const Container* y = &b;
  if (static_cast<int>(x->kind) > static_cast<int>(y->kind)) std::swap(x, y);
  const CountingKernels& kernels = ActiveKernels();
  std::vector<uint16_t> offsets;
  // dense x dense and dense x run materialize words; everything else
  // materializes sorted offsets and re-optimizes via MakeContainer.
  if (x->kind == ContainerKind::kDense && y->kind == ContainerKind::kDense) {
    Container out;
    out.key = a.key;
    out.kind = ContainerKind::kDense;
    out.owned_words.resize(kWordsPerDense);
    out.count = static_cast<uint32_t>(kernels.and_count_into(
        out.owned_words.data(), x->words(), y->words(), kWordsPerDense));
    if (stats != nullptr) stats->dense_words += kWordsPerDense;
    if (out.count == 0) return out;
    if (out.count >= kDenseThreshold) {
      out.kind = ContainerKind::kDense;
      return out;
    }
    ContainerOffsets(out, &offsets);  // demote: decode then re-pick
    return MakeContainer(a.key, offsets);
  }
  if (x->kind == ContainerKind::kDense && y->kind == ContainerKind::kRun) {
    Container out;
    out.key = a.key;
    out.kind = ContainerKind::kDense;
    out.owned_words.assign(kWordsPerDense, 0);
    const auto runs = y->u16();
    uint64_t count = 0;
    for (size_t r = 0; r + 1 < runs.size(); r += 2) {
      const uint32_t start = runs[r];
      const uint32_t end = start + runs[r + 1];
      const uint32_t first_word = start >> 6;
      const uint32_t last_word = end >> 6;
      const uint64_t head_mask = ~uint64_t{0} << (start & 63);
      const uint64_t tail_mask = ~uint64_t{0} >> (63 - (end & 63));
      for (uint32_t w = first_word; w <= last_word; ++w) {
        uint64_t mask = ~uint64_t{0};
        if (w == first_word) mask &= head_mask;
        if (w == last_word) mask &= tail_mask;
        const uint64_t bits = x->words()[w] & mask;
        out.owned_words[w] |= bits;
        count += std::popcount(bits);
      }
      if (stats != nullptr) stats->dense_words += DenseRangeWords(start, end);
    }
    if (stats != nullptr) stats->run_elems += runs.size() / 2;
    out.count = static_cast<uint32_t>(count);
    if (out.count == 0) return out;
    if (out.count >= kDenseThreshold) {
      out.kind = ContainerKind::kDense;
      return out;
    }
    ContainerOffsets(out, &offsets);
    return MakeContainer(a.key, offsets);
  }
  if (x->kind == ContainerKind::kRun && y->kind == ContainerKind::kRun) {
    // Intersection of two run lists is a run list: emit overlap segments.
    Container out;
    out.key = a.key;
    out.kind = ContainerKind::kRun;
    const auto ra = x->u16();
    const auto rb = y->u16();
    if (stats != nullptr) stats->run_elems += ra.size() / 2 + rb.size() / 2;
    uint64_t count = 0;
    size_t i = 0;
    size_t j = 0;
    while (i * 2 < ra.size() && j * 2 < rb.size()) {
      const uint32_t sa = ra[2 * i];
      const uint32_t ea = sa + ra[2 * i + 1];
      const uint32_t sb = rb[2 * j];
      const uint32_t eb = sb + rb[2 * j + 1];
      const uint32_t lo = std::max(sa, sb);
      const uint32_t hi = std::min(ea, eb);
      if (lo <= hi) {
        out.owned_u16.push_back(static_cast<uint16_t>(lo));
        out.owned_u16.push_back(static_cast<uint16_t>(hi - lo));
        count += hi - lo + 1;
      }
      if (ea < eb) {
        ++i;
      } else {
        ++j;
      }
    }
    out.count = static_cast<uint32_t>(count);
    return out;
  }
  // Array x {array, dense, run}: the result is at most the array's size
  // (< kDenseThreshold), so materialize offsets directly.
  CORRMINE_CHECK(x->kind == ContainerKind::kArray);
  const auto ax = x->u16();
  if (y->kind == ContainerKind::kArray) {
    const auto ay = y->u16();
    if (stats != nullptr) stats->array_elems += ax.size() + ay.size();
    offsets.reserve(std::min(ax.size(), ay.size()));
    size_t i = 0;
    size_t j = 0;
    while (i < ax.size() && j < ay.size()) {
      if (ax[i] == ay[j]) {
        offsets.push_back(ax[i]);
        ++i;
        ++j;
      } else if (ax[i] < ay[j]) {
        ++i;
      } else {
        ++j;
      }
    }
  } else if (y->kind == ContainerKind::kDense) {
    if (stats != nullptr) stats->probe_elems += ax.size();
    const uint64_t* words = y->words();
    for (const uint16_t off : ax) {
      if ((words[off >> 6] >> (off & 63)) & 1) offsets.push_back(off);
    }
  } else {  // array x run
    const auto runs = y->u16();
    if (stats != nullptr) {
      stats->array_elems += ax.size();
      stats->run_elems += runs.size() / 2;
    }
    size_t r = 0;
    for (const uint16_t v : ax) {
      while (r * 2 < runs.size() &&
             static_cast<uint32_t>(runs[r * 2]) + runs[r * 2 + 1] < v) {
        ++r;
      }
      if (r * 2 < runs.size() && runs[r * 2] <= v) offsets.push_back(v);
    }
  }
  return MakeContainer(a.key, offsets);
}

uint64_t CountingColumn::AndCount(const CountingColumn& other,
                                  ColumnOpStats* stats) const {
  CORRMINE_CHECK(num_rows_ == other.num_rows_)
      << "AndCount over mismatched row spaces: " << num_rows_
      << " != " << other.num_rows_;
  uint64_t count = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < containers_.size() && j < other.containers_.size()) {
    const uint32_t ka = containers_[i].key;
    const uint32_t kb = other.containers_[j].key;
    if (ka == kb) {
      count += AndCountContainers(containers_[i], other.containers_[j], stats);
      ++i;
      ++j;
    } else if (ka < kb) {
      ++i;
    } else {
      ++j;
    }
  }
  return count;
}

CountingColumn CountingColumn::And(const CountingColumn& other,
                                   ColumnOpStats* stats) const {
  CORRMINE_CHECK(num_rows_ == other.num_rows_)
      << "And over mismatched row spaces: " << num_rows_
      << " != " << other.num_rows_;
  CountingColumn out;
  out.num_rows_ = num_rows_;
  size_t i = 0;
  size_t j = 0;
  while (i < containers_.size() && j < other.containers_.size()) {
    const uint32_t ka = containers_[i].key;
    const uint32_t kb = other.containers_[j].key;
    if (ka == kb) {
      Container c = AndContainers(containers_[i], other.containers_[j], stats);
      if (c.count > 0) {
        out.total_count_ += c.count;
        out.containers_.push_back(std::move(c));
      }
      ++i;
      ++j;
    } else if (ka < kb) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

uint64_t CountingColumn::AndCountInto(const CountingColumn& a,
                                      const CountingColumn& b,
                                      CountingColumn* dst,
                                      ColumnOpStats* stats) {
  *dst = a.And(b, stats);
  return dst->Count();
}

void CountingColumn::AppendRows(const std::vector<uint32_t>& rows,
                                size_t new_num_rows) {
  CORRMINE_CHECK(new_num_rows >= num_rows_) << "row space cannot shrink";
  if (rows.empty()) {
    num_rows_ = new_num_rows;
    return;
  }
  CORRMINE_CHECK(rows.front() >= num_rows_)
      << "AppendRows may only add rows past the existing row space";
  std::vector<uint16_t> offsets;
  size_t i = 0;
  while (i < rows.size()) {
    const uint32_t key = rows[i] >> kBlockBits;
    offsets.clear();
    // Merge into the existing tail container when the first appended rows
    // land in its block (decoding materializes view payloads).
    if (!containers_.empty() && containers_.back().key == key) {
      ContainerOffsets(containers_.back(), &offsets);
      containers_.pop_back();
    }
    while (i < rows.size() && (rows[i] >> kBlockBits) == key) {
      CORRMINE_CHECK(rows[i] < new_num_rows)
          << "row " << rows[i] << " out of range " << new_num_rows;
      const uint16_t off =
          static_cast<uint16_t>(rows[i] & (kBlockSize - 1));
      CORRMINE_CHECK(offsets.empty() || off > offsets.back())
          << "appended rows must be strictly increasing";
      offsets.push_back(off);
      ++i;
    }
    containers_.push_back(MakeContainer(key, offsets));
  }
  total_count_ += rows.size();
  num_rows_ = new_num_rows;
}

size_t CountingColumn::MemoryBytes() const {
  size_t bytes = sizeof(*this) + containers_.capacity() * sizeof(Container);
  for (const Container& c : containers_) {
    bytes += c.owned_u16.capacity() * sizeof(uint16_t) +
             c.owned_words.capacity() * sizeof(uint64_t);
  }
  return bytes;
}

size_t CountingColumn::PayloadBytes() const {
  size_t bytes = 0;
  for (const Container& c : containers_) {
    bytes += (c.kind == ContainerKind::kDense)
                 ? kWordsPerDense * sizeof(uint64_t)
                 : c.u16().size() * sizeof(uint16_t);
  }
  return bytes;
}

std::vector<uint32_t> CountingColumn::ToRows() const {
  std::vector<uint32_t> rows;
  rows.reserve(total_count_);
  std::vector<uint16_t> offsets;
  for (const Container& c : containers_) {
    const uint32_t base = c.key << kBlockBits;
    ContainerOffsets(c, &offsets);
    for (const uint16_t off : offsets) {
      rows.push_back(base | off);
    }
  }
  return rows;
}

CountingColumn::ContainerView CountingColumn::container_view(size_t i) const {
  const Container& c = containers_[i];
  ContainerView view;
  view.key = c.key;
  view.kind = c.kind;
  view.count = c.count;
  if (c.kind == ContainerKind::kDense) {
    view.words = std::span<const uint64_t>(c.words(), kWordsPerDense);
  } else {
    view.u16 = c.u16();
  }
  return view;
}

namespace {

void AppendVarintU16(std::string* out, uint32_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

Status ReadVarintU16(const uint8_t* data, size_t len, size_t* pos,
                     uint32_t* value) {
  uint32_t v = 0;
  int shift = 0;
  while (*pos < len && shift <= 28) {
    const uint8_t byte = data[(*pos)++];
    v |= static_cast<uint32_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *value = v;
      return Status::OK();
    }
    shift += 7;
  }
  return Status::Corruption("CCS2: truncated varint payload");
}

}  // namespace

void EncodeU16DeltaVarint(CountingColumn::ContainerKind kind,
                          std::span<const uint16_t> payload,
                          std::string* out) {
  if (kind == CountingColumn::ContainerKind::kRun) {
    // (start, length-1) pairs with strictly increasing starts: delta-code
    // the starts, keep the lengths verbatim (they are already small).
    uint32_t prev_start = 0;
    for (size_t i = 0; i + 1 < payload.size(); i += 2) {
      const uint32_t start = payload[i];
      AppendVarintU16(out, i == 0 ? start : start - prev_start);
      AppendVarintU16(out, payload[i + 1]);
      prev_start = start;
    }
    return;
  }
  // Sorted array offsets: first value, then strictly positive deltas.
  uint32_t prev = 0;
  for (size_t i = 0; i < payload.size(); ++i) {
    const uint32_t v = payload[i];
    AppendVarintU16(out, i == 0 ? v : v - prev);
    prev = v;
  }
}

Status DecodeU16DeltaVarint(CountingColumn::ContainerKind kind,
                            const uint8_t* data, size_t len, size_t count,
                            std::vector<uint16_t>* out) {
  out->clear();
  size_t pos = 0;
  if (kind == CountingColumn::ContainerKind::kRun) {
    // The directory stores set rows, not the run count: decode pairs
    // until the payload is exhausted, then check the lengths add up.
    uint64_t decoded_rows = 0;
    uint32_t prev_start = 0;
    bool first = true;
    while (pos < len) {
      uint32_t delta = 0;
      uint32_t length_minus_1 = 0;
      Status st = ReadVarintU16(data, len, &pos, &delta);
      if (!st.ok()) return st;
      st = ReadVarintU16(data, len, &pos, &length_minus_1);
      if (!st.ok()) return st;
      const uint32_t start = first ? delta : prev_start + delta;
      if ((!first && delta == 0) || start > 0xffff ||
          start + length_minus_1 > 0xffff) {
        return Status::Corruption("CCS2: run payload out of range");
      }
      out->push_back(static_cast<uint16_t>(start));
      out->push_back(static_cast<uint16_t>(length_minus_1));
      decoded_rows += uint64_t{length_minus_1} + 1;
      prev_start = start;
      first = false;
    }
    if (decoded_rows != count) {
      return Status::Corruption("CCS2: run lengths do not sum to count");
    }
  } else {
    out->reserve(count);
    uint32_t prev = 0;
    bool first = true;
    while (out->size() < count) {
      uint32_t delta = 0;
      const Status st = ReadVarintU16(data, len, &pos, &delta);
      if (!st.ok()) return st;
      const uint32_t v = first ? delta : prev + delta;
      if ((!first && delta == 0) || v > 0xffff) {
        return Status::Corruption("CCS2: array payload not increasing u16");
      }
      out->push_back(static_cast<uint16_t>(v));
      prev = v;
      first = false;
    }
    if (pos != len) {
      return Status::Corruption("CCS2: trailing bytes after varint payload");
    }
  }
  return Status::OK();
}

ColumnStorageStats ComputeColumnStorageStats(const ColumnSource& source) {
  ColumnStorageStats stats;
  for (ItemId item = 0; item < source.num_columns(); ++item) {
    const CountingColumn& col = source.column(item);
    stats.payload_bytes += col.PayloadBytes();
    for (size_t i = 0; i < col.num_containers(); ++i) {
      switch (col.container_view(i).kind) {
        case CountingColumn::ContainerKind::kArray:
          ++stats.array_containers;
          break;
        case CountingColumn::ContainerKind::kDense:
          ++stats.dense_containers;
          break;
        case CountingColumn::ContainerKind::kRun:
          ++stats.run_containers;
          break;
      }
    }
  }
  return stats;
}

uint64_t CountAllPresentColumns(const ColumnSource& source, const Itemset& s,
                                ColumnOpStats* stats) {
  CORRMINE_CHECK(!s.empty()) << "CountAllPresent requires a non-empty set";
  if (s.size() == 1) return source.column(s.item(0)).Count();
  // Fold rarest-first so the intermediate intersections stay small. The
  // order changes cost only — intersection counts are exact either way —
  // and is itself deterministic (count, then item id).
  std::vector<ItemId> items(s.items().begin(), s.items().end());
  std::sort(items.begin(), items.end(), [&](ItemId a, ItemId b) {
    const uint64_t ca = source.column(a).Count();
    const uint64_t cb = source.column(b).Count();
    if (ca != cb) return ca < cb;
    return a < b;
  });
  if (items.size() == 2) {
    return source.column(items[0]).AndCount(source.column(items[1]), stats);
  }
  CountingColumn acc =
      source.column(items[0]).And(source.column(items[1]), stats);
  for (size_t i = 2; i + 1 < items.size(); ++i) {
    acc = acc.And(source.column(items[i]), stats);
  }
  return acc.AndCount(source.column(items.back()), stats);
}

void ExecuteBlockedGroupsColumns(const BlockedCountPlan& plan,
                                 size_t group_begin, size_t group_end,
                                 const ColumnSource& source,
                                 std::span<uint64_t> counts,
                                 ColumnOpStats* stats) {
  CORRMINE_CHECK(counts.size() == plan.num_queries)
      << "counts span does not match the plan";
  for (size_t g = group_begin; g < group_end; ++g) {
    const BlockedCountPlan::Group& group = plan.groups[g];
    if (stats != nullptr) {
      ++stats->groups;
      stats->queries += group.self_queries.size() + group.ext_queries.size();
    }
    // Size-1 prefixes alias the item column; larger prefixes fold into a
    // materialized intersection once per group.
    const CountingColumn* block = &source.column(group.prefix.item(0));
    CountingColumn materialized;
    for (size_t i = 1; i < group.prefix.size(); ++i) {
      materialized = block->And(source.column(group.prefix.item(i)), stats);
      block = &materialized;
    }
    const uint64_t self_count = block->Count();
    for (const uint32_t slot : group.self_queries) {
      counts[slot] = self_count;
    }
    for (size_t i = 0; i < group.ext_items.size(); ++i) {
      counts[group.ext_queries[i]] =
          block->AndCount(source.column(group.ext_items[i]), stats);
    }
  }
}

CompressedVerticalIndex::CompressedVerticalIndex(const TransactionDatabase& db)
    : num_baskets_(db.num_baskets()) {
  std::vector<std::vector<uint32_t>> rows(db.num_items());
  for (ItemId item = 0; item < db.num_items(); ++item) {
    rows[item].reserve(db.ItemCount(item));
  }
  for (size_t b = 0; b < db.num_baskets(); ++b) {
    for (const ItemId item : db.basket(b)) {
      rows[item].push_back(static_cast<uint32_t>(b));
    }
  }
  columns_.reserve(rows.size());
  for (const std::vector<uint32_t>& item_rows : rows) {
    columns_.emplace_back(num_baskets_, item_rows);
  }
  empty_ = CountingColumn(num_baskets_, {});
}

CompressedVerticalIndex::CompressedVerticalIndex(
    size_t num_baskets, std::vector<std::vector<uint32_t>> item_rows)
    : num_baskets_(num_baskets) {
  columns_.reserve(item_rows.size());
  for (std::vector<uint32_t>& rows : item_rows) {
    columns_.emplace_back(num_baskets_, rows);
    // Release each row list as soon as its column is built: the spill pass
    // hands over partition-sized row data and sizes its transient around
    // this incremental handback.
    rows = {};
  }
  empty_ = CountingColumn(num_baskets_, {});
}

void CompressedVerticalIndex::AppendFrom(const TransactionDatabase& db,
                                         size_t from_row) {
  CORRMINE_CHECK(from_row == num_baskets_)
      << "AppendFrom must continue from the current row count";
  const size_t new_num_rows = db.num_baskets();
  std::vector<std::vector<uint32_t>> new_rows(db.num_items());
  for (size_t b = from_row; b < new_num_rows; ++b) {
    for (const ItemId item : db.basket(b)) {
      new_rows[item].push_back(static_cast<uint32_t>(b));
    }
  }
  // Grow the column space first (new items existed in no prior row), then
  // fold every column forward so row counts stay uniform.
  while (columns_.size() < new_rows.size()) {
    columns_.emplace_back(num_baskets_, std::vector<uint32_t>{});
  }
  for (size_t item = 0; item < columns_.size(); ++item) {
    columns_[item].AppendRows(
        item < new_rows.size() ? new_rows[item] : std::vector<uint32_t>{},
        new_num_rows);
  }
  num_baskets_ = new_num_rows;
  empty_ = CountingColumn(num_baskets_, {});
}

uint64_t CompressedVerticalIndex::CountAllPresent(const Itemset& s) const {
  return CountAllPresentColumns(*this, s);
}

size_t CompressedVerticalIndex::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const CountingColumn& col : columns_) {
    bytes += col.MemoryBytes();
  }
  return bytes;
}

const CountingColumn& CompressedVerticalIndex::column(ItemId item) const {
  if (static_cast<size_t>(item) < columns_.size()) return columns_[item];
  return empty_;
}

CompressedCountProvider::CompressedCountProvider(const TransactionDatabase& db)
    : num_rows_total_(db.num_baskets()) {
  owned_.emplace_back(db);
  sources_.push_back(&owned_.front());
}

CompressedCountProvider::CompressedCountProvider(
    const ShardedTransactionDatabase& db)
    : num_rows_total_(db.num_baskets()) {
  owned_.reserve(db.num_shards());
  for (size_t k = 0; k < db.num_shards(); ++k) {
    owned_.emplace_back(db.shard(k));
  }
  sources_.reserve(owned_.size());
  for (const CompressedVerticalIndex& index : owned_) {
    sources_.push_back(&index);
  }
}

CompressedCountProvider::CompressedCountProvider(
    std::vector<const ColumnSource*> sources)
    : sources_(std::move(sources)) {
  for (const ColumnSource* source : sources_) {
    num_rows_total_ += source->num_rows();
  }
}

void CompressedCountProvider::AppendFrom(const ShardedTransactionDatabase& db) {
  CORRMINE_CHECK(!owned_.empty())
      << "AppendFrom is unavailable for externally owned column sources";
  CORRMINE_CHECK(db.num_shards() == owned_.size())
      << "AppendFrom across a different shard layout";
  for (size_t k = 0; k < owned_.size(); ++k) {
    owned_[k].AppendFrom(db.shard(k), owned_[k].num_baskets());
  }
  num_rows_total_ = db.num_baskets();
}

uint64_t CompressedCountProvider::IndexMemoryBytes() const {
  uint64_t bytes = 0;
  for (const CompressedVerticalIndex& index : owned_) {
    bytes += index.MemoryBytes();
  }
  return bytes;
}

ColumnStorageStats CompressedCountProvider::StorageStats() const {
  ColumnStorageStats total;
  for (const ColumnSource* source : sources_) {
    const ColumnStorageStats s = ComputeColumnStorageStats(*source);
    total.array_containers += s.array_containers;
    total.dense_containers += s.dense_containers;
    total.run_containers += s.run_containers;
    total.payload_bytes += s.payload_bytes;
  }
  return total;
}

uint64_t CompressedCountProvider::CountAllPresentImpl(const Itemset& s) const {
  ColumnOpStats stats;
  uint64_t total = 0;
  for (const ColumnSource* source : sources_) {
    total += CountAllPresentColumns(*source, s, &stats);
  }
  BumpColumnKernelCounters(stats);
  return total;
}

void CompressedCountProvider::CountAllPresentBatchImpl(
    std::span<const Itemset> queries, std::span<uint64_t> counts,
    ThreadPool* pool) const {
  const size_t num_queries = queries.size();
  const size_t num_shards = sources_.size();
  // Prefix-blocked column execution mirroring ShardedCountProvider: one
  // plan from the query stream, (shard x group-block) morsels on the pool,
  // per-shard partial sums fanned in shard order — exact integers for any
  // thread count or morsel schedule, so K-invariance holds by construction.
  const BlockedCountPlan plan = BlockedCountPlan::Build(queries);
  const size_t blocks =
      (plan.groups.size() + kColumnGroupBlock - 1) / kColumnGroupBlock;
  std::vector<std::vector<uint64_t>> partial(
      num_shards, std::vector<uint64_t>(num_queries, 0));
  Status status = ParallelForSlots(
      pool, num_shards * blocks, 1,
      [&](size_t /*slot*/, size_t begin, size_t end) -> Status {
        for (size_t task = begin; task < end; ++task) {
          const size_t shard = task / blocks;
          const size_t block = task % blocks;
          const size_t g_begin = block * kColumnGroupBlock;
          const size_t g_end =
              std::min(g_begin + kColumnGroupBlock, plan.groups.size());
          TraceScope block_span("column.count_block", -1,
                                static_cast<int64_t>(shard),
                                static_cast<int64_t>(g_end - g_begin));
          ColumnOpStats op_stats;
          ExecuteBlockedGroupsColumns(plan, g_begin, g_end, *sources_[shard],
                                      partial[shard], &op_stats);
          BumpColumnKernelCounters(op_stats);
        }
        return Status::OK();
      });
  CORRMINE_CHECK(status.ok()) << status.ToString();
  std::fill(counts.begin(), counts.end(), 0);
  for (size_t shard = 0; shard < num_shards; ++shard) {
    for (size_t q = 0; q < num_queries; ++q) {
      counts[q] += partial[shard][q];
    }
  }
}

}  // namespace corrmine
