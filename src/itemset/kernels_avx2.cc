// AVX2 counting kernels: 256-bit AND streams with the Muła SHUFB-LUT
// popcount (per-byte nibble lookup, summed through PSADBW into four 64-bit
// lanes). Compiled with -mavx2 -mpopcnt via per-file CMake flags — never
// globally — and only ever *called* after the dispatcher's runtime
// __builtin_cpu_supports checks, so the rest of the binary stays baseline.
//
// Loads are unaligned (std::vector<uint64_t> storage guarantees nothing
// beyond alignof(uint64_t)); tails shorter than one vector fall back to the
// scalar word loop, which -mpopcnt turns into hardware POPCNT here.

#include <cstddef>
#include <cstdint>

#include "itemset/kernels.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <bit>

namespace corrmine {

namespace {

#include "itemset/kernels_sparse_inl.h"

constexpr size_t kLaneWords = 4;  // 256 bits.

/// Per-64-bit-lane popcount of v (Muła): nibble LUT via PSHUFB, then
/// PSADBW against zero folds the 32 byte counts into 4 u64 sums.
inline __m256i Popcount256(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                         _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

inline uint64_t HorizontalSum(__m256i acc) {
  return static_cast<uint64_t>(_mm256_extract_epi64(acc, 0)) +
         static_cast<uint64_t>(_mm256_extract_epi64(acc, 1)) +
         static_cast<uint64_t>(_mm256_extract_epi64(acc, 2)) +
         static_cast<uint64_t>(_mm256_extract_epi64(acc, 3));
}

uint64_t Avx2Popcount(const uint64_t* words, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + kLaneWords <= n; i += kLaneWords) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + i));
    acc = _mm256_add_epi64(acc, Popcount256(v));
  }
  uint64_t total = HorizontalSum(acc);
  for (; i < n; ++i) total += std::popcount(words[i]);
  return total;
}

uint64_t Avx2AndCount(const uint64_t* a, const uint64_t* b, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + kLaneWords <= n; i += kLaneWords) {
    const __m256i v = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)));
    acc = _mm256_add_epi64(acc, Popcount256(v));
  }
  uint64_t total = HorizontalSum(acc);
  for (; i < n; ++i) total += std::popcount(a[i] & b[i]);
  return total;
}

uint64_t Avx2MultiAndCount(const uint64_t* const* ops, size_t k, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + kLaneWords <= n; i += kLaneWords) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ops[0] + i));
    for (size_t j = 1; j < k; ++j) {
      if (_mm256_testz_si256(v, v)) break;  // Chunk already empty.
      v = _mm256_and_si256(
          v, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ops[j] + i)));
    }
    acc = _mm256_add_epi64(acc, Popcount256(v));
  }
  uint64_t total = HorizontalSum(acc);
  for (; i < n; ++i) {
    uint64_t w = ops[0][i];
    for (size_t j = 1; j < k && w != 0; ++j) w &= ops[j][i];
    total += std::popcount(w);
  }
  return total;
}

void Avx2AndInplace(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + kLaneWords <= n; i += kLaneWords) {
    const __m256i v = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), v);
  }
  for (; i < n; ++i) dst[i] &= src[i];
}

uint64_t Avx2AndCountInto(uint64_t* dst, const uint64_t* a,
                          const uint64_t* b, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + kLaneWords <= n; i += kLaneWords) {
    const __m256i v = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), v);
    acc = _mm256_add_epi64(acc, Popcount256(v));
  }
  uint64_t total = HorizontalSum(acc);
  for (; i < n; ++i) {
    const uint64_t w = a[i] & b[i];
    dst[i] = w;
    total += std::popcount(w);
  }
  return total;
}

void Avx2AndBlock(uint64_t* dst, const uint64_t* const* ops, size_t k,
                  size_t n) {
  size_t i = 0;
  for (; i + kLaneWords <= n; i += kLaneWords) {
    __m256i v = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ops[0] + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ops[1] + i)));
    for (size_t j = 2; j < k; ++j) {
      v = _mm256_and_si256(
          v, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ops[j] + i)));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), v);
  }
  for (; i < n; ++i) {
    uint64_t w = ops[0][i] & ops[1][i];
    for (size_t j = 2; j < k; ++j) w &= ops[j][i];
    dst[i] = w;
  }
}

constexpr CountingKernels kAvx2Kernels = {
    KernelIsa::kAvx2, "avx2",           Avx2Popcount,
    Avx2AndCount,     Avx2MultiAndCount, Avx2AndInplace,
    Avx2AndCountInto, Avx2AndBlock,
    SparseArrayIntersectCount, SparseArrayDenseCount,
};

}  // namespace

const CountingKernels* Avx2Kernels() { return &kAvx2Kernels; }

}  // namespace corrmine

#else  // !defined(__AVX2__)

namespace corrmine {

// TU built without AVX2 flags (non-x86 target, or the toolchain lacks
// -mavx2): the factory reports "not compiled in".
const CountingKernels* Avx2Kernels() { return nullptr; }

}  // namespace corrmine

#endif  // defined(__AVX2__)
