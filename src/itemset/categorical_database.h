#ifndef CORRMINE_ITEMSET_CATEGORICAL_DATABASE_H_
#define CORRMINE_ITEMSET_CATEGORICAL_DATABASE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status_or.h"

namespace corrmine {

/// A multi-valued attribute: a name plus the labels of its categories.
/// This is the "non-collapsed" data model of the paper's Section 5.1 —
/// instead of flattening census answers to binary items, each question
/// keeps its full category set so finer-grained dependency is visible
/// (e.g. separating "does not drive" from "carpools").
struct CategoricalAttribute {
  std::string name;
  std::vector<std::string> categories;

  int arity() const { return static_cast<int>(categories.size()); }
};

/// Rows of categorical values: row r stores, for each attribute a, the
/// index of the category observed. The analogue of TransactionDatabase for
/// multi-valued basket data.
class CategoricalDatabase {
 public:
  /// Every attribute must have at least two categories.
  static StatusOr<CategoricalDatabase> Create(
      std::vector<CategoricalAttribute> attributes);

  /// Appends a row; `values[a]` must be a valid category index of
  /// attribute a and the row must cover every attribute.
  Status AddRow(std::vector<uint8_t> values);

  size_t num_rows() const { return rows_.size(); }
  int num_attributes() const { return static_cast<int>(attributes_.size()); }
  const CategoricalAttribute& attribute(int a) const {
    return attributes_[a];
  }

  uint8_t value(size_t row, int attribute) const {
    return rows_[row][attribute];
  }

  /// Count of rows where attribute `a` takes category `v`.
  uint64_t CategoryCount(int a, uint8_t v) const {
    return category_counts_[a][v];
  }

 private:
  explicit CategoricalDatabase(std::vector<CategoricalAttribute> attributes);

  std::vector<CategoricalAttribute> attributes_;
  std::vector<std::vector<uint8_t>> rows_;
  std::vector<std::vector<uint64_t>> category_counts_;
};

}  // namespace corrmine

#endif  // CORRMINE_ITEMSET_CATEGORICAL_DATABASE_H_
