#ifndef CORRMINE_ITEMSET_ITEMSET_H_
#define CORRMINE_ITEMSET_ITEMSET_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace corrmine {

/// Items are dense integer ids assigned by an ItemDictionary (or directly by
/// a generator). The id space is expected to be contiguous from 0.
using ItemId = uint32_t;

/// An itemset: a sorted, duplicate-free set of item ids. Value type with
/// cheap copies for the small sets mining works with (sizes 1..~10).
class Itemset {
 public:
  Itemset() = default;

  /// Builds from arbitrary-ordered items; sorts and de-duplicates.
  explicit Itemset(std::vector<ItemId> items);
  Itemset(std::initializer_list<ItemId> items);

  Itemset(const Itemset&) = default;
  Itemset& operator=(const Itemset&) = default;
  Itemset(Itemset&&) noexcept = default;
  Itemset& operator=(Itemset&&) noexcept = default;

  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  ItemId item(size_t i) const { return items_[i]; }
  const std::vector<ItemId>& items() const { return items_; }

  std::vector<ItemId>::const_iterator begin() const { return items_.begin(); }
  std::vector<ItemId>::const_iterator end() const { return items_.end(); }

  bool Contains(ItemId item) const;

  /// True if every item of `other` is in this set.
  bool ContainsAll(const Itemset& other) const;

  /// Set union (result stays sorted/unique).
  Itemset Union(const Itemset& other) const;

  /// This set with one extra item (no-op if already present).
  Itemset WithItem(ItemId item) const;

  /// This set minus one item (no-op if absent).
  Itemset WithoutItem(ItemId item) const;

  /// All subsets obtained by removing exactly one item, in removal order.
  std::vector<Itemset> SubsetsMissingOne() const;

  /// FNV-1a style hash of the sorted contents; stable across runs.
  uint64_t Hash() const;

  /// "{3, 7, 12}" — for logs and test failure messages.
  std::string ToString() const;

  friend bool operator==(const Itemset& a, const Itemset& b) {
    return a.items_ == b.items_;
  }
  friend bool operator!=(const Itemset& a, const Itemset& b) {
    return !(a == b);
  }
  /// Lexicographic order; usable as a map key.
  friend bool operator<(const Itemset& a, const Itemset& b) {
    return a.items_ < b.items_;
  }

 private:
  std::vector<ItemId> items_;
};

/// Hash functor for unordered containers keyed by Itemset.
struct ItemsetHasher {
  size_t operator()(const Itemset& s) const {
    return static_cast<size_t>(s.Hash());
  }
};

}  // namespace corrmine

#endif  // CORRMINE_ITEMSET_ITEMSET_H_
