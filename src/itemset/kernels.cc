#include "itemset/kernels.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "itemset/transaction_database.h"

namespace corrmine {

namespace {

/// Can this processor execute `isa`? Compile-in (factory non-null) and
/// run-on (this check) are independent: a binary built on an AVX-512
/// machine must still run — on its scalar path — on an older CPU.
bool CpuSupports(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kScalar:
      return true;
    case KernelIsa::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2") &&
             __builtin_cpu_supports("popcnt");
#else
      return false;
#endif
    case KernelIsa::kAvx512:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512bw") &&
             __builtin_cpu_supports("avx512vpopcntdq");
#else
      return false;
#endif
    case KernelIsa::kNeon:
#if defined(__aarch64__)
      return true;  // NEON is baseline on AArch64.
#else
      return false;
#endif
  }
  return false;
}

/// Highest-throughput kernel this process can run.
const CountingKernels* BestKernels() {
  for (const CountingKernels* k :
       {Avx512Kernels(), Avx2Kernels(), NeonKernels()}) {
    if (k != nullptr && CpuSupports(k->isa)) return k;
  }
  return ScalarKernels();
}

std::atomic<const CountingKernels*> g_active{nullptr};

std::mutex g_requested_mu;
std::string& RequestedStorage() {
  static std::string requested = "auto";
  return requested;
}

/// One-time CORRMINE_KERNEL resolution. Runs only if nothing (the CLI
/// --kernel flag, a test) called SetActiveKernel first — an explicit
/// in-process choice outranks the environment.
void InitFromEnvironment() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* env = std::getenv("CORRMINE_KERNEL");
    if (env != nullptr && *env != '\0') {
      Status status = SetActiveKernel(env);
      if (!status.ok()) {
        std::fprintf(stderr, "CORRMINE_KERNEL ignored: %s\n",
                     status.ToString().c_str());
      }
    }
    const CountingKernels* expected = nullptr;
    g_active.compare_exchange_strong(expected, BestKernels(),
                                     std::memory_order_acq_rel);
  });
}

}  // namespace

const CountingKernels& ActiveKernels() {
  const CountingKernels* active = g_active.load(std::memory_order_acquire);
  if (active != nullptr) return *active;
  InitFromEnvironment();
  return *g_active.load(std::memory_order_acquire);
}

const char* ActiveKernelName() { return ActiveKernels().name; }

std::string RequestedKernelName() {
  ActiveKernels();  // Ensure the environment has been consulted.
  std::lock_guard<std::mutex> lock(g_requested_mu);
  return RequestedStorage();
}

Status SetActiveKernel(std::string_view name) {
  if (name.empty() || name == "auto") {
    g_active.store(BestKernels(), std::memory_order_release);
    std::lock_guard<std::mutex> lock(g_requested_mu);
    RequestedStorage() = "auto";
    return Status::OK();
  }
  const std::array<const CountingKernels* (*)(), 4> factories = {
      ScalarKernels, Avx2Kernels, Avx512Kernels, NeonKernels};
  const std::array<const char*, 4> known = {"scalar", "avx2", "avx512",
                                            "neon"};
  for (size_t i = 0; i < known.size(); ++i) {
    if (name != known[i]) continue;
    const CountingKernels* kernels = factories[i]();
    if (kernels == nullptr) {
      return Status::InvalidArgument(
          "kernel \"" + std::string(name) +
          "\" is not compiled into this binary (available: " +
          AvailableKernelNames() + ")");
    }
    if (!CpuSupports(kernels->isa)) {
      return Status::InvalidArgument(
          "kernel \"" + std::string(name) +
          "\" is not supported by this CPU (available: " +
          AvailableKernelNames() + ")");
    }
    g_active.store(kernels, std::memory_order_release);
    std::lock_guard<std::mutex> lock(g_requested_mu);
    RequestedStorage() = std::string(name);
    return Status::OK();
  }
  return Status::InvalidArgument("unknown kernel \"" + std::string(name) +
                                 "\" (available: " + AvailableKernelNames() +
                                 ", or \"auto\")");
}

std::vector<const CountingKernels*> AvailableKernels() {
  std::vector<const CountingKernels*> available;
  for (const CountingKernels* k : {ScalarKernels(), NeonKernels(),
                                   Avx2Kernels(), Avx512Kernels()}) {
    if (k != nullptr && CpuSupports(k->isa)) available.push_back(k);
  }
  return available;
}

std::string AvailableKernelNames() {
  std::string names;
  for (const CountingKernels* k : AvailableKernels()) {
    if (!names.empty()) names += ", ";
    names += k->name;
  }
  return names;
}

BlockedCountPlan BlockedCountPlan::Build(std::span<const Itemset> queries) {
  BlockedCountPlan plan;
  plan.num_queries = queries.size();
  std::unordered_map<Itemset, size_t, ItemsetHasher> group_ids;
  auto group_index = [&](const Itemset& key) -> size_t {
    auto [it, inserted] = group_ids.emplace(key, plan.groups.size());
    if (inserted) {
      plan.groups.emplace_back();
      plan.groups.back().prefix = key;
    }
    return it->second;
  };
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const Itemset& s = queries[qi];
    CORRMINE_CHECK(!s.empty()) << "blocked plan requires non-empty queries";
    if (s.size() == 1) {
      // A singleton is its own prefix: answered by one popcount of the
      // (possibly shared) group's prefix block.
      plan.groups[group_index(s)].self_queries.push_back(
          static_cast<uint32_t>(qi));
    } else {
      const ItemId last = s.item(s.size() - 1);
      Group& group = plan.groups[group_index(s.WithoutItem(last))];
      group.ext_items.push_back(last);
      group.ext_queries.push_back(static_cast<uint32_t>(qi));
    }
  }
  return plan;
}

void ExecuteBlockedGroups(const BlockedCountPlan& plan, size_t group_begin,
                          size_t group_end, const VerticalIndex& index,
                          std::span<uint64_t> counts, BlockedExecStats* stats,
                          BlockedExecScratch* scratch) {
  CORRMINE_CHECK(counts.size() == plan.num_queries)
      << "blocked plan answers " << plan.num_queries << " queries into "
      << counts.size() << " slots";
  const CountingKernels& kernels = ActiveKernels();
  const size_t words = index.words_per_bitmap();

  // Scratch reused across groups. Morsel callers pass a per-slot arena so
  // the buffers survive across every morsel that slot runs; bare callers
  // get a thread-local fallback.
  thread_local BlockedExecScratch tls_scratch;
  BlockedExecScratch& s = scratch != nullptr ? *scratch : tls_scratch;
  std::vector<uint64_t>& tile = s.tile;
  if (tile.size() < kKernelTileWords) tile.resize(kKernelTileWords);
  std::array<const uint64_t*, 32> prefix_cols;
  std::array<const uint64_t*, 32> tile_ops;
  std::vector<const uint64_t*>& ext_cols = s.ext_cols;
  std::vector<uint64_t>& ext_acc = s.ext_acc;

  for (size_t gi = group_begin; gi < group_end; ++gi) {
    const BlockedCountPlan::Group& group = plan.groups[gi];
    const size_t p = group.prefix.size();
    CORRMINE_CHECK(p >= 1 && p <= prefix_cols.size())
        << "prefix size " << p << " out of kernel range";
    for (size_t i = 0; i < p; ++i) {
      prefix_cols[i] = index.item_bitmap(group.prefix.item(i)).words().data();
    }
    const size_t num_ext = group.ext_items.size();
    ext_cols.resize(num_ext);
    for (size_t j = 0; j < num_ext; ++j) {
      ext_cols[j] = index.item_bitmap(group.ext_items[j]).words().data();
    }
    ext_acc.assign(num_ext, 0);
    uint64_t self_acc = 0;
    const bool has_self = !group.self_queries.empty();

    for (size_t w0 = 0; w0 < words; w0 += kKernelTileWords) {
      const size_t wn = std::min(kKernelTileWords, words - w0);
      const uint64_t* block;
      if (p == 1) {
        block = prefix_cols[0] + w0;
      } else {
        for (size_t i = 0; i < p; ++i) tile_ops[i] = prefix_cols[i] + w0;
        kernels.and_block(tile.data(), tile_ops.data(), p, wn);
        block = tile.data();
        if (stats != nullptr) {
          stats->block_and_words += (p - 1) * static_cast<uint64_t>(wn);
        }
      }
      if (has_self) {
        self_acc += kernels.popcount(block, wn);
        if (stats != nullptr) stats->popcount_words += wn;
      }
      for (size_t j = 0; j < num_ext; ++j) {
        ext_acc[j] += kernels.and_count(block, ext_cols[j] + w0, wn);
      }
      if (stats != nullptr) {
        stats->and_words += num_ext * static_cast<uint64_t>(wn);
      }
    }

    for (uint32_t q : group.self_queries) counts[q] = self_acc;
    for (size_t j = 0; j < num_ext; ++j) {
      counts[group.ext_queries[j]] = ext_acc[j];
    }
    if (stats != nullptr) {
      ++stats->groups;
      stats->queries += num_ext + group.self_queries.size();
    }
  }
}

void BumpKernelCounters(const BlockedExecStats& stats) {
  struct Handles {
    Counter* groups;
    Counter* queries;
    Counter* and_words;
    Counter* block_and_words;
    Counter* popcount_words;
  };
  static const Handles handles = [] {
    MetricsRegistry& registry = MetricsRegistry::Global();
    return Handles{registry.GetCounter("kernel.blocked_groups"),
                   registry.GetCounter("kernel.blocked_queries"),
                   registry.GetCounter("kernel.and_words"),
                   registry.GetCounter("kernel.block_and_words"),
                   registry.GetCounter("kernel.popcount_words")};
  }();
  handles.groups->Add(stats.groups);
  handles.queries->Add(stats.queries);
  handles.and_words->Add(stats.and_words);
  handles.block_and_words->Add(stats.block_and_words);
  handles.popcount_words->Add(stats.popcount_words);
}

void BumpColumnKernelCounters(const ColumnOpStats& stats) {
  struct Handles {
    Counter* groups;
    Counter* queries;
    Counter* dense_words;
    Counter* array_elems;
    Counter* probe_elems;
    Counter* run_elems;
  };
  static const Handles handles = [] {
    MetricsRegistry& registry = MetricsRegistry::Global();
    return Handles{registry.GetCounter("kernel.column_groups"),
                   registry.GetCounter("kernel.column_queries"),
                   registry.GetCounter("kernel.column_dense_words"),
                   registry.GetCounter("kernel.column_array_elems"),
                   registry.GetCounter("kernel.column_probe_elems"),
                   registry.GetCounter("kernel.column_run_elems")};
  }();
  handles.groups->Add(stats.groups);
  handles.queries->Add(stats.queries);
  handles.dense_words->Add(stats.dense_words);
  handles.array_elems->Add(stats.array_elems);
  handles.probe_elems->Add(stats.probe_elems);
  handles.run_elems->Add(stats.run_elems);
}

}  // namespace corrmine
