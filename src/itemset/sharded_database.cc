#include "itemset/sharded_database.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "itemset/kernels.h"

namespace corrmine {

namespace {

/// Prefix groups per (shard, block) task in a parallel batch. Blocks of
/// the group axis give the pool work to steal even at small K, while
/// different shards write to different partial arrays — no two tasks ever
/// share a slot. The blocked plan is built once and shared read-only
/// across every shard (grouping depends only on the query stream).
constexpr size_t kShardGroupBlock = 64;

}  // namespace

ShardedTransactionDatabase::ShardedTransactionDatabase(ItemId num_items,
                                                       size_t num_shards)
    : num_items_(num_items) {
  if (num_shards == 0) num_shards = 1;
  shards_.reserve(num_shards);
  for (size_t k = 0; k < num_shards; ++k) shards_.emplace_back(num_items);
}

ShardedTransactionDatabase ShardedTransactionDatabase::Partition(
    const TransactionDatabase& db, size_t num_shards) {
  ShardedTransactionDatabase out(db.num_items(), num_shards);
  for (size_t row = 0; row < db.num_baskets(); ++row) {
    Status status = out.AddBasket(db.basket(row));
    CORRMINE_CHECK(status.ok()) << status.ToString();
  }
  out.dictionary_ = db.dictionary();
  return out;
}

size_t ShardedTransactionDatabase::ResolveShardCount(int requested) {
  if (requested > 0) return static_cast<size_t>(requested);
  if (requested < 0) return 1;
  // Auto-sharding matches the usable core count — affinity- and
  // cgroup-clamped, so containers don't fragment the data into more shards
  // than they have CPUs to scan them.
  return static_cast<size_t>(ThreadPool::UsableHardwareConcurrency());
}

Status ShardedTransactionDatabase::AddBasket(std::vector<ItemId> items) {
  TransactionDatabase& target = shards_[next_row_ % shards_.size()];
  CORRMINE_RETURN_NOT_OK(target.AddBasket(std::move(items)));
  ++next_row_;
  return Status::OK();
}

Status ShardedTransactionDatabase::AppendBatch(
    std::vector<std::vector<ItemId>> baskets) {
  for (std::vector<ItemId>& basket : baskets) {
    CORRMINE_RETURN_NOT_OK(AddBasket(std::move(basket)));
  }
  return Status::OK();
}

Status ShardedTransactionDatabase::GrowItemSpace(ItemId num_items) {
  if (num_items < num_items_) {
    return Status::InvalidArgument(
        "item space cannot shrink: " + std::to_string(num_items) + " < " +
        std::to_string(num_items_));
  }
  for (TransactionDatabase& shard : shards_) {
    CORRMINE_RETURN_NOT_OK(shard.GrowItemSpace(num_items));
  }
  num_items_ = num_items;
  return Status::OK();
}

uint64_t ShardedTransactionDatabase::ItemCount(ItemId item) const {
  uint64_t total = 0;
  for (const TransactionDatabase& shard : shards_) {
    total += shard.ItemCount(item);
  }
  return total;
}

uint64_t ShardedTransactionDatabase::TotalItemOccurrences() const {
  uint64_t total = 0;
  for (const TransactionDatabase& shard : shards_) {
    total += shard.TotalItemOccurrences();
  }
  return total;
}

TransactionDatabase ShardedTransactionDatabase::Flatten() const {
  TransactionDatabase out(num_items_);
  for (uint64_t row = 0; row < next_row_; ++row) {
    Status status = out.AddBasket(basket(row));
    CORRMINE_CHECK(status.ok()) << status.ToString();
  }
  out.dictionary() = dictionary_;
  return out;
}

ShardedCountProvider::ShardedCountProvider(
    const ShardedTransactionDatabase& db)
    : num_baskets_(db.num_baskets()),
      shard_batch_ns_(
          MetricsRegistry::Global().GetHistogram("sharded.shard_batch_ns")),
      batch_imbalance_(MetricsRegistry::Global().GetGauge(
          "sharded.batch_imbalance_x1000")) {
  indexes_.reserve(db.num_shards());
  for (size_t k = 0; k < db.num_shards(); ++k) {
    indexes_.emplace_back(db.shard(k));
  }
  MetricsRegistry::Global().GetGauge("sharded.shards")
      ->Set(static_cast<int64_t>(indexes_.size()));
  MetricsRegistry::Global().GetGauge("mem.shard_index_bytes")
      ->Set(static_cast<int64_t>(IndexMemoryBytes()));
}

void ShardedCountProvider::AppendFrom(const ShardedTransactionDatabase& db) {
  CORRMINE_CHECK(db.num_shards() == indexes_.size())
      << "AppendFrom across a different shard layout";
  for (size_t k = 0; k < indexes_.size(); ++k) {
    indexes_[k].AppendFrom(db.shard(k), indexes_[k].num_baskets());
  }
  num_baskets_ = db.num_baskets();
  MetricsRegistry::Global().GetGauge("mem.shard_index_bytes")
      ->Set(static_cast<int64_t>(IndexMemoryBytes()));
}

uint64_t ShardedCountProvider::IndexMemoryBytes() const {
  uint64_t bytes = 0;
  for (const VerticalIndex& index : indexes_) {
    bytes += static_cast<uint64_t>(index.num_items()) *
             index.words_per_bitmap() * sizeof(uint64_t);
  }
  return bytes;
}

uint64_t ShardedCountProvider::CountAllPresentImpl(const Itemset& s) const {
  uint64_t total = 0;
  for (const VerticalIndex& index : indexes_) {
    total += index.CountAllPresent(s);
  }
  return total;
}

void ShardedCountProvider::CountAllPresentBatchImpl(
    std::span<const Itemset> queries, std::span<uint64_t> counts,
    ThreadPool* pool) const {
  const size_t num_queries = queries.size();
  const size_t num_shards = indexes_.size();
  // Prefix-blocked execution per shard (DESIGN.md §9): the plan is built
  // once from the query stream and every shard runs the same groups over
  // its own vertical index, so the per-shard work is K short streaming
  // passes instead of K full AND chains per query.
  BlockedCountPlan plan = BlockedCountPlan::Build(queries);
  const size_t blocks =
      (plan.groups.size() + kShardGroupBlock - 1) / kShardGroupBlock;
  std::vector<std::vector<uint64_t>> partial(
      num_shards, std::vector<uint64_t>(num_queries, 0));
  // Per-shard wall time across this batch's (shard, block) tasks. Workers
  // on different shards add to different slots; same-shard blocks may race
  // benignly on the relaxed add. Compiled out with the metrics layer.
  std::vector<std::atomic<uint64_t>> shard_ns(kMetricsEnabled ? num_shards
                                                              : 0);
  // One executor arena per scheduler slot, shared across every (shard,
  // block) morsel that slot runs — the tile and accumulator buffers are
  // sized once instead of growing thread-locals on transient pool threads.
  const size_t num_slots = ParallelForSlotBound(pool, num_shards * blocks, 1);
  std::vector<BlockedExecScratch> scratch(num_slots);
  Status status = ParallelForSlots(
      pool, num_shards * blocks, 1,
      [&](size_t slot, size_t begin, size_t end) -> Status {
        for (size_t task = begin; task < end; ++task) {
          const size_t shard = task / blocks;
          const size_t block = task % blocks;
          const size_t g_begin = block * kShardGroupBlock;
          const size_t g_end =
              std::min(g_begin + kShardGroupBlock, plan.groups.size());
          TraceScope block_span("sharded.count_block", -1,
                                static_cast<int64_t>(shard),
                                static_cast<int64_t>(g_end - g_begin));
          BlockedExecStats exec_stats;
          if constexpr (kMetricsEnabled) {
            const auto t0 = std::chrono::steady_clock::now();
            ExecuteBlockedGroups(plan, g_begin, g_end, indexes_[shard],
                                 partial[shard], &exec_stats, &scratch[slot]);
            shard_ns[shard].fetch_add(
                static_cast<uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count()),
                std::memory_order_relaxed);
          } else {
            ExecuteBlockedGroups(plan, g_begin, g_end, indexes_[shard],
                                 partial[shard], &exec_stats, &scratch[slot]);
          }
          BumpKernelCounters(exec_stats);
        }
        return Status::OK();
      });
  CORRMINE_CHECK(status.ok()) << status.ToString();
  if constexpr (kMetricsEnabled) {
    // Shard-imbalance gauge: max/mean of the per-shard batch times, x1000.
    // 1000 means perfectly even; a hot shard pushes it up proportionally.
    uint64_t total_ns = 0;
    uint64_t max_ns = 0;
    for (size_t shard = 0; shard < num_shards; ++shard) {
      const uint64_t ns = shard_ns[shard].load(std::memory_order_relaxed);
      shard_batch_ns_->Observe(ns);
      total_ns += ns;
      max_ns = std::max(max_ns, ns);
    }
    if (total_ns > 0) {
      const double mean =
          static_cast<double>(total_ns) / static_cast<double>(num_shards);
      batch_imbalance_->Set(
          static_cast<int64_t>(1000.0 * static_cast<double>(max_ns) / mean));
    }
  }
  // Exact integer fan-in in shard order: counts are sums of per-shard
  // counts, identical for any K and any schedule.
  for (size_t q = 0; q < num_queries; ++q) counts[q] = 0;
  for (const std::vector<uint64_t>& mine : partial) {
    for (size_t q = 0; q < num_queries; ++q) counts[q] += mine[q];
  }
}

uint64_t ShardedScanCountProvider::CountAllPresentImpl(
    const Itemset& s) const {
  CORRMINE_CHECK(!s.empty()) << "CountAllPresent requires a non-empty set";
  uint64_t count = 0;
  for (const TransactionDatabase* rows : shards_) {
    for (size_t row = 0; row < rows->num_baskets(); ++row) {
      if (rows->BasketContainsAll(row, s)) ++count;
    }
  }
  return count;
}

void ShardedScanCountProvider::CountAllPresentBatchImpl(
    std::span<const Itemset> queries, std::span<uint64_t> counts,
    ThreadPool* pool) const {
  // Shard-major over transient per-shard scan providers: each shard batch
  // reuses ScanCountProvider's basket-major chunked scan (deterministic for
  // any pool), and the per-shard partials merge in shard order — exact
  // integer sums, identical for any K.
  std::fill(counts.begin(), counts.end(), uint64_t{0});
  std::vector<uint64_t> partial(queries.size());
  for (const TransactionDatabase* shard : shards_) {
    const ScanCountProvider scan(*shard);
    scan.CountAllPresentBatchUncounted(queries, partial, pool);
    for (size_t q = 0; q < queries.size(); ++q) counts[q] += partial[q];
  }
}

}  // namespace corrmine
