#ifndef CORRMINE_ITEMSET_COUNTING_COLUMN_H_
#define CORRMINE_ITEMSET_COUNTING_COLUMN_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "itemset/bitmap.h"
#include "itemset/count_provider.h"
#include "itemset/itemset.h"
#include "itemset/kernels.h"
#include "itemset/sharded_database.h"
#include "itemset/transaction_database.h"

namespace corrmine {

/// The unified compressed counting column (DESIGN.md §12): one basket set
/// stored Roaring-style. The row space is chunked into 2^16-row blocks and
/// each non-empty block keeps whichever container representation is
/// smallest for its cardinality and clustering:
///
///   array  — sorted 16-bit offsets            (2 bytes/row; sparse)
///   dense  — 8 KiB bitset, 1024 words         (fixed; popular blocks)
///   run    — (start, length-1) 16-bit pairs   (4 bytes/run; clustered)
///
/// Promotion and demotion are cardinality-driven: construction, append and
/// intersection all re-pick the minimum-byte representation, so a column
/// never silently stays in a shape the data outgrew. Market-basket item
/// columns are typically 0.1–5% dense, where arrays cut memory an order of
/// magnitude; generated/sorted corpora collapse further into runs.
///
/// All counting loops route through the active CountingKernels table
/// (kernels.h): dense x dense words via and_count/and_count_into, array x
/// array via array_intersect_count galloping, array x dense via
/// array_dense_count probes. Run-container paths are shared scalar code
/// (identical in every TU). Work accounting — ColumnOpStats, in logical
/// data units derived from container shapes only — is ISA-invariant, so
/// the "kernel.column_*" counters diff clean between forced-scalar and
/// dispatched runs.
///
/// Payloads are either owned (built in memory) or *views* into externally
/// owned bytes — the mmap-backed shard files of io/column_store.h hand out
/// view-backed columns whose payload pages fault in lazily. View-backed
/// columns are immutable; AppendRows materializes on first touch.
class CountingColumn {
 public:
  enum class ContainerKind : uint8_t { kArray = 0, kDense = 1, kRun = 2 };

  /// Rows per container block and the dense payload geometry.
  static constexpr int kBlockBits = 16;
  static constexpr size_t kBlockSize = size_t{1} << kBlockBits;  // 65536
  static constexpr size_t kWordsPerDense = kBlockSize / 64;      // 1024
  /// Cardinality where a sorted array (2 bytes/row) stops beating the
  /// fixed 8 KiB dense bitset.
  static constexpr uint32_t kDenseThreshold = 4096;

  /// One container, exposed for serialization (io/column_store.h) and
  /// white-box tests. `u16` holds array offsets or run pairs; `words` the
  /// dense payload; exactly one of the two is non-empty (except for kind
  /// kDense where `u16` is empty and vice versa).
  struct ContainerView {
    uint32_t key = 0;  // block index: rows [key << 16, (key+1) << 16)
    ContainerKind kind = ContainerKind::kArray;
    uint32_t count = 0;  // set rows in this block
    std::span<const uint16_t> u16;
    std::span<const uint64_t> words;
  };

  /// Empty column over zero rows.
  CountingColumn() = default;

  /// Rows must be strictly increasing and below `num_rows`.
  CountingColumn(size_t num_rows, const std::vector<uint32_t>& rows);

  /// Conversion from a plain bitmap (used by tests and adapters).
  static CountingColumn FromBitmap(const Bitmap& bitmap);

  /// Rebuilds a column over externally owned container payloads (the mmap
  /// path). The backing bytes must outlive the column; payload spans must
  /// match each view's kind and count.
  static CountingColumn FromContainerViews(size_t num_rows,
                                           std::span<const ContainerView> views);

  size_t num_rows() const { return num_rows_; }

  /// Membership test for one row (binary search within the row's block).
  bool Test(uint32_t row) const;

  /// Number of set rows (precomputed; O(1)).
  uint64_t Count() const { return total_count_; }

  /// Popcount of (this AND other) without materializing the intersection.
  /// The columns must cover the same row count. `stats` (optional)
  /// accumulates ISA-invariant work units.
  uint64_t AndCount(const CountingColumn& other,
                    ColumnOpStats* stats = nullptr) const;

  /// Materialized intersection, re-optimized container by container
  /// (dense results below kDenseThreshold demote to arrays; run x run
  /// stays a run list). The prefix-blocked column executor folds group
  /// prefixes through this.
  CountingColumn And(const CountingColumn& other,
                     ColumnOpStats* stats = nullptr) const;

  /// Fused form mirroring Bitmap::AndCountInto: *dst = a AND b, returning
  /// dst->Count() — one call site shape for both storage layers.
  static uint64_t AndCountInto(const CountingColumn& a,
                               const CountingColumn& b, CountingColumn* dst,
                               ColumnOpStats* stats = nullptr);

  /// Appends rows past every existing row (each in [num_rows(),
  /// new_num_rows), strictly increasing) and grows the row space to
  /// `new_num_rows`. The touched tail container is decoded, merged and
  /// re-optimized; view-backed tails materialize first. Delta ingestion
  /// only ever appends — shrinking is not supported.
  void AppendRows(const std::vector<uint32_t>& rows, size_t new_num_rows);

  /// Resident heap bytes (owned payloads + container bookkeeping). View
  /// payloads are not counted — they live in the mapped file.
  size_t MemoryBytes() const;

  /// Logical payload bytes regardless of ownership (what serialization
  /// writes; feeds the column.* storage gauges).
  size_t PayloadBytes() const;

  /// Decompresses back to sorted row ids (tests, adapters, spill).
  std::vector<uint32_t> ToRows() const;

  size_t num_containers() const { return containers_.size(); }
  ContainerView container_view(size_t i) const;

 private:
  struct Container {
    uint32_t key = 0;
    ContainerKind kind = ContainerKind::kArray;
    uint32_t count = 0;
    // Exactly one payload source: owned vectors, or a borrowed view into
    // externally owned bytes (mmap). Accessors below pick whichever is
    // populated, so copies of view-backed columns never re-anchor.
    std::vector<uint16_t> owned_u16;
    std::vector<uint64_t> owned_words;
    const uint16_t* view_u16 = nullptr;
    size_t view_u16_len = 0;
    const uint64_t* view_words = nullptr;

    std::span<const uint16_t> u16() const {
      if (view_u16 != nullptr) {
        return std::span<const uint16_t>(view_u16, view_u16_len);
      }
      return std::span<const uint16_t>(owned_u16);
    }
    const uint64_t* words() const {
      return view_words != nullptr ? view_words : owned_words.data();
    }
  };

  /// Builds the minimum-byte container for one block's sorted offsets.
  static Container MakeContainer(uint32_t key,
                                 std::span<const uint16_t> offsets);
  /// Intersection count of one aligned container pair.
  static uint64_t AndCountContainers(const Container& a, const Container& b,
                                     ColumnOpStats* stats);
  /// Materialized intersection of one aligned container pair; returns a
  /// container with count == 0 when the blocks are disjoint.
  static Container AndContainers(const Container& a, const Container& b,
                                 ColumnOpStats* stats);
  /// Decodes one container into sorted in-block offsets.
  static void ContainerOffsets(const Container& c,
                               std::vector<uint16_t>* out);

  std::vector<Container> containers_;  // sorted by key
  size_t num_rows_ = 0;
  uint64_t total_count_ = 0;
};

/// Legacy name: the side-car CompressedBitmap grew into the first-class
/// column above; existing call sites and tests keep compiling unchanged.
using CompressedBitmap = CountingColumn;

/// A set of counting columns over one row space — the abstraction the
/// prefix-blocked column executor and CompressedCountProvider count
/// against. Implemented by the in-memory CompressedVerticalIndex below and
/// by io/column_store.h's mmap-backed MappedColumnShard.
class ColumnSource {
 public:
  virtual ~ColumnSource() = default;

  virtual size_t num_rows() const = 0;
  virtual ItemId num_columns() const = 0;

  /// Column of `item`. Items at or past num_columns() resolve to a shared
  /// empty column over num_rows() rows (partition shards may have seen a
  /// smaller item space than the whole dataset).
  virtual const CountingColumn& column(ItemId item) const = 0;
};

/// CCS v2 block codec (io/column_store.h): the run-aware compressed
/// encoding of a u16 container payload. Sorted array offsets become
/// first-value + delta varints (sorted/clustered corpora have small gaps,
/// so most entries shrink from 2 bytes to 1); run payloads become
/// start-delta + length varints. Dense word payloads are never
/// varint-encoded — 8 KiB of bitset words has no exploitable order. The
/// writer applies a min-byte rule per container (encoded vs raw), so the
/// codec only ever shrinks a file.
///
/// Encodes `payload` (the container_view u16 span: sorted offsets for
/// kArray, (start, length-1) pairs for kRun) appending to `*out`.
void EncodeU16DeltaVarint(CountingColumn::ContainerKind kind,
                          std::span<const uint16_t> payload,
                          std::string* out);

/// Decodes `data[0, len)` back into the exact u16 payload sequence,
/// validating monotonicity and u16 range against the container `count`
/// recorded in the shard directory (the number of set rows). Arrays
/// decode exactly `count` offsets; runs decode (start, length-1) pairs
/// until the bytes are exhausted and validate that the run lengths sum
/// to `count` (the run count itself is not stored).
Status DecodeU16DeltaVarint(CountingColumn::ContainerKind kind,
                            const uint8_t* data, size_t len, size_t count,
                            std::vector<uint16_t>* out);

/// Storage census of a column source (feeds the "column.*" gauges).
struct ColumnStorageStats {
  uint64_t array_containers = 0;
  uint64_t dense_containers = 0;
  uint64_t run_containers = 0;
  uint64_t payload_bytes = 0;
};
ColumnStorageStats ComputeColumnStorageStats(const ColumnSource& source);

/// Scalar fallback shared by the providers: fold the itemset's columns
/// with And/AndCount (k == 1 is a stored count; k == 2 a fused AndCount).
uint64_t CountAllPresentColumns(const ColumnSource& source, const Itemset& s,
                                ColumnOpStats* stats = nullptr);

/// The compressed peer of ExecuteBlockedGroups (kernels.h): executes
/// plan.groups[group_begin..group_end) against a column source, writing
/// each answered query's count into `counts` (indexed by query slot;
/// counts.size() == plan.num_queries). Size-1 prefixes alias the item
/// column; larger prefixes materialize the prefix intersection once per
/// group and stream every extension column against it. Exact integers for
/// any group partition, so callers parallelize over disjoint ranges.
void ExecuteBlockedGroupsColumns(const BlockedCountPlan& plan,
                                 size_t group_begin, size_t group_end,
                                 const ColumnSource& source,
                                 std::span<uint64_t> counts,
                                 ColumnOpStats* stats);

/// Per-item counting columns for a transaction database (the compressed
/// analogue of VerticalIndex).
class CompressedVerticalIndex : public ColumnSource {
 public:
  explicit CompressedVerticalIndex(const TransactionDatabase& db);

  /// Builds directly from per-item sorted row lists (the out-of-core spill
  /// pass constructs partitions this way, without a TransactionDatabase).
  CompressedVerticalIndex(size_t num_baskets,
                          std::vector<std::vector<uint32_t>> item_rows);

  /// Folds rows [from_row, db.num_baskets()) of `db` into the columns
  /// (delta ingestion; mirrors VerticalIndex::AppendFrom).
  void AppendFrom(const TransactionDatabase& db, size_t from_row);

  size_t num_baskets() const { return num_baskets_; }
  const CountingColumn& item_bitmap(ItemId item) const {
    return columns_[item];
  }

  /// Baskets containing all items of `s` (kernel-dispatched column folds).
  uint64_t CountAllPresent(const Itemset& s) const;

  size_t MemoryBytes() const;

  // ColumnSource:
  size_t num_rows() const override { return num_baskets_; }
  ItemId num_columns() const override {
    return static_cast<ItemId>(columns_.size());
  }
  const CountingColumn& column(ItemId item) const override;

 private:
  std::vector<CountingColumn> columns_;
  CountingColumn empty_;  // for items past the stored column range
  size_t num_baskets_ = 0;
};

/// Strategy B-compressed: a drop-in, K-invariant, morsel-parallel peer of
/// BitmapCountProvider over hybrid columns. Owns one
/// CompressedVerticalIndex per shard (round-robin rows, exact per-shard
/// sums fanned in shard order — byte-identical for any shard count), or
/// borrows externally owned column sources (mmap-backed partition shards).
/// Batches run through the prefix-blocked column executor as shard x
/// group-block morsels on the caller's pool.
class CompressedCountProvider : public CountProvider {
 public:
  /// Single-shard index over a flat database. `db` must outlive this.
  explicit CompressedCountProvider(const TransactionDatabase& db);

  /// One index per shard. `db` must outlive this.
  explicit CompressedCountProvider(const ShardedTransactionDatabase& db);

  /// Borrows externally owned sources (each must outlive this provider);
  /// AppendFrom is unavailable in this mode.
  explicit CompressedCountProvider(std::vector<const ColumnSource*> sources);

  uint64_t num_baskets() const override { return num_rows_total_; }
  size_t num_shards() const { return sources_.size(); }

  /// First shard's index (legacy accessor; single-shard construction).
  const CompressedVerticalIndex& index() const { return owned_.front(); }

  /// Folds the database's appended tail into the per-shard indexes.
  void AppendFrom(const ShardedTransactionDatabase& db);

  /// Sum of per-shard index MemoryBytes (feeds mem.shard_index_bytes).
  uint64_t IndexMemoryBytes() const;

  /// Aggregated container census across every shard.
  ColumnStorageStats StorageStats() const;

 protected:
  uint64_t CountAllPresentImpl(const Itemset& s) const override;
  void CountAllPresentBatchImpl(std::span<const Itemset> queries,
                                std::span<uint64_t> counts,
                                ThreadPool* pool) const override;

 private:
  std::vector<CompressedVerticalIndex> owned_;   // built before sources_
  std::vector<const ColumnSource*> sources_;     // into owned_ or external
  uint64_t num_rows_total_ = 0;
};

}  // namespace corrmine

#endif  // CORRMINE_ITEMSET_COUNTING_COLUMN_H_
