#ifndef CORRMINE_ITEMSET_COMPRESSED_BITMAP_H_
#define CORRMINE_ITEMSET_COMPRESSED_BITMAP_H_

#include <cstdint>
#include <vector>

#include "itemset/bitmap.h"
#include "itemset/count_provider.h"
#include "itemset/itemset.h"
#include "itemset/transaction_database.h"

namespace corrmine {

/// Compressed basket-set bitmap in the Roaring style: the row space is
/// chunked into 2^16-row blocks, and each non-empty block is stored either
/// as a sorted array of 16-bit offsets (sparse) or as a dense 8 KiB bitset
/// (popular). Item columns in market-basket data are typically 0.1–5%
/// dense, where the array containers cut memory by an order of magnitude
/// while AND/popcount kernels stay fast (galloping intersection on arrays,
/// word-wise AND on bitsets).
///
/// Immutable after construction; build from the sorted row ids of an item.
class CompressedBitmap {
 public:
  /// Rows must be strictly increasing and below `num_rows`.
  CompressedBitmap(size_t num_rows, const std::vector<uint32_t>& rows);

  /// Conversion from a plain bitmap (used by tests and adapters).
  static CompressedBitmap FromBitmap(const Bitmap& bitmap);

  size_t num_rows() const { return num_rows_; }

  bool Test(uint32_t row) const;

  /// Number of set rows.
  uint64_t Count() const { return total_count_; }

  /// Popcount of the intersection; both maps must cover the same row
  /// space.
  uint64_t AndCount(const CompressedBitmap& other) const;

  /// Approximate heap bytes used by the container payloads (for the
  /// compression diagnostics and tests).
  size_t MemoryBytes() const;

  /// Materializes the sorted set rows (used by multi-way intersection).
  std::vector<uint32_t> ToRows() const;

 private:
  /// A block covers rows [key << 16, (key+1) << 16).
  struct Container {
    uint32_t key = 0;
    bool dense = false;
    /// Sorted 16-bit offsets when sparse.
    std::vector<uint16_t> array;
    /// 1024 words when dense.
    std::vector<uint64_t> words;
    uint32_t count = 0;
  };

  /// Sparse containers convert to dense above this cardinality (the
  /// break-even point: 4096 * 2 bytes == 8 KiB).
  static constexpr uint32_t kDenseThreshold = 4096;

  static uint64_t AndCountContainers(const Container& a, const Container& b);

  size_t num_rows_ = 0;
  uint64_t total_count_ = 0;
  std::vector<Container> containers_;  // Sorted by key.
};

/// Vertical index over compressed columns; drop-in alternative to
/// VerticalIndex for memory-constrained runs.
class CompressedVerticalIndex {
 public:
  explicit CompressedVerticalIndex(const TransactionDatabase& db);

  size_t num_baskets() const { return num_baskets_; }
  const CompressedBitmap& item_bitmap(ItemId item) const {
    return columns_[item];
  }

  uint64_t CountAllPresent(const Itemset& s) const;

  /// Total container payload bytes across all columns.
  size_t MemoryBytes() const;

 private:
  size_t num_baskets_;
  std::vector<CompressedBitmap> columns_;
};

/// CountProvider over the compressed index. Multi-way counts intersect
/// pairwise (cheapest-first), which is exact though not single-pass.
class CompressedCountProvider : public CountProvider {
 public:
  explicit CompressedCountProvider(const TransactionDatabase& db)
      : index_(db) {}

  uint64_t num_baskets() const override { return index_.num_baskets(); }

  const CompressedVerticalIndex& index() const { return index_; }

 protected:
  uint64_t CountAllPresentImpl(const Itemset& s) const override {
    return index_.CountAllPresent(s);
  }

 private:
  CompressedVerticalIndex index_;
};

}  // namespace corrmine

#endif  // CORRMINE_ITEMSET_COMPRESSED_BITMAP_H_
