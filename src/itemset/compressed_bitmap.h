#ifndef CORRMINE_ITEMSET_COMPRESSED_BITMAP_H_
#define CORRMINE_ITEMSET_COMPRESSED_BITMAP_H_

// The side-car CompressedBitmap grew into the first-class CountingColumn
// storage layer (DESIGN.md §12). This header remains as a shim so existing
// includes keep compiling; CompressedBitmap is now an alias of
// CountingColumn, and CompressedVerticalIndex / CompressedCountProvider
// live in counting_column.h.

#include "itemset/counting_column.h"

#endif  // CORRMINE_ITEMSET_COMPRESSED_BITMAP_H_
