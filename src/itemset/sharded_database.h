#ifndef CORRMINE_ITEMSET_SHARDED_DATABASE_H_
#define CORRMINE_ITEMSET_SHARDED_DATABASE_H_

#include <cstdint>
#include <vector>

#include "common/status_or.h"
#include "itemset/count_provider.h"
#include "itemset/transaction_database.h"

namespace corrmine {

class Gauge;
class Histogram;

/// Horizontal partition of the paper's basket data into K shards: basket j
/// (in arrival order) lives in shard j % K at row j / K. Round-robin
/// placement keeps shards within one basket of each other in size and makes
/// the layout invertible — Flatten() reproduces the original basket order
/// exactly.
///
/// The K-invariance contract (DESIGN.md §7): all-items-present counts,
/// per-item marginals O(i), and n are *sums of exact per-shard integers*,
/// so every derived statistic — expected cells, chi-squared verdicts, rule
/// lists — is byte-identical for any K. Sharding changes cost and memory
/// locality, never answers.
class ShardedTransactionDatabase {
 public:
  /// `num_items` fixes the item space; `num_shards` is clamped to >= 1.
  ShardedTransactionDatabase(ItemId num_items, size_t num_shards);

  /// Re-partitions an existing monolithic database (copies the baskets and
  /// the dictionary).
  static ShardedTransactionDatabase Partition(const TransactionDatabase& db,
                                              size_t num_shards);

  /// Shard count for a requested `--shards` value: 0 means "ask the
  /// hardware" (same convention as ThreadPool::ResolveThreadCount); negative
  /// is treated as 1.
  static size_t ResolveShardCount(int requested);

  /// Appends a basket to the next shard in round-robin order; items are
  /// sorted/deduplicated. Errors if any item id is out of range.
  Status AddBasket(std::vector<ItemId> items);

  /// Appends a whole delta chunk in arrival order (round-robin placement
  /// continues where the last append left off, so the layout is identical
  /// to having loaded base+delta in one pass).
  Status AppendBatch(std::vector<std::vector<ItemId>> baskets);

  /// Widens the item space on every shard; errors if it would shrink.
  Status GrowItemSpace(ItemId num_items);

  size_t num_shards() const { return shards_.size(); }
  const TransactionDatabase& shard(size_t i) const { return shards_[i]; }

  /// Total baskets across all shards (the original n).
  uint64_t num_baskets() const { return next_row_; }
  ItemId num_items() const { return num_items_; }

  /// Exact global marginal O(i): sum of the per-shard occurrence counts.
  uint64_t ItemCount(ItemId item) const;

  /// Sum of basket sizes across all shards.
  uint64_t TotalItemOccurrences() const;

  /// Basket `i` in original arrival order (resolves through the round-robin
  /// layout).
  const std::vector<ItemId>& basket(size_t i) const {
    return shards_[i % shards_.size()].basket(i / shards_.size());
  }

  /// Reassembles the monolithic database in original basket order (with the
  /// dictionary) — for consumers that need a contiguous row store, e.g. the
  /// permutation independence test.
  TransactionDatabase Flatten() const;

  /// Optional item dictionary shared by all shards.
  ItemDictionary& dictionary() { return dictionary_; }
  const ItemDictionary& dictionary() const { return dictionary_; }

 private:
  ItemId num_items_;
  std::vector<TransactionDatabase> shards_;
  uint64_t next_row_ = 0;
  ItemDictionary dictionary_;
};

/// CountProvider over a sharded database: one vertical index per shard,
/// built eagerly; every count is the sum of per-shard AND/popcounts. Batches
/// fan out over (shard × query-block) tasks on the pool and merge the
/// per-shard partials in shard order, so results are deterministic and
/// identical for any K and any pool (the K-invariance contract above).
///
/// Run-health telemetry (DESIGN.md §8): each batch accumulates per-shard
/// wall time into histogram "sharded.shard_batch_ns" and publishes gauge
/// "sharded.batch_imbalance_x1000" = 1000 * max/mean of the per-shard batch
/// times — the skew signal the flat counters can't see. Per-(shard, block)
/// trace spans land in the worker threads' rings when tracing is active.
class ShardedCountProvider : public CountProvider {
 public:
  /// Builds the per-shard indexes eagerly; `db` must outlive this provider
  /// only if shard_index()/num_shards() introspection is not enough for the
  /// caller (the provider itself keeps no reference after construction).
  explicit ShardedCountProvider(const ShardedTransactionDatabase& db);

  /// Catches the per-shard indexes up with rows appended to `db` since
  /// construction (or the last AppendFrom). Each shard's bitmaps grow in
  /// place — no rebuild — and the result is byte-identical to constructing
  /// a fresh provider over the grown database. Must not race with queries.
  void AppendFrom(const ShardedTransactionDatabase& db);

  uint64_t num_baskets() const override { return num_baskets_; }

  size_t num_shards() const { return indexes_.size(); }
  const VerticalIndex& shard_index(size_t i) const { return indexes_[i]; }

  /// Bytes held by the per-shard vertical indexes (bitmap words only — the
  /// dominant term). Feeds the "mem.shard_index_bytes" gauge.
  uint64_t IndexMemoryBytes() const;

 protected:
  uint64_t CountAllPresentImpl(const Itemset& s) const override;
  void CountAllPresentBatchImpl(std::span<const Itemset> queries,
                                std::span<uint64_t> counts,
                                ThreadPool* pool) const override;

 private:
  std::vector<VerticalIndex> indexes_;
  uint64_t num_baskets_;
  // Telemetry handles, resolved once from MetricsRegistry::Global() so the
  // batch fan-out pays relaxed atomics, not registry lookups.
  Histogram* shard_batch_ns_;
  Gauge* batch_imbalance_;
};

/// Scan-strategy CountProvider over a sharded database: no preprocessing at
/// all — every batch re-scans each shard's row store basket-major (the
/// paper's full-pass cost model, sharded). Counts are sums of exact
/// per-shard integers merged in shard order, so the K-invariance contract
/// holds here too. Reads `db` live: rows appended after construction are
/// visible to the next query with no catch-up call.
class ShardedScanCountProvider : public CountProvider {
 public:
  /// Borrows the shard row stores (not the ShardedTransactionDatabase
  /// handle itself, which may be a movable member of the caller): the
  /// shard objects live on the heap and stay put across moves of `db` and
  /// across in-place appends, so the provider reads appended rows live
  /// with no catch-up step.
  explicit ShardedScanCountProvider(const ShardedTransactionDatabase& db) {
    shards_.reserve(db.num_shards());
    for (size_t k = 0; k < db.num_shards(); ++k) {
      shards_.push_back(&db.shard(k));
    }
  }

  uint64_t num_baskets() const override {
    uint64_t total = 0;
    for (const TransactionDatabase* shard : shards_) {
      total += shard->num_baskets();
    }
    return total;
  }

 protected:
  uint64_t CountAllPresentImpl(const Itemset& s) const override;
  void CountAllPresentBatchImpl(std::span<const Itemset> queries,
                                std::span<uint64_t> counts,
                                ThreadPool* pool) const override;

 private:
  std::vector<const TransactionDatabase*> shards_;
};

}  // namespace corrmine

#endif  // CORRMINE_ITEMSET_SHARDED_DATABASE_H_
