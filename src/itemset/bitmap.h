#ifndef CORRMINE_ITEMSET_BITMAP_H_
#define CORRMINE_ITEMSET_BITMAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace corrmine {

/// Fixed-length bitset used as a vertical (per-item) index over baskets:
/// bit b is set iff basket b contains the item. Sized at construction;
/// supports the AND/popcount kernels the mining counters need.
class Bitmap {
 public:
  Bitmap() : num_bits_(0) {}
  explicit Bitmap(size_t num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

  size_t size() const { return num_bits_; }

  /// Grows to `num_bits` bits, preserving existing bits (new bits are 0).
  /// Shrinking is not supported — delta ingestion only ever appends rows.
  void Resize(size_t num_bits) {
    words_.resize((num_bits + 63) / 64, 0);
    num_bits_ = num_bits;
  }

  void Set(size_t bit) { words_[bit >> 6] |= (uint64_t{1} << (bit & 63)); }
  void Clear(size_t bit) { words_[bit >> 6] &= ~(uint64_t{1} << (bit & 63)); }
  bool Test(size_t bit) const {
    return (words_[bit >> 6] >> (bit & 63)) & 1;
  }

  /// Number of set bits.
  uint64_t Count() const;

  /// Popcount of (this AND other) without materializing the intersection.
  /// The bitmaps must be the same size.
  uint64_t AndCount(const Bitmap& other) const;

  /// In-place intersection; the bitmaps must be the same size.
  void AndWith(const Bitmap& other);

  /// Fused intersection: *dst = a AND b, returning popcount(*dst) from the
  /// same pass over the words (one load stream instead of AND-then-Count).
  /// `dst` is resized to match; a and b must be the same size.
  static uint64_t AndCountInto(const Bitmap& a, const Bitmap& b, Bitmap* dst);

  /// Raw word access for fused multi-way kernels.
  const std::vector<uint64_t>& words() const { return words_; }

  friend bool operator==(const Bitmap& a, const Bitmap& b) {
    return a.num_bits_ == b.num_bits_ && a.words_ == b.words_;
  }

 private:
  size_t num_bits_;
  std::vector<uint64_t> words_;
};

/// Popcount of the AND of several bitmaps in one pass (no temporaries).
/// All bitmaps must be the same size; an empty list yields 0. Operands are
/// processed sparsest-first so the kernels' all-zero early exit fires as
/// soon as possible (AND is commutative, so the count is unchanged).
uint64_t MultiAndCount(const std::vector<const Bitmap*>& bitmaps);

}  // namespace corrmine

#endif  // CORRMINE_ITEMSET_BITMAP_H_
