#ifndef CORRMINE_LINALG_SYM_MATRIX_H_
#define CORRMINE_LINALG_SYM_MATRIX_H_

#include <vector>

#include "common/status_or.h"

namespace corrmine::linalg {

/// Dense symmetric matrix of doubles, stored fully (n x n) for simplicity.
/// Sized for the small systems this library needs (copula correlation
/// matrices over tens of items), not for numerical-library scale.
class SymMatrix {
 public:
  /// n x n zero matrix.
  explicit SymMatrix(int n) : n_(n), data_(static_cast<size_t>(n) * n, 0.0) {}

  /// Identity matrix.
  static SymMatrix Identity(int n);

  int size() const { return n_; }

  double at(int i, int j) const { return data_[Index(i, j)]; }

  /// Sets both (i, j) and (j, i).
  void Set(int i, int j, double value) {
    data_[Index(i, j)] = value;
    data_[Index(j, i)] = value;
  }

 private:
  size_t Index(int i, int j) const {
    return static_cast<size_t>(i) * n_ + j;
  }

  int n_;
  std::vector<double> data_;
};

/// Result of a symmetric eigendecomposition: A = V diag(lambda) V^T with
/// orthonormal columns in `vectors` (vectors[k] is the k-th eigenvector).
struct EigenDecomposition {
  std::vector<double> values;
  std::vector<std::vector<double>> vectors;
};

/// Cyclic Jacobi eigensolver for symmetric matrices. Converges for any
/// symmetric input; eigenvalues are returned in descending order.
EigenDecomposition JacobiEigen(const SymMatrix& a, int max_sweeps = 100);

/// Projects a symmetric matrix with unit diagonal (a candidate correlation
/// matrix) to a nearby positive semi-definite correlation matrix: clips
/// negative eigenvalues to `min_eigenvalue`, reassembles and rescales the
/// diagonal back to 1.
SymMatrix NearestCorrelationMatrix(const SymMatrix& a,
                                   double min_eigenvalue = 1e-6);

/// Cholesky factorization A = L L^T (L lower triangular, row-major n x n).
/// Fails if A is not positive definite.
StatusOr<std::vector<double>> CholeskyFactor(const SymMatrix& a);

}  // namespace corrmine::linalg

#endif  // CORRMINE_LINALG_SYM_MATRIX_H_
