#include "linalg/sym_matrix.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace corrmine::linalg {

SymMatrix SymMatrix::Identity(int n) {
  SymMatrix m(n);
  for (int i = 0; i < n; ++i) m.Set(i, i, 1.0);
  return m;
}

EigenDecomposition JacobiEigen(const SymMatrix& input, int max_sweeps) {
  const int n = input.size();
  // Working copy of the matrix and accumulated rotations.
  std::vector<std::vector<double>> a(n, std::vector<double>(n));
  std::vector<std::vector<double>> v(n, std::vector<double>(n, 0.0));
  for (int i = 0; i < n; ++i) {
    v[i][i] = 1.0;
    for (int j = 0; j < n; ++j) a[i][j] = input.at(i, j);
  }

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) off += a[i][j] * a[i][j];
    }
    if (off < 1e-24) break;

    for (int p = 0; p < n - 1; ++p) {
      for (int q = p + 1; q < n; ++q) {
        if (std::fabs(a[p][q]) < 1e-300) continue;
        double theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
        double t = (theta >= 0.0 ? 1.0 : -1.0) /
                   (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        double c = 1.0 / std::sqrt(t * t + 1.0);
        double s = t * c;

        for (int k = 0; k < n; ++k) {
          double akp = a[k][p];
          double akq = a[k][q];
          a[k][p] = c * akp - s * akq;
          a[k][q] = s * akp + c * akq;
        }
        for (int k = 0; k < n; ++k) {
          double apk = a[p][k];
          double aqk = a[q][k];
          a[p][k] = c * apk - s * aqk;
          a[q][k] = s * apk + c * aqk;
        }
        for (int k = 0; k < n; ++k) {
          double vkp = v[k][p];
          double vkq = v[k][q];
          v[k][p] = c * vkp - s * vkq;
          v[k][q] = s * vkp + c * vkq;
        }
      }
    }
  }

  EigenDecomposition result;
  result.values.resize(n);
  result.vectors.assign(n, std::vector<double>(n));
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> diag(n);
  for (int i = 0; i < n; ++i) diag[i] = a[i][i];
  std::sort(order.begin(), order.end(),
            [&](int x, int y) { return diag[x] > diag[y]; });
  for (int k = 0; k < n; ++k) {
    result.values[k] = diag[order[k]];
    for (int i = 0; i < n; ++i) result.vectors[k][i] = v[i][order[k]];
  }
  return result;
}

SymMatrix NearestCorrelationMatrix(const SymMatrix& a, double min_eigenvalue) {
  const int n = a.size();
  EigenDecomposition eig = JacobiEigen(a);
  for (double& lambda : eig.values) {
    lambda = std::max(lambda, min_eigenvalue);
  }
  // Reassemble V diag(lambda) V^T.
  SymMatrix out(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      double sum = 0.0;
      for (int k = 0; k < n; ++k) {
        sum += eig.values[k] * eig.vectors[k][i] * eig.vectors[k][j];
      }
      out.Set(i, j, sum);
    }
  }
  // Rescale to unit diagonal.
  std::vector<double> scale(n);
  for (int i = 0; i < n; ++i) {
    scale[i] = 1.0 / std::sqrt(std::max(out.at(i, i), 1e-12));
  }
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      double value = out.at(i, j) * scale[i] * scale[j];
      out.Set(i, j, i == j ? 1.0 : value);
    }
  }
  return out;
}

StatusOr<std::vector<double>> CholeskyFactor(const SymMatrix& a) {
  const int n = a.size();
  std::vector<double> l(static_cast<size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j <= i; ++j) {
      double sum = a.at(i, j);
      for (int k = 0; k < j; ++k) {
        sum -= l[static_cast<size_t>(i) * n + k] *
               l[static_cast<size_t>(j) * n + k];
      }
      if (i == j) {
        if (sum <= 0.0) {
          return Status::FailedPrecondition(
              "matrix is not positive definite");
        }
        l[static_cast<size_t>(i) * n + j] = std::sqrt(sum);
      } else {
        l[static_cast<size_t>(i) * n + j] =
            sum / l[static_cast<size_t>(j) * n + j];
      }
    }
  }
  return l;
}

}  // namespace corrmine::linalg
