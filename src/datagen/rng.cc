#include "datagen/rng.h"

#include <cmath>

#include "common/logging.h"

namespace corrmine::datagen {

namespace {

uint64_t SplitMix(uint64_t* state) {
  *state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = *state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& s : state_) s = SplitMix(&sm);
}

uint64_t Rng::NextUint64() {
  // xoshiro256++
  uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  CORRMINE_CHECK(bound > 0) << "NextBelow(0)";
  uint64_t threshold = -bound % bound;  // 2^64 mod bound.
  while (true) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextGaussian() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 0.0) u1 = NextDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  spare_ = mag * std::sin(2.0 * M_PI * u2);
  has_spare_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

double Rng::NextExponential(double mean) {
  CORRMINE_CHECK(mean > 0.0) << "exponential mean must be positive";
  double u = NextDouble();
  while (u <= 0.0) u = NextDouble();
  return -mean * std::log(u);
}

uint64_t Rng::NextPoisson(double mean) {
  CORRMINE_CHECK(mean >= 0.0) << "poisson mean must be non-negative";
  if (mean == 0.0) return 0;
  if (mean > 64.0) {
    double sample = mean + std::sqrt(mean) * NextGaussian();
    return sample < 0.0 ? 0 : static_cast<uint64_t>(std::llround(sample));
  }
  double limit = std::exp(-mean);
  uint64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= NextDouble();
  } while (p > limit);
  return k - 1;
}

}  // namespace corrmine::datagen
