#include "datagen/census_generator.h"

#include <cmath>
#include <vector>

#include "common/logging.h"
#include "datagen/rng.h"
#include "stats/normal.h"
#include "stats/tetrachoric.h"

namespace corrmine::datagen {

const std::array<CensusItem, kCensusNumItems>& CensusItems() {
  static const std::array<CensusItem, kCensusNumItems> kItems = {{
      {"drives alone", "does not drive, carpools"},
      {"male or less than 3 children", "3 or more children"},
      {"never served in the military", "veteran"},
      {"native speaker of English", "not a native speaker"},
      {"not a U.S. citizen", "U.S. citizen"},
      {"born in the U.S.", "born abroad"},
      {"married", "single, divorced, widowed"},
      {"no more than 40 years old", "more than 40 years old"},
      {"male", "female"},
      {"householder", "dependent, boarder, renter"},
  }};
  return kItems;
}

namespace {

/// One pair row of the paper's Table 3: joint percentages of
/// (a&b, !a&b, a&!b, !a&!b). Together with symmetry these determine the
/// full pairwise joint distribution of the 10 items.
struct PairRow {
  int a;
  int b;
  double ab;    // % of persons with both a and b.
  double nab;   // % with b but not a.
  double anb;   // % with a but not b.
  double nanb;  // % with neither.
};

constexpr PairRow kPaperPairs[] = {
    {0, 1, 16.6, 73.6, 1.4, 8.5},  {0, 2, 15.0, 74.3, 3.0, 7.7},
    {0, 3, 16.0, 72.9, 1.9, 9.2},  {0, 4, 1.1, 5.5, 16.9, 76.5},
    {0, 5, 16.1, 73.5, 1.9, 8.5},  {0, 6, 7.1, 18.1, 10.8, 64.0},
    {0, 7, 9.7, 51.9, 8.2, 30.2},  {0, 8, 9.6, 36.7, 8.3, 45.3},
    {0, 9, 10.3, 30.5, 7.7, 51.6}, {1, 2, 79.6, 9.7, 10.6, 0.1},
    {1, 3, 79.9, 9.0, 10.3, 0.8},  {1, 4, 6.0, 0.6, 84.2, 9.2},
    {1, 5, 80.7, 8.9, 9.5, 1.0},   {1, 6, 21.3, 3.9, 68.9, 6.0},
    {1, 7, 59.3, 2.3, 30.9, 7.5},  {1, 8, 46.3, 0.0, 43.8, 9.8},
    {1, 9, 35.5, 5.3, 54.7, 4.6},  {2, 3, 78.9, 10.0, 10.4, 0.7},
    {2, 4, 6.5, 0.1, 82.8, 10.6},  {2, 5, 79.3, 10.3, 10.0, 0.4},
    {2, 6, 20.1, 5.1, 69.2, 5.6},  {2, 7, 58.9, 2.7, 30.4, 8.0},
    {2, 8, 36.5, 9.9, 52.9, 0.8},  {2, 9, 33.9, 6.9, 55.4, 3.8},
    {3, 4, 1.6, 5.0, 87.3, 6.1},   {3, 5, 85.4, 4.2, 3.4, 7.0},
    {3, 6, 21.6, 3.6, 67.3, 7.5},  {3, 7, 54.1, 7.6, 34.8, 3.6},
    {3, 8, 40.8, 5.6, 48.1, 5.6},  {3, 9, 36.2, 4.5, 52.6, 6.6},
    {4, 5, 0.0, 89.6, 6.6, 3.8},   {4, 6, 2.5, 22.7, 4.1, 70.7},
    {4, 7, 4.7, 57.0, 1.9, 36.4},  {4, 8, 3.3, 43.0, 3.3, 50.4},
    {4, 9, 2.6, 38.2, 4.0, 55.2},  {5, 6, 21.2, 4.0, 68.4, 6.4},
    {5, 7, 54.9, 6.7, 34.6, 3.7},  {5, 8, 41.2, 5.1, 48.4, 5.3},
    {5, 9, 36.4, 4.4, 53.2, 6.0},  {6, 7, 9.0, 52.7, 16.2, 22.2},
    {6, 8, 12.7, 33.6, 12.5, 41.2}, {6, 9, 11.9, 28.8, 13.3, 46.0},
    {7, 8, 29.9, 16.4, 31.7, 22.0}, {7, 9, 16.1, 24.6, 45.5, 13.8},
    {8, 9, 19.4, 21.4, 27.0, 32.3},
};

}  // namespace

CensusModel::CensusModel() {
  // Accumulate marginals as averages over the pair rows (each item appears
  // in 9 rows; row-to-row inconsistencies are rounding noise in the paper's
  // published percentages).
  std::array<double, kCensusNumItems> sums{};
  std::array<int, kCensusNumItems> hits{};
  for (auto& row : joint_) row.fill(0.0);

  for (const PairRow& row : kPaperPairs) {
    double p_ab = row.ab / 100.0;
    double p_a = (row.ab + row.anb) / 100.0;
    double p_b = (row.ab + row.nab) / 100.0;
    joint_[row.a][row.b] = p_ab;
    joint_[row.b][row.a] = p_ab;
    sums[row.a] += p_a;
    sums[row.b] += p_b;
    ++hits[row.a];
    ++hits[row.b];
  }
  for (int i = 0; i < kCensusNumItems; ++i) {
    marginals_[i] = sums[i] / hits[i];
  }
}

const CensusModel& CensusModel::Paper() {
  static const CensusModel* kModel = new CensusModel();
  return *kModel;
}

double CensusModel::PairJoint(int i, int j) const {
  CORRMINE_CHECK(i != j && i >= 0 && j >= 0 && i < kCensusNumItems &&
                 j < kCensusNumItems)
      << "PairJoint index out of range";
  return joint_[i][j];
}

StatusOr<linalg::SymMatrix> BuildCensusLatentCorrelation(
    const CensusModel& model) {
  linalg::SymMatrix raw = linalg::SymMatrix::Identity(kCensusNumItems);
  for (int i = 0; i < kCensusNumItems; ++i) {
    for (int j = i + 1; j < kCensusNumItems; ++j) {
      CORRMINE_ASSIGN_OR_RETURN(
          double rho,
          stats::TetrachoricCorrelation(model.Marginal(i), model.Marginal(j),
                                        model.PairJoint(i, j)));
      raw.Set(i, j, rho);
    }
  }
  return linalg::NearestCorrelationMatrix(raw);
}

StatusOr<TransactionDatabase> GenerateCensusData(
    const CensusOptions& options) {
  if (options.num_persons == 0) {
    return Status::InvalidArgument("num_persons must be positive");
  }
  const CensusModel& model = CensusModel::Paper();
  CORRMINE_ASSIGN_OR_RETURN(linalg::SymMatrix corr,
                            BuildCensusLatentCorrelation(model));
  CORRMINE_ASSIGN_OR_RETURN(std::vector<double> chol,
                            linalg::CholeskyFactor(corr));

  std::array<double, kCensusNumItems> thresholds;
  for (int i = 0; i < kCensusNumItems; ++i) {
    thresholds[i] = stats::NormalQuantile(1.0 - model.Marginal(i));
  }

  TransactionDatabase db(kCensusNumItems);
  for (int i = 0; i < kCensusNumItems; ++i) {
    db.dictionary().GetOrAdd("i" + std::to_string(i));
  }

  Rng rng(options.seed);
  std::array<double, kCensusNumItems> z;
  std::array<bool, kCensusNumItems> present;
  for (uint64_t person = 0; person < options.num_persons; ++person) {
    // Correlated normals: z = L * iid.
    std::array<double, kCensusNumItems> iid;
    for (double& v : iid) v = rng.NextGaussian();
    for (int i = 0; i < kCensusNumItems; ++i) {
      double sum = 0.0;
      for (int j = 0; j <= i; ++j) {
        sum += chol[static_cast<size_t>(i) * kCensusNumItems + j] * iid[j];
      }
      z[i] = sum;
    }
    for (int i = 0; i < kCensusNumItems; ++i) {
      present[i] = z[i] > thresholds[i];
    }
    // Structural zeros the paper reports exactly: a male respondent cannot
    // have given birth to 3+ children (so i8 forces i1), and being born in
    // the U.S. confers citizenship (so i5 forces !i4).
    if (present[8]) present[1] = true;
    if (present[5]) present[4] = false;

    std::vector<ItemId> basket;
    for (ItemId i = 0; i < kCensusNumItems; ++i) {
      if (present[i]) basket.push_back(i);
    }
    CORRMINE_RETURN_NOT_OK(db.AddBasket(std::move(basket)));
  }
  return db;
}

}  // namespace corrmine::datagen
