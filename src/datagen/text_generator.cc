#include "datagen/text_generator.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>
#include <vector>

#include "datagen/rng.h"

namespace corrmine::datagen {

namespace {

/// A vocabulary entry: per-1000-token occurrence rate in background text,
/// plus the topic (if any) that boosts it.
struct VocabWord {
  std::string word;
  double background_rate;  // Expected occurrences per 1000 tokens anywhere.
  int topic;               // -1 = none.
  double topic_rate;       // Additional rate when the topic is active.
};

enum Topic {
  kSouthAfrica = 0,
  kBurundi = 1,
  kLiberia = 2,
  kWestAfrica = 3,
  kNumTopics = 4,
};

/// Hand-picked topical and general news terms; the showcased words of the
/// paper's Table 4 appear with co-occurrence structure that reproduces its
/// shape (e.g. "nelson"/"mandela" emitted as a linked pair).
std::vector<VocabWord> BuildCuratedVocabulary() {
  std::vector<VocabWord> v;
  auto add = [&](const char* w, double bg, int topic, double tr) {
    v.push_back(VocabWord{w, bg, topic, tr});
  };
  // High-frequency function/wire-service words (appear in nearly all docs).
  for (const char* w : {"the", "a", "of", "in", "to", "and", "is", "was",
                        "said", "on", "for", "with", "by", "at", "from",
                        "that", "has", "have", "were", "be", "as", "an",
                        "but", "his", "their", "they", "this", "after",
                        "government", "president", "country", "people",
                        "officials", "week", "year", "state", "news"}) {
    add(w, 12.0, -1, 0.0);
  }
  // Mid-frequency general politics/reporting words.
  for (const char* w :
       {"minister", "party", "leader", "capital", "region", "peace",
        "security", "forces", "army", "police", "rebels", "talks", "accord",
        "election", "vote", "power", "crisis", "border", "refugees", "aid",
        "united", "nations", "african", "africa", "south", "north", "men",
        "women", "children", "work", "number", "group", "members",
        "military", "economic", "political", "authorities", "official",
        "black", "white", "area", "province", "city", "town", "secretary",
        "war", "deputy", "director", "minority", "commission", "plan",
        "report", "statement", "spokesman", "agency", "sources"}) {
    add(w, 2.2, -1, 0.0);
  }
  // South Africa / Mandela topic.
  add("mandela", 0.0, kSouthAfrica, 9.0);
  add("nelson", 0.0, kSouthAfrica, 9.0);  // Linked to "mandela" below.
  for (const char* w : {"anc", "johannesburg", "pretoria", "apartheid",
                        "township", "zulu", "cape", "transition",
                        "reconciliation", "parliament"}) {
    add(w, 0.15, kSouthAfrica, 5.0);
  }
  // Burundi topic.
  add("burundi", 0.05, kBurundi, 8.0);
  for (const char* w : {"bujumbura", "tutsi", "hutu", "buyoya", "sanctions",
                        "embargo", "coup", "arusha", "mediators",
                        "neighbouring"}) {
    add(w, 0.12, kBurundi, 5.0);
  }
  // Liberia topic (strongly tied to "west" as in West Africa).
  add("liberia", 0.05, kLiberia, 8.0);
  add("west", 0.8, kLiberia, 7.0);
  for (const char* w : {"monrovia", "taylor", "factions", "militia",
                        "disarmament", "ecomog", "warlords", "fighters",
                        "ceasefire", "abuja"}) {
    add(w, 0.12, kLiberia, 5.0);
  }
  // General West-Africa topic.
  for (const char* w : {"nigeria", "ghana", "lagos", "accra", "abacha",
                        "senegal", "ivory", "coast", "mali", "sahara"}) {
    add(w, 0.15, kWestAfrica, 4.5);
  }
  return v;
}

/// Deterministic pseudo-words filling out the vocabulary tail with a
/// Zipf-ish document-frequency spectrum (some above, some below the 10%
/// pruning line).
std::vector<VocabWord> BuildFillerVocabulary(size_t count) {
  static const char* kSyllables[] = {"ka", "ro", "mi", "ta", "lu", "sen",
                                     "do", "va", "ne", "gu", "pol", "sha",
                                     "ri", "bo", "tem", "wa", "zi", "mon"};
  constexpr size_t kNumSyllables = sizeof(kSyllables) / sizeof(char*);
  std::vector<VocabWord> v;
  v.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    std::string word;
    size_t code = i;
    for (int s = 0; s < 3; ++s) {
      word += kSyllables[code % kNumSyllables];
      code /= kNumSyllables;
    }
    word += std::to_string(i % 10);
    // Zipf-like rate spectrum: rank 1 common, long tail rare.
    double rate = 3.0 / (1.0 + 0.05 * static_cast<double>(i));
    // Half the tail words lean toward one topic (region-specific vocabulary
    // in real wire copy), which is what makes ~10% of surviving word pairs
    // correlated as in the paper's corpus; the rest are topic-neutral.
    int topic = (i % 2 == 0) ? static_cast<int>(i / 2 % kNumTopics) : -1;
    double topic_rate =
        topic >= 0 ? 4.0 / (1.0 + 0.02 * static_cast<double>(i)) : 0.0;
    v.push_back(VocabWord{std::move(word), rate, topic, topic_rate});
  }
  return v;
}

}  // namespace

StatusOr<TextCorpus> GenerateTextCorpus(const TextCorpusOptions& options) {
  if (options.num_documents == 0) {
    return Status::InvalidArgument("num_documents must be positive");
  }
  if (!(options.min_doc_frequency >= 0.0 &&
        options.min_doc_frequency <= 1.0)) {
    return Status::InvalidArgument("min_doc_frequency must be in [0,1]");
  }
  std::vector<VocabWord> vocab = BuildCuratedVocabulary();
  std::vector<VocabWord> filler = BuildFillerVocabulary(480);
  vocab.insert(vocab.end(), filler.begin(), filler.end());

  Rng rng(options.seed);

  // Sample word-presence sets per document. Presence follows from the
  // Poisson token model: a word with rate r per 1000 tokens appears in an
  // L-token document with probability 1 - exp(-r * L / 1000).
  std::vector<std::vector<size_t>> docs(options.num_documents);
  size_t mandela_idx = SIZE_MAX;
  size_t nelson_idx = SIZE_MAX;
  for (size_t w = 0; w < vocab.size(); ++w) {
    if (vocab[w].word == "mandela") mandela_idx = w;
    if (vocab[w].word == "nelson") nelson_idx = w;
  }

  for (uint32_t d = 0; d < options.num_documents; ++d) {
    uint64_t length = rng.NextPoisson(options.mean_words);
    if (length < options.min_words) length = options.min_words;
    double scale = static_cast<double>(length) / 1000.0;

    // One or two active topics per article.
    bool topic_active[kNumTopics] = {false, false, false, false};
    topic_active[rng.NextBelow(kNumTopics)] = true;
    if (rng.NextBernoulli(0.35)) {
      topic_active[rng.NextBelow(kNumTopics)] = true;
    }

    for (size_t w = 0; w < vocab.size(); ++w) {
      if (w == nelson_idx) continue;  // Drawn jointly with "mandela".
      const VocabWord& word = vocab[w];
      double rate = word.background_rate;
      if (word.topic >= 0 && topic_active[word.topic]) {
        rate += word.topic_rate;
      }
      double p = 1.0 - std::exp(-rate * scale);
      if (rng.NextBernoulli(p)) {
        docs[d].push_back(w);
        // Linked pair: articles naming Mandela (almost) always use the
        // full name, which is what drives the pair's chi-squared to ~n.
        if (w == mandela_idx && !rng.NextBernoulli(0.02)) {
          docs[d].push_back(nelson_idx);
        }
      }
    }
  }

  // Document-frequency pruning, then re-map surviving words to dense ids.
  std::vector<uint32_t> doc_freq(vocab.size(), 0);
  for (const auto& doc : docs) {
    for (size_t w : doc) ++doc_freq[w];
  }
  double min_docs = options.min_doc_frequency *
                    static_cast<double>(options.num_documents);
  std::vector<ItemId> remap(vocab.size(), UINT32_MAX);
  ItemDictionary dict;
  for (size_t w = 0; w < vocab.size(); ++w) {
    if (static_cast<double>(doc_freq[w]) >= min_docs) {
      remap[w] = dict.GetOrAdd(vocab[w].word);
    }
  }
  if (dict.size() == 0) {
    return Status::FailedPrecondition(
        "document-frequency pruning removed the whole vocabulary");
  }

  TextCorpus corpus{TransactionDatabase(static_cast<ItemId>(dict.size())),
                    vocab.size()};
  corpus.database.dictionary() = std::move(dict);
  for (const auto& doc : docs) {
    std::vector<ItemId> basket;
    basket.reserve(doc.size());
    for (size_t w : doc) {
      if (remap[w] != UINT32_MAX) basket.push_back(remap[w]);
    }
    CORRMINE_RETURN_NOT_OK(corpus.database.AddBasket(std::move(basket)));
  }
  return corpus;
}

}  // namespace corrmine::datagen
