#include "datagen/categorical_census.h"

#include <array>
#include <cmath>

#include "datagen/rng.h"
#include "linalg/sym_matrix.h"
#include "stats/normal.h"

namespace corrmine::datagen {

namespace {

// Latent dimensions the attributes are carved from; the correlation
// structure is hand-set to echo the binary census model's headline
// dependencies (veteran <-> older, citizenship <-> nativity, marital <->
// age, transport <-> marital).
enum Latent {
  kTransportL = 0,
  kAgeL = 1,
  kChildrenL = 2,
  kMilitaryL = 3,
  kCitizenL = 4,
  kMaritalL = 5,
  kNumLatent = 6,
};

linalg::SymMatrix LatentCorrelation() {
  // Bucket 0 of each attribute sits at the LOW end of its latent, so the
  // signs below encode: veterans (military bucket 1, high) skew over 40
  // (age bucket 2, high); married (marital bucket 0, low) skews older and
  // toward driving alone (transport bucket 0, low) and more children
  // (children bucket 2, high); immigrants (citizenship bucket 2, high)
  // skew toward larger families.
  linalg::SymMatrix corr = linalg::SymMatrix::Identity(kNumLatent);
  corr.Set(kMilitaryL, kAgeL, 0.55);
  corr.Set(kMaritalL, kAgeL, -0.45);
  corr.Set(kChildrenL, kMaritalL, -0.5);
  corr.Set(kTransportL, kMaritalL, 0.3);
  corr.Set(kTransportL, kAgeL, -0.25);
  corr.Set(kCitizenL, kChildrenL, 0.1);
  return linalg::NearestCorrelationMatrix(corr);
}

// Maps a latent standard normal to a category via ascending cumulative
// fractions (the last bucket absorbs the remainder).
uint8_t Bucket(double z, std::initializer_list<double> cumulative) {
  uint8_t index = 0;
  for (double c : cumulative) {
    if (z <= stats::NormalQuantile(c)) return index;
    ++index;
  }
  return index;
}

}  // namespace

StatusOr<CategoricalDatabase> GenerateCategoricalCensus(
    const CategoricalCensusOptions& options) {
  if (options.num_persons == 0) {
    return Status::InvalidArgument("num_persons must be positive");
  }
  std::vector<CategoricalAttribute> attributes = {
      {"transport", {"drives alone", "carpools", "does not drive"}},
      {"age", {"25 or younger", "26 to 40", "over 40"}},
      {"children", {"none", "one or two", "three or more"}},
      {"military", {"never served", "veteran"}},
      {"citizenship", {"born in the US", "naturalized", "not a citizen"}},
      {"marital", {"married", "single", "divorced or widowed"}},
  };
  CORRMINE_ASSIGN_OR_RETURN(CategoricalDatabase db,
                            CategoricalDatabase::Create(attributes));

  linalg::SymMatrix corr = LatentCorrelation();
  CORRMINE_ASSIGN_OR_RETURN(std::vector<double> chol,
                            linalg::CholeskyFactor(corr));

  Rng rng(options.seed);
  std::array<double, kNumLatent> iid;
  std::array<double, kNumLatent> z;
  for (uint64_t person = 0; person < options.num_persons; ++person) {
    for (double& v : iid) v = rng.NextGaussian();
    for (int i = 0; i < kNumLatent; ++i) {
      double sum = 0.0;
      for (int j = 0; j <= i; ++j) {
        sum += chol[static_cast<size_t>(i) * kNumLatent + j] * iid[j];
      }
      z[i] = sum;
    }
    std::vector<uint8_t> row(attributes.size());
    row[0] = Bucket(z[kTransportL], {0.18, 0.30});     // alone|carpool|none
    row[1] = Bucket(z[kAgeL], {0.28, 0.615});          // <=25|26-40|>40
    row[2] = Bucket(z[kChildrenL], {0.55, 0.902});     // 0|1-2|3+
    row[3] = Bucket(z[kMilitaryL], {0.893});           // never|veteran
    row[4] = Bucket(z[kCitizenL], {0.896, 0.934});     // US-born|nat|non
    row[5] = Bucket(z[kMaritalL], {0.252, 0.70});      // married|single|d/w
    CORRMINE_RETURN_NOT_OK(db.AddRow(std::move(row)));
  }
  return db;
}

}  // namespace corrmine::datagen
