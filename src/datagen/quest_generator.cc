#include "datagen/quest_generator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "datagen/rng.h"

namespace corrmine::datagen {

namespace {

struct Pattern {
  std::vector<ItemId> items;
  double corruption = 0.5;
};

Status Validate(const QuestOptions& o) {
  if (o.num_transactions == 0) {
    return Status::InvalidArgument("num_transactions must be positive");
  }
  if (o.num_items < 2) {
    return Status::InvalidArgument("num_items must be at least 2");
  }
  if (o.avg_transaction_size <= 0 || o.avg_pattern_size <= 0) {
    return Status::InvalidArgument("average sizes must be positive");
  }
  if (o.num_patterns == 0) {
    return Status::InvalidArgument("num_patterns must be positive");
  }
  if (o.correlation_level < 0.0 || o.correlation_level > 1.0) {
    return Status::InvalidArgument("correlation_level must be in [0,1]");
  }
  return Status::OK();
}

std::vector<Pattern> GeneratePatterns(const QuestOptions& o, Rng* rng) {
  std::vector<Pattern> patterns;
  patterns.reserve(o.num_patterns);
  for (uint32_t p = 0; p < o.num_patterns; ++p) {
    uint64_t size = std::max<uint64_t>(1, rng->NextPoisson(o.avg_pattern_size));
    size = std::min<uint64_t>(size, o.num_items);
    Pattern pattern;

    // Inherit an exponentially-distributed fraction from the predecessor.
    if (p > 0 && o.correlation_level > 0.0) {
      const std::vector<ItemId>& prev = patterns.back().items;
      double frac = std::min(1.0, rng->NextExponential(o.correlation_level));
      uint64_t take = std::min<uint64_t>(
          static_cast<uint64_t>(std::llround(frac * static_cast<double>(size))),
          prev.size());
      // Sample `take` distinct items from prev by partial shuffle indices.
      std::vector<ItemId> pool = prev;
      for (uint64_t t = 0; t < take; ++t) {
        uint64_t pick = t + rng->NextBelow(pool.size() - t);
        std::swap(pool[t], pool[pick]);
        pattern.items.push_back(pool[t]);
      }
    }
    while (pattern.items.size() < size) {
      ItemId candidate = static_cast<ItemId>(rng->NextBelow(o.num_items));
      if (std::find(pattern.items.begin(), pattern.items.end(), candidate) ==
          pattern.items.end()) {
        pattern.items.push_back(candidate);
      }
    }
    double corruption = o.corruption_mean + o.corruption_sd *
                                                rng->NextGaussian();
    pattern.corruption = std::clamp(corruption, 0.0, 1.0);
    patterns.push_back(std::move(pattern));
  }
  return patterns;
}

/// Weighted pattern picker over exponential weights via a cumulative table.
class PatternPicker {
 public:
  PatternPicker(size_t count, Rng* rng) {
    cumulative_.reserve(count);
    double total = 0.0;
    for (size_t i = 0; i < count; ++i) {
      total += rng->NextExponential(1.0);
      cumulative_.push_back(total);
    }
  }

  size_t Pick(Rng* rng) const {
    double u = rng->NextDouble() * cumulative_.back();
    return static_cast<size_t>(
        std::lower_bound(cumulative_.begin(), cumulative_.end(), u) -
        cumulative_.begin());
  }

 private:
  std::vector<double> cumulative_;
};

}  // namespace

StatusOr<TransactionDatabase> GenerateQuestData(const QuestOptions& options) {
  CORRMINE_RETURN_NOT_OK(Validate(options));
  Rng rng(options.seed);
  std::vector<Pattern> patterns = GeneratePatterns(options, &rng);
  PatternPicker picker(patterns.size(), &rng);

  TransactionDatabase db(options.num_items);
  std::vector<ItemId> carried;  // Pattern instance deferred from overflow.

  for (uint64_t t = 0; t < options.num_transactions; ++t) {
    uint64_t target_size = std::max<uint64_t>(
        1, rng.NextPoisson(options.avg_transaction_size));
    std::vector<ItemId> txn;

    if (!carried.empty()) {
      txn.insert(txn.end(), carried.begin(), carried.end());
      carried.clear();
    }

    int guard = 0;
    while (txn.size() < target_size && guard++ < 1000) {
      const Pattern& pattern = patterns[picker.Pick(&rng)];
      // Corrupt: drop random items while the draw stays below the level.
      std::vector<ItemId> instance = pattern.items;
      while (!instance.empty() &&
             rng.NextDouble() < pattern.corruption) {
        uint64_t victim = rng.NextBelow(instance.size());
        instance[victim] = instance.back();
        instance.pop_back();
      }
      if (instance.empty()) continue;

      if (txn.size() + instance.size() > target_size && !txn.empty()) {
        // Overflow: keep anyway half the time, else defer to the next
        // transaction.
        if (rng.NextBernoulli(0.5)) {
          txn.insert(txn.end(), instance.begin(), instance.end());
        } else {
          carried = std::move(instance);
        }
        break;
      }
      txn.insert(txn.end(), instance.begin(), instance.end());
    }
    CORRMINE_RETURN_NOT_OK(db.AddBasket(std::move(txn)));
  }
  return db;
}

}  // namespace corrmine::datagen
