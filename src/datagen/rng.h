#ifndef CORRMINE_DATAGEN_RNG_H_
#define CORRMINE_DATAGEN_RNG_H_

#include <cstdint>

namespace corrmine::datagen {

/// Deterministic generator for workload synthesis: xoshiro256++ seeded via
/// splitmix64, with the sampling distributions the generators need. Not for
/// cryptography; chosen for speed and reproducibility across platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t NextUint64();

  /// Uniform in [0, bound); bound > 0. Uses rejection to avoid modulo bias.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform in [0, 1).
  double NextDouble();

  /// True with probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Standard normal via Box–Muller (cached spare).
  double NextGaussian();

  /// Exponential with the given mean.
  double NextExponential(double mean);

  /// Poisson sample; Knuth's method for small means, normal approximation
  /// (rounded, clamped at 0) for mean > 64.
  uint64_t NextPoisson(double mean);

 private:
  uint64_t state_[4];
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace corrmine::datagen

#endif  // CORRMINE_DATAGEN_RNG_H_
