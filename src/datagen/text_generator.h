#ifndef CORRMINE_DATAGEN_TEXT_GENERATOR_H_
#define CORRMINE_DATAGEN_TEXT_GENERATOR_H_

#include <cstdint>

#include "common/status_or.h"
#include "itemset/transaction_database.h"

namespace corrmine::datagen {

struct TextCorpusOptions {
  /// The paper analyzed 91 articles.
  uint32_t num_documents = 91;
  /// Documents shorter than this are regenerated (the paper filtered posts
  /// under 200 words); sizes are drawn to mostly exceed it anyway.
  uint32_t min_words = 200;
  /// Mean document length in word tokens.
  double mean_words = 420.0;
  /// Items (distinct words) occurring in fewer than this fraction of
  /// documents are dropped before mining — the paper's 10% pruning.
  double min_doc_frequency = 0.10;
  uint64_t seed = 19960913;  // The corpus collection date.
};

/// A generated corpus: baskets are documents, items are distinct words that
/// survived document-frequency pruning. The dictionary maps ids to words.
struct TextCorpus {
  TransactionDatabase database;
  /// Vocabulary size before pruning.
  size_t raw_vocabulary = 0;
};

/// Synthesizes a corpus shaped like the paper's clari.world.africa sample
/// (which is not redistributable): a topic-mixture model over a built-in
/// vocabulary of general news terms plus regional topics (South
/// Africa/Mandela, Burundi peace talks, Liberia conflict, ...). Topics
/// induce exactly the kind of co-occurrence structure behind Table 4 — for
/// example "nelson" and "mandela" are emitted (nearly) jointly so their
/// pairwise chi-squared approaches n, while cross-topic triples correlate
/// far more weakly than pairs.
StatusOr<TextCorpus> GenerateTextCorpus(const TextCorpusOptions& options = {});

}  // namespace corrmine::datagen

#endif  // CORRMINE_DATAGEN_TEXT_GENERATOR_H_
