#ifndef CORRMINE_DATAGEN_CENSUS_GENERATOR_H_
#define CORRMINE_DATAGEN_CENSUS_GENERATOR_H_

#include <array>
#include <cstdint>
#include <string>

#include "common/status_or.h"
#include "itemset/transaction_database.h"
#include "linalg/sym_matrix.h"

namespace corrmine::datagen {

/// The paper's census item space (Table 1): 10 binary attributes collapsed
/// from PUMS census questions.
struct CensusItem {
  const char* attribute;      // Value when the item is present.
  const char* non_attribute;  // Value when absent.
};

inline constexpr int kCensusNumItems = 10;

/// Attribute labels exactly as printed in the paper's Table 1 / Section 5.1.
const std::array<CensusItem, kCensusNumItems>& CensusItems();

/// Calibration targets for the synthetic census population. The original
/// PUMS extract is unavailable, so the model is fit to the statistics the
/// paper itself publishes: the pairwise joint distribution of all 45 item
/// pairs (Table 3's four support percentages per pair, which determine the
/// full 2x2 joint) and the marginals they imply.
class CensusModel {
 public:
  /// The paper's published numbers.
  static const CensusModel& Paper();

  /// P(item i). Derived from the pairwise table (rows are consistent).
  double Marginal(int i) const { return marginals_[i]; }

  /// P(i and j) for i != j.
  double PairJoint(int i, int j) const;

 private:
  friend StatusOr<linalg::SymMatrix> BuildCensusLatentCorrelation(
      const CensusModel& model);
  CensusModel();

  std::array<double, kCensusNumItems> marginals_;
  std::array<std::array<double, kCensusNumItems>, kCensusNumItems> joint_;
};

/// Latent Gaussian-copula correlation matrix reproducing the model's
/// pairwise joints when standard normals are thresholded at the marginal
/// quantiles: per pair a tetrachoric solve, then projection to the nearest
/// positive semi-definite correlation matrix.
StatusOr<linalg::SymMatrix> BuildCensusLatentCorrelation(
    const CensusModel& model);

struct CensusOptions {
  /// The paper's n.
  uint64_t num_persons = 30370;
  uint64_t seed = 1997;
};

/// Samples a synthetic census population matching CensusModel::Paper():
/// correlated latent normals (Cholesky of the copula matrix) thresholded
/// per item, plus structural-zero fixups for the logically impossible cells
/// the paper reports as exact zeros ("3+ children" conjoined with "male";
/// "not a U.S. citizen" conjoined with "born in the U.S."). The returned
/// database carries item names "i0".."i9" in its dictionary.
StatusOr<TransactionDatabase> GenerateCensusData(
    const CensusOptions& options = {});

}  // namespace corrmine::datagen

#endif  // CORRMINE_DATAGEN_CENSUS_GENERATOR_H_
