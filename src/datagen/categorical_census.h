#ifndef CORRMINE_DATAGEN_CATEGORICAL_CENSUS_H_
#define CORRMINE_DATAGEN_CATEGORICAL_CENSUS_H_

#include <cstdint>

#include "common/status_or.h"
#include "itemset/categorical_database.h"

namespace corrmine::datagen {

struct CategoricalCensusOptions {
  uint64_t num_persons = 30370;
  uint64_t seed = 1997;
};

/// Generates the "non-collapsed" variant of the census population the
/// paper's Section 5.1 wishes for: instead of flattening each question to
/// a binary item, multi-valued attributes keep their categories, so an
/// r x c chi-squared table can localize dependency to category pairs
/// (e.g. "carpools" vs "does not drive" behave differently against
/// marital status, which the binary collapse hides).
///
/// Attributes (derived from one latent correlated-normal vector per
/// person, so the dependencies echo the binary census model):
///   transport  : drives alone | carpools | does not drive
///   age        : 25 or younger | 26 to 40 | over 40
///   children   : none | one or two | three or more
///   military   : never served | veteran
///   citizenship: born in the US | naturalized | not a citizen
///   marital    : married | single | divorced or widowed
StatusOr<CategoricalDatabase> GenerateCategoricalCensus(
    const CategoricalCensusOptions& options = {});

}  // namespace corrmine::datagen

#endif  // CORRMINE_DATAGEN_CATEGORICAL_CENSUS_H_
