#ifndef CORRMINE_DATAGEN_QUEST_GENERATOR_H_
#define CORRMINE_DATAGEN_QUEST_GENERATOR_H_

#include <cstdint>

#include "common/status_or.h"
#include "itemset/transaction_database.h"

namespace corrmine::datagen {

/// Parameters of the IBM Quest synthetic market-basket generator
/// (Agrawal & Srikant, VLDB'94, Section 4.1) — re-implemented from the
/// published description because the original binary is proprietary. The
/// paper's Section 5.3 experiment uses 99 997 baskets over 870 items with
/// average basket size 20 and average pattern size 4.
struct QuestOptions {
  uint64_t num_transactions = 99997;
  uint32_t num_items = 870;
  /// |T|: mean of the Poisson transaction-size distribution.
  double avg_transaction_size = 20.0;
  /// |I|: mean size of the potentially-large itemsets.
  double avg_pattern_size = 4.0;
  /// |L|: number of potentially-large itemsets seeded into the data.
  uint32_t num_patterns = 2000;
  /// Fraction of each pattern inherited from its predecessor (exponentially
  /// distributed with this mean).
  double correlation_level = 0.5;
  /// Corruption per pattern ~ N(mean, sd) clipped to [0, 1]; the original
  /// uses mean 0.5, variance 0.1.
  double corruption_mean = 0.5;
  double corruption_sd = 0.31622776601683794;  // sqrt(0.1)
  uint64_t seed = 1997;
};

/// Generates a transaction database:
///  1. Draw |L| patterns. Pattern sizes are Poisson(|I|) (min 1); each
///     pattern reuses an exponential fraction of its predecessor's items and
///     fills the rest uniformly. Patterns get exponential weights
///     (normalized) and a clipped-normal corruption level.
///  2. Each transaction draws a Poisson(|T|) size (min 1) and is filled by
///     weighted pattern picks. A picked pattern first loses items while a
///     uniform draw stays below its corruption level; if the remainder
///     overflows the transaction, it is kept anyway half the time and
///     deferred to the next transaction otherwise.
StatusOr<TransactionDatabase> GenerateQuestData(const QuestOptions& options);

}  // namespace corrmine::datagen

#endif  // CORRMINE_DATAGEN_QUEST_GENERATOR_H_
