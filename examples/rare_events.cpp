// Rare-event mining: the paper's fire-code inspector scenario (Section 1).
// Fires — and the conditions leading to them — are rare, so the framework
// needed is "anti-support": only rarely occurring combinations are
// interesting. The paper notes chi-squared cannot serve this regime
// (Section 4: the statistic is inaccurate for very rare events); the
// rare-pair miner uses Fisher's exact test instead, which stays valid at
// any count.
//
// We synthesize building inspection records: each basket is a building,
// items are conditions and outcomes. Aluminum wiring (rare) genuinely
// raises fire risk; sprinklers lower it; everything else is noise.

#include <iostream>
#include <string>

#include "datagen/rng.h"
#include "io/table_printer.h"
#include "itemset/count_provider.h"
#include "mining/rare_pairs.h"

int main() {
  using namespace corrmine;

  // Item space.
  enum Item : ItemId {
    kFire = 0,            // The rare outcome.
    kAluminumWiring = 1,  // Rare, causally linked to fire.
    kKnobAndTube = 2,     // Rare, mildly linked.
    kSprinklers = 3,      // Common, protective (negative link).
    kBrickFacade = 4,     // Common, irrelevant.
    kElevator = 5,        // Common, irrelevant.
    kRooftopHvac = 6,     // Occasional, irrelevant.
    kNumItems = 7,
  };
  const char* names[kNumItems] = {
      "fire",     "aluminum-wiring", "knob-and-tube", "sprinklers",
      "brick",    "elevator",        "rooftop-hvac"};

  datagen::Rng rng(2026);
  TransactionDatabase db(kNumItems);
  for (ItemId i = 0; i < kNumItems; ++i) db.dictionary().GetOrAdd(names[i]);

  const int kBuildings = 20000;
  for (int b = 0; b < kBuildings; ++b) {
    std::vector<ItemId> record;
    bool aluminum = rng.NextBernoulli(0.015);
    bool knob = rng.NextBernoulli(0.02);
    bool sprinklers = rng.NextBernoulli(0.6);
    if (aluminum) record.push_back(kAluminumWiring);
    if (knob) record.push_back(kKnobAndTube);
    if (sprinklers) record.push_back(kSprinklers);
    if (rng.NextBernoulli(0.5)) record.push_back(kBrickFacade);
    if (rng.NextBernoulli(0.3)) record.push_back(kElevator);
    if (rng.NextBernoulli(0.1)) record.push_back(kRooftopHvac);

    double fire_risk = 0.004;           // Base rate: 0.4% of buildings.
    if (aluminum) fire_risk += 0.10;    // Strong causal link.
    if (knob) fire_risk += 0.02;
    if (sprinklers) fire_risk *= 0.5;   // Protective.
    if (rng.NextBernoulli(fire_risk)) record.push_back(kFire);

    auto status = db.AddBasket(std::move(record));
    if (!status.ok()) {
      std::cerr << status.ToString() << "\n";
      return 1;
    }
  }

  BitmapCountProvider provider(db);
  std::cout << "inspected " << db.num_baskets() << " buildings; "
            << provider.CountAllPresent(Itemset{kFire})
            << " had fires\n\n";

  RarePairOptions options;
  options.max_item_fraction = 0.05;  // Anti-support: rare items only.
  options.max_p_value = 0.01;
  auto results = MineRarePairs(provider, db.num_items(), options);
  if (!results.ok()) {
    std::cerr << results.status().ToString() << "\n";
    return 1;
  }

  io::TablePrinter table({"rare pair", "observed", "interest", "p-value",
                          "reading"});
  for (const RarePairResult& result : *results) {
    std::string label;
    for (ItemId item : result.pair) {
      if (!label.empty()) label += " + ";
      label += names[item];
    }
    std::string reading = result.joint_interest > 1.0
                              ? "co-occur more than chance"
                              : "repel each other";
    table.AddRow({label, std::to_string(result.count_both),
                  io::FormatDouble(result.joint_interest, 2),
                  io::FormatDouble(result.p_value, 6), reading});
  }
  table.Print(std::cout);
  std::cout << "\n(aluminum wiring should head the list; the irrelevant "
               "rare conditions should be absent)\n";
  return 0;
}
