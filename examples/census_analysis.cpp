// Census analysis: the paper's Section 5.1 workflow on the synthetic
// census population — compare the chi-squared/interest view of an item
// pair with the support-confidence view, then mine the whole item space
// and walk the resulting correlation border.

#include <iostream>
#include <string>

#include "core/border.h"
#include "core/chi_squared_miner.h"
#include "core/interest.h"
#include "datagen/census_generator.h"
#include "io/table_printer.h"
#include "itemset/count_provider.h"
#include "mining/association_rules.h"

int main() {
  using namespace corrmine;

  auto db = datagen::GenerateCensusData();
  if (!db.ok()) {
    std::cerr << db.status().ToString() << "\n";
    return 1;
  }
  BitmapCountProvider provider(*db);

  // --- Single-pair deep dive: military service (i2) x age (i7). ---
  auto table = ContingencyTable::Build(provider, Itemset{2, 7});
  if (!table.ok()) {
    std::cerr << table.status().ToString() << "\n";
    return 1;
  }
  ChiSquaredResult chi2 = ComputeChiSquared(*table);
  std::cout << "military service x age bracket (items i2, i7):\n"
            << "  chi2 = " << chi2.statistic << " (95% cutoff 3.84) -> "
            << (chi2.SignificantAt(0.95) ? "correlated" : "independent")
            << "\n  rule-of-thumb valid: "
            << (chi2.validity.RuleOfThumbSatisfied() ? "yes" : "no") << "\n";

  std::cout << "  cell interests (O/E):\n";
  for (const CellInterest& cell : ComputeCellInterests(*table)) {
    std::cout << "    "
              << FormatCellPattern(table->itemset(), cell.mask)
              << "  O=" << cell.observed << "  E=" << cell.expected
              << "  I=" << cell.interest << "\n";
  }
  CellInterest major = MajorDependenceCell(*table);
  std::cout << "  dominant dependence: "
            << FormatCellPattern(table->itemset(), major.mask)
            << " — in the paper's words, being a veteran goes with being "
               "over 40.\n\n";

  auto pair = AnalyzePair(*table);
  if (pair.ok()) {
    std::cout << "support-confidence view of the same pair (cutoffs 1% / "
                 "0.5):\n"
              << "  conf(i2 => i7) = " << pair->a_to_b << "\n"
              << "  conf(i7 => i2) = " << pair->b_to_a << "\n"
              << "  conf(!i2 => !i7) = " << pair->na_to_nb << "\n"
              << "  all four cells supported — every direction looks like "
                 "a 'rule',\n  which is exactly the ambiguity the paper's "
                 "Example 4 criticizes.\n\n";
  }

  // --- Full mining pass and border inspection. ---
  MinerOptions options;
  options.support.min_count = static_cast<uint64_t>(
      0.01 * static_cast<double>(db->num_baskets()));
  options.support.cell_fraction = 0.25 + 1e-9;
  auto result = MineCorrelations(provider, db->num_items(), options);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }
  std::vector<Itemset> sets;
  for (const CorrelationRule& rule : result->significant) {
    sets.push_back(rule.itemset);
  }
  CorrelationBorder border(std::move(sets));

  std::cout << "mined " << result->significant.size()
            << " minimal correlated itemsets; border size " << border.size()
            << "\n";
  std::cout << "uncorrelated pairs (the interesting absences, like the "
               "paper's {i1,i4}):\n";
  for (ItemId a = 0; a < db->num_items(); ++a) {
    for (ItemId b = a + 1; b < db->num_items(); ++b) {
      if (!border.IsAboveBorder(Itemset{a, b})) {
        std::cout << "  {i" << a << ", i" << b << "}\n";
      }
    }
  }
  return 0;
}
