// Text mining: the paper's Section 5.2 workflow — treat documents as
// baskets of words, prune rare words by document frequency, mine word
// correlations, and read off positive and negative dependencies.

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "core/chi_squared_miner.h"
#include "core/interest.h"
#include "datagen/text_generator.h"
#include "io/table_printer.h"
#include "itemset/count_provider.h"

int main() {
  using namespace corrmine;

  datagen::TextCorpusOptions corpus_options;
  auto corpus = datagen::GenerateTextCorpus(corpus_options);
  if (!corpus.ok()) {
    std::cerr << corpus.status().ToString() << "\n";
    return 1;
  }
  const TransactionDatabase& db = corpus->database;
  std::cout << "corpus: " << db.num_baskets() << " documents, "
            << corpus->raw_vocabulary << " raw words, " << db.num_items()
            << " after pruning words in < "
            << corpus_options.min_doc_frequency * 100 << "% of documents\n\n";

  BitmapCountProvider provider(db);
  MinerOptions options;
  options.support.min_count = 5;
  options.support.cell_fraction = 0.25 + 1e-9;
  options.max_level = 2;  // Pairs are where the readable signal lives.
  auto result = MineCorrelations(provider, db.num_items(), options);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }

  std::vector<const CorrelationRule*> rules;
  for (const CorrelationRule& rule : result->significant) {
    rules.push_back(&rule);
  }
  std::sort(rules.begin(), rules.end(),
            [](const CorrelationRule* a, const CorrelationRule* b) {
              return a->chi2.statistic > b->chi2.statistic;
            });

  auto word = [&db](ItemId id) {
    auto name = db.dictionary().Name(id);
    return name.ok() ? *name : ("w" + std::to_string(id));
  };

  std::cout << "strongest word correlations:\n";
  for (size_t i = 0; i < rules.size() && i < 10; ++i) {
    const CorrelationRule& rule = *rules[i];
    std::cout << "  " << word(rule.itemset.item(0)) << " + "
              << word(rule.itemset.item(1))
              << "  chi2=" << rule.chi2.statistic << "\n";
  }

  // Negative dependencies: correlated pairs whose joint cell is *under*
  // expectation — the "recipes rarely say 'fatty'" kind of finding the
  // paper motivates, invisible to support-confidence mining.
  std::cout << "\nnegatively dependent pairs (I(ab) < 0.5):\n";
  int shown = 0;
  for (const CorrelationRule* rule : rules) {
    auto table = ContingencyTable::Build(provider, rule->itemset);
    if (!table.ok()) continue;
    auto cells = ComputeCellInterests(*table);
    if (cells[0b11].interest < 0.5) {
      std::cout << "  " << word(rule->itemset.item(0)) << " vs "
                << word(rule->itemset.item(1)) << "  I(ab)="
                << cells[0b11].interest << " chi2=" << rule->chi2.statistic
                << "\n";
      if (++shown == 8) break;
    }
  }
  if (shown == 0) {
    std::cout << "  (none above the significance cutoff in this corpus)\n";
  }
  return 0;
}
