// Quickstart: mine correlation rules from a small in-memory basket
// database in ~40 lines.
//
//   1. Build a TransactionDatabase (baskets of item ids).
//   2. Wrap it in a CountProvider (bitmaps here).
//   3. Call MineCorrelations with support/significance options.
//   4. Inspect the minimal correlated itemsets and their driving cells.

#include <iostream>

#include "core/chi_squared_miner.h"
#include "core/interest.h"
#include "io/transaction_io.h"
#include "itemset/count_provider.h"

int main() {
  using namespace corrmine;

  // A toy grocery log. Items: 0=tea 1=coffee 2=milk 3=sugar 4=batteries.
  // Tea and coffee are negatively associated; milk and sugar travel
  // together; batteries are independent of everything.
  const char* names[] = {"tea", "coffee", "milk", "sugar", "batteries"};
  TransactionDatabase db(5);
  for (int i = 0; i < 5; ++i) db.dictionary().GetOrAdd(names[i]);
  struct Row {
    std::vector<ItemId> basket;
    int copies;
  };
  for (const Row& row : std::vector<Row>{{{1, 2, 3}, 30},
                                         {{1, 2, 3, 4}, 10},
                                         {{0, 2, 3}, 12},
                                         {{0}, 8},
                                         {{1}, 20},
                                         {{2, 3}, 10},
                                         {{4}, 6},
                                         {{}, 4}}) {
    for (int i = 0; i < row.copies; ++i) {
      auto status = db.AddBasket(row.basket);
      if (!status.ok()) {
        std::cerr << status.ToString() << "\n";
        return 1;
      }
    }
  }

  BitmapCountProvider provider(db);
  MinerOptions options;
  options.confidence_level = 0.95;      // The paper's 3.84 cutoff.
  options.support.min_count = 3;        // s: cells need >= 3 baskets.
  options.support.cell_fraction = 0.26; // p: >= 26% of cells supported.

  auto result = MineCorrelations(provider, db.num_items(), options);
  if (!result.ok()) {
    std::cerr << "mining failed: " << result.status().ToString() << "\n";
    return 1;
  }

  std::cout << "minimal correlated itemsets over " << db.num_baskets()
            << " baskets:\n";
  for (const CorrelationRule& rule : result->significant) {
    std::cout << "  " << rule.itemset.ToString()
              << "  chi2=" << rule.chi2.statistic
              << "  p=" << rule.chi2.p_value << "\n"
              << "    driven by cell "
              << FormatCellPattern(rule.itemset, rule.major_dependence.mask,
                                   &db.dictionary())
              << " (interest " << rule.major_dependence.interest << ")\n";
  }
  for (const LevelStats& level : result->levels) {
    std::cout << "level " << level.level << ": candidates "
              << level.candidates << ", significant " << level.significant
              << ", kept-uncorrelated " << level.not_significant << "\n";
  }
  return 0;
}
