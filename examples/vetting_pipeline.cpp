// Vetting pipeline: mine correlation rules level-wise, then re-examine
// each finding with the Monte Carlo exact independence test before
// trusting it. This is the workflow the paper's Section 3.3 points
// toward: the chi-squared approximation finds candidates fast, the exact
// test (valid at any expected cell count) confirms or rejects the
// borderline ones.

#include <algorithm>
#include <iostream>

#include "core/chi_squared_miner.h"
#include "datagen/text_generator.h"
#include "io/table_printer.h"
#include "itemset/count_provider.h"
#include "stats/permutation_test.h"

int main() {
  using namespace corrmine;

  // A small corpus keeps expected cell counts low — exactly the regime
  // where the asymptotic p-values are shaky and vetting earns its keep.
  datagen::TextCorpusOptions corpus_options;
  corpus_options.num_documents = 60;
  auto corpus = datagen::GenerateTextCorpus(corpus_options);
  if (!corpus.ok()) {
    std::cerr << corpus.status().ToString() << "\n";
    return 1;
  }
  const TransactionDatabase& db = corpus->database;
  BitmapCountProvider provider(db);

  MinerOptions miner;
  miner.support.min_count = 4;
  miner.support.cell_fraction = 0.25 + 1e-9;
  miner.max_level = 2;
  auto result = MineCorrelations(provider, db.num_items(), miner);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }
  std::cout << "chi-squared miner reported " << result->significant.size()
            << " correlated pairs over " << db.num_baskets()
            << " documents; vetting the 12 weakest with the exact test\n\n";

  // Vet the *weakest* findings — the strong ones are beyond doubt.
  std::sort(result->significant.begin(), result->significant.end(),
            [](const CorrelationRule& a, const CorrelationRule& b) {
              return a.chi2.statistic < b.chi2.statistic;
            });

  io::TablePrinter table({"pair", "chi2", "asymptotic p", "exact p",
                          "verdict"});
  int confirmed = 0;
  int rejected = 0;
  for (size_t i = 0; i < result->significant.size() && i < 12; ++i) {
    const CorrelationRule& rule = result->significant[i];
    stats::PermutationTestOptions exact_options;
    exact_options.rounds = 2000;
    auto exact =
        stats::PermutationIndependenceTest(db, rule.itemset, exact_options);
    if (!exact.ok()) {
      std::cerr << exact.status().ToString() << "\n";
      return 1;
    }
    bool holds = exact->p_value < 0.05;
    holds ? ++confirmed : ++rejected;
    std::string words;
    for (ItemId item : rule.itemset) {
      if (!words.empty()) words += " + ";
      auto name = db.dictionary().Name(item);
      words += name.ok() ? *name : std::to_string(item);
    }
    table.AddRow({words, io::FormatDouble(rule.chi2.statistic, 2),
                  io::FormatDouble(rule.chi2.p_value, 4),
                  io::FormatDouble(exact->p_value, 4),
                  holds ? "confirmed" : "REJECTED"});
  }
  table.Print(std::cout);
  std::cout << "\n" << confirmed << " confirmed, " << rejected
            << " rejected by the exact test — rejected rows are the "
               "approximation error\nthe paper's Section 3.3 warns about "
               "at small expected cell counts.\n";
  return 0;
}
