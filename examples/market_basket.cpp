// Market-basket comparison: run the support-confidence framework (Apriori
// + rule generation, plus the PCY hash-filtered variant) and the
// chi-squared correlation framework side by side on Quest synthetic data,
// showing where the two disagree — the heart of the paper's argument.

#include <algorithm>
#include <iostream>
#include <set>
#include <string>

#include "core/chi_squared_miner.h"
#include "datagen/quest_generator.h"
#include "io/table_printer.h"
#include "itemset/count_provider.h"
#include "mining/association_rules.h"
#include "mining/pcy.h"

int main() {
  using namespace corrmine;

  datagen::QuestOptions quest;
  quest.num_transactions = 20000;
  quest.num_items = 300;
  quest.avg_transaction_size = 12.0;
  quest.num_patterns = 60;
  auto db = datagen::GenerateQuestData(quest);
  if (!db.ok()) {
    std::cerr << db.status().ToString() << "\n";
    return 1;
  }
  std::cout << "quest data: " << db->num_baskets() << " baskets, "
            << db->num_items() << " items\n\n";
  BitmapCountProvider provider(*db);

  // --- Support-confidence framework. ---
  AprioriOptions apriori_options;
  apriori_options.min_support_fraction = 0.02;
  auto frequent =
      MineFrequentItemsets(provider, db->num_items(), apriori_options);
  if (!frequent.ok()) {
    std::cerr << frequent.status().ToString() << "\n";
    return 1;
  }
  RuleOptions rule_options;
  rule_options.min_confidence = 0.6;
  auto rules =
      GenerateAssociationRules(*frequent, db->num_baskets(), rule_options);
  if (!rules.ok()) {
    std::cerr << rules.status().ToString() << "\n";
    return 1;
  }
  std::cout << "support-confidence: " << frequent->size()
            << " frequent itemsets, " << rules->size()
            << " rules at confidence >= " << rule_options.min_confidence
            << "\n";

  // PCY produces the same frequent sets through a hash filter.
  PcyOptions pcy_options;
  pcy_options.min_support_fraction = apriori_options.min_support_fraction;
  PcyStats pcy_stats;
  auto pcy = MineFrequentItemsetsPcy(*db, pcy_options, &pcy_stats);
  if (pcy.ok()) {
    std::cout << "PCY agrees on " << pcy->size()
              << " frequent itemsets; bucket filter cut pair candidates "
              << pcy_stats.pair_candidates_item_filter << " -> "
              << pcy_stats.pair_candidates_after_bucket << "\n\n";
  }

  // --- Correlation framework on the same data. ---
  MinerOptions miner;
  miner.support.min_count = static_cast<uint64_t>(
      apriori_options.min_support_fraction *
      static_cast<double>(db->num_baskets()));
  miner.support.cell_fraction = 0.25 + 1e-9;
  miner.max_level = 3;
  auto correlations = MineCorrelations(provider, db->num_items(), miner);
  if (!correlations.ok()) {
    std::cerr << correlations.status().ToString() << "\n";
    return 1;
  }
  std::cout << "correlation rules: " << correlations->significant.size()
            << " minimal correlated itemsets\n\n";

  // --- Where the frameworks disagree. ---
  std::set<Itemset> correlated;
  for (const CorrelationRule& rule : correlations->significant) {
    correlated.insert(rule.itemset);
  }
  // High-confidence pairs that are NOT correlated: the "tea => coffee"
  // trap from the paper's Example 1.
  int misleading = 0;
  for (const AssociationRule& rule : *rules) {
    if (rule.antecedent.size() != 1 || rule.consequent.size() != 1) continue;
    Itemset pair = rule.antecedent.Union(rule.consequent);
    if (!correlated.count(pair)) ++misleading;
  }
  std::cout << misleading
            << " single-item rules pass support+confidence but are NOT "
               "statistically correlated\n(confidence without correlation "
               "— the paper's Example 1 trap).\n";

  // Correlated pairs the rule framework never surfaces (negative
  // dependence or sub-confidence structure).
  int invisible = 0;
  for (const Itemset& pair : correlated) {
    if (pair.size() != 2) continue;
    bool surfaced = false;
    for (const AssociationRule& rule : *rules) {
      if (rule.antecedent.Union(rule.consequent) == pair) {
        surfaced = true;
        break;
      }
    }
    if (!surfaced) ++invisible;
  }
  std::cout << invisible
            << " correlated pairs never appear as confident rules "
               "(correlation without confidence).\n";
  return 0;
}
