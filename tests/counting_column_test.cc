// Differential suite for the hybrid counting-column storage layer: random
// container mixes against std::set reference loops, promotion/demotion
// boundaries, run containers, append-vs-bulk equivalence, the CCS1 shard
// file round trip, and the blocked columns executor against naive counting.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "datagen/quest_generator.h"
#include "datagen/rng.h"
#include "io/column_store.h"
#include "itemset/counting_column.h"
#include "test_util.h"

namespace corrmine {
namespace {

std::vector<uint32_t> RandomRows(datagen::Rng* rng, uint32_t num_rows,
                                 double density) {
  std::vector<uint32_t> rows;
  for (uint32_t r = 0; r < num_rows; ++r) {
    if (rng->NextBernoulli(density)) rows.push_back(r);
  }
  return rows;
}

/// Clustered rows exercise the run container: bursts of consecutive rows
/// separated by gaps.
std::vector<uint32_t> BurstyRows(datagen::Rng* rng, uint32_t num_rows,
                                 uint32_t mean_burst) {
  std::vector<uint32_t> rows;
  uint32_t r = 0;
  while (r < num_rows) {
    uint32_t burst = 1 + static_cast<uint32_t>(rng->NextDouble() *
                                               static_cast<double>(
                                                   2 * mean_burst));
    for (uint32_t i = 0; i < burst && r < num_rows; ++i) rows.push_back(r++);
    r += 1 + static_cast<uint32_t>(rng->NextDouble() * 200.0);
  }
  return rows;
}

uint64_t ReferenceAndCount(const std::vector<uint32_t>& a,
                           const std::vector<uint32_t>& b) {
  std::set<uint32_t> sa(a.begin(), a.end());
  uint64_t count = 0;
  for (uint32_t r : b) count += sa.count(r);
  return count;
}

std::vector<uint32_t> ReferenceAnd(const std::vector<uint32_t>& a,
                                   const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

TEST(CountingColumnTest, RandomDensityMatrixMatchesReference) {
  // Every pairing of density classes crosses a different container-kind
  // pair (array x array, array x dense, dense x dense, plus run mixes).
  const double kDensities[] = {0.0005, 0.01, 0.12, 0.6};
  const uint32_t kNumRows = 200000;
  datagen::Rng rng(42);
  std::vector<std::vector<uint32_t>> row_sets;
  for (double d : kDensities) {
    row_sets.push_back(RandomRows(&rng, kNumRows, d));
  }
  row_sets.push_back(BurstyRows(&rng, kNumRows, 300));
  row_sets.push_back(BurstyRows(&rng, kNumRows, 8000));
  std::vector<CountingColumn> cols;
  for (const auto& rows : row_sets) {
    cols.emplace_back(kNumRows, rows);
    EXPECT_EQ(cols.back().Count(), rows.size());
  }
  for (size_t i = 0; i < cols.size(); ++i) {
    for (size_t j = i; j < cols.size(); ++j) {
      const uint64_t expected = ReferenceAndCount(row_sets[i], row_sets[j]);
      EXPECT_EQ(cols[i].AndCount(cols[j]), expected) << i << " x " << j;
      EXPECT_EQ(cols[j].AndCount(cols[i]), expected) << j << " x " << i;
      const CountingColumn materialized = cols[i].And(cols[j]);
      EXPECT_EQ(materialized.Count(), expected);
      EXPECT_EQ(materialized.ToRows(),
                ReferenceAnd(row_sets[i], row_sets[j]));
      CountingColumn dst;
      EXPECT_EQ(CountingColumn::AndCountInto(cols[i], cols[j], &dst,
                                             nullptr),
                expected);
      EXPECT_EQ(dst.ToRows(), ReferenceAnd(row_sets[i], row_sets[j]));
    }
  }
}

TEST(CountingColumnTest, PromotionBoundaryCounts) {
  // 4095 / 4096 / 4097 distinct offsets in one block straddle the
  // dense-promotion threshold; behavior must be identical on both sides.
  for (uint32_t n : {4095u, 4096u, 4097u}) {
    std::vector<uint32_t> rows;
    for (uint32_t r = 0; r < n; ++r) rows.push_back(r * 16 % 65536);
    std::sort(rows.begin(), rows.end());
    rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
    CountingColumn col(65536, rows);
    EXPECT_EQ(col.Count(), rows.size());
    for (uint32_t probe : {0u, 1u, 65535u}) {
      EXPECT_EQ(col.Test(probe),
                std::binary_search(rows.begin(), rows.end(), probe));
    }
    EXPECT_EQ(col.ToRows(), rows);
    EXPECT_EQ(col.AndCount(col), rows.size());
  }
}

TEST(CountingColumnTest, FullAndEmptyBlocks) {
  const uint32_t kNumRows = 3 * 65536;
  std::vector<uint32_t> full_mid;
  for (uint32_t r = 65536; r < 2 * 65536; ++r) full_mid.push_back(r);
  CountingColumn mid(kNumRows, full_mid);
  EXPECT_EQ(mid.Count(), 65536u);
  CountingColumn empty(kNumRows, {});
  EXPECT_EQ(mid.AndCount(empty), 0u);
  EXPECT_EQ(empty.AndCount(mid), 0u);
  std::vector<uint32_t> everything(kNumRows);
  for (uint32_t r = 0; r < kNumRows; ++r) everything[r] = r;
  CountingColumn all(kNumRows, everything);
  EXPECT_EQ(all.AndCount(mid), 65536u);
  EXPECT_EQ(all.AndCount(all), static_cast<uint64_t>(kNumRows));
  EXPECT_EQ(all.And(mid).ToRows(), full_mid);
}

TEST(CountingColumnTest, DemotionAfterIntersection) {
  // Two dense-worthy columns whose intersection is tiny: the result must
  // still count and materialize correctly (demoted to an array container).
  std::vector<uint32_t> even, mostly_odd;
  for (uint32_t r = 0; r < 65536; r += 2) even.push_back(r);
  for (uint32_t r = 1; r < 65536; r += 2) mostly_odd.push_back(r);
  mostly_odd.push_back(20000);  // the only shared row
  std::sort(mostly_odd.begin(), mostly_odd.end());
  CountingColumn a(65536, even), b(65536, mostly_odd);
  EXPECT_EQ(a.AndCount(b), 1u);
  const CountingColumn c = a.And(b);
  EXPECT_EQ(c.Count(), 1u);
  EXPECT_EQ(c.ToRows(), std::vector<uint32_t>{20000});
}

TEST(CountingColumnTest, AppendMatchesBulkBuild) {
  datagen::Rng rng(99);
  const uint32_t kTotal = 150000;
  std::vector<uint32_t> rows = RandomRows(&rng, kTotal, 0.08);
  // Append in uneven chunks, including one empty append.
  CountingColumn grown(0, {});
  size_t cursor = 0;
  for (uint32_t boundary : {1u, 4096u, 70000u, 70000u, kTotal}) {
    std::vector<uint32_t> chunk;
    while (cursor < rows.size() && rows[cursor] < boundary) {
      chunk.push_back(rows[cursor++]);
    }
    grown.AppendRows(chunk, boundary);
  }
  const CountingColumn bulk(kTotal, rows);
  EXPECT_EQ(grown.Count(), bulk.Count());
  EXPECT_EQ(grown.ToRows(), rows);
  EXPECT_EQ(grown.AndCount(bulk), rows.size());
}

TEST(CountingColumnTest, FromBitmapAgrees) {
  datagen::Rng rng(5);
  std::vector<uint32_t> rows = RandomRows(&rng, 99000, 0.3);
  Bitmap bits(99000);
  for (uint32_t r : rows) bits.Set(r);
  const CountingColumn col = CountingColumn::FromBitmap(bits);
  EXPECT_EQ(col.Count(), rows.size());
  EXPECT_EQ(col.ToRows(), rows);
}

TEST(CountingColumnTest, ColumnShardFileRoundTrip) {
  auto db_or = datagen::GenerateQuestData({.num_transactions = 4000,
                                          .num_items = 200,
                                          .avg_transaction_size = 12.0,
                                          .seed = 31});
  ASSERT_TRUE(db_or.ok());
  const TransactionDatabase& db = *db_or;
  CompressedVerticalIndex index(db);
  const std::string path =
      (std::filesystem::temp_directory_path() / "corrmine_ccs1_test.ccs")
          .string();
  ASSERT_TRUE(io::WriteColumnShardFile(index, path).ok());
  auto shard_or = io::MappedColumnShard::Open(path);
  ASSERT_TRUE(shard_or.ok()) << shard_or.status().ToString();
  const io::MappedColumnShard& shard = *shard_or.value();
  ASSERT_EQ(shard.num_rows(), index.num_rows());
  ASSERT_EQ(shard.num_columns(), index.num_columns());
  for (ItemId item = 0; item < index.num_columns(); ++item) {
    EXPECT_EQ(shard.column(item).ToRows(), index.column(item).ToRows())
        << "item " << item;
  }
  // Counting through the mapped shard equals counting in memory.
  datagen::Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const int k = 1 + static_cast<int>(rng.NextDouble() * 3.0);
    std::set<ItemId> picked;
    while (static_cast<int>(picked.size()) < k) {
      picked.insert(static_cast<ItemId>(rng.NextDouble() * 200.0));
    }
    const Itemset query(std::vector<ItemId>(picked.begin(), picked.end()));
    EXPECT_EQ(CountAllPresentColumns(shard, query),
              CountAllPresentColumns(index, query));
  }
  std::filesystem::remove(path);
}

TEST(CountingColumnTest, U16DeltaVarintArrayRoundTrip) {
  datagen::Rng rng(411);
  for (const double density : {0.001, 0.05, 0.31}) {
    std::vector<uint32_t> rows32 = RandomRows(&rng, 65536, density);
    std::vector<uint16_t> offsets(rows32.begin(), rows32.end());
    std::string encoded;
    EncodeU16DeltaVarint(CountingColumn::ContainerKind::kArray,
                         std::span<const uint16_t>(offsets), &encoded);
    std::vector<uint16_t> decoded;
    ASSERT_TRUE(DecodeU16DeltaVarint(
                    CountingColumn::ContainerKind::kArray,
                    reinterpret_cast<const uint8_t*>(encoded.data()),
                    encoded.size(), offsets.size(), &decoded)
                    .ok());
    EXPECT_EQ(decoded, offsets) << "density " << density;
  }
  // Extremes: empty, singleton 0, singleton 0xffff, the {0, 0xffff} pair.
  for (const std::vector<uint16_t>& offsets :
       {std::vector<uint16_t>{}, {0}, {0xffff}, {0, 0xffff}}) {
    std::string encoded;
    EncodeU16DeltaVarint(CountingColumn::ContainerKind::kArray,
                         std::span<const uint16_t>(offsets), &encoded);
    std::vector<uint16_t> decoded;
    ASSERT_TRUE(DecodeU16DeltaVarint(
                    CountingColumn::ContainerKind::kArray,
                    reinterpret_cast<const uint8_t*>(encoded.data()),
                    encoded.size(), offsets.size(), &decoded)
                    .ok());
    EXPECT_EQ(decoded, offsets);
  }
}

TEST(CountingColumnTest, U16DeltaVarintRunRoundTrip) {
  // (start, length-1) pairs; the directory count is the set-row total.
  const std::vector<uint16_t> runs = {0, 4, 100, 0, 4000, 255, 0xff00, 0xff};
  size_t count = 0;
  for (size_t i = 1; i < runs.size(); i += 2) count += runs[i] + 1;
  std::string encoded;
  EncodeU16DeltaVarint(CountingColumn::ContainerKind::kRun,
                       std::span<const uint16_t>(runs), &encoded);
  std::vector<uint16_t> decoded;
  ASSERT_TRUE(DecodeU16DeltaVarint(
                  CountingColumn::ContainerKind::kRun,
                  reinterpret_cast<const uint8_t*>(encoded.data()),
                  encoded.size(), count, &decoded)
                  .ok());
  EXPECT_EQ(decoded, runs);
  // A dense burst pattern (what the run container actually holds).
  datagen::Rng rng(19);
  std::vector<uint32_t> bursty = BurstyRows(&rng, 65536, 40);
  CountingColumn col(65536, bursty);
  EXPECT_EQ(col.ToRows(), bursty);
}

TEST(CountingColumnTest, U16DeltaVarintRejectsCorruption) {
  const std::vector<uint16_t> offsets = {3, 9, 1000};
  std::string encoded;
  EncodeU16DeltaVarint(CountingColumn::ContainerKind::kArray,
                       std::span<const uint16_t>(offsets), &encoded);
  const auto* data = reinterpret_cast<const uint8_t*>(encoded.data());
  std::vector<uint16_t> decoded;
  // Truncated payload: fewer bytes than the directory count demands.
  EXPECT_FALSE(DecodeU16DeltaVarint(CountingColumn::ContainerKind::kArray,
                                    data, encoded.size() - 1, offsets.size(),
                                    &decoded)
                   .ok());
  // Count larger than the payload encodes.
  EXPECT_FALSE(DecodeU16DeltaVarint(CountingColumn::ContainerKind::kArray,
                                    data, encoded.size(), offsets.size() + 1,
                                    &decoded)
                   .ok());
  // A zero delta in a non-first position breaks strict monotonicity.
  const uint8_t zero_delta[] = {3, 0, 0};
  EXPECT_FALSE(DecodeU16DeltaVarint(CountingColumn::ContainerKind::kArray,
                                    zero_delta, sizeof(zero_delta), 3,
                                    &decoded)
                   .ok());
  // Run lengths that do not sum to the directory count.
  const std::vector<uint16_t> runs = {0, 4, 10, 4};
  std::string run_encoded;
  EncodeU16DeltaVarint(CountingColumn::ContainerKind::kRun,
                       std::span<const uint16_t>(runs), &run_encoded);
  EXPECT_FALSE(
      DecodeU16DeltaVarint(
          CountingColumn::ContainerKind::kRun,
          reinterpret_cast<const uint8_t*>(run_encoded.data()),
          run_encoded.size(), 11 /* true sum is 10 */, &decoded)
          .ok());
}

TEST(CountingColumnTest, ColumnShardV1BackwardCompat) {
  auto db_or = datagen::GenerateQuestData({.num_transactions = 5000,
                                          .num_items = 150,
                                          .avg_transaction_size = 14.0,
                                          .seed = 61});
  ASSERT_TRUE(db_or.ok());
  CompressedVerticalIndex index(*db_or);
  const auto dir = std::filesystem::temp_directory_path();
  const std::string v1_path = (dir / "corrmine_ccs_v1.ccs").string();
  const std::string v2_path = (dir / "corrmine_ccs_v2.ccs").string();
  io::ColumnShardWriteStats v1_stats, v2_stats;
  io::ColumnShardWriteOptions v1_opts;
  v1_opts.format_version = 1;
  ASSERT_TRUE(
      io::WriteColumnShardFile(index, v1_path, v1_opts, &v1_stats).ok());
  ASSERT_TRUE(io::WriteColumnShardFile(index, v2_path, {}, &v2_stats).ok());
  // v1 is the raw layout: payload bytes == raw bytes. v2 must not lose to
  // it (the per-block min-byte rule keeps raw when varint would grow).
  EXPECT_EQ(v1_stats.payload_bytes, v1_stats.raw_payload_bytes);
  EXPECT_EQ(v2_stats.raw_payload_bytes, v1_stats.raw_payload_bytes);
  EXPECT_LE(v2_stats.payload_bytes, v1_stats.payload_bytes);
  // Quest rows are sorted and clustered — compression must actually bite,
  // not just tie.
  EXPECT_LT(v2_stats.payload_bytes, v1_stats.raw_payload_bytes);

  auto v1_or = io::MappedColumnShard::Open(v1_path);
  auto v2_or = io::MappedColumnShard::Open(v2_path);
  ASSERT_TRUE(v1_or.ok()) << v1_or.status().ToString();
  ASSERT_TRUE(v2_or.ok()) << v2_or.status().ToString();
  EXPECT_EQ((*v1_or)->format_version(), 1);
  EXPECT_EQ((*v2_or)->format_version(), 2);
  ASSERT_EQ((*v1_or)->num_columns(), index.num_columns());
  ASSERT_EQ((*v2_or)->num_columns(), index.num_columns());
  for (ItemId item = 0; item < index.num_columns(); ++item) {
    const std::vector<uint32_t> expected = index.column(item).ToRows();
    EXPECT_EQ((*v1_or)->column(item).ToRows(), expected) << "item " << item;
    EXPECT_EQ((*v2_or)->column(item).ToRows(), expected) << "item " << item;
  }
  std::filesystem::remove(v1_path);
  std::filesystem::remove(v2_path);
}

TEST(CountingColumnTest, ShardFileRejectsCorruption) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "corrmine_ccs1_bad.ccs")
          .string();
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("NOPE-not-a-shard-file", f);
    std::fclose(f);
  }
  EXPECT_FALSE(io::MappedColumnShard::Open(path).ok());
  std::filesystem::remove(path);
}

TEST(CountingColumnTest, BlockedExecutorMatchesNaiveCounts) {
  auto db_or = datagen::GenerateQuestData({.num_transactions = 3000,
                                          .num_items = 120,
                                          .avg_transaction_size = 10.0,
                                          .seed = 77});
  ASSERT_TRUE(db_or.ok());
  const TransactionDatabase& db = *db_or;
  const CompressedVerticalIndex index(db);
  // Grouped queries the blocked plan exploits: shared 2-prefixes with
  // varying extensions, plus self (prefix-only) queries.
  std::vector<Itemset> queries;
  for (ItemId a = 0; a < 20; ++a) {
    for (ItemId b = a + 1; b < 24; ++b) {
      const Itemset prefix{a, b};
      queries.push_back(prefix);
      for (ItemId ext = b + 1; ext < b + 5 && ext < 120; ++ext) {
        queries.push_back(prefix.WithItem(ext));
      }
    }
  }
  const BlockedCountPlan plan = BlockedCountPlan::Build(queries);
  std::vector<uint64_t> counts(queries.size(), 0);
  ExecuteBlockedGroupsColumns(plan, 0, plan.groups.size(), index,
                              std::span<uint64_t>(counts), nullptr);
  for (size_t q = 0; q < queries.size(); ++q) {
    EXPECT_EQ(counts[q], index.CountAllPresent(queries[q])) << "query " << q;
  }
}

TEST(CountingColumnTest, ProviderKInvarianceAcrossShardsAndThreads) {
  auto db_or = datagen::GenerateQuestData({.num_transactions = 5000,
                                          .num_items = 150,
                                          .avg_transaction_size = 14.0,
                                          .seed = 13});
  ASSERT_TRUE(db_or.ok());
  const TransactionDatabase& db = *db_or;
  std::vector<Itemset> queries;
  datagen::Rng rng(3);
  for (int trial = 0; trial < 500; ++trial) {
    const int k = 1 + static_cast<int>(rng.NextDouble() * 4.0);
    std::set<ItemId> picked;
    while (static_cast<int>(picked.size()) < k) {
      picked.insert(static_cast<ItemId>(rng.NextDouble() * 150.0));
    }
    queries.emplace_back(std::vector<ItemId>(picked.begin(), picked.end()));
  }
  const CompressedCountProvider reference(db);
  std::vector<uint64_t> expected(queries.size());
  reference.CountAllPresentBatch(queries, std::span<uint64_t>(expected));
  for (size_t shards : {1, 2, 5}) {
    const auto sharded = ShardedTransactionDatabase::Partition(db, shards);
    const CompressedCountProvider provider(sharded);
    EXPECT_EQ(provider.num_baskets(), db.num_baskets());
    for (int threads : {1, 3}) {
      ThreadPool pool(threads);
      std::vector<uint64_t> counts(queries.size(), 0);
      provider.CountAllPresentBatch(queries, std::span<uint64_t>(counts),
                                    &pool);
      EXPECT_EQ(counts, expected) << shards << " shards, pool " << threads;
    }
    // Scalar grain agrees with the batch grain.
    for (size_t q = 0; q < 32; ++q) {
      EXPECT_EQ(provider.CountAllPresent(queries[q]), expected[q]);
    }
  }
}

TEST(CountingColumnTest, ProviderAppendMatchesRebuild) {
  datagen::Rng rng(21);
  TransactionDatabase base(60);
  for (int b = 0; b < 3000; ++b) {
    std::vector<ItemId> basket;
    for (ItemId i = 0; i < 60; ++i) {
      if (rng.NextBernoulli(0.1)) basket.push_back(i);
    }
    ASSERT_TRUE(base.AddBasket(std::move(basket)).ok());
  }
  auto sharded = ShardedTransactionDatabase::Partition(base, 3);
  CompressedCountProvider provider(sharded);
  // Append a delta that also widens the item space.
  ASSERT_TRUE(sharded.GrowItemSpace(80).ok());
  for (int b = 0; b < 500; ++b) {
    std::vector<ItemId> basket;
    for (ItemId i = 0; i < 80; ++i) {
      if (rng.NextBernoulli(0.15)) basket.push_back(i);
    }
    ASSERT_TRUE(sharded.AddBasket(std::move(basket)).ok());
  }
  provider.AppendFrom(sharded);
  const CompressedCountProvider rebuilt(sharded);
  EXPECT_EQ(provider.num_baskets(), rebuilt.num_baskets());
  for (int trial = 0; trial < 300; ++trial) {
    const int k = 1 + static_cast<int>(rng.NextDouble() * 3.0);
    std::set<ItemId> picked;
    while (static_cast<int>(picked.size()) < k) {
      picked.insert(static_cast<ItemId>(rng.NextDouble() * 80.0));
    }
    const Itemset query(std::vector<ItemId>(picked.begin(), picked.end()));
    EXPECT_EQ(provider.CountAllPresent(query), rebuilt.CountAllPresent(query));
  }
}

}  // namespace
}  // namespace corrmine
