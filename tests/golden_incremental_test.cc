// Golden sliding-window regression over the Table 4 text corpus. The
// corpus slides through time — a base window of documents, then batches of
// newer articles arriving while the oldest batch retires — and after every
// window move the border is repaired and snapshotted: window extent, the
// top correlated word pairs, the memo size, and the full deterministic
// stats line. Each step is also cross-checked against a from-scratch mine
// of the same window before it enters the snapshot, so the golden file
// records outputs the differential contract has already vouched for.
//
// When an intentional change shifts the output, regenerate with:
//   ./golden_incremental_test --update-golden
// and review the golden diff like any other code change. GOLDEN_DIR is
// injected by CMake and points into the source tree, so --update-golden
// rewrites the checked-in file in place.

#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/border_repair.h"
#include "core/chi_squared_miner.h"
#include "core/session.h"
#include "datagen/text_generator.h"
#include "io/stats_json.h"
#include "io/table_printer.h"

#ifndef GOLDEN_DIR
#error "GOLDEN_DIR must be defined by the build"
#endif

namespace corrmine {

// Set from main before gtest runs; outside the anonymous namespace so the
// flag-peeling main below can reach it.
bool g_update_golden = false;

namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(GOLDEN_DIR) + "/" + name + ".txt";
}

void CompareOrUpdate(const std::string& name, const std::string& actual) {
  const std::string path = GoldenPath(name);
  if (g_update_golden) {
    std::ofstream out(path, std::ios::out | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    out.flush();
    ASSERT_TRUE(out.good()) << "failed writing " << path;
    std::cout << "updated " << path << "\n";
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << "missing golden file " << path
      << " — run ./golden_incremental_test --update-golden to create it";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "snapshot for " << name << " diverged from " << path
      << "; if intentional, regenerate with --update-golden";
}

// Renders the window's mining result: top correlated pairs by chi2 (total
// order — ties broken by itemset), then the deterministic stats line.
std::string RenderWindow(const MiningResult& result,
                         const ItemDictionary& dictionary) {
  std::vector<const CorrelationRule*> pairs;
  for (const CorrelationRule& rule : result.significant) {
    if (rule.itemset.size() == 2) pairs.push_back(&rule);
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const CorrelationRule* a, const CorrelationRule* b) {
              if (a->chi2.statistic != b->chi2.statistic) {
                return a->chi2.statistic > b->chi2.statistic;
              }
              return a->itemset < b->itemset;
            });
  std::ostringstream out;
  io::TablePrinter table({"correlated words", "chi2"});
  for (size_t i = 0; i < pairs.size() && i < 5; ++i) {
    std::string words;
    for (ItemId item : pairs[i]->itemset) {
      if (!words.empty()) words += " ";
      auto name = dictionary.Name(item);
      words += name.ok() ? *name : ("w" + std::to_string(item));
    }
    table.AddRow({words, io::FormatDouble(pairs[i]->chi2.statistic, 3)});
  }
  table.Print(out);
  out << "minimal correlated pairs: " << pairs.size() << "\n";
  out << "stats: " << RenderDeterministicStats(result, nullptr) << "\n";
  return out.str();
}

TEST(GoldenIncrementalTest, Table4SlidingWindow) {
  // Twice the paper's 91 articles so the window can slide: the corpus is
  // the timeline, document order is arrival order. The paper's 10%
  // document-frequency floor keeps ~450 words, which at window-sized
  // supports makes level 3 explode (and the memo with it) — a third of the
  // corpus as the floor keeps the topical core the table is about while
  // the walk stays test-sized.
  datagen::TextCorpusOptions corpus_options;
  corpus_options.num_documents = 180;
  corpus_options.min_doc_frequency = 0.35;
  auto corpus = datagen::GenerateTextCorpus(corpus_options);
  ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
  const TransactionDatabase& all = corpus->database;

  auto slice = [&](size_t begin, size_t end) {
    TransactionDatabase out(all.num_items());
    for (size_t row = begin; row < end; ++row) {
      CORRMINE_CHECK(out.AddBasket(all.basket(row)).ok());
    }
    return out;
  };

  MinerOptions options;
  options.support.min_count = 8;
  options.support.cell_fraction = 0.25 + 1e-9;
  options.max_level = 3;
  options.chi2.min_expected_cell = 1.0;

  TransactionDatabase base = slice(0, 60);
  base.dictionary() = all.dictionary();
  auto inc =
      IncrementalMiner::Create(std::move(base), SessionOptions{}, options);
  ASSERT_TRUE(inc.ok()) << inc.status().ToString();

  // The window as chunk ranges, mirroring the miner's deque: 'a' appends
  // the given document range, 'r' retires the oldest chunk.
  struct Op {
    char kind;
    size_t begin = 0;
    size_t end = 0;
  };
  const std::vector<Op> schedule = {
      {'a', 60, 100}, {'r'}, {'a', 100, 140}, {'r'}, {'a', 140, 180},
  };
  std::vector<std::pair<size_t, size_t>> window = {{0, 60}};

  std::ostringstream out;
  out << "corpus: " << all.num_baskets()
      << " documents, vocabulary: " << all.num_items() << "\n";

  size_t step = 0;
  auto repair_and_render = [&]() {
    auto repaired = inc->Repair();
    ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();

    // Cross-check before the snapshot: a from-scratch mine of the same
    // window must render identically.
    TransactionDatabase window_db(all.num_items());
    for (const auto& [begin, end] : window) {
      for (size_t row = begin; row < end; ++row) {
        ASSERT_TRUE(window_db.AddBasket(all.basket(row)).ok());
      }
    }
    auto scratch_session =
        MiningSession::FromDatabase(window_db, SessionOptions{});
    ASSERT_TRUE(scratch_session.ok());
    auto scratch = scratch_session->Mine(options);
    ASSERT_TRUE(scratch.ok()) << scratch.status().ToString();
    const std::string rendered = RenderWindow(*repaired, all.dictionary());
    ASSERT_EQ(rendered, RenderWindow(*scratch, all.dictionary()))
        << "repair diverged from the from-scratch mine at step " << step;

    out << "\nstep " << step << ": window docs [" << window.front().first
        << ", " << window.back().second << ") — "
        << inc->session().num_baskets() << " documents, memo "
        << inc->state().counts.size() << " counts\n";
    out << rendered;
    ++step;
  };

  repair_and_render();
  for (const Op& op : schedule) {
    if (op.kind == 'a') {
      ASSERT_TRUE(inc->Append(slice(op.begin, op.end)).ok());
      window.emplace_back(op.begin, op.end);
    } else {
      ASSERT_TRUE(inc->RetireOldest().ok());
      window.erase(window.begin());
    }
    repair_and_render();
  }

  CompareOrUpdate("incremental_text_window", out.str());
}

}  // namespace
}  // namespace corrmine

// Own main so --update-golden can be peeled off before gtest parses flags.
int main(int argc, char** argv) {
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--update-golden") {
      corrmine::g_update_golden = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  ::testing::InitGoogleTest(&filtered_argc, args.data());
  return RUN_ALL_TESTS();
}
