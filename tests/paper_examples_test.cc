// End-to-end checks against the worked examples in Brin, Motwani &
// Silverstein (SIGMOD'97). Each test reconstructs an example's data exactly
// as printed and asserts the quantities the paper derives from it.

#include <gtest/gtest.h>

#include "core/chi_squared_test.h"
#include "core/interest.h"
#include "mining/association_rules.h"
#include "stats/chi_squared_distribution.h"
#include "test_util.h"

namespace corrmine {
namespace {

// Example 1: tea (item 0) and coffee (item 1), n = 100.
// Cells (percent of baskets): tc = 20, t!c = 5, !tc = 70, !t!c = 5.
TransactionDatabase Example1Db() {
  std::vector<std::vector<ItemId>> baskets;
  for (int i = 0; i < 20; ++i) baskets.push_back({0, 1});
  for (int i = 0; i < 5; ++i) baskets.push_back({0});
  for (int i = 0; i < 70; ++i) baskets.push_back({1});
  for (int i = 0; i < 5; ++i) baskets.push_back({});
  return testing::MakeDatabase(2, baskets);
}

TEST(PaperExample1, SupportConfidenceLooksGoodButMisleads) {
  auto db = Example1Db();
  ScanCountProvider provider(db);
  auto table = ContingencyTable::Build(provider, Itemset{0, 1});
  ASSERT_TRUE(table.ok());
  auto analysis = AnalyzePair(*table);
  ASSERT_TRUE(analysis.ok());
  // Support of {tea, coffee} is 20%, confidence of tea => coffee is 80%.
  EXPECT_DOUBLE_EQ(analysis->s_ab, 0.20);
  EXPECT_DOUBLE_EQ(analysis->a_to_b, 0.80);
}

TEST(PaperExample1, CorrelationMeasureExposesNegativeDependence) {
  auto db = Example1Db();
  ScanCountProvider provider(db);
  auto table = ContingencyTable::Build(provider, Itemset{0, 1});
  ASSERT_TRUE(table.ok());
  auto cells = ComputeCellInterests(*table);
  // P[t and c] / (P[t] P[c]) = 0.2 / (0.25 * 0.9) ~ 0.89 < 1.
  EXPECT_NEAR(cells[0b11].interest, 0.89, 0.005);
  EXPECT_LT(cells[0b11].interest, 1.0);
}

// Example 3: the first 9 census baskets of Table 1; items i5 (index 0 here)
// and i8 (index 1): O(ab) = 1, row sums 3 and 5, n = 9, chi2 = 0.9.
TEST(PaperExample3, ChiSquaredPointNineNotSignificant) {
  TransactionDatabase db(2);
  ASSERT_TRUE(db.AddBasket({0, 1}).ok());  // both: 1
  for (int i = 0; i < 2; ++i) ASSERT_TRUE(db.AddBasket({0}).ok());
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(db.AddBasket({1}).ok());
  for (int i = 0; i < 2; ++i) ASSERT_TRUE(db.AddBasket({}).ok());
  ScanCountProvider provider(db);
  auto table = ContingencyTable::Build(provider, Itemset{0, 1});
  ASSERT_TRUE(table.ok());
  ChiSquaredResult result = ComputeChiSquared(*table);
  EXPECT_NEAR(result.statistic, 0.900, 1e-9);
  // "Since 0.900 is less than 3.84, we do not reject independence."
  EXPECT_LT(result.statistic, stats::ChiSquaredCriticalValue(0.95, 1));
  EXPECT_FALSE(result.SignificantAt(0.95));
  // The tiny table also violates the rule of thumb — the paper's Section
  // 3.3 caveat applies to its own example.
  EXPECT_FALSE(result.validity.RuleOfThumbSatisfied());
}

// Example 4/5: military service (i2) x age (i7) on the full census data.
// The paper reports chi2 = 2006.34, dominated by the veteran & over-40 cell,
// with interest values around 0.44 for (<=40, veteran).
// We rebuild the exact 2x2 joint from Table 3's i2/i7 row:
//   P(i2 & i7) = 58.9%, P(!i2 & i7) = 2.7%, P(i2 & !i7) = 30.4%,
//   P(!i2 & !i7) = 8.0%, n = 30370.
TEST(PaperExample4, MilitaryAgeChiSquaredMagnitude) {
  const double n = 30370.0;
  std::vector<std::vector<ItemId>> baskets;
  auto add = [&](double percent, std::vector<ItemId> basket) {
    int count = static_cast<int>(percent / 100.0 * n + 0.5);
    for (int i = 0; i < count; ++i) baskets.push_back(basket);
  };
  // Item 0 = i2 (never served), item 1 = i7 (age <= 40).
  add(58.9, {0, 1});
  add(2.7, {1});
  add(30.4, {0});
  add(8.0, {});
  auto db = testing::MakeDatabase(2, baskets);
  ScanCountProvider provider(db);
  auto table = ContingencyTable::Build(provider, Itemset{0, 1});
  ASSERT_TRUE(table.ok());
  ChiSquaredResult result = ComputeChiSquared(*table);
  // Rounding the published percentages moves the statistic a little; the
  // paper's 2006.34 must be reproduced within a few percent.
  EXPECT_NEAR(result.statistic, 2006.34, 60.0);
  EXPECT_TRUE(result.SignificantAt(0.95));

  // Example 5: the (veteran, over 40) cell dominates, and the (<= 40,
  // veteran) cell shows strong negative dependence (~0.44).
  CellInterest major = MajorDependenceCell(*table);
  EXPECT_EQ(major.mask, 0b00u);  // !i2 (veteran) & !i7 (over 40).
  EXPECT_GT(major.interest, 1.5);
  auto cells = ComputeCellInterests(*table);
  EXPECT_NEAR(cells[0b10].interest, 0.44, 0.05);  // veteran & <= 40.
}

TEST(PaperExample4, SupportConfidencePassesEverythingUnhelpfully) {
  // The paper notes all four pairs pass 1% support and exactly the four
  // rules x => y with confident directions pass 50% confidence.
  const double n = 30370.0;
  std::vector<std::vector<ItemId>> baskets;
  auto add = [&](double percent, std::vector<ItemId> basket) {
    int count = static_cast<int>(percent / 100.0 * n + 0.5);
    for (int i = 0; i < count; ++i) baskets.push_back(basket);
  };
  add(58.9, {0, 1});
  add(2.7, {1});
  add(30.4, {0});
  add(8.0, {});
  auto db = testing::MakeDatabase(2, baskets);
  ScanCountProvider provider(db);
  auto table = ContingencyTable::Build(provider, Itemset{0, 1});
  ASSERT_TRUE(table.ok());
  auto analysis = AnalyzePair(*table);
  ASSERT_TRUE(analysis.ok());
  // All four cell supports exceed 1%.
  EXPECT_GT(analysis->s_ab, 0.01);
  EXPECT_GT(analysis->s_nab, 0.01);
  EXPECT_GT(analysis->s_anb, 0.01);
  EXPECT_GT(analysis->s_nanb, 0.01);
  // i2 => i7, i7 => i2 pass 50% confidence; the veteran-directed rules of
  // the same form: !i2 => !i7 ("Many veterans are over 40") too.
  EXPECT_GT(analysis->a_to_b, 0.5);
  EXPECT_GT(analysis->b_to_a, 0.5);
  EXPECT_GT(analysis->na_to_nb, 0.5);
  EXPECT_LT(analysis->na_to_b, 0.5);
}

// Example 2: confidence is not upward closed — c => d has confidence 0.52
// while {c, t} => d has confidence 0.44 (with cutoff 0.50 between them).
TEST(PaperExample2, ConfidenceNotUpwardClosed) {
  // From the paper's two tables (percent of n = 100 baskets):
  // with doughnuts: tc=8, t!c=2 (row t), !tc=40, !t!c=5;
  // without doughnuts: tc=10, t!c=5, !tc=35, !t!c=0... reconstructed so
  // that P[c & d] = 48, P[c] = 93, P[t & c] = 18, P[t & c & d] = 8.
  std::vector<std::vector<ItemId>> baskets;
  // Items: 0 = coffee (c), 1 = tea (t), 2 = doughnut (d).
  auto add = [&](int count, std::vector<ItemId> basket) {
    for (int i = 0; i < count; ++i) baskets.push_back(basket);
  };
  add(8, {0, 1, 2});   // t, c, d
  add(40, {0, 2});     // c, d, no tea
  add(10, {0, 1});     // t, c
  add(35, {0});        // c only
  add(2, {1, 2});      // t, d
  add(5, {2});         // d only
  // 100 total so far: pad with tea-only/empty to keep margins harmless.
  auto db = testing::MakeDatabase(3, baskets);
  ScanCountProvider provider(db);
  uint64_t c_count = provider.CountAllPresent(Itemset{0});
  uint64_t cd_count = provider.CountAllPresent(Itemset{0, 2});
  uint64_t tc_count = provider.CountAllPresent(Itemset{0, 1});
  uint64_t tcd_count = provider.CountAllPresent(Itemset{0, 1, 2});
  double conf_c_d = static_cast<double>(cd_count) / c_count;
  double conf_tc_d = static_cast<double>(tcd_count) / tc_count;
  EXPECT_NEAR(conf_c_d, 48.0 / 93.0, 1e-12);
  EXPECT_NEAR(conf_tc_d, 8.0 / 18.0, 1e-12);
  EXPECT_GT(conf_c_d, 0.50);   // Rule passes.
  EXPECT_LT(conf_tc_d, 0.50);  // Superset rule fails: no closure.
}

}  // namespace
}  // namespace corrmine
