// Tests for the likelihood-ratio G statistic option of the independence
// test: known values, agreement with Pearson in the asymptotic regime,
// sparse path behaviour, and the upward-closure property that qualifies G
// as a drop-in statistic for the miner.

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/chi_squared_miner.h"
#include "core/chi_squared_test.h"
#include "datagen/rng.h"
#include "test_util.h"

namespace corrmine {
namespace {

ChiSquaredOptions GOptions() {
  ChiSquaredOptions options;
  options.statistic = IndependenceStatistic::kLikelihoodRatioG;
  return options;
}

TEST(GTest, HandComputedValue) {
  // Cells: both=30, a=10, b=10, neither=50 (n=100, O(a)=O(b)=40).
  std::vector<std::vector<ItemId>> baskets;
  for (int i = 0; i < 30; ++i) baskets.push_back({0, 1});
  for (int i = 0; i < 10; ++i) baskets.push_back({0});
  for (int i = 0; i < 10; ++i) baskets.push_back({1});
  for (int i = 0; i < 50; ++i) baskets.push_back({});
  auto db = testing::MakeDatabase(2, baskets);
  ScanCountProvider provider(db);
  auto table = ContingencyTable::Build(provider, Itemset{0, 1});
  ASSERT_TRUE(table.ok());
  // E = {16, 24, 24, 36}; G = 2 * sum O ln(O/E).
  double expected_g =
      2.0 * (30 * std::log(30.0 / 16.0) + 10 * std::log(10.0 / 24.0) +
             10 * std::log(10.0 / 24.0) + 50 * std::log(50.0 / 36.0));
  ChiSquaredResult g = ComputeChiSquared(*table, GOptions());
  EXPECT_NEAR(g.statistic, expected_g, 1e-10);
  EXPECT_TRUE(g.SignificantAt(0.95));
}

TEST(GTest, ZeroForExactIndependence) {
  auto db = testing::MakeDatabase(2, {{0, 1}, {0}, {1}, {}});
  ScanCountProvider provider(db);
  auto table = ContingencyTable::Build(provider, Itemset{0, 1});
  ASSERT_TRUE(table.ok());
  EXPECT_NEAR(ComputeChiSquared(*table, GOptions()).statistic, 0.0, 1e-12);
}

TEST(GTest, CloseToPearsonForMildDeviations) {
  // Both statistics are asymptotically equivalent; with large n and mild
  // dependence they should nearly agree.
  auto db = testing::RandomCorrelatedDatabase(2, 5000, 0.15, 7);
  BitmapCountProvider provider(db);
  auto table = ContingencyTable::Build(provider, Itemset{0, 1});
  ASSERT_TRUE(table.ok());
  double pearson = ComputeChiSquared(*table).statistic;
  double g = ComputeChiSquared(*table, GOptions()).statistic;
  EXPECT_NEAR(g, pearson, 0.05 * (1.0 + pearson));
}

TEST(GTest, SparseEqualsDense) {
  auto db = testing::RandomCorrelatedDatabase(6, 300, 0.8, 21);
  BitmapCountProvider provider(db);
  for (auto s : {Itemset{0, 1}, Itemset{1, 2, 3}, Itemset{0, 2, 4, 5}}) {
    auto dense = ContingencyTable::Build(provider, s);
    auto sparse = SparseContingencyTable::Build(db, s);
    ASSERT_TRUE(dense.ok());
    ASSERT_TRUE(sparse.ok());
    double d = ComputeChiSquared(*dense, GOptions()).statistic;
    double sp = ComputeChiSquared(*sparse, GOptions()).statistic;
    EXPECT_NEAR(sp, d, 1e-9 * (1.0 + d)) << s.ToString();
  }
}

// Upward closure of G (log-sum inequality): adding an item never decreases
// the statistic, so G-based mining has the same border structure.
class GUpwardClosure : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GUpwardClosure, MonotoneUnderSupersets) {
  auto db = testing::RandomCorrelatedDatabase(6, 250, 0.7, GetParam());
  BitmapCountProvider provider(db);
  datagen::Rng rng(GetParam() * 13 + 1);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<ItemId> items;
    size_t size = 2 + rng.NextBelow(3);
    while (items.size() < size) {
      ItemId candidate = static_cast<ItemId>(rng.NextBelow(6));
      if (std::find(items.begin(), items.end(), candidate) == items.end()) {
        items.push_back(candidate);
      }
    }
    Itemset s(items);
    ItemId extra = static_cast<ItemId>(rng.NextBelow(6));
    if (s.Contains(extra)) continue;
    if (db.ItemCount(extra) == 0 || db.ItemCount(extra) == db.num_baskets()) {
      continue;
    }
    auto small = ContingencyTable::Build(provider, s);
    auto big = ContingencyTable::Build(provider, s.WithItem(extra));
    ASSERT_TRUE(small.ok());
    ASSERT_TRUE(big.ok());
    EXPECT_GE(ComputeChiSquared(*big, GOptions()).statistic,
              ComputeChiSquared(*small, GOptions()).statistic - 1e-7)
        << s.ToString() << " + " << extra;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GUpwardClosure,
                         ::testing::Values(31, 62, 93, 124));

TEST(GTest, MinerRunsWithGStatistic) {
  auto db = testing::RandomCorrelatedDatabase(5, 400, 0.9, 3);
  BitmapCountProvider provider(db);
  MinerOptions options;
  options.support.min_count = 4;
  options.support.cell_fraction = 0.26;
  options.chi2.statistic = IndependenceStatistic::kLikelihoodRatioG;
  auto result = MineCorrelations(provider, db.num_items(), options);
  ASSERT_TRUE(result.ok());
  bool found = false;
  for (const CorrelationRule& rule : result->significant) {
    if (rule.itemset == Itemset{0, 1}) found = true;
  }
  EXPECT_TRUE(found) << "planted pair not found under the G statistic";
}

}  // namespace
}  // namespace corrmine
