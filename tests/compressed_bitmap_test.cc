#include <gtest/gtest.h>

#include "core/contingency_table.h"
#include "datagen/quest_generator.h"
#include "itemset/compressed_bitmap.h"
#include "test_util.h"

namespace corrmine {
namespace {

TEST(CompressedBitmapTest, BuildAndTest) {
  CompressedBitmap map(200000, {0, 5, 65535, 65536, 199999});
  EXPECT_EQ(map.Count(), 5u);
  EXPECT_TRUE(map.Test(0));
  EXPECT_TRUE(map.Test(65535));
  EXPECT_TRUE(map.Test(65536));
  EXPECT_TRUE(map.Test(199999));
  EXPECT_FALSE(map.Test(1));
  EXPECT_FALSE(map.Test(65537));
  EXPECT_FALSE(map.Test(131072));
}

TEST(CompressedBitmapTest, EmptyMap) {
  CompressedBitmap map(1000, {});
  EXPECT_EQ(map.Count(), 0u);
  EXPECT_FALSE(map.Test(0));
  EXPECT_TRUE(map.ToRows().empty());
  CompressedBitmap other(1000, {5});
  EXPECT_EQ(map.AndCount(other), 0u);
}

TEST(CompressedBitmapTest, DenseContainerKicksIn) {
  // 5000 rows in one block crosses the 4096 threshold.
  std::vector<uint32_t> rows;
  for (uint32_t r = 0; r < 5000; ++r) rows.push_back(r * 13 % 65536);
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  CompressedBitmap map(65536, rows);
  EXPECT_EQ(map.Count(), rows.size());
  for (uint32_t r : rows) EXPECT_TRUE(map.Test(r));
  EXPECT_EQ(map.ToRows(), rows);
}

TEST(CompressedBitmapTest, RoundTripThroughRows) {
  datagen::Rng rng(7);
  std::vector<uint32_t> rows;
  for (uint32_t r = 0; r < 300000; ++r) {
    if (rng.NextBernoulli(0.01)) rows.push_back(r);
  }
  CompressedBitmap map(300000, rows);
  EXPECT_EQ(map.ToRows(), rows);
}

class CompressedVsPlain : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CompressedVsPlain, AndCountMatchesPlainBitmap) {
  datagen::Rng rng(GetParam());
  size_t n = 100000;
  Bitmap a(n), b(n);
  for (size_t r = 0; r < n; ++r) {
    if (rng.NextBernoulli(0.02)) a.Set(r);
    if (rng.NextBernoulli(0.3)) b.Set(r);  // One sparse, one dense-ish.
  }
  CompressedBitmap ca = CompressedBitmap::FromBitmap(a);
  CompressedBitmap cb = CompressedBitmap::FromBitmap(b);
  EXPECT_EQ(ca.Count(), a.Count());
  EXPECT_EQ(cb.Count(), b.Count());
  EXPECT_EQ(ca.AndCount(cb), a.AndCount(b));
  EXPECT_EQ(ca.AndCount(ca), a.Count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressedVsPlain,
                         ::testing::Values(1, 2, 3, 4));

TEST(CompressedVerticalIndexTest, CountsMatchPlainIndex) {
  datagen::QuestOptions quest;
  quest.num_transactions = 20000;
  quest.num_items = 100;
  quest.avg_transaction_size = 8.0;
  quest.num_patterns = 30;
  auto db = datagen::GenerateQuestData(quest);
  ASSERT_TRUE(db.ok());
  VerticalIndex plain(*db);
  CompressedVerticalIndex compressed(*db);
  datagen::Rng rng(11);
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<ItemId> items;
    size_t size = 1 + rng.NextBelow(4);
    while (items.size() < size) {
      ItemId candidate = static_cast<ItemId>(rng.NextBelow(100));
      if (std::find(items.begin(), items.end(), candidate) == items.end()) {
        items.push_back(candidate);
      }
    }
    Itemset s(items);
    EXPECT_EQ(compressed.CountAllPresent(s), plain.CountAllPresent(s))
        << s.ToString();
  }
}

TEST(CompressedVerticalIndexTest, CompressesSparseColumns) {
  // Quest columns are ~2% dense: compressed payloads should be far
  // smaller than the plain bitmaps (items/8 bytes each).
  datagen::QuestOptions quest;
  quest.num_transactions = 50000;
  quest.num_items = 500;
  quest.avg_transaction_size = 10.0;
  quest.num_patterns = 120;
  auto db = datagen::GenerateQuestData(quest);
  ASSERT_TRUE(db.ok());
  CompressedVerticalIndex compressed(*db);
  size_t plain_bytes = (db->num_baskets() + 7) / 8 * db->num_items();
  EXPECT_LT(compressed.MemoryBytes(), plain_bytes / 2)
      << "compressed " << compressed.MemoryBytes() << " vs plain "
      << plain_bytes;
}

TEST(CompressedCountProviderTest, DrivesContingencyTables) {
  auto db = testing::RandomCorrelatedDatabase(6, 500, 0.9, 17);
  CompressedCountProvider compressed(db);
  BitmapCountProvider plain(db);
  auto a = ContingencyTable::Build(compressed, Itemset{0, 1, 2});
  auto b = ContingencyTable::Build(plain, Itemset{0, 1, 2});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (uint32_t mask = 0; mask < 8; ++mask) {
    EXPECT_EQ(a->Observed(mask), b->Observed(mask));
  }
}

}  // namespace
}  // namespace corrmine
