// Pins the compile-out contract for the profiling subsystem (DESIGN.md
// §13): under -DCORRMINE_METRICS=OFF the instrumentation types shrink to
// empty shells and every profiler entry point is a guaranteed no-op, so a
// metrics-off binary carries zero observability cost. The metrics-off
// verify.sh stage runs the full ctest suite, which is where the disabled
// branches of this file execute; in the default build the enabled
// branches pin the inverse (the types are real and the probe runs).

#include "common/profiler.h"

#include <string>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/pmu.h"
#include "io/json_reader.h"

namespace corrmine {
namespace {

#ifdef CORRMINE_METRICS_DISABLED
// The sizeof-level guarantee: the shells carry no state at all, so a
// ProfileScope on a hot path compiles to nothing.
static_assert(sizeof(ProfileScope) == 1,
              "metrics-off ProfileScope must be an empty shell");
static_assert(sizeof(PmuGroup) == 1,
              "metrics-off PmuGroup must be an empty shell");
static_assert(!kMetricsEnabled, "flag and macro must agree");
#else
static_assert(kMetricsEnabled, "flag and macro must agree");
static_assert(sizeof(ProfileScope) > 1,
              "metrics-on ProfileScope must capture entry counts");
#endif

TEST(ProfilerOffTest, ShellTypesConstructAndDoNothing) {
  PmuGroup group;
  if (!kMetricsEnabled) {
    EXPECT_FALSE(group.valid());
    PmuCounts counts = group.Read();
    EXPECT_FALSE(counts.valid);
    EXPECT_EQ(counts.cycles, 0u);
  }
  {
    ProfileScope scope("off.phase");  // Must be constructible either way.
  }
  if (!kMetricsEnabled) {
    EXPECT_EQ(Profiler::Global().PhaseSnapshot().count("off.phase"), 0u);
  }
}

TEST(ProfilerOffTest, ProbeExplainsCompileOut) {
  const PmuProbe& probe = ProbePmu();
  if (kMetricsEnabled) {
    if (!probe.available) {
      EXPECT_FALSE(probe.reason.empty());
    }
    return;
  }
  EXPECT_FALSE(probe.available);
  EXPECT_NE(probe.reason.find("compiled out"), std::string::npos)
      << probe.reason;
}

TEST(ProfilerOffTest, StartWithEverythingRequestedActivatesNothing) {
  if (kMetricsEnabled) GTEST_SKIP() << "covered by profiler_test";
  Profiler& profiler = Profiler::Global();
  ProfilerOptions options;
  options.pmu = true;
  options.sampling = true;
  options.sample_interval_usec = 500;
  profiler.Start(options);
  EXPECT_FALSE(profiler.pmu_active());
  EXPECT_FALSE(profiler.sampling_active());
  PmuCounts delta;
  delta.cycles = 99;
  delta.valid = true;
  profiler.RecordPhase("off.recorded", delta);
  profiler.Stop();
  EXPECT_EQ(profiler.samples_recorded(), 0u);
  EXPECT_EQ(profiler.samples_dropped(), 0u);
  EXPECT_TRUE(profiler.PhaseSnapshot().empty());
  EXPECT_TRUE(profiler.RenderCollapsedStacks().empty());
}

TEST(ProfilerOffTest, ProfileJsonStaysStructurallyValid) {
  // Even compiled out, the stats-JSON "profile" section must parse and
  // satisfy statsdiff --validate-profile (the section is emitted
  // unconditionally so downstream tooling never branches on build mode).
  auto doc = io::ParseJson(Profiler::Global().RenderProfileJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const io::JsonValue* pmu = doc->Find("pmu");
  ASSERT_NE(pmu, nullptr);
  const io::JsonValue* available = pmu->Find("available");
  ASSERT_NE(available, nullptr);
  ASSERT_EQ(available->type, io::JsonValue::Type::kBool);
  if (!kMetricsEnabled) {
    EXPECT_FALSE(available->bool_value);
  }
  ASSERT_NE(doc->Find("phases"), nullptr);
  ASSERT_NE(doc->Find("sampling"), nullptr);
}

}  // namespace
}  // namespace corrmine
