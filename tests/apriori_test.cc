#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "mining/apriori.h"
#include "mining/association_rules.h"
#include "test_util.h"

namespace corrmine {
namespace {

// Exhaustive frequent-itemset reference for small inputs.
std::map<Itemset, uint64_t> BruteForceFrequent(const TransactionDatabase& db,
                                               double min_support,
                                               int max_size) {
  std::map<Itemset, uint64_t> result;
  uint64_t min_count = static_cast<uint64_t>(
      std::ceil(min_support * static_cast<double>(db.num_baskets()) - 1e-9));
  if (min_count == 0) min_count = 1;
  ItemId k = db.num_items();
  // Enumerate all subsets via bitmask (small k only).
  for (uint32_t mask = 1; mask < (uint32_t{1} << k); ++mask) {
    if (__builtin_popcount(mask) > max_size) continue;
    std::vector<ItemId> items;
    for (ItemId i = 0; i < k; ++i) {
      if ((mask >> i) & 1) items.push_back(i);
    }
    Itemset s(items);
    uint64_t count = 0;
    for (size_t row = 0; row < db.num_baskets(); ++row) {
      if (db.BasketContainsAll(row, s)) ++count;
    }
    if (count >= min_count) result.emplace(std::move(s), count);
  }
  return result;
}

class AprioriEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AprioriEquivalence, MatchesBruteForce) {
  auto db = testing::RandomCorrelatedDatabase(7, 150, 0.8, GetParam());
  BitmapCountProvider provider(db);
  AprioriOptions options;
  options.min_support_fraction = 0.15;
  auto mined = MineFrequentItemsets(provider, db.num_items(), options);
  ASSERT_TRUE(mined.ok());
  auto expected = BruteForceFrequent(db, options.min_support_fraction, 7);
  std::map<Itemset, uint64_t> got;
  for (const FrequentItemset& f : *mined) {
    got.emplace(f.itemset, f.count);
  }
  EXPECT_EQ(got, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AprioriEquivalence,
                         ::testing::Values(3, 6, 9, 12, 15));

TEST(AprioriTest, SupportFractionHelper) {
  FrequentItemset f{Itemset{0}, 25};
  EXPECT_DOUBLE_EQ(f.SupportFraction(100), 0.25);
}

TEST(AprioriTest, MaxLevelLimitsOutput) {
  auto db = testing::RandomCorrelatedDatabase(6, 100, 0.9, 4);
  BitmapCountProvider provider(db);
  AprioriOptions options;
  options.min_support_fraction = 0.05;
  options.max_level = 2;
  auto mined = MineFrequentItemsets(provider, db.num_items(), options);
  ASSERT_TRUE(mined.ok());
  for (const FrequentItemset& f : *mined) {
    EXPECT_LE(f.itemset.size(), 2u);
  }
}

TEST(AprioriTest, InputValidation) {
  auto db = testing::RandomIndependentDatabase(3, 20, 1);
  BitmapCountProvider provider(db);
  AprioriOptions bad;
  bad.min_support_fraction = 0.0;
  EXPECT_TRUE(MineFrequentItemsets(provider, 3, bad)
                  .status()
                  .IsInvalidArgument());
  TransactionDatabase empty(2);
  ScanCountProvider empty_provider(empty);
  EXPECT_TRUE(MineFrequentItemsets(empty_provider, 2, AprioriOptions())
                  .status()
                  .IsFailedPrecondition());
}

// --- Association rules ---

TEST(AssociationRulesTest, GeneratesExpectedRules) {
  // 10 baskets: {0,1} x 6, {0} x 2, {1} x 1, {} x 1.
  std::vector<std::vector<ItemId>> baskets;
  for (int i = 0; i < 6; ++i) baskets.push_back({0, 1});
  baskets.push_back({0});
  baskets.push_back({0});
  baskets.push_back({1});
  baskets.push_back({});
  auto db = testing::MakeDatabase(2, baskets);
  BitmapCountProvider provider(db);
  AprioriOptions apriori;
  apriori.min_support_fraction = 0.3;
  auto frequent = MineFrequentItemsets(provider, 2, apriori);
  ASSERT_TRUE(frequent.ok());

  RuleOptions rules_opts;
  rules_opts.min_confidence = 0.7;
  auto rules = GenerateAssociationRules(*frequent, db.num_baskets(),
                                        rules_opts);
  ASSERT_TRUE(rules.ok());
  // conf(0 => 1) = 6/8 = 0.75 (passes), conf(1 => 0) = 6/7 ~ 0.857 (passes).
  ASSERT_EQ(rules->size(), 2u);
  for (const AssociationRule& rule : *rules) {
    EXPECT_DOUBLE_EQ(rule.support, 0.6);
    if (rule.antecedent == Itemset{0}) {
      EXPECT_DOUBLE_EQ(rule.confidence, 0.75);
    } else {
      EXPECT_DOUBLE_EQ(rule.confidence, 6.0 / 7.0);
    }
  }
}

TEST(AssociationRulesTest, ThreeItemRulePartitions) {
  // All baskets identical: every rule has confidence 1.
  std::vector<std::vector<ItemId>> baskets(5, std::vector<ItemId>{0, 1, 2});
  auto db = testing::MakeDatabase(3, baskets);
  BitmapCountProvider provider(db);
  auto frequent =
      MineFrequentItemsets(provider, 3, AprioriOptions{0.5, 0});
  ASSERT_TRUE(frequent.ok());
  auto rules = GenerateAssociationRules(*frequent, 5, RuleOptions{1.0});
  ASSERT_TRUE(rules.ok());
  // Rules from {0,1}, {0,2}, {1,2}: 2 each = 6; from {0,1,2}: 6 partitions.
  EXPECT_EQ(rules->size(), 12u);
}

TEST(AssociationRulesTest, RejectsNonClosedInput) {
  std::vector<FrequentItemset> frequent = {
      {Itemset{0, 1}, 5}};  // Missing singleton counts.
  EXPECT_TRUE(GenerateAssociationRules(frequent, 10, RuleOptions())
                  .status()
                  .IsFailedPrecondition());
}

// --- Pairwise support-confidence analysis (Table 3 machinery) ---

TEST(AnalyzePairTest, TeaCoffeeNumbers) {
  std::vector<std::vector<ItemId>> baskets;
  for (int i = 0; i < 20; ++i) baskets.push_back({0, 1});
  for (int i = 0; i < 5; ++i) baskets.push_back({0});
  for (int i = 0; i < 70; ++i) baskets.push_back({1});
  for (int i = 0; i < 5; ++i) baskets.push_back({});
  auto db = testing::MakeDatabase(2, baskets);
  ScanCountProvider provider(db);
  auto table = ContingencyTable::Build(provider, Itemset{0, 1});
  ASSERT_TRUE(table.ok());
  auto analysis = AnalyzePair(*table);
  ASSERT_TRUE(analysis.ok());
  EXPECT_DOUBLE_EQ(analysis->s_ab, 0.20);
  EXPECT_DOUBLE_EQ(analysis->s_anb, 0.05);
  EXPECT_DOUBLE_EQ(analysis->s_nab, 0.70);
  EXPECT_DOUBLE_EQ(analysis->s_nanb, 0.05);
  // The paper's Example 1: confidence of tea => coffee is 0.8.
  EXPECT_DOUBLE_EQ(analysis->a_to_b, 0.8);
  EXPECT_DOUBLE_EQ(analysis->b_to_a, 20.0 / 90.0);
  EXPECT_DOUBLE_EQ(analysis->na_to_b, 70.0 / 75.0);
  EXPECT_DOUBLE_EQ(analysis->nb_to_na, 0.5);
}

TEST(AnalyzePairTest, RejectsWrongArity) {
  auto db = testing::RandomIndependentDatabase(3, 50, 2);
  ScanCountProvider provider(db);
  auto table = ContingencyTable::Build(provider, Itemset{0, 1, 2});
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(AnalyzePair(*table).status().IsInvalidArgument());
}

}  // namespace
}  // namespace corrmine
