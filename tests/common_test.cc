#include <gtest/gtest.h>

#include "common/status.h"
#include "common/status_or.h"
#include "common/string_util.h"

namespace corrmine {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

Status FailingHelper() { return Status::IOError("disk"); }

Status UsesReturnNotOk() {
  CORRMINE_RETURN_NOT_OK(FailingHelper());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(UsesReturnNotOk().IsIOError());
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(-1), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsNotFound());
  EXPECT_EQ(v.value_or(-1), -1);
}

StatusOr<int> ProducesValue() { return 7; }

StatusOr<int> UsesAssignOrReturn() {
  CORRMINE_ASSIGN_OR_RETURN(int x, ProducesValue());
  return x + 1;
}

TEST(StatusOrTest, AssignOrReturnUnwraps) {
  auto result = UsesAssignOrReturn();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 8);
}

TEST(StatusOrTest, MoveOnlyValueWorks) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(5);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> owned = std::move(v).value();
  EXPECT_EQ(*owned, 5);
}

TEST(StringUtilTest, SplitCollapsesDelimiterRuns) {
  auto pieces = SplitString("  a \t b  c ");
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
  EXPECT_EQ(pieces[2], "c");
}

TEST(StringUtilTest, SplitEmptyYieldsNothing) {
  EXPECT_TRUE(SplitString("").empty());
  EXPECT_TRUE(SplitString("   ").empty());
}

TEST(StringUtilTest, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(TrimString("  x y\t\n"), "x y");
  EXPECT_EQ(TrimString(""), "");
  EXPECT_EQ(TrimString("abc"), "abc");
}

TEST(StringUtilTest, ParseUint64Valid) {
  auto v = ParseUint64("12345");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 12345u);
  EXPECT_EQ(*ParseUint64("0"), 0u);
  EXPECT_EQ(*ParseUint64("18446744073709551615"), UINT64_MAX);
}

TEST(StringUtilTest, ParseUint64Rejects) {
  EXPECT_FALSE(ParseUint64("").ok());
  EXPECT_FALSE(ParseUint64("12x").ok());
  EXPECT_FALSE(ParseUint64("-3").ok());
  EXPECT_TRUE(ParseUint64("18446744073709551616").status().IsOutOfRange());
}

TEST(StringUtilTest, ParseDoubleValidAndInvalid) {
  auto v = ParseDouble("2.5e3");
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(*v, 2500.0);
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.2.3").ok());
  EXPECT_FALSE(ParseDouble("").ok());
}

TEST(StringUtilTest, ToLowerAndJoin) {
  EXPECT_EQ(ToLowerAscii("AbC-9"), "abc-9");
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
}

}  // namespace
}  // namespace corrmine
