#include "common/thread_pool.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace corrmine {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // Destructor drains the queue before joining.
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ResolveThreadCount) {
  EXPECT_EQ(ThreadPool::ResolveThreadCount(3), 3);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(-5), 1);
  EXPECT_GE(ThreadPool::ResolveThreadCount(0), 1);  // Hardware-dependent.
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> touched(kN);
  Status status = ParallelFor(&pool, kN, /*grain=*/7,
                              [&](size_t begin, size_t end) -> Status {
                                for (size_t i = begin; i < end; ++i) {
                                  touched[i].fetch_add(1);
                                }
                                return Status::OK();
                              });
  ASSERT_TRUE(status.ok()) << status.ToString();
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, InlineWithoutPool) {
  std::vector<int> values(100, 0);
  Status status = ParallelFor(nullptr, values.size(), /*grain=*/9,
                              [&](size_t begin, size_t end) -> Status {
                                for (size_t i = begin; i < end; ++i) {
                                  values[i] = static_cast<int>(i);
                                }
                                return Status::OK();
                              });
  ASSERT_TRUE(status.ok());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(values[i], static_cast<int>(i));
  }
}

TEST(ParallelForTest, EmptyRangeIsOk) {
  ThreadPool pool(2);
  bool ran = false;
  Status status = ParallelFor(&pool, 0, 1, [&](size_t, size_t) -> Status {
    ran = true;
    return Status::OK();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_FALSE(ran);
}

TEST(ParallelForTest, PropagatesEarliestError) {
  ThreadPool pool(4);
  // Chunk 0 is deterministically claimed (the first fetch_add hands out
  // index 0, and the failed-flag check precedes every claim), so when chunk
  // 0 fails its error must win over every later failure, no matter how the
  // chunks interleave. This is the sequential loop's answer, reproduced.
  for (int round = 0; round < 20; ++round) {
    Status status = ParallelFor(
        &pool, 1000, /*grain=*/10, [&](size_t begin, size_t) -> Status {
          if (begin == 0) return Status::InvalidArgument("chunk 0");
          if (begin >= 500) {
            return Status::Internal("late chunk " + std::to_string(begin));
          }
          return Status::OK();
        });
    ASSERT_FALSE(status.ok());
    EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
    EXPECT_EQ(status.message(), "chunk 0");
  }
}

TEST(ParallelForTest, CallerParticipatesWhenPoolIsBusy) {
  // Park every worker on a condition variable, then run a ParallelFor
  // region: the first chunk can only be executed by the calling thread
  // (the helper tasks are queued behind the parked workers). That first
  // chunk releases the workers so the region can finish. Everything is
  // asserted via thread identity and completion counts — no timing.
  ThreadPool pool(3);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> parked{0};
  for (int i = 0; i < 3; ++i) {
    pool.Submit([&] {
      std::unique_lock<std::mutex> lock(mu);
      parked.fetch_add(1);
      cv.notify_all();
      cv.wait(lock, [&] { return release; });
    });
  }
  {
    // All workers demonstrably parked: chunks cannot start on pool threads.
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return parked.load() == 3; });
  }

  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<size_t> covered{0};
  std::atomic<bool> first_chunk_on_caller{false};
  std::atomic<bool> first_seen{false};
  Status status = ParallelFor(
      &pool, 1000, /*grain=*/10, [&](size_t begin, size_t end) -> Status {
        if (!first_seen.exchange(true)) {
          first_chunk_on_caller.store(std::this_thread::get_id() == caller);
          std::lock_guard<std::mutex> lock(mu);
          release = true;
          cv.notify_all();
        }
        covered.fetch_add(end - begin);
        return Status::OK();
      });
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(first_chunk_on_caller.load())
      << "first chunk ran on a pool thread that should have been parked";
  EXPECT_EQ(covered.load(), 1000u);
}

TEST(ParallelForTest, SequentialErrorOrderWithoutPool) {
  // Inline mode must return exactly the first error in index order.
  Status status = ParallelFor(
      nullptr, 100, /*grain=*/10, [&](size_t begin, size_t) -> Status {
        if (begin >= 30) return Status::Internal("chunk " + std::to_string(begin));
        return Status::OK();
      });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.message(), "chunk 30");
}

TEST(ParallelForTest, ExceptionsBecomeInternalStatus) {
  ThreadPool pool(2);
  Status status = ParallelFor(&pool, 100, /*grain=*/5,
                              [&](size_t begin, size_t) -> Status {
                                if (begin == 50) {
                                  throw std::runtime_error("boom");
                                }
                                return Status::OK();
                              });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("boom"), std::string::npos);
}

TEST(ParallelForTest, ManySmallRegionsReuseOnePool) {
  // The miner's usage pattern: one pool, many flushes. Stress the
  // region-setup/teardown path for latent races (meaningful under TSan).
  ThreadPool pool(3);
  for (int region = 0; region < 200; ++region) {
    std::atomic<uint64_t> sum{0};
    Status status = ParallelFor(&pool, 64, /*grain=*/3,
                                [&](size_t begin, size_t end) -> Status {
                                  uint64_t local = 0;
                                  for (size_t i = begin; i < end; ++i) {
                                    local += i;
                                  }
                                  sum.fetch_add(local);
                                  return Status::OK();
                                });
    ASSERT_TRUE(status.ok());
    EXPECT_EQ(sum.load(), 64u * 63u / 2u);
  }
}

}  // namespace
}  // namespace corrmine
