#include "common/thread_pool.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace corrmine {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // Destructor drains the queue before joining.
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ResolveThreadCount) {
  EXPECT_EQ(ThreadPool::ResolveThreadCount(3), 3);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(-5), 1);
  EXPECT_GE(ThreadPool::ResolveThreadCount(0), 1);  // Hardware-dependent.
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> touched(kN);
  Status status = ParallelFor(&pool, kN, /*grain=*/7,
                              [&](size_t begin, size_t end) -> Status {
                                for (size_t i = begin; i < end; ++i) {
                                  touched[i].fetch_add(1);
                                }
                                return Status::OK();
                              });
  ASSERT_TRUE(status.ok()) << status.ToString();
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, InlineWithoutPool) {
  std::vector<int> values(100, 0);
  Status status = ParallelFor(nullptr, values.size(), /*grain=*/9,
                              [&](size_t begin, size_t end) -> Status {
                                for (size_t i = begin; i < end; ++i) {
                                  values[i] = static_cast<int>(i);
                                }
                                return Status::OK();
                              });
  ASSERT_TRUE(status.ok());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(values[i], static_cast<int>(i));
  }
}

TEST(ParallelForTest, EmptyRangeIsOk) {
  ThreadPool pool(2);
  bool ran = false;
  Status status = ParallelFor(&pool, 0, 1, [&](size_t, size_t) -> Status {
    ran = true;
    return Status::OK();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_FALSE(ran);
}

TEST(ParallelForTest, PropagatesEarliestError) {
  ThreadPool pool(4);
  // Chunk 0 is deterministically claimed (the first fetch_add hands out
  // index 0, and the failed-flag check precedes every claim), so when chunk
  // 0 fails its error must win over every later failure, no matter how the
  // chunks interleave. This is the sequential loop's answer, reproduced.
  for (int round = 0; round < 20; ++round) {
    Status status = ParallelFor(
        &pool, 1000, /*grain=*/10, [&](size_t begin, size_t) -> Status {
          if (begin == 0) return Status::InvalidArgument("chunk 0");
          if (begin >= 500) {
            return Status::Internal("late chunk " + std::to_string(begin));
          }
          return Status::OK();
        });
    ASSERT_FALSE(status.ok());
    EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
    EXPECT_EQ(status.message(), "chunk 0");
  }
}

TEST(ParallelForTest, CallerParticipatesWhenPoolIsBusy) {
  // Park every worker on a condition variable, then run a ParallelFor
  // region: the first chunk can only be executed by the calling thread
  // (the helper tasks are queued behind the parked workers). That first
  // chunk releases the workers so the region can finish. Everything is
  // asserted via thread identity and completion counts — no timing.
  ThreadPool pool(3);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> parked{0};
  for (int i = 0; i < 3; ++i) {
    pool.Submit([&] {
      std::unique_lock<std::mutex> lock(mu);
      parked.fetch_add(1);
      cv.notify_all();
      cv.wait(lock, [&] { return release; });
    });
  }
  {
    // All workers demonstrably parked: chunks cannot start on pool threads.
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return parked.load() == 3; });
  }

  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<size_t> covered{0};
  std::atomic<bool> first_chunk_on_caller{false};
  std::atomic<bool> first_seen{false};
  Status status = ParallelFor(
      &pool, 1000, /*grain=*/10, [&](size_t begin, size_t end) -> Status {
        if (!first_seen.exchange(true)) {
          first_chunk_on_caller.store(std::this_thread::get_id() == caller);
          std::lock_guard<std::mutex> lock(mu);
          release = true;
          cv.notify_all();
        }
        covered.fetch_add(end - begin);
        return Status::OK();
      });
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(first_chunk_on_caller.load())
      << "first chunk ran on a pool thread that should have been parked";
  EXPECT_EQ(covered.load(), 1000u);
}

TEST(ParallelForTest, SequentialErrorOrderWithoutPool) {
  // Inline mode must return exactly the first error in index order.
  Status status = ParallelFor(
      nullptr, 100, /*grain=*/10, [&](size_t begin, size_t) -> Status {
        if (begin >= 30) return Status::Internal("chunk " + std::to_string(begin));
        return Status::OK();
      });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.message(), "chunk 30");
}

TEST(ParallelForTest, ExceptionsBecomeInternalStatus) {
  ThreadPool pool(2);
  Status status = ParallelFor(&pool, 100, /*grain=*/5,
                              [&](size_t begin, size_t) -> Status {
                                if (begin == 50) {
                                  throw std::runtime_error("boom");
                                }
                                return Status::OK();
                              });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("boom"), std::string::npos);
}

TEST(ThreadPoolTest, UsableHardwareConcurrencyIsSane) {
  int usable = ThreadPool::UsableHardwareConcurrency();
  EXPECT_GE(usable, 1);
  // Never more than the raw hardware count: the whole point is clamping.
  unsigned hw = std::thread::hardware_concurrency();
  if (hw > 0) {
    EXPECT_LE(usable, static_cast<int>(hw));
  }
  EXPECT_EQ(ThreadPool::ResolveThreadCount(0), usable);
}

TEST(ThreadPoolTest, SubmitFromWorkerNeverDeadlocks) {
  // Each task submits more tasks from inside the pool. With the old
  // central queue this was fine; with deques it must route to the worker's
  // own deque and still drain at destruction.
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 8; ++i) {
      pool.Submit([&pool, &counter] {
        counter.fetch_add(1);
        for (int j = 0; j < 4; ++j) {
          pool.Submit([&counter] { counter.fetch_add(1); });
        }
      });
    }
  }
  EXPECT_EQ(counter.load(), 8 + 8 * 4);
}

TEST(ParallelForTest, NestedParallelForFromWorkerCompletes) {
  // An inner ParallelFor issued from inside an outer body running on a
  // pool worker: the help-first join must execute the inner helpers
  // inline-or-stolen rather than blocking the worker on a queue that only
  // it could drain. Deadlock here hangs the test (caught by ctest timeout).
  ThreadPool pool(2);
  std::atomic<uint64_t> total{0};
  Status status = ParallelFor(
      &pool, 16, /*grain=*/1, [&](size_t begin, size_t) -> Status {
        std::atomic<uint64_t> inner_sum{0};
        Status inner = ParallelFor(&pool, 32, /*grain=*/4,
                                   [&](size_t b, size_t e) -> Status {
                                     uint64_t local = 0;
                                     for (size_t i = b; i < e; ++i) local += i;
                                     inner_sum.fetch_add(local);
                                     return Status::OK();
                                   });
        if (!inner.ok()) return inner;
        if (inner_sum.load() != 32u * 31u / 2u) {
          return Status::Internal("inner sum wrong at outer " +
                                  std::to_string(begin));
        }
        total.fetch_add(inner_sum.load());
        return Status::OK();
      });
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(total.load(), 16u * (32u * 31u / 2u));
}

TEST(ParallelForTest, SlotsAreExclusiveWhileHeld) {
  // No two concurrently-running bodies may observe the same slot. Each
  // body marks its slot busy on entry and frees it on exit; a collision
  // means the slot invariant is broken.
  ThreadPool pool(3);
  const size_t bound = ParallelForSlotBound(&pool, 10000, 7);
  ASSERT_GE(bound, 1u);
  std::vector<std::atomic<int>> in_use(bound);
  std::atomic<bool> collision{false};
  std::vector<std::atomic<uint64_t>> per_slot(bound);
  Status status = ParallelForSlots(
      &pool, 10000, /*grain=*/7,
      [&](size_t slot, size_t begin, size_t end) -> Status {
        if (slot >= bound) return Status::Internal("slot out of bounds");
        if (in_use[slot].fetch_add(1) != 0) collision.store(true);
        for (size_t i = begin; i < end; ++i) {
          per_slot[slot].fetch_add(i);
        }
        in_use[slot].fetch_sub(1);
        return Status::OK();
      });
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_FALSE(collision.load());
  uint64_t total = 0;
  for (size_t s = 0; s < bound; ++s) total += per_slot[s].load();
  EXPECT_EQ(total, 10000ull * 9999ull / 2ull);
}

TEST(OrderedPipelineTest, ConsumesEveryChunkInOrder) {
  ThreadPool pool(3);
  constexpr size_t kN = 5000;
  std::vector<uint32_t> staged(kN, 0);
  std::vector<size_t> consumed_begins;
  uint64_t checksum = 0;
  Status status = OrderedPipeline(
      &pool, kN, /*grain=*/13,
      [&](size_t, size_t begin, size_t end) -> Status {
        for (size_t i = begin; i < end; ++i) {
          staged[i] = static_cast<uint32_t>(i * 3 + 1);
        }
        return Status::OK();
      },
      [&](size_t begin, size_t end) -> Status {
        consumed_begins.push_back(begin);  // serial: no lock needed
        for (size_t i = begin; i < end; ++i) checksum += staged[i];
        return Status::OK();
      });
  ASSERT_TRUE(status.ok()) << status.ToString();
  ASSERT_EQ(consumed_begins.size(), (kN + 12) / 13);
  for (size_t c = 0; c < consumed_begins.size(); ++c) {
    EXPECT_EQ(consumed_begins[c], c * 13);
  }
  uint64_t expected = 0;
  for (size_t i = 0; i < kN; ++i) expected += i * 3 + 1;
  EXPECT_EQ(checksum, expected);
}

TEST(OrderedPipelineTest, MatchesInlineSemanticsOnErrors) {
  // A stage error and a consumer error racing: the reported error must be
  // the one the inline interleaving stage(0),consume(0),stage(1),... hits
  // first. Stage fails at chunk 20 (position 40); the consumer fails at
  // chunk 10 (position 21) — the consumer error must win, every round.
  ThreadPool pool(4);
  for (int round = 0; round < 10; ++round) {
    Status status = OrderedPipeline(
        &pool, 1000, /*grain=*/10,
        [&](size_t, size_t begin, size_t) -> Status {
          if (begin == 200) return Status::Internal("stage chunk 20");
          return Status::OK();
        },
        [&](size_t begin, size_t) -> Status {
          if (begin == 100) return Status::InvalidArgument("consume chunk 10");
          return Status::OK();
        });
    ASSERT_FALSE(status.ok());
    EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
    EXPECT_EQ(status.message(), "consume chunk 10");
  }
  // And with only a stage error, the earliest stage error wins.
  Status status = OrderedPipeline(
      &pool, 1000, /*grain=*/10,
      [&](size_t, size_t begin, size_t) -> Status {
        if (begin >= 300) {
          return Status::Internal("stage chunk " + std::to_string(begin / 10));
        }
        return Status::OK();
      },
      [&](size_t, size_t) -> Status { return Status::OK(); });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.message(), "stage chunk 30");
}

TEST(OrderedPipelineTest, InlineWithoutPool) {
  std::vector<int> order;
  Status status = OrderedPipeline(
      nullptr, 30, /*grain=*/10,
      [&](size_t, size_t begin, size_t) -> Status {
        order.push_back(static_cast<int>(begin));
        return Status::OK();
      },
      [&](size_t begin, size_t) -> Status {
        order.push_back(-(static_cast<int>(begin) + 1));
        return Status::OK();
      });
  ASSERT_TRUE(status.ok());
  // Strict stage/consume interleaving in chunk order.
  std::vector<int> expected = {0, -1, 10, -11, 20, -21};
  EXPECT_EQ(order, expected);
}

TEST(ParallelForTest, ManySmallRegionsReuseOnePool) {
  // The miner's usage pattern: one pool, many flushes. Stress the
  // region-setup/teardown path for latent races (meaningful under TSan).
  ThreadPool pool(3);
  for (int region = 0; region < 200; ++region) {
    std::atomic<uint64_t> sum{0};
    Status status = ParallelFor(&pool, 64, /*grain=*/3,
                                [&](size_t begin, size_t end) -> Status {
                                  uint64_t local = 0;
                                  for (size_t i = begin; i < end; ++i) {
                                    local += i;
                                  }
                                  sum.fetch_add(local);
                                  return Status::OK();
                                });
    ASSERT_TRUE(status.ok());
    EXPECT_EQ(sum.load(), 64u * 63u / 2u);
  }
}

}  // namespace
}  // namespace corrmine
