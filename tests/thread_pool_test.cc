#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace corrmine {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // Destructor drains the queue before joining.
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ResolveThreadCount) {
  EXPECT_EQ(ThreadPool::ResolveThreadCount(3), 3);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(-5), 1);
  EXPECT_GE(ThreadPool::ResolveThreadCount(0), 1);  // Hardware-dependent.
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> touched(kN);
  Status status = ParallelFor(&pool, kN, /*grain=*/7,
                              [&](size_t begin, size_t end) -> Status {
                                for (size_t i = begin; i < end; ++i) {
                                  touched[i].fetch_add(1);
                                }
                                return Status::OK();
                              });
  ASSERT_TRUE(status.ok()) << status.ToString();
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, InlineWithoutPool) {
  std::vector<int> values(100, 0);
  Status status = ParallelFor(nullptr, values.size(), /*grain=*/9,
                              [&](size_t begin, size_t end) -> Status {
                                for (size_t i = begin; i < end; ++i) {
                                  values[i] = static_cast<int>(i);
                                }
                                return Status::OK();
                              });
  ASSERT_TRUE(status.ok());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(values[i], static_cast<int>(i));
  }
}

TEST(ParallelForTest, EmptyRangeIsOk) {
  ThreadPool pool(2);
  bool ran = false;
  Status status = ParallelFor(&pool, 0, 1, [&](size_t, size_t) -> Status {
    ran = true;
    return Status::OK();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_FALSE(ran);
}

TEST(ParallelForTest, PropagatesEarliestError) {
  ThreadPool pool(4);
  // Several chunks fail; the reported error must be the one a sequential
  // loop would have hit first (lowest starting index).
  for (int round = 0; round < 20; ++round) {
    Status status = ParallelFor(
        &pool, 1000, /*grain=*/10, [&](size_t begin, size_t) -> Status {
          if (begin >= 500) {
            return Status::Internal("late chunk " + std::to_string(begin));
          }
          if (begin >= 200) {
            return Status::InvalidArgument("early chunk");
          }
          return Status::OK();
        });
    ASSERT_FALSE(status.ok());
    // Chunks race, so any failing chunk may be *observed* first, but the
    // recorded winner must always be the earliest-index failure among the
    // chunks that ran — and chunk 200 always runs before the cursor can
    // skip it... the contract we can assert deterministically is weaker:
    // the error is one of the declared failures, and chunk-200's class wins
    // whenever both classes were recorded.
    EXPECT_TRUE(status.IsInvalidArgument() ||
                status.code() == StatusCode::kInternal);
  }
}

TEST(ParallelForTest, SequentialErrorOrderWithoutPool) {
  // Inline mode must return exactly the first error in index order.
  Status status = ParallelFor(
      nullptr, 100, /*grain=*/10, [&](size_t begin, size_t) -> Status {
        if (begin >= 30) return Status::Internal("chunk " + std::to_string(begin));
        return Status::OK();
      });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.message(), "chunk 30");
}

TEST(ParallelForTest, ExceptionsBecomeInternalStatus) {
  ThreadPool pool(2);
  Status status = ParallelFor(&pool, 100, /*grain=*/5,
                              [&](size_t begin, size_t) -> Status {
                                if (begin == 50) {
                                  throw std::runtime_error("boom");
                                }
                                return Status::OK();
                              });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("boom"), std::string::npos);
}

TEST(ParallelForTest, ManySmallRegionsReuseOnePool) {
  // The miner's usage pattern: one pool, many flushes. Stress the
  // region-setup/teardown path for latent races (meaningful under TSan).
  ThreadPool pool(3);
  for (int region = 0; region < 200; ++region) {
    std::atomic<uint64_t> sum{0};
    Status status = ParallelFor(&pool, 64, /*grain=*/3,
                                [&](size_t begin, size_t end) -> Status {
                                  uint64_t local = 0;
                                  for (size_t i = begin; i < end; ++i) {
                                    local += i;
                                  }
                                  sum.fetch_add(local);
                                  return Status::OK();
                                });
    ASSERT_TRUE(status.ok());
    EXPECT_EQ(sum.load(), 64u * 63u / 2u);
  }
}

}  // namespace
}  // namespace corrmine
