#include <gtest/gtest.h>

#include "datagen/quest_generator.h"
#include "datagen/rng.h"

namespace corrmine::datagen {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(5), b(5);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(7), 7u);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(3);
  double sum = 0, sum_sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, PoissonMeanSmallAndLarge) {
  Rng rng(4);
  for (double mean : {2.0, 20.0, 100.0}) {
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
      sum += static_cast<double>(rng.NextPoisson(mean));
    }
    EXPECT_NEAR(sum / n, mean, mean * 0.05) << "mean " << mean;
  }
}

TEST(RngTest, ExponentialMean) {
  Rng rng(5);
  double sum = 0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

// --- Quest generator ---

TEST(QuestGeneratorTest, RespectsBasicShape) {
  QuestOptions options;
  options.num_transactions = 5000;
  options.num_items = 100;
  options.avg_transaction_size = 10.0;
  options.avg_pattern_size = 4.0;
  options.num_patterns = 200;
  auto db = GenerateQuestData(options);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->num_baskets(), 5000u);
  EXPECT_EQ(db->num_items(), 100u);

  double mean_size = static_cast<double>(db->TotalItemOccurrences()) /
                     static_cast<double>(db->num_baskets());
  // Duplicates inside a basket collapse, so the realized mean dips below
  // the Poisson target; it must still be in the right ballpark.
  EXPECT_GT(mean_size, 6.0);
  EXPECT_LT(mean_size, 12.0);
}

TEST(QuestGeneratorTest, DeterministicForSeed) {
  QuestOptions options;
  options.num_transactions = 500;
  options.num_items = 50;
  options.num_patterns = 50;
  auto a = GenerateQuestData(options);
  auto b = GenerateQuestData(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->num_baskets(), b->num_baskets());
  for (size_t i = 0; i < a->num_baskets(); ++i) {
    EXPECT_EQ(a->basket(i), b->basket(i)) << "basket " << i;
  }
}

TEST(QuestGeneratorTest, DifferentSeedsDiffer) {
  QuestOptions a_opts;
  a_opts.num_transactions = 200;
  a_opts.num_items = 50;
  a_opts.num_patterns = 50;
  QuestOptions b_opts = a_opts;
  b_opts.seed = a_opts.seed + 1;
  auto a = GenerateQuestData(a_opts);
  auto b = GenerateQuestData(b_opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  int differing = 0;
  for (size_t i = 0; i < 200; ++i) {
    if (a->basket(i) != b->basket(i)) ++differing;
  }
  EXPECT_GT(differing, 100);
}

TEST(QuestGeneratorTest, PlantsCooccurrenceStructure) {
  // Patterns seed correlated item groups: the most frequent pair must
  // co-occur far more often than independence predicts.
  QuestOptions options;
  options.num_transactions = 4000;
  options.num_items = 200;
  options.avg_transaction_size = 10.0;
  options.num_patterns = 40;  // Few patterns -> strong structure.
  auto db = GenerateQuestData(options);
  ASSERT_TRUE(db.ok());
  VerticalIndex index(*db);
  double n = static_cast<double>(db->num_baskets());
  double best_lift = 0.0;
  for (ItemId a = 0; a < 200; ++a) {
    if (db->ItemCount(a) < 40) continue;
    for (ItemId b = a + 1; b < 200; ++b) {
      if (db->ItemCount(b) < 40) continue;
      double joint =
          static_cast<double>(index.CountAllPresent(Itemset{a, b})) / n;
      double expected = (db->ItemCount(a) / n) * (db->ItemCount(b) / n);
      if (joint > 0 && expected > 0) {
        best_lift = std::max(best_lift, joint / expected);
      }
    }
  }
  EXPECT_GT(best_lift, 3.0);
}

TEST(QuestGeneratorTest, InputValidation) {
  QuestOptions bad;
  bad.num_transactions = 0;
  EXPECT_TRUE(GenerateQuestData(bad).status().IsInvalidArgument());
  QuestOptions bad2;
  bad2.num_items = 1;
  EXPECT_TRUE(GenerateQuestData(bad2).status().IsInvalidArgument());
  QuestOptions bad3;
  bad3.correlation_level = 1.5;
  EXPECT_TRUE(GenerateQuestData(bad3).status().IsInvalidArgument());
}

}  // namespace
}  // namespace corrmine::datagen
