#include <gtest/gtest.h>

#include "core/contingency_table.h"
#include "cube/datacube.h"
#include "test_util.h"

namespace corrmine {
namespace {

TEST(DataCubeTest, CountsMatchScanProvider) {
  auto db = testing::RandomIndependentDatabase(6, 300, 8);
  auto cube = DataCube::Build(db, 3);
  ASSERT_TRUE(cube.ok());
  ScanCountProvider scan(db);
  for (ItemId a = 0; a < 6; ++a) {
    EXPECT_EQ(*cube->Count(Itemset{a}), scan.CountAllPresent(Itemset{a}));
    for (ItemId b = a + 1; b < 6; ++b) {
      EXPECT_EQ(*cube->Count(Itemset{a, b}),
                scan.CountAllPresent(Itemset{a, b}));
      for (ItemId c = b + 1; c < 6; ++c) {
        EXPECT_EQ(*cube->Count(Itemset{a, b, c}),
                  scan.CountAllPresent(Itemset{a, b, c}));
      }
    }
  }
}

TEST(DataCubeTest, EmptySetReturnsN) {
  auto db = testing::RandomIndependentDatabase(3, 50, 1);
  auto cube = DataCube::Build(db, 2);
  ASSERT_TRUE(cube.ok());
  EXPECT_EQ(*cube->Count(Itemset{}), 50u);
}

TEST(DataCubeTest, MissingCombinationIsZero) {
  auto db = testing::MakeDatabase(3, {{0}, {1}, {2}});
  auto cube = DataCube::Build(db, 2);
  ASSERT_TRUE(cube.ok());
  EXPECT_EQ(*cube->Count(Itemset{0, 1}), 0u);
}

TEST(DataCubeTest, DimensionLimits) {
  auto db = testing::MakeDatabase(4, {{0, 1, 2, 3}});
  EXPECT_FALSE(DataCube::Build(db, 0).ok());
  EXPECT_FALSE(DataCube::Build(db, 5).ok());
  auto cube = DataCube::Build(db, 2);
  ASSERT_TRUE(cube.ok());
  EXPECT_TRUE(cube->Count(Itemset{0, 1, 2}).status().IsOutOfRange());
}

TEST(CubeCountProviderTest, AnswersFromCubeAndFallsBack) {
  auto db = testing::RandomIndependentDatabase(5, 200, 17);
  auto cube = DataCube::Build(db, 2);
  ASSERT_TRUE(cube.ok());
  CubeCountProvider provider(*cube, &db);
  ScanCountProvider scan(db);
  EXPECT_EQ(provider.num_baskets(), 200u);
  EXPECT_EQ(provider.CountAllPresent(Itemset{1, 3}),
            scan.CountAllPresent(Itemset{1, 3}));
  // Beyond the cube's dimension: the database fallback must agree too.
  EXPECT_EQ(provider.CountAllPresent(Itemset{0, 1, 2}),
            scan.CountAllPresent(Itemset{0, 1, 2}));
}

TEST(CubeCountProviderTest, SupportsContingencyTables) {
  auto db = testing::RandomCorrelatedDatabase(4, 300, 0.8, 5);
  auto cube = DataCube::Build(db, 2);
  ASSERT_TRUE(cube.ok());
  CubeCountProvider cube_provider(*cube, &db);
  BitmapCountProvider bitmap_provider(db);
  auto from_cube = ContingencyTable::Build(cube_provider, Itemset{0, 1});
  auto from_bitmap = ContingencyTable::Build(bitmap_provider, Itemset{0, 1});
  ASSERT_TRUE(from_cube.ok());
  ASSERT_TRUE(from_bitmap.ok());
  for (uint32_t m = 0; m < 4; ++m) {
    EXPECT_EQ(from_cube->Observed(m), from_bitmap->Observed(m));
  }
}

TEST(DataCubeTest, CellCountBounded) {
  auto db = testing::RandomIndependentDatabase(10, 100, 3);
  auto cube = DataCube::Build(db, 2);
  ASSERT_TRUE(cube.ok());
  // At most items + pairs cells materialized.
  EXPECT_LE(cube->num_cells(), 10u + 45u);
}

}  // namespace
}  // namespace corrmine
