// The minimal JSON reader (io/json_reader.h) that statsdiff and the trace
// validator are built on. The load-bearing property beyond RFC basics: a
// number keeps its raw literal text, so 64-bit counters can be compared
// exactly instead of through a 53-bit double mantissa.

#include "io/json_reader.h"

#include <string>

#include "gtest/gtest.h"

namespace corrmine {
namespace io {
namespace {

TEST(JsonReaderTest, ParsesScalars) {
  EXPECT_EQ(ParseJson("null")->type, JsonValue::Type::kNull);
  EXPECT_TRUE(ParseJson("true")->bool_value);
  EXPECT_FALSE(ParseJson("false")->bool_value);
  auto number = ParseJson("-12.5e2");
  ASSERT_TRUE(number.ok());
  EXPECT_TRUE(number->is_number());
  EXPECT_DOUBLE_EQ(number->number_value, -1250.0);
  auto text = ParseJson("\"hi\\n\\\"there\\\"\"");
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(text->string_value, "hi\n\"there\"");
}

TEST(JsonReaderTest, NumbersKeepExactLiterals) {
  // 2^63 - 1 and a neighbor that collides with it in double precision.
  auto a = ParseJson("9223372036854775807");
  auto b = ParseJson("9223372036854775806");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->literal, "9223372036854775807");
  EXPECT_EQ(b->literal, "9223372036854775806");
  EXPECT_NE(a->literal, b->literal);
  // The doubles alias — which is exactly why the literal matters.
  EXPECT_EQ(a->number_value, b->number_value);
}

TEST(JsonReaderTest, ParsesNestedStructures) {
  auto doc = ParseJson(
      R"({"schema":"corrmine-stats-v1","levels":[{"level":2,"cand":7}],)"
      R"("cache":null,"nested":{"deep":[1,2,3]}})");
  ASSERT_TRUE(doc.ok());
  ASSERT_TRUE(doc->is_object());
  const JsonValue* schema = doc->Find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->string_value, "corrmine-stats-v1");
  const JsonValue* levels = doc->Find("levels");
  ASSERT_NE(levels, nullptr);
  ASSERT_TRUE(levels->is_array());
  ASSERT_EQ(levels->array.size(), 1u);
  const JsonValue* cand = levels->array[0].Find("cand");
  ASSERT_NE(cand, nullptr);
  EXPECT_EQ(cand->literal, "7");
  EXPECT_EQ(doc->Find("cache")->type, JsonValue::Type::kNull);
  EXPECT_EQ(doc->Find("missing"), nullptr);
}

TEST(JsonReaderTest, DecodesUnicodeEscapes) {
  auto text = ParseJson("\"\\u0041\\u00e9\\u20ac\"");  // A, é, €
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(text->string_value, "A\xc3\xa9\xe2\x82\xac");
}

TEST(JsonReaderTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("nul").ok());
  EXPECT_FALSE(ParseJson("1 2").ok());  // trailing garbage
  EXPECT_FALSE(ParseJson("-").ok());
}

TEST(JsonReaderTest, RejectsRunawayNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(ParseJson(deep).ok());
  std::string shallow(32, '[');
  shallow += std::string(32, ']');
  EXPECT_TRUE(ParseJson(shallow).ok());
}

TEST(JsonReaderTest, WhitespaceIsInsignificant) {
  auto doc = ParseJson(" {\n \"a\" : [ 1 , 2 ] \t} \n");
  ASSERT_TRUE(doc.ok());
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(doc->Find("a")->array.size(), 2u);
}

}  // namespace
}  // namespace io
}  // namespace corrmine
