// Model-based randomized tests: drive library containers with random
// operation sequences and compare against trusted standard-library models,
// plus robustness checks feeding random bytes into the parsers.

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "datagen/rng.h"
#include "hash/itemset_set.h"
#include "io/csv.h"
#include "io/result_io.h"
#include "io/transaction_io.h"
#include "itemset/itemset.h"
#include "test_util.h"

namespace corrmine {
namespace {

// --- Itemset vs std::set reference ---

class ItemsetModel : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ItemsetModel, OperationsMatchStdSet) {
  datagen::Rng rng(GetParam());
  Itemset subject;
  std::set<ItemId> model;
  for (int op = 0; op < 300; ++op) {
    ItemId item = static_cast<ItemId>(rng.NextBelow(20));
    switch (rng.NextBelow(3)) {
      case 0:
        subject = subject.WithItem(item);
        model.insert(item);
        break;
      case 1:
        subject = subject.WithoutItem(item);
        model.erase(item);
        break;
      case 2: {
        // Union with a small random set.
        std::vector<ItemId> extra;
        for (int i = 0; i < 3; ++i) {
          ItemId e = static_cast<ItemId>(rng.NextBelow(20));
          extra.push_back(e);
          model.insert(e);
        }
        subject = subject.Union(Itemset(extra));
        break;
      }
    }
    ASSERT_EQ(subject.size(), model.size()) << "op " << op;
    for (ItemId m : model) {
      ASSERT_TRUE(subject.Contains(m)) << "missing " << m << " at op " << op;
    }
    // Sortedness invariant.
    for (size_t i = 1; i < subject.size(); ++i) {
      ASSERT_LT(subject.item(i - 1), subject.item(i));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ItemsetModel,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- ItemsetPerfectSet vs std::set<Itemset> ---

class PerfectSetModel : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PerfectSetModel, InsertContainsMatchReference) {
  datagen::Rng rng(GetParam() * 31);
  hash::ItemsetPerfectSet subject;
  std::set<Itemset> model;
  for (int op = 0; op < 2000; ++op) {
    std::vector<ItemId> items;
    size_t size = 1 + rng.NextBelow(4);
    for (size_t i = 0; i < size; ++i) {
      items.push_back(static_cast<ItemId>(rng.NextBelow(12)));
    }
    Itemset s(items);
    bool was_new = model.insert(s).second;
    ASSERT_EQ(subject.Insert(s), was_new) << s.ToString();
    ASSERT_EQ(subject.size(), model.size());
    // Spot-check membership of a random probe.
    std::vector<ItemId> probe_items;
    for (size_t i = 0; i < 1 + rng.NextBelow(4); ++i) {
      probe_items.push_back(static_cast<ItemId>(rng.NextBelow(12)));
    }
    Itemset probe(probe_items);
    ASSERT_EQ(subject.Contains(probe), model.count(probe) > 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PerfectSetModel,
                         ::testing::Values(10, 20, 30, 40));

// --- Parser robustness: random bytes must never crash, only error ---

class ParserFuzz : public ::testing::TestWithParam<uint64_t> {};

std::string RandomBytes(datagen::Rng* rng, size_t length) {
  std::string out;
  out.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    // Bias toward printable + structural characters to reach deeper code.
    uint64_t pick = rng->NextBelow(100);
    if (pick < 60) {
      out += static_cast<char>('0' + rng->NextBelow(10));
    } else if (pick < 75) {
      out += ' ';
    } else if (pick < 85) {
      out += '\n';
    } else if (pick < 90) {
      out += ',';
    } else {
      out += static_cast<char>(rng->NextBelow(256));
    }
  }
  return out;
}

TEST_P(ParserFuzz, TransactionParserNeverCrashes) {
  datagen::Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    std::string input = RandomBytes(&rng, 1 + rng.NextBelow(400));
    auto db = io::ParseTransactions(input);
    if (db.ok()) {
      // Whatever parsed must be internally consistent.
      uint64_t total = 0;
      for (size_t row = 0; row < db->num_baskets(); ++row) {
        total += db->basket(row).size();
      }
      EXPECT_EQ(total, db->TotalItemOccurrences());
    }
  }
}

TEST_P(ParserFuzz, CsvParserNeverCrashes) {
  datagen::Rng rng(GetParam() + 99);
  for (int trial = 0; trial < 200; ++trial) {
    std::string input = RandomBytes(&rng, 1 + rng.NextBelow(400));
    auto db = io::ParseCategoricalCsv(input);
    if (db.ok()) {
      EXPECT_GT(db->num_rows(), 0u);
      EXPECT_GE(db->num_attributes(), 1);
    }
  }
}

TEST_P(ParserFuzz, ResultParserNeverCrashes) {
  datagen::Rng rng(GetParam() + 777);
  for (int trial = 0; trial < 200; ++trial) {
    std::string input = "level " + RandomBytes(&rng, rng.NextBelow(100));
    auto result = io::ParseMiningResult(input);
    (void)result;  // OK or error — just must not crash.
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Values(5, 15, 25));

}  // namespace
}  // namespace corrmine
