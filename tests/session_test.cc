// MiningSession facade: one object owning dataset, provider, pool and
// metrics must produce exactly the results of hand-assembled plumbing, for
// any shard/thread configuration — and the level-wise miner running under
// it must stay on the batch counting path (one CountAllPresentBatch per
// level, zero scalar calls).

#include "core/session.h"

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "datagen/quest_generator.h"
#include "io/binary_io.h"
#include "io/transaction_io.h"
#include "itemset/count_provider.h"
#include "test_util.h"

namespace corrmine {
namespace {

TransactionDatabase SeededQuest(uint64_t seed) {
  datagen::QuestOptions quest;
  quest.num_transactions = 600;
  quest.num_items = 30;
  quest.avg_transaction_size = 6.0;
  quest.num_patterns = 8;
  quest.seed = seed;
  auto db = datagen::GenerateQuestData(quest);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(*db);
}

std::string Fingerprint(const MiningResult& result) {
  std::string out;
  for (const CorrelationRule& rule : result.significant) {
    out += rule.itemset.ToString() + ":" +
           std::to_string(rule.chi2.statistic) + ";";
  }
  for (const LevelStats& level : result.levels) {
    out += std::to_string(level.level) + "/" +
           std::to_string(level.candidates) + "/" +
           std::to_string(level.significant) + "/" +
           std::to_string(level.not_significant) + ";";
  }
  return out;
}

MinerOptions TestMinerOptions() {
  MinerOptions options;
  options.support.min_count = 8;
  options.support.cell_fraction = 0.25;
  options.chi2.min_expected_cell = 1.0;
  return options;
}

TEST(MiningSessionTest, MatchesStandaloneMinerForAnyShardThreadConfig) {
  TransactionDatabase db = SeededQuest(1997);
  BitmapCountProvider reference(db);
  auto baseline =
      MineCorrelations(reference, db.num_items(), TestMinerOptions());
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  std::string fingerprint = Fingerprint(*baseline);
  ASSERT_FALSE(baseline->significant.empty()) << "degenerate fixture";

  for (int shards : {1, 2, 4}) {
    for (int threads : {1, 4}) {
      SessionOptions options;
      options.num_shards = shards;
      options.num_threads = threads;
      auto session = MiningSession::FromDatabase(db, options);
      ASSERT_TRUE(session.ok()) << session.status().ToString();
      EXPECT_EQ(session->num_shards(), static_cast<size_t>(shards));
      EXPECT_EQ(session->num_baskets(), db.num_baskets());
      auto result = session->Mine(TestMinerOptions());
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(Fingerprint(*result), fingerprint)
          << "shards " << shards << " threads " << threads;
    }
  }
}

TEST(MiningSessionTest, PrefixCacheRequiresSingleShard) {
  TransactionDatabase db = SeededQuest(7);
  SessionOptions options;
  options.prefix_cache = true;
  options.num_shards = 2;
  auto session = MiningSession::FromDatabase(db, options);
  ASSERT_FALSE(session.ok());
  EXPECT_TRUE(session.status().IsInvalidArgument());

  options.num_shards = 1;
  auto cached_session = MiningSession::FromDatabase(db, options);
  ASSERT_TRUE(cached_session.ok()) << cached_session.status().ToString();
  ASSERT_NE(cached_session->cache(), nullptr);
  auto result = cached_session->Mine(TestMinerOptions());
  ASSERT_TRUE(result.ok());
  // The cache actually served the run.
  EXPECT_GT(cached_session->cache()->stats().queries, 0u);
}

TEST(MiningSessionTest, InvalidOptionsRejected) {
  TransactionDatabase db = SeededQuest(7);
  SessionOptions negative_threads;
  negative_threads.num_threads = -1;
  EXPECT_FALSE(MiningSession::FromDatabase(db, negative_threads).ok());
  SessionOptions negative_shards;
  negative_shards.num_shards = -3;
  EXPECT_FALSE(MiningSession::FromDatabase(db, negative_shards).ok());
}

TEST(MiningSessionTest, OpensTextAndBinaryFiles) {
  TransactionDatabase db = SeededQuest(42);
  std::string text_path = ::testing::TempDir() + "/session_open.txt";
  ASSERT_TRUE(io::WriteTransactionFile(db, text_path).ok());
  std::string bin_path = ::testing::TempDir() + "/session_open.bin";
  ASSERT_TRUE(io::WriteBinaryTransactionFile(db, bin_path).ok());

  auto baseline = MiningSession::FromDatabase(db, {});
  ASSERT_TRUE(baseline.ok());
  auto expected = baseline->Mine(TestMinerOptions());
  ASSERT_TRUE(expected.ok());

  for (const std::string& path : {text_path, bin_path}) {
    SessionOptions options;
    options.num_shards = 3;
    auto session = MiningSession::Open(path, options);
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    auto result = session->Mine(TestMinerOptions());
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(Fingerprint(*result), Fingerprint(*expected)) << path;
  }
  std::remove(text_path.c_str());
  std::remove(bin_path.c_str());

  EXPECT_FALSE(MiningSession::Open("/nonexistent/baskets.txt", {}).ok());
}

TEST(MiningSessionTest, FrequentMinersAgreeWithMonolithicBaseline) {
  TransactionDatabase db = SeededQuest(1997);
  BitmapCountProvider provider(db);
  AprioriOptions apriori;
  apriori.min_support_fraction = 0.02;
  apriori.max_level = 3;
  auto expected = MineFrequentItemsets(provider, db.num_items(), apriori);
  ASSERT_TRUE(expected.ok());

  SessionOptions options;
  options.num_shards = 3;
  options.num_threads = 2;
  auto session = MiningSession::FromDatabase(db, options);
  ASSERT_TRUE(session.ok());
  auto frequent = session->MineFrequent(apriori);
  ASSERT_TRUE(frequent.ok()) << frequent.status().ToString();
  ASSERT_EQ(frequent->size(), expected->size());

  EclatOptions eclat;
  eclat.min_support_fraction = 0.02;
  eclat.max_level = 3;
  auto eclat_frequent = session->MineFrequentEclat(eclat);
  ASSERT_TRUE(eclat_frequent.ok()) << eclat_frequent.status().ToString();
  ASSERT_EQ(eclat_frequent->size(), expected->size());
  for (size_t i = 0; i < expected->size(); ++i) {
    EXPECT_EQ((*eclat_frequent)[i].itemset, (*expected)[i].itemset);
    EXPECT_EQ((*eclat_frequent)[i].count, (*expected)[i].count);
  }
}

// Delta ingestion through the facade: AppendBatch must leave the session
// indistinguishable from one opened over the concatenated data — for every
// layout, including the prefix-cached one, whose memoized bitmaps predate
// the append and must be epoch-invalidated rather than silently reused.
TEST(MiningSessionTest, AppendBatchMatchesFromScratchSession) {
  TransactionDatabase base = SeededQuest(1997);
  TransactionDatabase delta = SeededQuest(4711);
  TransactionDatabase combined = SeededQuest(1997);
  for (size_t row = 0; row < delta.num_baskets(); ++row) {
    ASSERT_TRUE(combined.AddBasket(delta.basket(row)).ok());
  }

  struct Layout {
    int shards;
    bool prefix_cache;
  };
  for (const Layout& layout :
       {Layout{1, false}, Layout{3, false}, Layout{1, true}}) {
    SessionOptions options;
    options.num_shards = layout.shards;
    options.prefix_cache = layout.prefix_cache;
    auto session = MiningSession::FromDatabase(base, options);
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    // Prime the session (and any prefix cache) over the base rows first.
    ASSERT_TRUE(session->Mine(TestMinerOptions()).ok());
    ASSERT_TRUE(session->AppendBatch(delta).ok());
    EXPECT_EQ(session->num_baskets(),
              base.num_baskets() + delta.num_baskets());

    auto scratch = MiningSession::FromDatabase(combined, options);
    ASSERT_TRUE(scratch.ok());
    auto appended_result = session->Mine(TestMinerOptions());
    ASSERT_TRUE(appended_result.ok()) << appended_result.status().ToString();
    auto scratch_result = scratch->Mine(TestMinerOptions());
    ASSERT_TRUE(scratch_result.ok());
    EXPECT_EQ(Fingerprint(*appended_result), Fingerprint(*scratch_result))
        << "shards " << layout.shards << " prefix_cache "
        << layout.prefix_cache;
  }
}

TEST(MiningSessionTest, LevelWiseMinerStaysOnBatchPath) {
  if constexpr (!kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  TransactionDatabase db = SeededQuest(1997);

  // The batch-per-level contract (DESIGN.md §7) holds for EVERY provider
  // strategy: no per-candidate scalar counts, and exactly one batch per
  // level — the singleton marginals batch plus one per mined level. A
  // provider without batch overrides would fall back to scalar counting
  // and fail the scalar_calls == 0 pin.
  for (const SessionProvider provider :
       {SessionProvider::kBitmap, SessionProvider::kCompressed,
        SessionProvider::kScan}) {
    SessionOptions options;
    options.num_shards = 2;
    options.provider = provider;
    auto session = MiningSession::FromDatabase(db, options);
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    EXPECT_EQ(session->provider_kind(), provider);

    MetricsRegistry& registry = MetricsRegistry::Global();
    registry.Reset();
    auto result = session->Mine(TestMinerOptions());
    ASSERT_TRUE(result.ok());

    EXPECT_EQ(registry.GetCounter("count_provider.scalar_calls")->Value(),
              0u)
        << "provider " << static_cast<int>(provider);
    EXPECT_EQ(registry.GetCounter("count_provider.batch_calls")->Value(),
              result->levels.size() + 1)
        << "provider " << static_cast<int>(provider);
    EXPECT_GT(registry.GetCounter("count_provider.batch_queries")->Value(),
              0u);
  }
}

TEST(MiningSessionTest, AllProvidersAgreeAcrossShardsAndThreads) {
  TransactionDatabase db = SeededQuest(1997);
  BitmapCountProvider reference(db);
  auto baseline =
      MineCorrelations(reference, db.num_items(), TestMinerOptions());
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  const std::string fingerprint = Fingerprint(*baseline);
  ASSERT_FALSE(baseline->significant.empty()) << "degenerate fixture";

  for (const SessionProvider provider :
       {SessionProvider::kBitmap, SessionProvider::kCompressed,
        SessionProvider::kScan}) {
    for (int shards : {1, 3}) {
      for (int threads : {1, 4}) {
        SessionOptions options;
        options.provider = provider;
        options.num_shards = shards;
        options.num_threads = threads;
        auto session = MiningSession::FromDatabase(db, options);
        ASSERT_TRUE(session.ok()) << session.status().ToString();
        auto result = session->Mine(TestMinerOptions());
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        EXPECT_EQ(Fingerprint(*result), fingerprint)
            << "provider " << static_cast<int>(provider) << " shards "
            << shards << " threads " << threads;
      }
    }
  }
}

TEST(MiningSessionTest, AppendBatchWorksForEveryProvider) {
  TransactionDatabase base = SeededQuest(1997);
  TransactionDatabase delta = SeededQuest(4711);
  TransactionDatabase combined = SeededQuest(1997);
  for (size_t row = 0; row < delta.num_baskets(); ++row) {
    ASSERT_TRUE(combined.AddBasket(delta.basket(row)).ok());
  }

  for (const SessionProvider provider :
       {SessionProvider::kBitmap, SessionProvider::kCompressed,
        SessionProvider::kScan}) {
    SessionOptions options;
    options.provider = provider;
    options.num_shards = 2;
    auto session = MiningSession::FromDatabase(base, options);
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    ASSERT_TRUE(session->Mine(TestMinerOptions()).ok());
    ASSERT_TRUE(session->AppendBatch(delta).ok());

    auto scratch = MiningSession::FromDatabase(combined, options);
    ASSERT_TRUE(scratch.ok());
    auto appended = session->Mine(TestMinerOptions());
    ASSERT_TRUE(appended.ok()) << appended.status().ToString();
    auto rebuilt = scratch->Mine(TestMinerOptions());
    ASSERT_TRUE(rebuilt.ok());
    EXPECT_EQ(Fingerprint(*appended), Fingerprint(*rebuilt))
        << "provider " << static_cast<int>(provider);
  }
}

TEST(MiningSessionTest, PrefixCacheRequiresBitmapProvider) {
  TransactionDatabase db = SeededQuest(7);
  for (const SessionProvider provider :
       {SessionProvider::kCompressed, SessionProvider::kScan}) {
    SessionOptions options;
    options.prefix_cache = true;
    options.num_shards = 1;
    options.provider = provider;
    auto session = MiningSession::FromDatabase(db, options);
    ASSERT_FALSE(session.ok())
        << "prefix cache must require the bitmap provider";
    EXPECT_TRUE(session.status().IsInvalidArgument());
  }
}

}  // namespace
}  // namespace corrmine
