// CBS1 snapshot codec contract: save -> load -> save is byte-identical
// (memo order and double bit patterns included), and decode returns a
// Status — never a crash — on every truncation prefix, bad magic/version,
// trailing garbage, and records that lie about their own sizes. Mirrors the
// hostile-bytes posture of the CMB1 tests in io_test.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/border_repair.h"
#include "core/border_state.h"
#include "core/chi_squared_miner.h"
#include "core/session.h"
#include "datagen/quest_generator.h"

namespace corrmine {
namespace {

uint64_t Bits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

/// A small but fully populated state: named items, rules with adversarial
/// doubles (infinity, a subnormal, negative zero), level stats, a frontier,
/// and a memo — every record type the codec owns.
BorderState RichState() {
  BorderState state;
  state.num_items = 7;
  state.num_baskets = 123;
  state.config.confidence_level = 0.99;
  state.config.support.min_count = 5;
  state.config.support.cell_fraction = 0.3;
  state.config.level_one = LevelOnePruning::kNone;
  state.config.chi2.min_expected_cell = 1.25;
  state.config.max_level = 4;
  state.config.keep_frontier = true;
  state.item_names = {"tea", "coffee", "milk", "sugar", "doughnuts",
                      "beer", "diapers"};

  CorrelationRule rule;
  rule.itemset = Itemset({0, 2, 5});
  rule.chi2.statistic = std::numeric_limits<double>::infinity();
  rule.chi2.dof = 3;
  rule.chi2.p_value = std::numeric_limits<double>::denorm_min();
  rule.chi2.validity.all_expected_above_one = false;
  rule.chi2.validity.fraction_expected_above_five = 0.625;
  rule.chi2.validity.masked_cells = 2;
  rule.chi2.validity.exact = false;
  rule.major_dependence.mask = 5;
  rule.major_dependence.observed = 41;
  rule.major_dependence.expected = -0.0;
  rule.major_dependence.interest =
      std::numeric_limits<double>::infinity();
  rule.major_dependence.contribution = 17.25;
  state.result.significant.push_back(rule);
  rule.itemset = Itemset({1, 3});
  rule.chi2.statistic = 3.8415;
  rule.chi2.p_value = 0.04999;
  state.result.significant.push_back(rule);

  LevelStats level;
  level.level = 2;
  level.possible_itemsets = 21;
  level.candidates = 10;
  level.discards = 3;
  level.chi2_tests = 7;
  level.masked_cells = 1;
  level.significant = 2;
  level.not_significant = 5;
  state.result.levels.push_back(level);

  state.result.frontier.push_back(Itemset({2, 4}));
  state.result.frontier.push_back(Itemset({0, 6}));

  state.counts[Itemset({0})] = 50;
  state.counts[Itemset({0, 2})] = 31;
  state.counts[Itemset({1, 3, 6})] = 0;
  state.counts[Itemset({6})] = 123;
  return state;
}

TEST(BorderStateTest, SaveLoadSaveIsByteIdentical) {
  const BorderState state = RichState();
  const std::string bytes = EncodeBorderState(state);
  auto loaded = DecodeBorderState(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(EncodeBorderState(*loaded), bytes);
}

TEST(BorderStateTest, RoundTripPreservesEveryField) {
  const BorderState state = RichState();
  auto loaded = DecodeBorderState(EncodeBorderState(state));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->num_items, state.num_items);
  EXPECT_EQ(loaded->num_baskets, state.num_baskets);
  EXPECT_EQ(loaded->config.confidence_level, state.config.confidence_level);
  EXPECT_EQ(loaded->config.support.min_count, state.config.support.min_count);
  EXPECT_EQ(loaded->config.support.cell_fraction,
            state.config.support.cell_fraction);
  EXPECT_EQ(loaded->config.level_one, state.config.level_one);
  EXPECT_EQ(loaded->config.chi2.min_expected_cell,
            state.config.chi2.min_expected_cell);
  EXPECT_EQ(loaded->config.max_level, state.config.max_level);
  EXPECT_EQ(loaded->config.keep_frontier, state.config.keep_frontier);
  EXPECT_EQ(loaded->item_names, state.item_names);

  ASSERT_EQ(loaded->result.significant.size(),
            state.result.significant.size());
  const CorrelationRule& got = loaded->result.significant[0];
  const CorrelationRule& want = state.result.significant[0];
  EXPECT_EQ(got.itemset, want.itemset);
  EXPECT_EQ(Bits(got.chi2.statistic), Bits(want.chi2.statistic));
  EXPECT_EQ(Bits(got.chi2.p_value), Bits(want.chi2.p_value));
  EXPECT_EQ(got.chi2.dof, want.chi2.dof);
  EXPECT_EQ(got.chi2.validity.all_expected_above_one,
            want.chi2.validity.all_expected_above_one);
  EXPECT_EQ(got.chi2.validity.fraction_expected_above_five,
            want.chi2.validity.fraction_expected_above_five);
  EXPECT_EQ(got.chi2.validity.masked_cells,
            want.chi2.validity.masked_cells);
  EXPECT_EQ(got.chi2.validity.exact, want.chi2.validity.exact);
  EXPECT_EQ(got.major_dependence.mask, want.major_dependence.mask);
  EXPECT_EQ(got.major_dependence.observed, want.major_dependence.observed);
  // -0.0 == 0.0 under operator==; the bit compare is the actual contract.
  EXPECT_EQ(Bits(got.major_dependence.expected),
            Bits(want.major_dependence.expected));
  EXPECT_EQ(Bits(got.major_dependence.interest),
            Bits(want.major_dependence.interest));
  EXPECT_EQ(Bits(got.major_dependence.contribution),
            Bits(want.major_dependence.contribution));

  ASSERT_EQ(loaded->result.levels.size(), 1u);
  EXPECT_EQ(loaded->result.levels[0].possible_itemsets, 21u);
  EXPECT_EQ(loaded->result.levels[0].not_significant, 5u);
  ASSERT_EQ(loaded->result.frontier.size(), 2u);
  EXPECT_EQ(loaded->result.frontier[0], state.result.frontier[0]);
  EXPECT_EQ(loaded->counts, state.counts);
}

TEST(BorderStateTest, EveryTruncationPrefixIsAStatusNotACrash) {
  const std::string bytes = EncodeBorderState(RichState());
  for (size_t len = 0; len < bytes.size(); ++len) {
    auto state = DecodeBorderState(bytes.substr(0, len));
    EXPECT_FALSE(state.ok()) << "truncation to " << len << " of "
                             << bytes.size() << " bytes decoded";
  }
}

TEST(BorderStateTest, TrailingBytesAreAnError) {
  std::string bytes = EncodeBorderState(RichState());
  bytes.push_back('\0');
  EXPECT_FALSE(DecodeBorderState(bytes).ok());
}

TEST(BorderStateTest, BadMagicAndVersionAreErrors) {
  std::string bytes = EncodeBorderState(RichState());
  {
    std::string bad = bytes;
    bad[0] = 'X';
    EXPECT_FALSE(DecodeBorderState(bad).ok());
  }
  {
    std::string bad = bytes;
    bad[4] = 99;  // version byte follows the 4-byte magic
    EXPECT_FALSE(DecodeBorderState(bad).ok());
  }
}

TEST(BorderStateTest, SaveAndLoadRoundTripThroughDisk) {
  const BorderState state = RichState();
  const std::string path = ::testing::TempDir() + "/border_state_test.cbs";
  ASSERT_TRUE(SaveBorderState(state, path).ok());
  auto loaded = LoadBorderState(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(EncodeBorderState(*loaded), EncodeBorderState(state));
  EXPECT_FALSE(LoadBorderState(path + ".missing").ok());
}

TEST(BorderStateTest, MinedStateRoundTripsExactly) {
  datagen::QuestOptions quest;
  quest.num_transactions = 300;
  quest.num_items = 40;
  quest.seed = 11;
  auto db = datagen::GenerateQuestData(quest);
  ASSERT_TRUE(db.ok());
  MinerOptions options;
  options.support.min_count = 10;
  options.max_level = 3;
  options.keep_frontier = true;
  auto inc = IncrementalMiner::Create(std::move(*db), SessionOptions(),
                                      options);
  ASSERT_TRUE(inc.ok()) << inc.status().ToString();
  ASSERT_TRUE(inc->Repair().ok());
  ASSERT_FALSE(inc->state().counts.empty());
  const std::string bytes = EncodeBorderState(inc->state());
  auto loaded = DecodeBorderState(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(EncodeBorderState(*loaded), bytes);
}

// RepairBorder's preconditions: a snapshot from a different dataset (name
// mismatch) or a different row count must be rejected with a Status before
// the memo is ever trusted.
TEST(BorderStateTest, RepairRejectsMismatchedSnapshot) {
  datagen::QuestOptions quest;
  quest.num_transactions = 200;
  quest.num_items = 30;
  quest.seed = 5;
  auto db = datagen::GenerateQuestData(quest);
  ASSERT_TRUE(db.ok());
  auto session = MiningSession::FromDatabase(*db, SessionOptions());
  ASSERT_TRUE(session.ok());

  BorderState state;
  state.num_items = session->num_items();
  state.num_baskets = session->num_baskets() + 1;  // one phantom row
  EXPECT_FALSE(RepairBorder(*session, &state).ok());

  state.num_baskets = session->num_baskets();
  state.item_names = {"not", "this", "dataset"};
  EXPECT_FALSE(RepairBorder(*session, &state).ok());

  state.item_names.clear();
  state.num_items = session->num_items() + 1;
  EXPECT_FALSE(RepairBorder(*session, &state).ok());
}

}  // namespace
}  // namespace corrmine
