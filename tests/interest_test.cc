#include <gtest/gtest.h>

#include "core/interest.h"
#include "test_util.h"

namespace corrmine {
namespace {

// Example 1 of the paper (tea/coffee): n=100, O(tc)=20, O(t)=25, O(c)=90.
TransactionDatabase TeaCoffeeDb() {
  std::vector<std::vector<ItemId>> baskets;
  // Item 0 = tea, item 1 = coffee. Cells: tc=20, t!c=5, !tc=70, !t!c=5.
  for (int i = 0; i < 20; ++i) baskets.push_back({0, 1});
  for (int i = 0; i < 5; ++i) baskets.push_back({0});
  for (int i = 0; i < 70; ++i) baskets.push_back({1});
  for (int i = 0; i < 5; ++i) baskets.push_back({});
  return testing::MakeDatabase(2, baskets);
}

TEST(InterestTest, TeaCoffeeDependenceIsNegative) {
  auto db = TeaCoffeeDb();
  ScanCountProvider provider(db);
  auto table = ContingencyTable::Build(provider, Itemset{0, 1});
  ASSERT_TRUE(table.ok());
  auto cells = ComputeCellInterests(*table);
  ASSERT_EQ(cells.size(), 4u);
  // I(tea & coffee) = P(tc) / (P(t)P(c)) = 0.2 / (0.25 * 0.9) = 0.888...
  const CellInterest& both = cells[0b11];
  EXPECT_EQ(both.observed, 20u);
  EXPECT_NEAR(both.expected, 22.5, 1e-12);
  EXPECT_NEAR(both.interest, 0.2 / (0.25 * 0.9), 1e-12);
  EXPECT_LT(both.interest, 1.0);  // The paper's negative correlation.
}

TEST(InterestTest, InterestAboveAndBelowOne) {
  auto db = TeaCoffeeDb();
  ScanCountProvider provider(db);
  auto table = ContingencyTable::Build(provider, Itemset{0, 1});
  ASSERT_TRUE(table.ok());
  auto cells = ComputeCellInterests(*table);
  // tea & !coffee: O=5, E = 100*0.25*0.1 = 2.5 -> interest 2.0.
  EXPECT_NEAR(cells[0b01].interest, 2.0, 1e-12);
  // !tea & coffee: O=70, E = 100*0.75*0.9 = 67.5 -> slightly above 1.
  EXPECT_NEAR(cells[0b10].interest, 70.0 / 67.5, 1e-12);
}

TEST(InterestTest, MajorDependenceIsLargestContribution) {
  auto db = TeaCoffeeDb();
  ScanCountProvider provider(db);
  auto table = ContingencyTable::Build(provider, Itemset{0, 1});
  ASSERT_TRUE(table.ok());
  CellInterest major = MajorDependenceCell(*table);
  auto cells = ComputeCellInterests(*table);
  for (const auto& cell : cells) {
    EXPECT_LE(cell.contribution, major.contribution + 1e-12);
  }
  // Hand check: contributions are (O-E)^2/E with E = 22.5, 2.5, 67.5, 7.5;
  // the (tea, !coffee) cell with O=5, E=2.5 contributes 2.5 — the largest.
  EXPECT_EQ(major.mask, 0b01u);
}

TEST(InterestTest, MostExtremeInterestCell) {
  auto db = TeaCoffeeDb();
  ScanCountProvider provider(db);
  auto table = ContingencyTable::Build(provider, Itemset{0, 1});
  ASSERT_TRUE(table.ok());
  CellInterest extreme = MostExtremeInterestCell(*table);
  // Interests: 0.889, 2.0, 1.037, 0.667 -> |I-1| max at 2.0 (mask 0b01).
  EXPECT_EQ(extreme.mask, 0b01u);
  EXPECT_NEAR(extreme.interest, 2.0, 1e-12);
}

TEST(InterestTest, ImpossibleCellHasZeroInterest) {
  // Item 1 present in every basket: cell (a & !b) has E > 0 but O = 0 and
  // cell expectations with !b are 0.
  auto db = testing::MakeDatabase(2, {{0, 1}, {1}, {0, 1}, {1}});
  ScanCountProvider provider(db);
  auto table = ContingencyTable::Build(provider, Itemset{0, 1});
  ASSERT_TRUE(table.ok());
  auto cells = ComputeCellInterests(*table);
  // E[!b cells] = 0 and O = 0 -> interest defined as 1 (no deviation).
  EXPECT_DOUBLE_EQ(cells[0b00].interest, 1.0);
  EXPECT_DOUBLE_EQ(cells[0b00].contribution, 0.0);
}

TEST(InterestTest, FormatCellPattern) {
  Itemset s{2, 7};
  EXPECT_EQ(FormatCellPattern(s, 0b01), "{i2, !i7}");
  EXPECT_EQ(FormatCellPattern(s, 0b11), "{i2, i7}");
  EXPECT_EQ(FormatCellPattern(s, 0b00), "{!i2, !i7}");
  ItemDictionary dict;
  dict.GetOrAdd("zero");
  dict.GetOrAdd("one");
  dict.GetOrAdd("two");
  Itemset named{0, 2};
  EXPECT_EQ(FormatCellPattern(named, 0b10, &dict), "{!zero, two}");
}

}  // namespace
}  // namespace corrmine
