#include <unordered_map>
#include <unordered_set>

#include <gtest/gtest.h>

#include "hash/dynamic_perfect_hash.h"
#include "hash/fks_perfect_hash.h"
#include "hash/itemset_set.h"
#include "hash/universal_hash.h"

namespace corrmine::hash {
namespace {

TEST(UniversalHashTest, InRangeAndDeterministic) {
  UniversalHashFunction h(12345, 6789);
  for (uint64_t key : {uint64_t{0}, uint64_t{1}, uint64_t{42}, UINT64_MAX}) {
    uint64_t v = h(key, 100);
    EXPECT_LT(v, 100u);
    EXPECT_EQ(v, h(key, 100));
  }
}

TEST(UniversalHashTest, ZeroAIsFixedUp) {
  UniversalHashFunction h(0, 5);
  // a = 0 would collapse everything to one slot; constructor forces a = 1.
  EXPECT_EQ(h.a(), 1u);
}

TEST(UniversalHashTest, DifferentFunctionsDisagree) {
  SplitMix64 rng(7);
  UniversalHashFunction h1 = rng.NextHashFunction();
  UniversalHashFunction h2 = rng.NextHashFunction();
  int differences = 0;
  for (uint64_t key = 0; key < 100; ++key) {
    if (h1(key, 1024) != h2(key, 1024)) ++differences;
  }
  EXPECT_GT(differences, 50);
}

TEST(SplitMix64Test, ReproducibleStream) {
  SplitMix64 a(99), b(99);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.Next(), b.Next());
}

// --- FKS static perfect hashing ---

TEST(FksTest, EmptyTable) {
  auto table = FksPerfectHash::Build({});
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->size(), 0u);
  EXPECT_FALSE(table->Contains(42));
}

TEST(FksTest, FindsAllKeysRejectsOthers) {
  std::vector<uint64_t> keys;
  for (uint64_t i = 0; i < 500; ++i) keys.push_back(i * i * 31 + 7);
  auto table = FksPerfectHash::Build(keys);
  ASSERT_TRUE(table.ok());
  for (size_t i = 0; i < keys.size(); ++i) {
    auto found = table->Find(keys[i]);
    ASSERT_TRUE(found.has_value()) << keys[i];
    EXPECT_EQ(*found, i);
  }
  std::unordered_set<uint64_t> key_set(keys.begin(), keys.end());
  for (uint64_t probe = 0; probe < 1000; ++probe) {
    if (!key_set.count(probe)) {
      EXPECT_FALSE(table->Contains(probe));
    }
  }
}

TEST(FksTest, RejectsDuplicateKeys) {
  EXPECT_TRUE(
      FksPerfectHash::Build({1, 2, 1}).status().IsInvalidArgument());
}

TEST(FksTest, SpaceIsLinear) {
  std::vector<uint64_t> keys;
  for (uint64_t i = 0; i < 2000; ++i) keys.push_back(i * 2654435761ULL + 3);
  auto table = FksPerfectHash::Build(keys);
  ASSERT_TRUE(table.ok());
  // FKS guarantees expected sum of squared bucket sizes <= 4n.
  EXPECT_LE(table->slot_count(), 4 * keys.size());
}

// --- Dynamic perfect hashing ---

TEST(DynamicPerfectHashTest, InsertFindErase) {
  DynamicPerfectHash table;
  EXPECT_TRUE(table.Insert(10, 100));
  EXPECT_TRUE(table.Insert(20, 200));
  EXPECT_FALSE(table.Insert(10, 111));  // Overwrite, not new.
  ASSERT_TRUE(table.Find(10).has_value());
  EXPECT_EQ(*table.Find(10), 111u);
  EXPECT_EQ(*table.Find(20), 200u);
  EXPECT_FALSE(table.Find(30).has_value());
  EXPECT_TRUE(table.Erase(10));
  EXPECT_FALSE(table.Erase(10));
  EXPECT_FALSE(table.Contains(10));
  EXPECT_EQ(table.size(), 1u);
}

TEST(DynamicPerfectHashTest, ChurnMatchesReferenceMap) {
  DynamicPerfectHash table;
  std::unordered_map<uint64_t, uint64_t> reference;
  SplitMix64 rng(123);
  for (int op = 0; op < 20000; ++op) {
    uint64_t key = rng.Next() % 512;  // Small key space forces collisions.
    uint64_t action = rng.Next() % 3;
    if (action < 2) {
      uint64_t value = rng.Next();
      bool was_new = !reference.count(key);
      EXPECT_EQ(table.Insert(key, value), was_new);
      reference[key] = value;
    } else {
      EXPECT_EQ(table.Erase(key), reference.erase(key) > 0);
    }
    if (op % 500 == 0) {
      EXPECT_EQ(table.size(), reference.size());
    }
  }
  EXPECT_EQ(table.size(), reference.size());
  for (const auto& [key, value] : reference) {
    auto found = table.Find(key);
    ASSERT_TRUE(found.has_value()) << key;
    EXPECT_EQ(*found, value);
  }
  EXPECT_EQ(table.Entries().size(), reference.size());
}

TEST(DynamicPerfectHashTest, GrowsThroughGlobalRebuilds) {
  DynamicPerfectHash table;
  for (uint64_t i = 0; i < 5000; ++i) {
    table.Insert(i * 7919, i);
  }
  EXPECT_EQ(table.size(), 5000u);
  EXPECT_GT(table.global_rebuilds(), 0u);
  for (uint64_t i = 0; i < 5000; ++i) {
    auto found = table.Find(i * 7919);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, i);
  }
}

// --- ItemsetPerfectSet ---

TEST(ItemsetPerfectSetTest, InsertContains) {
  ItemsetPerfectSet set;
  EXPECT_TRUE(set.Insert(Itemset{1, 2}));
  EXPECT_TRUE(set.Insert(Itemset{2, 3}));
  EXPECT_FALSE(set.Insert(Itemset{2, 1}));  // Same set, different order.
  EXPECT_TRUE(set.Contains(Itemset{1, 2}));
  EXPECT_FALSE(set.Contains(Itemset{1, 3}));
  EXPECT_EQ(set.size(), 2u);
  set.Clear();
  EXPECT_TRUE(set.empty());
  EXPECT_FALSE(set.Contains(Itemset{1, 2}));
}

TEST(ItemsetPerfectSetTest, ManyItemsets) {
  ItemsetPerfectSet set;
  for (ItemId a = 0; a < 60; ++a) {
    for (ItemId b = a + 1; b < 60; ++b) {
      EXPECT_TRUE(set.Insert(Itemset{a, b}));
    }
  }
  EXPECT_EQ(set.size(), 60u * 59u / 2u);
  for (ItemId a = 0; a < 60; ++a) {
    for (ItemId b = a + 1; b < 60; ++b) {
      EXPECT_TRUE(set.Contains(Itemset{a, b}));
    }
  }
  EXPECT_FALSE(set.Contains(Itemset{0, 60}));
  EXPECT_FALSE(set.Contains(Itemset{0, 1, 2}));
}

}  // namespace
}  // namespace corrmine::hash
