// Tests for the sampled (Toivonen) and partitioned (Savasere et al.)
// frequent-itemset miners: both must reproduce Apriori's output exactly on
// any input, with their respective efficiency diagnostics behaving sanely.

#include <map>

#include <gtest/gtest.h>

#include "mining/partition.h"
#include "mining/sampling.h"
#include "test_util.h"

namespace corrmine {
namespace {

std::map<Itemset, uint64_t> ToMap(const std::vector<FrequentItemset>& sets) {
  std::map<Itemset, uint64_t> m;
  for (const FrequentItemset& f : sets) m.emplace(f.itemset, f.count);
  return m;
}

std::map<Itemset, uint64_t> AprioriReference(const TransactionDatabase& db,
                                             double min_support) {
  BitmapCountProvider provider(db);
  AprioriOptions options;
  options.min_support_fraction = min_support;
  auto result = MineFrequentItemsets(provider, db.num_items(), options);
  CORRMINE_CHECK(result.ok()) << result.status().ToString();
  return ToMap(*result);
}

class SamplingEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SamplingEquivalence, MatchesApriori) {
  auto db = testing::RandomCorrelatedDatabase(8, 400, 0.8, GetParam());
  SamplingOptions options;
  options.min_support_fraction = 0.1;
  options.sample_fraction = 0.25;
  options.seed = GetParam() * 7 + 1;
  SamplingStats stats;
  auto sampled = MineFrequentItemsetsSampling(db, options, &stats);
  ASSERT_TRUE(sampled.ok());
  EXPECT_EQ(ToMap(*sampled), AprioriReference(db, 0.1));
  EXPECT_GT(stats.candidates_counted, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SamplingEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(SamplingTest, TinySampleStillExact) {
  // A sample too small to be representative forces the negative-border
  // fallback; the result must still be exact.
  auto db = testing::RandomCorrelatedDatabase(6, 300, 0.9, 42);
  SamplingOptions options;
  options.min_support_fraction = 0.15;
  options.sample_fraction = 0.03;  // ~9 baskets.
  SamplingStats stats;
  auto sampled = MineFrequentItemsetsSampling(db, options, &stats);
  ASSERT_TRUE(sampled.ok());
  EXPECT_EQ(ToMap(*sampled), AprioriReference(db, 0.15));
}

TEST(SamplingTest, MaxLevelRespected) {
  auto db = testing::RandomCorrelatedDatabase(6, 200, 0.9, 9);
  SamplingOptions options;
  options.min_support_fraction = 0.05;
  options.max_level = 2;
  auto sampled = MineFrequentItemsetsSampling(db, options);
  ASSERT_TRUE(sampled.ok());
  for (const FrequentItemset& f : *sampled) {
    EXPECT_LE(f.itemset.size(), 2u);
  }
}

TEST(SamplingTest, InputValidation) {
  TransactionDatabase empty(3);
  EXPECT_TRUE(MineFrequentItemsetsSampling(empty, SamplingOptions())
                  .status()
                  .IsFailedPrecondition());
  auto db = testing::RandomIndependentDatabase(3, 30, 1);
  SamplingOptions bad;
  bad.sample_fraction = 0.0;
  EXPECT_TRUE(
      MineFrequentItemsetsSampling(db, bad).status().IsInvalidArgument());
  SamplingOptions bad2;
  bad2.lowering_factor = 1.5;
  EXPECT_TRUE(
      MineFrequentItemsetsSampling(db, bad2).status().IsInvalidArgument());
}

class PartitionEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(PartitionEquivalence, MatchesAprioriAcrossPartitionCounts) {
  auto db = testing::RandomCorrelatedDatabase(8, 350, 0.75, 77);
  PartitionOptions options;
  options.min_support_fraction = 0.12;
  options.num_partitions = GetParam();
  PartitionStats stats;
  auto partitioned = MineFrequentItemsetsPartition(db, options, &stats);
  ASSERT_TRUE(partitioned.ok());
  EXPECT_EQ(ToMap(*partitioned), AprioriReference(db, 0.12));
  // Every true frequent itemset is among the global candidates.
  EXPECT_GE(stats.global_candidates, partitioned->size());
  EXPECT_EQ(stats.global_candidates - stats.false_candidates,
            partitioned->size());
}

INSTANTIATE_TEST_SUITE_P(PartitionCounts, PartitionEquivalence,
                         ::testing::Values(1, 2, 3, 7, 50));

TEST(PartitionTest, MorePartitionsMoreFalseCandidates) {
  // Finer partitions make local thresholds easier to clear by luck, so
  // false candidates (wasted phase-2 work) should not decrease.
  auto db = testing::RandomIndependentDatabase(10, 500, 5);
  PartitionStats coarse, fine;
  PartitionOptions options;
  options.min_support_fraction = 0.2;
  options.num_partitions = 2;
  ASSERT_TRUE(MineFrequentItemsetsPartition(db, options, &coarse).ok());
  options.num_partitions = 25;
  ASSERT_TRUE(MineFrequentItemsetsPartition(db, options, &fine).ok());
  EXPECT_GE(fine.global_candidates, coarse.global_candidates);
}

TEST(PartitionTest, InputValidation) {
  TransactionDatabase empty(3);
  EXPECT_TRUE(MineFrequentItemsetsPartition(empty, PartitionOptions())
                  .status()
                  .IsFailedPrecondition());
  auto db = testing::RandomIndependentDatabase(3, 30, 1);
  PartitionOptions bad;
  bad.num_partitions = 0;
  EXPECT_TRUE(
      MineFrequentItemsetsPartition(db, bad).status().IsInvalidArgument());
}

}  // namespace
}  // namespace corrmine
